(** The three-phase evaluation scenario of §5:

    1. {e Safe Phase} — the QoS application alone, reference achievable
       within TDP; goal: meet QoS, minimize power.
    2. {e Emergency Phase} — same QoS reference, power envelope reduced
       (emulated thermal emergency).
    3. {e Workload Disturbance Phase} — envelope back at TDP, background
       tasks make the QoS reference unachievable within the budget.

    {!run} drives a manager through the phases on a fresh simulated SoC
    at the 50 ms controller period and records everything into a
    {!Spectr_platform.Trace}.  The SoC is built from the config's
    {!Platform_desc.t}; on the default [exynos5422] description traces
    are byte-identical to the pre-description 2-cluster engine. *)

open Spectr_platform

type phase = {
  phase_name : string;
  duration_s : float;
  envelope : float;  (** Power budget during the phase (W). *)
  background_tasks : int;
  phase_faults : Faults.injection list;
      (** Fault injections active during this phase; windows are
          {e phase-relative} (0 = phase start) and are shifted to
          absolute run time by {!run}.  Empty (the default scenario) is
          strictly off: no fault machinery is attached to the SoC and
          traces are bit-identical to pre-fault-layer runs. *)
}

type config = {
  workload : Workload.t;
  platform : Platform_desc.t;
      (** Platform description the SoC is built from. *)
  qos_ref : float;
  phases : phase list;
  controller_period : float;  (** Seconds; 0.05 as in §5. *)
  seed : int64;
}

val default_phases : ?tdp:float -> ?emergency:float -> unit -> phase list
(** The paper's scenario: 5 s Safe at [tdp] (default 5 W), 5 s Emergency
    at [emergency] (default 3.5 W), 5 s Disturbance at [tdp] with 10
    background tasks.  No faults. *)

val columns : string list
(** Base trace columns of the reference Exynos description (no [faults]
    column) — [columns_of Platform_desc.exynos5422]. *)

val fault_columns : string list
(** Exynos trace columns of a faulted run: {!columns} plus ["faults"]
    (number of active injections) and ["true_power"] (ground-truth chip
    power — under sensor faults the [power] column records the corrupted
    reading the managers saw, so safety must be judged against this
    one). *)

val columns_of : Platform_desc.t -> string list
(** Trace columns of a description: [time], [qos], [qos_ref], [power],
    [envelope], one [<cluster>_power] per cluster, then a
    [<cluster>_freq_mhz]/[<cluster>_cores] pair per cluster,
    [background], [phase].  On [exynos5422] this is exactly
    {!columns}. *)

val fault_columns_of : Platform_desc.t -> string list
(** [columns_of] plus the trailing [faults]/[true_power] pair. *)

val default_config :
  ?seed:int64 ->
  ?qos_ref:float ->
  ?platform:Platform_desc.t ->
  Workload.t ->
  config
(** 60 FPS reference for x264 on the reference Exynos; everywhere else
    the reference is 75 % of the workload's maximum achievable rate on
    the description's host cluster (an achievable-within-TDP target, as
    in Phase 1 of the paper).  [platform] defaults to
    [Platform_desc.exynos5422]. *)

val run : manager:Manager.t -> config -> Trace.t
(** Execute the scenario.  The trace has the columns of
    [columns_of config.platform]; when any phase carries fault
    injections, trailing [faults] and [true_power] columns record the
    active-injection count and ground-truth chip power per sample
    ({!fault_columns_of}).  The per-cluster [_freq_mhz]/[_cores] columns
    always read back the {e actually applied} actuator state, so a stuck
    actuator is visible in the trace. *)

val fault_schedule : config -> Faults.injection list
(** The absolute-time fault schedule of a config (phase-relative windows
    shifted by each phase's start). *)

(** {1 Tick-at-a-time execution}

    {!run} is a loop over this lower-level engine.  A {!runner} owns the
    platform half of a scenario — SoC, fault schedule, heartbeat monitor,
    trace and phase cursor — while the manager is an argument of every
    {!tick}.  That split is what the chaos engine's kill/restart
    drills and per-tick invariant monitors are built on: the platform
    keeps running while the manager is replaced mid-scenario, and every
    tick's observation is available for checking before the next one
    executes.  [run ~manager config] and
    [start config |> loop (tick ~manager)] produce byte-identical
    traces. *)

type runner

val start : config -> runner

val tick : runner -> manager:Manager.t -> Soc.observation option
(** Execute one controller period with the given manager: step the SoC,
    deliver heartbeats, invoke the manager, record the trace row.
    Returns the observation the manager saw, or [None] when the scenario
    is complete (no step executed).  The manager may differ between
    ticks.

    The returned observation is the runner's own buffer, rewritten in
    place by the next [tick] — read it (or copy the fields out) before
    ticking again; do not stash the record itself. *)

val finished : runner -> bool
val trace : runner -> Trace.t

val runner_soc : runner -> Soc.t
(** The live SoC — monitors read ground truth ({!Soc.true_chip_power},
    actuator readbacks) from here between ticks. *)

val runner_faults : runner -> Faults.t option
val ticks_done : runner -> int

val current_phase : runner -> phase * int
(** Phase the next tick will execute in (or the last phase, once
    finished) and its index. *)

val total_ticks : config -> int
(** Number of controller periods the full scenario executes. *)

val phase_bounds : config -> (string * int * int) list
(** Sample-index range [(name, from, upto)] of each phase in a trace
    produced by {!run} (upto exclusive). *)
