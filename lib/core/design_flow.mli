(** The systematic design flow of §6, as an executable pipeline.

    For each subsystem (Step 2's "identify the minimal subsystems"):
    excite the simulated platform with staircase inputs running the
    identification microbenchmark (Step 5), standardize the data, fit an
    ARX model and cross-validate it (R² ≥ 0.8 gate of Step 2/§6), realize
    it in state space, then design one LQG gain set per ⟨goal,
    condition⟩ pair (Steps 6–7) and run the robustness gate (Step 8).

    The same entry points power the scalability experiments: Figure 5
    (model accuracy 2×2 vs 10×10), Figure 15 (residual autocorrelation
    2×2 / 4×2 / 10×10). *)

open Spectr_control
open Spectr_sysid
module Platform_desc = Spectr_platform.Platform_desc

type subsystem =
  | Big_2x2  (** Inputs (big freq GHz, big cores) ↦ (QoS rate, big power). *)
  | Little_2x2
      (** Inputs (little freq, little cores) ↦ (little GIPS, little
          power); background load keeps the cluster busy during the
          experiment. *)
  | Fs_4x2
      (** All four cluster knobs ↦ (QoS rate, chip power) — the paper's
          full-system comparison controller. *)
  | Large_10x10
      (** 8 per-core idle-insertion knobs + 2 cluster frequencies ↦
          8 per-core GIPS + 2 cluster powers (Figure 4, right). *)
  | Cluster_2x2 of Platform_desc.t * int
      (** One cluster of an arbitrary platform description: (freq GHz,
          cores) ↦ (QoS rate | cluster GIPS, cluster power) — the
          description-driven generalization of [Big_2x2]/[Little_2x2].
          The host cluster is identified alone (QoS output), secondaries
          under background load (GIPS output); the excitation spans the
          middle of the cluster's own DVFS table.  The memo key includes
          the description (two platforms sharing a cluster name are
          distinct subsystems — {!subsystem_name} carries the platform
          digest). *)

val subsystem_name : subsystem -> string

val is_reference_platform : Platform_desc.t -> bool
(** Digest equality with [Platform_desc.exynos5422] — true for the
    built-in and for any CSV round-trip of it. *)

val cluster_subsystem : Platform_desc.t -> int -> subsystem
(** The 2×2 subsystem of one cluster of a description: [Big_2x2] /
    [Little_2x2] when the description is the reference Exynos (keeping
    their memo keys), [Cluster_2x2] otherwise. *)

type identified = {
  subsystem : subsystem;
  model : Arx.model;
  statespace : Statespace.t;
  input_channels : Mimo.channel array;
      (** Physical channel descriptions (offset/scale from the experiment
          operating point, saturation from the platform limits). *)
  output_channels : Mimo.channel array;
  report : Validation.report;  (** Cross-validation on held-out data. *)
  dataset : Dataset.t;  (** The standardized identification dataset. *)
}

val identify :
  ?seed:int64 -> ?length:int -> ?order:int -> subsystem -> identified
(** Run the identification experiment on a fresh simulated SoC running
    the microbenchmark.  [length] is the number of 50 ms periods
    (default 1200: 60 simulated seconds); [order] is na = nb (default
    2).

    Memoized per process (single-flight, keyed by the full parameter
    tuple): identification is a pure function of its parameters, so
    repeated manager construction — thousands of chaos-campaign cells,
    every parallel bench task — pays for each distinct experiment once.
    The returned record is immutable; treat it as shared. *)

type goal = {
  label : string;  (** Gain-set name, e.g. ["qos"]. *)
  q_y : float array;  (** Output-priority weights (Tracking Error Cost). *)
}

val design_gains :
  ?r_u:float array ->
  identified ->
  goal list ->
  (Lqg.gains list, string) result
(** One LQG gain set per goal (Step 7).  [r_u] defaults to the paper's
    2:1 frequency-over-cores effort costs, extended cyclically for wider
    input vectors.  Fails with a message naming the goal when a design
    does not come out robustly stable under the paper's uncertainty
    guardbands (Step 8). *)

val design_gains_for :
  ?r_u:float array ->
  ?seed:int64 ->
  ?length:int ->
  ?order:int ->
  subsystem ->
  goal list ->
  (Lqg.gains list, string) result
(** Memoized {!identify} + {!design_gains}: the gain sets for a
    (subsystem, seed, length, order, goals, r_u) key are designed once
    per process and shared read-only afterwards — the first manager of a
    variant pays the LQG/robustness pipeline, every later construction
    (chaos cells, batch bench arenas) gets the identical list back.
    Defaults match {!identify}. *)

val build_mimo :
  identified -> gains:Lqg.gains list -> initial:string -> refs:float array -> Mimo.t
(** Assemble the runtime leaf controller from an identification result
    and designed gain sets (Step 9). *)
