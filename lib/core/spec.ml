open Spectr_automata
module Platform_desc = Spectr_platform.Platform_desc

(* The specification is generated from the platform description: one
   budget-increase/decrease pair per cluster, everything else invariant.
   On exynos5422 the generated transition list is exactly the paper's
   hand-drawn figure (clusters in description order: big, little). *)
let generate desc =
  let fam = Events.for_platform desc in
  let k = Platform_desc.num_clusters desc in
  let each verb = List.init k verb in
  let transitions =
    List.concat
      [
        (* Normal operation: budget moves allowed. *)
        each (fun i -> ("Uncapped", Events.increase fam i, "Uncapped"));
        each (fun i -> ("Uncapped", Events.decrease fam i, "Uncapped"));
        [
          ("Uncapped", Events.control_power, "Uncapped");
          ("Uncapped", Events.safe_power, "Uncapped");
          ("Uncapped", Events.critical, "C1");
          (* Consecutive-violation counter: mitigation must complete
             before the third critical interval. *)
          ("C1", Events.switch_power, "Capped");
          ("C1", Events.critical, "C2");
          ("C2", Events.switch_power, "Capped");
          ("C2", Events.critical, "Threshold");
        ];
        (* Capped mode: budget increases are explicitly forbidden (they
           lead to the forbidden state, so synthesis must disable them);
           cuts and bookkeeping only. *)
        each (fun i -> ("Capped", Events.increase fam i, "Threshold"));
        each (fun i -> ("Capped", Events.decrease fam i, "Capped"));
        [
          ("Capped", Events.decrease_critical_power, "Capped");
          ("Capped", Events.control_power, "Capped");
          ("Capped", Events.critical, "CapHot");
          ("Capped", Events.safe_power, "CapSafe");
          ("CapHot", Events.decrease_critical_power, "Capped");
          ("CapHot", Events.control_power, "CapHot");
          ("CapHot", Events.critical, "Threshold");
          ("CapSafe", Events.switch_qos, "Uncapped");
        ];
      ]
  in
  Automaton.create ~marked:[ "Uncapped" ] ~forbidden:[ "Threshold" ]
    ~name:"ThreeBandCapping" ~initial:"Uncapped" ~transitions ()

(* Memoized per platform digest: supervisor construction happens per
   scenario cell and per bench task, and the synthesis cache downstream
   keys on the automaton, so handing back the identical value also keeps
   its digest computation amortized. *)
let mutex = Mutex.create ()
let cache : (string, Automaton.t) Hashtbl.t = Hashtbl.create 8

let of_platform desc =
  let digest = Platform_desc.digest desc in
  Mutex.lock mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock mutex)
    (fun () ->
      match Hashtbl.find_opt cache digest with
      | Some a -> a
      | None ->
          let a = generate desc in
          Hashtbl.replace cache digest a;
          a)

let three_band = of_platform Platform_desc.exynos5422
