open Spectr_linalg
open Spectr_platform

type phase_metrics = {
  phase_name : string;
  qos_error_pct : float;
  power_error_pct : float;
  power_settling_s : float option;
  compliance_time_s : float option;
  energy_j : float;
  energy_per_heartbeat_j : float;
}

(* Measurement allowance on the envelope for the compliance/recovery
   metrics: power counts as compliant up to envelope × 1.02.  This is a
   *metrology* tolerance — it absorbs sensor quantization and the
   controller's one-period actuation lag so the §5.1.1 responsiveness
   numbers aren't dominated by ±1-LSB flutter at the cap.  It is
   deliberately tighter than the 5 % *safety* guardband the chaos
   invariants allow (Spectr_chaos.Invariants.default_limits.guardband):
   an evaluation metric asks "how close to the envelope does the
   controller regulate", a soak invariant asks "did the chip stay inside
   the thermal design's safety margin".  Keep the two distinct. *)
let power_allowance = 1.02

(* First time from which chip power stays at or under the per-sample
   limit for the rest of the phase.  [limit] is indexed so a stepping
   envelope (chaos fault windows, fleet re-budgets landing mid-phase)
   is judged tick by tick; a constant envelope passes a constant
   function and computes the identical floats the old scalar scan did. *)
let compliance_scan ~limit ~dt power =
  let n = Array.length power in
  let last_violation = ref (-1) in
  for i = 0 to n - 1 do
    if not (power.(i) <= limit i) then last_violation := i
  done;
  if !last_violation = n - 1 then None
  else Some (float_of_int (!last_violation + 1) *. dt)

let compliance_time ~envelope ~dt power =
  let l = envelope *. power_allowance in
  compliance_scan ~limit:(fun _ -> l) ~dt power

let check_envelope_series name ~envelope ~power =
  if Array.length envelope <> Array.length power then
    invalid_arg
      (Printf.sprintf "Metrics.%s: envelope/power length mismatch (%d vs %d)"
         name (Array.length envelope) (Array.length power))

let compliance_time_series ~envelope ~dt power =
  check_envelope_series "compliance_time_series" ~envelope ~power;
  compliance_scan ~limit:(fun i -> envelope.(i) *. power_allowance) ~dt power

(* First sample index >= [after] from which [pred i] holds for every
   remaining sample, or None.  Shared scan behind the fault-recovery
   metrics: find the last offending sample and step past it. *)
let sustained_from_i ~after pred n =
  if after >= n then None
  else begin
    let last_bad = ref (after - 1) in
    for i = after to n - 1 do
      if not (pred i) then last_bad := i
    done;
    if !last_bad = n - 1 then None else Some (max after (!last_bad + 1))
  end

let sustained_from ~after pred arr =
  sustained_from_i ~after (fun i -> pred arr.(i)) (Array.length arr)

let recovery_time ~envelope ~dt ~after power =
  let limit = envelope *. power_allowance in
  match sustained_from ~after (fun p -> p <= limit) power with
  | None -> None
  | Some i -> Some (float_of_int (i - after) *. dt)

let recovery_time_series ~envelope ~dt ~after power =
  check_envelope_series "recovery_time_series" ~envelope ~power;
  match
    sustained_from_i ~after
      (fun i -> power.(i) <= envelope.(i) *. power_allowance)
      (Array.length power)
  with
  | None -> None
  | Some i -> Some (float_of_int (i - after) *. dt)

let reconvergence_time ~reference ~band ~dt ~after qos =
  let tol = band *. Float.abs reference in
  match
    sustained_from ~after (fun q -> Float.abs (q -. reference) <= tol) qos
  with
  | None -> None
  | Some i -> Some (float_of_int (i - after) *. dt)

(* Tail-averaged steady-state error against a per-sample reference:
   mean of (reference_i − measured_i) over the tail, as a percent of the
   tail-mean reference.  The generalization of
   [Stats.steady_state_error] a stepping envelope needs — the constant
   case keeps the scalar path below so long-pinned bench output is
   bit-identical. *)
let steady_state_error_series ~reference ~measured ~tail =
  let n = Array.length measured in
  let k = max 1 (min tail n) in
  let err = ref 0. and ref_sum = ref 0. in
  for i = n - k to n - 1 do
    err := !err +. (reference.(i) -. measured.(i));
    ref_sum := !ref_sum +. reference.(i)
  done;
  let avg = !err /. float_of_int k in
  let ref_avg = !ref_sum /. float_of_int k in
  if ref_avg = 0. then avg else 100. *. avg /. ref_avg

(* Settling against a per-sample reference: the band tracks the stepping
   envelope instead of whatever the phase's first sample happened to
   hold. *)
let settling_time_series ~reference ~band ~dt y =
  let n = Array.length y in
  if n = 0 then None
  else begin
    let within i =
      Float.abs (y.(i) -. reference.(i)) <= Float.abs (band *. reference.(i))
    in
    let last_violation = ref (-1) in
    for i = 0 to n - 1 do
      if not (within i) then last_violation := i
    done;
    if !last_violation = n - 1 then None
    else Some (float_of_int (!last_violation + 1) *. dt)
  end

let constant arr =
  let n = Array.length arr in
  let rec go i = i >= n || (arr.(i) = arr.(0) && go (i + 1)) in
  go 1

let per_phase ~trace ~config =
  let bounds = Scenario.phase_bounds config in
  (* A phase whose duration rounds to zero controller periods records no
     samples; skip it rather than slicing an empty column. *)
  let bounds = List.filter (fun (_, from, upto) -> upto > from) bounds in
  List.map
    (fun (phase_name, from, upto) ->
      let qos = Trace.column_slice trace "qos" ~from ~upto in
      let power = Trace.column_slice trace "power" ~from ~upto in
      (* The envelope is a per-tick column: a phase whose envelope steps
         mid-phase (chaos fault windows, fleet cap re-budgets) must be
         judged against the tick-by-tick value, not the slice's first
         sample.  The constant case — every scenario phase the bench
         tables pin — takes the scalar code path so those outputs stay
         byte-identical. *)
      let envelopes = Trace.column_slice trace "envelope" ~from ~upto in
      let envelope = envelopes.(0) in
      let env_constant = constant envelopes in
      let n = Array.length qos in
      let tail = max 1 (int_of_float (0.4 *. float_of_int n)) in
      let dt = config.Scenario.controller_period in
      let energy_j = dt *. Array.fold_left ( +. ) 0. power in
      let heartbeats = dt *. Array.fold_left ( +. ) 0. qos in
      {
        phase_name;
        qos_error_pct =
          Stats.steady_state_error ~reference:config.Scenario.qos_ref
            ~measured:qos ~tail;
        power_error_pct =
          (if env_constant then
             Stats.steady_state_error ~reference:envelope ~measured:power ~tail
           else
             steady_state_error_series ~reference:envelopes ~measured:power
               ~tail);
        power_settling_s =
          (if env_constant then
             Stats.settling_time ~reference:envelope ~band:0.05 ~dt power
           else settling_time_series ~reference:envelopes ~band:0.05 ~dt power);
        compliance_time_s =
          (if env_constant then compliance_time ~envelope ~dt power
           else compliance_time_series ~envelope:envelopes ~dt power);
        energy_j;
        energy_per_heartbeat_j =
          (if heartbeats > 0. then energy_j /. heartbeats else infinity);
      })
    bounds

let pp_phase_metrics ppf m =
  let pp_time = function
    | Some s -> Printf.sprintf "%.2fs" s
    | None -> "never"
  in
  Format.fprintf ppf
    "%-12s qos %+7.2f%%  power %+7.2f%%  settle %s  comply %s  %.3f J/HB"
    m.phase_name m.qos_error_pct m.power_error_pct
    (pp_time m.power_settling_s)
    (pp_time m.compliance_time_s)
    m.energy_per_heartbeat_j

let find metrics name =
  match List.find_opt (fun m -> m.phase_name = name) metrics with
  | Some m -> m
  | None ->
      (* A bare [Not_found] out of a bench table is undiagnosable — name
         the missing phase and what was actually available. *)
      invalid_arg
        (Printf.sprintf "Metrics.find: no phase %S (available: %s)" name
           (match metrics with
           | [] -> "none"
           | _ ->
               String.concat ", "
                 (List.map (fun m -> Printf.sprintf "%S" m.phase_name) metrics)))

let qos_of metrics name = (find metrics name).qos_error_pct
let power_of metrics name = (find metrics name).power_error_pct
