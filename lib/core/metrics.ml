open Spectr_linalg
open Spectr_platform

type phase_metrics = {
  phase_name : string;
  qos_error_pct : float;
  power_error_pct : float;
  power_settling_s : float option;
  compliance_time_s : float option;
  energy_j : float;
  energy_per_heartbeat_j : float;
}

(* Measurement allowance on the envelope for the compliance/recovery
   metrics: power counts as compliant up to envelope × 1.02.  This is a
   *metrology* tolerance — it absorbs sensor quantization and the
   controller's one-period actuation lag so the §5.1.1 responsiveness
   numbers aren't dominated by ±1-LSB flutter at the cap.  It is
   deliberately tighter than the 5 % *safety* guardband the chaos
   invariants allow (Spectr_chaos.Invariants.default_limits.guardband):
   an evaluation metric asks "how close to the envelope does the
   controller regulate", a soak invariant asks "did the chip stay inside
   the thermal design's safety margin".  Keep the two distinct. *)
let power_allowance = 1.02

(* First time from which chip power stays at or under the envelope (with
   the [power_allowance] tolerance) for the rest of the phase. *)
let compliance_time ~envelope ~dt power =
  let n = Array.length power in
  let limit = envelope *. power_allowance in
  let rec last_violation i acc =
    if i >= n then acc
    else last_violation (i + 1) (if power.(i) <= limit then acc else i)
  in
  let lv = last_violation 0 (-1) in
  if lv = n - 1 then None else Some (float_of_int (lv + 1) *. dt)

(* First sample index >= [after] from which [pred] holds for every
   remaining sample, or None.  Shared scan behind the fault-recovery
   metrics: find the last offending sample and step past it. *)
let sustained_from ~after pred arr =
  let n = Array.length arr in
  if after >= n then None
  else begin
    let last_bad = ref (after - 1) in
    for i = after to n - 1 do
      if not (pred arr.(i)) then last_bad := i
    done;
    if !last_bad = n - 1 then None else Some (max after (!last_bad + 1))
  end

let recovery_time ~envelope ~dt ~after power =
  let limit = envelope *. power_allowance in
  match sustained_from ~after (fun p -> p <= limit) power with
  | None -> None
  | Some i -> Some (float_of_int (i - after) *. dt)

let reconvergence_time ~reference ~band ~dt ~after qos =
  let tol = band *. Float.abs reference in
  match
    sustained_from ~after (fun q -> Float.abs (q -. reference) <= tol) qos
  with
  | None -> None
  | Some i -> Some (float_of_int (i - after) *. dt)

let per_phase ~trace ~config =
  let bounds = Scenario.phase_bounds config in
  (* A phase whose duration rounds to zero controller periods records no
     samples; skip it rather than slicing an empty column (the envelope
     lookup below reads the slice's first sample). *)
  let bounds = List.filter (fun (_, from, upto) -> upto > from) bounds in
  List.map
    (fun (phase_name, from, upto) ->
      let qos = Trace.column_slice trace "qos" ~from ~upto in
      let power = Trace.column_slice trace "power" ~from ~upto in
      let envelope = (Trace.column_slice trace "envelope" ~from ~upto).(0) in
      let n = Array.length qos in
      let tail = max 1 (int_of_float (0.4 *. float_of_int n)) in
      let dt = config.Scenario.controller_period in
      let energy_j = dt *. Array.fold_left ( +. ) 0. power in
      let heartbeats = dt *. Array.fold_left ( +. ) 0. qos in
      {
        phase_name;
        qos_error_pct =
          Stats.steady_state_error ~reference:config.Scenario.qos_ref
            ~measured:qos ~tail;
        power_error_pct =
          Stats.steady_state_error ~reference:envelope ~measured:power ~tail;
        power_settling_s =
          Stats.settling_time ~reference:envelope ~band:0.05
            ~dt:config.Scenario.controller_period power;
        compliance_time_s =
          compliance_time ~envelope ~dt:config.Scenario.controller_period
            power;
        energy_j;
        energy_per_heartbeat_j =
          (if heartbeats > 0. then energy_j /. heartbeats else infinity);
      })
    bounds

let pp_phase_metrics ppf m =
  let pp_time = function
    | Some s -> Printf.sprintf "%.2fs" s
    | None -> "never"
  in
  Format.fprintf ppf
    "%-12s qos %+7.2f%%  power %+7.2f%%  settle %s  comply %s  %.3f J/HB"
    m.phase_name m.qos_error_pct m.power_error_pct
    (pp_time m.power_settling_s)
    (pp_time m.compliance_time_s)
    m.energy_per_heartbeat_j

let find metrics name =
  match List.find_opt (fun m -> m.phase_name = name) metrics with
  | Some m -> m
  | None -> raise Not_found

let qos_of metrics name = (find metrics name).qos_error_pct
let power_of metrics name = (find metrics name).power_error_pct
