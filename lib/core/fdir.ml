(* Fault detection and isolation: the sensing half of the FDIR ladder
   (healthy -> guarded -> reconfigured -> open-loop-fallback).

   The detector never consults ground truth.  It watches exactly what a
   runtime daemon on real silicon could watch:

   - {e exact-zero streaks} on the power sensors, the QoS heartbeat rate
     and the per-cluster IPS aggregates.  A live cluster's power reading
     is never exactly 0.0 (uncore and leakage draw are strictly
     positive, and the SoC's multiplicative sensor noise maps nonzero to
     nonzero), so a sustained exact zero is sensor death, line dropout
     or cluster death — never physics;
   - {e actuation mismatches}: the per-cluster readback comparison the
     guarded layer already performs (requested OPP vs. applied OPP);
   - {e Kalman innovation residuals}: ‖y − C·x̂‖₂ from each cluster's
     MIMO controller ({!Mimo.last_innovation_norm}), the
     model-consistency signal that flags a plant that stopped matching
     its identified model.  Residuals corroborate and are surfaced as
     verdicts/counters, but never drive reconfiguration on their own —
     a noisy residual must not amputate a healthy cluster.

   Persistence counters (generalizing {!Guarded}'s streak logic) turn
   raw evidence into a two-stage classification: a streak crossing
   [transient_ticks] yields a "transient" verdict (logged, counted, no
   action — the guarded layer's clamps already cover it); a streak
   crossing [permanent_ticks] latches a "permanent" verdict and emits a
   {!finding} for the reconfiguration engine.  Isolation — naming the
   failed channel — disambiguates with cross-channel evidence: a
   permanently-zero power sensor whose cluster still reports instruction
   throughput is a dead {e sensor}; zero power with zero throughput is a
   dead {e cluster}.  With no work placed on a cluster the two are
   indistinguishable from sensors alone, and the detector deliberately
   errs on the safe side (cluster death → the cluster is removed from
   the supervised plant; losing a healthy-but-idle cluster costs
   capacity, never safety).

   Every verdict increments an [fdir.*] counter and, when observability
   is enabled, appends a {!Spectr_obs.Decision_log.Fdir} entry. *)

module Obs = Spectr_obs

let c_transient = Obs.Counters.counter "fdir.transient_verdicts"
let c_permanent = Obs.Counters.counter "fdir.permanent_verdicts"
let c_cleared = Obs.Counters.counter "fdir.cleared_verdicts"

type finding =
  | Cluster_down of int
  | Power_sensor_down of int
  | Qos_sensor_down
  | Dvfs_latched of int

let finding_channel = function
  | Cluster_down i -> "cluster" ^ string_of_int i
  | Power_sensor_down i -> "power" ^ string_of_int i
  | Qos_sensor_down -> "qos"
  | Dvfs_latched i -> "dvfs" ^ string_of_int i

(* Per-channel classification stage: quiet, transient-flagged, or
   permanently latched (permanent never un-latches — recovery is the
   reconfiguration engine's job, not the detector's). *)
let quiet = 0
let flagged = 1
let latched = 2

type t = {
  k : int;
  host : int;
  transient_ticks : int;
  permanent_ticks : int;
  innovation_threshold : float;
  (* Evidence streaks. *)
  pow_zero : int array; (* per cluster: power sensor reads exact 0.0 *)
  ips_zero : int array; (* per cluster: aggregate IPS reads exact 0.0 *)
  mutable qos_zero : int;
  act_bad : int array; (* per cluster: actuation readback mismatches *)
  innov_high : int array; (* per cluster: residual above threshold *)
  (* Classification stages per monitored channel. *)
  pow_stage : int array;
  mutable qos_stage : int;
  act_stage : int array;
  innov_stage : int array;
  (* Permanent findings awaiting {!poll}; emitted exactly once. *)
  mutable pending : finding list;
}

let create ?(transient_ticks = 6) ?(permanent_ticks = 60)
    ?(innovation_threshold = 4.0) ~k ~host () =
  if k < 1 then invalid_arg "Fdir.create: k < 1";
  if host < 0 || host >= k then invalid_arg "Fdir.create: host out of range";
  if transient_ticks < 1 || permanent_ticks <= transient_ticks then
    invalid_arg "Fdir.create: want 1 <= transient_ticks < permanent_ticks";
  if not (Float.is_finite innovation_threshold && innovation_threshold > 0.)
  then invalid_arg "Fdir.create: innovation_threshold";
  {
    k;
    host;
    transient_ticks;
    permanent_ticks;
    innovation_threshold;
    pow_zero = Array.make k 0;
    ips_zero = Array.make k 0;
    qos_zero = 0;
    act_bad = Array.make k 0;
    innov_high = Array.make k 0;
    pow_stage = Array.make k quiet;
    qos_stage = quiet;
    act_stage = Array.make k quiet;
    innov_stage = Array.make k quiet;
    pending = [];
  }

let log_verdict ~channel ~verdict =
  (match verdict with
  | "transient" -> Obs.Counters.incr c_transient
  | "permanent" -> Obs.Counters.incr c_permanent
  | _ -> Obs.Counters.incr c_cleared);
  if Obs.enabled () then
    Obs.Decision_log.record (Obs.Decision_log.Fdir { channel; verdict })

(* Advance one channel's stage machine given its current streak; calls
   [isolate ()] exactly once, at the permanent crossing, to produce the
   finding (or [None] for corroborating-only channels). *)
let classify t ~channel ~streak ~stage ~set_stage ~isolate =
  if stage <> latched then begin
    if streak >= t.permanent_ticks then begin
      set_stage latched;
      log_verdict ~channel ~verdict:"permanent";
      match isolate () with
      | None -> ()
      | Some f -> t.pending <- f :: t.pending
    end
    else if streak >= t.transient_ticks then begin
      if stage = quiet then begin
        set_stage flagged;
        log_verdict ~channel ~verdict:"transient"
      end
    end
    else if streak = 0 && stage = flagged then begin
      set_stage quiet;
      log_verdict ~channel ~verdict:"cleared"
    end
  end

let[@inline] bump streak hit = if hit then streak + 1 else 0

let observe t ~qos ~powers ~ips =
  if Array.length powers <> t.k then invalid_arg "Fdir.observe: powers length";
  if Array.length ips <> t.k then invalid_arg "Fdir.observe: ips length";
  for i = 0 to t.k - 1 do
    t.pow_zero.(i) <- bump t.pow_zero.(i) (powers.(i) = 0.);
    t.ips_zero.(i) <- bump t.ips_zero.(i) (ips.(i) = 0.)
  done;
  t.qos_zero <- bump t.qos_zero (qos = 0.);
  for i = 0 to t.k - 1 do
    classify t
      ~channel:("power" ^ string_of_int i)
      ~streak:t.pow_zero.(i) ~stage:t.pow_stage.(i)
      ~set_stage:(fun s -> t.pow_stage.(i) <- s)
      ~isolate:(fun () ->
        (* Dead sensor vs. dead cluster: does anything else prove the
           cluster is still executing?  The host's execution witness is
           the heartbeat rate (its IPS aggregate is not materialized on
           the hot path); secondaries witness through their IPS sum. *)
        let executing =
          if i = t.host then t.qos_zero < t.permanent_ticks
          else t.ips_zero.(i) < t.permanent_ticks
        in
        if executing then Some (Power_sensor_down i) else Some (Cluster_down i))
  done;
  classify t ~channel:"qos" ~streak:t.qos_zero ~stage:t.qos_stage
    ~set_stage:(fun s -> t.qos_stage <- s)
    ~isolate:(fun () ->
      (* Host power also permanently zero means the host cluster is dead
         — the power channel's finding already covers it. *)
      if t.pow_zero.(t.host) >= t.permanent_ticks then None
      else Some Qos_sensor_down)

let note_actuation t ~cluster ~ok =
  if cluster < 0 || cluster >= t.k then
    invalid_arg "Fdir.note_actuation: cluster";
  t.act_bad.(cluster) <- bump t.act_bad.(cluster) (not ok);
  classify t
    ~channel:("dvfs" ^ string_of_int cluster)
    ~streak:t.act_bad.(cluster) ~stage:t.act_stage.(cluster)
    ~set_stage:(fun s -> t.act_stage.(cluster) <- s)
    ~isolate:(fun () -> Some (Dvfs_latched cluster))

let note_innovation t ~cluster ~norm =
  if cluster < 0 || cluster >= t.k then
    invalid_arg "Fdir.note_innovation: cluster";
  t.innov_high.(cluster) <-
    bump t.innov_high.(cluster) (norm > t.innovation_threshold);
  classify t
    ~channel:("model" ^ string_of_int cluster)
    ~streak:t.innov_high.(cluster) ~stage:t.innov_stage.(cluster)
    ~set_stage:(fun s -> t.innov_stage.(cluster) <- s)
    ~isolate:(fun () -> None)

let poll t =
  match t.pending with
  | [] -> []
  | pending ->
      t.pending <- [];
      List.rev pending

let residual_flagged t ~cluster =
  if cluster < 0 || cluster >= t.k then
    invalid_arg "Fdir.residual_flagged: cluster";
  t.innov_stage.(cluster) <> quiet

(* --- checkpoint/restore ----------------------------------------------- *)

type snapshot = {
  snap_pow_zero : int array;
  snap_ips_zero : int array;
  snap_qos_zero : int;
  snap_act_bad : int array;
  snap_innov_high : int array;
  snap_pow_stage : int array;
  snap_qos_stage : int;
  snap_act_stage : int array;
  snap_innov_stage : int array;
  snap_pending : finding list;
}

let snapshot t =
  {
    snap_pow_zero = Array.copy t.pow_zero;
    snap_ips_zero = Array.copy t.ips_zero;
    snap_qos_zero = t.qos_zero;
    snap_act_bad = Array.copy t.act_bad;
    snap_innov_high = Array.copy t.innov_high;
    snap_pow_stage = Array.copy t.pow_stage;
    snap_qos_stage = t.qos_stage;
    snap_act_stage = Array.copy t.act_stage;
    snap_innov_stage = Array.copy t.innov_stage;
    snap_pending = t.pending;
  }

let restore t s =
  if Array.length s.snap_pow_zero <> t.k then
    invalid_arg "Fdir.restore: snapshot dimension mismatch";
  Array.blit s.snap_pow_zero 0 t.pow_zero 0 t.k;
  Array.blit s.snap_ips_zero 0 t.ips_zero 0 t.k;
  t.qos_zero <- s.snap_qos_zero;
  Array.blit s.snap_act_bad 0 t.act_bad 0 t.k;
  Array.blit s.snap_innov_high 0 t.innov_high 0 t.k;
  Array.blit s.snap_pow_stage 0 t.pow_stage 0 t.k;
  t.qos_stage <- s.snap_qos_stage;
  Array.blit s.snap_act_stage 0 t.act_stage 0 t.k;
  Array.blit s.snap_innov_stage 0 t.innov_stage 0 t.k;
  t.pending <- s.snap_pending
