(** Intended-behaviour specification (Figure 12c).

    The three-band power-capping specification restricts the plant:

    - the chip may stay above the capping threshold for {e at most three
      consecutive control intervals} — the third consecutive [critical]
      without a completed mitigation reaches the forbidden [Threshold]
      state (drawn with a red cross in the paper);
    - while capped (power-oriented gains active), budget {e increases}
      lead to the forbidden state — synthesis must disable those
      controllable events, leaving only [controlPower] bookkeeping and
      [decreaseCriticalPower] cuts — and the supervisor must return to
      QoS gains ([switchQoS]) only after power re-enters the safe region
      ([safePower]).

    Synthesis against {!Plant_model.composed} prunes the forbidden state
    and every state that uncontrollably reaches it. *)

open Spectr_automata

val three_band : Automaton.t
(** States: Uncapped (initial, marked), C1, C2, Threshold (forbidden),
    Capped, CapHot, CapSafe.  Equals
    [of_platform Platform_desc.exynos5422]. *)

val of_platform : Spectr_platform.Platform_desc.t -> Automaton.t
(** The three-band specification generated for a platform description:
    one budget increase/decrease pair per cluster (in description
    order), same band structure.  Memoized per platform digest; on
    [exynos5422] the generated automaton is structurally identical to
    the hand-written figure. *)
