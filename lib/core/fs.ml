open Spectr_control
open Spectr_platform

let make ?(seed = 17L) () =
  let ident = Design_flow.identify ~seed Design_flow.Fs_4x2 in
  let gains =
    match
      Design_flow.design_gains_for ~seed Design_flow.Fs_4x2
        [ { Design_flow.label = "power"; q_y = [| 0.1; 30. |] } ]
    with
    | Ok g -> g
    | Error msg -> failwith ("Fs: " ^ msg)
  in
  let ctrl =
    Design_flow.build_mimo ident ~gains ~initial:"power" ~refs:[| 60.; 5. |]
  in
  let meas = [| 0.; 0. |] and u = [| 0.; 0.; 0.; 0. |] in
  let step ~now:_ ~qos_ref ~envelope ~obs soc =
    Mimo.set_reference ctrl ~index:0 qos_ref;
    Mimo.set_reference ctrl ~index:1 envelope;
    meas.(0) <- obs.Soc.qos_rate;
    meas.(1) <- obs.Soc.chip_power;
    Mimo.step_into ctrl ~measured:meas ~dst:u;
    (* Exynos cluster indices: FS is identified on the reference
       big.LITTLE platform only (Scenario rejects it elsewhere). *)
    Manager.apply_cluster_quiet soc 0 ~freq_ghz:u.(0) ~cores:u.(1);
    Manager.apply_cluster_quiet soc 1 ~freq_ghz:u.(2) ~cores:u.(3)
  in
  let persist =
    {
      Manager.snapshot =
        (fun () ->
          {
            Manager.variant = "FS";
            payload = Marshal.to_string (Mimo.snapshot ctrl) [];
          });
      restore =
        (fun c ->
          Manager.require_variant ~expect:"FS" c;
          Mimo.restore ctrl
            (Marshal.from_string c.Manager.payload 0 : Mimo.snapshot));
    }
  in
  { Manager.name = "FS"; step; persist = Some persist }
