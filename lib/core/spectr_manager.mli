(** The full SPECTR resource manager (Figure 9 / Figure 10): one 2×2 LQG
    leaf controller per cluster, each carrying both QoS- and
    power-oriented gain sets, orchestrated by the synthesized supervisory
    controller.

    The supervisor runs every [supervisor_divisor] controller periods
    (default 2: 100 ms over a 50 ms loop, as in §5) and acts only through
    the two SCT mechanisms of §3.2 — gain scheduling and reference
    (budget) regulation. *)

val make :
  ?seed:int64 ->
  ?supervisor_divisor:int ->
  ?gain_scheduling:bool ->
  ?guards:Guarded.t ->
  ?platform:Spectr_platform.Platform_desc.t ->
  unit ->
  Manager.t * Supervisor.t
(** Returns the manager and a handle on its supervisor (for inspecting
    mode, budgets and synthesis statistics).  [gain_scheduling:false]
    builds the ablation variant whose supervisor still regulates budgets
    but never switches gains.

    [platform] (default [Platform_desc.exynos5422]) selects the platform
    description: one leaf controller per cluster, identified through
    {!Design_flow.Cluster_2x2} and supervised by the description-derived
    synthesis.  On the Exynos description the original
    [Big_2x2]/[Little_2x2] subsystems (and their memo keys) are used, so
    behaviour is bit-identical to previous releases.

    [guards] arms the graceful-degradation layer (named ["SPECTR+G"]):
    observations pass through {!Guarded.filter}, actuation readbacks
    feed {!Guarded.note_actuation}, and while {!Guarded.degraded} holds
    the manager pins the minimum-power open-loop fallback with the
    supervisor and every leaf controller frozen.  The guard must have
    been created with [clusters] equal to the platform's cluster count.
    Raises [Invalid_argument] when [supervisor_divisor < 1] or on a
    guard/platform cluster-count mismatch. *)

(** {1 Degraded-mode reconfiguration (SPECTR+R)} *)

(** Handle on the reconfiguration engine of a manager built by
    {!make_reconfigurable}: the current rung of the FDIR ladder, the
    (possibly degraded) supervised description, and the live supervisor
    (which changes identity on every hot-swap — do not cache it). *)
module Reconfig : sig
  type status =
    | Nominal  (** Closed loop on the boot-time description. *)
    | Swapping
        (** Bounded open-loop window (floor actuation) while the
            re-synthesized supervisor is swapped in. *)
    | Reconfigured  (** Closed loop on a degraded description. *)
    | Fallback
        (** Permanent open-loop floor: dead host cluster, blind QoS
            sensor, or a degradation the description cannot express. *)

  val status_label : status -> string
  (** ["nominal"], ["swapping"], ["reconfigured"] or ["fallback"] — the
      strings used in [Decision_log.Reconfig] entries. *)

  type handle

  val status : handle -> status

  val reconfigurations : handle -> int
  (** Completed supervisor hot-swaps. *)

  val platform : handle -> Spectr_platform.Platform_desc.t
  (** The currently supervised description ({!status} [Reconfigured]
      implies it differs from the boot-time description). *)

  val supervisor : handle -> Supervisor.t
  (** The live supervisor.  Replaced on every hot-swap. *)

  val fdir : handle -> Fdir.t
  val guard : handle -> Guarded.t

  val last_resynth_s : handle -> float
  (** CPU seconds spent synthesizing the most recent replacement
      supervisor (0 before the first reconfiguration).  Warm
      {!Synth_cache} hits make this well under a second. *)

  val excluded_clusters : handle -> int list
  (** Physical cluster indices removed from the supervised plant,
      ascending. *)
end

val make_reconfigurable :
  ?seed:int64 ->
  ?supervisor_divisor:int ->
  ?gain_scheduling:bool ->
  ?swap_ticks:int ->
  ?guards:Guarded.t ->
  ?platform:Spectr_platform.Platform_desc.t ->
  unit ->
  Manager.t * Reconfig.handle
(** The self-healing variant (named ["SPECTR+R"]): {!make}'s guarded
    closed loop plus an {!Fdir} detector and a reconfiguration engine
    walking the FDIR ladder healthy → guarded → reconfigured →
    open-loop-fallback.

    On a permanent FDIR verdict the engine derives a degraded
    description ({!Spectr_platform.Platform_desc.degrade}), re-runs
    supervisor synthesis on it (warm through {!Synth_cache}), maps the
    outgoing engine state across with {!Supervisor.adopt}, and resumes
    closed-loop control after a bounded open-loop swap window of
    [swap_ticks] periods (default 4) at floor actuation.  Surviving
    clusters keep their leaf controllers — their physics did not change.
    Dead clusters are never actuated again; live clusters whose power
    sensor died are pinned to their floor OPP; a latched DVFS rail keeps
    its cluster in the plant on a {!Spectr_platform.Platform_desc.Pin_opp}
    description.  Unrecoverable faults (dead host, blind QoS sensor)
    drop to the permanent open-loop floor.

    [guards] defaults to a fresh {!Guarded.create} — the guard is
    integral to the ladder, not optional.  The manager does not support
    checkpointing ([persist = None]): the supervised description itself
    is runtime state.  Raises [Invalid_argument] as {!make}, or when
    [swap_ticks < 1]. *)
