(** The full SPECTR resource manager (Figure 9 / Figure 10): two
    per-cluster 2×2 LQG leaf controllers, each carrying both QoS- and
    power-oriented gain sets, orchestrated by the synthesized supervisory
    controller.

    The supervisor runs every [supervisor_divisor] controller periods
    (default 2: 100 ms over a 50 ms loop, as in §5) and acts only through
    the two SCT mechanisms of §3.2 — gain scheduling and reference
    (budget) regulation. *)

val make :
  ?seed:int64 ->
  ?supervisor_divisor:int ->
  ?gain_scheduling:bool ->
  ?guards:Guarded.t ->
  unit ->
  Manager.t * Supervisor.t
(** Returns the manager and a handle on its supervisor (for inspecting
    mode, budgets and synthesis statistics).  [gain_scheduling:false]
    builds the ablation variant whose supervisor still regulates budgets
    but never switches gains.

    [guards] arms the graceful-degradation layer (named ["SPECTR+G"]):
    observations pass through {!Guarded.filter}, actuation readbacks
    feed {!Guarded.note_actuation}, and while {!Guarded.degraded} holds
    the manager pins the minimum-power open-loop fallback with the
    supervisor and both leaf controllers frozen.  Without [guards]
    (the default) behaviour is bit-identical to previous releases.
    Raises [Invalid_argument] when [supervisor_divisor < 1]. *)
