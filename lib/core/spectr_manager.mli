(** The full SPECTR resource manager (Figure 9 / Figure 10): one 2×2 LQG
    leaf controller per cluster, each carrying both QoS- and
    power-oriented gain sets, orchestrated by the synthesized supervisory
    controller.

    The supervisor runs every [supervisor_divisor] controller periods
    (default 2: 100 ms over a 50 ms loop, as in §5) and acts only through
    the two SCT mechanisms of §3.2 — gain scheduling and reference
    (budget) regulation. *)

val make :
  ?seed:int64 ->
  ?supervisor_divisor:int ->
  ?gain_scheduling:bool ->
  ?guards:Guarded.t ->
  ?platform:Spectr_platform.Platform_desc.t ->
  unit ->
  Manager.t * Supervisor.t
(** Returns the manager and a handle on its supervisor (for inspecting
    mode, budgets and synthesis statistics).  [gain_scheduling:false]
    builds the ablation variant whose supervisor still regulates budgets
    but never switches gains.

    [platform] (default [Platform_desc.exynos5422]) selects the platform
    description: one leaf controller per cluster, identified through
    {!Design_flow.Cluster_2x2} and supervised by the description-derived
    synthesis.  On the Exynos description the original
    [Big_2x2]/[Little_2x2] subsystems (and their memo keys) are used, so
    behaviour is bit-identical to previous releases.

    [guards] arms the graceful-degradation layer (named ["SPECTR+G"]):
    observations pass through {!Guarded.filter}, actuation readbacks
    feed {!Guarded.note_actuation}, and while {!Guarded.degraded} holds
    the manager pins the minimum-power open-loop fallback with the
    supervisor and every leaf controller frozen.  The guard must have
    been created with [clusters] equal to the platform's cluster count.
    Raises [Invalid_argument] when [supervisor_divisor < 1] or on a
    guard/platform cluster-count mismatch. *)
