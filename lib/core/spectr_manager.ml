open Spectr_control
open Spectr_platform
module Obs = Spectr_obs

(* Observability handles (no-ops while instrumentation is disabled). *)
let c_steps = Obs.Counters.counter "manager.steps"
let c_degraded = Obs.Counters.counter "manager.degraded_steps"
let c_act_mismatch = Obs.Counters.counter "guard.actuation_mismatches"

let design_or_fail ~seed subsystem goals =
  match Design_flow.design_gains_for ~seed subsystem goals with
  | Ok gains -> gains
  | Error msg -> failwith ("Spectr_manager: " ^ msg)

let make ?(seed = 17L) ?(supervisor_divisor = 2) ?(gain_scheduling = true)
    ?guards ?(platform = Platform_desc.exynos5422) () =
  if supervisor_divisor < 1 then
    invalid_arg "Spectr_manager.make: supervisor_divisor < 1";
  let k = Platform_desc.num_clusters platform in
  let host = Platform_desc.host platform in
  (match guards with
  | Some g when Guarded.clusters g <> k ->
      invalid_arg
        (Printf.sprintf
           "Spectr_manager.make: guard tracks %d power channels, platform \
            has %d clusters"
           (Guarded.clusters g) k)
  | _ -> ());
  (* The Exynos description keeps the original Big_2x2/Little_2x2
     subsystems (same memo keys, same identification experiments); any
     other description identifies each cluster through the generic
     Cluster_2x2 path. *)
  let is_exynos = Design_flow.is_reference_platform platform in
  let subsystem_for i = Design_flow.cluster_subsystem platform i in
  let idents =
    Array.init k (fun i -> Design_flow.identify ~seed (subsystem_for i))
  in
  let goals =
    [
      { Design_flow.label = "qos"; q_y = Mm.qos_weights };
      { Design_flow.label = "power"; q_y = Mm.power_weights };
    ]
  in
  (* In QoS mode the secondary clusters are kept moderately fast so they
     can absorb background interference; in power mode the gain switch
     makes their power budgets the pinned objective. *)
  let refs_for i = if i = host then [| 60.; 4. |] else [| 2.0; 0.3 |] in
  let ctrls =
    Array.init k (fun i ->
        Design_flow.build_mimo idents.(i)
          ~gains:(design_or_fail ~seed (subsystem_for i) goals)
          ~initial:"qos" ~refs:(refs_for i))
  in
  let commands =
    {
      Supervisor.switch_gains =
        (fun label ->
          if gain_scheduling then
            Array.iter (fun c -> Mimo.switch_gains c label) ctrls);
      set_power_ref = (fun i v -> Mimo.set_reference ctrls.(i) ~index:1 v);
    }
  in
  let sup = Supervisor.create ~platform ~commands ~envelope:5.0 () in
  let tick = ref 0 in
  (* One cluster actuation, with actuator-fault detection when guarded:
     the applied OPP/core count read back from the platform must match
     the sanitized expectation. *)
  let actuate guard soc cluster ~freq_ghz ~cores ~now =
    match guard with
    | None ->
        (* Unguarded tick path: nobody consumes the readback. *)
        Manager.apply_cluster_quiet soc cluster ~freq_ghz ~cores
    | Some g ->
        let applied = Manager.apply_cluster soc cluster ~freq_ghz ~cores in
        let table = Soc.opp_table soc cluster in
        let expected_freq =
          Opp.nearest table (Manager.sanitize_freq_mhz table freq_ghz)
        in
        let expected_cores =
          Manager.sanitize_cores ~max_cores:(Soc.cluster_cores soc cluster)
            cores
        in
        let ok =
          applied.Manager.freq_mhz = expected_freq
          && applied.Manager.cores = expected_cores
        in
        if not ok then Obs.Counters.incr c_act_mismatch;
        Guarded.note_actuation g ~now ~ok
  in
  (* Preallocated measurement/command buffers, one pair per cluster: the
     tick path writes them in place instead of building fresh arrays
     every period. *)
  let meas = Array.init k (fun _ -> [| 0.; 0. |]) in
  let cmd = Array.init k (fun _ -> [| 0.; 0. |]) in
  let step ~now ~qos_ref ~envelope ~obs soc =
    Obs.Counters.incr c_steps;
    (* SoC-owned per-cluster sensor array: read-only here, valid until
       the next platform step. *)
    let raw_powers = Soc.sensor_powers soc in
    let qos, powers =
      match guards with
      | None -> ((obs.Soc.qos_rate : float), raw_powers)
      | Some g ->
          let f =
            Guarded.filter g ~now ~qos:obs.Soc.qos_rate ~powers:raw_powers
          in
          (f.Guarded.qos, f.Guarded.powers)
    in
    match guards with
    | Some g when Guarded.degraded g ->
        (* Open-loop fallback: sensors (or actuators) are untrustworthy,
           so pin the minimum-power configuration and freeze the
           supervisor and all leaf controllers (their state resumes
           unpolluted once readings return).  With every actuator driven
           to its floor, any single surviving actuator keeps chip
           power inside the envelope. *)
        Obs.Counters.incr c_degraded;
        for i = 0 to k - 1 do
          actuate guards soc i ~freq_ghz:0.2 ~cores:1. ~now
        done;
        incr tick
    | _ ->
        Mimo.set_reference ctrls.(host) ~index:0 qos_ref;
        (* Supervisor period: every [supervisor_divisor] controller
           periods. *)
        (if !tick mod supervisor_divisor = 0 then begin
           let total = ref 0. in
           for i = 0 to k - 1 do
             total := !total +. powers.(i)
           done;
           Supervisor.step sup ~qos ~qos_ref ~power:!total ~envelope
         end);
        incr tick;
        let ips = Soc.ips_totals soc in
        for i = 0 to k - 1 do
          let m = meas.(i) in
          let u = cmd.(i) in
          m.(0) <- (if i = host then qos else ips.(i) /. 1e9);
          m.(1) <- powers.(i);
          Mimo.step_into ctrls.(i) ~measured:m ~dst:u;
          actuate guards soc i ~freq_ghz:u.(0) ~cores:u.(1) ~now
        done
  in
  let name = match guards with None -> "SPECTR" | Some _ -> "SPECTR+G" in
  (* The checkpoint spans the whole supervisory stack: supervisor engine,
     every leaf controller, the supervisor-divisor tick phase and (when
     armed) the watchdog.  The variant tag also encodes gain scheduling
     and — off the reference platform — the platform digest, so a
     checkpoint can't cross ablation variants or platforms. *)
  let variant =
    let base = if gain_scheduling then name else name ^ "-nogs" in
    if is_exynos then base
    else base ^ "@" ^ String.sub (Platform_desc.digest platform) 0 12
  in
  let persist =
    {
      Manager.snapshot =
        (fun () ->
          let state =
            ( Supervisor.snapshot sup,
              Array.map Mimo.snapshot ctrls,
              !tick,
              Option.map Guarded.snapshot guards )
          in
          { Manager.variant; payload = Marshal.to_string state [] });
      restore =
        (fun c ->
          Manager.require_variant ~expect:variant c;
          let ssup, sctrls, stick, sguards =
            (Marshal.from_string c.Manager.payload 0
              : Supervisor.snapshot
                * Mimo.snapshot array
                * int
                * Guarded.snapshot option)
          in
          if Array.length sctrls <> k then
            invalid_arg
              (Printf.sprintf
                 "Spectr_manager.restore: %d controller snapshots, platform \
                  has %d clusters"
                 (Array.length sctrls) k);
          Supervisor.restore sup ssup;
          Array.iteri (fun i s -> Mimo.restore ctrls.(i) s) sctrls;
          tick := stick;
          match (guards, sguards) with
          | Some g, Some s -> Guarded.restore g s
          | None, None -> ()
          | _ ->
              (* require_variant already rules this out ("+G" is part of
                 the tag), but a corrupted payload must not half-restore. *)
              invalid_arg "Spectr_manager.restore: guard state mismatch");
    }
  in
  ({ Manager.name; step; persist = Some persist }, sup)
