open Spectr_control
open Spectr_platform
module Obs = Spectr_obs

(* Observability handles (no-ops while instrumentation is disabled). *)
let c_steps = Obs.Counters.counter "manager.steps"
let c_degraded = Obs.Counters.counter "manager.degraded_steps"
let c_act_mismatch = Obs.Counters.counter "guard.actuation_mismatches"

let design_or_fail ~seed subsystem goals =
  match Design_flow.design_gains_for ~seed subsystem goals with
  | Ok gains -> gains
  | Error msg -> failwith ("Spectr_manager: " ^ msg)

let make ?(seed = 17L) ?(supervisor_divisor = 2) ?(gain_scheduling = true)
    ?guards () =
  if supervisor_divisor < 1 then
    invalid_arg "Spectr_manager.make: supervisor_divisor < 1";
  let ident_big = Design_flow.identify ~seed Design_flow.Big_2x2 in
  let ident_little = Design_flow.identify ~seed Design_flow.Little_2x2 in
  let goals =
    [
      { Design_flow.label = "qos"; q_y = Mm.qos_weights };
      { Design_flow.label = "power"; q_y = Mm.power_weights };
    ]
  in
  let big =
    Design_flow.build_mimo ident_big
      ~gains:(design_or_fail ~seed Design_flow.Big_2x2 goals)
      ~initial:"qos" ~refs:[| 60.; 4. |]
  in
  (* In QoS mode the Little cluster is kept moderately fast so it can
     absorb background interference; in power mode the gain switch makes
     its power budget the pinned objective. *)
  let little =
    Design_flow.build_mimo ident_little
      ~gains:(design_or_fail ~seed Design_flow.Little_2x2 goals)
      ~initial:"qos"
      ~refs:[| 2.0; 0.3 |]
  in
  let commands =
    {
      Supervisor.switch_gains =
        (fun label ->
          if gain_scheduling then begin
            Mimo.switch_gains big label;
            Mimo.switch_gains little label
          end);
      set_big_power_ref = (fun v -> Mimo.set_reference big ~index:1 v);
      set_little_power_ref = (fun v -> Mimo.set_reference little ~index:1 v);
    }
  in
  let sup = Supervisor.create ~commands ~envelope:5.0 () in
  let tick = ref 0 in
  (* One cluster actuation, with actuator-fault detection when guarded:
     the applied OPP/core count read back from the platform must match
     the sanitized expectation. *)
  let actuate guard soc cluster ~freq_ghz ~cores ~now =
    match guard with
    | None ->
        (* Unguarded tick path: nobody consumes the readback. *)
        Manager.apply_cluster_quiet soc cluster ~freq_ghz ~cores
    | Some g ->
        let applied = Manager.apply_cluster soc cluster ~freq_ghz ~cores in
        let table =
          match cluster with Soc.Big -> Opp.big | Soc.Little -> Opp.little
        in
        let expected_freq =
          Opp.nearest table (Manager.sanitize_freq_mhz table freq_ghz)
        in
        let expected_cores = Manager.sanitize_cores cores in
        let ok =
          applied.Manager.freq_mhz = expected_freq
          && applied.Manager.cores = expected_cores
        in
        if not ok then Obs.Counters.incr c_act_mismatch;
        Guarded.note_actuation g ~now ~ok
  in
  (* Preallocated measurement/command buffers: the tick path writes them
     in place instead of building fresh arrays every period. *)
  let meas_big = [| 0.; 0. |] and meas_little = [| 0.; 0. |] in
  let u_big = [| 0.; 0. |] and u_little = [| 0.; 0. |] in
  let step ~now ~qos_ref ~envelope ~obs soc =
    Obs.Counters.incr c_steps;
    let qos, big_power, little_power =
      match guards with
      | None -> (obs.Soc.qos_rate, obs.Soc.big_power, obs.Soc.little_power)
      | Some g ->
          let f =
            Guarded.filter g ~now ~qos:obs.Soc.qos_rate
              ~big_power:obs.Soc.big_power ~little_power:obs.Soc.little_power
          in
          (f.Guarded.qos, f.Guarded.big_power, f.Guarded.little_power)
    in
    match guards with
    | Some g when Guarded.degraded g ->
        (* Open-loop fallback: sensors (or actuators) are untrustworthy,
           so pin the minimum-power configuration and freeze the
           supervisor and both leaf controllers (their state resumes
           unpolluted once readings return).  With both actuators driven
           to their floor, any single surviving actuator keeps chip
           power inside the envelope. *)
        Obs.Counters.incr c_degraded;
        actuate guards soc Soc.Big ~freq_ghz:0.2 ~cores:1. ~now;
        actuate guards soc Soc.Little ~freq_ghz:0.2 ~cores:1. ~now;
        incr tick
    | _ ->
        Mimo.set_reference big ~index:0 qos_ref;
        (* Supervisor period: every [supervisor_divisor] controller
           periods. *)
        if !tick mod supervisor_divisor = 0 then
          Supervisor.step sup ~qos ~qos_ref ~power:(big_power +. little_power)
            ~envelope;
        incr tick;
        meas_big.(0) <- qos;
        meas_big.(1) <- big_power;
        Mimo.step_into big ~measured:meas_big ~dst:u_big;
        actuate guards soc Soc.Big ~freq_ghz:u_big.(0) ~cores:u_big.(1) ~now;
        meas_little.(0) <- obs.Soc.little_ips /. 1e9;
        meas_little.(1) <- little_power;
        Mimo.step_into little ~measured:meas_little ~dst:u_little;
        actuate guards soc Soc.Little ~freq_ghz:u_little.(0) ~cores:u_little.(1)
          ~now
  in
  let name = match guards with None -> "SPECTR" | Some _ -> "SPECTR+G" in
  (* The checkpoint spans the whole supervisory stack: supervisor engine,
     both leaf controllers, the supervisor-divisor tick phase and (when
     armed) the watchdog.  The variant tag also encodes gain scheduling,
     so a checkpoint can't cross ablation variants. *)
  let variant = if gain_scheduling then name else name ^ "-nogs" in
  let persist =
    {
      Manager.snapshot =
        (fun () ->
          let state =
            ( Supervisor.snapshot sup,
              Mimo.snapshot big,
              Mimo.snapshot little,
              !tick,
              Option.map Guarded.snapshot guards )
          in
          { Manager.variant; payload = Marshal.to_string state [] });
      restore =
        (fun c ->
          Manager.require_variant ~expect:variant c;
          let ssup, sbig, slittle, stick, sguards =
            (Marshal.from_string c.Manager.payload 0
              : Supervisor.snapshot
                * Mimo.snapshot
                * Mimo.snapshot
                * int
                * Guarded.snapshot option)
          in
          Supervisor.restore sup ssup;
          Mimo.restore big sbig;
          Mimo.restore little slittle;
          tick := stick;
          match (guards, sguards) with
          | Some g, Some s -> Guarded.restore g s
          | None, None -> ()
          | _ ->
              (* require_variant already rules this out ("+G" is part of
                 the tag), but a corrupted payload must not half-restore. *)
              invalid_arg "Spectr_manager.restore: guard state mismatch");
    }
  in
  ({ Manager.name; step; persist = Some persist }, sup)
