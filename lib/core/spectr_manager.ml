open Spectr_control
open Spectr_platform
module Obs = Spectr_obs

(* Observability handles (no-ops while instrumentation is disabled). *)
let c_steps = Obs.Counters.counter "manager.steps"
let c_degraded = Obs.Counters.counter "manager.degraded_steps"
let c_act_mismatch = Obs.Counters.counter "guard.actuation_mismatches"
let c_reconfigs = Obs.Counters.counter "manager.reconfigurations"
let c_swap_ticks = Obs.Counters.counter "manager.swap_window_ticks"

let design_or_fail ~seed subsystem goals =
  match Design_flow.design_gains_for ~seed subsystem goals with
  | Ok gains -> gains
  | Error msg -> failwith ("Spectr_manager: " ^ msg)

let make ?(seed = 17L) ?(supervisor_divisor = 2) ?(gain_scheduling = true)
    ?guards ?(platform = Platform_desc.exynos5422) () =
  if supervisor_divisor < 1 then
    invalid_arg "Spectr_manager.make: supervisor_divisor < 1";
  let k = Platform_desc.num_clusters platform in
  let host = Platform_desc.host platform in
  (match guards with
  | Some g when Guarded.clusters g <> k ->
      invalid_arg
        (Printf.sprintf
           "Spectr_manager.make: guard tracks %d power channels, platform \
            has %d clusters"
           (Guarded.clusters g) k)
  | _ -> ());
  (* The Exynos description keeps the original Big_2x2/Little_2x2
     subsystems (same memo keys, same identification experiments); any
     other description identifies each cluster through the generic
     Cluster_2x2 path. *)
  let is_exynos = Design_flow.is_reference_platform platform in
  let subsystem_for i = Design_flow.cluster_subsystem platform i in
  let idents =
    Array.init k (fun i -> Design_flow.identify ~seed (subsystem_for i))
  in
  let goals =
    [
      { Design_flow.label = "qos"; q_y = Mm.qos_weights };
      { Design_flow.label = "power"; q_y = Mm.power_weights };
    ]
  in
  (* In QoS mode the secondary clusters are kept moderately fast so they
     can absorb background interference; in power mode the gain switch
     makes their power budgets the pinned objective. *)
  let refs_for i = if i = host then [| 60.; 4. |] else [| 2.0; 0.3 |] in
  let ctrls =
    Array.init k (fun i ->
        Design_flow.build_mimo idents.(i)
          ~gains:(design_or_fail ~seed (subsystem_for i) goals)
          ~initial:"qos" ~refs:(refs_for i))
  in
  let commands =
    {
      Supervisor.switch_gains =
        (fun label ->
          if gain_scheduling then
            Array.iter (fun c -> Mimo.switch_gains c label) ctrls);
      set_power_ref = (fun i v -> Mimo.set_reference ctrls.(i) ~index:1 v);
    }
  in
  let sup = Supervisor.create ~platform ~commands ~envelope:5.0 () in
  let tick = ref 0 in
  (* One cluster actuation, with actuator-fault detection when guarded:
     the applied OPP/core count read back from the platform must match
     the sanitized expectation. *)
  let actuate guard soc cluster ~freq_ghz ~cores ~now =
    match guard with
    | None ->
        (* Unguarded tick path: nobody consumes the readback. *)
        Manager.apply_cluster_quiet soc cluster ~freq_ghz ~cores
    | Some g ->
        let applied = Manager.apply_cluster soc cluster ~freq_ghz ~cores in
        let table = Soc.opp_table soc cluster in
        let expected_freq =
          Opp.nearest table (Manager.sanitize_freq_mhz table freq_ghz)
        in
        let expected_cores =
          Manager.sanitize_cores ~max_cores:(Soc.cluster_cores soc cluster)
            cores
        in
        let ok =
          applied.Manager.freq_mhz = expected_freq
          && applied.Manager.cores = expected_cores
        in
        if not ok then Obs.Counters.incr c_act_mismatch;
        Guarded.note_actuation g ~now ~ok
  in
  (* Preallocated measurement/command buffers, one pair per cluster: the
     tick path writes them in place instead of building fresh arrays
     every period. *)
  let meas = Array.init k (fun _ -> [| 0.; 0. |]) in
  let cmd = Array.init k (fun _ -> [| 0.; 0. |]) in
  let step ~now ~qos_ref ~envelope ~obs soc =
    Obs.Counters.incr c_steps;
    (* SoC-owned per-cluster sensor array: read-only here, valid until
       the next platform step. *)
    let raw_powers = Soc.sensor_powers soc in
    let qos, powers =
      match guards with
      | None -> ((obs.Soc.qos_rate : float), raw_powers)
      | Some g ->
          let f =
            Guarded.filter g ~now ~qos:obs.Soc.qos_rate ~powers:raw_powers
          in
          (f.Guarded.qos, f.Guarded.powers)
    in
    match guards with
    | Some g when Guarded.degraded g ->
        (* Open-loop fallback: sensors (or actuators) are untrustworthy,
           so pin the minimum-power configuration and freeze the
           supervisor and all leaf controllers (their state resumes
           unpolluted once readings return).  With every actuator driven
           to its floor, any single surviving actuator keeps chip
           power inside the envelope. *)
        Obs.Counters.incr c_degraded;
        for i = 0 to k - 1 do
          actuate guards soc i ~freq_ghz:0.2 ~cores:1. ~now
        done;
        incr tick
    | _ ->
        Mimo.set_reference ctrls.(host) ~index:0 qos_ref;
        (* Supervisor period: every [supervisor_divisor] controller
           periods. *)
        (if !tick mod supervisor_divisor = 0 then begin
           let total = ref 0. in
           for i = 0 to k - 1 do
             total := !total +. powers.(i)
           done;
           Supervisor.step sup ~qos ~qos_ref ~power:!total ~envelope
         end);
        incr tick;
        let ips = Soc.ips_totals soc in
        for i = 0 to k - 1 do
          let m = meas.(i) in
          let u = cmd.(i) in
          m.(0) <- (if i = host then qos else ips.(i) /. 1e9);
          m.(1) <- powers.(i);
          Mimo.step_into ctrls.(i) ~measured:m ~dst:u;
          actuate guards soc i ~freq_ghz:u.(0) ~cores:u.(1) ~now
        done
  in
  let name = match guards with None -> "SPECTR" | Some _ -> "SPECTR+G" in
  (* The checkpoint spans the whole supervisory stack: supervisor engine,
     every leaf controller, the supervisor-divisor tick phase and (when
     armed) the watchdog.  The variant tag also encodes gain scheduling
     and — off the reference platform — the platform digest, so a
     checkpoint can't cross ablation variants or platforms. *)
  let variant =
    let base = if gain_scheduling then name else name ^ "-nogs" in
    if is_exynos then base
    else base ^ "@" ^ String.sub (Platform_desc.digest platform) 0 12
  in
  let persist =
    {
      Manager.snapshot =
        (fun () ->
          let state =
            ( Supervisor.snapshot sup,
              Array.map Mimo.snapshot ctrls,
              !tick,
              Option.map Guarded.snapshot guards )
          in
          { Manager.variant; payload = Marshal.to_string state [] });
      restore =
        (fun c ->
          Manager.require_variant ~expect:variant c;
          let ssup, sctrls, stick, sguards =
            (Marshal.from_string c.Manager.payload 0
              : Supervisor.snapshot
                * Mimo.snapshot array
                * int
                * Guarded.snapshot option)
          in
          if Array.length sctrls <> k then
            invalid_arg
              (Printf.sprintf
                 "Spectr_manager.restore: %d controller snapshots, platform \
                  has %d clusters"
                 (Array.length sctrls) k);
          Supervisor.restore sup ssup;
          Array.iteri (fun i s -> Mimo.restore ctrls.(i) s) sctrls;
          tick := stick;
          match (guards, sguards) with
          | Some g, Some s -> Guarded.restore g s
          | None, None -> ()
          | _ ->
              (* require_variant already rules this out ("+G" is part of
                 the tag), but a corrupted payload must not half-restore. *)
              invalid_arg "Spectr_manager.restore: guard state mismatch");
    }
  in
  ({ Manager.name; step; persist = Some persist }, sup)

(* --- degraded-mode reconfiguration ------------------------------------- *)

module Reconfig = struct
  (* The FDIR ladder's reconfiguration rungs.  [Nominal] and
     [Reconfigured] are both closed-loop (the distinction records whether
     the supervised plant is still the boot-time description);
     [Swapping] is the bounded open-loop window while a re-synthesized
     supervisor is hot-swapped in; [Fallback] is the permanent open-loop
     floor for unrecoverable faults (dead host, blind QoS sensor, or a
     degradation the description cannot express). *)
  type status = Nominal | Swapping | Reconfigured | Fallback

  let status_label = function
    | Nominal -> "nominal"
    | Swapping -> "swapping"
    | Reconfigured -> "reconfigured"
    | Fallback -> "fallback"

  type handle = {
    host_phys : int; (* host's physical cluster index; never remapped *)
    mutable desc : Platform_desc.t; (* current supervised description *)
    mutable phys : int array; (* description index -> physical cluster *)
    ctrls : Mimo.t array ref; (* description order; shared with commands *)
    mutable sup : Supervisor.t;
    fdir : Fdir.t;
    guard : Guarded.t;
    excluded : bool array; (* physical: removed from the supervised plant *)
    dead : bool array; (* physical: believed dead — never actuated again *)
    pinned_freq : int option array; (* physical: DVFS rail latched here *)
    last_applied_freq : int array; (* physical: last actuation readback *)
    mutable status : status;
    mutable swap_left : int;
    mutable reconfigs : int;
    mutable resynth_s : float; (* last re-synthesis CPU seconds *)
  }

  let status h = h.status
  let reconfigurations h = h.reconfigs
  let platform h = h.desc
  let supervisor h = h.sup
  let fdir h = h.fdir
  let guard h = h.guard
  let last_resynth_s h = h.resynth_s

  let excluded_clusters h =
    let acc = ref [] in
    for p = Array.length h.excluded - 1 downto 0 do
      if h.excluded.(p) then acc := p :: !acc
    done;
    !acc

  let log_status h =
    if Obs.enabled () then
      Obs.Decision_log.record
        (Obs.Decision_log.Reconfig
           {
             platform = Platform_desc.name h.desc;
             status = status_label h.status;
           })
end

let make_reconfigurable ?(seed = 17L) ?(supervisor_divisor = 2)
    ?(gain_scheduling = true) ?(swap_ticks = 4) ?guards
    ?(platform = Platform_desc.exynos5422) () =
  if supervisor_divisor < 1 then
    invalid_arg "Spectr_manager.make_reconfigurable: supervisor_divisor < 1";
  if swap_ticks < 1 then
    invalid_arg "Spectr_manager.make_reconfigurable: swap_ticks < 1";
  let k0 = Platform_desc.num_clusters platform in
  let host_phys = Platform_desc.host platform in
  let guard =
    match guards with
    | Some g ->
        if Guarded.clusters g <> k0 then
          invalid_arg
            (Printf.sprintf
               "Spectr_manager.make_reconfigurable: guard tracks %d power \
                channels, platform has %d clusters"
               (Guarded.clusters g) k0);
        g
    | None -> Guarded.create ~clusters:k0 ()
  in
  let subsystem_for i = Design_flow.cluster_subsystem platform i in
  let idents =
    Array.init k0 (fun i -> Design_flow.identify ~seed (subsystem_for i))
  in
  let goals =
    [
      { Design_flow.label = "qos"; q_y = Mm.qos_weights };
      { Design_flow.label = "power"; q_y = Mm.power_weights };
    ]
  in
  let refs_for i = if i = host_phys then [| 60.; 4. |] else [| 2.0; 0.3 |] in
  let ctrls =
    ref
      (Array.init k0 (fun i ->
           Design_flow.build_mimo idents.(i)
             ~gains:(design_or_fail ~seed (subsystem_for i) goals)
             ~initial:"qos" ~refs:(refs_for i)))
  in
  (* The command closures index through the shared [ctrls] cell, so the
     one closure pair installed at boot keeps working across supervisor
     hot-swaps — the freshly synthesized supervisor pushes its budgets
     into whatever controller array is current. *)
  let commands =
    {
      Supervisor.switch_gains =
        (fun label ->
          if gain_scheduling then
            Array.iter (fun c -> Mimo.switch_gains c label) !ctrls);
      set_power_ref = (fun i v -> Mimo.set_reference !ctrls.(i) ~index:1 v);
    }
  in
  let sup = Supervisor.create ~platform ~commands ~envelope:5.0 () in
  let fdir = Fdir.create ~k:k0 ~host:host_phys () in
  let h =
    {
      Reconfig.host_phys;
      desc = platform;
      phys = Array.init k0 Fun.id;
      ctrls;
      sup;
      fdir;
      guard;
      excluded = Array.make k0 false;
      dead = Array.make k0 false;
      pinned_freq = Array.make k0 None;
      last_applied_freq = Array.make k0 0;
      status = Reconfig.Nominal;
      swap_left = 0;
      reconfigs = 0;
      resynth_s = 0.;
    }
  in
  let enter_fallback () =
    if h.status <> Reconfig.Fallback then begin
      h.status <- Reconfig.Fallback;
      Reconfig.log_status h
    end
  in
  (* Hot-swap onto [newdesc]: surviving controllers are reused untouched
     (the physics of a surviving cluster did not change, so neither did
     its identified model), only the supervisor is re-synthesized — the
     warm Synth_cache makes this sub-second — and the outgoing engine
     state is carried across via {!Supervisor.adopt}.  The open-loop swap
     window ([swap_ticks] periods of floor actuation) then drains before
     the new closed loop takes over. *)
  let resynthesize newdesc newphys newctrls =
    let prev = Supervisor.snapshot h.sup in
    let prev_platform = h.desc in
    h.desc <- newdesc;
    h.phys <- newphys;
    h.ctrls := newctrls;
    let t0 = Sys.time () in
    let sup = Supervisor.create ~platform:newdesc ~commands ~envelope:5.0 () in
    h.resynth_s <- Sys.time () -. t0;
    Supervisor.adopt sup ~prev ~prev_platform;
    h.sup <- sup;
    h.reconfigs <- h.reconfigs + 1;
    Obs.Counters.incr c_reconfigs;
    h.status <- Reconfig.Swapping;
    h.swap_left <- swap_ticks;
    Reconfig.log_status h
  in
  let desc_index_of_phys p =
    let r = ref (-1) in
    Array.iteri (fun j q -> if q = p then r := j) h.phys;
    !r
  in
  let without j arr =
    Array.init
      (Array.length arr - 1)
      (fun i -> if i < j then arr.(i) else arr.(i + 1))
  in
  (* Remove physical cluster [p] from the supervised plant.  [believed_dead]
     distinguishes a dead cluster (never actuated again) from a live
     cluster with a dead power sensor (pinned to its floor OPP — running
     it any faster would be unobservable power draw). *)
  let remove_cluster p ~believed_dead =
    if believed_dead then h.dead.(p) <- true;
    if not h.excluded.(p) then begin
      if p = h.host_phys then enter_fallback ()
      else
        match desc_index_of_phys p with
        | -1 -> ()
        | j -> (
            match Platform_desc.degrade h.desc (Platform_desc.Remove_cluster j) with
            | exception Invalid_argument _ -> enter_fallback ()
            | newdesc ->
                h.excluded.(p) <- true;
                Guarded.set_power_masked guard ~cluster:p true;
                resynthesize newdesc (without j h.phys) (without j !(h.ctrls)))
    end
  in
  let handle_finding = function
    | Fdir.Cluster_down p -> remove_cluster p ~believed_dead:true
    | Fdir.Power_sensor_down p -> remove_cluster p ~believed_dead:false
    | Fdir.Qos_sensor_down -> enter_fallback ()
    | Fdir.Dvfs_latched p ->
        if h.pinned_freq.(p) = None && not h.excluded.(p) then begin
          match desc_index_of_phys p with
          | -1 -> ()
          | j -> (
              let f = h.last_applied_freq.(p) in
              match
                Platform_desc.degrade h.desc
                  (Platform_desc.Pin_opp { cluster = j; freq_mhz = f })
              with
              | exception Invalid_argument _ -> enter_fallback ()
              | newdesc ->
                  h.pinned_freq.(p) <- Some f;
                  (* Cluster set unchanged: controllers and the
                     description->physical map carry over as-is. *)
                  resynthesize newdesc h.phys !(h.ctrls))
        end
  in
  let tick = ref 0 in
  (* One physical-cluster actuation with readback comparison feeding both
     the watchdog and the FDIR detector.  A cluster whose DVFS rail is
     known-latched is expected to read back its latched frequency — the
     rail ignoring requests is no longer a fault once the plant has been
     re-synthesized around it. *)
  let actuate soc p ~freq_ghz ~cores ~now =
    let applied = Manager.apply_cluster soc p ~freq_ghz ~cores in
    h.last_applied_freq.(p) <- applied.Manager.freq_mhz;
    let table = Soc.opp_table soc p in
    let expected_freq =
      match h.pinned_freq.(p) with
      | Some f -> f
      | None -> Opp.nearest table (Manager.sanitize_freq_mhz table freq_ghz)
    in
    let expected_cores =
      Manager.sanitize_cores ~max_cores:(Soc.cluster_cores soc p) cores
    in
    let ok =
      applied.Manager.freq_mhz = expected_freq
      && applied.Manager.cores = expected_cores
    in
    if not ok then Obs.Counters.incr c_act_mismatch;
    Guarded.note_actuation guard ~now ~ok;
    Fdir.note_actuation fdir ~cluster:p ~ok
  in
  (* Conservative floor sweep: every cluster not believed dead is pinned
     to its minimum-power configuration. *)
  let floor_all soc ~now =
    for p = 0 to k0 - 1 do
      if not h.dead.(p) then actuate soc p ~freq_ghz:0.2 ~cores:1. ~now
    done
  in
  let meas = Array.init k0 (fun _ -> [| 0.; 0. |]) in
  let cmd = Array.init k0 (fun _ -> [| 0.; 0. |]) in
  let step ~now ~qos_ref ~envelope ~obs soc =
    Obs.Counters.incr c_steps;
    let raw_powers = Soc.sensor_powers soc in
    let ips = Soc.ips_totals soc in
    (* FDIR watches the raw (pre-guard) evidence: substitution would hide
       exactly the exact-zero streaks it needs to see. *)
    Fdir.observe fdir ~qos:obs.Soc.qos_rate ~powers:raw_powers ~ips;
    let f = Guarded.filter guard ~now ~qos:obs.Soc.qos_rate ~powers:raw_powers in
    let qos = f.Guarded.qos and powers = f.Guarded.powers in
    if h.status <> Reconfig.Fallback then List.iter handle_finding (Fdir.poll fdir);
    incr tick;
    match h.status with
    | Reconfig.Fallback -> floor_all soc ~now
    | Reconfig.Swapping ->
        Obs.Counters.incr c_swap_ticks;
        floor_all soc ~now;
        h.swap_left <- h.swap_left - 1;
        if h.swap_left <= 0 then begin
          h.status <- Reconfig.Reconfigured;
          Reconfig.log_status h
        end
    | Reconfig.Nominal | Reconfig.Reconfigured ->
        if Guarded.degraded guard then begin
          Obs.Counters.incr c_degraded;
          floor_all soc ~now
        end
        else begin
          let k = Array.length h.phys in
          let host_d = Platform_desc.host h.desc in
          let cs = !(h.ctrls) in
          Mimo.set_reference cs.(host_d) ~index:0 qos_ref;
          (if (!tick - 1) mod supervisor_divisor = 0 then begin
             let total = ref 0. in
             for j = 0 to k - 1 do
               total := !total +. powers.(h.phys.(j))
             done;
             Supervisor.step h.sup ~qos ~qos_ref ~power:!total ~envelope
           end);
          for j = 0 to k - 1 do
            let p = h.phys.(j) in
            let m = meas.(j) in
            let u = cmd.(j) in
            m.(0) <- (if p = h.host_phys then qos else ips.(p) /. 1e9);
            m.(1) <- powers.(p);
            Mimo.step_into cs.(j) ~measured:m ~dst:u;
            Fdir.note_innovation fdir ~cluster:p
              ~norm:(Mimo.last_innovation_norm cs.(j));
            actuate soc p ~freq_ghz:u.(0) ~cores:u.(1) ~now
          done;
          (* A live cluster removed from the plant (dead power sensor)
             stays pinned to its floor. *)
          for p = 0 to k0 - 1 do
            if h.excluded.(p) && not h.dead.(p) then
              actuate soc p ~freq_ghz:0.2 ~cores:1. ~now
          done
        end
  in
  ({ Manager.name = "SPECTR+R"; step; persist = None }, h)
