open Spectr_automata
module Platform_desc = Spectr_platform.Platform_desc

let critical = Event.uncontrollable "critical"
let above_target = Event.uncontrollable "aboveTarget"
let below_target = Event.uncontrollable "belowTarget"
let safe_power = Event.uncontrollable "safePower"
let qos_met = Event.uncontrollable "QoSmet"
let qos_not_met = Event.uncontrollable "QoSnotMet"
let power_safe_qos_met = Event.uncontrollable "powerSafeQoSMet"
let power_safe_qos_not_met = Event.uncontrollable "powerSafeQoSNotMet"
let switch_power = Event.controllable "switchPower"
let switch_qos = Event.controllable "switchQoS"
let increase_big_power = Event.controllable "increaseBigPower"
let decrease_big_power = Event.controllable "decreaseBigPower"
let increase_little_power = Event.controllable "increaseLittlePower"
let decrease_little_power = Event.controllable "decreaseLittlePower"
let decrease_critical_power = Event.controllable "decreaseCriticalPower"
let control_power = Event.controllable "controlPower"
let hold_budget = Event.controllable "holdBudget"

let all =
  [
    critical;
    above_target;
    below_target;
    safe_power;
    qos_met;
    qos_not_met;
    power_safe_qos_met;
    power_safe_qos_not_met;
    switch_power;
    switch_qos;
    increase_big_power;
    decrease_big_power;
    increase_little_power;
    decrease_little_power;
    decrease_critical_power;
    control_power;
    hold_budget;
  ]

(* --- per-cluster command families ------------------------------------ *)

type family = {
  fam_platform : Platform_desc.t;
  increase : Event.t array;
  decrease : Event.t array;
}

(* One mutex guards both the family memo and the name index: families
   are built lazily from manager constructors, which the bench pool runs
   on several domains at once.  [Event.intern] has its own lock, so the
   only state to protect here is ours. *)
let mutex = Mutex.create ()

let locked f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

(* Name index behind [by_name].  The previous implementation scanned
   [all] linearly, which was fine for 17 constants but wrong once
   platforms mint per-cluster families: the index must cover whatever
   has been generated so far, and a scan over an ever-growing list in
   the chaos engine's reproducer parser is the kind of quadratic nobody
   notices until a campaign has 10^5 artifacts. *)
let name_index : (string, Event.t) Hashtbl.t = Hashtbl.create 64
let index_seeded = ref false

let seed_index_locked () =
  if not !index_seeded then begin
    List.iter (fun e -> Hashtbl.replace name_index (Event.name e) e) all;
    index_seeded := true
  end

let by_name name =
  locked (fun () ->
      seed_index_locked ();
      Hashtbl.find_opt name_index name)

let families : (string, family) Hashtbl.t = Hashtbl.create 8

let command_name verb desc i =
  verb ^ String.capitalize_ascii (Platform_desc.cluster_name desc i) ^ "Power"

let for_platform desc =
  (* A cluster named "critical" would mint "decreaseCriticalPower" —
     the reserved emergency command — and the interner would silently
     unify the two.  Refuse rather than conflate. *)
  (let k = Platform_desc.num_clusters desc in
   for i = 0 to k - 1 do
     if Platform_desc.cluster_name desc i = "critical" then
       invalid_arg
         "Events.for_platform: cluster name \"critical\" collides with the \
          reserved decreaseCriticalPower command"
   done);
  let digest = Platform_desc.digest desc in
  locked (fun () ->
      seed_index_locked ();
      match Hashtbl.find_opt families digest with
      | Some f -> f
      | None ->
          let k = Platform_desc.num_clusters desc in
          let mint verb i =
            let e = Event.controllable (command_name verb desc i) in
            Hashtbl.replace name_index (Event.name e) e;
            e
          in
          let f =
            {
              fam_platform = desc;
              increase = Array.init k (mint "increase");
              decrease = Array.init k (mint "decrease");
            }
          in
          Hashtbl.replace families digest f;
          f)

let family_platform f = f.fam_platform
let increase f i = f.increase.(i)
let decrease f i = f.decrease.(i)
