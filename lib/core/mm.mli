(** The uncoordinated multi-MIMO baselines of §5: fixed-gain 2×2 LQG
    controllers, one per cluster, "representatives of a state-of-the-art
    solution [Pothukuchi et al. ISCA'16], one prioritizing power and the
    other prioritizing performance".

    Both receive the same references SPECTR does (the QoS target and the
    power envelope, split statically between the clusters) but have no
    supervisor: gains never switch and budgets never rebalance. *)

val qos_weights : float array
(** Performance-over-power Tracking Error Cost.  The paper's ratio is
    30:1 over reference-normalized outputs; our channels are normalized
    by the identification experiment's σ instead, which amplifies power
    deviations ≈ 5×, so the same effective priority needs a larger raw
    ratio (30 : 0.1). *)

val power_weights : float array
(** The power-over-performance mirror of {!qos_weights}. *)

val little_power_budget : float
(** Static share of the envelope reserved for each secondary cluster
    (W).  The host cluster is offered whatever the envelope leaves after
    every secondary's share is subtracted. *)

val make_perf :
  ?seed:int64 -> ?platform:Spectr_platform.Platform_desc.t -> unit -> Manager.t
(** MM-Perf: performance-oriented gains on every cluster.  [platform]
    (default [Platform_desc.exynos5422]) selects the platform
    description: one fixed-gain 2×2 controller per cluster. *)

val make_pow :
  ?seed:int64 -> ?platform:Spectr_platform.Platform_desc.t -> unit -> Manager.t
(** MM-Pow: power-oriented gains on every cluster. *)
