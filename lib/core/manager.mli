(** Common interface for runtime resource managers.

    A manager owns its leaf controllers (and, for SPECTR, the
    supervisor); the {!Scenario} driver invokes {!step} once per
    controller period with the fresh sensor observation, the current QoS
    reference and the current power envelope (both of which may change
    between phases), and the manager applies its actuation decisions to
    the SoC. *)

open Spectr_platform

type t = {
  name : string;
      (** Display name: ["SPECTR"], ["MM-Pow"], ["MM-Perf"], ["FS"]. *)
  step :
    now:float ->
    qos_ref:float ->
    envelope:float ->
    obs:Soc.observation ->
    Soc.t ->
    unit;
}

val sanitize_freq_mhz : Spectr_platform.Opp.t -> float -> float
(** The frequency a [freq_ghz] command will be quantized from, in MHz:
    non-finite and negative values clamp to the table's legal range
    (NaN conservatively to the minimum OPP). *)

val sanitize_cores : float -> int
(** The core count a [cores] command resolves to: clamped to [1, 4],
    NaN conservatively to 1. *)

type applied = { freq_mhz : int; cores : int }
(** What the platform actually did with a command: the quantized OPP
    returned by {!Spectr_platform.Soc.set_frequency} and the core count
    read back after gating.  Under an actuator fault these differ from
    the request — comparing them against the expectation is how the
    guarded manager detects stuck actuators. *)

val apply_cluster :
  Soc.t -> Soc.cluster -> freq_ghz:float -> cores:float -> applied
(** Helper shared by all managers: sanitize (non-finite or negative
    commands clamp to the nearest legal value, NaN conservatively to the
    low end), quantize and apply a (frequency GHz, core count) command
    pair to one cluster, and return what was actually applied.  The
    applied settings are logged at debug level on the
    ["spectr.manager"] source. *)
