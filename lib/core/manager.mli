(** Common interface for runtime resource managers.

    A manager owns its leaf controllers (and, for SPECTR, the
    supervisor); the {!Scenario} driver invokes {!step} once per
    controller period with the fresh sensor observation, the current QoS
    reference and the current power envelope (both of which may change
    between phases), and the manager applies its actuation decisions to
    the SoC. *)

open Spectr_platform

type checkpoint = { variant : string; payload : string }
(** An opaque-to-callers manager checkpoint: a variant tag naming the
    manager kind that produced it plus a [Marshal]-ed plain-data payload
    (controller snapshots — see {!Spectr_control.Mimo.snapshot},
    {!Supervisor.snapshot}, {!Guarded.snapshot} — and the tick phase).
    Restoring a checkpoint into a manager of a different variant raises
    [Invalid_argument]. *)

type persist = {
  snapshot : unit -> checkpoint;
      (** Capture the manager's complete mutable state.  Cheap (no
          I/O, a few small copies) — safe to call every period. *)
  restore : checkpoint -> unit;
      (** Overwrite the manager's state from a checkpoint.  After
          [restore], stepping continues bit-identically to the
          snapshotted instance — the checkpoint/resume guarantee the
          chaos soak pins.  Raises [Invalid_argument] on a variant
          mismatch or corrupted payload. *)
}

type t = {
  name : string;
      (** Display name: ["SPECTR"], ["MM-Pow"], ["MM-Perf"], ["FS"]. *)
  step :
    now:float ->
    qos_ref:float ->
    envelope:float ->
    obs:Soc.observation ->
    Soc.t ->
    unit;
  persist : persist option;
      (** Checkpoint/restore capability, when the manager supports it
          (all shipped managers do).  [None] marks a manager that cannot
          be hot-restarted; the soak runner skips kill/restart cells for
          it. *)
}

val require_variant : expect:string -> checkpoint -> unit
(** Helper for [restore] implementations: raise [Invalid_argument]
    unless the checkpoint's variant tag is [expect]. *)

val save_checkpoint : path:string -> checkpoint -> unit
(** Crash-safe checkpoint persistence: write to a temp file in the
    destination directory, then atomically rename — a crash mid-write
    leaves the previous checkpoint (or none), never a torn file. *)

val load_checkpoint : path:string -> checkpoint
(** Raises [Invalid_argument] when the file is not a checkpoint
    (bad magic, truncation); [Sys_error] on I/O failure. *)

val sanitize_freq_mhz : Spectr_platform.Opp.t -> float -> float
(** The frequency a [freq_ghz] command will be quantized from, in MHz:
    non-finite and negative values clamp to the table's legal range
    (NaN conservatively to the minimum OPP). *)

val sanitize_cores : ?max_cores:int -> float -> int
(** The core count a [cores] command resolves to: clamped to
    [1, max_cores] (default 4), NaN conservatively to 1. *)

type applied = { freq_mhz : int; cores : int }
(** What the platform actually did with a command: the quantized OPP
    returned by {!Spectr_platform.Soc.set_frequency} and the core count
    read back after gating.  Under an actuator fault these differ from
    the request — comparing them against the expectation is how the
    guarded manager detects stuck actuators. *)

val apply_cluster : Soc.t -> int -> freq_ghz:float -> cores:float -> applied
(** Helper shared by all managers: sanitize (non-finite or negative
    commands clamp to the nearest legal value, NaN conservatively to the
    low end), quantize and apply a (frequency GHz, core count) command
    pair to one cluster — addressed by its platform description index —
    and return what was actually applied.  Core commands clamp to the
    cluster's physical core count.  The applied settings are logged at
    debug level on the ["spectr.manager"] source. *)

val apply_cluster_quiet : Soc.t -> int -> freq_ghz:float -> cores:float -> unit
(** {!apply_cluster} for the tick path: identical sanitize/quantize/apply
    behaviour, but no readback record and no debug log (whose message
    closure allocates even when the level is off).  For managers that do
    not consume the readback — the guarded actuation check wants
    {!apply_cluster}. *)
