(** Graceful-degradation layer: sensor sanity filtering, actuation
    clamping and a sensor/actuator watchdog.

    The synthesized supervisor guarantees safety {e given truthful
    measurements and obedient actuators}.  Under the fault classes of
    {!Spectr_platform.Faults} neither holds, so a guarded manager routes
    every measurement through {!filter} and reports every actuation
    readback through {!note_actuation}.  The defense ladder:

    + {e sanity filter} — a sample that is non-finite, outside its
      plausibility range, exactly frozen for several periods (real
      sensors are noisy; bit-identical streaks mean a stuck sensor), or
      an implausible jump is replaced by the last healthy value.  A
      genuine level shift is distinguished from a spike by persistence:
      after [suspect_limit] off-trend samples that agree with each other
      (within [max_step]) the new level is accepted — scattered spikes
      disagree with the genuine readings between them, so a spike is
      never adopted as the new level.
    + {e actuation clamping} — non-finite controller outputs never reach
      the platform (see {!Manager.apply_cluster}).
    + {e watchdog} — [trip_count] consecutive periods of sensor loss or
      actuator disobedience degrade the manager to a conservative
      open-loop fallback (minimum-power OPP, one core per cluster,
      budgets pinned); [recover_count] consecutive healthy periods
      restore closed-loop control.

    The filter never emits a non-finite value. *)

type channel_config = {
  lo : float;  (** Smallest plausible reading. *)
  hi : float;  (** Largest plausible reading. *)
  max_step : float;  (** Largest plausible change per sample. *)
  stuck_count : int;
      (** Consecutive bit-identical samples that mean "stuck sensor". *)
  suspect_limit : int;
      (** Off-trend samples after which a level shift is accepted. *)
}

type config = {
  qos : channel_config;
  power : channel_config;  (** Shared by every cluster power sensor. *)
  trip_count : int;  (** Consecutive unhealthy periods before degrading. *)
  recover_count : int;  (** Consecutive healthy periods before resuming. *)
}

val default_config : config
(** Tuned for the x264-class scenarios: QoS plausible in [0.2, 400]
    HB/s with steps up to 45, power in [0.02, 15] W with steps up to
    3 W; 8-sample stuck detection, 4-sample spike tolerance; trip after
    6 periods (300 ms at the 50 ms loop), recover after 10. *)

type t

val create : ?config:config -> ?clusters:int -> unit -> t
(** [clusters] (default 2) is the number of per-cluster power channels
    the guard tracks — one per platform cluster, in description order.
    Raises [Invalid_argument] when < 1. *)

val clusters : t -> int

(** {1 Per-period protocol} *)

type filtered = {
  mutable qos : float;
  powers : float array;
      (** Per-cluster sanitized powers, description order. *)
  mutable healthy : bool;
      (** No channel needed substitution this period. *)
}

val filter : t -> now:float -> qos:float -> powers:float array -> filtered
(** Sanitize one observation (QoS plus one power reading per cluster)
    and advance the sensor side of the watchdog.  Every returned field
    is finite.  The result is a guard-owned buffer overwritten by the
    next call — read it before then.  Raises [Invalid_argument] when
    [powers] does not have exactly {!clusters} entries. *)

val note_actuation : t -> now:float -> ok:bool -> unit
(** Report whether the platform applied the last command as expected
    (quantized frequency and core count read back equal to the
    expectation).  Persistent disobedience trips the watchdog exactly
    like sensor loss. *)

(** {1 State and metrics} *)

val degraded : t -> bool
(** In the open-loop fallback? The manager must pin minimum-power
    actuation and freeze its controllers while this holds. *)

val substituted_samples : t -> int
(** Samples replaced by the sanity filter so far. *)

val total_samples : t -> int

val degradation_spans : t -> (float * float option) list
(** Completed and ongoing degradations, oldest first:
    [(entered, exited)] with [exited = None] while still degraded. *)

val recovery_times : t -> float list
(** Durations of the completed degradations, oldest first — the
    recovery-time metric of the robustness bench. *)

val fallback_ticks : t -> int
(** Cumulative control periods spent in open-loop fallback.  Also
    exported as the [guard.fallback_ticks] obs gauge, with per-span tick
    counts in the [guard.fallback_span_ticks] histogram (observed as
    each span closes) — [guard.trips] counts fallbacks, this measures
    how long each one lasted. *)

(** {1 Channel masking (reconfiguration support)}

    After the reconfiguration engine removes a dead cluster from the
    supervised plant, that cluster's power sensor keeps reading 0 —
    which would otherwise trip the watchdog forever.  Masking a channel
    substitutes 0.0 and always counts it healthy; unmasking resets the
    channel's streak state so stale evidence cannot trip on the first
    live reading. *)

val set_power_masked : t -> cluster:int -> bool -> unit
val power_masked : t -> cluster:int -> bool

(** {1 Checkpoint/restore}

    The watchdog's full mutable state — per-channel filter memory,
    streak counters, degradation flag and span history — as plain data
    (safe to [Marshal]).  A restored guard continues bit-identically to
    the snapshotted instance: its stuck/spike streaks, trip countdown
    and recovery bookkeeping all survive the manager restart. *)

type channel_snapshot = {
  snap_last_good : float;
  snap_have_good : bool;
  snap_suspects : int;
  snap_suspect_value : float;
  snap_last_raw : float;
  snap_same_streak : int;
  snap_masked : bool;
}

type snapshot = {
  snap_qos : channel_snapshot;
  snap_power : channel_snapshot array;
      (** Per cluster, description order. *)
  snap_sensor_bad_streak : int;
  snap_actuator_bad_streak : int;
  snap_good_streak : int;
  snap_is_degraded : bool;
  snap_spans : (float * float option) list;
  snap_substituted : int;
  snap_total : int;
  snap_fb_ticks : int;
  snap_span_ticks : int;
}

val snapshot : t -> snapshot

val restore : t -> snapshot -> unit
(** Raises [Invalid_argument] when the snapshot's power-channel count
    does not match {!clusters}. *)
