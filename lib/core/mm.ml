open Spectr_control
open Spectr_platform

let qos_weights = [| 30.; 0.1 |]
let power_weights = [| 0.1; 30. |]
let little_power_budget = 0.45

let design_or_fail ~seed subsystem goals =
  match Design_flow.design_gains_for ~seed subsystem goals with
  | Ok gains -> gains
  | Error msg -> failwith ("Mm: " ^ msg)

let make ~label ~name ?(seed = 17L) () =
  let ident_big = Design_flow.identify ~seed Design_flow.Big_2x2 in
  let ident_little = Design_flow.identify ~seed Design_flow.Little_2x2 in
  let goals =
    [
      { Design_flow.label = "qos"; q_y = qos_weights };
      { Design_flow.label = "power"; q_y = power_weights };
    ]
  in
  let big =
    Design_flow.build_mimo ident_big
      ~gains:(design_or_fail ~seed Design_flow.Big_2x2 goals)
      ~initial:label ~refs:[| 60.; 4. |]
  in
  (* A performance-oriented manager wants the Little cluster fast (it
     absorbs background work, shielding the QoS app); a power-oriented
     one wants it capped.  The priority output of the chosen gain set is
     the one that gets pinned. *)
  let little_gips_ref = if label = "qos" then 3.0 else 0.0 in
  let little =
    Design_flow.build_mimo ident_little
      ~gains:(design_or_fail ~seed Design_flow.Little_2x2 goals)
      ~initial:label
      ~refs:[| little_gips_ref; little_power_budget |]
  in
  let meas_big = [| 0.; 0. |] and meas_little = [| 0.; 0. |] in
  let u_big = [| 0.; 0. |] and u_little = [| 0.; 0. |] in
  let step ~now:_ ~qos_ref ~envelope ~obs soc =
    (* The fixed managers still receive the system references; they lack
       coordination, not information. *)
    Mimo.set_reference big ~index:0 qos_ref;
    Mimo.set_reference big ~index:1
      (Float.max 0.5 (envelope -. little_power_budget));
    Mimo.set_reference little ~index:1 little_power_budget;
    meas_big.(0) <- obs.Soc.qos_rate;
    meas_big.(1) <- obs.Soc.big_power;
    Mimo.step_into big ~measured:meas_big ~dst:u_big;
    Manager.apply_cluster_quiet soc Soc.Big ~freq_ghz:u_big.(0)
      ~cores:u_big.(1);
    meas_little.(0) <- obs.Soc.little_ips /. 1e9;
    meas_little.(1) <- obs.Soc.little_power;
    Mimo.step_into little ~measured:meas_little ~dst:u_little;
    Manager.apply_cluster_quiet soc Soc.Little ~freq_ghz:u_little.(0)
      ~cores:u_little.(1)
  in
  let persist =
    {
      Manager.snapshot =
        (fun () ->
          {
            Manager.variant = name;
            payload =
              Marshal.to_string (Mimo.snapshot big, Mimo.snapshot little) [];
          });
      restore =
        (fun c ->
          Manager.require_variant ~expect:name c;
          let sb, sl =
            (Marshal.from_string c.Manager.payload 0
              : Mimo.snapshot * Mimo.snapshot)
          in
          Mimo.restore big sb;
          Mimo.restore little sl);
    }
  in
  { Manager.name; step; persist = Some persist }

let make_perf ?seed () = make ~label:"qos" ~name:"MM-Perf" ?seed ()
let make_pow ?seed () = make ~label:"power" ~name:"MM-Pow" ?seed ()
