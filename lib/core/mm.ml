open Spectr_control
open Spectr_platform

let qos_weights = [| 30.; 0.1 |]
let power_weights = [| 0.1; 30. |]
let little_power_budget = 0.45

let design_or_fail ~seed subsystem goals =
  match Design_flow.design_gains_for ~seed subsystem goals with
  | Ok gains -> gains
  | Error msg -> failwith ("Mm: " ^ msg)

let make ~label ~name ?(seed = 17L) ?(platform = Platform_desc.exynos5422) () =
  let k = Platform_desc.num_clusters platform in
  let host = Platform_desc.host platform in
  let subsystem_for i = Design_flow.cluster_subsystem platform i in
  let idents =
    Array.init k (fun i -> Design_flow.identify ~seed (subsystem_for i))
  in
  let goals =
    [
      { Design_flow.label = "qos"; q_y = qos_weights };
      { Design_flow.label = "power"; q_y = power_weights };
    ]
  in
  (* A performance-oriented manager wants the secondary clusters fast
     (they absorb background work, shielding the QoS app); a
     power-oriented one wants them capped.  The priority output of the
     chosen gain set is the one that gets pinned. *)
  let secondary_gips_ref = if label = "qos" then 3.0 else 0.0 in
  let refs_for i =
    if i = host then [| 60.; 4. |]
    else [| secondary_gips_ref; little_power_budget |]
  in
  let ctrls =
    Array.init k (fun i ->
        Design_flow.build_mimo idents.(i)
          ~gains:(design_or_fail ~seed (subsystem_for i) goals)
          ~initial:label ~refs:(refs_for i))
  in
  (* The fixed budget split: each secondary cluster gets its static
     budget; the host is offered what the envelope leaves. *)
  let secondary_reserve = little_power_budget *. float_of_int (k - 1) in
  let meas = Array.init k (fun _ -> [| 0.; 0. |]) in
  let cmd = Array.init k (fun _ -> [| 0.; 0. |]) in
  let step ~now:_ ~qos_ref ~envelope ~obs soc =
    (* The fixed managers still receive the system references; they lack
       coordination, not information. *)
    Mimo.set_reference ctrls.(host) ~index:0 qos_ref;
    Mimo.set_reference ctrls.(host) ~index:1
      (Float.max 0.5 (envelope -. secondary_reserve));
    for i = 0 to k - 1 do
      if i <> host then
        Mimo.set_reference ctrls.(i) ~index:1 little_power_budget
    done;
    let powers = Soc.sensor_powers soc in
    let ips = Soc.ips_totals soc in
    for i = 0 to k - 1 do
      let m = meas.(i) in
      let u = cmd.(i) in
      m.(0) <- (if i = host then obs.Soc.qos_rate else ips.(i) /. 1e9);
      m.(1) <- powers.(i);
      Mimo.step_into ctrls.(i) ~measured:m ~dst:u;
      Manager.apply_cluster_quiet soc i ~freq_ghz:u.(0) ~cores:u.(1)
    done
  in
  let persist =
    {
      Manager.snapshot =
        (fun () ->
          {
            Manager.variant = name;
            payload = Marshal.to_string (Array.map Mimo.snapshot ctrls) [];
          });
      restore =
        (fun c ->
          Manager.require_variant ~expect:name c;
          let snaps =
            (Marshal.from_string c.Manager.payload 0 : Mimo.snapshot array)
          in
          if Array.length snaps <> k then
            invalid_arg
              (Printf.sprintf
                 "Mm.restore: %d controller snapshots, platform has %d \
                  clusters"
                 (Array.length snaps) k);
          Array.iteri (fun i s -> Mimo.restore ctrls.(i) s) snaps);
    }
  in
  { Manager.name; step; persist = Some persist }

let make_perf ?seed ?platform () =
  make ~label:"qos" ~name:"MM-Perf" ?seed ?platform ()

let make_pow ?seed ?platform () =
  make ~label:"power" ~name:"MM-Pow" ?seed ?platform ()
