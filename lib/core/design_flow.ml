open Spectr_control
open Spectr_sysid
open Spectr_platform
module Platform_desc = Spectr_platform.Platform_desc

type subsystem =
  | Big_2x2
  | Little_2x2
  | Fs_4x2
  | Large_10x10
  | Cluster_2x2 of Platform_desc.t * int
      (* one cluster of an arbitrary platform description: (freq, cores)
         -> (qos|gips, power), the description-driven generalization of
         Big_2x2/Little_2x2 *)

let subsystem_name = function
  | Big_2x2 -> "big-2x2"
  | Little_2x2 -> "little-2x2"
  | Fs_4x2 -> "fs-4x2"
  | Large_10x10 -> "large-10x10"
  | Cluster_2x2 (p, i) ->
      (* The digest prefix keys the name to the exact description — two
         platforms sharing a cluster name are different subsystems. *)
      Printf.sprintf "%s-2x2@%s"
        (Platform_desc.cluster_name p i)
        (String.sub (Platform_desc.digest p) 0 8)

let platform_of = function
  | Big_2x2 | Little_2x2 | Fs_4x2 | Large_10x10 -> Platform_desc.exynos5422
  | Cluster_2x2 (p, _) -> p

let exynos_digest = lazy (Platform_desc.digest Platform_desc.exynos5422)

let is_reference_platform p =
  Platform_desc.digest p = Lazy.force exynos_digest

(* The per-cluster subsystem of a description, routed through the
   hard-wired Exynos variants when the description *is* the Exynos —
   keeping their memo keys (and thus identification experiments, gain
   caches and traces) identical to the pre-description code. *)
let cluster_subsystem p i =
  if is_reference_platform p then
    if i = Platform_desc.host p then Big_2x2 else Little_2x2
  else Cluster_2x2 (p, i)

type identified = {
  subsystem : subsystem;
  model : Arx.model;
  statespace : Statespace.t;
  input_channels : Mimo.channel array;
  output_channels : Mimo.channel array;
  report : Validation.report;
  dataset : Dataset.t;
}

(* Physical description of one experiment channel. *)
type phys = {
  ch_name : string;
  lo : float; (* excitation range *)
  hi : float;
  sat_min : float; (* actuator saturation; outputs use infinities *)
  sat_max : float;
}

(* Excitation ranges are deliberately narrower than the actuator limits:
   black-box identification of a nonlinear plant (P ∝ V²f, Amdahl core
   scaling) needs a quasi-linear neighbourhood around the operating
   point; the controllers may still saturate out to the full physical
   range at runtime. *)
let input_spec = function
  | Big_2x2 ->
      [|
        { ch_name = "big-freq-ghz"; lo = 0.8; hi = 1.8; sat_min = 0.2; sat_max = 2.0 };
        { ch_name = "big-cores"; lo = 2.; hi = 4.; sat_min = 1.; sat_max = 4. };
      |]
  | Little_2x2 ->
      [|
        { ch_name = "little-freq-ghz"; lo = 0.4; hi = 1.2; sat_min = 0.2; sat_max = 1.4 };
        { ch_name = "little-cores"; lo = 2.; hi = 4.; sat_min = 1.; sat_max = 4. };
      |]
  | Fs_4x2 ->
      [|
        { ch_name = "big-freq-ghz"; lo = 0.8; hi = 1.8; sat_min = 0.2; sat_max = 2.0 };
        { ch_name = "big-cores"; lo = 2.; hi = 4.; sat_min = 1.; sat_max = 4. };
        { ch_name = "little-freq-ghz"; lo = 0.4; hi = 1.2; sat_min = 0.2; sat_max = 1.4 };
        { ch_name = "little-cores"; lo = 2.; hi = 4.; sat_min = 1.; sat_max = 4. };
      |]
  | Large_10x10 ->
      (* A 10-knob controller has no quasi-linear neighbourhood to hide
         in: its actuators span their full range (the §2.2 argument). *)
      Array.append
        (Array.init 8 (fun i ->
             {
               ch_name = Printf.sprintf "idle-core%d" i;
               lo = 0.;
               hi = 0.9;
               sat_min = 0.;
               sat_max = 0.9;
             }))
        [|
          { ch_name = "big-freq-ghz"; lo = 0.8; hi = 1.8; sat_min = 0.2; sat_max = 2.0 };
          { ch_name = "little-freq-ghz"; lo = 0.4; hi = 1.2; sat_min = 0.2; sat_max = 1.4 };
        |]
  | Cluster_2x2 (p, i) ->
      (* Description-driven: excite the middle of the cluster's DVFS
         range (quasi-linear neighbourhood), saturate out to the full
         table; cores from 2 (or 1 on a unicore cluster) to the physical
         count. *)
      let cl = Platform_desc.cluster p i in
      let name = cl.Platform_desc.cl_name in
      let opp = cl.Platform_desc.opp in
      let lo_mhz = float_of_int (Opp.min_freq opp) in
      let hi_mhz = float_of_int (Opp.max_freq opp) in
      let span = hi_mhz -. lo_mhz in
      let cores = float_of_int cl.Platform_desc.cores in
      [|
        {
          ch_name = name ^ "-freq-ghz";
          lo = (lo_mhz +. (0.3 *. span)) /. 1000.;
          hi = (lo_mhz +. (0.85 *. span)) /. 1000.;
          sat_min = lo_mhz /. 1000.;
          sat_max = hi_mhz /. 1000.;
        };
        {
          ch_name = name ^ "-cores";
          lo = Float.min 2. cores;
          hi = cores;
          sat_min = 1.;
          sat_max = cores;
        };
      |]

let output_names = function
  | Big_2x2 -> [| "qos"; "big-power" |]
  | Little_2x2 -> [| "little-gips"; "little-power" |]
  | Fs_4x2 -> [| "qos"; "chip-power" |]
  | Large_10x10 ->
      Array.append
        (Array.init 8 (fun i -> Printf.sprintf "core%d-gips" i))
        [| "big-power"; "little-power" |]
  | Cluster_2x2 (p, i) ->
      let name = Platform_desc.cluster_name p i in
      if i = Platform_desc.host p then [| "qos"; name ^ "-power" |]
      else [| name ^ "-gips"; name ^ "-power" |]

let background_load = function
  | Big_2x2 -> 0
  | Little_2x2 -> 8
  | Fs_4x2 -> 4
  | Large_10x10 -> 4
  | Cluster_2x2 (p, i) ->
      (* Host identification wants the QoS app alone (like Big_2x2);
         secondary clusters are identified under the background load
         they exist to absorb (like Little_2x2). *)
      if i = Platform_desc.host p then 0 else 8

(* Exynos cluster indices of the hard-wired subsystems (description
   order of [Platform_desc.exynos5422]). *)
let exy_big = 0
let exy_little = 1

(* Apply one excitation row to the SoC and return the actually-applied
   physical input vector (after OPP quantization and rounding). *)
let apply_inputs subsystem soc row =
  match subsystem with
  | Big_2x2 | Little_2x2 | Cluster_2x2 _ ->
      let i =
        match subsystem with
        | Big_2x2 -> exy_big
        | Little_2x2 -> exy_little
        | Cluster_2x2 (_, i) -> i
        | _ -> assert false
      in
      let f = Soc.set_frequency soc i (row.(0) *. 1000.) in
      let cores = int_of_float (Float.round row.(1)) in
      Soc.set_active_cores soc i cores;
      [| float_of_int f /. 1000.; float_of_int (Soc.active_cores soc i) |]
  | Fs_4x2 ->
      let bf = Soc.set_frequency soc exy_big (row.(0) *. 1000.) in
      Soc.set_active_cores soc exy_big (int_of_float (Float.round row.(1)));
      let lf = Soc.set_frequency soc exy_little (row.(2) *. 1000.) in
      Soc.set_active_cores soc exy_little (int_of_float (Float.round row.(3)));
      [|
        float_of_int bf /. 1000.;
        float_of_int (Soc.active_cores soc exy_big);
        float_of_int lf /. 1000.;
        float_of_int (Soc.active_cores soc exy_little);
      |]
  | Large_10x10 ->
      for i = 0 to 7 do
        Soc.set_idle_fraction soc ~core:i row.(i)
      done;
      let bf = Soc.set_frequency soc exy_big (row.(8) *. 1000.) in
      let lf = Soc.set_frequency soc exy_little (row.(9) *. 1000.) in
      Array.append
        (Array.init 8 (fun i -> Soc.idle_fraction soc ~core:i))
        [| float_of_int bf /. 1000.; float_of_int lf /. 1000. |]

let read_outputs subsystem soc (obs : Soc.observation) =
  let powers = Soc.sensor_powers soc in
  match subsystem with
  | Big_2x2 -> [| obs.Soc.qos_rate; powers.(exy_big) |]
  | Little_2x2 ->
      [| (Soc.ips_totals soc).(exy_little) /. 1e9; powers.(exy_little) |]
  | Fs_4x2 -> [| obs.Soc.qos_rate; obs.Soc.chip_power |]
  | Large_10x10 ->
      (* The per-core PMU readings left the observation record (no
         runtime manager consumes them); the 10×10 identification pulls
         them from the SoC, which replays the skipped noise draws. *)
      Array.append
        (Array.map (fun v -> v /. 1e9) (Soc.per_core_ips soc))
        [| powers.(exy_big); powers.(exy_little) |]
  | Cluster_2x2 (p, i) ->
      if i = Platform_desc.host p then [| obs.Soc.qos_rate; powers.(i) |]
      else [| (Soc.ips_totals soc).(i) /. 1e9; powers.(i) |]

let identify_uncached ~seed ~length ~order subsystem =
  let platform = platform_of subsystem in
  let config = { (Soc.config_of platform) with seed } in
  let soc = Soc.create ~config ~platform ~qos:Benchmarks.microbench () in
  Soc.set_background_tasks soc (background_load subsystem);
  let phys_in = input_spec subsystem in
  (* Independent random staircases per channel (distinct dwell times and
     RNG streams) so the regression can separate actuator effects. *)
  let excitation =
    let master = Spectr_linalg.Prng.create (Int64.add seed 1L) in
    let per_channel =
      Array.mapi
        (fun i p ->
          let g = Spectr_linalg.Prng.split master in
          Excitation.random_staircase g ~lo:p.lo ~hi:p.hi ~hold:(8 + (3 * i))
            ~length ())
        phys_in
    in
    Array.init length (fun k ->
        Array.map (fun ch -> ch.(k)) per_channel)
  in
  let u = Array.make length [||] in
  let y = Array.make length [||] in
  (* Same loop order as the runtime daemon (measure, then actuate), so
     y(t) responds to u(t−1) — the one-period actuation delay the ARX
     lag structure assumes. *)
  for t = 0 to length - 1 do
    let obs = Soc.step soc ~dt:0.05 in
    y.(t) <- read_outputs subsystem soc obs;
    u.(t) <- apply_inputs subsystem soc excitation.(t)
  done;
  let raw = Dataset.create ~u ~y in
  (* Standardize: identification on deviations around the operating
     point, scaled to unit variance — the controller channels carry the
     (mean, std) back to physical units. *)
  let m = Dataset.num_inputs raw and p = Dataset.num_outputs raw in
  let stat_of arr =
    let mean = Spectr_linalg.Stats.mean arr in
    let std = Float.max 1e-6 (Spectr_linalg.Stats.std arr) in
    (mean, std)
  in
  let u_stats = Array.init m (fun i -> stat_of (Dataset.input_channel raw i)) in
  let y_stats = Array.init p (fun i -> stat_of (Dataset.output_channel raw i)) in
  let standardize stats row =
    Array.mapi
      (fun i v ->
        let mean, std = stats.(i) in
        (v -. mean) /. std)
      row
  in
  let data =
    Dataset.create
      ~u:(Array.map (standardize u_stats) raw.Dataset.u)
      ~y:(Array.map (standardize y_stats) raw.Dataset.y)
  in
  let est, held_out = Dataset.split data ~at:0.65 in
  let model =
    match Arx.fit ~na:order ~nb:order est with
    | Ok m -> m
    | Error e ->
        failwith
          (Format.asprintf "Design_flow.identify(%s): %a"
             (subsystem_name subsystem) Arx.pp_error e)
  in
  let report =
    Validation.validate ~output_names:(output_names subsystem) ~model held_out
  in
  let input_channels =
    Array.mapi
      (fun i ph ->
        let mean, std = u_stats.(i) in
        Mimo.channel ~offset:mean ~scale:std ~min:ph.sat_min ~max:ph.sat_max
          ph.ch_name)
      phys_in
  in
  let output_channels =
    Array.mapi
      (fun i name ->
        let mean, std = y_stats.(i) in
        Mimo.channel ~offset:mean ~scale:std name)
      (output_names subsystem)
  in
  {
    subsystem;
    model;
    statespace = Arx.to_statespace model;
    input_channels;
    output_channels;
    report;
    dataset = data;
  }

(* Identification is a pure function of (subsystem, seed, length, order):
   the experiment runs on a private SoC with explicit PRNG streams, so a
   cached result is indistinguishable from a fresh run.  The returned
   record is immutable and shared read-only — Mimo.create copies the
   references it needs.  Memoizing matters because every chaos-campaign
   cell (and every parallel bench task) builds its managers from scratch:
   without the cache each SPECTR construction replays two 60 s
   identification experiments. *)
let ident_cache :
    (subsystem * int64 * int * int, identified) Spectr_exec.Single_flight.t =
  Spectr_exec.Single_flight.create ~size:16 ()

let identify ?(seed = 17L) ?(length = 1200) ?(order = 2) subsystem =
  Spectr_exec.Single_flight.find_or_compute ident_cache
    ~key:(subsystem, seed, length, order)
    ~compute:(fun () -> identify_uncached ~seed ~length ~order subsystem)

type goal = { label : string; q_y : float array }

let design_gains ?r_u ident goals =
  let m = Statespace.num_inputs ident.statespace in
  let p = Statespace.num_outputs ident.statespace in
  let r_u =
    match r_u with
    | Some r -> r
    | None ->
        (* Paper §5: frequency twice as cheap to move as core count. *)
        Array.init m (fun i -> if i mod 2 = 0 then 1. else 2.)
  in
  let rec build acc = function
    | [] -> Ok (List.rev acc)
    | goal :: rest -> (
        if Array.length goal.q_y <> p then
          Error
            (Printf.sprintf "goal %s: q_y must have %d entries" goal.label p)
        else
          let w_max = Array.fold_left Float.max 1e-9 goal.q_y in
          (* Integrator weights square the output-priority ratio so the
             priority objective's integrator dominates steady-state
             conflicts: a 30:1 Q ratio yields 900:1 integral authority —
             the fixed controller pins its priority output at the
             reference and lets the other float, as in Fig. 3. *)
          let q_integrator =
            Array.map (fun w -> 0.1 *. w *. w /. w_max) goal.q_y
          in
          match
            Lqg.design ~q_integrator ~label:goal.label ~model:ident.statespace
              ~q_y:goal.q_y ~r_u ()
          with
          | Error e ->
              Error (Format.asprintf "goal %s: %a" goal.label Lqg.pp_error e)
          | Ok gains ->
              (* Robustness gate (Step 8); skipped for very wide systems
                 where the 2^p uncertainty corners explode. *)
              if
                p <= 4
                && not
                     (Guardband.robustly_stable Guardband.paper_defaults ~gains)
              then
                Error
                  (Printf.sprintf "goal %s: not robust under guardbands"
                     goal.label)
              else build (gains :: acc) rest)
  in
  build [] goals

(* Gain design is a pure function of the identified model and the goal
   weights, and the identified model is itself memoized on
   (subsystem, seed, length, order) — so the designed gain sets can be
   memoized on the union of both keys.  This is what makes batch
   harnesses cheap: the first manager of a variant pays the ~200 ms
   LQG/robustness pipeline, every later construction (each scenario
   cell, each parallel bench task) reuses the identical gain list.  The
   cached [Lqg.gains] are shared read-only, exactly like the cached
   identification record. *)
let design_cache :
    ( subsystem * int64 * int * int * (string * float array) list
      * float array option,
      (Lqg.gains list, string) result )
    Spectr_exec.Single_flight.t =
  Spectr_exec.Single_flight.create ~size:16 ()

let design_gains_for ?r_u ?(seed = 17L) ?(length = 1200) ?(order = 2) subsystem
    goals =
  let ident = identify ~seed ~length ~order subsystem in
  Spectr_exec.Single_flight.find_or_compute design_cache
    ~key:
      ( subsystem,
        seed,
        length,
        order,
        List.map (fun g -> (g.label, g.q_y)) goals,
        r_u )
    ~compute:(fun () -> design_gains ?r_u ident goals)

let build_mimo ident ~gains ~initial ~refs =
  Mimo.create ~gains ~initial ~inputs:ident.input_channels
    ~outputs:ident.output_channels ~refs ()
