open Spectr_control
open Spectr_platform

(* Exynos cluster indices: the SISO baseline is a hand-tuned PID chain
   for the reference big.LITTLE platform, not a description-driven
   manager — Scenario rejects it on any other platform. *)
let big = 0
let little = 1

let make ?seed () =
  ignore seed;
  let dt = 0.05 in
  (* QoS -> Big frequency: ~40 FPS of range per GHz near the operating
     point, so a gain of a few hundredths of GHz per FPS of error. *)
  let qos_pid =
    Pid.create
      (Pid.config ~u_min:(-0.8) ~u_max:1.0 ~kp:0.008 ~ki:0.12 ~kd:0. ~dt ())
      ~reference:60.
  in
  (* Big power -> active cores: positive error (below budget) adds
     cores.  Slow outer loop (integral-dominated). *)
  let cores_pid =
    Pid.create
      (Pid.config ~u_min:(-1.5) ~u_max:1.5 ~kp:0.2 ~ki:0.6 ~kd:0. ~dt ())
      ~reference:4.5
  in
  (* Little power -> little frequency. *)
  let little_pid =
    Pid.create
      (Pid.config ~u_min:(-0.4) ~u_max:0.8 ~kp:0.4 ~ki:1.2 ~kd:0. ~dt ())
      ~reference:0.3
  in
  (* Each PID produces a bounded deviation around a mid-range operating
     point (frequency 1.0 GHz, 2.5 cores, little 0.6 GHz). *)
  let step ~now:_ ~qos_ref ~envelope ~obs soc =
    let powers = Soc.sensor_powers soc in
    Pid.set_reference qos_pid qos_ref;
    Pid.set_reference cores_pid (Float.max 0.5 (envelope -. Mm.little_power_budget));
    let freq = 1.0 +. Pid.step qos_pid ~measured:obs.Soc.qos_rate in
    let cores = 2.5 +. Pid.step cores_pid ~measured:powers.(big) in
    Manager.apply_cluster_quiet soc big
      ~freq_ghz:(Float.max 0.2 (Float.min 2.0 freq))
      ~cores:(Float.max 1. (Float.min 4. cores));
    let lfreq = 0.6 +. Pid.step little_pid ~measured:powers.(little) in
    Manager.apply_cluster_quiet soc little
      ~freq_ghz:(Float.max 0.2 (Float.min 1.4 lfreq))
      ~cores:2.
  in
  let persist =
    {
      Manager.snapshot =
        (fun () ->
          {
            Manager.variant = "SISO";
            payload =
              Marshal.to_string
                (Pid.snapshot qos_pid, Pid.snapshot cores_pid,
                 Pid.snapshot little_pid)
                [];
          });
      restore =
        (fun c ->
          Manager.require_variant ~expect:"SISO" c;
          let sq, sc, sl =
            (Marshal.from_string c.Manager.payload 0
              : Pid.snapshot * Pid.snapshot * Pid.snapshot)
          in
          Pid.restore qos_pid sq;
          Pid.restore cores_pid sc;
          Pid.restore little_pid sl);
    }
  in
  { Manager.name = "SISO"; step; persist = Some persist }
