open Spectr_platform

let src = Logs.Src.create "spectr.manager" ~doc:"Actuation path"

module Log = (val Logs.src_log src : Logs.LOG)
module Obs = Spectr_obs

(* Observability handles (no-ops while instrumentation is disabled). *)
let c_actuations = Obs.Counters.counter "manager.actuations"
let c_sanitized = Obs.Counters.counter "manager.commands_sanitized"

type checkpoint = { variant : string; payload : string }
type persist = { snapshot : unit -> checkpoint; restore : checkpoint -> unit }

type t = {
  name : string;
  step :
    now:float ->
    qos_ref:float ->
    envelope:float ->
    obs:Soc.observation ->
    Soc.t ->
    unit;
  persist : persist option;
}

(* Payloads are Marshal-ed plain data; the variant tag is what guards a
   checkpoint from being restored into the wrong manager kind. *)
let require_variant ~expect c =
  if c.variant <> expect then
    invalid_arg
      (Printf.sprintf "Manager.restore: checkpoint for %S, manager is %S"
         c.variant expect)

let magic = "SPECTRCKPT1\n"

let save_checkpoint ~path c =
  (* Crash-safe: write to a temp file in the same directory, then
     atomically rename over the destination — a crash mid-write leaves
     either the old checkpoint or none, never a torn one. *)
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir "ckpt" ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc magic;
      output_string oc c.variant;
      output_char oc '\n';
      Marshal.to_channel oc c.payload [];
      flush oc);
  Sys.rename tmp path

let load_checkpoint ~path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let fail why =
        invalid_arg
          (Printf.sprintf "Manager.load_checkpoint: %s is not a checkpoint (%s)"
             path why)
      in
      let m = really_input_string ic (String.length magic) in
      if m <> magic then fail "bad magic";
      let variant = try input_line ic with End_of_file -> fail "truncated" in
      let payload : string =
        try Marshal.from_channel ic
        with End_of_file | Failure _ -> fail "truncated payload"
      in
      { variant; payload })

type applied = { freq_mhz : int; cores : int }

(* Controller outputs can be garbage (a diverged integrator, a NaN from a
   corrupted measurement).  Non-finite or negative commands must clamp to
   the nearest legal value — NaN conservatively to the low end — instead
   of silently becoming 0 cores (which `int_of_float nan` produces). *)
let sanitize_freq_mhz table freq_ghz =
  let f_mhz = freq_ghz *. 1000. in
  if Float.is_nan f_mhz then float_of_int (Opp.min_freq table)
  else if f_mhz = Float.infinity then float_of_int (Opp.max_freq table)
  else if f_mhz = Float.neg_infinity || f_mhz < 0. then
    float_of_int (Opp.min_freq table)
  else f_mhz

let sanitize_cores ?(max_cores = 4) cores =
  if Float.is_nan cores then 1
  else
    int_of_float
      (Float.round (Float.max 1. (Float.min (float_of_int max_cores) cores)))

(* Tick-path actuation: sanitize, quantize and apply, nothing else — no
   applied-record, no log message (even an unemitted [Log.debug] call
   allocates its message closure).  Managers that do not consume the
   readback use this one.  [cluster] is the platform cluster index. *)
let apply_cluster_quiet soc cluster ~freq_ghz ~cores =
  Obs.Counters.incr c_actuations;
  (if Obs.enabled () then
     (* Count commands in the garbage class the sanitizers exist for:
        non-finite or negative, not mere range clamping. *)
     let f_mhz = freq_ghz *. 1000. in
     if (not (Float.is_finite f_mhz)) || f_mhz < 0. || Float.is_nan cores then
       Obs.Counters.incr c_sanitized);
  let table = Soc.opp_table soc cluster in
  ignore
    (Soc.set_frequency soc cluster (sanitize_freq_mhz table freq_ghz) : int);
  Soc.set_active_cores soc cluster
    (sanitize_cores ~max_cores:(Soc.cluster_cores soc cluster) cores)

let apply_cluster soc cluster ~freq_ghz ~cores =
  apply_cluster_quiet soc cluster ~freq_ghz ~cores;
  let applied =
    {
      freq_mhz = Soc.frequency soc cluster;
      cores = Soc.active_cores soc cluster;
    }
  in
  Log.debug (fun m ->
      m "%s: commanded %.3f GHz / %.2f cores, applied %d MHz / %d cores"
        (Platform_desc.cluster_name (Soc.platform soc) cluster)
        freq_ghz cores applied.freq_mhz applied.cores);
  applied
