open Spectr_platform

let src = Logs.Src.create "spectr.manager" ~doc:"Actuation path"

module Log = (val Logs.src_log src : Logs.LOG)
module Obs = Spectr_obs

(* Observability handles (no-ops while instrumentation is disabled). *)
let c_actuations = Obs.Counters.counter "manager.actuations"
let c_sanitized = Obs.Counters.counter "manager.commands_sanitized"

type t = {
  name : string;
  step :
    now:float ->
    qos_ref:float ->
    envelope:float ->
    obs:Soc.observation ->
    Soc.t ->
    unit;
}

type applied = { freq_mhz : int; cores : int }

(* Controller outputs can be garbage (a diverged integrator, a NaN from a
   corrupted measurement).  Non-finite or negative commands must clamp to
   the nearest legal value — NaN conservatively to the low end — instead
   of silently becoming 0 cores (which `int_of_float nan` produces). *)
let sanitize_freq_mhz table freq_ghz =
  let f_mhz = freq_ghz *. 1000. in
  if Float.is_nan f_mhz then float_of_int (Opp.min_freq table)
  else if f_mhz = Float.infinity then float_of_int (Opp.max_freq table)
  else if f_mhz = Float.neg_infinity || f_mhz < 0. then
    float_of_int (Opp.min_freq table)
  else f_mhz

let sanitize_cores cores =
  if Float.is_nan cores then 1
  else int_of_float (Float.round (Float.max 1. (Float.min 4. cores)))

let apply_cluster soc cluster ~freq_ghz ~cores =
  Obs.Counters.incr c_actuations;
  (if Obs.enabled () then
     (* Count commands in the garbage class the sanitizers exist for:
        non-finite or negative, not mere range clamping. *)
     let f_mhz = freq_ghz *. 1000. in
     if (not (Float.is_finite f_mhz)) || f_mhz < 0. || Float.is_nan cores then
       Obs.Counters.incr c_sanitized);
  let table = match cluster with Soc.Big -> Opp.big | Soc.Little -> Opp.little in
  let freq_mhz = Soc.set_frequency soc cluster (sanitize_freq_mhz table freq_ghz) in
  Soc.set_active_cores soc cluster (sanitize_cores cores);
  let applied = { freq_mhz; cores = Soc.active_cores soc cluster } in
  Log.debug (fun m ->
      m "%s: commanded %.3f GHz / %.2f cores, applied %d MHz / %d cores"
        (match cluster with Soc.Big -> "big" | Soc.Little -> "little")
        freq_ghz cores applied.freq_mhz applied.cores);
  applied
