(** The SPECTR supervisory controller: offline synthesis plus the runtime
    execution engine that drives the leaf controllers.

    Offline, {!synthesize} runs the §4.3 pipeline — compose the
    {!Plant_model} sub-plants, restrict by the {!Spec}, synthesize with
    {!Spectr_automata.Synthesis.supcon} and verify non-blocking and
    controllability — producing the verified supervisor automaton
    (Fig. 12d).  Both models are generated from a
    {!Spectr_platform.Platform_desc.t}, so the pipeline covers any
    cluster count; the default is the paper's Exynos 5422.

    At runtime (every supervisor period, 2× the controller period in
    §5), {!step} translates sensor readings into the uncontrollable
    events of the high-level plant model, walks the supervisor automaton,
    and among the controllable events the supervisor leaves enabled picks
    actions by a budget policy: gain switches and per-cluster power
    reference moves.  The chosen commands are delivered through the
    {!commands} closures, decoupling the supervisor from any particular
    leaf-controller implementation (§4.1: "the flexibility to incorporate
    any pre-verified off-the-shelf controllers"). *)

open Spectr_automata
module Platform_desc = Spectr_platform.Platform_desc

type commands = {
  switch_gains : string -> unit;
      (** Called with ["qos"] or ["power"] on a gain-schedule switch. *)
  set_power_ref : int -> float -> unit;
      (** New power budget (W) for the given cluster index (description
          order; on exynos5422: 0 = Big, 1 = Little). *)
}

(** Configuration keeps the paper's Big/Little vocabulary: the [big_*]
    fields govern the {e host} cluster's budget, the [little_*] fields
    every {e secondary} cluster's (each secondary gets its own budget
    between the min and max, moved in [little_budget_step]
    increments). *)
type config = {
  qos_tolerance : float;  (** Relative QoS-met band (default 0.02). *)
  capping_target : float;
      (** Capping-target band edge as a fraction of the envelope
          (default 0.97) — middle band of the three-band algorithm. *)
  uncapping_threshold : float;  (** Lowest band edge (default 0.90). *)
  big_budget_step : float;  (** Budget increment, W (default 0.25). *)
  big_budget_min : float;  (** Floor for the host budget (default 0.8). *)
  little_budget_step : float;  (** Default 0.1. *)
  little_budget_min : float;  (** Default 0.15. *)
  little_budget_max : float;  (** Default 1.0. *)
  critical_cut : float;
      (** Multiplicative emergency cut factor (default 0.9). *)
  max_actions_per_step : int;  (** Command budget per invocation (4). *)
  min_capped_dwell : int;
      (** Uncapping hysteresis: supervisor periods that must elapse in
          power mode before [switchQoS] may fire (default 10 — one
          second at the 100 ms supervisor period).  Prevents gain-switch
          chatter when the capped power level sits below the uncapping
          threshold. *)
}

val default_config : config

val synthesize :
  ?platform:Platform_desc.t -> unit -> Automaton.t * Synthesis.stats
(** Synthesize and verify the supervisor for a platform description
    (default: exynos5422, the case study).  Raises [Failure] if the
    supervisor were empty or failed verification — both are structurally
    impossible for the generated models and covered by tests. *)

type t

val create :
  ?config:config ->
  ?platform:Platform_desc.t ->
  commands:commands ->
  envelope:float ->
  unit ->
  t
(** A runtime supervisor starting in QoS mode with the host budget at
    [envelope] minus the secondary floor and every secondary budget at
    0.3 W.  Synthesis runs once per {!create} (memoized per platform).
    Raises [Invalid_argument] when [envelope <= 0]. *)

val step :
  t -> qos:float -> qos_ref:float -> power:float -> envelope:float -> unit
(** One supervisor period: ingest the measured QoS rate, its reference,
    the measured chip power and the current power envelope (which may
    have changed — a thermal emergency), then emit commands.  Command
    closures are invoked synchronously, before [step] returns.

    Non-finite measurements (a failed sensor) are treated as dropped
    samples: the last trustworthy value is substituted, so the band
    logic keeps running instead of silently holding state forever. *)

val state : t -> string
(** Current supervisor-automaton state name (e.g. ["Eval\\.Safe.Uncapped"]
    — the plant component ["Eval.Safe"] is itself a product state, so
    its inner dot is escaped; see
    {!Spectr_automata.Automaton.product_state_name}).  Internally the
    engine tracks the state as an index and steps with
    {!Spectr_automata.Automaton.step_index}; this accessor is the only
    point where the index is translated back to a name. *)

val gains_mode : t -> string
(** ["qos"] or ["power"]. *)

val platform : t -> Platform_desc.t
val num_clusters : t -> int
val host_cluster : t -> int

val power_ref : t -> int -> float
(** Current power reference of the given cluster index.  Raises
    [Invalid_argument] outside [0, num_clusters). *)

val synthesis_stats : t -> Synthesis.stats
val automaton : t -> Automaton.t

(** {1 Checkpoint/restore}

    The runtime engine's full mutable state — automaton state index,
    gain mode, dwell age, the per-cluster budgets and the last
    trustworthy measurements — as plain data (safe to [Marshal]).  The
    synthesized automaton itself is {e not} captured: synthesis is
    deterministic and memoized, so a fresh {!create} rebuilds the
    identical automaton and the saved index stays valid. *)

type snapshot = {
  snap_state : int;
  snap_mode : string;
  snap_mode_age : int;
  snap_refs : float array;  (** Per-cluster budgets, description order. *)
  snap_last_qos : float;
  snap_last_qos_ref : float;
  snap_last_power : float;
  snap_last_envelope : float;
}

val snapshot : t -> snapshot

val restore : t -> snapshot -> unit
(** Overwrite the engine state.  The command closures are {e not}
    re-invoked — the leaf controllers carry their own snapshots and are
    restored separately; stepping after [restore] continues exactly as
    the snapshotted instance would have.  Raises [Invalid_argument] on a
    state index outside the automaton, an unknown mode, or a budget
    array whose length does not match the platform (a corrupted
    checkpoint must fail loudly, not walk an illegal state). *)

(** {1 Hot-swap state mapping (reconfiguration support)} *)

val adopt : t -> prev:snapshot -> prev_platform:Platform_desc.t -> unit
(** Map the outgoing supervisor's state onto [t], a freshly created
    supervisor synthesized for a (typically degraded) platform whose
    automaton need not share the old state space.  The mapping rule —
    the new automaton starts at its {e initial} state; budgets carry
    over by cluster name (removed clusters drop theirs, survivors are
    re-clamped); "power" gain mode carries over by replaying the
    uncontrollable capping history ([aboveTarget] → [switchPower]) from
    the initial state, keeping the capping dwell age; one ordinary step
    on the last carried measurements then settles the band events — is
    documented in full in DESIGN.md §17.  [restore] is its dual for the
    {e same} automaton; [adopt] is for a {e different} one.  Raises
    [Invalid_argument] when [prev]'s budget count does not match
    [prev_platform]. *)
