(** High-level plant models of the Exynos case study (Figure 12a).

    Two sub-plants are modelled as automata over {!Events} and composed
    with the synchronous product exactly as §4.3.1 does for the Big
    cluster:

    - {!qos_management} — the budget-adjustment loop: QoS observations
      arrive (met / not-met / power-safe variants) and the supervisor
      reacts by moving per-cluster power references up or down (or
      explicitly deciding not to, via [controlPower]);
    - {!power_capping} — the emergency loop: a power-budget violation
      ([critical]) demands a gain switch to the power-oriented set,
      possibly a deeper multiplicative cut ([decreaseCriticalPower],
      after which the cut is assumed deep enough that the next period is
      no longer critical — the hierarchical-consistency assumption that
      makes the three-interval specification enforceable), and a switch
      back once power re-enters the safe region.

    Markings make ⟨Eval, Safe⟩ the single "ideal" state of the composed
    plant, matching Figure 12d. *)

open Spectr_automata

val qos_management : Automaton.t
(** States: Eval (initial, marked), Raise, Lower. *)

val power_capping : Automaton.t
(** States: Safe (initial, marked), Watch, Emergency, Capped, StillHot,
    Cooling, Restore. *)

val composed : unit -> Automaton.t
(** [qos_management ‖ power_capping] — the automatically generated plant
    of Figure 12b. *)

val of_platform : Spectr_platform.Platform_desc.t -> Automaton.t * Automaton.t
(** The (QoS-management, power-capping) sub-plants generated for a
    platform description: the QoS loop reacts with one budget command
    per cluster (in description order), the capping loop is
    cluster-count invariant.  Memoized per platform digest;
    [of_platform exynos5422 = (qos_management, power_capping)]. *)

val composed_for : Spectr_platform.Platform_desc.t -> Automaton.t
(** Synchronous product of {!of_platform}'s pair — the plant handed to
    synthesis for a description-driven supervisor. *)
