(** Fault detection and isolation (the "FDI" of FDIR).

    Classifies runtime faults as transient-vs-permanent and names the
    failed channel, from sensor-visible evidence only: exact-zero
    streaks on power/QoS/IPS channels, actuation readback mismatches,
    and Kalman innovation residuals ({!Mimo.last_innovation_norm}) as a
    corroborating model-consistency monitor.  Persistence counters
    generalize {!Guarded}'s streak logic into a two-stage verdict:

    - a streak of [transient_ticks] consecutive bad ticks yields a
      {e transient} verdict — logged and counted, no action (the guarded
      layer's clamps and fallback already cover transients);
    - a streak of [permanent_ticks] latches a {e permanent} verdict and
      emits a {!finding} for the reconfiguration engine
      ({!Spectr_manager.make_reconfigurable}).

    Every verdict increments an [fdir.*] counter and appends a
    [Decision_log.Fdir] entry when observability is enabled.  The
    detector is deterministic, allocation-light, and never consults the
    fault schedule or any other ground truth. *)

type finding =
  | Cluster_down of int
      (** Cluster's power sensor {e and} its execution witness (IPS
          aggregate; heartbeat rate for the host) are permanently zero:
          the cluster is dead.  [Cluster_down host] is unrecoverable —
          reconfiguration falls back to open loop. *)
  | Power_sensor_down of int
      (** Power sensor permanently zero while the cluster demonstrably
          still executes.  The cluster's power is unobservable, so the
          safe reconfiguration still removes it from the supervised
          plant and pins it to its floor OPP. *)
  | Qos_sensor_down
      (** Heartbeat rate permanently zero while the host cluster still
          draws power.  The supervisor is blind on its primary objective
          — reconfiguration falls back to open loop. *)
  | Dvfs_latched of int
      (** Actuation readback shows the cluster's DVFS rail permanently
          ignoring requests: the plant still runs, pinned wherever the
          rail latched.  Reconfiguration re-synthesizes on a
          {!Platform_desc.Pin_opp}-degraded description. *)

val finding_channel : finding -> string
(** Stable channel label ("power1", "cluster2", "qos", "dvfs0") used in
    decision-log entries and bench tables. *)

type t

val create :
  ?transient_ticks:int ->
  ?permanent_ticks:int ->
  ?innovation_threshold:float ->
  k:int ->
  host:int ->
  unit ->
  t
(** [transient_ticks] (default 6 — 0.3 s at the 50 ms period) and
    [permanent_ticks] (default 60 — 3.0 s, the detection lag quoted in
    EXPERIMENTS.md) bound the persistence counters;
    [innovation_threshold] (default 4.0, normalized output units) flags
    residual anomalies.  Raises [Invalid_argument] unless
    [1 <= transient_ticks < permanent_ticks]. *)

val observe : t -> qos:float -> powers:float array -> ips:float array -> unit
(** Feed one tick of raw (pre-guard) sensor evidence: the heartbeat
    rate, the [k] per-cluster power readings, and the [k] per-cluster
    IPS aggregates ({!Soc.ips_totals}; the host entry is 0 by
    convention, which is why the host's execution witness is [qos]). *)

val note_actuation : t -> cluster:int -> ok:bool -> unit
(** Feed one actuation readback comparison (requested OPP applied?). *)

val note_innovation : t -> cluster:int -> norm:float -> unit
(** Feed one controller's innovation-residual norm for this tick. *)

val poll : t -> finding list
(** Newly latched permanent findings since the last poll, oldest first.
    Each finding is emitted exactly once; permanent verdicts never
    un-latch. *)

val residual_flagged : t -> cluster:int -> bool
(** Has the innovation-residual monitor flagged this cluster (transient
    or latched)?  Corroboration for tests and diagnostics. *)

(** {1 Checkpoint/restore} *)

type snapshot

val snapshot : t -> snapshot
val restore : t -> snapshot -> unit
(** Raises [Invalid_argument] on dimension mismatch. *)
