(** Evaluation metrics of §5.1: per-phase steady-state error (the bars of
    Figure 14) and settling time after reference changes.

    Sign convention follows the paper: error = reference − measured, as a
    percentage of the reference.  "Negative values indicate that the
    power/QoS exceeds the reference value, positive values indicate power
    savings or failure to meet QoS." *)

open Spectr_platform

type phase_metrics = {
  phase_name : string;
  qos_error_pct : float;  (** Steady-state QoS error (% of reference). *)
  power_error_pct : float;
      (** Steady-state power error vs the phase envelope (%). *)
  power_settling_s : float option;
      (** Time for chip power to settle within 5 % of the envelope after
          the phase starts; [None] when it never settles. *)
  compliance_time_s : float option;
      (** Time until chip power drops to (and stays at or under) the
          envelope — the §5.1.1 responsiveness comparison after a
          thermal-emergency reference drop.  [None] when the phase never
          becomes compliant. *)
  energy_j : float;  (** Chip energy over the phase (J). *)
  energy_per_heartbeat_j : float;
      (** Energy efficiency: joules per heartbeat of QoS work done —
          the "meet QoS while minimizing energy" goal of §4.2; [infinity]
          when no heartbeat was delivered. *)
}

val power_allowance : float
(** Measurement allowance on the envelope used by {!recovery_time} and
    the compliance-time metric: power ≤ envelope × [power_allowance]
    (1.02) counts as compliant.  A metrology tolerance for sensor
    quantization and actuation lag — intentionally tighter than the 5 %
    safety guardband of [Spectr_chaos.Invariants.default_limits], which
    answers a different question (safety margin, not regulation
    quality). *)

val per_phase : trace:Trace.t -> config:Scenario.config -> phase_metrics list
(** Steady-state errors use the last 40 % of each phase's samples.
    Phases whose duration rounds to zero controller periods record no
    samples and are omitted from the result.

    The power metrics honor the trace's {e per-tick} [envelope] column:
    a phase whose envelope steps mid-phase (chaos fault windows, fleet
    cap re-budgets) is judged tick by tick against the envelope in force
    at each sample.  When the column is constant across the phase — every
    plain scenario — the computation is bit-identical to the historical
    scalar one, so pinned bench outputs are unchanged. *)

val compliance_time :
  envelope:float -> dt:float -> float array -> float option
(** The compliance-time metric of {!per_phase} against a constant
    envelope: first time from which power stays at or under
    [envelope × ]{!power_allowance} for the rest of the slice.
    [Some 0.] when the slice never violates; [None] when the last
    sample still violates (compliance was never sustained). *)

val recovery_time :
  envelope:float -> dt:float -> after:int -> float array -> float option
(** Fault-recovery metric: seconds from sample index [after] (e.g. a
    fault's onset or clearance) until chip power drops to — and stays at
    or under — the envelope ({!power_allowance}) for the rest of the
    slice.
    [None] when power never re-complies. *)

val recovery_time_series :
  envelope:float array -> dt:float -> after:int -> float array -> float option
(** {!recovery_time} against a per-sample envelope (the trace's
    [envelope] column for the same slice): each sample is compared to
    the envelope in force at its own tick.  Raises [Invalid_argument]
    on a length mismatch. *)

val compliance_time_series :
  envelope:float array -> dt:float -> float array -> float option
(** The compliance-time metric of {!per_phase} against a per-sample
    envelope: first time from which power stays at or under
    [envelope.(i) × ]{!power_allowance} for the rest of the slice;
    [None] when it never complies.  Raises [Invalid_argument] on a
    length mismatch. *)

val reconvergence_time :
  reference:float ->
  band:float ->
  dt:float ->
  after:int ->
  float array ->
  float option
(** Seconds from sample index [after] until the signal re-enters (and
    stays within) [band] (relative, e.g. 0.1 = ±10 %) of [reference] for
    the rest of the slice; [None] when it never reconverges. *)

val pp_phase_metrics : Format.formatter -> phase_metrics -> unit

val qos_of : phase_metrics list -> string -> float
(** QoS error of the named phase.  Raises [Invalid_argument] on a bad
    name, naming both the missing phase and the phases available — a
    bench-table failure must be diagnosable from the message alone. *)

val power_of : phase_metrics list -> string -> float
