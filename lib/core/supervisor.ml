open Spectr_automata
module Obs = Spectr_obs
module Platform_desc = Spectr_platform.Platform_desc

(* Observability handles (no-ops while instrumentation is disabled). *)
let c_steps = Obs.Counters.counter "supervisor.steps"
let c_fired = Obs.Counters.counter "supervisor.events_fired"
let c_observed = Obs.Counters.counter "supervisor.events_observed"
let c_dropped = Obs.Counters.counter "supervisor.samples_dropped"
let h_step = Obs.Histogram.histogram "supervisor.step_ns"

type commands = {
  switch_gains : string -> unit;
  set_power_ref : int -> float -> unit;
      (* per-cluster power-reference update, cluster in description
         order *)
}

(* Config field names keep the paper's Big/Little vocabulary: "big" is
   the host cluster (the one running the QoS application), "little" is
   every secondary cluster — each secondary gets its own budget between
   [little_budget_min] and [little_budget_max], moved in
   [little_budget_step] increments. *)
type config = {
  qos_tolerance : float;
  capping_target : float;
  uncapping_threshold : float;
  big_budget_step : float;
  big_budget_min : float;
  little_budget_step : float;
  little_budget_min : float;
  little_budget_max : float;
  critical_cut : float;
  max_actions_per_step : int;
  min_capped_dwell : int;
      (* supervisor periods that must elapse in power mode before
         switching back to QoS gains (uncapping hysteresis) *)
}

let default_config =
  {
    qos_tolerance = 0.02;
    capping_target = 0.97;
    uncapping_threshold = 0.90;
    big_budget_step = 0.25;
    big_budget_min = 0.8;
    little_budget_step = 0.1;
    little_budget_min = 0.15;
    little_budget_max = 1.0;
    critical_cut = 0.9;
    max_actions_per_step = 4;
    min_capped_dwell = 10;
  }

let synthesize ?(platform = Platform_desc.exynos5422) () =
  let plant = Plant_model.composed_for platform in
  (* Memoized: every scenario constructs its managers from scratch (a
     requirement of the parallel bench harness), but synthesis only ever
     runs once per (plant, spec) digest pair — i.e. once per platform
     description. *)
  match
    Spectr_exec.Synth_cache.supcon ~plant ~spec:(Spec.of_platform platform)
  with
  | Error Synthesis.Empty_supervisor ->
      failwith "Supervisor.synthesize: empty supervisor"
  | Ok (sup, stats) ->
      (match Verify.nonblocking sup with
      | Ok () -> ()
      | Error { Verify.state } ->
          failwith ("Supervisor.synthesize: blocking at " ^ state));
      (match Verify.controllable ~plant ~supervisor:sup with
      | Ok () -> ()
      | Error w ->
          failwith
            ("Supervisor.synthesize: uncontrollable at " ^ w.Verify.plant_state));
      (sup, stats)

type t = {
  config : config;
  commands : commands;
  platform : Platform_desc.t;
  auto : Automaton.t;
  stats : Synthesis.stats;
  k : int; (* cluster count *)
  host : int; (* host-cluster index *)
  (* Per-cluster budget-command ids, indexed by cluster. *)
  id_increase : int array;
  id_decrease : int array;
  refs : float array; (* per-cluster power references *)
  ref_targets : string array; (* decision-log labels, "<name>_power_ref" *)
  mutable current : int; (* supervisor-automaton state index *)
  mutable mode : string; (* "qos" | "power" *)
  mutable mode_age : int; (* supervisor periods since the last switch *)
  (* Most recent measurements, consulted by the action policy. *)
  mutable last_qos : float;
  mutable last_qos_ref : float;
  mutable last_power : float;
  mutable last_envelope : float;
}

let create ?(config = default_config) ?(platform = Platform_desc.exynos5422)
    ~commands ~envelope () =
  if envelope <= 0. then invalid_arg "Supervisor.create: envelope <= 0";
  let auto, stats = synthesize ~platform () in
  let fam = Events.for_platform platform in
  let k = Platform_desc.num_clusters platform in
  let host = Platform_desc.host platform in
  let refs = Array.make k 0.3 in
  refs.(host) <- Float.max config.big_budget_min (envelope -. 0.6);
  commands.set_power_ref host refs.(host);
  for i = 0 to k - 1 do
    if i <> host then commands.set_power_ref i refs.(i)
  done;
  {
    config;
    commands;
    platform;
    auto;
    stats;
    k;
    host;
    id_increase = Array.init k (fun i -> Event.id (Events.increase fam i));
    id_decrease = Array.init k (fun i -> Event.id (Events.decrease fam i));
    refs;
    ref_targets =
      Array.init k (fun i ->
          Platform_desc.cluster_name platform i ^ "_power_ref");
    current = Automaton.initial_index auto;
    mode = "qos";
    mode_age = 0;
    last_qos = 0.;
    last_qos_ref = 1.;
    last_power = 0.;
    last_envelope = envelope;
  }

(* The only place the runtime engine translates back to a name: the hot
   path below tracks the state purely as an index. *)
let state t = Automaton.state_of_index t.auto t.current
let gains_mode t = t.mode
let platform t = t.platform
let num_clusters t = t.k
let host_cluster t = t.host

let power_ref t i =
  if i < 0 || i >= t.k then invalid_arg "Supervisor.power_ref: cluster index";
  t.refs.(i)

let synthesis_stats t = t.stats
let automaton t = t.auto

type snapshot = {
  snap_state : int;
  snap_mode : string;
  snap_mode_age : int;
  snap_refs : float array;
  snap_last_qos : float;
  snap_last_qos_ref : float;
  snap_last_power : float;
  snap_last_envelope : float;
}

let snapshot t =
  {
    snap_state = t.current;
    snap_mode = t.mode;
    snap_mode_age = t.mode_age;
    snap_refs = Array.copy t.refs;
    snap_last_qos = t.last_qos;
    snap_last_qos_ref = t.last_qos_ref;
    snap_last_power = t.last_power;
    snap_last_envelope = t.last_envelope;
  }

let restore t s =
  if s.snap_state < 0 || s.snap_state >= Automaton.num_states t.auto then
    invalid_arg "Supervisor.restore: state index out of range";
  if s.snap_mode <> "qos" && s.snap_mode <> "power" then
    invalid_arg (Printf.sprintf "Supervisor.restore: mode %S" s.snap_mode);
  if Array.length s.snap_refs <> t.k then
    invalid_arg
      (Printf.sprintf "Supervisor.restore: %d budget refs, platform has %d"
         (Array.length s.snap_refs) t.k);
  t.current <- s.snap_state;
  t.mode <- s.snap_mode;
  t.mode_age <- s.snap_mode_age;
  Array.blit s.snap_refs 0 t.refs 0 t.k;
  t.last_qos <- s.snap_last_qos;
  t.last_qos_ref <- s.snap_last_qos_ref;
  t.last_power <- s.snap_last_power;
  t.last_envelope <- s.snap_last_envelope

(* --- actions --------------------------------------------------------- *)

(* The runtime engine works purely in event-id space: the global ids
   below are interned once at module load (per-cluster command ids live
   in [t], filled at creation), and every per-step automaton query is an
   int binary search ({!Automaton.step_index_raw}) — no event lists, no
   options, no string comparisons on the tick path. *)
let id_critical = Event.id Events.critical
let id_above_target = Event.id Events.above_target
let id_below_target = Event.id Events.below_target
let id_safe_power = Event.id Events.safe_power
let id_qos_met = Event.id Events.qos_met
let id_qos_not_met = Event.id Events.qos_not_met
let id_power_safe_qos_met = Event.id Events.power_safe_qos_met
let id_power_safe_qos_not_met = Event.id Events.power_safe_qos_not_met
let id_switch_power = Event.id Events.switch_power
let id_switch_qos = Event.id Events.switch_qos
let id_decrease_critical_power = Event.id Events.decrease_critical_power
let id_control_power = Event.id Events.control_power
let id_hold_budget = Event.id Events.hold_budget

(* Is [eid] enabled in the current supervisor state?  All candidates the
   policy probes are controllable by construction, so no
   controllability filter is needed. *)
let[@inline] has t eid = Automaton.step_index_raw t.auto t.current eid >= 0

(* The cluster budgets must jointly respect the envelope: the host
   budget is clamped to what the secondary allocations leave.  The
   secondary clusters rarely draw their full budgets, so only 90 % of
   them is reserved — transient overshoots are caught by the
   critical-event feedback loop rather than by static conservatism. *)
let[@inline] host_budget_cap t =
  if t.k = 1 then
    (* Host-only plant (a degraded description with every secondary
       removed): there is no fine-grained secondary to absorb the last
       watts, and the host's OPP grid is coarse — an OPP step is ~0.4 W
       near the top of the big cluster's table — so capping at the full
       envelope limit-cycles across it.  Cap at the supervisor's own
       capping target instead, less half an OPP step of slack. *)
    (t.last_envelope *. t.config.capping_target) -. 0.2
  else begin
    let reserved = ref 0. in
    for i = 0 to t.k - 1 do
      if i <> t.host then reserved := !reserved +. t.refs.(i)
    done;
    t.last_envelope -. (0.9 *. !reserved)
  end

let[@inline] record_rebudget t i v =
  if Obs.enabled () then
    Obs.Decision_log.record
      (Obs.Decision_log.Rebudget { target = t.ref_targets.(i); value = v })

let set_host t v =
  let v =
    Float.max t.config.big_budget_min (Float.min v (host_budget_cap t))
  in
  if v <> t.refs.(t.host) then begin
    t.refs.(t.host) <- v;
    t.commands.set_power_ref t.host v;
    record_rebudget t t.host v
  end

let set_secondary t i v =
  let v =
    Float.max t.config.little_budget_min
      (Float.min v t.config.little_budget_max)
  in
  if v <> t.refs.(i) then begin
    t.refs.(i) <- v;
    t.commands.set_power_ref i v;
    record_rebudget t i v
  end

(* Dispatch one per-cluster budget command; returns false when [eid] is
   not one of them. *)
let execute_cluster t eid =
  let matched = ref false in
  let i = ref 0 in
  while (not !matched) && !i < t.k do
    let ci = !i in
    (if eid = t.id_increase.(ci) then begin
       matched := true;
       if ci = t.host then set_host t (t.refs.(ci) +. t.config.big_budget_step)
       else begin
         set_secondary t ci (t.refs.(ci) +. t.config.little_budget_step);
         (* a bigger secondary allocation shrinks the host budget cap *)
         set_host t t.refs.(t.host)
       end
     end
     else if eid = t.id_decrease.(ci) then begin
       matched := true;
       if ci = t.host then set_host t (t.refs.(ci) -. t.config.big_budget_step)
       else set_secondary t ci (t.refs.(ci) -. t.config.little_budget_step)
     end);
    incr i
  done;
  !matched

let execute t eid =
  Obs.Counters.incr c_fired;
  if Obs.enabled () then
    Obs.Decision_log.record
      (Obs.Decision_log.Event_fired
         { event = Event.name (Automaton.event_of_id t.auto eid);
           controllable = true });
  (if eid = id_switch_power then begin
     t.mode <- "power";
     t.mode_age <- 0;
     t.commands.switch_gains "power";
     if Obs.enabled () then
       Obs.Decision_log.record (Obs.Decision_log.Gain_switch { mode = "power" })
   end
   else if eid = id_switch_qos then begin
     t.mode <- "qos";
     t.mode_age <- 0;
     t.commands.switch_gains "qos";
     if Obs.enabled () then
       Obs.Decision_log.record (Obs.Decision_log.Gain_switch { mode = "qos" })
   end
   else if eid = id_decrease_critical_power then begin
     set_host t (t.refs.(t.host) *. t.config.critical_cut);
     for i = 0 to t.k - 1 do
       if i <> t.host then set_secondary t i t.config.little_budget_min
     done
   end
   else if eid = id_control_power then begin
     (* Capping-band bookkeeping: re-clamp budgets to the envelope. *)
     set_host t t.refs.(t.host);
     for i = 0 to t.k - 1 do
       if i <> t.host then set_secondary t i t.refs.(i)
     done
   end
   else if execute_cluster t eid then ()
   else () (* holdBudget and anything unknown: state step only *));
  let next = Automaton.step_index_raw t.auto t.current eid in
  if next >= 0 then t.current <- next
(* execute is only called on enabled events, so next >= 0 in practice *)

(* Secondary-cluster scans of the action policy: first enabled
   budget-raise (resp. -cut) command among the secondary clusters in
   description order.  Returns the event id or [-1]. *)
let first_secondary_increase t =
  let c = t.config in
  let pick = ref (-1) in
  let i = ref 0 in
  while !pick < 0 && !i < t.k do
    (if !i <> t.host
        && t.refs.(!i) < c.little_budget_max -. 0.01
        && has t t.id_increase.(!i)
     then pick := t.id_increase.(!i));
    incr i
  done;
  !pick

let first_secondary_decrease t =
  let c = t.config in
  let pick = ref (-1) in
  let i = ref 0 in
  while !pick < 0 && !i < t.k do
    (if !i <> t.host
        && t.refs.(!i) > c.little_budget_min +. 0.01
        && has t t.id_decrease.(!i)
     then pick := t.id_decrease.(!i));
    incr i
  done;
  !pick

(* The budget policy: among the controllable events the supervisor leaves
   enabled in the current state, pick the most useful one.  Returns the
   event id, or [-1] when no enabled controllable remains.  Each [has]
   probe is one binary search of the current CSR row. *)
let choose_action t =
  let c = t.config in
  let qos_surplus = t.last_qos -. (t.last_qos_ref *. (1. +. c.qos_tolerance)) in
  let headroom = host_budget_cap t -. t.refs.(t.host) in
  if has t id_switch_power then id_switch_power
  else if has t id_decrease_critical_power then id_decrease_critical_power
  else if has t id_switch_qos && t.mode_age >= c.min_capped_dwell then
    id_switch_qos
  else if has t t.id_increase.(t.host) && headroom > 0.01 then
    t.id_increase.(t.host)
  else begin
    let raise_eid = if headroom <= 0.01 then first_secondary_increase t else -1 in
    if raise_eid >= 0 then raise_eid
    else if has t t.id_decrease.(t.host) && qos_surplus > 0. then
      t.id_decrease.(t.host)
    else begin
      let cut_eid = if qos_surplus > 0. then first_secondary_decrease t else -1 in
      if cut_eid >= 0 then cut_eid
      else if has t id_control_power then id_control_power
      else if has t id_hold_budget then id_hold_budget
      else -1
    end
  end

(* A counted while-loop (a local [let rec] would allocate a closure
   over [t] on every call). *)
let run_controllables t =
  let budget = ref t.config.max_actions_per_step in
  let stop = ref false in
  while (not !stop) && !budget > 0 do
    let eid = choose_action t in
    if eid >= 0 then begin
      execute t eid;
      decr budget
    end
    else stop := true
  done

(* Feed one uncontrollable event if the supervisor defines it here. *)
let feed t eid =
  let next = Automaton.step_index_raw t.auto t.current eid in
  if next >= 0 then begin
    Obs.Counters.incr c_observed;
    if Obs.enabled () then
      Obs.Decision_log.record
        (Obs.Decision_log.Event_fired
           { event = Event.name (Automaton.event_of_id t.auto eid);
             controllable = false });
    t.current <- next;
    run_controllables t
  end

(* Sensor-fault substitution arm of the guard in [do_step]: count the
   drop, pass the fallback through. *)
let[@inline] subst v =
  Obs.Counters.incr c_dropped;
  v

let do_step t ~qos ~qos_ref ~power ~envelope =
  (* Sensor-fault guard: a non-finite measurement must not poison the
     band comparisons (NaN makes every band test false, silently holding
     the current state forever).  Treat it as a dropped sample and fall
     back to the last trustworthy value — the guarded layer upstream
     normally filters these out, but the supervisor must stay safe even
     when driven bare. *)
  let qos = if Float.is_finite qos then qos else subst t.last_qos in
  let qos_ref =
    if Float.is_finite qos_ref then qos_ref else subst t.last_qos_ref
  in
  let power = if Float.is_finite power then power else subst t.last_power in
  let envelope =
    if Float.is_finite envelope && envelope > 0. then envelope
    else subst t.last_envelope
  in
  t.mode_age <- t.mode_age + 1;
  t.last_qos <- qos;
  t.last_qos_ref <- qos_ref;
  t.last_power <- power;
  (if envelope <> t.last_envelope then begin
     t.last_envelope <- envelope;
     (* Re-clamp budgets immediately on an envelope change (thermal
        emergency or recovery). *)
     set_host t t.refs.(t.host)
   end);
  let c = t.config in
  (* Power-band event ([-1]: inside the capping band, nothing fires). *)
  let power_eid =
    if power > envelope then id_critical
    else if power > c.capping_target *. envelope then id_above_target
    else if power < c.uncapping_threshold *. envelope then
      if t.mode = "power" then id_safe_power else id_below_target
    else -1
  in
  if power_eid >= 0 then feed t power_eid;
  (* QoS event. *)
  let qos_ok = qos >= qos_ref *. (1. -. c.qos_tolerance) in
  let power_ok = power <= envelope in
  let qos_eid =
    if power_ok then
      if qos_ok then id_power_safe_qos_met else id_power_safe_qos_not_met
    else if qos_ok then id_qos_met
    else id_qos_not_met
  in
  feed t qos_eid;
  (* Give the budget policy a chance even when no event fired. *)
  run_controllables t

(* --- hot-swap state mapping ------------------------------------------- *)

(* The reconfiguration engine replaces a supervisor synthesized for the
   healthy platform with one synthesized for the degraded description.
   The two automata have different state spaces (different event
   alphabets when a cluster disappeared), so the old state index is
   meaningless in the new automaton.  The mapping rule:

   1. the new supervisor starts at its {e initial} state (the only state
      guaranteed to exist and to be safe in the new automaton);
   2. the outgoing budget references carry over {e by cluster name} —
      clusters removed by the degradation drop their allocation, the
      survivors' carry-overs are re-clamped against the (possibly
      smaller) envelope through the normal [set_host]/[set_secondary]
      clamps, so the carried configuration is expressible in the new
      automaton's budget lattice;
   3. the gains mode carries over by replaying the uncontrollable
      history that would have produced it: a supervisor that was capping
      ("power" mode) re-enters capping by feeding [aboveTarget] from the
      initial state and letting the policy fire [switchPower], keeping
      the capping dwell-age so un-capping hysteresis does not restart;
   4. one ordinary [do_step] on the last carried measurements settles
      the band events, so the first live tick after the swap sees a
      supervisor already consistent with the measured world.

   Everything else (Kalman states, integrators) lives in the MIMO layer
   and is carried there by reusing the surviving controllers. *)
let adopt t ~prev ~prev_platform =
  let kp = Platform_desc.num_clusters prev_platform in
  if Array.length prev.snap_refs <> kp then
    invalid_arg
      (Printf.sprintf "Supervisor.adopt: %d budget refs, previous platform \
                       has %d clusters"
         (Array.length prev.snap_refs) kp);
  let qos = prev.snap_last_qos in
  let qos_ref = prev.snap_last_qos_ref in
  let power = prev.snap_last_power in
  let envelope = prev.snap_last_envelope in
  t.last_qos <- qos;
  t.last_qos_ref <- qos_ref;
  t.last_power <- power;
  if Float.is_finite envelope && envelope > 0. then t.last_envelope <- envelope;
  Array.iteri
    (fun j v ->
      match
        Platform_desc.find_cluster t.platform
          (Platform_desc.cluster_name prev_platform j)
      with
      | None -> () (* removed by the degradation: allocation dropped *)
      | Some i -> if i = t.host then set_host t v else set_secondary t i v)
    prev.snap_refs;
  if prev.snap_mode = "power" && t.mode <> "power" then begin
    feed t id_above_target;
    if t.mode <> "power" && has t id_switch_power then execute t id_switch_power;
    if t.mode = "power" then t.mode_age <- prev.snap_mode_age
  end;
  do_step t ~qos ~qos_ref ~power ~envelope

(* One supervisory invocation: counted and latency-timed when
   observability is enabled; otherwise exactly [do_step]. *)
let step t ~qos ~qos_ref ~power ~envelope =
  if not (Obs.enabled ()) then do_step t ~qos ~qos_ref ~power ~envelope
  else begin
    Obs.Counters.incr c_steps;
    Obs.time h_step (fun () -> do_step t ~qos ~qos_ref ~power ~envelope)
  end
