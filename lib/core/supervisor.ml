open Spectr_automata
module Obs = Spectr_obs

(* Observability handles (no-ops while instrumentation is disabled). *)
let c_steps = Obs.Counters.counter "supervisor.steps"
let c_fired = Obs.Counters.counter "supervisor.events_fired"
let c_observed = Obs.Counters.counter "supervisor.events_observed"
let c_dropped = Obs.Counters.counter "supervisor.samples_dropped"
let h_step = Obs.Histogram.histogram "supervisor.step_ns"

type commands = {
  switch_gains : string -> unit;
  set_big_power_ref : float -> unit;
  set_little_power_ref : float -> unit;
}

type config = {
  qos_tolerance : float;
  capping_target : float;
  uncapping_threshold : float;
  big_budget_step : float;
  big_budget_min : float;
  little_budget_step : float;
  little_budget_min : float;
  little_budget_max : float;
  critical_cut : float;
  max_actions_per_step : int;
  min_capped_dwell : int;
      (* supervisor periods that must elapse in power mode before
         switching back to QoS gains (uncapping hysteresis) *)
}

let default_config =
  {
    qos_tolerance = 0.02;
    capping_target = 0.97;
    uncapping_threshold = 0.90;
    big_budget_step = 0.25;
    big_budget_min = 0.8;
    little_budget_step = 0.1;
    little_budget_min = 0.15;
    little_budget_max = 1.0;
    critical_cut = 0.9;
    max_actions_per_step = 4;
    min_capped_dwell = 10;
  }

let synthesize () =
  let plant = Plant_model.composed () in
  (* Memoized: every scenario constructs its managers from scratch (a
     requirement of the parallel bench harness), but the synthesis of
     the case-study supervisor only ever runs once per process. *)
  match Spectr_exec.Synth_cache.supcon ~plant ~spec:Spec.three_band with
  | Error Synthesis.Empty_supervisor ->
      failwith "Supervisor.synthesize: empty supervisor"
  | Ok (sup, stats) ->
      (match Verify.nonblocking sup with
      | Ok () -> ()
      | Error { Verify.state } ->
          failwith ("Supervisor.synthesize: blocking at " ^ state));
      (match Verify.controllable ~plant ~supervisor:sup with
      | Ok () -> ()
      | Error w ->
          failwith
            ("Supervisor.synthesize: uncontrollable at " ^ w.Verify.plant_state));
      (sup, stats)

type t = {
  config : config;
  commands : commands;
  auto : Automaton.t;
  stats : Synthesis.stats;
  mutable current : int; (* supervisor-automaton state index *)
  mutable mode : string; (* "qos" | "power" *)
  mutable mode_age : int; (* supervisor periods since the last switch *)
  mutable big_ref : float;
  mutable little_ref : float;
  (* Most recent measurements, consulted by the action policy. *)
  mutable last_qos : float;
  mutable last_qos_ref : float;
  mutable last_power : float;
  mutable last_envelope : float;
}

let create ?(config = default_config) ~commands ~envelope () =
  if envelope <= 0. then invalid_arg "Supervisor.create: envelope <= 0";
  let auto, stats = synthesize () in
  let big_ref = Float.max config.big_budget_min (envelope -. 0.6) in
  let little_ref = 0.3 in
  commands.set_big_power_ref big_ref;
  commands.set_little_power_ref little_ref;
  {
    config;
    commands;
    auto;
    stats;
    current = Automaton.initial_index auto;
    mode = "qos";
    mode_age = 0;
    big_ref;
    little_ref;
    last_qos = 0.;
    last_qos_ref = 1.;
    last_power = 0.;
    last_envelope = envelope;
  }

(* The only place the runtime engine translates back to a name: the hot
   path below tracks the state purely as an index. *)
let state t = Automaton.state_of_index t.auto t.current
let gains_mode t = t.mode
let big_power_ref t = t.big_ref
let little_power_ref t = t.little_ref
let synthesis_stats t = t.stats
let automaton t = t.auto

type snapshot = {
  snap_state : int;
  snap_mode : string;
  snap_mode_age : int;
  snap_big_ref : float;
  snap_little_ref : float;
  snap_last_qos : float;
  snap_last_qos_ref : float;
  snap_last_power : float;
  snap_last_envelope : float;
}

let snapshot t =
  {
    snap_state = t.current;
    snap_mode = t.mode;
    snap_mode_age = t.mode_age;
    snap_big_ref = t.big_ref;
    snap_little_ref = t.little_ref;
    snap_last_qos = t.last_qos;
    snap_last_qos_ref = t.last_qos_ref;
    snap_last_power = t.last_power;
    snap_last_envelope = t.last_envelope;
  }

let restore t s =
  if s.snap_state < 0 || s.snap_state >= Automaton.num_states t.auto then
    invalid_arg "Supervisor.restore: state index out of range";
  if s.snap_mode <> "qos" && s.snap_mode <> "power" then
    invalid_arg (Printf.sprintf "Supervisor.restore: mode %S" s.snap_mode);
  t.current <- s.snap_state;
  t.mode <- s.snap_mode;
  t.mode_age <- s.snap_mode_age;
  t.big_ref <- s.snap_big_ref;
  t.little_ref <- s.snap_little_ref;
  t.last_qos <- s.snap_last_qos;
  t.last_qos_ref <- s.snap_last_qos_ref;
  t.last_power <- s.snap_last_power;
  t.last_envelope <- s.snap_last_envelope

(* --- actions --------------------------------------------------------- *)

(* The two cluster budgets must jointly respect the envelope: the Big
   budget is clamped to what the Little allocation leaves.  The Little
   cluster rarely draws its full budget, so only 90 % of it is reserved —
   transient overshoots are caught by the critical-event feedback loop
   rather than by static conservatism. *)
let big_budget_cap t = t.last_envelope -. (0.9 *. t.little_ref)

let set_big t v =
  let v = Float.max t.config.big_budget_min (Float.min v (big_budget_cap t)) in
  if v <> t.big_ref then begin
    t.big_ref <- v;
    t.commands.set_big_power_ref v;
    if Obs.enabled () then
      Obs.Decision_log.record
        (Obs.Decision_log.Rebudget { target = "big_power_ref"; value = v })
  end

let set_little t v =
  let v =
    Float.max t.config.little_budget_min (Float.min v t.config.little_budget_max)
  in
  if v <> t.little_ref then begin
    t.little_ref <- v;
    t.commands.set_little_power_ref v;
    if Obs.enabled () then
      Obs.Decision_log.record
        (Obs.Decision_log.Rebudget { target = "little_power_ref"; value = v })
  end

let execute t event =
  let name = Event.name event in
  Obs.Counters.incr c_fired;
  if Obs.enabled () then
    Obs.Decision_log.record
      (Obs.Decision_log.Event_fired { event = name; controllable = true });
  (match name with
  | "switchPower" ->
      t.mode <- "power";
      t.mode_age <- 0;
      t.commands.switch_gains "power";
      if Obs.enabled () then
        Obs.Decision_log.record (Obs.Decision_log.Gain_switch { mode = "power" })
  | "switchQoS" ->
      t.mode <- "qos";
      t.mode_age <- 0;
      t.commands.switch_gains "qos";
      if Obs.enabled () then
        Obs.Decision_log.record (Obs.Decision_log.Gain_switch { mode = "qos" })
  | "increaseBigPower" -> set_big t (t.big_ref +. t.config.big_budget_step)
  | "decreaseBigPower" -> set_big t (t.big_ref -. t.config.big_budget_step)
  | "increaseLittlePower" ->
      set_little t (t.little_ref +. t.config.little_budget_step);
      (* a bigger Little allocation shrinks the Big budget cap *)
      set_big t t.big_ref
  | "decreaseLittlePower" ->
      set_little t (t.little_ref -. t.config.little_budget_step)
  | "decreaseCriticalPower" ->
      set_big t (t.big_ref *. t.config.critical_cut);
      set_little t t.config.little_budget_min
  | "controlPower" ->
      (* Capping-band bookkeeping: re-clamp budgets to the envelope. *)
      set_big t t.big_ref;
      set_little t t.little_ref
  | "holdBudget" -> ()
  | _ -> ());
  match Automaton.step_index t.auto t.current (Event.id event) with
  | Some next -> t.current <- next
  | None -> () (* execute is only called on enabled events *)

(* The budget policy: among the controllable events the supervisor leaves
   enabled in the current state, pick the most useful one.  Returns None
   when no enabled controllable remains. *)
let choose_action t =
  let enabled =
    List.filter Event.is_controllable (Automaton.enabled_index t.auto t.current)
  in
  let has e = List.exists (Event.equal e) enabled in
  let c = t.config in
  let qos_surplus = t.last_qos -. (t.last_qos_ref *. (1. +. c.qos_tolerance)) in
  let headroom = big_budget_cap t -. t.big_ref in
  if enabled = [] then None
  else if has Events.switch_power then Some Events.switch_power
  else if has Events.decrease_critical_power then
    Some Events.decrease_critical_power
  else if has Events.switch_qos && t.mode_age >= c.min_capped_dwell then
    Some Events.switch_qos
  else if has Events.increase_big_power && headroom > 0.01 then
    Some Events.increase_big_power
  else if
    has Events.increase_little_power
    && t.little_ref < c.little_budget_max -. 0.01
    && headroom <= 0.01
  then Some Events.increase_little_power
  else if has Events.decrease_big_power && qos_surplus > 0. then
    Some Events.decrease_big_power
  else if
    has Events.decrease_little_power
    && t.little_ref > c.little_budget_min +. 0.01
    && qos_surplus > 0.
  then Some Events.decrease_little_power
  else if has Events.control_power then Some Events.control_power
  else if has Events.hold_budget then Some Events.hold_budget
  else None

let run_controllables t =
  let rec go budget =
    if budget > 0 then
      match choose_action t with
      | None -> ()
      | Some e ->
          execute t e;
          go (budget - 1)
  in
  go t.config.max_actions_per_step

(* Feed one uncontrollable event if the supervisor defines it here. *)
let feed t event =
  match Automaton.step_index t.auto t.current (Event.id event) with
  | Some next ->
      Obs.Counters.incr c_observed;
      if Obs.enabled () then
        Obs.Decision_log.record
          (Obs.Decision_log.Event_fired
             { event = Event.name event; controllable = false });
      t.current <- next;
      run_controllables t
  | None -> ()

let do_step t ~qos ~qos_ref ~power ~envelope =
  (* Sensor-fault guard: a non-finite measurement must not poison the
     band comparisons (NaN makes every band test false, silently holding
     the current state forever).  Treat it as a dropped sample and fall
     back to the last trustworthy value — the guarded layer upstream
     normally filters these out, but the supervisor must stay safe even
     when driven bare. *)
  let subst v =
    Obs.Counters.incr c_dropped;
    v
  in
  let qos = if Float.is_finite qos then qos else subst t.last_qos in
  let qos_ref =
    if Float.is_finite qos_ref then qos_ref else subst t.last_qos_ref
  in
  let power = if Float.is_finite power then power else subst t.last_power in
  let envelope =
    if Float.is_finite envelope && envelope > 0. then envelope
    else subst t.last_envelope
  in
  t.mode_age <- t.mode_age + 1;
  t.last_qos <- qos;
  t.last_qos_ref <- qos_ref;
  t.last_power <- power;
  (if envelope <> t.last_envelope then begin
     t.last_envelope <- envelope;
     (* Re-clamp budgets immediately on an envelope change (thermal
        emergency or recovery). *)
     set_big t t.big_ref
   end);
  let c = t.config in
  (* Power-band event. *)
  let power_event =
    if power > envelope then Some Events.critical
    else if power > c.capping_target *. envelope then Some Events.above_target
    else if power < c.uncapping_threshold *. envelope then
      if t.mode = "power" then Some Events.safe_power
      else Some Events.below_target
    else None
  in
  Option.iter (feed t) power_event;
  (* QoS event. *)
  let qos_ok = qos >= qos_ref *. (1. -. c.qos_tolerance) in
  let power_ok = power <= envelope in
  let qos_event =
    match (power_ok, qos_ok) with
    | true, true -> Events.power_safe_qos_met
    | true, false -> Events.power_safe_qos_not_met
    | false, true -> Events.qos_met
    | false, false -> Events.qos_not_met
  in
  feed t qos_event;
  (* Give the budget policy a chance even when no event fired. *)
  run_controllables t

(* One supervisory invocation: counted and latency-timed when
   observability is enabled; otherwise exactly [do_step]. *)
let step t ~qos ~qos_ref ~power ~envelope =
  if not (Obs.enabled ()) then do_step t ~qos ~qos_ref ~power ~envelope
  else begin
    Obs.Counters.incr c_steps;
    Obs.time h_step (fun () -> do_step t ~qos ~qos_ref ~power ~envelope)
  end
