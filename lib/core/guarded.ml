module Obs = Spectr_obs

(* Observability handles (no-ops while instrumentation is disabled). *)
let c_interventions = Obs.Counters.counter "guard.interventions"
let c_trips = Obs.Counters.counter "guard.trips"

(* How long the watchdog has held the system in open-loop fallback:
   cumulative ticks as a gauge (how much open-loop exposure this run),
   per-span tick counts as a histogram (were the individual fallbacks
   bounded?).  [guard.trips] alone cannot distinguish one 10 s fallback
   from ten 50 ms blips. *)
let g_fallback_ticks = Obs.Counters.gauge "guard.fallback_ticks"
let h_fallback_span = Obs.Histogram.histogram "guard.fallback_span_ticks"

type channel_config = {
  lo : float;
  hi : float;
  max_step : float;
  stuck_count : int;
  suspect_limit : int;
}

type config = {
  qos : channel_config;
  power : channel_config;
  trip_count : int;
  recover_count : int;
}

let default_config =
  {
    qos = { lo = 0.2; hi = 400.; max_step = 45.; stuck_count = 8; suspect_limit = 4 };
    power =
      { lo = 0.02; hi = 15.; max_step = 3.; stuck_count = 8; suspect_limit = 4 };
    trip_count = 6;
    recover_count = 10;
  }

type channel = {
  cfg : channel_config;
  mutable last_good : float;
  mutable have_good : bool;
  mutable suspects : int;
  mutable suspect_value : float; (* last off-trend candidate level *)
  mutable last_raw : float;
  mutable same_streak : int;
  mutable masked : bool;
      (* A masked channel belongs to a cluster the reconfiguration
         engine has removed from the supervised plant: its readings are
         substituted with 0.0 and always count as healthy, so a dead
         sensor cannot pin the watchdog in fallback forever after the
         plant has already been reconfigured around it. *)
}

let make_channel cfg =
  {
    cfg;
    last_good = 0.;
    have_good = false;
    suspects = 0;
    suspect_value = nan;
    last_raw = nan;
    same_streak = 0;
    masked = false;
  }

(* Classify one sample; returns the value to hand to the controller
   (always finite once a good sample has been seen). *)
let channel_filter ch v =
  if ch.masked then (0., true)
  else
  let cfg = ch.cfg in
  (* Stuck detection: real sensors are noisy, so a long bit-identical
     streak is a fault, not a coincidence. *)
  if Float.is_finite v && v = ch.last_raw then
    ch.same_streak <- ch.same_streak + 1
  else ch.same_streak <- 1;
  ch.last_raw <- v;
  let accept value =
    ch.last_good <- value;
    ch.have_good <- true;
    ch.suspects <- 0;
    (value, true)
  in
  let reject () =
    let substitute =
      if ch.have_good then ch.last_good
      else Float.max cfg.lo (Float.min cfg.hi 0.)
    in
    (substitute, false)
  in
  if not (Float.is_finite v) then reject ()
  else if v < cfg.lo || v > cfg.hi then reject ()
  else if ch.same_streak >= cfg.stuck_count then reject ()
  else if ch.have_good && abs_float (v -. ch.last_good) > cfg.max_step then begin
    (* Off-trend but in range: a spike for a few samples, a genuine
       level shift if it persists.  Only samples that agree with the
       previous off-trend candidate count toward acceptance — a real
       shift settles at one new level, while scattered spikes disagree
       with the genuine readings between them and keep restarting the
       count, so a spike is never adopted as the new level. *)
    if ch.suspects > 0 && abs_float (v -. ch.suspect_value) <= cfg.max_step
    then ch.suspects <- ch.suspects + 1
    else ch.suspects <- 1;
    ch.suspect_value <- v;
    if ch.suspects >= cfg.suspect_limit then accept v else reject ()
  end
  else accept v

type filtered = {
  mutable qos : float;
  powers : float array; (* per-cluster, owned by the guard *)
  mutable healthy : bool;
}

type t = {
  config : config;
  qos_ch : channel;
  power_chs : channel array; (* one per cluster, description order *)
  filtered : filtered; (* preallocated result buffer for [filter] *)
  mutable sensor_bad_streak : int;
  mutable actuator_bad_streak : int;
  mutable good_streak : int;
  mutable is_degraded : bool;
  mutable spans : (float * float option) list; (* newest first *)
  mutable substituted : int;
  mutable total : int;
  mutable fb_ticks : int; (* cumulative ticks spent in fallback *)
  mutable span_ticks : int; (* ticks of the span in progress *)
}

let create ?(config = default_config) ?(clusters = 2) () =
  if clusters < 1 then invalid_arg "Guarded.create: clusters < 1";
  {
    config;
    qos_ch = make_channel config.qos;
    power_chs = Array.init clusters (fun _ -> make_channel config.power);
    filtered =
      { qos = 0.; powers = Array.make clusters 0.; healthy = false };
    sensor_bad_streak = 0;
    actuator_bad_streak = 0;
    good_streak = 0;
    is_degraded = false;
    spans = [];
    substituted = 0;
    total = 0;
    fb_ticks = 0;
    span_ticks = 0;
  }

let clusters t = Array.length t.power_chs

let set_power_masked t ~cluster on =
  if cluster < 0 || cluster >= Array.length t.power_chs then
    invalid_arg "Guarded.set_power_masked: cluster";
  let ch = t.power_chs.(cluster) in
  if ch.masked <> on then begin
    ch.masked <- on;
    (* Unmasking starts the channel clean — stale pre-mask streaks must
       not trip the watchdog on the first live reading. *)
    ch.suspects <- 0;
    ch.same_streak <- 0;
    ch.last_raw <- nan;
    ch.have_good <- false
  end

let power_masked t ~cluster =
  if cluster < 0 || cluster >= Array.length t.power_chs then
    invalid_arg "Guarded.power_masked: cluster";
  t.power_chs.(cluster).masked

let degraded t = t.is_degraded
let substituted_samples t = t.substituted
let total_samples t = t.total
let degradation_spans t = List.rev t.spans

let recovery_times t =
  List.filter_map
    (function enter, Some exit -> Some (exit -. enter) | _, None -> None)
    (degradation_spans t)

let fallback_ticks t = t.fb_ticks

let enter_degraded t ~now =
  if not t.is_degraded then begin
    t.is_degraded <- true;
    t.good_streak <- 0;
    t.spans <- (now, None) :: t.spans;
    Obs.Counters.incr c_trips;
    if Obs.enabled () then
      Obs.Decision_log.record (Obs.Decision_log.Guard_fallback { entered = true })
  end

let exit_degraded t ~now =
  if t.is_degraded then begin
    t.is_degraded <- false;
    t.sensor_bad_streak <- 0;
    t.actuator_bad_streak <- 0;
    (match t.spans with
    | (enter, None) :: rest -> t.spans <- (enter, Some now) :: rest
    | _ -> ());
    Obs.Histogram.observe h_fallback_span t.span_ticks;
    t.span_ticks <- 0;
    if Obs.enabled () then
      Obs.Decision_log.record
        (Obs.Decision_log.Guard_fallback { entered = false })
  end

(* Shared watchdog update: trip on a persistent problem on either path,
   resume only after a sustained run of fully healthy periods. *)
let update_watchdog t ~now =
  let c = t.config in
  if
    t.sensor_bad_streak >= c.trip_count
    || t.actuator_bad_streak >= c.trip_count
  then enter_degraded t ~now
  else if t.is_degraded && t.good_streak >= c.recover_count then
    exit_degraded t ~now

(* Channel order is qos first, then the power channels in cluster
   order — on the 2-cluster platform exactly the old qos/big/little
   sequence, so the per-channel state evolution is unchanged.  The
   result lives in the guard-owned [filtered] buffer: the tick path
   reads it before the next call, and the old per-call record was the
   one allocation left on the guarded manager's hot path. *)
let filter t ~now ~qos ~powers =
  if Array.length powers <> Array.length t.power_chs then
    invalid_arg "Guarded.filter: power reading count <> cluster count";
  t.total <- t.total + 1;
  let qos, qos_ok = channel_filter t.qos_ch qos in
  let f = t.filtered in
  f.qos <- qos;
  let all_ok = ref qos_ok in
  for i = 0 to Array.length t.power_chs - 1 do
    let v, ok = channel_filter t.power_chs.(i) powers.(i) in
    f.powers.(i) <- v;
    all_ok := !all_ok && ok
  done;
  let healthy = !all_ok in
  f.healthy <- healthy;
  if not healthy then begin
    t.substituted <- t.substituted + 1;
    Obs.Counters.incr c_interventions
  end;
  if healthy then begin
    t.sensor_bad_streak <- 0;
    (* A period only counts toward recovery when the actuator side is
       quiet too; note_actuation resets the streak on disobedience. *)
    if t.actuator_bad_streak = 0 then t.good_streak <- t.good_streak + 1
  end
  else begin
    t.sensor_bad_streak <- t.sensor_bad_streak + 1;
    t.good_streak <- 0
  end;
  update_watchdog t ~now;
  if t.is_degraded then begin
    t.fb_ticks <- t.fb_ticks + 1;
    t.span_ticks <- t.span_ticks + 1;
    Obs.Counters.set g_fallback_ticks (float_of_int t.fb_ticks)
  end;
  f

type channel_snapshot = {
  snap_last_good : float;
  snap_have_good : bool;
  snap_suspects : int;
  snap_suspect_value : float;
  snap_last_raw : float;
  snap_same_streak : int;
  snap_masked : bool;
}

type snapshot = {
  snap_qos : channel_snapshot;
  snap_power : channel_snapshot array; (* per cluster, description order *)
  snap_sensor_bad_streak : int;
  snap_actuator_bad_streak : int;
  snap_good_streak : int;
  snap_is_degraded : bool;
  snap_spans : (float * float option) list;
  snap_substituted : int;
  snap_total : int;
  snap_fb_ticks : int;
  snap_span_ticks : int;
}

let snapshot_channel ch =
  {
    snap_last_good = ch.last_good;
    snap_have_good = ch.have_good;
    snap_suspects = ch.suspects;
    snap_suspect_value = ch.suspect_value;
    snap_last_raw = ch.last_raw;
    snap_same_streak = ch.same_streak;
    snap_masked = ch.masked;
  }

let restore_channel ch s =
  ch.last_good <- s.snap_last_good;
  ch.have_good <- s.snap_have_good;
  ch.suspects <- s.snap_suspects;
  ch.suspect_value <- s.snap_suspect_value;
  ch.last_raw <- s.snap_last_raw;
  ch.same_streak <- s.snap_same_streak;
  ch.masked <- s.snap_masked

let snapshot t =
  {
    snap_qos = snapshot_channel t.qos_ch;
    snap_power = Array.map snapshot_channel t.power_chs;
    snap_sensor_bad_streak = t.sensor_bad_streak;
    snap_actuator_bad_streak = t.actuator_bad_streak;
    snap_good_streak = t.good_streak;
    snap_is_degraded = t.is_degraded;
    snap_spans = t.spans;
    snap_substituted = t.substituted;
    snap_total = t.total;
    snap_fb_ticks = t.fb_ticks;
    snap_span_ticks = t.span_ticks;
  }

let restore t s =
  if Array.length s.snap_power <> Array.length t.power_chs then
    invalid_arg
      (Printf.sprintf "Guarded.restore: %d power channels, guard has %d"
         (Array.length s.snap_power)
         (Array.length t.power_chs));
  restore_channel t.qos_ch s.snap_qos;
  Array.iteri (fun i cs -> restore_channel t.power_chs.(i) cs) s.snap_power;
  t.sensor_bad_streak <- s.snap_sensor_bad_streak;
  t.actuator_bad_streak <- s.snap_actuator_bad_streak;
  t.good_streak <- s.snap_good_streak;
  t.is_degraded <- s.snap_is_degraded;
  t.spans <- s.snap_spans;
  t.substituted <- s.snap_substituted;
  t.total <- s.snap_total;
  t.fb_ticks <- s.snap_fb_ticks;
  t.span_ticks <- s.snap_span_ticks

let note_actuation t ~now ~ok =
  if ok then t.actuator_bad_streak <- 0
  else begin
    t.actuator_bad_streak <- t.actuator_bad_streak + 1;
    t.good_streak <- 0
  end;
  update_watchdog t ~now
