open Spectr_automata
module Platform_desc = Spectr_platform.Platform_desc

(* Both sub-plants are generated from the platform description: the QoS
   loop's Raise/Lower states react with one budget command per cluster
   (in description order), the capping loop is cluster-count invariant.
   On exynos5422 the generated lists are exactly the paper's figures. *)

let generate_qos desc =
  let fam = Events.for_platform desc in
  let k = Platform_desc.num_clusters desc in
  let each verb = List.init k verb in
  let transitions =
    List.concat
      [
        [
          (* QoS observations *)
          ("Eval", Events.qos_not_met, "Raise");
          ("Eval", Events.power_safe_qos_not_met, "Raise");
          ("Eval", Events.qos_met, "Lower");
          ("Eval", Events.power_safe_qos_met, "Lower");
        ];
        (* budget reactions; holdBudget is the do-nothing fallback the
           supervisor uses when budget moves are disabled (capped mode)
           or inappropriate.  It must stay private to this sub-plant. *)
        each (fun i -> ("Raise", Events.increase fam i, "Eval"));
        [ ("Raise", Events.hold_budget, "Eval") ];
        each (fun i -> ("Lower", Events.decrease fam i, "Eval"));
        [ ("Lower", Events.hold_budget, "Eval") ];
      ]
  in
  Automaton.create ~marked:[ "Eval" ] ~name:"QoSManagement" ~initial:"Eval"
    ~transitions ()

let generate_capping (_ : Platform_desc.t) =
  Automaton.create ~marked:[ "Safe" ] ~name:"PowerCapping" ~initial:"Safe"
    ~transitions:
      [
        ("Safe", Events.below_target, "Safe");
        ("Safe", Events.safe_power, "Safe");
        ("Safe", Events.above_target, "Watch");
        ("Safe", Events.critical, "Emergency");
        (* Inside the capping band: tighten budgets, stay vigilant. *)
        ("Watch", Events.control_power, "Safe");
        ("Watch", Events.critical, "Emergency");
        (* Budget violated: the gain switch takes effect within one
           control period. *)
        ("Emergency", Events.switch_power, "Capped");
        (* While capped: a renewed violation demands a deeper cut, after
           which the system is assumed sub-critical (Cooling). *)
        ("Capped", Events.above_target, "Capped");
        ("Capped", Events.critical, "StillHot");
        ("Capped", Events.safe_power, "Restore");
        ("StillHot", Events.decrease_critical_power, "Cooling");
        ("Cooling", Events.above_target, "Cooling");
        ("Cooling", Events.safe_power, "Restore");
        ("Restore", Events.switch_qos, "Safe");
      ]
    ()

(* Memoized per digest, like [Spec.of_platform]: the pair feeds the
   synthesis cache, and handing back identical automata keeps digest
   computation amortized across manager constructions. *)
let mutex = Mutex.create ()
let cache : (string, Automaton.t * Automaton.t) Hashtbl.t = Hashtbl.create 8

let of_platform desc =
  let digest = Platform_desc.digest desc in
  Mutex.lock mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock mutex)
    (fun () ->
      match Hashtbl.find_opt cache digest with
      | Some pair -> pair
      | None ->
          let pair = (generate_qos desc, generate_capping desc) in
          Hashtbl.replace cache digest pair;
          pair)

let qos_management, power_capping = of_platform Platform_desc.exynos5422

let composed_for desc =
  let qos, capping = of_platform desc in
  Compose.pair qos capping

let composed () = Compose.pair qos_management power_capping
