open Spectr_platform

type phase = {
  phase_name : string;
  duration_s : float;
  envelope : float;
  background_tasks : int;
  phase_faults : Faults.injection list;
}

type config = {
  workload : Workload.t;
  platform : Platform_desc.t;
  qos_ref : float;
  phases : phase list;
  controller_period : float;
  seed : int64;
}

let default_phases ?(tdp = 5.0) ?(emergency = 3.5) () =
  [
    {
      phase_name = "safe";
      duration_s = 5.;
      envelope = tdp;
      background_tasks = 0;
      phase_faults = [];
    };
    {
      phase_name = "emergency";
      duration_s = 5.;
      envelope = emergency;
      background_tasks = 0;
      phase_faults = [];
    };
    {
      phase_name = "disturbance";
      duration_s = 5.;
      envelope = tdp;
      background_tasks = 16;
      phase_faults = [];
    };
  ]

let default_config ?(seed = 42L) ?qos_ref ?(platform = Platform_desc.exynos5422)
    workload =
  let qos_ref =
    match qos_ref with
    | Some r -> r
    | None ->
        (* 60 FPS is only meaningful where it is achievable: x264 on the
           reference Exynos.  Elsewhere the reference scales with the
           host cluster's reachable rate, as in Phase 1 of the paper. *)
        if
          workload.Workload.name = "x264"
          && Design_flow.is_reference_platform platform
        then 60.
        else 0.75 *. Perf_model.max_qos_rate_for platform workload
  in
  {
    workload;
    platform;
    qos_ref;
    phases = default_phases ();
    controller_period = 0.05;
    seed;
  }

(* Trace columns are derived from the description: one [<name>_power]
   per cluster, then a [<name>_freq_mhz]/[<name>_cores] pair per
   cluster.  On exynos5422 (clusters "big", "little") this reproduces
   the historical header byte for byte. *)
let columns_of platform =
  let k = Platform_desc.num_clusters platform in
  let name i = Platform_desc.cluster_name platform i in
  [ "time"; "qos"; "qos_ref"; "power"; "envelope" ]
  @ List.init k (fun i -> name i ^ "_power")
  @ List.concat_map
      (fun i -> [ name i ^ "_freq_mhz"; name i ^ "_cores" ])
      (List.init k Fun.id)
  @ [ "background"; "phase" ]

let fault_columns_of platform = columns_of platform @ [ "faults"; "true_power" ]
let columns = columns_of Platform_desc.exynos5422
let fault_columns = fault_columns_of Platform_desc.exynos5422

let steps_of_phase config ph =
  int_of_float (Float.round (ph.duration_s /. config.controller_period))

let total_ticks config =
  List.fold_left (fun acc ph -> acc + steps_of_phase config ph) 0 config.phases

(* Phase fault windows are phase-relative; fold them into one absolute
   schedule for the whole run. *)
let fault_schedule config =
  (* Accumulate reversed and concatenate once: appending with [acc @ ...]
     per phase is quadratic in the number of injections. *)
  let _, rev_injections =
    List.fold_left
      (fun (start, acc) ph ->
        ( start +. ph.duration_s,
          List.rev_append (Faults.shift ph.phase_faults ~by:start) acc ))
      (0., []) config.phases
  in
  List.rev rev_injections

(* --- tick-at-a-time execution engine --------------------------------- *)

(* The platform half of a running scenario: SoC, fault schedule,
   heartbeat monitor, trace and phase cursor.  The manager is passed to
   every [tick] instead of being owned by the runner — that is what lets
   the chaos engine kill a manager mid-run, build a fresh one, restore
   its checkpoint and keep driving the {e same} platform (hardware does
   not reboot when the resource-manager daemon crashes). *)
type runner = {
  r_config : config;
  r_k : int; (* cluster count, fixes the row layout *)
  r_soc : Soc.t;
  r_faults : Faults.t option;
  r_hb : Heartbeats.t;
  r_trace : Trace.t;
  r_phases : phase array;
  r_steps : int array; (* steps per phase *)
  mutable r_phase : int; (* current phase index, or length when done *)
  mutable r_done_in_phase : int;
  mutable r_tick : int;
  (* Tick-path buffers, owned by the runner and rewritten in place every
     tick: the observation handed to the manager (and returned by
     [tick] — valid until the next tick) and the trace row ([Trace.add]
     copies it into column storage). *)
  r_obs : Soc.observation;
  r_row : float array;
}

let start config =
  let soc_config = { (Soc.config_of config.platform) with seed = config.seed } in
  let soc =
    Soc.create ~config:soc_config ~platform:config.platform
      ~qos:config.workload ()
  in
  let injections = fault_schedule config in
  (* Fault injection is strictly opt-in: with no schedule the SoC keeps
     faults = None and the extra trace column is omitted, so existing
     figures and benches reproduce bit-identical traces. *)
  let faults =
    match injections with
    | [] -> None
    | _ :: _ -> Some (Faults.create injections)
  in
  Soc.set_faults soc faults;
  let run_columns =
    match faults with
    | None -> columns_of config.platform
    | Some _ -> fault_columns_of config.platform
  in
  let trace =
    (* Preallocate the full run's rows: recording then never reallocates
       column storage mid-run. *)
    Trace.create ~cap:(max 1 (total_ticks config)) ~columns:run_columns ()
  in
  (* QoS is observed through the Heartbeats monitor (§5): the application
     issues heartbeats as it completes work and the managers read the
     windowed rate, not an instantaneous sensor. *)
  let hb = Heartbeats.create ~window:0.25 ~reference:config.qos_ref () in
  let phases = Array.of_list config.phases in
  let r =
    {
      r_config = config;
      r_k = Platform_desc.num_clusters config.platform;
      r_soc = soc;
      r_faults = faults;
      r_hb = hb;
      r_trace = trace;
      r_phases = phases;
      r_steps = Array.map (steps_of_phase config) phases;
      r_phase = 0;
      r_done_in_phase = 0;
      r_tick = 0;
      r_obs = Soc.make_observation ();
      r_row = Array.make (List.length run_columns) 0.;
    }
  in
  (* Enter the first non-empty phase, applying the background load of
     every phase passed through (matching the sequential driver, where
     zero-length phases still set — and are immediately overridden —
     their background count before any step runs). *)
  (if Array.length phases > 0 then
     Soc.set_background_tasks soc phases.(0).background_tasks);
  r

let finished r =
  (* No phase at or after the cursor has steps remaining. *)
  let n = Array.length r.r_phases in
  let rec go i =
    i >= n
    || (r.r_steps.(i) - (if i = r.r_phase then r.r_done_in_phase else 0) <= 0
        && go (i + 1))
  in
  go r.r_phase

let trace r = r.r_trace
let runner_soc r = r.r_soc
let runner_faults r = r.r_faults
let ticks_done r = r.r_tick

let current_phase r =
  let i = min r.r_phase (Array.length r.r_phases - 1) in
  (r.r_phases.(i), i)

let tick r ~manager =
  (* Advance the phase cursor to the next phase with steps remaining,
     applying each entered phase's background load in order. *)
  let rec enter () =
    if r.r_phase < Array.length r.r_phases
       && r.r_done_in_phase >= r.r_steps.(r.r_phase)
    then begin
      r.r_phase <- r.r_phase + 1;
      r.r_done_in_phase <- 0;
      if r.r_phase < Array.length r.r_phases then begin
        Soc.set_background_tasks r.r_soc
          r.r_phases.(r.r_phase).background_tasks;
        enter ()
      end
    end
  in
  enter ();
  if r.r_phase >= Array.length r.r_phases then None
  else begin
    let config = r.r_config in
    let ph = r.r_phases.(r.r_phase) in
    let phase_idx = r.r_phase in
    let soc = r.r_soc in
    let obs = r.r_obs in
    Soc.step_into soc ~dt:config.controller_period obs;
    (* A stalled heartbeat monitor receives no beats at all; the
       windowed rate then decays to zero while the app still runs. *)
    let stalled =
      match r.r_faults with
      | None -> false
      | Some f -> Faults.heartbeat_stalled f ~now:obs.Soc.time
    in
    if not stalled then
      Heartbeats.beat r.r_hb ~now:obs.Soc.time
        ~count:(obs.Soc.qos_rate *. config.controller_period);
    (* Managers observe QoS through the windowed heartbeat rate, not the
       instantaneous sensor (which fed the monitor just above). *)
    obs.Soc.qos_rate <- Heartbeats.rate r.r_hb ~now:obs.Soc.time;
    manager.Manager.step ~now:obs.Soc.time ~qos_ref:config.qos_ref
      ~envelope:ph.envelope ~obs soc;
    let row = r.r_row in
    let k = r.r_k in
    row.(0) <- obs.Soc.time;
    row.(1) <- obs.Soc.qos_rate;
    row.(2) <- config.qos_ref;
    row.(3) <- obs.Soc.chip_power;
    row.(4) <- ph.envelope;
    let powers = Soc.sensor_powers soc in
    for i = 0 to k - 1 do
      row.(5 + i) <- powers.(i)
    done;
    for i = 0 to k - 1 do
      row.(5 + k + (2 * i)) <- float_of_int (Soc.frequency soc i);
      row.(6 + k + (2 * i)) <- float_of_int (Soc.active_cores soc i)
    done;
    row.(5 + (3 * k)) <- float_of_int ph.background_tasks;
    row.(6 + (3 * k)) <- float_of_int phase_idx;
    (match r.r_faults with
    | None -> ()
    | Some f ->
        (* Under sensor faults the [power] column records what the
           managers saw (the corrupted reading); [true_power] is
           the ground truth a safety evaluation must use. *)
        row.(7 + (3 * k)) <-
          float_of_int (Faults.active_count f ~now:obs.Soc.time);
        row.(8 + (3 * k)) <- Soc.true_chip_power soc);
    Trace.add r.r_trace row;
    r.r_done_in_phase <- r.r_done_in_phase + 1;
    r.r_tick <- r.r_tick + 1;
    Some obs
  end

let run ~manager config =
  let r = start config in
  let rec go () = match tick r ~manager with Some _ -> go () | None -> () in
  go ();
  r.r_trace

let phase_bounds config =
  let _, bounds =
    List.fold_left
      (fun (start, acc) ph ->
        let n = steps_of_phase config ph in
        (start + n, (ph.phase_name, start, start + n) :: acc))
      (0, []) config.phases
  in
  List.rev bounds
