type policy = Uncoordinated | Static_split | Water_filling

let policy_of_string = function
  | "uncoordinated" -> Some Uncoordinated
  | "static" -> Some Static_split
  | "waterfill" -> Some Water_filling
  | _ -> None

let string_of_policy = function
  | Uncoordinated -> "uncoordinated"
  | Static_split -> "static"
  | Water_filling -> "waterfill"

let clamp lo hi x = Float.min hi (Float.max lo x)

(* Guardband held back from the global cap by the coordinated policies.
   A per-chip supervisor tolerates brief overshoot at its own cap (OPP
   quantization dither, one-period actuation lag), so a coordinator
   that allocates the cap to the last watt sees the fleet sum flutter
   over it.  Same reasoning as the chaos invariants' safety guardband,
   applied one level up. *)
let default_headroom = 0.05

(* The most a node can usefully be budgeted: its reported degraded
   capacity (a reconfigured node cannot convert budget beyond it into
   work), never below the boot floor, never above chip TDP. *)
let capacity ~(config : Node.config) (r : Node.report) =
  clamp config.cap_floor config.node_tdp r.Node.r_max_power

(* A node's demand for next epoch, anchored on what it actually drew:
   a node meeting its reference asks for its draw plus a 5 % margin
   (freeing the rest of its cap), while QoS debt scales the ask up to
   +80 % of the draw.  Anchoring on measured power — not on the current
   cap — is what keeps demands heterogeneous when every node is
   somewhat starved: the old cap-anchored rule saturated the whole
   fleet at TDP and degenerated water-filling into an even split.
   Dead nodes are excluded outright (demand 0): their entire former
   allocation redistributes to the survivors in the same epoch, and
   {!Node.set_cap}'s floor clamp still guarantees a later reboot can
   run its minimum-power configuration. *)
let demand ~(config : Node.config) ~epoch_s (r : Node.report) =
  if not r.Node.r_alive then 0.
  else begin
    let debt_frac = clamp 0. 1. (r.Node.r_debt /. epoch_s) in
    let want = r.Node.r_power *. (1.05 +. (0.8 *. debt_frac)) in
    clamp config.cap_floor (capacity ~config r) want
  end

let rebudget ?(headroom = default_headroom) ~policy ~global_cap
    ~(config : Node.config) ~epoch_s reports =
  let n = Array.length reports in
  if n = 0 then [||]
  else begin
    let floor = config.cap_floor and tdp = config.node_tdp in
    let budget = global_cap *. (1. -. headroom) in
    let alive = Array.map (fun r -> r.Node.r_alive) reports in
    let n_alive = Array.fold_left (fun a b -> if b then a + 1 else a) 0 alive in
    (* Dead nodes get 0 in every coordinated policy — exclusion, not a
       parked floor allocation.  Only alive nodes draw on the budget. *)
    let masked caps = Array.mapi (fun i c -> if alive.(i) then c else 0.) caps in
    match policy with
    | Uncoordinated ->
        (* The no-coordination baseline: a node enforces its own chip
           TDP and nobody reclaims anything — dead or degraded. *)
        Array.make n tdp
    | Static_split ->
        if n_alive = 0 then Array.make n 0.
        else
          let share = budget /. float_of_int n_alive in
          masked
            (Array.map
               (fun r -> clamp floor (capacity ~config r) share)
               reports)
    | Water_filling ->
        if n_alive = 0 then Array.make n 0.
        else begin
          let demands = Array.map (demand ~config ~epoch_s) reports in
          (* Dead nodes have demand 0 < floor, so [max floor] must skip
             them: allocations apply the floor only to alive nodes. *)
          let alloc i level =
            if alive.(i) then Float.max floor (Float.min demands.(i) level)
            else 0.
          in
          let alloc_sum level =
            let s = ref 0. in
            for i = 0 to n - 1 do
              s := !s +. alloc i level
            done;
            !s
          in
          let total_demand = alloc_sum tdp in
          if total_demand <= budget then
            (* Budget is abundant: everyone gets their demand. *)
            Array.init n (fun i -> alloc i tdp)
          else if alloc_sum floor >= budget then
            (* Infeasible below n_alive × floor: hold every alive node
               at its floor (the closest feasible point the node
               interface allows). *)
            masked (Array.make n floor)
          else begin
            (* Bisect the water level λ so Σ max floor (min demand λ)
               meets the cap.  [lo] keeps the under-budget invariant; a
               fixed iteration count keeps the result bit-deterministic
               regardless of inputs. *)
            let lo = ref floor and hi = ref tdp in
            for _ = 1 to 60 do
              let mid = 0.5 *. (!lo +. !hi) in
              if alloc_sum mid <= budget then lo := mid else hi := mid
            done;
            let level = !lo in
            Array.init n (fun i -> alloc i level)
          end
        end
  end
