open Spectr_linalg
open Spectr_platform

type item = { a_tasks : int; a_duration : int; a_kind : string }

let kinds =
  lazy
    (Array.of_list
       (List.map (fun w -> w.Workload.name) Benchmarks.all_qos))

let mix seed epoch =
  Int64.add
    (Int64.mul 0x9E3779B97F4A7C15L (Int64.of_int (epoch + 1)))
    (Int64.mul 0xBF58476D1CE4E5B9L (Int64.of_int seed))

let generate ~seed ~epoch ~rate =
  if rate < 0. then invalid_arg "Arrivals.generate: negative rate";
  let g = Prng.create (mix seed epoch) in
  let base = int_of_float rate in
  let frac = rate -. float_of_int base in
  let count = base + (if Prng.float g < frac then 1 else 0) in
  let kinds = Lazy.force kinds in
  List.init count (fun _ ->
      {
        a_tasks = 1 + Prng.int g 3;
        a_duration = 50 + Prng.int g 200;
        a_kind = kinds.(Prng.int g (Array.length kinds));
      })
