(** One datacenter node: a simulated SoC plus its SPECTR manager behind
    the narrow interface the fleet coordinator sees.

    A node owns its platform (SoC, heartbeat monitor) and its resource
    manager, exactly like a standalone scenario run — the fleet layer
    never reaches into either.  The coordinator talks to a node through
    three verbs only: {!tick} it forward, read its {!report}, and
    {!set_cap} its power envelope.  A cap change is delivered to the
    manager as the [envelope] argument of its next step, so it flows
    into the per-chip SCT supervisor as the same [tdpIncreased] /
    [tdpDecreased] envelope events a thermal emergency produces — the
    synthesized supervisor stays the enforcement mechanism; the
    coordinator only moves the reference.

    Nodes also support whole-node death/restart drills: {!kill} powers
    the node off (zero power, zero QoS), {!restart} boots a fresh
    platform and a fresh manager daemon restored from the node's last
    {!checkpoint} (the {!Spectr.Manager.persist} mechanism the chaos
    engine's kill drills pin). *)

open Spectr_platform

type config = {
  node_tdp : float;
      (** The chip's own thermal design power (W) — the cap an
          uncoordinated node enforces (default 5.0, the paper's TDP). *)
  cap_floor : float;
      (** Lowest cap the coordinator may assign (W); keeps a starved
          node able to run its minimum-power configuration. *)
  hb_window : float;  (** Heartbeat averaging window (s). *)
  boot_ticks : int;
      (** Uncounted controller periods a node runs to stabilize under
          its cap at boot ({!warm_up}, also run by {!restart}) before it
          joins the reported fleet — the admission-control window that
          keeps synchronized boot transients from being charged against
          the coordinator. *)
}

val default_config : config
(** [node_tdp = 5.0], [cap_floor = 1.0], [hb_window = 0.25],
    [boot_ticks = 40]. *)

type t

val create :
  ?config:config ->
  ?platform:Platform_desc.t ->
  ?reconfigurable:bool ->
  id:int ->
  seed:int64 ->
  workload:Workload.t ->
  unit ->
  t
(** Build a node: fresh SoC seeded with [seed] on the given platform
    description (default [Platform_desc.exynos5422] — fleets may mix
    descriptions), fresh SPECTR manager for that description (gain
    design is memoized process-wide, so the 10 000th node costs
    microseconds, not the full LQG pipeline), QoS reference derived as
    in {!Spectr.Scenario.default_config} (60 FPS for x264 on the
    reference Exynos, else 75 % of the workload's maximum rate on the
    description's host cluster).  The initial cap is [node_tdp].

    [reconfigurable:true] runs the node under the self-healing
    {!Spectr.Spectr_manager.make_reconfigurable} manager (SPECTR+R): an
    on-node FDIR monitor that isolates permanent faults and hot-swaps a
    supervisor re-synthesized for the degraded description.  The node
    then reports a reduced [r_max_power] capacity so the coordinator
    can re-budget the lost headroom to healthy nodes.  SPECTR+R does not
    checkpoint ([persist = None]): a {!restart} always comes back cold,
    on the full healthy description. *)

val id : t -> int
val workload_name : t -> string
val qos_ref : t -> float
val alive : t -> bool
val cap : t -> float

val set_cap : t -> float -> unit
(** Assign a new power cap (W), clamped to
    [[config.cap_floor, config.node_tdp]].  Takes effect on the next
    {!tick}: the manager's envelope argument changes, and the per-chip
    supervisor reacts with its own envelope events. *)

val add_load : t -> tasks:int -> duration_ticks:int -> unit
(** Place a workload item: [tasks] background tasks for the next
    [duration_ticks] ticks.  Items stack; each expires independently.
    Raises [Invalid_argument] when [tasks < 0] or [duration_ticks <= 0]. *)

val background : t -> int
(** Background tasks currently placed (sum of active items). *)

val warm_up : ?ticks:int -> t -> unit
(** Run [ticks] (default [config.boot_ticks]) uncounted controller
    periods at the paper's 0.05 s period: the SoC and manager step, but
    nothing lands in the epoch accumulators and work items do not
    expire.  The fleet engine calls this once after assigning initial
    caps; {!restart} calls it before a rebooted node rejoins.  No-op on
    a dead node. *)

val tick : t -> dt:float -> unit
(** One controller period: expire due work items, step the SoC, deliver
    heartbeats, step the manager with the current cap as its envelope.
    A dead node does nothing except accrue QoS debt (it serves no
    work). *)

val last_true_power : t -> float
(** Ground-truth chip power after the last {!tick} (0 while dead) — the
    quantity fleet-level cap compliance is judged on. *)

val checkpoint : t -> unit
(** Snapshot the manager's complete state ({!Spectr.Manager.persist});
    the snapshot is what a later {!restart} restores.  Called by the
    fleet engine at epoch boundaries. *)

val kill : t -> unit
(** Power the node off: it stops serving QoS and draws nothing.  The
    platform state is lost (hardware reboots); the manager's last
    {!checkpoint} survives.  No-op when already dead. *)

val restart : t -> unit
(** Boot a dead node: fresh SoC (reseeded deterministically from the
    node seed and restart count — the new life's noise stream is
    reproducible but independent), fresh heartbeat monitor, fresh
    manager daemon with the last {!checkpoint} restored into it (cold
    state when the node was never checkpointed).  Background work items
    survive — the work queue outlives the node, as in a real cluster.
    No-op when alive. *)

val kills : t -> int
val restarts : t -> int

val reconfig_handle : t -> Spectr.Spectr_manager.Reconfig.handle option
(** The reconfiguration-engine handle of a node created with
    [reconfigurable:true] ([None] otherwise).  Replaced by {!restart} —
    do not cache it across reboots. *)

val inject_permanent : t -> Spectr_platform.Faults.kind -> unit
(** Fault drill: latch a permanent hardware fault
    ({!Spectr_platform.Faults.is_permanent}) onto the node's SoC,
    starting now.  Composes with any injections already attached.  A
    later {!restart} clears it — a rebooted node is new hardware.
    No-op on a dead node; raises [Invalid_argument] on a transient
    kind. *)

(** {1 Epoch reporting} *)

type report = {
  r_id : int;
  r_alive : bool;
  r_max_power : float;
      (** Degraded capacity (W): the most this node's {e current}
          platform description can draw — [node_tdp] for a healthy
          node, proportionally less after a reconfiguration removed a
          cluster ({!Spectr_platform.Platform_desc.max_power_estimate}
          ratio of degraded vs healthy description, floored at
          [cap_floor]).  The coordinator caps the node's allocation
          here: budget beyond a degraded node's capacity is dead
          headroom better spent on healthy nodes. *)
  r_cap : float;  (** Cap in force during the reported epoch (W). *)
  r_power : float;  (** Epoch-mean ground-truth chip power (W). *)
  r_sensor_power : float;  (** Epoch-mean sensed chip power (W). *)
  r_qos : float;  (** Epoch-mean heartbeat rate. *)
  r_qos_ref : float;
  r_debt : float;
      (** Epoch QoS debt: integral over the epoch of the relative
          shortfall [max 0 (ref - qos) / ref], in seconds.  0 = the
          reference was met every tick; a dead node accrues 1 s per
          second. *)
  r_total_debt : float;  (** Lifetime QoS debt (s). *)
  r_background : int;  (** Background tasks placed at epoch end. *)
  r_workload : string;
  r_kills : int;
  r_restarts : int;
}

val report : t -> report
(** The node's epoch report.  Resets the epoch accumulators — each tick
    is reported exactly once.  With no ticks since the last report, the
    mean fields are 0. *)
