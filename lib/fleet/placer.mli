(** Workload placement over the fleet: assign each arriving item to the
    node where it will do best, by multi-factor scoring.

    The score combines workload affinity (a node already running the
    item's benchmark), power headroom (cap minus measured draw), QoS
    debt (a struggling node should not take more work), fault history
    (a kill-prone node is a bad home), and the load already placed —
    including earlier items of the same round, so a burst spreads
    instead of piling onto one winner.  Dead nodes never receive work.
    Deterministic: ties break toward the lowest node index. *)

type weights = {
  w_affinity : float;  (** Bonus when the node runs the item's kind. *)
  w_headroom : float;  (** Per unit of relative power headroom. *)
  w_debt : float;  (** Penalty per second of epoch QoS debt. *)
  w_faults : float;  (** Penalty per recorded kill. *)
  w_load : float;
      (** Penalty per background task already on the node (placed or
          pending from this round). *)
}

val default_weights : weights

val score : weights -> pending:int -> Node.report -> Arrivals.item -> float
(** Placement score of one node for one item ([neg_infinity] for a dead
    node).  [pending] is the extra task count already assigned to this
    node earlier in the current round. *)

val assign :
  ?weights:weights ->
  reports:Node.report array ->
  Arrivals.item list ->
  (int * Arrivals.item) list
(** Greedy assignment, items in order: each item goes to the
    highest-scoring node index (into [reports]).  Items are dropped
    (omitted from the result) only when every node is dead. *)
