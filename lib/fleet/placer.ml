type weights = {
  w_affinity : float;
  w_headroom : float;
  w_debt : float;
  w_faults : float;
  w_load : float;
}

let default_weights =
  { w_affinity = 1.0; w_headroom = 2.0; w_debt = 1.5; w_faults = 0.5;
    w_load = 0.25 }

let score w ~pending (r : Node.report) (it : Arrivals.item) =
  if not r.Node.r_alive then neg_infinity
  else
    let affinity = if r.Node.r_workload = it.Arrivals.a_kind then 1. else 0. in
    let headroom =
      (r.Node.r_cap -. r.Node.r_power) /. Float.max r.Node.r_cap 1e-9
    in
    (w.w_affinity *. affinity)
    +. (w.w_headroom *. headroom)
    -. (w.w_debt *. r.Node.r_debt)
    -. (w.w_faults *. float_of_int r.Node.r_kills)
    -. (w.w_load *. float_of_int (r.Node.r_background + pending))

let assign ?(weights = default_weights) ~reports items =
  let n = Array.length reports in
  let pending = Array.make n 0 in
  List.filter_map
    (fun it ->
      let best = ref (-1) and best_score = ref neg_infinity in
      for i = 0 to n - 1 do
        let s = score weights ~pending:pending.(i) reports.(i) it in
        (* Strict [>] keeps the lowest index on ties — the deterministic
           tie-break the digest check relies on. *)
        if s > !best_score then begin
          best := i;
          best_score := s
        end
      done;
      if !best < 0 then None
      else begin
        pending.(!best) <- pending.(!best) + it.Arrivals.a_tasks;
        Some (!best, it)
      end)
    items
