open Spectr_linalg
open Spectr_platform
module Obs = Spectr_obs

type spec = {
  nodes : int;
  epochs : int;
  ticks_per_epoch : int;
  dt : float;
  seed : int;
  global_cap : float;
  policy : Coordinator.policy;
  node_config : Node.config;
  arrival_rate : float;
  kill_rate : float;
  down_epochs : int;
  shard_size : int;
  platforms : Platform_desc.t array;
}

let default_spec =
  {
    nodes = 64;
    epochs = 20;
    ticks_per_epoch = 50;
    dt = 0.05;
    seed = 42;
    global_cap = 64. *. 2.5;
    policy = Coordinator.Water_filling;
    node_config = Node.default_config;
    arrival_rate = 2.;
    kill_rate = 0.5;
    down_epochs = 2;
    shard_size = 64;
    platforms = [| Platform_desc.exynos5422 |];
  }

type result = {
  total_ticks : int;
  peak_fleet_power : float;
  mean_fleet_power : float;
  violation_ticks : int;
  qos_attainment : float;
  total_debt : float;
  placements : int;
  kills : int;
  restarts : int;
  digest : string;
}

(* Observability handles, bound once. *)
let c_epochs = Obs.Counters.counter "fleet.epochs"
let c_ticks = Obs.Counters.counter "fleet.ticks"
let c_kills = Obs.Counters.counter "fleet.kills"
let c_restarts = Obs.Counters.counter "fleet.restarts"
let c_placements = Obs.Counters.counter "fleet.placements"
let c_moves = Obs.Counters.counter "fleet.rebudget_moves"
let g_nodes = Obs.Counters.gauge "fleet.nodes"
let g_cap = Obs.Counters.gauge "fleet.global_cap"
let g_peak = Obs.Counters.gauge "fleet.peak_power"
let h_epoch = Obs.Histogram.histogram "fleet.epoch_ns"

let mix_seed base i =
  Int64.add
    (Int64.mul 0x9E3779B97F4A7C15L (Int64.of_int (i + 1)))
    (Int64.mul 0xBF58476D1CE4E5B9L (Int64.of_int base))

let validate spec =
  let bad name = invalid_arg (Printf.sprintf "Fleet.run: non-positive %s" name) in
  if spec.nodes <= 0 then bad "nodes";
  if spec.epochs <= 0 then bad "epochs";
  if spec.ticks_per_epoch <= 0 then bad "ticks_per_epoch";
  if spec.dt <= 0. then bad "dt";
  if spec.global_cap <= 0. then bad "global_cap";
  if spec.shard_size <= 0 then bad "shard_size";
  if spec.down_epochs <= 0 then bad "down_epochs";
  if spec.arrival_rate < 0. then bad "arrival_rate";
  if spec.kill_rate < 0. then bad "kill_rate";
  if Array.length spec.platforms = 0 then
    invalid_arg "Fleet.run: empty platforms"

(* One epoch's worth of ticking for one shard of nodes.  Node-outer,
   tick-inner: per-tick power lands in a shard-local array summed by the
   caller in shard order, so the reduction order never depends on which
   domain ran which shard. *)
let tick_shard ~dt ~ticks (shard : Node.t array) =
  let power_by_tick = Array.make ticks 0. in
  Array.iter
    (fun node ->
      for k = 0 to ticks - 1 do
        Node.tick node ~dt;
        power_by_tick.(k) <- power_by_tick.(k) +. Node.last_true_power node
      done;
      Node.checkpoint node)
    shard;
  let reports = Array.map Node.report shard in
  (power_by_tick, reports)

(* The epoch's kill plan: pure function of (seed, epoch).  Victims are
   drawn fleet-wide; draws landing on dead nodes are wasted, which keeps
   the stream length fixed and the plan independent of simulation
   state. *)
let kill_plan ~spec ~epoch =
  let g = Prng.create (mix_seed (spec.seed lxor 0xC8A5) epoch) in
  let base = int_of_float spec.kill_rate in
  let frac = spec.kill_rate -. float_of_int base in
  let count = base + (if Prng.float g < frac then 1 else 0) in
  List.init count (fun _ -> Prng.int g spec.nodes)

let workload_for i =
  let all = Array.of_list Benchmarks.all_qos in
  all.(i mod Array.length all)

let run ?pool spec =
  validate spec;
  Obs.Counters.set g_nodes (float_of_int spec.nodes);
  Obs.Counters.set g_cap spec.global_cap;
  (* Node construction on the calling domain: the first node of each
     workload pays the (memoized) gain design once; the other 9 992
     reuse it. *)
  let nodes =
    Array.init spec.nodes (fun i ->
        Node.create ~config:spec.node_config
          ~platform:spec.platforms.(i mod Array.length spec.platforms) ~id:i
          ~seed:(mix_seed spec.seed i) ~workload:(workload_for i) ())
  in
  (* A coordinated fleet starts from an even split of the global budget
     — the coordinator admits nodes under the cap from tick one; only
     the uncoordinated baseline begins (and stays) at chip TDP. *)
  (if spec.policy <> Coordinator.Uncoordinated then
     let even =
       spec.global_cap
       *. (1. -. Coordinator.default_headroom)
       /. float_of_int spec.nodes
     in
     Array.iter (fun node -> Node.set_cap node even) nodes);
  (* Boot warm-up under the assigned caps: nodes join the reported
     fleet already stabilized, so tick 0 measures the coordinator, not
     a synchronized cold-start spike. *)
  Array.iter (fun node -> Node.warm_up node) nodes;
  let shard_count = (spec.nodes + spec.shard_size - 1) / spec.shard_size in
  let shards =
    Array.init shard_count (fun s ->
        let from = s * spec.shard_size in
        Array.sub nodes from (min spec.shard_size (spec.nodes - from)))
  in
  let down = Array.make spec.nodes 0 in
  let allowance = Spectr.Metrics.power_allowance in
  let limit = spec.global_cap *. allowance in
  let peak = ref 0. in
  let power_sum = ref 0. in
  let violations = ref 0 in
  let attain_sum = ref 0. in
  let debt = ref 0. in
  let placements = ref 0 in
  let kills = ref 0 in
  let restarts = ref 0 in
  let canon = Buffer.create 4096 in
  for epoch = 0 to spec.epochs - 1 do
    Obs.time h_epoch (fun () ->
        (* Reboot nodes whose downtime expired, then apply this epoch's
           kill plan. *)
        Array.iteri
          (fun i d ->
            if d > 0 then begin
              down.(i) <- d - 1;
              if down.(i) = 0 then begin
                Node.restart nodes.(i);
                incr restarts;
                Obs.Counters.incr c_restarts
              end
            end)
          down;
        List.iter
          (fun v ->
            if Node.alive nodes.(v) then begin
              Node.kill nodes.(v);
              down.(v) <- spec.down_epochs;
              incr kills;
              Obs.Counters.incr c_kills
            end)
          (kill_plan ~spec ~epoch);
        (* Parallel tick, then ordered reduction: shard s's per-tick
           array is added in shard order, so fleet power at tick k is
           the same float for any job count. *)
        let shard_results =
          Spectr_exec.Parmap.map_array ?pool
            (tick_shard ~dt:spec.dt ~ticks:spec.ticks_per_epoch)
            shards
        in
        let epoch_peak = ref 0. in
        let epoch_violations = ref 0 in
        for k = 0 to spec.ticks_per_epoch - 1 do
          let fleet_power = ref 0. in
          Array.iter
            (fun (power_by_tick, _) ->
              fleet_power := !fleet_power +. power_by_tick.(k))
            shard_results;
          let p = !fleet_power in
          if p > !epoch_peak then epoch_peak := p;
          if p > !peak then peak := p;
          power_sum := !power_sum +. p;
          if p > limit then begin
            incr violations;
            incr epoch_violations
          end
        done;
        let reports =
          Array.concat
            (Array.to_list (Array.map (fun (_, r) -> r) shard_results))
        in
        let epoch_debt = ref 0. in
        Array.iter
          (fun (r : Node.report) ->
            epoch_debt := !epoch_debt +. r.Node.r_debt;
            let a =
              if r.Node.r_qos_ref > 0. then
                Float.min 1. (r.Node.r_qos /. r.Node.r_qos_ref)
              else 0.
            in
            attain_sum := !attain_sum +. a)
          reports;
        debt := !debt +. !epoch_debt;
        (* Place this epoch's arrivals before re-budgeting, so new load
           shows up as background work the next epoch's demands see. *)
        let items =
          Arrivals.generate ~seed:spec.seed ~epoch ~rate:spec.arrival_rate
        in
        let assigned = Placer.assign ~reports items in
        List.iter
          (fun (i, it) ->
            Node.add_load nodes.(i) ~tasks:it.Arrivals.a_tasks
              ~duration_ticks:it.Arrivals.a_duration;
            incr placements;
            Obs.Counters.incr c_placements)
          assigned;
        let caps =
          Coordinator.rebudget ~policy:spec.policy ~global_cap:spec.global_cap
            ~config:spec.node_config
            ~epoch_s:(float_of_int spec.ticks_per_epoch *. spec.dt)
            reports
        in
        Array.iteri
          (fun i cap ->
            if cap <> Node.cap nodes.(i) then Obs.Counters.incr c_moves;
            Node.set_cap nodes.(i) cap)
          caps;
        Obs.Counters.incr c_epochs;
        Obs.Counters.add c_ticks spec.ticks_per_epoch;
        (* Canonical per-epoch line for the determinism digest.  Hex
           floats (%h) are exact — any reduction-order drift changes the
           digest. *)
        Buffer.add_string canon
          (Printf.sprintf "%d %h %h %d %d %d %d\n" epoch !epoch_peak
             !epoch_debt !epoch_violations !kills !restarts !placements))
  done;
  Obs.Counters.set g_peak !peak;
  let total_ticks = spec.epochs * spec.ticks_per_epoch in
  {
    total_ticks;
    peak_fleet_power = !peak;
    mean_fleet_power = !power_sum /. float_of_int total_ticks;
    violation_ticks = !violations;
    qos_attainment =
      !attain_sum /. float_of_int (spec.epochs * spec.nodes);
    total_debt = !debt;
    placements = !placements;
    kills = !kills;
    restarts = !restarts;
    digest = Digest.to_hex (Digest.string (Buffer.contents canon));
  }

let pp_result ppf r =
  Format.fprintf ppf
    "ticks %d  peak %.2f W  mean %.2f W  violations %d  qos %.4f  debt \
     %.2f s  placed %d  kills %d  restarts %d  digest %s"
    r.total_ticks r.peak_fleet_power r.mean_fleet_power r.violation_ticks
    r.qos_attainment r.total_debt r.placements r.kills r.restarts r.digest
