(** Deterministic workload arrival stream for the fleet.

    Arrivals are a pure function of [(seed, epoch)]: the same pair
    always yields the same item list, independent of node state, job
    count or anything the simulation did — the determinism discipline
    that keeps fleet runs byte-identical across [SPECTR_JOBS]. *)

type item = {
  a_tasks : int;  (** Background tasks the item places (1–3). *)
  a_duration : int;  (** Lifetime in controller ticks. *)
  a_kind : string;
      (** Workload-affinity hint: the name of one of the eight QoS
          benchmarks; the placer favors nodes running it. *)
}

val generate : seed:int -> epoch:int -> rate:float -> item list
(** The items arriving during this epoch.  [rate] is the expected item
    count per epoch (the integer part always arrives; the fraction
    arrives Bernoulli on a stream derived from [(seed, epoch)]). *)
