(** The fleet engine: thousands of SPECTR-managed nodes under one
    datacenter power cap.

    Each epoch the engine (1) boots dead nodes whose downtime expired
    and executes this epoch's deterministic kill plan, (2) ticks every
    node [ticks_per_epoch] controller periods — sharded across the
    {!Spectr_exec.Pool} workers, (3) sums ground-truth fleet power tick
    by tick, (4) collects node reports, (5) places arriving workload
    items ({!Placer}), and (6) re-budgets per-node caps under the global
    cap ({!Coordinator}).

    {b Determinism discipline.}  Nodes are partitioned into shards of a
    {e fixed} [shard_size] — a function of the spec only, never of the
    job count — and per-tick shard power sums are reduced in submission
    (= node-index) order, so every float addition happens in the same
    order for any [SPECTR_JOBS].  Kill plans and arrivals are pure
    functions of [(seed, epoch)].  The {!result.digest} is therefore
    byte-identical across job counts; `make fleet-smoke` pins this. *)

type spec = {
  nodes : int;
  epochs : int;
  ticks_per_epoch : int;
  dt : float;  (** Controller period (s). *)
  seed : int;
  global_cap : float;  (** Datacenter power cap (W). *)
  policy : Coordinator.policy;
  node_config : Node.config;
  arrival_rate : float;  (** Expected workload items per epoch. *)
  kill_rate : float;  (** Expected node kills per epoch. *)
  down_epochs : int;  (** Epochs a killed node stays dead. *)
  shard_size : int;
      (** Nodes per parallel shard — part of the spec, {e not} derived
          from the job count, so results are job-count independent. *)
  platforms : Spectr_platform.Platform_desc.t array;
      (** Node [i] runs description [platforms.(i mod length)] — a
          singleton array gives a homogeneous fleet, more entries an
          interleaved heterogeneous one.  Must be non-empty. *)
}

val default_spec : spec
(** 64 nodes × 20 epochs × 50 ticks, [dt] = 0.05 s, global cap of
    2.5 W per node (half the per-chip TDP), water-filling policy,
    2 arrivals and 0.5 kills per epoch, 2 epochs of downtime,
    [shard_size] = 64, a homogeneous [exynos5422] fleet. *)

type result = {
  total_ticks : int;  (** epochs × ticks_per_epoch. *)
  peak_fleet_power : float;
      (** Max over all ticks of the summed ground-truth chip power (W). *)
  mean_fleet_power : float;
  violation_ticks : int;
      (** Ticks where fleet power exceeded
          [global_cap × ]{!Spectr.Metrics.power_allowance}. *)
  qos_attainment : float;
      (** Mean over node-epochs of [min 1 (qos / qos_ref)] — 1.0 means
          every node met its reference every epoch. *)
  total_debt : float;  (** Summed QoS debt over all node-epochs (s). *)
  placements : int;
  kills : int;
  restarts : int;
  digest : string;
      (** MD5 over the canonical per-epoch stats (hex floats), the
          value the determinism gate compares across job counts. *)
}

val run : ?pool:Spectr_exec.Pool.t -> spec -> result
(** Run the fleet to completion.  [pool] overrides the process-default
    worker pool (tests use it to compare 1-job vs 4-job runs in one
    process).  Raises [Invalid_argument] on a non-positive dimension. *)

val pp_result : Format.formatter -> result -> unit
