(** Datacenter-level power re-budgeting: each epoch, split a global
    power cap across nodes from their epoch reports.

    This is the fleet analogue of the per-chip supervisory layer: the
    coordinator never touches a core or a cluster — it only moves each
    node's power envelope, and the node's own synthesized SCT supervisor
    enforces it (a cap change arrives as [tdpIncreased]/[tdpDecreased]
    envelope events, exactly like a thermal emergency).  SNIPPETS §2.1
    calls this shape a "coordinator over per-entity managers". *)

type policy =
  | Uncoordinated
      (** No coordination: every node runs at its own chip TDP.  The
          baseline that violates the global cap whenever enough nodes
          draw near-TDP at once. *)
  | Static_split
      (** [global_cap / n] to every node, clamped to
          [[cap_floor, node_tdp]].  Compliant but blind: starved hot
          nodes and wasted budget on idle ones. *)
  | Water_filling
      (** Demand-driven water-filling: each node's demand grows when it
          accrued QoS debt last epoch and shrinks toward its measured
          draw otherwise; a common water level [λ] is found by bisection
          so that [Σ max floor (min demand λ) = global_cap].  Compliant
          {e and} need-aware. *)

val policy_of_string : string -> policy option
(** ["uncoordinated"], ["static"], ["waterfill"]. *)

val string_of_policy : policy -> string

val default_headroom : float
(** Fraction of the global cap the coordinated policies hold back
    (0.05).  A per-chip supervisor tolerates brief overshoot at its own
    cap (OPP dither, one-period actuation lag); allocating the global
    cap to the last watt would let the fleet sum flutter over it.  The
    same reasoning as the chaos invariants' safety guardband, one level
    up. *)

val rebudget :
  ?headroom:float ->
  policy:policy ->
  global_cap:float ->
  config:Node.config ->
  epoch_s:float ->
  Node.report array ->
  float array
(** New cap per report index (same order as the input).  [epoch_s] is
    the reported epoch's duration in seconds — it normalizes each
    node's QoS debt into a starvation fraction.

    Under the two coordinated policies dead nodes ([r_alive = false])
    are {e excluded}: they are allocated 0 and their former share
    redistributes to the survivors within the same rebudget call
    ({!Node.set_cap}'s floor clamp still lets a later reboot run its
    minimum-power configuration).  Alive nodes' caps lie in
    [[config.cap_floor, min config.node_tdp r_max_power]] — a
    reconfigured node's allocation is capped at its reported degraded
    capacity, freeing headroom its silicon can no longer use.  Writing
    [budget = global_cap × (1 - headroom)], the coordinated caps sum to
    at most [budget] whenever [budget >= n_alive × cap_floor] (below
    that floor the problem is infeasible and every alive node gets
    [cap_floor]).  Deterministic: fixed bisection iteration count,
    fixed summation order. *)
