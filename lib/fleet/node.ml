open Spectr_platform

type config = {
  node_tdp : float;
  cap_floor : float;
  hb_window : float;
  boot_ticks : int;
}

let default_config =
  { node_tdp = 5.0; cap_floor = 1.0; hb_window = 0.25; boot_ticks = 40 }

(* Warm-up runs at the paper's controller period regardless of the
   fleet's tick length: boot is a property of the node, not of whoever
   is driving it. *)
let boot_dt = 0.05

type item = { tasks : int; mutable left : int }

type t = {
  id : int;
  config : config;
  seed : int64;
  workload : Workload.t;
  platform : Platform_desc.t;
  qos_ref : float;
  reconfigurable : bool;
  full_power_est : float; (* healthy-description capacity anchor *)
  mutable reconfig : Spectr.Spectr_manager.Reconfig.handle option;
  mutable soc : Soc.t;
  mutable hb : Heartbeats.t;
  mutable manager : Spectr.Manager.t;
  mutable cap : float;
  mutable alive : bool;
  mutable items : item list;
  mutable bg : int;
  obs : Soc.observation;
  (* epoch accumulators, drained by [report] *)
  mutable e_ticks : int;
  mutable e_power : float;
  mutable e_sensor : float;
  mutable e_qos : float;
  mutable e_debt : float;
  mutable last_power : float;
  (* lifetime *)
  mutable total_debt : float;
  mutable kills : int;
  mutable restarts : int;
  mutable saved : Spectr.Manager.checkpoint option;
}

let qos_ref_for platform workload =
  if
    workload.Workload.name = "x264"
    && Spectr.Design_flow.is_reference_platform platform
  then 60.
  else 0.75 *. Perf_model.max_qos_rate_for platform workload

let make_soc t generation =
  (* Reseed each life: SplitMix-style mix of the node seed and the
     restart generation, so a rebooted node's noise stream is
     deterministic but independent of its previous life. *)
  let seed =
    Int64.add t
      (Int64.mul 0x9E3779B97F4A7C15L (Int64.of_int (generation + 1)))
  in
  fun platform workload ->
    let soc =
      Soc.create
        ~config:{ (Soc.config_of platform) with seed }
        ~platform ~qos:workload ()
    in
    (* Boot throttled: a node comes up at the lowest OPP and lets its
       manager ramp it.  Booting at the mid-range default made every
       fleet start (and every reboot) a synchronized power spike that
       transiently broke the global cap through no fault of the
       coordinator. *)
    for i = 0 to Soc.num_clusters soc - 1 do
      ignore (Soc.set_frequency soc i 0.)
    done;
    soc

let make_manager ~reconfigurable platform =
  if reconfigurable then begin
    let manager, handle =
      Spectr.Spectr_manager.make_reconfigurable ~platform ()
    in
    (manager, Some handle)
  end
  else
    let manager, _sup = Spectr.Spectr_manager.make ~platform () in
    (manager, None)

let create ?(config = default_config)
    ?(platform = Platform_desc.exynos5422) ?(reconfigurable = false) ~id
    ~seed ~workload () =
  if config.node_tdp <= 0. || config.cap_floor <= 0. then
    invalid_arg "Node.create: non-positive tdp/floor";
  let qos_ref = qos_ref_for platform workload in
  let soc = (make_soc seed 0) platform workload in
  let manager, reconfig = make_manager ~reconfigurable platform in
  {
    id;
    config;
    seed;
    workload;
    platform;
    qos_ref;
    reconfigurable;
    full_power_est = Platform_desc.max_power_estimate platform;
    reconfig;
    soc;
    hb = Heartbeats.create ~window:config.hb_window ~reference:qos_ref ();
    manager;
    cap = config.node_tdp;
    alive = true;
    items = [];
    bg = 0;
    obs = Soc.make_observation ();
    e_ticks = 0;
    e_power = 0.;
    e_sensor = 0.;
    e_qos = 0.;
    e_debt = 0.;
    last_power = 0.;
    total_debt = 0.;
    kills = 0;
    restarts = 0;
    saved = None;
  }

let id t = t.id
let workload_name t = t.workload.Workload.name
let qos_ref t = t.qos_ref
let alive t = t.alive
let cap t = t.cap
let background t = t.bg
let last_true_power t = t.last_power
let kills t = t.kills
let restarts t = t.restarts
let reconfig_handle t = t.reconfig

(* Degraded capacity: the most the node's {e current} (possibly
   degraded) description can draw, as a fraction of the healthy
   description's estimate, scaled onto the chip TDP.  A healthy node
   reports exactly [node_tdp]; a node that reconfigured around a dead
   cluster reports less, and the coordinator stops budgeting power the
   silicon can no longer convert into work. *)
let max_power t =
  match t.reconfig with
  | None -> t.config.node_tdp
  | Some h ->
      let est =
        Platform_desc.max_power_estimate
          (Spectr.Spectr_manager.Reconfig.platform h)
      in
      let frac =
        if t.full_power_est > 0. then Float.min 1. (est /. t.full_power_est)
        else 1.
      in
      Float.max t.config.cap_floor (t.config.node_tdp *. frac)

let inject_permanent t kind =
  if not (Faults.is_permanent kind) then
    invalid_arg "Node.inject_permanent: not a permanent fault kind";
  if t.alive then begin
    let now = t.obs.Soc.time in
    let prev =
      match Soc.faults t.soc with None -> [] | Some f -> Faults.injections f
    in
    Soc.set_faults t.soc
      (Some (Faults.create (prev @ [ Faults.permanent kind ~start_s:now ])))
  end

let set_cap t cap =
  let cap = Float.min t.config.node_tdp (Float.max t.config.cap_floor cap) in
  t.cap <- cap

let recompute_bg t =
  let bg = List.fold_left (fun acc it -> acc + it.tasks) 0 t.items in
  if bg <> t.bg then begin
    t.bg <- bg;
    if t.alive then Soc.set_background_tasks t.soc bg
  end

let add_load t ~tasks ~duration_ticks =
  if tasks < 0 || duration_ticks <= 0 then
    invalid_arg "Node.add_load: tasks < 0 or duration_ticks <= 0";
  t.items <- { tasks; left = duration_ticks } :: t.items;
  recompute_bg t

let expire_items t =
  let any_expired = ref false in
  List.iter
    (fun it ->
      it.left <- it.left - 1;
      if it.left <= 0 then any_expired := true)
    t.items;
  if !any_expired then begin
    t.items <- List.filter (fun it -> it.left > 0) t.items;
    recompute_bg t
  end

(* One platform + manager step; returns ground-truth power.  Shared by
   counted ticks and the uncounted boot warm-up. *)
let step_platform t ~dt =
  let obs = t.obs in
  Soc.step_into t.soc ~dt obs;
  Heartbeats.beat t.hb ~now:obs.Soc.time ~count:(obs.Soc.qos_rate *. dt);
  obs.Soc.qos_rate <- Heartbeats.rate t.hb ~now:obs.Soc.time;
  t.manager.Spectr.Manager.step ~now:obs.Soc.time ~qos_ref:t.qos_ref
    ~envelope:t.cap ~obs t.soc;
  Soc.true_chip_power t.soc

let warm_up ?ticks t =
  if t.alive then begin
    let n = match ticks with Some n -> n | None -> t.config.boot_ticks in
    for _ = 1 to n do
      ignore (step_platform t ~dt:boot_dt)
    done
  end

let tick t ~dt =
  if t.alive then begin
    expire_items t;
    let tp = step_platform t ~dt in
    let obs = t.obs in
    t.last_power <- tp;
    t.e_power <- t.e_power +. tp;
    t.e_sensor <- t.e_sensor +. obs.Soc.chip_power;
    t.e_qos <- t.e_qos +. obs.Soc.qos_rate;
    let shortfall =
      Float.max 0. ((t.qos_ref -. obs.Soc.qos_rate) /. t.qos_ref)
    in
    t.e_debt <- t.e_debt +. (shortfall *. dt);
    t.total_debt <- t.total_debt +. (shortfall *. dt)
  end
  else begin
    (* Dead: the work queue still drains real time, the node serves
       nothing and draws nothing. *)
    expire_items t;
    t.last_power <- 0.;
    t.e_debt <- t.e_debt +. dt;
    t.total_debt <- t.total_debt +. dt
  end;
  t.e_ticks <- t.e_ticks + 1

let checkpoint t =
  match t.manager.Spectr.Manager.persist with
  | Some p -> t.saved <- Some (p.Spectr.Manager.snapshot ())
  | None -> ()

let kill t =
  if t.alive then begin
    t.alive <- false;
    t.kills <- t.kills + 1;
    t.last_power <- 0.
  end

let restart t =
  if not t.alive then begin
    t.restarts <- t.restarts + 1;
    t.soc <- (make_soc t.seed t.restarts) t.platform t.workload;
    t.hb <-
      Heartbeats.create ~window:t.config.hb_window ~reference:t.qos_ref ();
    Soc.set_background_tasks t.soc t.bg;
    (* The manager daemon restarts from scratch and restores its last
       persisted checkpoint — the chaos engine's kill-drill mechanics at
       node granularity.  Never-checkpointed nodes come back cold. *)
    let manager, reconfig =
      make_manager ~reconfigurable:t.reconfigurable t.platform
    in
    t.manager <- manager;
    (* A restart is new hardware: the fault schedule does not carry
       over, and a reconfigurable node comes back on the full healthy
       description (its FDIR starts from scratch). *)
    t.reconfig <- reconfig;
    (match (t.saved, manager.Spectr.Manager.persist) with
    | Some c, Some p -> p.Spectr.Manager.restore c
    | _ -> ());
    t.alive <- true;
    (* A rebooting node stabilizes under its current cap before it
       rejoins the reported fleet — admission control, not accounting
       fiction: its uncounted boot second is exactly the window a real
       cluster holds a node out of the load balancer. *)
    warm_up t
  end

type report = {
  r_id : int;
  r_alive : bool;
  r_max_power : float;
  r_cap : float;
  r_power : float;
  r_sensor_power : float;
  r_qos : float;
  r_qos_ref : float;
  r_debt : float;
  r_total_debt : float;
  r_background : int;
  r_workload : string;
  r_kills : int;
  r_restarts : int;
}

let report t =
  let n = t.e_ticks in
  let mean acc = if n = 0 then 0. else acc /. float_of_int n in
  let r =
    {
      r_id = t.id;
      r_alive = t.alive;
      r_max_power = max_power t;
      r_cap = t.cap;
      r_power = mean t.e_power;
      r_sensor_power = mean t.e_sensor;
      r_qos = mean t.e_qos;
      r_qos_ref = t.qos_ref;
      r_debt = t.e_debt;
      r_total_debt = t.total_debt;
      r_background = t.bg;
      r_workload = t.workload.Workload.name;
      r_kills = t.kills;
      r_restarts = t.restarts;
    }
  in
  t.e_ticks <- 0;
  t.e_power <- 0.;
  t.e_sensor <- 0.;
  t.e_qos <- 0.;
  t.e_debt <- 0.;
  r
