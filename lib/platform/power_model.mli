(** Analytic cluster power model.

    Per cluster:

    {v P = Σ_active ( C_dyn · V² · f · util + P_leak · (V/V₀)² )
     + (#gated cores) · P_gated + P_uncore v}

    with parameters calibrated so the Big cluster peaks around 5.4 W at
    the 2 GHz OPP (driving the paper's 5 W TDP into saturation) and the
    Little cluster around 0.8 W — matching the 2–5.5 W range of
    Figure 13's power traces. *)

type params = private {
  cdyn_w_per_v2ghz : float;  (** Effective switching capacitance. *)
  leak_w_per_core : float;  (** Leakage per powered core at V₀ = 0.9 V. *)
  gated_w_per_core : float;  (** Residual draw of a power-gated core. *)
  uncore_w : float;  (** Cluster-shared (L2, interconnect) draw. *)
}

val params :
  cdyn_w_per_v2ghz:float ->
  leak_w_per_core:float ->
  gated_w_per_core:float ->
  uncore_w:float ->
  params
(** Raises [Invalid_argument] on negative values. *)

val v0 : float
(** Reference voltage V₀ (0.9 V) of the leakage term — exported so the
    inlined tick kernel and this model stay calibrated identically. *)

val big_params : params
(** Cortex-A15 cluster calibration. *)

val little_params : params
(** Cortex-A7 cluster calibration. *)

val cluster_power :
  params ->
  table:Opp.t ->
  freq_mhz:int ->
  active_cores:int ->
  total_cores:int ->
  utilization:float ->
  float
(** Power draw in watts.  [freq_mhz] must be an OPP of [table];
    [utilization] ∈ [0,1] scales only the dynamic term.  Raises
    [Invalid_argument] on out-of-range arguments. *)
