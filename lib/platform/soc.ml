open Spectr_linalg
module Obs = Spectr_obs

(* Observability handles (no-ops while instrumentation is disabled). *)
let c_steps = Obs.Counters.counter "soc.steps"

type cluster = Big | Little

type config = {
  seed : int64;
  power_noise : float;
  qos_noise : float;
  ips_noise : float;
  background_task_util : float;
  ambient_c : float;
  thermal_resistance : float;
  thermal_tau : float;
}

let default_config =
  {
    seed = 0x5EC7Ab1E5EC7AL;
    power_noise = 0.015;
    qos_noise = 0.02;
    ips_noise = 0.05;
    background_task_util = 0.6;
    ambient_c = 30.;
    thermal_resistance = 8.;
    thermal_tau = 3.;
  }

type observation = {
  time : float;
  big_power : float;
  little_power : float;
  chip_power : float;
  qos_rate : float;
  big_ips : float;
  little_ips : float;
  per_core_ips : float array;
  temperature_c : float;
}

type t = {
  config : config;
  qos : Workload.t;
  rng : Prng.t;
  mutable now : float;
  mutable big_freq : int;
  mutable little_freq : int;
  mutable big_active : int;
  mutable little_active : int;
  idle : float array; (* 8 entries *)
  mutable n_background : int;
  mutable temperature_c : float;
  mutable faults : Faults.t option;
  mutable obs_active_faults : int;
      (* injections active at the previous step, for onset/clearance
         decisions; only maintained while observability is enabled *)
}

let create ?(config = default_config) ~qos () =
  {
    config;
    qos;
    rng = Prng.create config.seed;
    now = 0.;
    big_freq = 1000;
    little_freq = 1000;
    big_active = 4;
    little_active = 4;
    idle = Array.make 8 0.;
    n_background = 0;
    temperature_c = config.ambient_c;
    faults = None;
    obs_active_faults = 0;
  }

let set_faults soc faults = soc.faults <- faults
let faults soc = soc.faults

let fault_active soc pred =
  match soc.faults with None -> false | Some f -> pred f ~now:soc.now

let table = function Big -> Opp.big | Little -> Opp.little

let frequency soc = function Big -> soc.big_freq | Little -> soc.little_freq

let set_frequency soc cluster f_mhz =
  if fault_active soc Faults.dvfs_stuck then frequency soc cluster
  else begin
    let f = Opp.nearest (table cluster) f_mhz in
    (match cluster with
    | Big -> soc.big_freq <- f
    | Little -> soc.little_freq <- f);
    f
  end

let set_active_cores soc cluster n =
  if not (fault_active soc Faults.gating_refused) then begin
    let n = max 1 (min 4 n) in
    match cluster with
    | Big -> soc.big_active <- n
    | Little -> soc.little_active <- n
  end

let active_cores soc = function
  | Big -> soc.big_active
  | Little -> soc.little_active

let set_idle_fraction soc ~core f =
  if core < 0 || core >= 8 then invalid_arg "Soc.set_idle_fraction: core";
  soc.idle.(core) <- Float.max 0. (Float.min 0.9 f)

let idle_fraction soc ~core =
  if core < 0 || core >= 8 then invalid_arg "Soc.idle_fraction: core";
  soc.idle.(core)

let set_background_tasks soc n =
  if n < 0 then invalid_arg "Soc.set_background_tasks: negative";
  soc.n_background <- n

let background_tasks soc = soc.n_background
let time soc = soc.now
let temperature soc = soc.temperature_c

(* --- internal physics ------------------------------------------------ *)

(* Capacity (in core-fractions) of the active cores of a cluster after
   idle-cycle injection.  Big cores are 0-3, Little 4-7. *)
let capacity soc = function
  | Big ->
      let c = ref 0. in
      for i = 0 to soc.big_active - 1 do
        c := !c +. (1. -. soc.idle.(i))
      done;
      !c
  | Little ->
      let c = ref 0. in
      for i = 0 to soc.little_active - 1 do
        c := !c +. (1. -. soc.idle.(4 + i))
      done;
      !c

(* HMP placement of background work: the scheduler fills the Little
   cluster first, then spills onto Big where the spilled tasks time-share
   with the QoS application's four threads CFS-style (proportional to
   runnable demand).  Returns (little_bg_util, big_bg_util) in
   core-fractions. *)
let qos_threads = 4.

let background_placement soc =
  let demand =
    float_of_int soc.n_background *. soc.config.background_task_util
  in
  let little_cap = capacity soc Little in
  let little_used = Float.min demand little_cap in
  let spill = demand -. little_used in
  let big_cap = capacity soc Big in
  let big_used =
    if spill <= 0. then 0.
    else begin
      (* Fair sharing on the Big cluster: the QoS app's threads and the
         spilled background demand split capacity proportionally. *)
      let share = big_cap *. spill /. (qos_threads +. spill) in
      Float.min spill share
    end
  in
  (little_used, big_used)

(* Effective cores available to the QoS application on the Big cluster. *)
let qos_effective_cores soc =
  let _, big_bg = background_placement soc in
  Float.max 0.1 (capacity soc Big -. big_bg)

(* Slow sinusoidal scene-complexity variation. *)
let complexity_factor soc =
  1.
  +. soc.qos.Workload.complexity_wobble
     *. sin (2. *. Float.pi *. soc.now /. 8.)

let current_phase soc = Workload.phase_at soc.qos soc.now

let qos_ips_now soc =
  let phase = current_phase soc in
  Perf_model.cluster_ips soc.qos Perf_model.Big ~freq_mhz:soc.big_freq
    ~effective_cores:(qos_effective_cores soc)
    ~parallel_fraction:phase.Workload.parallel_fraction

let true_qos_rate soc =
  let phase = current_phase soc in
  qos_ips_now soc
  /. (soc.qos.Workload.instructions_per_heartbeat
     *. phase.Workload.demand_scale *. complexity_factor soc)

let utilization soc cluster =
  (* The QoS application saturates whatever Big capacity it is given;
     background work saturates its stolen share too.  Little runs only
     background work. *)
  match cluster with
  | Big ->
      let cap = capacity soc Big in
      if soc.big_active = 0 then 0.
      else Float.min 1. (cap /. float_of_int soc.big_active)
  | Little ->
      let little_bg, _ = background_placement soc in
      if soc.little_active = 0 then 0.
      else Float.min 1. (little_bg /. float_of_int soc.little_active)

let cluster_power_now soc cluster =
  let params =
    match cluster with
    | Big -> Power_model.big_params
    | Little -> Power_model.little_params
  in
  Power_model.cluster_power params ~table:(table cluster)
    ~freq_mhz:(frequency soc cluster)
    ~active_cores:(active_cores soc cluster)
    ~total_cores:4
    ~utilization:(utilization soc cluster)

let true_chip_power soc =
  cluster_power_now soc Big +. cluster_power_now soc Little

(* Per-core IPS for the PMU readings.  The cluster throughput is spread
   over the active cores proportionally to their non-idled capacity. *)
let per_core_ips_now soc =
  let result = Array.make 8 0. in
  let big_cap = capacity soc Big in
  let big_total = qos_ips_now soc in
  let little_bg, big_bg = background_placement soc in
  (* background work on Big runs at the core's native (contended) rate *)
  let bg_big_ips =
    big_bg
    *. Perf_model.core_ips ~busy_cores:big_cap soc.qos Perf_model.Big
         ~freq_mhz:soc.big_freq
  in
  for i = 0 to soc.big_active - 1 do
    let share = if big_cap > 0. then (1. -. soc.idle.(i)) /. big_cap else 0. in
    result.(i) <- share *. (big_total +. bg_big_ips)
  done;
  let little_cap = capacity soc Little in
  let little_ips_total =
    little_bg
    *. Perf_model.core_ips ~busy_cores:(Float.max 1. little_bg) soc.qos
         Perf_model.Little ~freq_mhz:soc.little_freq
  in
  for i = 0 to soc.little_active - 1 do
    let share =
      if little_cap > 0. then (1. -. soc.idle.(4 + i)) /. little_cap else 0.
    in
    result.(4 + i) <- share *. little_ips_total
  done;
  result

let noisy soc sigma_rel v =
  if sigma_rel <= 0. then v
  else v *. (1. +. Prng.gaussian soc.rng ~mu:0. ~sigma:sigma_rel)

let step soc ~dt =
  if dt <= 0. then invalid_arg "Soc.step: dt <= 0";
  soc.now <- soc.now +. dt;
  if Obs.enabled () then begin
    (* One simulated controller period advances the deterministic obs
       clock by one tick; this never feeds back into the physics. *)
    Obs.Clock.tick ();
    Obs.Counters.incr c_steps;
    match soc.faults with
    | None -> ()
    | Some f ->
        let active = Faults.active_count f ~now:soc.now in
        if active > 0 && soc.obs_active_faults = 0 then
          Obs.Decision_log.record (Obs.Decision_log.Fault { active; onset = true })
        else if active = 0 && soc.obs_active_faults > 0 then
          Obs.Decision_log.record
            (Obs.Decision_log.Fault { active = 0; onset = false });
        soc.obs_active_faults <- active
  end;
  (* First-order thermal RC: the die relaxes toward ambient + R_th * P
     with time constant tau. *)
  let c = soc.config in
  let t_target = c.ambient_c +. (c.thermal_resistance *. true_chip_power soc) in
  let alpha = Float.min 1. (dt /. c.thermal_tau) in
  soc.temperature_c <- soc.temperature_c +. (alpha *. (t_target -. soc.temperature_c));
  let big_power = noisy soc soc.config.power_noise (cluster_power_now soc Big) in
  let little_power =
    noisy soc soc.config.power_noise (cluster_power_now soc Little)
  in
  let qos_rate = noisy soc soc.config.qos_noise (true_qos_rate soc) in
  let per_core =
    Array.map (fun v -> noisy soc soc.config.ips_noise v) (per_core_ips_now soc)
  in
  (* Sensor faults corrupt the readings only after every draw from the
     SoC's own noise stream, so an inactive (or absent) schedule leaves
     the no-fault trace bit-identical. *)
  let big_power, little_power, qos_rate =
    match soc.faults with
    | None -> (big_power, little_power, qos_rate)
    | Some f ->
        let now = soc.now in
        ( Faults.apply_power f ~now ~channel:`Big big_power,
          Faults.apply_power f ~now ~channel:`Little little_power,
          Faults.apply_qos f ~now qos_rate )
  in
  let big_ips = per_core.(0) +. per_core.(1) +. per_core.(2) +. per_core.(3) in
  let little_ips =
    per_core.(4) +. per_core.(5) +. per_core.(6) +. per_core.(7)
  in
  {
    time = soc.now;
    big_power;
    little_power;
    chip_power = big_power +. little_power;
    qos_rate;
    big_ips;
    little_ips;
    per_core_ips = per_core;
    temperature_c = noisy soc 0.01 soc.temperature_c;
  }
