open Spectr_linalg
module Obs = Spectr_obs

(* Observability handles (no-ops while instrumentation is disabled). *)
let c_steps = Obs.Counters.counter "soc.steps"

type cluster = Big | Little

type config = {
  seed : int64;
  power_noise : float;
  qos_noise : float;
  ips_noise : float;
  temp_noise : float;
  background_task_util : float;
  ambient_c : float;
  thermal_resistance : float;
  thermal_tau : float;
}

let default_config =
  {
    seed = 0x5EC7Ab1E5EC7AL;
    power_noise = 0.015;
    qos_noise = 0.02;
    ips_noise = 0.05;
    temp_noise = 0.01;
    background_task_util = 0.6;
    ambient_c = 30.;
    thermal_resistance = 8.;
    thermal_tau = 3.;
  }

(* All-float and all-mutable: the record is flat, so [step_into] fills it
   with unboxed stores and a steady-state tick allocates nothing. *)
type observation = {
  mutable time : float;
  mutable big_power : float;
  mutable little_power : float;
  mutable chip_power : float;
  mutable qos_rate : float;
  mutable little_ips : float;
  mutable temperature_c : float;
}

let make_observation () =
  {
    time = 0.;
    big_power = 0.;
    little_power = 0.;
    chip_power = 0.;
    qos_rate = 0.;
    little_ips = 0.;
    temperature_c = 0.;
  }

(* Hot mutable floats live in their own all-float record: a float store
   into a mixed record boxes the value, an all-float record is flat. *)
type hot = {
  mutable now : float;
  mutable temperature_c : float;
  mutable big_volt : float;
  mutable little_volt : float;
}

type t = {
  config : config;
  qos : Workload.t;
  rng : Prng.t;
  hot : hot;
  mutable big_freq : int;
  mutable little_freq : int;
  mutable big_active : int;
  mutable little_active : int;
  idle : float array; (* 8 entries *)
  mutable n_background : int;
  mutable faults : Faults.t option;
  mutable obs_active_faults : int;
      (* injections active at the previous step, for onset/clearance
         decisions; only maintained while observability is enabled *)
  (* CPI-law coefficients cached per cluster so the kernel never crosses
     a module boundary for a float result on the tick path. *)
  big_a : float;
  big_b : float;
  little_a : float;
  little_b : float;
  (* Workload phase table flattened to parallel arrays: [ph_end.(i)] is
     the cumulative end time of phase i (the last entry is never
     consulted — the final phase repeats, as in [Workload.phase_at]). *)
  ph_end : float array;
  ph_pf : float array;
  ph_ds : float array;
  (* Scratch for the sensor draws: big power, little power, qos, temp. *)
  sens : float array;
  (* Per-core PMU readings are skipped, not drawn, on the hot path (no
     scenario column consumes them): [raw_ips] holds the noise-free
     values, [ips_snap] the generator state just before the eight
     per-core draws, and {!per_core_ips}/{!big_ips} replay the exact
     draws on demand into [noisy_ips]. *)
  raw_ips : float array;
  noisy_ips : float array;
  ips_snap : Prng.t;
  scratch_rng : Prng.t;
  mutable ips_done : bool;
}

let create ?(config = default_config) ~qos () =
  let big_a, big_b = Perf_model.cpi_coefficients qos Perf_model.Big in
  let little_a, little_b = Perf_model.cpi_coefficients qos Perf_model.Little in
  (* Flatten the phase list, replicating [Workload.phase_at]'s cumulative
     boundary arithmetic exactly (left-to-right [+.] over durations). *)
  let ph_end, ph_pf, ph_ds =
    match qos.Workload.phases with
    | [] ->
        ( [| infinity |],
          [| qos.Workload.parallel_fraction |],
          [| 1. |] )
    | phases ->
        let n = List.length phases in
        let ends = Array.make n 0. in
        let pfs = Array.make n 0. in
        let dss = Array.make n 0. in
        let elapsed = ref 0. in
        List.iteri
          (fun i (ph : Workload.phase) ->
            elapsed := !elapsed +. ph.Workload.duration_s;
            ends.(i) <- !elapsed;
            pfs.(i) <- ph.Workload.parallel_fraction;
            dss.(i) <- ph.Workload.demand_scale)
          phases;
        (ends, pfs, dss)
  in
  {
    config;
    qos;
    rng = Prng.create config.seed;
    hot =
      {
        now = 0.;
        temperature_c = config.ambient_c;
        big_volt = Opp.voltage Opp.big 1000;
        little_volt = Opp.voltage Opp.little 1000;
      };
    big_freq = 1000;
    little_freq = 1000;
    big_active = 4;
    little_active = 4;
    idle = Array.make 8 0.;
    n_background = 0;
    faults = None;
    obs_active_faults = 0;
    big_a;
    big_b;
    little_a;
    little_b;
    ph_end;
    ph_pf;
    ph_ds;
    sens = Array.make 4 0.;
    raw_ips = Array.make 8 0.;
    noisy_ips = Array.make 8 0.;
    ips_snap = Prng.create config.seed;
    scratch_rng = Prng.create config.seed;
    ips_done = true;
  }

let set_faults soc faults = soc.faults <- faults
let faults soc = soc.faults

let fault_active soc pred =
  match soc.faults with None -> false | Some f -> pred f ~now:soc.hot.now

let table = function Big -> Opp.big | Little -> Opp.little

let frequency soc = function Big -> soc.big_freq | Little -> soc.little_freq

let set_frequency soc cluster f_mhz =
  if fault_active soc Faults.dvfs_stuck then frequency soc cluster
  else begin
    let f = Opp.nearest (table cluster) f_mhz in
    (match cluster with
    | Big ->
        if f <> soc.big_freq then begin
          soc.big_freq <- f;
          soc.hot.big_volt <- Opp.voltage Opp.big f
        end
    | Little ->
        if f <> soc.little_freq then begin
          soc.little_freq <- f;
          soc.hot.little_volt <- Opp.voltage Opp.little f
        end);
    f
  end

let set_active_cores soc cluster n =
  if not (fault_active soc Faults.gating_refused) then begin
    let n = max 1 (min 4 n) in
    match cluster with
    | Big -> soc.big_active <- n
    | Little -> soc.little_active <- n
  end

let active_cores soc = function
  | Big -> soc.big_active
  | Little -> soc.little_active

let set_idle_fraction soc ~core f =
  if core < 0 || core >= 8 then invalid_arg "Soc.set_idle_fraction: core";
  soc.idle.(core) <- Float.max 0. (Float.min 0.9 f)

let idle_fraction soc ~core =
  if core < 0 || core >= 8 then invalid_arg "Soc.idle_fraction: core";
  soc.idle.(core)

let set_background_tasks soc n =
  if n < 0 then invalid_arg "Soc.set_background_tasks: negative";
  soc.n_background <- n

let background_tasks soc = soc.n_background
let time soc = soc.hot.now
let temperature soc = soc.hot.temperature_c

(* --- internal physics ------------------------------------------------ *)

(* Capacity (in core-fractions) of the active cores of a cluster after
   idle-cycle injection.  Big cores are 0-3, Little 4-7. *)
let capacity soc = function
  | Big ->
      let c = ref 0. in
      for i = 0 to soc.big_active - 1 do
        c := !c +. (1. -. soc.idle.(i))
      done;
      !c
  | Little ->
      let c = ref 0. in
      for i = 0 to soc.little_active - 1 do
        c := !c +. (1. -. soc.idle.(4 + i))
      done;
      !c

(* HMP placement of background work: the scheduler fills the Little
   cluster first, then spills onto Big where the spilled tasks time-share
   with the QoS application's four threads CFS-style (proportional to
   runnable demand).  Returns (little_bg_util, big_bg_util) in
   core-fractions. *)
let qos_threads = 4.

let background_placement soc =
  let demand =
    float_of_int soc.n_background *. soc.config.background_task_util
  in
  let little_cap = capacity soc Little in
  let little_used = Float.min demand little_cap in
  let spill = demand -. little_used in
  let big_cap = capacity soc Big in
  let big_used =
    if spill <= 0. then 0.
    else begin
      (* Fair sharing on the Big cluster: the QoS app's threads and the
         spilled background demand split capacity proportionally. *)
      let share = big_cap *. spill /. (qos_threads +. spill) in
      Float.min spill share
    end
  in
  (little_used, big_used)

(* Effective cores available to the QoS application on the Big cluster. *)
let qos_effective_cores soc =
  let _, big_bg = background_placement soc in
  Float.max 0.1 (capacity soc Big -. big_bg)

(* Slow sinusoidal scene-complexity variation. *)
let complexity_factor soc =
  1.
  +. soc.qos.Workload.complexity_wobble
     *. sin (2. *. Float.pi *. soc.hot.now /. 8.)

let current_phase soc = Workload.phase_at soc.qos soc.hot.now

let qos_ips_now soc =
  let phase = current_phase soc in
  Perf_model.cluster_ips soc.qos Perf_model.Big ~freq_mhz:soc.big_freq
    ~effective_cores:(qos_effective_cores soc)
    ~parallel_fraction:phase.Workload.parallel_fraction

let true_qos_rate soc =
  let phase = current_phase soc in
  qos_ips_now soc
  /. (soc.qos.Workload.instructions_per_heartbeat
     *. phase.Workload.demand_scale *. complexity_factor soc)

let utilization soc cluster =
  (* The QoS application saturates whatever Big capacity it is given;
     background work saturates its stolen share too.  Little runs only
     background work. *)
  match cluster with
  | Big ->
      let cap = capacity soc Big in
      if soc.big_active = 0 then 0.
      else Float.min 1. (cap /. float_of_int soc.big_active)
  | Little ->
      let little_bg, _ = background_placement soc in
      if soc.little_active = 0 then 0.
      else Float.min 1. (little_bg /. float_of_int soc.little_active)

let cluster_power_now soc cluster =
  let params =
    match cluster with
    | Big -> Power_model.big_params
    | Little -> Power_model.little_params
  in
  Power_model.cluster_power params ~table:(table cluster)
    ~freq_mhz:(frequency soc cluster)
    ~active_cores:(active_cores soc cluster)
    ~total_cores:4
    ~utilization:(utilization soc cluster)

let true_chip_power soc =
  cluster_power_now soc Big +. cluster_power_now soc Little

(* --- tick kernel ------------------------------------------------------ *)

(* Bound on |z| of a Box–Muller sample: u1 >= 2^-53, so
   |z| <= sqrt(2·53·ln 2) < 8.572.  When sigma·8.572 < 1 a zero raw
   reading stays exactly +0.0 after multiplicative noise (1 + g > 0), so
   the draw need not be materialized to know its result. *)
let z_bound = 8.572

(* The per-tick physics and sensor model, written as one monolithic body
   over unboxed locals.  Every expression replicates the corresponding
   helper above token-for-token (same literals, same association), so
   the kernel's observations are bit-identical to the pre-kernel
   implementation that composed [Perf_model]/[Power_model] calls — the
   scenario CSV digests pin this.  Cross-module calls on this path
   either return unit/int or are replaced by cached state ([big_a..],
   [hot.big_volt], [ph_*]): without the optimizing native backend a
   cross-module float return boxes ~16 B per call. *)
let step_into soc ~dt obs =
  if dt <= 0. then invalid_arg "Soc.step: dt <= 0";
  let c = soc.config in
  let hot = soc.hot in
  hot.now <- hot.now +. dt;
  if Obs.enabled () then begin
    (* One simulated controller period advances the deterministic obs
       clock by one tick; this never feeds back into the physics. *)
    Obs.Clock.tick ();
    Obs.Counters.incr c_steps;
    match soc.faults with
    | None -> ()
    | Some f ->
        let active = Faults.active_count f ~now:hot.now in
        if active > 0 && soc.obs_active_faults = 0 then
          Obs.Decision_log.record (Obs.Decision_log.Fault { active; onset = true })
        else if active = 0 && soc.obs_active_faults > 0 then
          Obs.Decision_log.record
            (Obs.Decision_log.Fault { active = 0; onset = false });
        soc.obs_active_faults <- active
  end;
  let now = hot.now in
  (* Workload phase (flattened [Workload.phase_at]). *)
  let np = Array.length soc.ph_end in
  let pi = ref 0 in
  while !pi < np - 1 && not (now < soc.ph_end.(!pi)) do
    incr pi
  done;
  let ph_pf = soc.ph_pf.(!pi) in
  let ph_ds = soc.ph_ds.(!pi) in
  (* Cluster capacities after idle injection ([capacity]). *)
  let big_cap =
    let c = ref 0. in
    for i = 0 to soc.big_active - 1 do
      c := !c +. (1. -. soc.idle.(i))
    done;
    !c
  in
  let little_cap =
    let c = ref 0. in
    for i = 0 to soc.little_active - 1 do
      c := !c +. (1. -. soc.idle.(4 + i))
    done;
    !c
  in
  (* HMP background placement ([background_placement]). *)
  let demand = float_of_int soc.n_background *. c.background_task_util in
  let little_bg = Float.min demand little_cap in
  let spill = demand -. little_bg in
  let big_bg =
    if spill <= 0. then 0.
    else begin
      let share = big_cap *. spill /. (qos_threads +. spill) in
      Float.min spill share
    end
  in
  (* QoS application throughput ([qos_ips_now] with [Perf_model]'s
     core_ips/cluster_ips and [Workload.amdahl_speedup] inlined). *)
  let qos_eff = Float.max 0.1 (big_cap -. big_bg) in
  let f_big_ghz = float_of_int soc.big_freq /. 1000. in
  let kappa_eff =
    1. +. (Perf_model.contention *. Float.max 0. (qos_eff -. 1.))
  in
  let core_ips_big =
    f_big_ghz *. 1e9 /. (soc.big_a +. (soc.big_b *. kappa_eff *. f_big_ghz))
  in
  let amdahl = 1. /. (1. -. ph_pf +. (ph_pf /. qos_eff)) in
  let qos_ips = core_ips_big *. amdahl in
  (* True heartbeat rate ([true_qos_rate] with [complexity_factor]). *)
  let complexity =
    (* With no wobble the sine is multiplied by zero: 1. +. (0. *. s)
       is exactly 1. for any finite s, so the transcendental is free to
       skip. *)
    let wobble = soc.qos.Workload.complexity_wobble in
    if wobble = 0. then 1.
    else 1. +. (wobble *. sin (2. *. Float.pi *. now /. 8.))
  in
  let true_qos =
    qos_ips
    /. (soc.qos.Workload.instructions_per_heartbeat *. ph_ds *. complexity)
  in
  (* Cluster powers ([cluster_power_now] with [Power_model.cluster_power]
     inlined over the cached OPP voltages). *)
  let util_big =
    if soc.big_active = 0 then 0.
    else Float.min 1. (big_cap /. float_of_int soc.big_active)
  in
  let util_little =
    if soc.little_active = 0 then 0.
    else Float.min 1. (little_bg /. float_of_int soc.little_active)
  in
  let p_big =
    let p = Power_model.big_params in
    let v = hot.big_volt in
    let dynamic = p.Power_model.cdyn_w_per_v2ghz *. v *. v *. f_big_ghz *. util_big in
    let leak =
      p.Power_model.leak_w_per_core *. (v /. Power_model.v0) *. (v /. Power_model.v0)
    in
    (float_of_int soc.big_active *. (dynamic +. leak))
    +. (float_of_int (4 - soc.big_active) *. p.Power_model.gated_w_per_core)
    +. p.Power_model.uncore_w
  in
  let f_little_ghz = float_of_int soc.little_freq /. 1000. in
  let p_little =
    let p = Power_model.little_params in
    let v = hot.little_volt in
    let dynamic =
      p.Power_model.cdyn_w_per_v2ghz *. v *. v *. f_little_ghz *. util_little
    in
    let leak =
      p.Power_model.leak_w_per_core *. (v /. Power_model.v0) *. (v /. Power_model.v0)
    in
    (float_of_int soc.little_active *. (dynamic +. leak))
    +. (float_of_int (4 - soc.little_active) *. p.Power_model.gated_w_per_core)
    +. p.Power_model.uncore_w
  in
  (* First-order thermal RC: the die relaxes toward ambient + R_th * P
     with time constant tau. *)
  let t_target = c.ambient_c +. (c.thermal_resistance *. (p_big +. p_little)) in
  let alpha = Float.min 1. (dt /. c.thermal_tau) in
  hot.temperature_c <- hot.temperature_c +. (alpha *. (t_target -. hot.temperature_c));
  (* Sensor noise, drawn in the fixed stream order big power, little
     power, qos, 8 per-core IPS, temperature.  Values round-trip through
     [sens] (unboxed float-array traffic) so the unit-returning
     [Prng.noisy_into] can write them. *)
  let sens = soc.sens in
  sens.(0) <- p_big;
  sens.(1) <- p_little;
  sens.(2) <- true_qos;
  Prng.noisy_into soc.rng ~sigma:c.power_noise ~dst:sens ~pos:0 ~len:2;
  Prng.noisy_into soc.rng ~sigma:c.qos_noise ~dst:sens ~pos:2 ~len:1;
  (* Noise-free per-core IPS ([per_core_ips_now] of the pre-kernel SoC):
     cluster throughput spread over active cores proportionally to their
     non-idled capacity; background work on Big runs at the core's
     native (contended) rate. *)
  let raw = soc.raw_ips in
  Array.fill raw 0 8 0.;
  let kappa_big_cap =
    1. +. (Perf_model.contention *. Float.max 0. (big_cap -. 1.))
  in
  let bg_big_ips =
    big_bg
    *. (f_big_ghz *. 1e9
       /. (soc.big_a +. (soc.big_b *. kappa_big_cap *. f_big_ghz)))
  in
  for i = 0 to soc.big_active - 1 do
    let share = if big_cap > 0. then (1. -. soc.idle.(i)) /. big_cap else 0. in
    raw.(i) <- share *. (qos_ips +. bg_big_ips)
  done;
  let little_busy = Float.max 1. little_bg in
  let kappa_little =
    1. +. (Perf_model.contention *. Float.max 0. (little_busy -. 1.))
  in
  let little_ips_total =
    little_bg
    *. (f_little_ghz *. 1e9
       /. (soc.little_a +. (soc.little_b *. kappa_little *. f_little_ghz)))
  in
  for i = 0 to soc.little_active - 1 do
    let share =
      if little_cap > 0. then (1. -. soc.idle.(4 + i)) /. little_cap else 0.
    in
    raw.(4 + i) <- share *. little_ips_total
  done;
  (* The four Big per-core draws advance the stream without being
     materialized; {!per_core_ips}/{!big_ips} replay them from
     [ips_snap] if a caller asks.  The Little aggregate IS consumed
     every tick, so the Little draws happen for real (a materialized
     gaussian advances the state exactly as a skipped one) — unless
     every Little raw is exactly zero, where the sigma bound proves the
     noisy readings are zero too and all eight draws can be skipped. *)
  Prng.blit ~src:soc.rng ~dst:soc.ips_snap;
  soc.ips_done <- false;
  let sigma_ips = c.ips_noise in
  let little_ips =
    if sigma_ips <= 0. then ((raw.(4) +. raw.(5)) +. raw.(6)) +. raw.(7)
    else if little_ips_total = 0. && sigma_ips *. z_bound < 1. then begin
      for _ = 1 to 8 do
        Prng.skip_gaussian soc.rng
      done;
      0.
    end
    else begin
      for _ = 1 to 4 do
        Prng.skip_gaussian soc.rng
      done;
      let nz = soc.noisy_ips in
      nz.(4) <- raw.(4);
      nz.(5) <- raw.(5);
      nz.(6) <- raw.(6);
      nz.(7) <- raw.(7);
      Prng.noisy_into soc.rng ~sigma:sigma_ips ~dst:nz ~pos:4 ~len:4;
      ((nz.(4) +. nz.(5)) +. nz.(6)) +. nz.(7)
    end
  in
  (* Temperature sensor: last draw of the tick. *)
  sens.(3) <- hot.temperature_c;
  Prng.noisy_into soc.rng ~sigma:c.temp_noise ~dst:sens ~pos:3 ~len:1;
  (* Sensor faults corrupt the readings only after every draw from the
     SoC's own noise stream, so an inactive (or absent) schedule leaves
     the no-fault trace bit-identical. *)
  (match soc.faults with
  | None -> ()
  | Some f ->
      let now = hot.now in
      sens.(2) <- Faults.apply_qos f ~now sens.(2);
      sens.(1) <- Faults.apply_power f ~now ~channel:`Little sens.(1);
      sens.(0) <- Faults.apply_power f ~now ~channel:`Big sens.(0);
      sens.(3) <- Faults.apply_temp f ~now sens.(3));
  obs.time <- hot.now;
  obs.big_power <- sens.(0);
  obs.little_power <- sens.(1);
  obs.chip_power <- sens.(0) +. sens.(1);
  obs.qos_rate <- sens.(2);
  obs.little_ips <- little_ips;
  obs.temperature_c <- sens.(3)

let step soc ~dt =
  let obs = make_observation () in
  step_into soc ~dt obs;
  obs

(* --- deferred per-core readings --------------------------------------- *)

let materialize_ips soc =
  if not soc.ips_done then begin
    let nz = soc.noisy_ips in
    Array.blit soc.raw_ips 0 nz 0 8;
    if soc.config.ips_noise > 0. then begin
      Prng.blit ~src:soc.ips_snap ~dst:soc.scratch_rng;
      Prng.noisy_into soc.scratch_rng ~sigma:soc.config.ips_noise ~dst:nz
        ~pos:0 ~len:8
    end;
    soc.ips_done <- true
  end

let per_core_ips soc =
  materialize_ips soc;
  Array.copy soc.noisy_ips

let big_ips soc =
  materialize_ips soc;
  ((soc.noisy_ips.(0) +. soc.noisy_ips.(1)) +. soc.noisy_ips.(2))
  +. soc.noisy_ips.(3)
