open Spectr_linalg
module Obs = Spectr_obs

(* Observability handles (no-ops while instrumentation is disabled). *)
let c_steps = Obs.Counters.counter "soc.steps"

type config = {
  seed : int64;
  power_noise : float;
  qos_noise : float;
  ips_noise : float;
  temp_noise : float;
  background_task_util : float;
  ambient_c : float;
  thermal_resistance : float;
  thermal_tau : float;
}

let default_config =
  {
    seed = 0x5EC7Ab1E5EC7AL;
    power_noise = 0.015;
    qos_noise = 0.02;
    ips_noise = 0.05;
    temp_noise = 0.01;
    background_task_util = 0.6;
    ambient_c = 30.;
    thermal_resistance = 8.;
    thermal_tau = 3.;
  }

(* [default_config]'s thermal triple IS exynos5422's, so on the default
   platform this is the identity and pre-description call sites that
   spliced [{ default_config with seed }] remain bit-identical. *)
let config_of desc =
  let th = Platform_desc.thermal desc in
  {
    default_config with
    ambient_c = th.Platform_desc.ambient_c;
    thermal_resistance = th.Platform_desc.resistance_c_per_w;
    thermal_tau = th.Platform_desc.tau_s;
  }

(* All-float and all-mutable: the record is flat, so [step_into] fills it
   with unboxed stores and a steady-state tick allocates nothing.  The
   per-cluster readings live in SoC-owned arrays ({!sensor_powers},
   {!ips_totals}) because adding an array field here would turn the
   record into a mixed block and box every float store. *)
type observation = {
  mutable time : float;
  mutable chip_power : float;
  mutable qos_rate : float;
  mutable temperature_c : float;
}

let make_observation () =
  { time = 0.; chip_power = 0.; qos_rate = 0.; temperature_c = 0. }

(* Hot mutable floats live in their own all-float record: a float store
   into a mixed record boxes the value, an all-float record is flat. *)
type hot = {
  mutable now : float;
  mutable temperature_c : float;
}

type t = {
  config : config;
  platform : Platform_desc.t;
  qos : Workload.t;
  rng : Prng.t;
  hot : hot;
  (* Cluster geometry unpacked from the description so the kernel indexes
     flat arrays instead of chasing the description's records. *)
  k : int; (* cluster count *)
  host : int; (* index of the QoS-hosting cluster *)
  total : int; (* total core count *)
  offs : int array; (* k+1 core offsets, last = total *)
  n_cores : int array; (* cores per cluster *)
  opps : Opp.t array;
  pw : Power_model.params array;
  freqs : int array; (* current OPP per cluster *)
  volts : float array; (* cached OPP voltage per cluster *)
  active : int array; (* un-gated cores per cluster *)
  idle : float array; (* total entries *)
  mutable n_background : int;
  mutable faults : Faults.t option;
  mutable obs_active_faults : int;
      (* injections active at the previous step, for onset/clearance
         decisions; only maintained while observability is enabled *)
  (* CPI-law coefficients cached per cluster so the kernel never crosses
     a module boundary for a float result on the tick path. *)
  a : float array;
  b : float array;
  (* Workload phase table flattened to parallel arrays: [ph_end.(i)] is
     the cumulative end time of phase i (the last entry is never
     consulted — the final phase repeats, as in [Workload.phase_at]). *)
  ph_end : float array;
  ph_pf : float array;
  ph_ds : float array;
  (* Scratch for the sensor draws: k cluster powers, qos, temp. *)
  sens : float array;
  (* Per-tick permanent-death mask; only written (and only read) when
     the schedule carries a [Cluster_dead] injection, so fault-free and
     transient-only runs never touch it. *)
  dead : bool array;
  (* Per-cluster kernel scratch. *)
  cap : float array; (* capacity after idle injection *)
  bg : float array; (* background placement, core-fractions *)
  rawtot : float array; (* noise-free per-cluster aggregate IPS *)
  (* Last-step per-cluster outputs exposed to managers and traces. *)
  pow_out : float array;
  ips_out : float array;
  (* Per-core PMU readings are skipped, not drawn, on the hot path (no
     scenario column consumes them): [raw_ips] holds the noise-free
     values, [ips_snap] the generator state just before the per-core
     draws, and {!per_core_ips}/{!host_ips} replay the exact draws on
     demand into [noisy_ips]. *)
  raw_ips : float array;
  noisy_ips : float array;
  ips_snap : Prng.t;
  scratch_rng : Prng.t;
  mutable ips_done : bool;
}

let create ?config ?(platform = Platform_desc.exynos5422) ~qos () =
  let config =
    match config with Some c -> c | None -> config_of platform
  in
  let k = Platform_desc.num_clusters platform in
  let total = Platform_desc.total_cores platform in
  let offs = Array.init (k + 1) (Platform_desc.core_offset platform) in
  let n_cores =
    Array.init k (fun i -> (Platform_desc.cluster platform i).Platform_desc.cores)
  in
  let opps =
    Array.init k (fun i -> (Platform_desc.cluster platform i).Platform_desc.opp)
  in
  let pw =
    Array.init k (fun i -> (Platform_desc.cluster platform i).Platform_desc.power)
  in
  let a = Array.make k 0. in
  let b = Array.make k 0. in
  for i = 0 to k - 1 do
    let ai, bi = Perf_model.coefficients_for qos platform i in
    a.(i) <- ai;
    b.(i) <- bi
  done;
  (* Boot at (the nearest OPP to) 1 GHz with every core un-gated — the
     mid-range default the pre-description SoC hard-coded. *)
  let freqs = Array.init k (fun i -> Opp.nearest opps.(i) 1000.) in
  let volts = Array.init k (fun i -> Opp.voltage opps.(i) freqs.(i)) in
  (* Flatten the phase list, replicating [Workload.phase_at]'s cumulative
     boundary arithmetic exactly (left-to-right [+.] over durations). *)
  let ph_end, ph_pf, ph_ds =
    match qos.Workload.phases with
    | [] ->
        ( [| infinity |],
          [| qos.Workload.parallel_fraction |],
          [| 1. |] )
    | phases ->
        let n = List.length phases in
        let ends = Array.make n 0. in
        let pfs = Array.make n 0. in
        let dss = Array.make n 0. in
        let elapsed = ref 0. in
        List.iteri
          (fun i (ph : Workload.phase) ->
            elapsed := !elapsed +. ph.Workload.duration_s;
            ends.(i) <- !elapsed;
            pfs.(i) <- ph.Workload.parallel_fraction;
            dss.(i) <- ph.Workload.demand_scale)
          phases;
        (ends, pfs, dss)
  in
  {
    config;
    platform;
    qos;
    rng = Prng.create config.seed;
    hot = { now = 0.; temperature_c = config.ambient_c };
    k;
    host = Platform_desc.host platform;
    total;
    offs;
    n_cores;
    opps;
    pw;
    freqs;
    volts;
    active = Array.copy n_cores;
    idle = Array.make total 0.;
    n_background = 0;
    faults = None;
    obs_active_faults = 0;
    a;
    b;
    ph_end;
    ph_pf;
    ph_ds;
    sens = Array.make (k + 2) 0.;
    dead = Array.make k false;
    cap = Array.make k 0.;
    bg = Array.make k 0.;
    rawtot = Array.make k 0.;
    pow_out = Array.make k 0.;
    ips_out = Array.make k 0.;
    raw_ips = Array.make total 0.;
    noisy_ips = Array.make total 0.;
    ips_snap = Prng.create config.seed;
    scratch_rng = Prng.create config.seed;
    ips_done = true;
  }

let platform soc = soc.platform
let num_clusters soc = soc.k
let host_cluster soc = soc.host
let total_cores soc = soc.total

let[@inline] check_cluster_pub soc i name =
  if i < 0 || i >= soc.k then
    invalid_arg (Printf.sprintf "Soc.%s: cluster %d not in 0..%d" name i
                   (soc.k - 1))

let opp_table soc i =
  check_cluster_pub soc i "opp_table";
  soc.opps.(i)

let cluster_cores soc i =
  check_cluster_pub soc i "cluster_cores";
  soc.n_cores.(i)
let set_faults soc faults = soc.faults <- faults
let faults soc = soc.faults

let fault_active soc pred =
  match soc.faults with None -> false | Some f -> pred f ~now:soc.hot.now

(* Is cluster [i] permanently dead right now?  Ground-truth helpers and
   actuators consult this; the tick kernel keeps its own per-tick mask so
   the fault-free path stays allocation-free. *)
let cluster_dead_now soc i =
  match soc.faults with
  | None -> false
  | Some f ->
      Faults.has_permanent f && Faults.cluster_dead f ~now:soc.hot.now ~cluster:i

let check_cluster soc i =
  if i < 0 || i >= soc.k then invalid_arg "Soc: cluster index out of range"

let frequency soc i =
  check_cluster soc i;
  soc.freqs.(i)

let set_frequency soc i f_mhz =
  check_cluster soc i;
  if fault_active soc Faults.dvfs_stuck || cluster_dead_now soc i then
    soc.freqs.(i)
  else begin
    let f = Opp.nearest soc.opps.(i) f_mhz in
    if f <> soc.freqs.(i) then begin
      soc.freqs.(i) <- f;
      soc.volts.(i) <- Opp.voltage soc.opps.(i) f
    end;
    f
  end

let set_active_cores soc i n =
  check_cluster soc i;
  if
    not (fault_active soc Faults.gating_refused || cluster_dead_now soc i)
  then soc.active.(i) <- max 1 (min soc.n_cores.(i) n)

let active_cores soc i =
  check_cluster soc i;
  soc.active.(i)

let set_idle_fraction soc ~core f =
  if core < 0 || core >= soc.total then invalid_arg "Soc.set_idle_fraction: core";
  soc.idle.(core) <- Float.max 0. (Float.min 0.9 f)

let idle_fraction soc ~core =
  if core < 0 || core >= soc.total then invalid_arg "Soc.idle_fraction: core";
  soc.idle.(core)

let set_background_tasks soc n =
  if n < 0 then invalid_arg "Soc.set_background_tasks: negative";
  soc.n_background <- n

let background_tasks soc = soc.n_background
let time soc = soc.hot.now
let temperature soc = soc.hot.temperature_c
let sensor_powers soc = soc.pow_out
let ips_totals soc = soc.ips_out

(* --- internal physics ------------------------------------------------ *)

(* Capacity (in core-fractions) of the active cores of a cluster after
   idle-cycle injection.  Cores of cluster i are
   [offs.(i), offs.(i+1)). *)
let capacity soc i =
  if cluster_dead_now soc i then 0.
  else begin
    let o = soc.offs.(i) in
    let c = ref 0. in
    for j = 0 to soc.active.(i) - 1 do
      c := !c +. (1. -. soc.idle.(o + j))
    done;
    !c
  end

(* HMP placement of background work: the scheduler fills the non-host
   clusters in index order, then spills onto the host where the spilled
   tasks time-share with the QoS application's threads CFS-style
   (proportional to runnable demand).  Writes per-cluster background
   utilizations (core-fractions) into [dst]. *)
let qos_threads = 4.

let background_placement_into soc dst =
  let demand =
    float_of_int soc.n_background *. soc.config.background_task_util
  in
  let remaining = ref demand in
  for i = 0 to soc.k - 1 do
    if i <> soc.host then begin
      let used = Float.min !remaining (capacity soc i) in
      dst.(i) <- used;
      remaining := !remaining -. used
    end
  done;
  let spill = !remaining in
  let host_cap = capacity soc soc.host in
  dst.(soc.host) <-
    (if spill <= 0. then 0.
     else begin
       (* Fair sharing on the host cluster: the QoS app's threads and the
          spilled background demand split capacity proportionally. *)
       let share = host_cap *. spill /. (qos_threads +. spill) in
       Float.min spill share
     end)

(* Effective cores available to the QoS application on its host
   cluster. *)
let qos_effective_cores soc =
  background_placement_into soc soc.bg;
  Float.max 0.1 (capacity soc soc.host -. soc.bg.(soc.host))

(* Slow sinusoidal scene-complexity variation. *)
let complexity_factor soc =
  1.
  +. soc.qos.Workload.complexity_wobble
     *. sin (2. *. Float.pi *. soc.hot.now /. 8.)

let current_phase soc = Workload.phase_at soc.qos soc.hot.now

let qos_ips_now soc =
  if cluster_dead_now soc soc.host then 0.
  else
  let phase = current_phase soc in
  let eff = qos_effective_cores soc in
  let f_ghz = float_of_int soc.freqs.(soc.host) /. 1000. in
  let core =
    f_ghz *. 1e9
    /. (soc.a.(soc.host)
       +. (soc.b.(soc.host)
          *. Perf_model.contention_factor ~busy_cores:eff
          *. f_ghz))
  in
  core
  *. Workload.amdahl_speedup
       ~parallel_fraction:phase.Workload.parallel_fraction ~cores:eff

let true_qos_rate soc =
  let phase = current_phase soc in
  qos_ips_now soc
  /. (soc.qos.Workload.instructions_per_heartbeat
     *. phase.Workload.demand_scale *. complexity_factor soc)

let utilization soc i =
  (* The QoS application saturates whatever host capacity it is given;
     background work saturates its stolen share too.  Non-host clusters
     run only background work. *)
  if i = soc.host then begin
    let cap = capacity soc i in
    if soc.active.(i) = 0 then 0.
    else Float.min 1. (cap /. float_of_int soc.active.(i))
  end
  else begin
    background_placement_into soc soc.bg;
    if soc.active.(i) = 0 then 0.
    else Float.min 1. (soc.bg.(i) /. float_of_int soc.active.(i))
  end

let cluster_power_now soc i =
  if cluster_dead_now soc i then 0.
  else
    Power_model.cluster_power soc.pw.(i) ~table:soc.opps.(i)
      ~freq_mhz:soc.freqs.(i) ~active_cores:soc.active.(i)
      ~total_cores:soc.n_cores.(i) ~utilization:(utilization soc i)

let true_chip_power soc =
  let p = ref (cluster_power_now soc 0) in
  for i = 1 to soc.k - 1 do
    p := !p +. cluster_power_now soc i
  done;
  !p

(* --- tick kernel ------------------------------------------------------ *)

(* Bound on |z| of a Box–Muller sample: u1 >= 2^-53, so
   |z| <= sqrt(2·53·ln 2) < 8.572.  When sigma·8.572 < 1 a zero raw
   reading stays exactly +0.0 after multiplicative noise (1 + g > 0), so
   the draw need not be materialized to know its result. *)
let z_bound = 8.572

(* The per-tick physics and sensor model, written as one monolithic body
   over unboxed locals and flat per-cluster arrays.  Every expression
   replicates the corresponding helper above token-for-token (same
   literals, same association), and on [Platform_desc.exynos5422] the
   cluster loops unroll to the exact float-op sequence — and the exact
   PRNG draw order — of the pre-description 2-cluster kernel, so the
   scenario CSV digests pin this refactor as behavior-preserving.
   Cross-module calls on this path either return unit/int or are
   replaced by cached state ([a]/[b], [volts], [ph_*]): without the
   optimizing native backend a cross-module float return boxes ~16 B per
   call. *)
let step_into soc ~dt obs =
  if dt <= 0. then invalid_arg "Soc.step: dt <= 0";
  let c = soc.config in
  let hot = soc.hot in
  hot.now <- hot.now +. dt;
  if Obs.enabled () then begin
    (* One simulated controller period advances the deterministic obs
       clock by one tick; this never feeds back into the physics. *)
    Obs.Clock.tick ();
    Obs.Counters.incr c_steps;
    match soc.faults with
    | None -> ()
    | Some f ->
        let active = Faults.active_count f ~now:hot.now in
        if active > 0 && soc.obs_active_faults = 0 then
          Obs.Decision_log.record (Obs.Decision_log.Fault { active; onset = true })
        else if active = 0 && soc.obs_active_faults > 0 then
          Obs.Decision_log.record
            (Obs.Decision_log.Fault { active = 0; onset = false });
        soc.obs_active_faults <- active
  end;
  let now = hot.now in
  let k = soc.k in
  let host = soc.host in
  (* Permanent-death mask for this tick.  Transient-only (and fault-free)
     schedules take the [false] constant without touching the mask — the
     allocation-free steady-state path and the pinned pre-FDIR digests
     are untouched.  A dead cluster has zero capacity (so the background
     scheduler routes around it), draws zero power (no dynamic, leak,
     gated or uncore terms — the rail is off), and executes nothing; its
     sensor channels read exact 0.0, which multiplicative noise maps to
     0.0 while advancing the PRNG stream exactly as a live reading
     would. *)
  let any_dead =
    match soc.faults with
    | Some f when Faults.has_permanent f ->
        let dead = soc.dead in
        let any = ref false in
        for i = 0 to k - 1 do
          let d = Faults.cluster_dead f ~now ~cluster:i in
          dead.(i) <- d;
          if d then any := true
        done;
        !any
    | _ -> false
  in
  (* Workload phase (flattened [Workload.phase_at]). *)
  let np = Array.length soc.ph_end in
  let pi = ref 0 in
  while !pi < np - 1 && not (now < soc.ph_end.(!pi)) do
    incr pi
  done;
  let ph_pf = soc.ph_pf.(!pi) in
  let ph_ds = soc.ph_ds.(!pi) in
  (* Cluster capacities after idle injection ([capacity]). *)
  let cap = soc.cap in
  for i = 0 to k - 1 do
    if any_dead && soc.dead.(i) then cap.(i) <- 0.
    else begin
      let o = soc.offs.(i) in
      let s = ref 0. in
      for j = 0 to soc.active.(i) - 1 do
        s := !s +. (1. -. soc.idle.(o + j))
      done;
      cap.(i) <- !s
    end
  done;
  (* HMP background placement ([background_placement_into]). *)
  let bg = soc.bg in
  let demand = float_of_int soc.n_background *. c.background_task_util in
  let remaining = ref demand in
  for i = 0 to k - 1 do
    if i <> host then begin
      let used = Float.min !remaining cap.(i) in
      bg.(i) <- used;
      remaining := !remaining -. used
    end
  done;
  let spill = !remaining in
  bg.(host) <-
    (if spill <= 0. then 0.
     else begin
       let share = cap.(host) *. spill /. (qos_threads +. spill) in
       Float.min spill share
     end);
  (* QoS application throughput ([qos_ips_now] with [Perf_model]'s
     core_ips/cluster_ips and [Workload.amdahl_speedup] inlined). *)
  let qos_eff = Float.max 0.1 (cap.(host) -. bg.(host)) in
  let f_host_ghz = float_of_int soc.freqs.(host) /. 1000. in
  let kappa_eff =
    1. +. (Perf_model.contention *. Float.max 0. (qos_eff -. 1.))
  in
  let core_ips_host =
    f_host_ghz *. 1e9
    /. (soc.a.(host) +. (soc.b.(host) *. kappa_eff *. f_host_ghz))
  in
  let amdahl = 1. /. (1. -. ph_pf +. (ph_pf /. qos_eff)) in
  let qos_ips =
    if any_dead && soc.dead.(host) then 0. else core_ips_host *. amdahl
  in
  (* True heartbeat rate ([true_qos_rate] with [complexity_factor]). *)
  let complexity =
    (* With no wobble the sine is multiplied by zero: 1. +. (0. *. s)
       is exactly 1. for any finite s, so the transcendental is free to
       skip. *)
    let wobble = soc.qos.Workload.complexity_wobble in
    if wobble = 0. then 1.
    else 1. +. (wobble *. sin (2. *. Float.pi *. now /. 8.))
  in
  let true_qos =
    qos_ips
    /. (soc.qos.Workload.instructions_per_heartbeat *. ph_ds *. complexity)
  in
  (* Cluster powers ([cluster_power_now] with [Power_model.cluster_power]
     inlined over the cached OPP voltages), staged in [sens] for the
     noise draws. *)
  let sens = soc.sens in
  for i = 0 to k - 1 do
    if any_dead && soc.dead.(i) then sens.(i) <- 0.
    else begin
      let util =
        if i = host then
          if soc.active.(i) = 0 then 0.
          else Float.min 1. (cap.(i) /. float_of_int soc.active.(i))
        else if soc.active.(i) = 0 then 0.
        else Float.min 1. (bg.(i) /. float_of_int soc.active.(i))
      in
      let p = soc.pw.(i) in
      let v = soc.volts.(i) in
      let f_ghz = float_of_int soc.freqs.(i) /. 1000. in
      let dynamic = p.Power_model.cdyn_w_per_v2ghz *. v *. v *. f_ghz *. util in
      let leak =
        p.Power_model.leak_w_per_core *. (v /. Power_model.v0) *. (v /. Power_model.v0)
      in
      sens.(i) <-
        (float_of_int soc.active.(i) *. (dynamic +. leak))
        +. (float_of_int (soc.n_cores.(i) - soc.active.(i))
           *. p.Power_model.gated_w_per_core)
        +. p.Power_model.uncore_w
    end
  done;
  (* First-order thermal RC: the die relaxes toward ambient + R_th * P
     with time constant tau. *)
  let p_total = ref sens.(0) in
  for i = 1 to k - 1 do
    p_total := !p_total +. sens.(i)
  done;
  let t_target = c.ambient_c +. (c.thermal_resistance *. !p_total) in
  let alpha = Float.min 1. (dt /. c.thermal_tau) in
  hot.temperature_c <- hot.temperature_c +. (alpha *. (t_target -. hot.temperature_c));
  (* Sensor noise, drawn in the fixed stream order cluster powers (index
     order), qos, per-core IPS (core order), temperature.  Values
     round-trip through [sens] (unboxed float-array traffic) so the
     unit-returning [Prng.noisy_into] can write them. *)
  sens.(k) <- true_qos;
  Prng.noisy_into soc.rng ~sigma:c.power_noise ~dst:sens ~pos:0 ~len:k;
  Prng.noisy_into soc.rng ~sigma:c.qos_noise ~dst:sens ~pos:k ~len:1;
  (* Noise-free per-core IPS ([per_core_ips_now] of the pre-kernel SoC):
     cluster throughput spread over active cores proportionally to their
     non-idled capacity; background work on the host runs at the core's
     native (contended) rate. *)
  let raw = soc.raw_ips in
  Array.fill raw 0 soc.total 0.;
  let kappa_host_cap =
    1. +. (Perf_model.contention *. Float.max 0. (cap.(host) -. 1.))
  in
  let bg_host_ips =
    bg.(host)
    *. (f_host_ghz *. 1e9
       /. (soc.a.(host) +. (soc.b.(host) *. kappa_host_cap *. f_host_ghz)))
  in
  let oh = soc.offs.(host) in
  for j = 0 to soc.active.(host) - 1 do
    let share =
      if cap.(host) > 0. then (1. -. soc.idle.(oh + j)) /. cap.(host) else 0.
    in
    raw.(oh + j) <- share *. (qos_ips +. bg_host_ips)
  done;
  let rawtot = soc.rawtot in
  for i = 0 to k - 1 do
    if i <> host then begin
      let busy = Float.max 1. bg.(i) in
      let kappa =
        1. +. (Perf_model.contention *. Float.max 0. (busy -. 1.))
      in
      let f_ghz = float_of_int soc.freqs.(i) /. 1000. in
      let total_i =
        bg.(i)
        *. (f_ghz *. 1e9 /. (soc.a.(i) +. (soc.b.(i) *. kappa *. f_ghz)))
      in
      rawtot.(i) <- total_i;
      let o = soc.offs.(i) in
      for j = 0 to soc.active.(i) - 1 do
        let share =
          if cap.(i) > 0. then (1. -. soc.idle.(o + j)) /. cap.(i) else 0.
        in
        raw.(o + j) <- share *. total_i
      done
    end
    else rawtot.(i) <- 0.
  done;
  (* The host cluster's per-core draws advance the stream without being
     materialized; {!per_core_ips}/{!host_ips} replay them from
     [ips_snap] if a caller asks.  Each non-host aggregate IS consumed
     every tick, so those draws happen for real (a materialized gaussian
     advances the state exactly as a skipped one) — unless every
     non-host raw total is exactly zero, where the sigma bound proves
     the noisy readings are zero too and all draws can be skipped. *)
  Prng.blit ~src:soc.rng ~dst:soc.ips_snap;
  soc.ips_done <- false;
  let sigma_ips = c.ips_noise in
  let ips_out = soc.ips_out in
  if sigma_ips <= 0. then
    for i = 0 to k - 1 do
      if i = host then ips_out.(i) <- 0.
      else begin
        let o = soc.offs.(i) in
        let s = ref raw.(o) in
        for j = 1 to soc.n_cores.(i) - 1 do
          s := !s +. raw.(o + j)
        done;
        ips_out.(i) <- !s
      end
    done
  else begin
    let all_zero = ref true in
    for i = 0 to k - 1 do
      if i <> host && not (rawtot.(i) = 0.) then all_zero := false
    done;
    if !all_zero && sigma_ips *. z_bound < 1. then begin
      for _ = 1 to soc.total do
        Prng.skip_gaussian soc.rng
      done;
      for i = 0 to k - 1 do
        ips_out.(i) <- 0.
      done
    end
    else
      for i = 0 to k - 1 do
        if i = host then begin
          for _ = 1 to soc.n_cores.(i) do
            Prng.skip_gaussian soc.rng
          done;
          ips_out.(i) <- 0.
        end
        else begin
          let o = soc.offs.(i) in
          let n = soc.n_cores.(i) in
          let nz = soc.noisy_ips in
          for j = 0 to n - 1 do
            nz.(o + j) <- raw.(o + j)
          done;
          Prng.noisy_into soc.rng ~sigma:sigma_ips ~dst:nz ~pos:o ~len:n;
          let s = ref nz.(o) in
          for j = 1 to n - 1 do
            s := !s +. nz.(o + j)
          done;
          ips_out.(i) <- !s
        end
      done
  end;
  (* Temperature sensor: last draw of the tick. *)
  sens.(k + 1) <- hot.temperature_c;
  Prng.noisy_into soc.rng ~sigma:c.temp_noise ~dst:sens ~pos:(k + 1) ~len:1;
  (* Sensor faults corrupt the readings only after every draw from the
     SoC's own noise stream, so an inactive (or absent) schedule leaves
     the no-fault trace bit-identical.  Power channels apply in
     descending cluster index, preserving the pre-description order
     (little, then big) on exynos5422. *)
  (match soc.faults with
  | None -> ()
  | Some f ->
      let now = hot.now in
      sens.(k) <- Faults.apply_qos f ~now sens.(k);
      for i = k - 1 downto 0 do
        sens.(i) <- Faults.apply_power f ~now ~cluster:i sens.(i)
      done;
      sens.(k + 1) <- Faults.apply_temp f ~now sens.(k + 1));
  obs.time <- hot.now;
  let pow_out = soc.pow_out in
  pow_out.(0) <- sens.(0);
  let chip = ref sens.(0) in
  for i = 1 to k - 1 do
    pow_out.(i) <- sens.(i);
    chip := !chip +. sens.(i)
  done;
  obs.chip_power <- !chip;
  obs.qos_rate <- sens.(k);
  obs.temperature_c <- sens.(k + 1)

let step soc ~dt =
  let obs = make_observation () in
  step_into soc ~dt obs;
  obs

(* --- deferred per-core readings --------------------------------------- *)

let materialize_ips soc =
  if not soc.ips_done then begin
    let nz = soc.noisy_ips in
    Array.blit soc.raw_ips 0 nz 0 soc.total;
    if soc.config.ips_noise > 0. then begin
      Prng.blit ~src:soc.ips_snap ~dst:soc.scratch_rng;
      Prng.noisy_into soc.scratch_rng ~sigma:soc.config.ips_noise ~dst:nz
        ~pos:0 ~len:soc.total
    end;
    soc.ips_done <- true
  end

let per_core_ips soc =
  materialize_ips soc;
  Array.copy soc.noisy_ips

let host_ips soc =
  materialize_ips soc;
  let o = soc.offs.(soc.host) in
  let s = ref soc.noisy_ips.(o) in
  for j = 1 to soc.n_cores.(soc.host) - 1 do
    s := !s +. soc.noisy_ips.(o + j)
  done;
  !s
