(** Scriptable fault injection for the simulated SoC.

    SPECTR's robustness claim — the synthesized supervisor keeps the
    system inside its safe envelope under disturbances the low-level
    controllers cannot anticipate — is only meaningful if something
    actually breaks.  This module models the runtime fault classes the
    related work (ControlPULP's PCS fault handling, the online-adaptive
    RM literature) treats as first-class events:

    - {e sensor faults}: a power or QoS sensor that drops to zero, gets
      stuck repeating its last pre-fault reading, or emits bursts of
      outlier spikes;
    - {e actuator faults}: a DVFS driver that silently ignores
      {!Soc.set_frequency}, or core gating requests that are refused;
    - {e heartbeat stall}: the QoS monitor stops receiving heartbeats
      while the application itself keeps running.

    A schedule is a list of {!injection}s, each active on a half-open
    time window [[start_s, stop_s)].  The schedule is attached to a
    {!Soc.t}; the SoC consults it inside its sensor and actuator paths,
    so resource managers stay completely oblivious — they just see bad
    data or ineffective commands, exactly as on real hardware.

    Fault injection is {e off by default} and side-effect free when
    inactive: spike noise draws from the schedule's own PRNG (never the
    SoC's), so a run with an empty — or never-active — schedule is
    bit-identical to a run with no schedule at all. *)

type sensor = Power | Power_cluster of int | Qos | Temp
(** Which sensor class a sensor fault hits.  [Power] is every cluster's
    power sensor at once (the classic correlated failure of a shared
    sense rail); [Power_cluster i] is cluster [i]'s sensor alone, so
    sensor-lie and dropout schedules compose on any cluster count.
    [Temp] is the die-temperature sensor. *)

type kind =
  | Dropout of sensor  (** The sensor reads 0 (dead line). *)
  | Stuck_at_last of sensor
      (** The sensor repeats its last pre-fault reading. *)
  | Spike_burst of sensor * float
      (** Outlier bursts: each sample is multiplied by the given factor
          with probability {!spike_probability}. *)
  | Dvfs_stuck  (** {!Soc.set_frequency} is silently ignored. *)
  | Gating_refused  (** {!Soc.set_active_cores} is silently ignored. *)
  | Heartbeat_stall
      (** The QoS monitor reports no progress while the app still runs
          (the {!Soc} zeroes the heartbeat-rate sensor; scenario drivers
          additionally stop delivering beats to their monitor). *)
  | Cluster_dead of int
      (** {e Permanent}: the cluster stops executing — zero capacity,
          zero power draw, zero per-core IPS; actuation requests against
          it are ignored.  Onset-only ([stop_s] must be [infinity]). *)
  | Sensor_dead of sensor
      (** {e Permanent}: the sensor reads 0 forever (a dead line that
          never heals, unlike the transient {!Dropout}).  Onset-only. *)
  | Dvfs_stuck_permanent
      (** {e Permanent}: {!Soc.set_frequency} is ignored forever — a
          latched DVFS rail, unlike the transient {!Dvfs_stuck}.
          Onset-only. *)

val spike_probability : float
(** Per-sample probability that a {!Spike_burst} sample actually spikes
    (0.3). *)

val is_permanent : kind -> bool
(** Permanent kinds never clear: their injection windows are onset-only
    ([stop_s = infinity]) and recovery requires reconfiguration (FDIR),
    not waiting. *)

type injection = { fault : kind; start_s : float; stop_s : float }

val injection : kind -> start_s:float -> stop_s:float -> injection
(** Convenience constructor.  Raises [Invalid_argument] with a precise
    message when the onset is negative or non-finite, the window has a
    non-positive duration ([stop_s <= start_s] or non-finite), or a
    {!Spike_burst} magnitude is not finite and positive.  Permanent
    kinds ({!is_permanent}) invert the window rule: they require
    [stop_s = infinity] and reject finite stops.  {!create} applies the
    same validation to every element, so a schedule that was constructed
    successfully never silently misapplies. *)

val permanent : kind -> start_s:float -> injection
(** [permanent k ~start_s] = [injection k ~start_s ~stop_s:infinity] —
    the onset-only constructor for permanent kinds. *)

type t

val create : ?seed:int64 -> injection list -> t
(** A fault schedule.  [seed] feeds the spike-noise PRNG only (default
    [0xFA17L]); all other fault transforms are deterministic. *)

val injections : t -> injection list

val is_active : t -> now:float -> kind -> bool
(** Is a fault of exactly this kind active at [now]? *)

val active_count : t -> now:float -> int
(** Number of currently-active injections (the [faults] trace column). *)

val dvfs_stuck : t -> now:float -> bool
(** True under a transient {!Dvfs_stuck} window or a latched
    {!Dvfs_stuck_permanent}. *)

val gating_refused : t -> now:float -> bool
val heartbeat_stalled : t -> now:float -> bool

val cluster_dead : t -> now:float -> cluster:int -> bool
(** Is cluster [cluster] permanently dead at [now]? *)

val any_cluster_dead : t -> now:float -> bool

val has_permanent : t -> bool
(** Does the schedule contain any permanent injection at all?  Used by
    the SoC to keep the empty/transient-only fast paths allocation-free
    and byte-identical to the pre-FDIR build. *)

(** {1 Sensor transforms}

    Called by {!Soc.step} on the would-be sensor readings.  Each
    function returns the reading as corrupted by whatever sensor faults
    are active, and records the last healthy reading so that
    [Stuck_at_last] has something to repeat. *)

val apply_power : t -> now:float -> cluster:int -> float -> float
(** [cluster] is the platform cluster index of the power sensor being
    read: it selects which last-healthy slot backs [Stuck_at_last] and
    which [Power_cluster] faults apply (plain [Power] faults hit every
    cluster).  Raises [Invalid_argument] outside [0, 16). *)

val apply_qos : t -> now:float -> float -> float

val apply_temp : t -> now:float -> float -> float
(** Temperature-sensor channel: previously the one sensor the fault
    layer could not reach, which made thermal-envelope chaos scenarios
    vacuous. *)

val shift : injection list -> by:float -> injection list
(** Shift every window [by] seconds (used to turn phase-relative
    schedules into absolute ones). *)

(** {1 Serialization}

    Stable textual forms used by the chaos-engine reproducer artifacts
    (see {!Spectr_chaos.Artifact}): kinds as e.g. ["dropout:power"],
    ["stuck:power2"] (cluster-2 power channel), ["spike:qos:5"],
    ["dvfs-stuck"], ["cluster-dead:1"], ["sensor-dead:power0"],
    ["dvfs-stuck-perm"]; injections as ["KIND@START/STOP"]
    with times printed at full precision (permanent kinds print and
    parse their stop as ["inf"]), so
    [injection_of_string (injection_to_string i) = i] for every valid
    injection. *)

val kind_to_string : kind -> string

val kind_of_string : string -> kind
(** Raises [Invalid_argument] on an unparseable or invalid kind. *)

val injection_to_string : injection -> string

val injection_of_string : string -> injection
(** Raises [Invalid_argument] on an unparseable string or an invalid
    window (same validation as {!injection}). *)
