type t = {
  name : string;
  freqs_mhz : int array;
  volts : float array;
  uniform_step_mhz : int; (* common gap when evenly spaced, else 0 *)
}

let create ~name ~points =
  if points = [] then invalid_arg "Opp.create: empty table";
  let freqs = Array.of_list (List.map fst points) in
  let volts = Array.of_list (List.map snd points) in
  Array.iteri
    (fun i f ->
      if i > 0 && f <= freqs.(i - 1) then
        invalid_arg "Opp.create: frequencies must ascend")
    freqs;
  Array.iter
    (fun v -> if v <= 0. then invalid_arg "Opp.create: voltage must be positive")
    volts;
  (* Real cpufreq tables (and both built-in ramps) are evenly spaced;
     detecting that once here lets [nearest]/[index] run in O(1) on the
     actuation path instead of scanning the table. *)
  let uniform_step_mhz =
    let n = Array.length freqs in
    if n < 2 then 0
    else begin
      let step = freqs.(1) - freqs.(0) in
      let ok = ref true in
      for i = 2 to n - 1 do
        if freqs.(i) - freqs.(i - 1) <> step then ok := false
      done;
      if !ok then step else 0
    end
  in
  { name; freqs_mhz = freqs; volts; uniform_step_mhz }

(* Linear voltage ramps approximating the Exynos 5422 tables. *)
let ramp ~name ~lo_mhz ~hi_mhz ~lo_v ~hi_v =
  let n = ((hi_mhz - lo_mhz) / 100) + 1 in
  let points =
    List.init n (fun i ->
        let f = lo_mhz + (i * 100) in
        let frac = float_of_int (f - lo_mhz) /. float_of_int (hi_mhz - lo_mhz) in
        (f, lo_v +. ((hi_v -. lo_v) *. frac)))
  in
  create ~name ~points

let big = ramp ~name:"big-a15" ~lo_mhz:200 ~hi_mhz:2000 ~lo_v:0.90 ~hi_v:1.3625
let little = ramp ~name:"little-a7" ~lo_mhz:200 ~hi_mhz:1400 ~lo_v:0.90 ~hi_v:1.25

let min_freq t = t.freqs_mhz.(0)
let max_freq t = t.freqs_mhz.(Array.length t.freqs_mhz - 1)
let num_points t = Array.length t.freqs_mhz

let nearest_scan t f_mhz =
  let best = ref t.freqs_mhz.(0) in
  let best_d = ref (abs_float (float_of_int !best -. f_mhz)) in
  Array.iter
    (fun f ->
      let d = abs_float (float_of_int f -. f_mhz) in
      if d < !best_d then begin
        best := f;
        best_d := d
      end)
    t.freqs_mhz;
  !best

let nearest t f_mhz =
  let n = Array.length t.freqs_mhz in
  if t.uniform_step_mhz > 0 && n > 1 && Float.is_finite f_mhz then begin
    (* The nearest grid point is the floor cell's endpoint or its
       successor; comparing those two distances reproduces the scan's
       tie-break (strict [<] keeps the earlier, i.e. lower, frequency). *)
    let lo = float_of_int t.freqs_mhz.(0) in
    let step = float_of_int t.uniform_step_mhz in
    let k = int_of_float (floor ((f_mhz -. lo) /. step)) in
    let k = if k < 0 then 0 else if k > n - 2 then n - 2 else k in
    let fk = t.freqs_mhz.(k) in
    let fk1 = t.freqs_mhz.(k + 1) in
    if abs_float (float_of_int fk -. f_mhz)
       <= abs_float (float_of_int fk1 -. f_mhz)
    then fk
    else fk1
  end
  else nearest_scan t f_mhz

let index t f =
  let not_an_opp () =
    invalid_arg (Printf.sprintf "Opp.index: %d MHz not an OPP of %s" f t.name)
  in
  if t.uniform_step_mhz > 0 then begin
    let off = f - t.freqs_mhz.(0) in
    let k = off / t.uniform_step_mhz in
    if
      off >= 0
      && off mod t.uniform_step_mhz = 0
      && k < Array.length t.freqs_mhz
    then k
    else not_an_opp ()
  end
  else begin
    let rec find i =
      if i >= Array.length t.freqs_mhz then not_an_opp ()
      else if t.freqs_mhz.(i) = f then i
      else find (i + 1)
    in
    find 0
  end

let voltage t f = t.volts.(index t f)
