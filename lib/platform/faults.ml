open Spectr_linalg

type sensor = Power | Power_cluster of int | Qos | Temp

(* How many per-cluster stuck-at slots the schedule carries; matches
   [Platform_desc]'s 16-cluster ceiling. *)
let max_clusters = 16

type kind =
  | Dropout of sensor
  | Stuck_at_last of sensor
  | Spike_burst of sensor * float
  | Dvfs_stuck
  | Gating_refused
  | Heartbeat_stall
  | Cluster_dead of int
  | Sensor_dead of sensor
  | Dvfs_stuck_permanent

let spike_probability = 0.3

let is_permanent = function
  | Cluster_dead _ | Sensor_dead _ | Dvfs_stuck_permanent -> true
  | Dropout _ | Stuck_at_last _ | Spike_burst _ | Dvfs_stuck | Gating_refused
  | Heartbeat_stall ->
      false

let validate_sensor = function
  | Power_cluster i when i < 0 || i >= max_clusters ->
      invalid_arg
        (Printf.sprintf "Faults: power channel %d not in 0..%d" i
           (max_clusters - 1))
  | _ -> ()

let validate_kind = function
  | Spike_burst (s, mag) ->
      validate_sensor s;
      if not (Float.is_finite mag && mag > 0.) then
        invalid_arg
          (Printf.sprintf "Faults: spike magnitude %g not finite and positive"
             mag)
  | Dropout s | Stuck_at_last s | Sensor_dead s -> validate_sensor s
  | Cluster_dead i when i < 0 || i >= max_clusters ->
      invalid_arg
        (Printf.sprintf "Faults: dead cluster %d not in 0..%d" i
           (max_clusters - 1))
  | _ -> ()

type injection = { fault : kind; start_s : float; stop_s : float }

(* Permanent faults are onset-only: their window never closes
   ([stop_s = infinity], which [window_active]'s [now < stop_s] handles
   without a special case and which %.17g/"float_of_string" round-trip
   as "inf").  Transient faults keep the original finite-window rule;
   giving a permanent kind a finite stop (or a transient kind an
   infinite one) is a schedule bug and rejected loudly. *)
let injection fault ~start_s ~stop_s =
  validate_kind fault;
  if not (Float.is_finite start_s) || start_s < 0. then
    invalid_arg
      (Printf.sprintf "Faults.injection: onset %g negative or not finite"
         start_s);
  if is_permanent fault then begin
    if stop_s <> Float.infinity then
      invalid_arg
        (Printf.sprintf
           "Faults.injection: permanent fault %s requires stop_s = inf, got %g"
           (match fault with
           | Cluster_dead i -> Printf.sprintf "cluster-dead:%d" i
           | Sensor_dead _ -> "sensor-dead"
           | _ -> "dvfs-stuck-perm")
           stop_s)
  end
  else if not (Float.is_finite stop_s) || stop_s <= start_s then
    invalid_arg
      (Printf.sprintf
         "Faults.injection: window [%g, %g) has non-positive duration" start_s
         stop_s);
  { fault; start_s; stop_s }

let permanent fault ~start_s = injection fault ~start_s ~stop_s:Float.infinity

type t = {
  injections : injection list;
  rng : Prng.t; (* spike noise only; independent of the SoC's stream *)
  last_power : float array; (* per-cluster stuck-at slots *)
  mutable last_qos : float;
  mutable last_temp : float;
}

let create ?(seed = 0xFA17L) injections =
  List.iter
    (fun i -> ignore (injection i.fault ~start_s:i.start_s ~stop_s:i.stop_s))
    injections;
  {
    injections;
    rng = Prng.create seed;
    last_power = Array.make max_clusters 0.;
    last_qos = 0.;
    last_temp = 0.;
  }

let injections t = t.injections
let window_active i ~now = now >= i.start_s && now < i.stop_s

let is_active t ~now fault =
  List.exists
    (fun i -> i.fault = fault && window_active i ~now)
    t.injections

let active_count t ~now =
  List.length (List.filter (window_active ~now) t.injections)

let active_on t ~now pred =
  List.exists (fun i -> window_active i ~now && pred i.fault) t.injections

let dvfs_stuck t ~now =
  active_on t ~now (fun f -> f = Dvfs_stuck || f = Dvfs_stuck_permanent)

let gating_refused t ~now = active_on t ~now (fun f -> f = Gating_refused)
let heartbeat_stalled t ~now = active_on t ~now (fun f -> f = Heartbeat_stall)
let cluster_dead t ~now ~cluster = active_on t ~now (fun f -> f = Cluster_dead cluster)

let any_cluster_dead t ~now =
  active_on t ~now (function Cluster_dead _ -> true | _ -> false)

let has_permanent t = List.exists (fun i -> is_permanent i.fault) t.injections

(* Sensor transforms compose in severity order: a spike burst corrupts a
   live reading, stuck-at freezes it, dropout kills it outright.
   [matches] decides whether a fault's sensor designator hits this
   channel — a plain [Power] fault hits every cluster's power sensor, a
   [Power_cluster i] fault only cluster [i]'s. *)
let apply_sensor t ~now ~matches ~get_last ~set_last v =
  let active pred = active_on t ~now pred in
  let spiked =
    List.fold_left
      (fun v i ->
        match i.fault with
        | Spike_burst (s, mag) when matches s && window_active i ~now ->
            if Prng.float t.rng < spike_probability then v *. mag else v
        | _ -> v)
      v t.injections
  in
  if active (function Dropout s | Sensor_dead s -> matches s | _ -> false)
  then 0.
  else if active (function Stuck_at_last s -> matches s | _ -> false) then
    get_last ()
  else begin
    set_last spiked;
    spiked
  end

(* The [] fast paths keep the empty-schedule tick kernel allocation-free:
   [apply_sensor] builds get/set closures and a fold closure per call,
   which is fine under active chaos campaigns but would dominate the
   steady-state budget.  With no injections the slow path reduces to
   "record last healthy reading, return v", which is what each fast path
   does directly. *)

let apply_power t ~now ~cluster v =
  if cluster < 0 || cluster >= max_clusters then
    invalid_arg "Faults.apply_power: cluster out of range";
  match t.injections with
  | [] ->
      t.last_power.(cluster) <- v;
      v
  | _ :: _ ->
      apply_sensor t ~now
        ~matches:(fun s -> s = Power || s = Power_cluster cluster)
        ~get_last:(fun () -> t.last_power.(cluster))
        ~set_last:(fun v -> t.last_power.(cluster) <- v)
        v

let apply_qos t ~now v =
  match t.injections with
  | [] ->
      t.last_qos <- v;
      v
  | _ :: _ ->
      let v =
        apply_sensor t ~now
          ~matches:(fun s -> s = Qos)
          ~get_last:(fun () -> t.last_qos)
          ~set_last:(fun v -> t.last_qos <- v)
          v
      in
      if heartbeat_stalled t ~now then 0. else v

let apply_temp t ~now v =
  match t.injections with
  | [] ->
      t.last_temp <- v;
      v
  | _ :: _ ->
      apply_sensor t ~now
        ~matches:(fun s -> s = Temp)
        ~get_last:(fun () -> t.last_temp)
        ~set_last:(fun v -> t.last_temp <- v)
        v

let shift injections ~by =
  List.map
    (fun i -> { i with start_s = i.start_s +. by; stop_s = i.stop_s +. by })
    injections

(* --- textual serialization (reproducer artifacts) -------------------- *)

let sensor_to_string = function
  | Power -> "power"
  | Power_cluster i -> "power" ^ string_of_int i
  | Qos -> "qos"
  | Temp -> "temp"

let sensor_of_string = function
  | "power" -> Power
  | "qos" -> Qos
  | "temp" -> Temp
  | s ->
      let bad () = invalid_arg (Printf.sprintf "Faults.sensor_of_string: %S" s) in
      if String.length s > 5 && String.sub s 0 5 = "power" then
        match int_of_string_opt (String.sub s 5 (String.length s - 5)) with
        | Some i when i >= 0 && i < max_clusters -> Power_cluster i
        | _ -> bad ()
      else bad ()

(* %.17g round-trips every finite double exactly. *)
let flt v = Printf.sprintf "%.17g" v

let kind_to_string = function
  | Dropout s -> "dropout:" ^ sensor_to_string s
  | Stuck_at_last s -> "stuck:" ^ sensor_to_string s
  | Spike_burst (s, mag) ->
      Printf.sprintf "spike:%s:%s" (sensor_to_string s) (flt mag)
  | Dvfs_stuck -> "dvfs-stuck"
  | Gating_refused -> "gating-refused"
  | Heartbeat_stall -> "heartbeat-stall"
  | Cluster_dead i -> "cluster-dead:" ^ string_of_int i
  | Sensor_dead s -> "sensor-dead:" ^ sensor_to_string s
  | Dvfs_stuck_permanent -> "dvfs-stuck-perm"

let float_field ~what s =
  match float_of_string_opt s with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Faults: bad %s %S" what s)

let kind_of_string s =
  let kind =
    match String.split_on_char ':' s with
    | [ "dropout"; sensor ] -> Dropout (sensor_of_string sensor)
    | [ "stuck"; sensor ] -> Stuck_at_last (sensor_of_string sensor)
    | [ "spike"; sensor; mag ] ->
        Spike_burst (sensor_of_string sensor, float_field ~what:"magnitude" mag)
    | [ "dvfs-stuck" ] -> Dvfs_stuck
    | [ "gating-refused" ] -> Gating_refused
    | [ "heartbeat-stall" ] -> Heartbeat_stall
    | [ "cluster-dead"; i ] -> (
        match int_of_string_opt i with
        | Some i -> Cluster_dead i
        | None -> invalid_arg (Printf.sprintf "Faults: bad cluster %S" i))
    | [ "sensor-dead"; sensor ] -> Sensor_dead (sensor_of_string sensor)
    | [ "dvfs-stuck-perm" ] -> Dvfs_stuck_permanent
    | _ -> invalid_arg (Printf.sprintf "Faults.kind_of_string: %S" s)
  in
  validate_kind kind;
  kind

let injection_to_string i =
  Printf.sprintf "%s@%s/%s" (kind_to_string i.fault) (flt i.start_s)
    (flt i.stop_s)

let injection_of_string s =
  match String.index_opt s '@' with
  | None -> invalid_arg (Printf.sprintf "Faults.injection_of_string: %S" s)
  | Some at -> (
      let kind = kind_of_string (String.sub s 0 at) in
      let window = String.sub s (at + 1) (String.length s - at - 1) in
      match String.split_on_char '/' window with
      | [ start_s; stop_s ] ->
          injection kind
            ~start_s:(float_field ~what:"onset" start_s)
            ~stop_s:(float_field ~what:"stop" stop_s)
      | _ -> invalid_arg (Printf.sprintf "Faults.injection_of_string: %S" s))
