(** The simulated Exynos-class big.LITTLE SoC.

    Two quad-core clusters sharing memory: an out-of-order Big cluster
    hosting the (pinned) QoS application's four threads, and an in-order
    Little cluster absorbing background work, mirroring the experimental
    setup of Figure 10.  Actuators and sensors match the ODROID-XU3:
    per-cluster DVFS and active-core count as control inputs, per-cluster
    power sensors and a Heartbeats QoS monitor as measured outputs, plus
    per-core PMU (IPS) readings and per-core idle-cycle injection for the
    large-controller experiments of Figures 4/5/15.

    The simulator advances in discrete steps ({!step}); all noise comes
    from an explicit seed, so runs are reproducible. *)

type cluster = Big | Little

type config = {
  seed : int64;
  power_noise : float;  (** Relative σ of the power sensors (default 0.015). *)
  qos_noise : float;  (** Relative σ of heartbeat-rate measurement (0.02). *)
  ips_noise : float;  (** Relative σ of the PMU IPS readings (0.01). *)
  background_task_util : float;
      (** Core-fraction demanded by each background task (0.6). *)
  ambient_c : float;  (** Ambient temperature (30 °C). *)
  thermal_resistance : float;
      (** Junction-to-ambient thermal resistance, °C per watt (8):
          5.4 W sustained drives the die toward ≈ 73 °C. *)
  thermal_tau : float;  (** First-order thermal time constant, s (3). *)
}

val default_config : config

type observation = {
  time : float;  (** Simulated seconds since creation. *)
  big_power : float;  (** Noisy Big-cluster power sensor (W). *)
  little_power : float;
  chip_power : float;  (** Sum of the two cluster sensors. *)
  qos_rate : float;  (** Noisy heartbeat rate of the QoS app (HB/s or FPS). *)
  big_ips : float;  (** Aggregate Big-cluster instructions/s. *)
  little_ips : float;
  per_core_ips : float array;  (** 8 entries: Big cores 0–3, Little 4–7. *)
  temperature_c : float;  (** Noisy die-temperature sensor (°C). *)
}

type t

val create : ?config:config -> qos:Workload.t -> unit -> t

(** {1 Actuators (control inputs)} *)

val set_frequency : t -> cluster -> float -> int
(** Request a cluster frequency in MHz; the value is quantized to the
    nearest OPP, which is returned.  Under an active {!Faults.Dvfs_stuck}
    injection the request is ignored and the {e current} frequency is
    returned — callers must treat the return value as the ground truth
    of what was applied. *)

val frequency : t -> cluster -> int

val set_active_cores : t -> cluster -> int -> unit
(** Number of un-gated cores, clamped to [1, 4]. *)

val active_cores : t -> cluster -> int

val set_idle_fraction : t -> core:int -> float -> unit
(** Per-core idle-cycle injection, core ∈ [0,8), fraction clamped to
    [0, 0.9] — the fine-grained actuator of the 10×10 system (Fig. 4). *)

val idle_fraction : t -> core:int -> float

val set_background_tasks : t -> int -> unit
(** Number of single-threaded background tasks currently running
    (placed by the HMP scheduler: Little cluster first, spilling onto
    Big where they steal capacity from the QoS app). *)

val background_tasks : t -> int

(** {1 Fault injection} *)

val set_faults : t -> Faults.t option -> unit
(** Attach (or clear) a fault schedule.  While a {!Faults.Dvfs_stuck}
    ([Gating_refused]) injection is active, {!set_frequency}
    ({!set_active_cores}) is silently ignored — {!set_frequency} returns
    the unchanged current frequency, exactly what a readback would show.
    Sensor faults corrupt the {!observation} fields of {!step}.  [None]
    (the default) and a schedule with no active window are
    bit-identical: fault machinery never touches the SoC's noise
    stream. *)

val faults : t -> Faults.t option

(** {1 Stepping} *)

val step : t -> dt:float -> observation
(** Advance simulated time by [dt] seconds (one controller period) and
    return the sensor readings for that period.  Raises on [dt <= 0]. *)

val time : t -> float

val true_qos_rate : t -> float
(** Noise-free QoS rate at the current actuator settings (for tests and
    ground-truth comparisons; the managers must use {!observation}s). *)

val true_chip_power : t -> float
(** Noise-free total power at the current settings. *)

val temperature : t -> float
(** Noise-free die temperature (°C).  A first-order RC response to chip
    power: the physical variable behind the paper's "thermal emergency"
    phases, letting experiments derive the power envelope from
    temperature instead of scripting it. *)
