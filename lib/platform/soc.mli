(** The simulated many-core SoC, driven by a {!Platform_desc.t}.

    A platform is a set of named core clusters sharing memory; one of
    them (the {e host} cluster) runs the pinned QoS application's
    threads, the others absorb background work, mirroring the
    experimental setup of Figure 10.  The default description is
    {!Platform_desc.exynos5422} — the paper's ODROID-XU3 with its
    out-of-order Big (host) and in-order Little clusters — on which this
    module is bit-identical to the pre-description 2-cluster simulator.
    Actuators and sensors match the hardware: per-cluster DVFS and
    active-core count as control inputs, per-cluster power sensors and a
    Heartbeats QoS monitor as measured outputs, plus per-core PMU (IPS)
    readings and per-core idle-cycle injection for the large-controller
    experiments of Figures 4/5/15.

    Clusters are addressed by their description index ([0 ..
    num_clusters-1], e.g. 0 = big and 1 = little on exynos5422); cores
    by their global index ([Platform_desc.core_offset] gives each
    cluster's first core).

    The simulator advances in discrete steps ({!step_into}/{!step}); all
    noise comes from an explicit seed, so runs are reproducible.  The
    steady-state tick path is allocation-free: {!step_into} writes a
    caller-owned {!observation} and the SoC-owned per-cluster arrays
    ({!sensor_powers}, {!ips_totals}) in place (DESIGN.md §13). *)

type config = {
  seed : int64;
  power_noise : float;  (** Relative σ of the power sensors (default 0.015). *)
  qos_noise : float;  (** Relative σ of heartbeat-rate measurement (0.02). *)
  ips_noise : float;  (** Relative σ of the PMU IPS readings (0.05). *)
  temp_noise : float;
      (** Relative σ of the die-temperature sensor (0.01 — the value that
          was previously hard-coded in the step function). *)
  background_task_util : float;
      (** Core-fraction demanded by each background task (0.6). *)
  ambient_c : float;  (** Ambient temperature (30 °C). *)
  thermal_resistance : float;
      (** Junction-to-ambient thermal resistance, °C per watt (8):
          5.4 W sustained drives the die toward ≈ 73 °C. *)
  thermal_tau : float;  (** First-order thermal time constant, s (3). *)
}

val default_config : config
(** Exynos5422 noise and thermal parameters. *)

val config_of : Platform_desc.t -> config
(** [default_config] with the description's thermal triple spliced in —
    the right base when creating a SoC on a non-default platform
    ([config_of Platform_desc.exynos5422 = default_config]). *)

type observation = {
  mutable time : float;  (** Simulated seconds since creation. *)
  mutable chip_power : float;  (** Sum of all cluster power sensors. *)
  mutable qos_rate : float;
      (** Noisy heartbeat rate of the QoS app (HB/s or FPS). *)
  mutable temperature_c : float;  (** Noisy die-temperature sensor (°C). *)
}
(** All fields are mutable floats so the record is flat and {!step_into}
    fills it without allocating.  Per-cluster readings live in the
    SoC-owned {!sensor_powers}/{!ips_totals} arrays (an array field here
    would make the record a mixed block and box every float store);
    per-core PMU readings are pull-based via {!per_core_ips} and
    {!host_ips}, whose noise draws the hot path skips and replays on
    demand. *)

val make_observation : unit -> observation
(** A zeroed observation buffer for {!step_into}. *)

type t

val create : ?config:config -> ?platform:Platform_desc.t -> qos:Workload.t -> unit -> t
(** [platform] defaults to {!Platform_desc.exynos5422}.  When [config]
    is omitted it defaults to [config_of platform]; an explicit [config]
    wins entirely (including its thermal parameters). *)

val platform : t -> Platform_desc.t
val num_clusters : t -> int
val host_cluster : t -> int
(** Index of the cluster hosting the QoS application. *)

val total_cores : t -> int

val opp_table : t -> int -> Opp.t
(** DVFS table of the given cluster (for command sanitization and
    readback checks).  Raises [Invalid_argument] on a bad index. *)

val cluster_cores : t -> int -> int
(** Physical core count of the given cluster. *)

(** {1 Actuators (control inputs)} *)

val set_frequency : t -> int -> float -> int
(** [set_frequency soc cluster f_mhz] requests a cluster frequency in
    MHz; the value is quantized to the nearest OPP of that cluster's
    table, which is returned.  Under an active {!Faults.Dvfs_stuck}
    injection the request is ignored and the {e current} frequency is
    returned — callers must treat the return value as the ground truth
    of what was applied. *)

val frequency : t -> int -> int

val set_active_cores : t -> int -> int -> unit
(** Number of un-gated cores, clamped to [1, cores-of-cluster]. *)

val active_cores : t -> int -> int

val set_idle_fraction : t -> core:int -> float -> unit
(** Per-core idle-cycle injection, core ∈ [0, total_cores), fraction
    clamped to [0, 0.9] — the fine-grained actuator of the 10×10 system
    (Fig. 4). *)

val idle_fraction : t -> core:int -> float

val set_background_tasks : t -> int -> unit
(** Number of single-threaded background tasks currently running
    (placed by the HMP scheduler: non-host clusters in index order,
    spilling onto the host where they steal capacity from the QoS
    app). *)

val background_tasks : t -> int

(** {1 Fault injection} *)

val set_faults : t -> Faults.t option -> unit
(** Attach (or clear) a fault schedule.  While a {!Faults.Dvfs_stuck}
    ([Gating_refused]) injection is active, {!set_frequency}
    ({!set_active_cores}) is silently ignored — {!set_frequency} returns
    the unchanged current frequency, exactly what a readback would show.
    Sensor faults corrupt the {!observation} fields of {!step_into}.
    [None] (the default) and a schedule with no active window are
    bit-identical: fault machinery never touches the SoC's noise
    stream. *)

val faults : t -> Faults.t option

(** {1 Stepping} *)

val step_into : t -> dt:float -> observation -> unit
(** Advance simulated time by [dt] seconds (one controller period) and
    write the sensor readings for that period into the given buffer and
    the SoC-owned per-cluster arrays.  Allocation-free in steady state
    (no faults attached, observability disabled).  Raises on
    [dt <= 0]. *)

val step : t -> dt:float -> observation
(** {!step_into} into a freshly allocated observation. *)

val time : t -> float

val sensor_powers : t -> float array
(** Per-cluster noisy power-sensor readings of the last step, indexed by
    cluster.  The returned array is owned by the SoC and overwritten on
    the next step — read, don't keep or mutate. *)

val ips_totals : t -> float array
(** Per-cluster aggregate noisy IPS of the last step, indexed by
    cluster.  The host cluster's entry is 0 — its per-core draws are
    skipped on the hot path; use {!host_ips} for the replayed value.
    Same ownership rules as {!sensor_powers}. *)

val host_ips : t -> float
(** Aggregate host-cluster instructions/s as of the last step — the
    noisy reading whose draws the hot path skipped, replayed from the
    saved generator state on demand.  Zero before the first step. *)

val per_core_ips : t -> float array
(** Per-core PMU (IPS) readings as of the last step, [total_cores]
    entries in global core order.  Fresh array per call; replayed on
    demand like {!host_ips}. *)

val true_qos_rate : t -> float
(** Noise-free QoS rate at the current actuator settings (for tests and
    ground-truth comparisons; the managers must use {!observation}s). *)

val true_chip_power : t -> float
(** Noise-free total power at the current settings. *)

val cluster_dead_now : t -> int -> bool
(** Ground truth: is cluster [i] under an active {!Faults.Cluster_dead}
    injection right now?  A dead cluster has zero capacity (background
    work routes around it), draws zero power, reads exact 0.0 on its
    power sensor, and ignores actuation; a dead {e host} cluster also
    zeroes the QoS rate.  For invariant monitors and tests — managers
    must infer death from sensors (see [Spectr.Fdir]). *)

val temperature : t -> float
(** Noise-free die temperature (°C).  A first-order RC response to chip
    power: the physical variable behind the paper's "thermal emergency"
    phases, letting experiments derive the power envelope from
    temperature instead of scripting it. *)
