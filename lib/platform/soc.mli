(** The simulated Exynos-class big.LITTLE SoC.

    Two quad-core clusters sharing memory: an out-of-order Big cluster
    hosting the (pinned) QoS application's four threads, and an in-order
    Little cluster absorbing background work, mirroring the experimental
    setup of Figure 10.  Actuators and sensors match the ODROID-XU3:
    per-cluster DVFS and active-core count as control inputs, per-cluster
    power sensors and a Heartbeats QoS monitor as measured outputs, plus
    per-core PMU (IPS) readings and per-core idle-cycle injection for the
    large-controller experiments of Figures 4/5/15.

    The simulator advances in discrete steps ({!step_into}/{!step}); all
    noise comes from an explicit seed, so runs are reproducible.  The
    steady-state tick path is allocation-free: {!step_into} writes a
    caller-owned {!observation} in place (DESIGN.md §13). *)

type cluster = Big | Little

type config = {
  seed : int64;
  power_noise : float;  (** Relative σ of the power sensors (default 0.015). *)
  qos_noise : float;  (** Relative σ of heartbeat-rate measurement (0.02). *)
  ips_noise : float;  (** Relative σ of the PMU IPS readings (0.05). *)
  temp_noise : float;
      (** Relative σ of the die-temperature sensor (0.01 — the value that
          was previously hard-coded in the step function). *)
  background_task_util : float;
      (** Core-fraction demanded by each background task (0.6). *)
  ambient_c : float;  (** Ambient temperature (30 °C). *)
  thermal_resistance : float;
      (** Junction-to-ambient thermal resistance, °C per watt (8):
          5.4 W sustained drives the die toward ≈ 73 °C. *)
  thermal_tau : float;  (** First-order thermal time constant, s (3). *)
}

val default_config : config

type observation = {
  mutable time : float;  (** Simulated seconds since creation. *)
  mutable big_power : float;  (** Noisy Big-cluster power sensor (W). *)
  mutable little_power : float;
  mutable chip_power : float;  (** Sum of the two cluster sensors. *)
  mutable qos_rate : float;
      (** Noisy heartbeat rate of the QoS app (HB/s or FPS). *)
  mutable little_ips : float;  (** Aggregate Little-cluster instructions/s. *)
  mutable temperature_c : float;  (** Noisy die-temperature sensor (°C). *)
}
(** All fields are mutable floats so the record is flat and {!step_into}
    fills it without allocating.  Per-core PMU readings (and the Big
    aggregate) moved out of the record to the pull-based {!per_core_ips}
    and {!big_ips}: no per-tick consumer reads them, so the hot path
    skips their noise draws and replays the stream on demand. *)

val make_observation : unit -> observation
(** A zeroed observation buffer for {!step_into}. *)

type t

val create : ?config:config -> qos:Workload.t -> unit -> t

(** {1 Actuators (control inputs)} *)

val set_frequency : t -> cluster -> float -> int
(** Request a cluster frequency in MHz; the value is quantized to the
    nearest OPP, which is returned.  Under an active {!Faults.Dvfs_stuck}
    injection the request is ignored and the {e current} frequency is
    returned — callers must treat the return value as the ground truth
    of what was applied. *)

val frequency : t -> cluster -> int

val set_active_cores : t -> cluster -> int -> unit
(** Number of un-gated cores, clamped to [1, 4]. *)

val active_cores : t -> cluster -> int

val set_idle_fraction : t -> core:int -> float -> unit
(** Per-core idle-cycle injection, core ∈ [0,8), fraction clamped to
    [0, 0.9] — the fine-grained actuator of the 10×10 system (Fig. 4). *)

val idle_fraction : t -> core:int -> float

val set_background_tasks : t -> int -> unit
(** Number of single-threaded background tasks currently running
    (placed by the HMP scheduler: Little cluster first, spilling onto
    Big where they steal capacity from the QoS app). *)

val background_tasks : t -> int

(** {1 Fault injection} *)

val set_faults : t -> Faults.t option -> unit
(** Attach (or clear) a fault schedule.  While a {!Faults.Dvfs_stuck}
    ([Gating_refused]) injection is active, {!set_frequency}
    ({!set_active_cores}) is silently ignored — {!set_frequency} returns
    the unchanged current frequency, exactly what a readback would show.
    Sensor faults corrupt the {!observation} fields of {!step_into}.
    [None] (the default) and a schedule with no active window are
    bit-identical: fault machinery never touches the SoC's noise
    stream. *)

val faults : t -> Faults.t option

(** {1 Stepping} *)

val step_into : t -> dt:float -> observation -> unit
(** Advance simulated time by [dt] seconds (one controller period) and
    write the sensor readings for that period into the given buffer.
    Allocation-free in steady state (no faults attached, observability
    disabled).  Raises on [dt <= 0]. *)

val step : t -> dt:float -> observation
(** {!step_into} into a freshly allocated observation. *)

val time : t -> float

val big_ips : t -> float
(** Aggregate Big-cluster instructions/s as of the last step — the same
    noisy reading the observation record used to carry, replayed from
    the saved generator state on demand.  Zero before the first step. *)

val per_core_ips : t -> float array
(** Per-core PMU (IPS) readings as of the last step, 8 entries: Big
    cores 0–3, Little 4–7.  Fresh array per call; replayed on demand
    like {!big_ips}. *)

val true_qos_rate : t -> float
(** Noise-free QoS rate at the current actuator settings (for tests and
    ground-truth comparisons; the managers must use {!observation}s). *)

val true_chip_power : t -> float
(** Noise-free total power at the current settings. *)

val temperature : t -> float
(** Noise-free die temperature (°C).  A first-order RC response to chip
    power: the physical variable behind the paper's "thermal emergency"
    phases, letting experiments derive the power envelope from
    temperature instead of scripting it. *)
