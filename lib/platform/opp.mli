(** DVFS operating performance points (OPPs).

    Voltage/frequency tables modelled after the Exynos 5422's cpufreq
    tables: the Little (Cortex-A7) cluster spans 200–1400 MHz, the Big
    (Cortex-A15) cluster 200–2000 MHz, both in 100 MHz steps, with supply
    voltage rising roughly linearly across the range.  DVFS is per
    cluster, as on the real part (§4.2, footnote 4). *)

type t = private {
  name : string;
  freqs_mhz : int array;  (** Ascending available frequencies. *)
  volts : float array;  (** Supply voltage at each OPP. *)
  uniform_step_mhz : int;
      (** Common gap in MHz when the table is evenly spaced (both
          built-in ramps are), 0 otherwise.  Evenly spaced tables get
          O(1) {!nearest}/{!index}/{!voltage}. *)
}

val create : name:string -> points:(int * float) list -> t
(** Raises [Invalid_argument] on an empty table, non-ascending
    frequencies, or non-positive voltage. *)

val ramp :
  name:string -> lo_mhz:int -> hi_mhz:int -> lo_v:float -> hi_v:float -> t
(** Evenly spaced 100 MHz table from [lo_mhz] to [hi_mhz] with a linear
    voltage ramp — the shape of every cpufreq table we model.  Platform
    descriptions use this for built-in and synthetic clusters. *)

val big : t
(** Cortex-A15 cluster table (200–2000 MHz). *)

val little : t
(** Cortex-A7 cluster table (200–1400 MHz). *)

val min_freq : t -> int
val max_freq : t -> int
val num_points : t -> int

val nearest : t -> float -> int
(** [nearest table f_mhz] is the available frequency closest to [f_mhz]
    (ties resolve downward), clamped to the table range. *)

val nearest_scan : t -> float -> int
(** The O(n) fallback behind {!nearest} for unevenly spaced tables;
    exposed so tests can pin the scan path against the O(1) fast path. *)

val voltage : t -> int -> float
(** Voltage at an exact table frequency.  Raises [Invalid_argument] when
    the frequency is not an OPP — call {!nearest} first. *)

val index : t -> int -> int
(** Index of an exact table frequency. *)
