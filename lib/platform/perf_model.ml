type cluster = Big | Little

(* Shared-DRAM bandwidth contention: every additional busy core inflates
   the memory-stall CPI term by this fraction.  This is the unmodelled
   cross-core interaction that makes per-core (10×10) identification hard
   on real hardware (§2.2): per-core throughput carries products of the
   per-core idle knobs, which no linear model can attribute. *)
let contention = 0.12

let contention_factor ~busy_cores =
  1. +. (contention *. Float.max 0. (busy_cores -. 1.))

(* Derive (a, b) such that, with four busy cores (the calibration point
   of the paper's speedup measurements),
     IPS(f) = f / (a + b·κ₄·f)          κ₄ = contention_factor 4
   satisfies IPS(1 GHz) = base_ipc_big * 1e9  and
   IPS(f_max)/IPS(f_min) = freq_scaling over the host cluster's DVFS
   range. *)
let base_coefficients w ~opp =
  let r = w.Workload.freq_scaling in
  let f_min = float_of_int (Opp.min_freq opp) /. 1000. in
  let f_max = float_of_int (Opp.max_freq opp) /. 1000. in
  let rho = f_max /. f_min in
  (* On the built-in Exynos Big table r < rho always holds (freq_scaling
     is validated > 1); an arbitrary description's host range can be too
     narrow for the workload's measured speedup, which the CPI law
     cannot represent (it needs s >= 0). *)
  if rho <= r then
    invalid_arg
      (Printf.sprintf
         "Perf_model.base_coefficients: workload %s needs an OPP range \
          ratio above its freq_scaling %g (host table %s spans only %g)"
         w.Workload.name r opp.Opp.name rho);
  let s = (rho -. r) /. ((r *. f_max) -. (rho *. f_min)) in
  let a = 1. /. (w.Workload.base_ipc_big *. (1. +. s)) in
  let kappa4 = contention_factor ~busy_cores:4. in
  (a, s *. a /. kappa4)

let big_coefficients w = base_coefficients w ~opp:Opp.big

let cpi_coefficients w = function
  | Big -> big_coefficients w
  | Little ->
      let a, b = big_coefficients w in
      (* In-order cores burn more compute cycles per instruction; the
         memory-stall term is shared (same DRAM behind both clusters). *)
      (a /. w.Workload.little_ipc_ratio, b)

(* Description-driven coefficients: the host cluster gets the derivation
   above over its own OPP range; every other cluster's law is expressed
   relative to the host (or fully calibrated) per its [cpi_law].  On
   [Platform_desc.exynos5422] this reproduces [cpi_coefficients]
   bit-for-bit: the Little cluster's [Workload_ratio 1.0] divides by
   [little_ipc_ratio *. 1.0], which is exactly [little_ipc_ratio]. *)
let coefficients_for w desc i =
  let host = Platform_desc.host desc in
  let host_opp = (Platform_desc.cluster desc host).Platform_desc.opp in
  let a, b = base_coefficients w ~opp:host_opp in
  if i = host then (a, b)
  else
    match (Platform_desc.cluster desc i).Platform_desc.cpi with
    | Platform_desc.Host_law -> (a, b)
    | Platform_desc.Workload_ratio r ->
        (a /. (w.Workload.little_ipc_ratio *. r), b)
    | Platform_desc.Fixed_ratio r -> (a /. r, b)
    | Platform_desc.Absolute { cpi_a; cpi_b } -> (cpi_a, cpi_b)

let core_ips ?(busy_cores = 4.) w cluster ~freq_mhz =
  let a, b = cpi_coefficients w cluster in
  let f_ghz = float_of_int freq_mhz /. 1000. in
  f_ghz *. 1e9 /. (a +. (b *. contention_factor ~busy_cores *. f_ghz))

let cluster_ips w cluster ~freq_mhz ~effective_cores ~parallel_fraction =
  core_ips ~busy_cores:effective_cores w cluster ~freq_mhz
  *. Workload.amdahl_speedup ~parallel_fraction ~cores:effective_cores

let qos_rate w cluster ~freq_mhz ~effective_cores ~parallel_fraction
    ~demand_scale =
  cluster_ips w cluster ~freq_mhz ~effective_cores ~parallel_fraction
  /. (w.Workload.instructions_per_heartbeat *. demand_scale)

let max_qos_rate w =
  qos_rate w Big ~freq_mhz:(Opp.max_freq Opp.big) ~effective_cores:4.
    ~parallel_fraction:w.Workload.parallel_fraction ~demand_scale:1.

let min_qos_rate w =
  qos_rate w Big ~freq_mhz:(Opp.min_freq Opp.big) ~effective_cores:1.
    ~parallel_fraction:w.Workload.parallel_fraction ~demand_scale:1.

(* Platform-parametric rates on the description's host cluster.  Same
   arithmetic as [qos_rate] over [coefficients_for], so the exynos5422
   results equal [max_qos_rate]/[min_qos_rate] bit-for-bit. *)
let qos_rate_for desc w ~freq_mhz ~effective_cores =
  let host = Platform_desc.host desc in
  let a, b = coefficients_for w desc host in
  let f_ghz = float_of_int freq_mhz /. 1000. in
  let core =
    f_ghz *. 1e9
    /. (a +. (b *. contention_factor ~busy_cores:effective_cores *. f_ghz))
  in
  core
  *. Workload.amdahl_speedup
       ~parallel_fraction:w.Workload.parallel_fraction ~cores:effective_cores
  /. (w.Workload.instructions_per_heartbeat *. 1.)

let max_qos_rate_for desc w =
  let host = Platform_desc.host desc in
  let c = Platform_desc.cluster desc host in
  qos_rate_for desc w
    ~freq_mhz:(Opp.max_freq c.Platform_desc.opp)
    ~effective_cores:(float_of_int c.Platform_desc.cores)

let min_qos_rate_for desc w =
  let host = Platform_desc.host desc in
  let c = Platform_desc.cluster desc host in
  qos_rate_for desc w
    ~freq_mhz:(Opp.min_freq c.Platform_desc.opp)
    ~effective_cores:1.
