(** Data-driven platform descriptions.

    A description names the clusters of an SoC (in sensor order — the
    per-cluster noise draws and trace columns follow this index order),
    gives each a core count, an OPP table, power-model coefficients and
    a CPI law, and records which cluster hosts the pinned QoS
    application.  {!Soc.create}, the per-cluster event families
    ({!Spectr.Events.for_platform}), the parametric spec automata and
    the scenario/fleet surfaces all derive their dimensions from one of
    these records — the Exynos 5422's Big|Little dichotomy is just
    {!exynos5422}, the 2-cluster instance.

    Descriptions come from three places: built-ins ({!exynos5422},
    {!pixel8pro}, {!k_cluster}), code ({!create}), or a CSV file in the
    ARM-based-Power-style measurement format ({!of_csv_file}), with
    precise line-numbered parse errors. *)

type cpi_law =
  | Host_law
      (** The QoS-hosting cluster: CPI-law coefficients derived from the
          workload ({!Perf_model.base_coefficients} over this cluster's
          OPP range). *)
  | Workload_ratio of float
      (** [a = a_host / (workload.little_ipc_ratio * r)], [b] shared —
          the workload's own in-order/out-of-order IPC ratio, scaled.
          The Exynos Little cluster is [Workload_ratio 1.0]. *)
  | Fixed_ratio of float
      (** [a = a_host / r], [b] shared — a workload-independent relative
          IPC (calibrated platforms). *)
  | Absolute of { cpi_a : float; cpi_b : float }
      (** Fully calibrated CPI law: [IPS(f) = f·1e9 / (a + b·κ·f)]. *)

type cluster = {
  cl_name : string;
      (** Lowercase alphanumeric identifier; feeds event names
          ([increase<Name>Power]) and trace columns ([<name>_power]). *)
  cores : int;
  opp : Opp.t;
  power : Power_model.params;
  cpi : cpi_law;
}

type thermal = {
  ambient_c : float;
  resistance_c_per_w : float;
  tau_s : float;
}

type t

val create :
  name:string -> clusters:cluster array -> host:int -> thermal:thermal -> t
(** Raises [Invalid_argument] with a precise message on invalid names,
    duplicate clusters, out-of-range host index or core counts, or
    non-positive thermal parameters. *)

val name : t -> string
val clusters : t -> cluster array
val num_clusters : t -> int
val host : t -> int
(** Index of the QoS-hosting cluster. *)

val thermal : t -> thermal
val cluster : t -> int -> cluster
val cluster_name : t -> int -> string
val total_cores : t -> int
val core_offset : t -> int -> int
(** First global core index of cluster [i]; cores of cluster [i] are
    [core_offset t i .. core_offset t i + (cluster t i).cores - 1]. *)

val find_cluster : t -> string -> int option

(** {1 Built-ins} *)

val exynos5422 : t
(** The paper's ODROID-XU3: big (host) + little, 4 cores each.  The
    description-driven pipeline is byte-identical to the pre-description
    build on this platform. *)

val pixel8pro : t
(** 3-cluster Tensor G3 topology: little (4x A510), big (4x A715,
    host), prime (1x X3). *)

val k_cluster : ?cores_per_cluster:int -> int -> t
(** Synthetic k-cluster platform ([1..16]) for synthesis-scale and
    fleet experiments; cluster 0 hosts. *)

val builtins : unit -> t list

(** {1 Degradation}

    Permanent-fault reconfiguration (FDIR) re-derives specs, plant
    models and gains from a {e degraded} description — a first-class
    description with its own distinct {!digest}, so every downstream
    memo key (design flow, synthesis cache, checkpoint variant tags)
    separates healthy from degraded automatically. *)

type degradation =
  | Remove_cluster of int
      (** The cluster is permanently dead: drop it from the description
          (host index re-mapped; name suffixed ["!no-<cluster>"]). *)
  | Pin_opp of { cluster : int; freq_mhz : int }
      (** The cluster's DVFS rail is latched: collapse its OPP table to
          the single point nearest [freq_mhz] (name suffixed
          ["!<cluster>@<mhz>"]). *)

val degrade : t -> degradation -> t
(** Raises [Invalid_argument] when the index is out of range, the
    cluster to remove hosts the QoS application (a dead host is
    unrecoverable — the manager falls back to open loop instead), or it
    is the last cluster. *)

val max_power_estimate : t -> float
(** Peak chip power: every cluster at its top OPP, all cores active,
    utilization 1.  The fleet layer reports degraded capacity as the
    ratio of a degraded description's peak to the healthy one's. *)

(** {1 Serialization} *)

type parse_error = { line : int; msg : string }

val pp_parse_error : Format.formatter -> parse_error -> unit

val of_csv_string : string -> (t, parse_error) result
(** Parse the platform CSV format (see DESIGN.md §15): [platform,<name>],
    [thermal,<ambient>,<c_per_w>,<tau>], [host,<cluster>], one
    [cluster,<name>,<cores>,<cdyn>,<leak>,<gated>,<uncore>,<cpi-law>]
    row per cluster and one [opp,<cluster>,<freq_mhz>,<volt>] row per
    operating point.  [#] comments and blank lines are skipped.  Errors
    carry the offending line number ([line = 0] for cross-row
    consistency failures). *)

val of_csv_file : string -> (t, parse_error) result

val to_csv_string : t -> string
(** Canonical serialization; [of_csv_string (to_csv_string t)]
    round-trips. *)

val digest : t -> string
(** Hex MD5 of the canonical serialization — the platform identity used
    in design-flow memo keys and checkpoint variant tags. *)

val describe : t -> string
(** Human-readable summary for [spectr_cli platforms]. *)

val cpi_law_to_string : cpi_law -> string
val cpi_law_of_string : string -> cpi_law option
