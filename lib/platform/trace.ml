(* Column-major storage in growable contiguous arrays (the Intvec
   doubling pattern, per column, for floats).  The predecessor kept a
   newest-first row list and rebuilt a full n-element array on every
   [column] call, which made [Metrics.per_phase] O(phases x columns x n);
   here [column_slice] copies just the slice and [last] is O(1).  Column
   lookup by name goes through a hash table built in [create] — the old
   linear string scan sat on the guard/supervisor tick path via [last] —
   and hot callers can resolve the index once ([column_index]) and use
   the [_ix] accessors.  The CSV output is byte-identical to the
   row-list implementation (pinned by test). *)

type t = {
  names : string array;
  by_name : (string, int) Hashtbl.t; (* name -> column index *)
  mutable cols : float array array; (* one buffer per column, length cap *)
  mutable cap : int;
  mutable n : int;
}

let initial_cap = 256

let create ?cap ~columns () =
  if columns = [] then invalid_arg "Trace.create: no columns";
  let names = Array.of_list columns in
  let sorted = List.sort_uniq compare columns in
  if List.length sorted <> Array.length names then
    invalid_arg "Trace.create: duplicate column";
  let by_name = Hashtbl.create (Array.length names) in
  Array.iteri (fun i name -> Hashtbl.add by_name name i) names;
  let initial_cap =
    match cap with None -> initial_cap | Some c -> max 1 c
  in
  {
    names;
    by_name;
    cols = Array.map (fun _ -> Array.make initial_cap 0.) names;
    cap = initial_cap;
    n = 0;
  }

let add t row =
  if Array.length row <> Array.length t.names then
    invalid_arg "Trace.add: row width mismatch";
  if t.n = t.cap then begin
    let cap = 2 * t.cap in
    t.cols <-
      Array.map
        (fun col ->
          let bigger = Array.make cap 0. in
          Array.blit col 0 bigger 0 t.n;
          bigger)
        t.cols;
    t.cap <- cap
  end;
  (* Plain loop: Array.iteri's closure would put an allocation on the
     per-tick path. *)
  let n = t.n in
  for i = 0 to Array.length row - 1 do
    t.cols.(i).(n) <- row.(i)
  done;
  t.n <- n + 1

let length t = t.n
let columns t = Array.to_list t.names
let width t = Array.length t.names

let index t name =
  match Hashtbl.find_opt t.by_name name with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "Trace: unknown column %S" name)

let column_index = index

let check_column_index t i =
  if i < 0 || i >= Array.length t.names then
    invalid_arg (Printf.sprintf "Trace: column index %d out of range" i)

let column_ix t i =
  check_column_index t i;
  Array.sub t.cols.(i) 0 t.n

let column_slice_ix t i ~from ~upto =
  check_column_index t i;
  if from < 0 || upto > t.n || from >= upto then
    invalid_arg "Trace.column_slice: bad range";
  Array.sub t.cols.(i) from (upto - from)

let last_ix t i =
  check_column_index t i;
  if t.n = 0 then invalid_arg "Trace.last: empty trace";
  t.cols.(i).(t.n - 1)

let column t name = Array.sub t.cols.(index t name) 0 t.n

let column_slice t name ~from ~upto =
  if from < 0 || upto > t.n || from >= upto then
    invalid_arg "Trace.column_slice: bad range";
  Array.sub t.cols.(index t name) from (upto - from)

let last t name =
  if t.n = 0 then invalid_arg "Trace.last: empty trace";
  t.cols.(index t name).(t.n - 1)

let to_csv t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (String.concat "," (Array.to_list t.names));
  Buffer.add_char buf '\n';
  let k = Array.length t.names in
  for r = 0 to t.n - 1 do
    for c = 0 to k - 1 do
      if c > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "%.6g" t.cols.(c).(r))
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf
