(* Column-major storage in growable contiguous arrays (the Intvec
   doubling pattern, per column, for floats).  The predecessor kept a
   newest-first row list and rebuilt a full n-element array on every
   [column] call, which made [Metrics.per_phase] O(phases x columns x n);
   here [column_slice] copies just the slice and [last] is O(1).  The
   CSV output is byte-identical to the row-list implementation (pinned
   by test). *)

type t = {
  names : string array;
  mutable cols : float array array; (* one buffer per column, length cap *)
  mutable cap : int;
  mutable n : int;
}

let initial_cap = 256

let create ~columns =
  if columns = [] then invalid_arg "Trace.create: no columns";
  let names = Array.of_list columns in
  let sorted = List.sort_uniq compare columns in
  if List.length sorted <> Array.length names then
    invalid_arg "Trace.create: duplicate column";
  {
    names;
    cols = Array.map (fun _ -> Array.make initial_cap 0.) names;
    cap = initial_cap;
    n = 0;
  }

let add t row =
  if Array.length row <> Array.length t.names then
    invalid_arg "Trace.add: row width mismatch";
  if t.n = t.cap then begin
    let cap = 2 * t.cap in
    t.cols <-
      Array.map
        (fun col ->
          let bigger = Array.make cap 0. in
          Array.blit col 0 bigger 0 t.n;
          bigger)
        t.cols;
    t.cap <- cap
  end;
  Array.iteri (fun i v -> t.cols.(i).(t.n) <- v) row;
  t.n <- t.n + 1

let length t = t.n
let columns t = Array.to_list t.names

let index t name =
  let rec find i =
    if i >= Array.length t.names then
      invalid_arg (Printf.sprintf "Trace: unknown column %S" name)
    else if t.names.(i) = name then i
    else find (i + 1)
  in
  find 0

let column t name = Array.sub t.cols.(index t name) 0 t.n

let column_slice t name ~from ~upto =
  if from < 0 || upto > t.n || from >= upto then
    invalid_arg "Trace.column_slice: bad range";
  Array.sub t.cols.(index t name) from (upto - from)

let last t name =
  if t.n = 0 then invalid_arg "Trace.last: empty trace";
  t.cols.(index t name).(t.n - 1)

let to_csv t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (String.concat "," (Array.to_list t.names));
  Buffer.add_char buf '\n';
  let k = Array.length t.names in
  for r = 0 to t.n - 1 do
    for c = 0 to k - 1 do
      if c > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "%.6g" t.cols.(c).(r))
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf
