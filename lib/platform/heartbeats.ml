(* Samples live in a circular buffer of parallel (time, count) float
   arrays.  The predecessor kept a newest-first cons list, which
   allocated a pair and a cons cell on every beat and rebuilt the list
   on every [rate] call; the ring makes both operations allocation-free
   in steady state (the buffer only grows when more samples than ever
   before are simultaneously inside the window).  [rate] reproduces the
   list version bit-for-bit: expired samples are dropped from the old
   end, and the sum is accumulated newest-to-oldest in the same float
   addition order as the fold over the newest-first list. *)

type t = {
  window : float;
  mutable reference : float;
  mutable total : float;
  mutable times : float array; (* circular, parallel to counts *)
  mutable counts : float array;
  mutable head : int; (* index of the oldest live sample *)
  mutable len : int; (* live samples *)
  mutable last_time : float;
}

let initial_cap = 64

let create ?(window = 0.5) ~reference () =
  if window <= 0. then invalid_arg "Heartbeats.create: window <= 0";
  if reference <= 0. then invalid_arg "Heartbeats.create: reference <= 0";
  {
    window;
    reference;
    total = 0.;
    times = Array.make initial_cap 0.;
    counts = Array.make initial_cap 0.;
    head = 0;
    len = 0;
    last_time = neg_infinity;
  }

let grow t =
  let cap = Array.length t.times in
  let times = Array.make (2 * cap) 0. in
  let counts = Array.make (2 * cap) 0. in
  for k = 0 to t.len - 1 do
    let i = (t.head + k) mod cap in
    times.(k) <- t.times.(i);
    counts.(k) <- t.counts.(i)
  done;
  t.times <- times;
  t.counts <- counts;
  t.head <- 0

let beat t ~now ~count =
  if now < t.last_time then invalid_arg "Heartbeats.beat: time went backwards";
  t.last_time <- now;
  t.total <- t.total +. count;
  if t.len = Array.length t.times then grow t;
  let i = (t.head + t.len) mod Array.length t.times in
  t.times.(i) <- now;
  t.counts.(i) <- count;
  t.len <- t.len + 1

let rate t ~now =
  let cutoff = now -. t.window in
  let cap = Array.length t.times in
  (* Beat times are non-decreasing, so expired samples form a prefix at
     the old end. *)
  while t.len > 0 && t.times.(t.head) <= cutoff do
    t.head <- (t.head + 1) mod cap;
    t.len <- t.len - 1
  done;
  let sum = ref 0. in
  for k = t.len - 1 downto 0 do
    sum := !sum +. t.counts.((t.head + k) mod cap)
  done;
  !sum /. t.window

let reference t = t.reference

let set_reference t r =
  if r <= 0. then invalid_arg "Heartbeats.set_reference: reference <= 0";
  t.reference <- r

let total t = t.total
