(** Column-named time-series recorder for experiments.

    Every evaluation run records one row per controller period; the bench
    harness then pulls columns out to compute steady-state errors,
    settling times and to print figure series. *)

type t

val create : columns:string list -> t
(** Raises [Invalid_argument] on an empty or duplicated column list. *)

val add : t -> float array -> unit
(** Append a row; its length must match the column count. *)

val length : t -> int
val columns : t -> string list

val column : t -> string -> float array
(** Raises [Invalid_argument] on an unknown column name.  O(n) copy of
    contiguous storage (rows are stored column-major). *)

val column_slice : t -> string -> from:int -> upto:int -> float array
(** Samples with index in [from, upto) — e.g. one scenario phase.
    Raises on an invalid range.  O(upto - from). *)

val last : t -> string -> float
(** Latest value of a column, O(1).  Raises on an empty trace. *)

val to_csv : t -> string
(** Header line plus one comma-separated line per row. *)
