(** Column-named time-series recorder for experiments.

    Every evaluation run records one row per controller period; the bench
    harness then pulls columns out to compute steady-state errors,
    settling times and to print figure series. *)

type t

val create : ?cap:int -> columns:string list -> unit -> t
(** Raises [Invalid_argument] on an empty or duplicated column list.
    [cap] preallocates row capacity (default 256) — a caller that knows
    the run length up front (e.g. the scenario runner) avoids all
    doubling reallocations during recording. *)

val add : t -> float array -> unit
(** Append a row; its length must match the column count. *)

val length : t -> int
val columns : t -> string list

val width : t -> int
(** Number of columns. *)

val column : t -> string -> float array
(** Raises [Invalid_argument] on an unknown column name.  O(n) copy of
    contiguous storage (rows are stored column-major). *)

val column_slice : t -> string -> from:int -> upto:int -> float array
(** Samples with index in [from, upto) — e.g. one scenario phase.
    Raises on an invalid range.  O(upto - from). *)

val last : t -> string -> float
(** Latest value of a column, O(1).  Raises on an empty trace. *)

(** {1 Index-based access}

    Name lookup is a hash-table probe; hot loops that read the same
    column every tick should resolve the index once with
    {!column_index} and then use these accessors, which do no string
    work at all. *)

val column_index : t -> string -> int
(** Stable 0-based index of a column.  Raises [Invalid_argument] on an
    unknown name. *)

val column_ix : t -> int -> float array
(** By-index {!column}.  Raises [Invalid_argument] on an out-of-range
    index. *)

val column_slice_ix : t -> int -> from:int -> upto:int -> float array
(** By-index {!column_slice}. *)

val last_ix : t -> int -> float
(** By-index {!last}: latest value, O(1), no hashing. *)

val to_csv : t -> string
(** Header line plus one comma-separated line per row. *)
