(** Analytic performance model for the heterogeneous clusters.

    Per-core throughput follows a CPI law linear in frequency,

    {v CPI(f) = a + b·f      (f in GHz) v}

    where [a] is the compute CPI and [b·f] the memory-stall CPI (stall
    cycles scale with the clock because DRAM latency is constant in
    seconds).  The coefficients are derived per workload so that the
    speedup over the Big cluster's full DVFS range equals the workload's
    [freq_scaling].  Multi-threaded scaling follows Amdahl's law with the
    phase-dependent parallel fraction.

    Frequencies in MHz throughout, matching {!Opp}. *)

type cluster = Big | Little
(** The Exynos 5422 calibration reference.  Description-driven code
    uses {!coefficients_for} with a cluster index instead. *)

val cpi_coefficients : Workload.t -> cluster -> float * float
(** (a, b) of the CPI law for one core of the given cluster.  Little
    cores share the memory coefficient [b] (same DRAM) but scale the
    compute term by [1 / little_ipc_ratio]. *)

val base_coefficients : Workload.t -> opp:Opp.t -> float * float
(** The host-cluster derivation over an arbitrary DVFS table: anchored
    on [base_ipc_big] at 1 GHz with the workload's [freq_scaling]
    spanning the table's range.  Raises [Invalid_argument] when the
    range ratio is too narrow to represent the measured speedup.
    [base_coefficients ~opp:Opp.big] is exactly the Big-cluster law. *)

val coefficients_for : Workload.t -> Platform_desc.t -> int -> float * float
(** CPI law of cluster [i] of a platform description: the host cluster
    from {!base_coefficients} over its own table, other clusters per
    their [Platform_desc.cpi_law].  Bit-identical to {!cpi_coefficients}
    on [Platform_desc.exynos5422]. *)

val contention : float
(** Shared-DRAM bandwidth contention: fractional inflation of the
    memory-stall CPI per additional busy core.  The source of the
    per-core cross-coupling that degrades large (10×10) model
    identification (§2.2, Figures 5/15). *)

val contention_factor : busy_cores:float -> float
(** 1 + contention·(busy − 1), clamped at busy ≥ 1. *)

val core_ips : ?busy_cores:float -> Workload.t -> cluster -> freq_mhz:int -> float
(** Instructions per second of one fully-busy core when [busy_cores]
    (default 4) cores compete for memory bandwidth. *)

val cluster_ips :
  Workload.t ->
  cluster ->
  freq_mhz:int ->
  effective_cores:float ->
  parallel_fraction:float ->
  float
(** Throughput of the application on [effective_cores] (may be
    fractional when background work steals capacity) at the given
    frequency: single-core IPS × Amdahl speedup.  Raises when
    [effective_cores <= 0]. *)

val qos_rate :
  Workload.t ->
  cluster ->
  freq_mhz:int ->
  effective_cores:float ->
  parallel_fraction:float ->
  demand_scale:float ->
  float
(** Heartbeats (or frames) per second: {!cluster_ips} divided by the
    (possibly phase-scaled) instructions per heartbeat. *)

val max_qos_rate : Workload.t -> float
(** Rate at the maximum allocation the experiments use: 4 Big cores at
    the top OPP, nominal parallel fraction, no disturbance. *)

val min_qos_rate : Workload.t -> float
(** Rate at the minimum allocation: 1 Big core at the bottom OPP. *)

val max_qos_rate_for : Platform_desc.t -> Workload.t -> float
(** {!max_qos_rate} on the description's host cluster (all host cores at
    its top OPP); equals {!max_qos_rate} on [exynos5422]. *)

val min_qos_rate_for : Platform_desc.t -> Workload.t -> float
(** {!min_qos_rate} on the description's host cluster. *)
