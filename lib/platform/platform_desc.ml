(* First-class platform descriptions: named clusters with core counts,
   OPP tables, CPI-law and power-model coefficients, and thermal
   parameters.  Everything downstream (Soc, Events, Spec, Supervisor,
   Scenario, fleet) derives its dimensions from one of these records
   instead of assuming the Exynos 5422's Big|Little dichotomy. *)

type cpi_law =
  | Host_law
  | Workload_ratio of float
  | Fixed_ratio of float
  | Absolute of { cpi_a : float; cpi_b : float }

type cluster = {
  cl_name : string;
  cores : int;
  opp : Opp.t;
  power : Power_model.params;
  cpi : cpi_law;
}

type thermal = {
  ambient_c : float;
  resistance_c_per_w : float;
  tau_s : float;
}

type t = {
  name : string;
  clusters : cluster array;
  host : int;
  thermal : thermal;
  core_offsets : int array; (* clusters + 1 entries; last = total cores *)
}

let valid_ident s =
  String.length s > 0
  && (match s.[0] with 'a' .. 'z' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | '0' .. '9' -> true | _ -> false)
       s

let validate_cluster c =
  if not (valid_ident c.cl_name) then
    invalid_arg
      (Printf.sprintf
         "Platform_desc: cluster name %S must be lowercase alphanumeric \
          starting with a letter"
         c.cl_name);
  if c.cores < 1 || c.cores > 64 then
    invalid_arg
      (Printf.sprintf "Platform_desc: cluster %s has %d cores (want 1..64)"
         c.cl_name c.cores);
  (match c.cpi with
  | Host_law -> ()
  | Workload_ratio r | Fixed_ratio r ->
      if not (Float.is_finite r && r > 0.) then
        invalid_arg
          (Printf.sprintf
             "Platform_desc: cluster %s CPI ratio %g not finite and positive"
             c.cl_name r)
  | Absolute { cpi_a; cpi_b } ->
      if
        not
          (Float.is_finite cpi_a && cpi_a > 0. && Float.is_finite cpi_b
         && cpi_b >= 0.)
      then
        invalid_arg
          (Printf.sprintf
             "Platform_desc: cluster %s absolute CPI law (%g, %g) invalid"
             c.cl_name cpi_a cpi_b))

let create ~name ~clusters ~host ~thermal =
  let n = Array.length clusters in
  if n = 0 then invalid_arg "Platform_desc.create: no clusters";
  if n > 16 then invalid_arg "Platform_desc.create: more than 16 clusters";
  if String.length name = 0 then invalid_arg "Platform_desc.create: empty name";
  if host < 0 || host >= n then
    invalid_arg
      (Printf.sprintf "Platform_desc.create: host index %d not in [0,%d)" host
         n);
  Array.iter validate_cluster clusters;
  let seen = Hashtbl.create 8 in
  Array.iter
    (fun c ->
      if Hashtbl.mem seen c.cl_name then
        invalid_arg
          (Printf.sprintf "Platform_desc.create: duplicate cluster name %S"
             c.cl_name);
      Hashtbl.add seen c.cl_name ())
    clusters;
  if
    not
      (Float.is_finite thermal.ambient_c
      && Float.is_finite thermal.resistance_c_per_w
      && thermal.resistance_c_per_w > 0.
      && Float.is_finite thermal.tau_s
      && thermal.tau_s > 0.)
  then invalid_arg "Platform_desc.create: invalid thermal parameters";
  let core_offsets = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    core_offsets.(i + 1) <- core_offsets.(i) + clusters.(i).cores
  done;
  { name; clusters; host; thermal; core_offsets }

let name t = t.name
let clusters t = t.clusters
let num_clusters t = Array.length t.clusters
let host t = t.host
let thermal t = t.thermal
let cluster t i = t.clusters.(i)
let cluster_name t i = t.clusters.(i).cl_name
let total_cores t = t.core_offsets.(Array.length t.clusters)
let core_offset t i = t.core_offsets.(i)

let find_cluster t name =
  let n = Array.length t.clusters in
  let rec go i =
    if i >= n then None
    else if t.clusters.(i).cl_name = name then Some i
    else go (i + 1)
  in
  go 0

(* --- built-ins -------------------------------------------------------- *)

(* The ODROID-XU3 / Exynos 5422 of the paper's case study.  Every
   coefficient matches the constants that used to live in
   [Power_model]/[Soc]: the description-driven pipeline is byte-identical
   to the pre-description build on this platform (pinned by
   [make platform-smoke]). *)
let exynos5422 =
  create ~name:"exynos5422"
    ~clusters:
      [|
        {
          cl_name = "big";
          cores = 4;
          opp = Opp.big;
          power = Power_model.big_params;
          cpi = Host_law;
        };
        {
          cl_name = "little";
          cores = 4;
          opp = Opp.little;
          power = Power_model.little_params;
          cpi = Workload_ratio 1.0;
        };
      |]
    ~host:0
    ~thermal:{ ambient_c = 30.; resistance_c_per_w = 8.; tau_s = 3. }

(* A 3-cluster Pixel 8 Pro (Tensor G3): 4x Cortex-A510 (LITTLE),
   4x Cortex-A715 (BIG, hosting the QoS app's four threads) and a
   single Cortex-X3 (PRIME) boost core.  OPP ramps and power
   coefficients are plausible approximations in the style of the
   ARM-based-Power measurement topologies, not silicon ground truth —
   the calibration fitter (Spectr_sysid.Calibrate) exists to replace
   them with measured sweeps. *)
let pixel8pro =
  create ~name:"pixel8pro"
    ~clusters:
      [|
        {
          cl_name = "little";
          cores = 4;
          opp =
            Opp.ramp ~name:"a510" ~lo_mhz:300 ~hi_mhz:1700 ~lo_v:0.55
              ~hi_v:0.95;
          power =
            Power_model.params ~cdyn_w_per_v2ghz:0.09 ~leak_w_per_core:0.012
              ~gated_w_per_core:0.004 ~uncore_w:0.05;
          cpi = Fixed_ratio 0.5;
        };
        {
          cl_name = "big";
          cores = 4;
          opp =
            Opp.ramp ~name:"a715" ~lo_mhz:400 ~hi_mhz:2400 ~lo_v:0.60
              ~hi_v:1.05;
          power =
            Power_model.params ~cdyn_w_per_v2ghz:0.28 ~leak_w_per_core:0.045
              ~gated_w_per_core:0.009 ~uncore_w:0.12;
          cpi = Host_law;
        };
        {
          cl_name = "prime";
          cores = 1;
          opp =
            Opp.ramp ~name:"x3" ~lo_mhz:500 ~hi_mhz:2900 ~lo_v:0.65 ~hi_v:1.10;
          power =
            Power_model.params ~cdyn_w_per_v2ghz:0.46 ~leak_w_per_core:0.08
              ~gated_w_per_core:0.015 ~uncore_w:0.10;
          cpi = Fixed_ratio 1.35;
        };
      |]
    ~host:1
    ~thermal:{ ambient_c = 30.; resistance_c_per_w = 6.5; tau_s = 2.5 }

(* Synthetic k-cluster platform for synthesis-scale and fleet
   experiments: cluster 0 hosts the QoS app, later clusters get
   progressively wider OPP ranges and higher per-cluster power. *)
let k_cluster ?(cores_per_cluster = 4) k =
  if k < 1 || k > 16 then
    invalid_arg (Printf.sprintf "Platform_desc.k_cluster: k = %d not in 1..16" k);
  let clusters =
    Array.init k (fun i ->
        let hi_mhz = 1400 + (200 * i) in
        {
          cl_name = Printf.sprintf "c%d" i;
          cores = cores_per_cluster;
          opp =
            Opp.ramp
              ~name:(Printf.sprintf "c%d-ramp" i)
              ~lo_mhz:200 ~hi_mhz ~lo_v:0.90
              ~hi_v:(1.10 +. (0.05 *. float_of_int i));
          power =
            Power_model.params
              ~cdyn_w_per_v2ghz:(0.07 +. (0.05 *. float_of_int i))
              ~leak_w_per_core:(0.015 +. (0.008 *. float_of_int i))
              ~gated_w_per_core:0.005 ~uncore_w:0.05;
          cpi = (if i = 0 then Host_law else Fixed_ratio (0.6 +. (0.15 *. float_of_int i)));
        })
  in
  create
    ~name:(Printf.sprintf "k%d" k)
    ~clusters ~host:0
    ~thermal:{ ambient_c = 30.; resistance_c_per_w = 8.; tau_s = 3. }

let builtins () = [ exynos5422; pixel8pro; k_cluster 4 ]

(* --- canonical serialization / digest --------------------------------- *)

let flt v = Printf.sprintf "%.17g" v

let cpi_law_to_string = function
  | Host_law -> "host"
  | Workload_ratio r -> "workload:" ^ flt r
  | Fixed_ratio r -> "ratio:" ^ flt r
  | Absolute { cpi_a; cpi_b } -> Printf.sprintf "abs:%s:%s" (flt cpi_a) (flt cpi_b)

let cpi_law_of_string s =
  match String.split_on_char ':' s with
  | [ "host" ] -> Some Host_law
  | [ "workload"; r ] ->
      Option.map (fun r -> Workload_ratio r) (float_of_string_opt r)
  | [ "ratio"; r ] -> Option.map (fun r -> Fixed_ratio r) (float_of_string_opt r)
  | [ "abs"; a; b ] -> (
      match (float_of_string_opt a, float_of_string_opt b) with
      | Some cpi_a, Some cpi_b -> Some (Absolute { cpi_a; cpi_b })
      | _ -> None)
  | _ -> None

let to_csv_string t =
  let b = Buffer.create 1024 in
  Buffer.add_string b "# spectr platform csv v1\n";
  Buffer.add_string b (Printf.sprintf "platform,%s\n" t.name);
  Buffer.add_string b
    (Printf.sprintf "thermal,%s,%s,%s\n" (flt t.thermal.ambient_c)
       (flt t.thermal.resistance_c_per_w)
       (flt t.thermal.tau_s));
  Buffer.add_string b
    (Printf.sprintf "host,%s\n" t.clusters.(t.host).cl_name);
  Array.iter
    (fun c ->
      Buffer.add_string b
        (Printf.sprintf "cluster,%s,%d,%s,%s,%s,%s,%s\n" c.cl_name c.cores
           (flt c.power.Power_model.cdyn_w_per_v2ghz)
           (flt c.power.Power_model.leak_w_per_core)
           (flt c.power.Power_model.gated_w_per_core)
           (flt c.power.Power_model.uncore_w)
           (cpi_law_to_string c.cpi)))
    t.clusters;
  Array.iter
    (fun c ->
      for i = 0 to Opp.num_points c.opp - 1 do
        let f = c.opp.Opp.freqs_mhz.(i) in
        Buffer.add_string b
          (Printf.sprintf "opp,%s,%d,%s\n" c.cl_name f
             (flt (Opp.voltage c.opp f)))
      done)
    t.clusters;
  Buffer.contents b

let digest t = Digest.to_hex (Digest.string (to_csv_string t))

(* --- CSV parsing ------------------------------------------------------ *)

type parse_error = { line : int; msg : string }

let pp_parse_error fmt e =
  Format.fprintf fmt "line %d: %s" e.line e.msg

type builder = {
  mutable b_name : string option;
  mutable b_thermal : thermal option;
  mutable b_host : string option;
  (* cluster rows in declaration order; OPP points accumulate per name *)
  mutable b_clusters :
    (string * int * Power_model.params * cpi_law) list; (* reversed *)
  opps : (string, (int * float) list ref) Hashtbl.t; (* reversed points *)
}

let err line fmt = Printf.ksprintf (fun msg -> Error { line; msg }) fmt

let parse_int ~line ~what s =
  match int_of_string_opt (String.trim s) with
  | Some v -> Ok v
  | None -> err line "%s: %S is not an integer" what s

let parse_float ~line ~what s =
  match float_of_string_opt (String.trim s) with
  | Some v when Float.is_finite v -> Ok v
  | Some _ -> err line "%s: %S is not finite" what s
  | None -> err line "%s: %S is not a number" what s

let ( let* ) = Result.bind

let parse_line b ~line s =
  let fields = String.split_on_char ',' s |> List.map String.trim in
  match fields with
  | [ "platform"; n ] ->
      if b.b_name <> None then err line "duplicate platform row"
      else if String.length n = 0 then err line "platform row: empty name"
      else begin
        b.b_name <- Some n;
        Ok ()
      end
  | "platform" :: _ ->
      err line "platform row wants exactly one field: platform,<name>"
  | [ "thermal"; amb; res; tau ] ->
      if b.b_thermal <> None then err line "duplicate thermal row"
      else
        let* ambient_c = parse_float ~line ~what:"thermal ambient" amb in
        let* resistance_c_per_w =
          parse_float ~line ~what:"thermal resistance" res
        in
        let* tau_s = parse_float ~line ~what:"thermal tau" tau in
        if resistance_c_per_w <= 0. || tau_s <= 0. then
          err line "thermal resistance and tau must be positive"
        else begin
          b.b_thermal <- Some { ambient_c; resistance_c_per_w; tau_s };
          Ok ()
        end
  | "thermal" :: _ ->
      err line "thermal row wants thermal,<ambient_c>,<c_per_w>,<tau_s>"
  | [ "host"; n ] ->
      if b.b_host <> None then err line "duplicate host row"
      else begin
        b.b_host <- Some n;
        Ok ()
      end
  | "host" :: _ -> err line "host row wants exactly one field: host,<cluster>"
  | [ "cluster"; n; cores; cdyn; leak; gated; uncore; law ] ->
      if not (valid_ident n) then
        err line
          "cluster name %S must be lowercase alphanumeric starting with a \
           letter"
          n
      else if List.exists (fun (m, _, _, _) -> m = n) b.b_clusters then
        err line "duplicate cluster %S" n
      else
        let* cores = parse_int ~line ~what:"cluster cores" cores in
        let* cdyn_w_per_v2ghz = parse_float ~line ~what:"cdyn" cdyn in
        let* leak_w_per_core = parse_float ~line ~what:"leak" leak in
        let* gated_w_per_core = parse_float ~line ~what:"gated" gated in
        let* uncore_w = parse_float ~line ~what:"uncore" uncore in
        if cores < 1 || cores > 64 then
          err line "cluster %s: %d cores not in 1..64" n cores
        else if
          cdyn_w_per_v2ghz < 0. || leak_w_per_core < 0.
          || gated_w_per_core < 0. || uncore_w < 0.
        then err line "cluster %s: negative power coefficient" n
        else begin
          match cpi_law_of_string law with
          | None ->
              err line
                "cluster %s: CPI law %S is not host | workload:<r> | \
                 ratio:<r> | abs:<a>:<b>"
                n law
          | Some cpi_law ->
              b.b_clusters <-
                ( n,
                  cores,
                  Power_model.params ~cdyn_w_per_v2ghz ~leak_w_per_core
                    ~gated_w_per_core ~uncore_w,
                  cpi_law )
                :: b.b_clusters;
              Ok ()
        end
  | "cluster" :: _ ->
      err line
        "cluster row wants \
         cluster,<name>,<cores>,<cdyn>,<leak>,<gated>,<uncore>,<cpi-law>"
  | [ "opp"; n; f; v ] ->
      let* f = parse_int ~line ~what:"opp frequency" f in
      let* v = parse_float ~line ~what:"opp voltage" v in
      if f <= 0 then err line "opp frequency %d MHz must be positive" f
      else if v <= 0. then err line "opp voltage %g must be positive" v
      else begin
        let pts =
          match Hashtbl.find_opt b.opps n with
          | Some r -> r
          | None ->
              let r = ref [] in
              Hashtbl.add b.opps n r;
              r
        in
        pts := (f, v) :: !pts;
        Ok ()
      end
  | "opp" :: _ -> err line "opp row wants opp,<cluster>,<freq_mhz>,<volt>"
  | [ "" ] -> Ok () (* blank line *)
  | kind :: _ ->
      err line
        "unknown row kind %S (want platform | thermal | host | cluster | opp)"
        kind
  | [] -> Ok ()

let of_csv_string s =
  let b =
    {
      b_name = None;
      b_thermal = None;
      b_host = None;
      b_clusters = [];
      opps = Hashtbl.create 8;
    }
  in
  let lines = String.split_on_char '\n' s in
  let rec feed line = function
    | [] -> Ok ()
    | l :: rest ->
        let l = String.trim l in
        if String.length l = 0 || l.[0] = '#' then feed (line + 1) rest
        else
          let* () = parse_line b ~line l in
          feed (line + 1) rest
  in
  let* () = feed 1 lines in
  let* name =
    match b.b_name with
    | Some n -> Ok n
    | None -> err 0 "missing platform row"
  in
  let* thermal =
    match b.b_thermal with
    | Some t -> Ok t
    | None -> err 0 "missing thermal row"
  in
  let* host_name =
    match b.b_host with Some h -> Ok h | None -> err 0 "missing host row"
  in
  let cluster_rows = List.rev b.b_clusters in
  let* () =
    if cluster_rows = [] then err 0 "no cluster rows" else Ok ()
  in
  let* clusters =
    let rec build acc = function
      | [] -> Ok (List.rev acc)
      | (n, cores, power, cpi) :: rest -> (
          match Hashtbl.find_opt b.opps n with
          | None | Some { contents = [] } ->
              err 0 "cluster %s has no opp rows" n
          | Some pts ->
              let points =
                List.sort (fun (f1, _) (f2, _) -> compare f1 f2) (List.rev !pts)
              in
              let rec dup = function
                | (f1, _) :: ((f2, _) :: _ as rest) ->
                    if f1 = f2 then Some f1 else dup rest
                | _ -> None
              in
              (match dup points with
              | Some f -> err 0 "cluster %s: duplicate opp at %d MHz" n f
              | None ->
                  let opp =
                    Opp.create ~name:(n ^ "-opp") ~points
                  in
                  build ({ cl_name = n; cores; opp; power; cpi } :: acc) rest))
    in
    build [] cluster_rows
  in
  let clusters = Array.of_list clusters in
  (* Orphan OPP rows are a schema violation, not noise to ignore. *)
  let* () =
    Hashtbl.fold
      (fun n _ acc ->
        let* () = acc in
        if Array.exists (fun c -> c.cl_name = n) clusters then Ok ()
        else err 0 "opp rows reference unknown cluster %S" n)
      b.opps (Ok ())
  in
  let* host =
    match
      Array.to_list clusters
      |> List.mapi (fun i c -> (i, c))
      |> List.find_opt (fun (_, c) -> c.cl_name = host_name)
    with
    | Some (i, _) -> Ok i
    | None -> err 0 "host row names unknown cluster %S" host_name
  in
  match create ~name ~clusters ~host ~thermal with
  | t -> Ok t
  | exception Invalid_argument msg -> err 0 "%s" msg

let of_csv_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | s -> of_csv_string s
  | exception Sys_error msg -> Error { line = 0; msg }

(* --- degradation ------------------------------------------------------ *)

type degradation =
  | Remove_cluster of int
  | Pin_opp of { cluster : int; freq_mhz : int }

(* A degraded description is a first-class description: its digest keys
   Design_flow/Synth_cache memo entries and checkpoint variant tags, so
   a reconfigured manager never collides with the healthy one.  The name
   suffix makes traces and logs self-describing; platform names carry no
   identifier restriction, so "exynos5422!no-little" is valid. *)
let degrade t = function
  | Remove_cluster i ->
      let n = Array.length t.clusters in
      if i < 0 || i >= n then
        invalid_arg
          (Printf.sprintf "Platform_desc.degrade: cluster %d not in [0,%d)" i n);
      if i = t.host then
        invalid_arg
          (Printf.sprintf
             "Platform_desc.degrade: cluster %d hosts the QoS application — \
              a dead host is unrecoverable, not degradable"
             i);
      if n = 1 then
        invalid_arg "Platform_desc.degrade: cannot remove the last cluster";
      let removed = t.clusters.(i).cl_name in
      let clusters =
        Array.of_list
          (List.filteri
             (fun j _ -> j <> i)
             (Array.to_list t.clusters))
      in
      let host = if t.host > i then t.host - 1 else t.host in
      create
        ~name:(t.name ^ "!no-" ^ removed)
        ~clusters ~host ~thermal:t.thermal
  | Pin_opp { cluster; freq_mhz } ->
      let n = Array.length t.clusters in
      if cluster < 0 || cluster >= n then
        invalid_arg
          (Printf.sprintf "Platform_desc.degrade: cluster %d not in [0,%d)"
             cluster n);
      let c = t.clusters.(cluster) in
      let f = Opp.nearest c.opp (float_of_int freq_mhz) in
      let pinned =
        Opp.create
          ~name:(c.opp.Opp.name ^ "-pinned")
          ~points:[ (f, Opp.voltage c.opp f) ]
      in
      let clusters =
        Array.mapi
          (fun j cj -> if j = cluster then { cj with opp = pinned } else cj)
          t.clusters
      in
      create
        ~name:(Printf.sprintf "%s!%s@%d" t.name c.cl_name f)
        ~clusters ~host:t.host ~thermal:t.thermal

(* Peak chip power of a description: every cluster at its top OPP, all
   cores active, full utilization.  The fleet layer uses the ratio of a
   degraded description's peak to the healthy one's to derive remaining
   capacity for [Node.report]. *)
let max_power_estimate t =
  Array.fold_left
    (fun acc c ->
      acc
      +. Power_model.cluster_power c.power ~table:c.opp
           ~freq_mhz:(Opp.max_freq c.opp) ~active_cores:c.cores
           ~total_cores:c.cores ~utilization:1.0)
    0. t.clusters

(* --- description ------------------------------------------------------ *)

let describe t =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "%s: %d cluster%s, %d cores, digest %s\n" t.name
       (num_clusters t)
       (if num_clusters t = 1 then "" else "s")
       (total_cores t) (String.sub (digest t) 0 12));
  Array.iteri
    (fun i c ->
      Buffer.add_string b
        (Printf.sprintf "  %-8s %d cores, %4d-%4d MHz (%d OPPs)%s\n" c.cl_name
           c.cores (Opp.min_freq c.opp) (Opp.max_freq c.opp)
           (Opp.num_points c.opp)
           (if i = t.host then "  [qos host]" else "")))
    t.clusters;
  Buffer.contents b
