open Spectr_platform

type outcome = {
  cell : Campaign.cell;
  violations : Invariants.violation list;
  ticks : int;
  digest : string;
  watchdog_recoveries : int;
  checkpointed : bool;
  reconfigurations : int;
  reconfig_status : string option;
}

let digest_of_trace trace = Digest.to_hex (Digest.string (Trace.to_csv trace))

let run_cell ?arena ?limits (cell : Campaign.cell) =
  let config = Campaign.config_of_cell cell in
  (* With an arena, manager (re)construction is a warm checkout: same
     variant slot, reset to pristine state.  Identical observable
     behaviour either way (pinned by the arena digest tests). *)
  let make_manager () =
    match arena with
    | None -> Campaign.make_manager cell.Campaign.variant
    | Some a -> Arena.checkout a cell.Campaign.variant
  in
  let dt = config.Spectr.Scenario.controller_period in
  let kill_time =
    Option.map
      (fun k -> float_of_int k.Campaign.kill_tick *. dt)
      cell.Campaign.kill
  in
  let monitor = Invariants.create ?limits ~config ?kill_time () in
  let mgr0, sup0, guards0, handle0 = make_manager () in
  let mgr = ref mgr0 and sup = ref sup0 and guards = ref guards0 in
  let handle = ref handle0 in
  (* SPECTR+R replaces its supervisor on every hot-swap; the legality
     monitor must see the live one, never a cached pre-swap copy. *)
  let live_sup () =
    match !handle with
    | Some h -> Some (Spectr.Spectr_manager.Reconfig.supervisor h)
    | None -> !sup
  in
  let runner = Spectr.Scenario.start config in
  let ckpt = ref None in
  let restarted = ref false in
  let rec loop () =
    let n = Spectr.Scenario.ticks_done runner in
    (match cell.Campaign.kill with
    | Some k when n = k.Campaign.kill_tick - k.Campaign.staleness
                  && !ckpt = None -> (
        (* Snapshot the state reached after [kill_tick − staleness]
           ticks; for staleness 0 this is the very boundary the manager
           dies on, so restore must continue byte-identically. *)
        match (!mgr).Spectr.Manager.persist with
        | Some p -> ckpt := Some (p.Spectr.Manager.snapshot ())
        | None -> ())
    | _ -> ());
    (match (cell.Campaign.kill, !ckpt) with
    | Some k, Some c when n = k.Campaign.kill_tick && not !restarted ->
        (* Kill: drop the running manager on the floor, build a fresh
           one and restore the checkpoint into it.  The platform — SoC,
           heartbeat monitor, fault schedule, trace — keeps running;
           hardware does not reboot when the daemon crashes. *)
        restarted := true;
        let m2, s2, g2, h2 = make_manager () in
        (match m2.Spectr.Manager.persist with
        | Some p -> p.Spectr.Manager.restore c
        | None -> ());
        mgr := m2;
        sup := s2;
        guards := g2;
        handle := h2
    | _ -> ());
    match Spectr.Scenario.tick runner ~manager:!mgr with
    | None -> ()
    | Some obs ->
        ignore (Invariants.check monitor ~runner ~sup:(live_sup ()) ~obs);
        loop ()
  in
  loop ();
  {
    cell;
    violations = Invariants.violations monitor;
    ticks = Spectr.Scenario.ticks_done runner;
    digest = digest_of_trace (Spectr.Scenario.trace runner);
    watchdog_recoveries =
      (match !guards with
      | None -> 0
      | Some g -> List.length (Spectr.Guarded.recovery_times g));
    checkpointed = Option.is_some !ckpt;
    reconfigurations =
      (match !handle with
      | None -> 0
      | Some h -> Spectr.Spectr_manager.Reconfig.reconfigurations h);
    reconfig_status =
      Option.map
        (fun h ->
          Spectr.Spectr_manager.Reconfig.(status_label (status h)))
        !handle;
  }

let violates ?kind outcome =
  match kind with
  | None -> outcome.violations <> []
  | Some k ->
      List.exists (fun v -> v.Invariants.v_kind = k) outcome.violations
