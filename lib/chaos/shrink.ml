open Spectr_platform

type result = {
  cell : Campaign.cell;
  evaluations : int;
  shrunk : bool;
}

let min_window = 0.2

(* Remove list element [i]. *)
let drop_nth l i = List.filteri (fun j _ -> j <> i) l

let replace_nth l i x = List.mapi (fun j y -> if j = i then x else y) l

let minimize ?(eval_budget = 48) ~violates (cell : Campaign.cell) =
  let used = ref 0 in
  let best = ref cell in
  let shrunk = ref false in
  (* Evaluate a candidate, charging the budget; an exhausted budget
     rejects everything, freezing the current (still-violating) best. *)
  let try_cell c =
    if !used >= eval_budget then false
    else begin
      incr used;
      if violates c then begin
        best := c;
        shrunk := true;
        true
      end
      else false
    end
  in
  (* 1. The kill drill is noise unless it is load-bearing. *)
  (match (!best).Campaign.kill with
  | Some _ -> ignore (try_cell { !best with Campaign.kill = None })
  | None -> ());
  (* 2. ddmin over injections: drop one at a time to a fixpoint (restart
     the scan after every successful removal — indices shift). *)
  let rec drop_pass () =
    let injections = (!best).Campaign.injections in
    let n = List.length injections in
    if n > 1 then begin
      let removed = ref false in
      let i = ref 0 in
      while (not !removed) && !i < n do
        if
          try_cell
            { !best with Campaign.injections = drop_nth injections !i }
        then removed := true
        else incr i
      done;
      if !removed then drop_pass ()
    end
  in
  drop_pass ();
  (* 3. Bisect each surviving window: pull the stop toward the start,
     then the start toward the stop, halving while the violation
     survives. *)
  let shrink_window i =
    let shrink_once f =
      let inj = List.nth (!best).Campaign.injections i in
      match f inj with
      | None -> false
      | Some inj' ->
          try_cell
            {
              !best with
              Campaign.injections =
                replace_nth (!best).Campaign.injections i inj';
            }
    in
    let halve_stop inj =
      let span = inj.Faults.stop_s -. inj.Faults.start_s in
      if span /. 2. < min_window then None
      else
        Some
          (Faults.injection inj.Faults.fault ~start_s:inj.Faults.start_s
             ~stop_s:(inj.Faults.start_s +. (span /. 2.)))
    in
    let halve_start inj =
      let span = inj.Faults.stop_s -. inj.Faults.start_s in
      if span /. 2. < min_window then None
      else
        Some
          (Faults.injection inj.Faults.fault
             ~start_s:(inj.Faults.start_s +. (span /. 2.))
             ~stop_s:inj.Faults.stop_s)
    in
    while shrink_once halve_stop do
      ()
    done;
    while shrink_once halve_start do
      ()
    done
  in
  List.iteri
    (fun i _ -> shrink_window i)
    (!best).Campaign.injections;
  { cell = !best; evaluations = !used; shrunk = !shrunk }
