(** Warm manager arena: build each campaign variant's manager once per
    domain and reset it between cells from a pristine checkpoint,
    instead of reconstructing the controller stack for every cell.

    Checkout semantics are equivalence, not sharing: a checked-out
    manager has exactly the state of a freshly built one (the
    batch-vs-one-shot digest tests pin this), but only ONE cell per
    domain may use it at a time — the next checkout of the same variant
    resets it.  Slots are domain-local, so one arena value can be
    passed to a parallel sweep and each worker warms its own slots. *)

type t

val create : unit -> t

val checkout :
  t ->
  Campaign.variant ->
  Spectr.Manager.t
  * Spectr.Supervisor.t option
  * Spectr.Guarded.t option
  * Spectr.Spectr_manager.Reconfig.handle option
(** Return the domain's manager for [variant], reset to its
    just-constructed state.  The first checkout per (domain, variant)
    builds the manager (gain design is shared process-wide underneath);
    later checkouts restore the pristine checkpoint.  Invalidates
    whatever the previous checkout of this variant returned.
    Persist-less variants ([Spectr_r]) cannot be warmed and are rebuilt
    on every checkout. *)

val checkouts : t -> int
(** Total checkouts served (diagnostic; approximate under parallel
    sweeps). *)
