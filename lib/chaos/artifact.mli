(** Replayable reproducer artifacts.

    A failing (usually shrunk) campaign cell serialized to a small
    line-oriented text file:

    {v
    spectr-chaos-reproducer v1
    seed 42
    index 7
    variant SPECTR
    workload x264
    profile 5 3.5 3 4 5 16
    fault dropout:power@3.5/6.5
    kill 120 0
    invariant power-cap
    digest 0f1e...
    v}

    [fault] lines repeat; [kill], [invariant] and [digest] are optional.
    Fault windows use {!Spectr_platform.Faults.injection_to_string}
    (full-precision times), so a loaded artifact reconstructs the exact
    cell — and because the engine is deterministic, [spectr_cli replay]
    of the same artifact produces the same trace digest every time. *)

type t = {
  cell : Campaign.cell;
  invariant : Invariants.kind option;
      (** The invariant the reproducer is expected to violate (any
          invariant counts when absent). *)
  digest : string option;  (** Expected trace digest, when pinned. *)
}

val to_string : t -> string

val of_string : string -> t
(** Raises [Invalid_argument] with a line-precise message on a malformed
    artifact (bad header, missing field, unparseable window, kill drill
    with [staleness > kill_tick], …). *)

val save : path:string -> t -> unit
(** Crash-safe: temp file in the destination directory plus atomic
    rename. *)

val load : path:string -> t
(** Raises [Invalid_argument] on a malformed file, [Sys_error] on I/O
    failure. *)

type replay = {
  outcome : Engine.outcome;
  reproduced : bool;
      (** The expected invariant (or any, when none is recorded) was
          violated again. *)
  digest_matched : bool option;
      (** Trace digest equal to the recorded one ([None] when the
          artifact pins no digest). *)
}

val replay : ?limits:Invariants.limits -> t -> replay
(** Re-execute the cell deterministically and judge it. *)
