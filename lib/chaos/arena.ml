(* Warm manager arena for batched campaigns.

   A chaos campaign (and the batch throughput bench) runs thousands of
   short cells, and naively each cell builds its managers from scratch.
   Gain design is already memoized process-wide
   (Design_flow.design_gains_for), which removes the LQG pipeline from
   the per-cell cost, but construction still allocates the controller
   stack and the supervisor every time.  The arena removes that too:
   one manager per (domain, variant), built on first checkout, with a
   pristine checkpoint taken immediately after construction.  Every
   later checkout restores the pristine checkpoint — snapshot/restore
   is complete-state in every layer (Supervisor, Mimo, Pid, Guarded),
   so a reset manager is observationally identical to a fresh one; the
   batch-vs-one-shot digest tests pin exactly that.

   Slots are domain-local (Domain.DLS): managers are mutable and
   single-threaded, so a shared arena value can be passed to a parallel
   sweep (Parmap over Pool domains) and each worker transparently warms
   its own slot set.  The design cache underneath is single-flight, so
   concurrent first checkouts across domains still run each
   identification experiment once. *)

type slot = {
  sl_mgr : Spectr.Manager.t;
  sl_sup : Spectr.Supervisor.t option;
  sl_guards : Spectr.Guarded.t option;
  sl_pristine : Spectr.Manager.checkpoint;
  sl_restore : Spectr.Manager.checkpoint -> unit;
}

type t = {
  slots : (Campaign.variant, slot) Hashtbl.t Domain.DLS.key;
  mutable checkouts : int; (* diagnostic; racy under parallel sweeps *)
}

let create () =
  { slots = Domain.DLS.new_key (fun () -> Hashtbl.create 8); checkouts = 0 }

let checkouts t = t.checkouts

let checkout t variant =
  t.checkouts <- t.checkouts + 1;
  let slots = Domain.DLS.get t.slots in
  match Hashtbl.find_opt slots variant with
  | Some s ->
      s.sl_restore s.sl_pristine;
      (s.sl_mgr, s.sl_sup, s.sl_guards, None)
  | None ->
      let mgr, sup, guards, handle = Campaign.make_manager variant in
      (match mgr.Spectr.Manager.persist with
      | Some p ->
          Hashtbl.replace slots variant
            {
              sl_mgr = mgr;
              sl_sup = sup;
              sl_guards = guards;
              sl_pristine = p.Spectr.Manager.snapshot ();
              sl_restore = p.Spectr.Manager.restore;
            }
      | None ->
          (* No persistence hook means no way to reset state between
             cells; such a manager is simply rebuilt every checkout.
             SPECTR+R lands here by design: the supervised description
             itself is runtime state, so a warm slot cannot be reset. *)
          ());
      (mgr, sup, guards, handle)
