type finding = {
  f_outcome : Engine.outcome;
  f_log_tail : string list;
}

type variant_stat = {
  vs_variant : Campaign.variant;
  vs_cells : int;
  vs_violating : int;
  vs_violations : int;
}

type report = {
  r_spec : Campaign.spec;
  r_outcomes : Engine.outcome list;
  r_variant_stats : variant_stat list;
  r_kind_counts : (Invariants.kind * int) list;
  r_findings : finding list;
}

(* Deterministically re-run one failing cell with the observability
   layer on and harvest the decision-log tail.  The parallel sweep runs
   with obs off (the log is process-global); instrumentation does not
   perturb traces (pinned by the obs determinism tests), so the re-run
   reproduces the failure exactly. *)
let harvest_log_tail ?limits ~tail cell =
  let was_enabled = Spectr_obs.enabled () in
  Spectr_obs.enable ();
  Spectr_obs.reset ();
  let finally () =
    Spectr_obs.reset ();
    if not was_enabled then Spectr_obs.disable ()
  in
  Fun.protect ~finally (fun () ->
      ignore (Engine.run_cell ?limits cell);
      let lines =
        String.split_on_char '\n' (Spectr_obs.Decision_log.to_jsonl ())
        |> List.filter (fun l -> l <> "")
      in
      let n = List.length lines in
      if n <= tail then lines else List.filteri (fun i _ -> i >= n - tail) lines)

let all_kinds =
  Invariants.
    [ Power_cap; Qos_reconvergence; Supervisor_legal; Actuation_bounds;
      Non_finite ]

let run ?(arena = true) ?limits ?(max_findings = 10) ?(log_tail = 40) spec =
  let cells = Campaign.generate spec in
  (* One warm arena for the whole sweep: each pool domain builds its
     managers once and resets them between its cells. *)
  let arena = if arena then Some (Arena.create ()) else None in
  let outcomes = Spectr_exec.Parmap.map (Engine.run_cell ?arena ?limits) cells in
  let variant_stats =
    List.map
      (fun v ->
        let mine =
          List.filter
            (fun o -> o.Engine.cell.Campaign.variant = v)
            outcomes
        in
        {
          vs_variant = v;
          vs_cells = List.length mine;
          vs_violating =
            List.length (List.filter (fun o -> Engine.violates o) mine);
          vs_violations =
            List.fold_left
              (fun acc o -> acc + List.length o.Engine.violations)
              0 mine;
        })
      spec.Campaign.variants
  in
  let kind_counts =
    List.filter_map
      (fun k ->
        let n =
          List.length
            (List.filter (fun o -> Engine.violates ~kind:k o) outcomes)
        in
        if n = 0 then None else Some (k, n))
      all_kinds
  in
  let failing = List.filter (fun o -> Engine.violates o) outcomes in
  let findings =
    List.filteri (fun i _ -> i < max_findings) failing
    |> List.map (fun o ->
           {
             f_outcome = o;
             f_log_tail =
               harvest_log_tail ?limits ~tail:log_tail o.Engine.cell;
           })
  in
  {
    r_spec = spec;
    r_outcomes = outcomes;
    r_variant_stats = variant_stats;
    r_kind_counts = kind_counts;
    r_findings = findings;
  }

let violating_cells report ~variant =
  match
    List.find_opt (fun s -> s.vs_variant = variant) report.r_variant_stats
  with
  | Some s -> s.vs_violating
  | None -> 0

let summary report =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  let spec = report.r_spec in
  line "chaos soak: seed %d, %d cells, %d fault kinds, kill prob %.2f"
    spec.Campaign.campaign_seed spec.Campaign.cells
    (List.length spec.Campaign.kinds) spec.Campaign.kill_prob;
  line "%-9s %6s %10s %11s" "variant" "cells" "violating" "violations";
  List.iter
    (fun s ->
      line "%-9s %6d %10d %11d"
        (Campaign.variant_name s.vs_variant)
        s.vs_cells s.vs_violating s.vs_violations)
    report.r_variant_stats;
  (* Reconfiguration-drill roll-up: only SPECTR+R cells carry a ladder
     status, so this line appears only in campaigns that ran them —
     pre-existing campaign summaries stay byte-identical. *)
  let r_cells =
    List.filter
      (fun o -> o.Engine.reconfig_status <> None)
      report.r_outcomes
  in
  (if r_cells <> [] then
     let ended s =
       List.length
         (List.filter (fun o -> o.Engine.reconfig_status = Some s) r_cells)
     in
     let swaps =
       List.fold_left (fun a o -> a + o.Engine.reconfigurations) 0 r_cells
     in
     line
       "reconfig drills: %d SPECTR+R cell%s — %d end reconfigured, %d \
        nominal, %d fallback (%d hot-swap%s)"
       (List.length r_cells)
       (if List.length r_cells = 1 then "" else "s")
       (ended "reconfigured") (ended "nominal") (ended "fallback") swaps
       (if swaps = 1 then "" else "s"));
  (match report.r_kind_counts with
  | [] -> line "no invariant violations"
  | counts ->
      List.iter
        (fun (k, n) ->
          line "  %-18s violated in %d cell%s" (Invariants.kind_name k) n
            (if n = 1 then "" else "s"))
        counts);
  List.iter
    (fun f ->
      let o = f.f_outcome in
      let c = o.Engine.cell in
      let v = List.hd o.Engine.violations in
      line "finding: cell %d (%s, seed %Ld)%s" c.Campaign.index
        (Campaign.variant_name c.Campaign.variant)
        c.Campaign.seed
        (match c.Campaign.kill with
        | Some k ->
            Printf.sprintf " kill@%d/stale %d" k.Campaign.kill_tick
              k.Campaign.staleness
        | None -> "");
      List.iter
        (fun i ->
          line "  fault %s" (Spectr_platform.Faults.injection_to_string i))
        c.Campaign.injections;
      line "  %s t=%.2fs: %s" (Invariants.kind_name v.Invariants.v_kind)
        v.Invariants.v_time v.Invariants.v_detail;
      (match f.f_log_tail with
      | [] -> ()
      | tail -> line "  decision log tail (%d entries):" (List.length tail));
      List.iter (fun l -> line "    %s" l) f.f_log_tail)
    report.r_findings;
  Buffer.contents b
