(** Randomized fault-campaign generation for the chaos/soak engine.

    A campaign is a pure function of an integer seed: it expands into a
    list of {!cell}s, each of which fully describes one scenario run —
    manager variant, workload, scenario shape, an absolute-time fault
    schedule drawn from {!Spectr_platform.Faults}, and an optional
    kill/restart drill.  Cells are derived independently
    (SplitMix-style seed mixing), so any single cell can be regenerated
    and replayed without generating the rest — the property the
    reproducer artifacts ({!Artifact}) rely on. *)

open Spectr_platform

(** {1 Manager variants} *)

type variant =
  | Spectr_r
      (** Self-healing SPECTR: guards plus FDIR-driven supervisor
          re-synthesis ({!Spectr.Spectr_manager.make_reconfigurable}). *)
  | Spectr_g  (** SPECTR with the graceful-degradation guards armed. *)
  | Spectr  (** Unguarded SPECTR. *)
  | Mm_pow
  | Mm_perf
  | Siso
  | Fs

val all_variants : variant list
(** Every variant {e except} [Spectr_r], which is opt-in: adding it here
    would shift the round-robin variant assignment (and the pinned
    digests) of every existing campaign. *)

val variant_name : variant -> string
(** Display names matching the bench harness: ["SPECTR+R"],
    ["SPECTR+G"], ["SPECTR"], ["MM-Pow"], ["MM-Perf"], ["SISO"],
    ["FS"]. *)

val variant_of_string : string -> variant
(** Case-insensitive; accepts the display names and CLI-friendly forms
    (["spectr+r"], ["mm-pow"], …).  Raises [Invalid_argument] otherwise. *)

val make_manager :
  variant ->
  Spectr.Manager.t
  * Spectr.Supervisor.t option
  * Spectr.Guarded.t option
  * Spectr.Spectr_manager.Reconfig.handle option
(** Fresh manager instance plus, for the static SPECTR variants, the
    supervisor handle (the legality monitor inspects it), for the
    guarded variants the guard state (watchdog statistics), and for
    [Spectr_r] the reconfiguration handle.  [Spectr_r]'s supervisor
    slot is [None] — its supervisor changes identity on every hot-swap,
    so monitors must query {!Spectr.Spectr_manager.Reconfig.supervisor}
    through the handle instead of caching one. *)

(** {1 Scenario shape} *)

type profile = {
  tdp : float;  (** Envelope of the benign phases (W). *)
  stress_envelope : float;  (** Reduced envelope of the stress phase. *)
  safe_s : float;
  stress_s : float;
  recovery_s : float;
  stress_background : int;
      (** Background tasks during stress — sized so the QoS reference is
          unachievable inside the stress envelope. *)
}

val default_profile : profile
(** The robustness-bench shape: 3 s safe at 5 W, 4 s stress at 3.5 W
    with 16 background tasks, 5 s recovery at 5 W. *)

val dt : float
(** Controller period (0.05 s). *)

val total_s : profile -> float

val total_ticks : profile -> int

(** {1 Cells} *)

type kill = {
  kill_tick : int;  (** Tick before which the manager is killed. *)
  staleness : int;
      (** The replacement restores the checkpoint taken [staleness]
          ticks before the kill: 0 = exact resume (byte-identical trace
          guaranteed), > 0 = bounded-staleness resync from fresh sensor
          samples. *)
}

type cell = {
  index : int;  (** Position in the campaign. *)
  seed : int64;  (** SoC seed of the scenario run. *)
  variant : variant;
  workload : string;  (** {!Spectr_platform.Benchmarks.by_name} key. *)
  profile : profile;
  injections : Faults.injection list;  (** Absolute-time windows. *)
  kill : kill option;
}

val phases_of : profile -> Faults.injection list -> Spectr.Scenario.phase list
(** The three phases of [profile] with the injections attached to the
    first phase (which starts at t = 0, so phase-relative and absolute
    windows coincide). *)

val config_of_cell : cell -> Spectr.Scenario.config
(** Raises [Invalid_argument] on an unknown workload name. *)

(** {1 Campaign generation} *)

type spec = {
  campaign_seed : int;
  cells : int;
  variants : variant list;  (** Assigned round-robin across cells. *)
  kinds : Faults.kind list;
      (** Fault kinds drawn uniformly; a [Spike_burst] magnitude in the
          list is the {e upper bound} of a uniform magnitude draw. *)
  max_faults : int;  (** Faults per cell drawn uniformly in [1, max]. *)
  kill_prob : float;  (** Probability a cell carries a kill drill. *)
  reconfig_prob : float;
      (** Probability a cell carries a reconfiguration drill: one extra
          {e permanent} fault ({!permanent_kinds}) latched in the first
          third of the run.  0 (the default) draws nothing from the
          PRNG, so pre-existing campaigns keep their exact cells. *)
  profile : profile;
}

val all_kinds : Faults.kind list
(** Every {e transient} fault class, spike magnitudes bounded by 8×.
    Permanent kinds are excluded — they enter only through the
    reconfiguration drill. *)

val permanent_kinds : Faults.kind list
(** The reconfiguration-drill pool: a dead secondary cluster, a dead
    secondary power sensor, a permanently latched DVFS rail. *)

val default_spec :
  ?seed:int ->
  ?cells:int ->
  ?variants:variant list ->
  ?kinds:Faults.kind list ->
  ?max_faults:int ->
  ?kill_prob:float ->
  ?reconfig_prob:float ->
  unit ->
  spec
(** Defaults: 64 cells over all variants and all fault kinds, up to 3
    faults per cell, kill drills in a quarter of the cells, no
    reconfiguration drills.  Raises [Invalid_argument] on empty lists
    or out-of-range parameters. *)

val cell_of_spec : spec -> int -> cell
(** The [index]-th cell — a pure function of [(spec, index)]; equal
    arguments give equal cells.  Raises [Invalid_argument] when the
    index is outside [0, cells). *)

val generate : spec -> cell list
(** All cells, in index order. *)
