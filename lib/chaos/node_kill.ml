open Spectr_linalg
open Spectr_platform
module Node = Spectr_fleet.Node

type drill = {
  d_index : int;
  d_seed : int64;
  d_workload : string;
  d_cap : float;
  d_pre_ticks : int;
  d_checkpoint_every : int;
  d_down_ticks : int;
  d_post_ticks : int;
  d_deadline : int;
}

type outcome = {
  o_drill : drill;
  o_checkpointed : bool;
  o_recovery_ticks : int option;
  o_recovered : bool;
  o_peak_after : float;
  o_debt : float;
  o_digest : string;
}

let dt = Campaign.dt

let validate_drill d =
  if
    d.d_pre_ticks <= 0 || d.d_checkpoint_every <= 0 || d.d_down_ticks <= 0
    || d.d_post_ticks <= 0 || d.d_deadline < 0 || d.d_cap <= 0.
  then invalid_arg "Node_kill.run_drill: malformed drill"

let run_drill d =
  validate_drill d;
  let workload =
    match Benchmarks.by_name d.d_workload with
    | Some w -> w
    | None ->
        invalid_arg
          (Printf.sprintf "Node_kill.run_drill: unknown workload %S"
             d.d_workload)
  in
  let node = Node.create ~id:d.d_index ~seed:d.d_seed ~workload () in
  Node.set_cap node d.d_cap;
  Node.warm_up node;
  let canon = Buffer.create 1024 in
  let line k p = Buffer.add_string canon (Printf.sprintf "%d %h\n" k p) in
  let tick_no = ref 0 in
  let step () =
    Node.tick node ~dt;
    let p = Node.last_true_power node in
    line !tick_no p;
    incr tick_no;
    p
  in
  (* Healthy life: tick under the assigned cap, checkpointing on the
     drill's cadence — the last snapshot before the kill is whatever the
     cadence left, so restore staleness varies drill to drill. *)
  let checkpointed = ref false in
  for k = 1 to d.d_pre_ticks do
    ignore (step ());
    if k mod d.d_checkpoint_every = 0 then begin
      Node.checkpoint node;
      checkpointed := true
    end
  done;
  (* Dark window: the node draws nothing, serves nothing, and its QoS
     debt integrates at one second per second. *)
  Node.kill node;
  for _ = 1 to d.d_down_ticks do
    ignore (step ())
  done;
  (* Reboot: fresh platform and manager daemon, last checkpoint restored
     ({!Spectr.Manager.persist}), uncounted boot warm-up inside. *)
  Node.restart node;
  let post = Array.init d.d_post_ticks (fun _ -> step ()) in
  let limit = d.d_cap *. Spectr.Metrics.power_allowance in
  (* Compliance is judged on a 1 s moving average, not raw ticks: a cap
     that falls between the chip's quantized OPP power levels makes the
     supervisor dither around it, and the average — the quantity a
     fleet coordinator budgets on — is the contract a single node can
     actually honor. *)
  let window = Float.to_int (Float.round (1.0 /. dt)) in
  let smoothed =
    Array.mapi
      (fun k _ ->
        let from = max 0 (k - window + 1) in
        let sum = ref 0. in
        for j = from to k do
          sum := !sum +. post.(j)
        done;
        !sum /. float_of_int (k - from + 1))
      post
  in
  (* First post-reboot tick from which the average stays compliant — the
     same suffix scan as {!Spectr.Metrics.compliance_time}. *)
  let last_bad = ref (-1) in
  Array.iteri (fun k p -> if p > limit then last_bad := k) smoothed;
  let recovery_ticks =
    if !last_bad + 1 >= d.d_post_ticks then None else Some (!last_bad + 1)
  in
  let recovered =
    match recovery_ticks with Some k -> k <= d.d_deadline | None -> false
  in
  let peak_after = Array.fold_left Float.max 0. post in
  let r = Node.report node in
  Buffer.add_string canon
    (Printf.sprintf "report %h %h %d %d\n" r.Node.r_qos r.Node.r_total_debt
       r.Node.r_kills r.Node.r_restarts);
  {
    o_drill = d;
    o_checkpointed = !checkpointed;
    o_recovery_ticks = recovery_ticks;
    o_recovered = recovered;
    o_peak_after = peak_after;
    o_debt = r.Node.r_total_debt;
    o_digest = Digest.to_hex (Digest.string (Buffer.contents canon));
  }

type spec = {
  campaign_seed : int;
  drills : int;
  cap_lo : float;
  cap_hi : float;
}

let default_spec ?(seed = 2024) ?(drills = 32) () =
  if drills <= 0 then invalid_arg "Node_kill.default_spec: drills <= 0";
  { campaign_seed = seed; drills; cap_lo = 1.6; cap_hi = 3.2 }

let mix_seed campaign index =
  Int64.add
    (Int64.mul 0x9E3779B97F4A7C15L (Int64.of_int (index + 1)))
    (Int64.mul 0xBF58476D1CE4E5B9L (Int64.of_int campaign))

let drill_of_spec spec index =
  if spec.drills <= 0 || spec.cap_lo <= 0. || spec.cap_hi < spec.cap_lo then
    invalid_arg "Node_kill.drill_of_spec: malformed spec";
  if index < 0 || index >= spec.drills then
    invalid_arg "Node_kill.drill_of_spec: index out of range";
  let g = Prng.create (mix_seed spec.campaign_seed index) in
  let workloads = Array.of_list Benchmarks.all_qos in
  let w = workloads.(Prng.int g (Array.length workloads)) in
  {
    d_index = index;
    d_seed = Prng.int64 g;
    d_workload = w.Workload.name;
    d_cap = Prng.uniform g ~lo:spec.cap_lo ~hi:spec.cap_hi;
    d_pre_ticks = 40 + Prng.int g 41;
    d_checkpoint_every = 10 + Prng.int g 16;
    d_down_ticks = 20 + Prng.int g 41;
    d_post_ticks = 100;
    d_deadline = 60;
  }

type report = {
  r_spec : spec;
  r_outcomes : outcome list;
  r_failed : int;
  r_digest : string;
}

let run ?pool spec =
  let drills = List.init spec.drills (drill_of_spec spec) in
  let outcomes = Spectr_exec.Parmap.map ?pool run_drill drills in
  let failed =
    List.fold_left (fun n o -> if o.o_recovered then n else n + 1) 0 outcomes
  in
  let canon = String.concat "" (List.map (fun o -> o.o_digest) outcomes) in
  {
    r_spec = spec;
    r_outcomes = outcomes;
    r_failed = failed;
    r_digest = Digest.to_hex (Digest.string canon);
  }

let summary r =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "node-kill campaign: %d drills, seed %d\n"
       r.r_spec.drills r.r_spec.campaign_seed);
  List.iter
    (fun o ->
      let d = o.o_drill in
      let verdict =
        match o.o_recovery_ticks with
        | Some k when o.o_recovered -> Printf.sprintf "recovered in %d ticks" k
        | Some k -> Printf.sprintf "FAILED: settled at tick %d > deadline %d" k d.d_deadline
        | None -> "FAILED: never settled"
      in
      Buffer.add_string b
        (Printf.sprintf
           "  drill %2d  %-12s cap %.2f W  down %2d  %s  (peak %.2f W, debt \
            %.2f s)\n"
           d.d_index d.d_workload d.d_cap d.d_down_ticks verdict o.o_peak_after
           o.o_debt))
    r.r_outcomes;
  Buffer.add_string b
    (Printf.sprintf "failed %d/%d  digest %s\n" r.r_failed r.r_spec.drills
       r.r_digest);
  Buffer.contents b
