open Spectr_platform

type variant = Spectr_r | Spectr_g | Spectr | Mm_pow | Mm_perf | Siso | Fs

(* [Spectr_r] is deliberately absent: the default round-robin variant
   assignment of existing campaigns (and their pinned digests) must not
   shift.  Reconfiguration campaigns opt in with [variants = [Spectr_r; …]]. *)
let all_variants = [ Spectr_g; Spectr; Mm_pow; Mm_perf; Siso; Fs ]

let variant_name = function
  | Spectr_r -> "SPECTR+R"
  | Spectr_g -> "SPECTR+G"
  | Spectr -> "SPECTR"
  | Mm_pow -> "MM-Pow"
  | Mm_perf -> "MM-Perf"
  | Siso -> "SISO"
  | Fs -> "FS"

let variant_of_string s =
  match String.lowercase_ascii s with
  | "spectr+r" | "spectr-r" | "spectr_r" -> Spectr_r
  | "spectr+g" | "spectr-g" | "spectr_g" -> Spectr_g
  | "spectr" -> Spectr
  | "mm-pow" | "mm_pow" | "mmpow" -> Mm_pow
  | "mm-perf" | "mm_perf" | "mmperf" -> Mm_perf
  | "siso" -> Siso
  | "fs" -> Fs
  | _ -> invalid_arg (Printf.sprintf "Campaign.variant_of_string: %S" s)

let make_manager = function
  | Spectr_r ->
      let mgr, handle = Spectr.Spectr_manager.make_reconfigurable () in
      (* The supervisor slot stays [None]: SPECTR+R's supervisor changes
         identity on every hot-swap, so monitors must query the live one
         through the handle, never a cached copy. *)
      ( mgr,
        None,
        Some (Spectr.Spectr_manager.Reconfig.guard handle),
        Some handle )
  | Spectr_g ->
      let guards = Spectr.Guarded.create () in
      let mgr, sup = Spectr.Spectr_manager.make ~guards () in
      (mgr, Some sup, Some guards, None)
  | Spectr ->
      let mgr, sup = Spectr.Spectr_manager.make () in
      (mgr, Some sup, None, None)
  | Mm_pow -> (Spectr.Mm.make_pow (), None, None, None)
  | Mm_perf -> (Spectr.Mm.make_perf (), None, None, None)
  | Siso -> (Spectr.Siso.make (), None, None, None)
  | Fs -> (Spectr.Fs.make (), None, None, None)

(* --- scenario shape --------------------------------------------------- *)

type profile = {
  tdp : float;
  stress_envelope : float;
  safe_s : float;
  stress_s : float;
  recovery_s : float;
  stress_background : int;
}

(* The robustness-bench shape: benign start, a thermal-emergency phase
   whose background load makes the QoS reference unachievable within the
   reduced envelope (a manager that trusts a lying sensor chases QoS
   straight through the cap), then a long benign tail in which the
   re-convergence invariants are judged. *)
let default_profile =
  {
    tdp = 5.0;
    stress_envelope = 3.5;
    safe_s = 3.0;
    stress_s = 4.0;
    recovery_s = 5.0;
    stress_background = 16;
  }

let dt = 0.05

let total_s p = p.safe_s +. p.stress_s +. p.recovery_s

let total_ticks p = int_of_float (Float.round (total_s p /. dt))

type kill = { kill_tick : int; staleness : int }

type cell = {
  index : int;
  seed : int64;
  variant : variant;
  workload : string;
  profile : profile;
  injections : Faults.injection list;
  kill : kill option;
}

let phases_of profile injections =
  [
    {
      Spectr.Scenario.phase_name = "safe";
      duration_s = profile.safe_s;
      envelope = profile.tdp;
      background_tasks = 0;
      (* All windows ride on the first phase (start 0), so phase-relative
         and absolute times coincide and a window may span any phase. *)
      phase_faults = injections;
    };
    {
      phase_name = "stress";
      duration_s = profile.stress_s;
      envelope = profile.stress_envelope;
      background_tasks = profile.stress_background;
      phase_faults = [];
    };
    {
      phase_name = "recovery";
      duration_s = profile.recovery_s;
      envelope = profile.tdp;
      background_tasks = 0;
      phase_faults = [];
    };
  ]

let config_of_cell cell =
  let workload =
    match Benchmarks.by_name cell.workload with
    | Some w -> w
    | None ->
        invalid_arg
          (Printf.sprintf "Campaign.config_of_cell: unknown workload %S"
             cell.workload)
  in
  {
    (Spectr.Scenario.default_config ~seed:cell.seed workload) with
    Spectr.Scenario.phases = phases_of cell.profile cell.injections;
  }

(* --- campaign generation ---------------------------------------------- *)

type spec = {
  campaign_seed : int;
  cells : int;
  variants : variant list;
  kinds : Faults.kind list;
  max_faults : int;
  kill_prob : float;
  reconfig_prob : float;
  profile : profile;
}

(* Transient kinds only — permanent faults enter a cell exclusively
   through the reconfiguration drill, so existing campaign digests stay
   byte-identical. *)
let all_kinds =
  [
    Faults.Dropout Power;
    Dropout Qos;
    Stuck_at_last Power;
    Stuck_at_last Qos;
    Spike_burst (Power, 8.);
    Spike_burst (Qos, 8.);
    Dvfs_stuck;
    Gating_refused;
    Heartbeat_stall;
  ]

let permanent_kinds =
  [
    Faults.Cluster_dead 1;
    Faults.Sensor_dead (Power_cluster 1);
    Faults.Dvfs_stuck_permanent;
  ]

let default_spec ?(seed = 1) ?(cells = 64) ?(variants = all_variants)
    ?(kinds = all_kinds) ?(max_faults = 3) ?(kill_prob = 0.25)
    ?(reconfig_prob = 0.) () =
  if cells < 1 then invalid_arg "Campaign.default_spec: cells < 1";
  if variants = [] then invalid_arg "Campaign.default_spec: no variants";
  if kinds = [] then invalid_arg "Campaign.default_spec: no fault kinds";
  if max_faults < 1 then invalid_arg "Campaign.default_spec: max_faults < 1";
  if not (kill_prob >= 0. && kill_prob <= 1.) then
    invalid_arg "Campaign.default_spec: kill_prob outside [0, 1]";
  if not (reconfig_prob >= 0. && reconfig_prob <= 1.) then
    invalid_arg "Campaign.default_spec: reconfig_prob outside [0, 1]";
  {
    campaign_seed = seed;
    cells;
    variants;
    kinds;
    max_faults;
    kill_prob;
    reconfig_prob;
    profile = default_profile;
  }

(* SplitMix-style mix of the campaign seed and cell index: cells are
   order-independent pure functions of (campaign seed, index), so any
   cell can be regenerated — and replayed — without generating the
   others. *)
let mix_seed campaign index =
  Int64.add
    (Int64.mul 0x9E3779B97F4A7C15L (Int64.of_int (index + 1)))
    (Int64.mul 0xBF58476D1CE4E5B9L (Int64.of_int campaign))

let cell_of_spec spec index =
  if index < 0 || index >= spec.cells then
    invalid_arg "Campaign.cell_of_spec: index outside the campaign";
  let g = Spectr_linalg.Prng.create (mix_seed spec.campaign_seed index) in
  let seed = Spectr_linalg.Prng.int64 g in
  (* Round-robin over the variant list: every variant sees the same
     number of cells (±1), so soak statistics compare like with like. *)
  let variant = List.nth spec.variants (index mod List.length spec.variants) in
  let total = total_s spec.profile in
  let n_faults = 1 + Spectr_linalg.Prng.int g spec.max_faults in
  let draw_kind () =
    match List.nth spec.kinds (Spectr_linalg.Prng.int g (List.length spec.kinds)) with
    | Faults.Spike_burst (s, hi) ->
        (* The listed magnitude is the upper bound of the draw. *)
        Faults.Spike_burst
          (s, Spectr_linalg.Prng.uniform g ~lo:1.5 ~hi:(Float.max 1.6 hi))
    | k -> k
  in
  let injections =
    List.init n_faults (fun _ ->
        let kind = draw_kind () in
        let start_s = Spectr_linalg.Prng.uniform g ~lo:0.5 ~hi:(total -. 1.0) in
        let duration = Spectr_linalg.Prng.uniform g ~lo:0.4 ~hi:4.0 in
        let stop_s = Float.min (start_s +. duration) total in
        Faults.injection kind ~start_s ~stop_s)
  in
  (* Reconfiguration drill: one permanent fault, latched early enough
     that detection (~3 s of persistence), re-synthesis and
     re-convergence all land inside the run.  The guard on
     [reconfig_prob > 0.] is load-bearing: it keeps the PRNG stream —
     and therefore every existing campaign digest — untouched unless a
     campaign opts into the drill. *)
  let injections =
    if
      spec.reconfig_prob > 0.
      && Spectr_linalg.Prng.float g < spec.reconfig_prob
    then begin
      let kind =
        List.nth permanent_kinds
          (Spectr_linalg.Prng.int g (List.length permanent_kinds))
      in
      let start_s =
        Spectr_linalg.Prng.uniform g ~lo:0.5
          ~hi:(Float.max 1.0 (total -. 8.))
      in
      injections @ [ Faults.permanent kind ~start_s ]
    end
    else injections
  in
  let kill =
    if Spectr_linalg.Prng.float g < spec.kill_prob then begin
      let ticks = total_ticks spec.profile in
      let kill_tick = 20 + Spectr_linalg.Prng.int g (ticks - 40) in
      (* Half the drills restore the checkpoint taken at the kill tick
         itself (exact resume, trace must stay byte-identical); the rest
         restore one taken up to a second earlier (bounded staleness —
         the restarted manager resynchronizes from fresh samples). *)
      let staleness =
        if Spectr_linalg.Prng.bool g then 0
        else Stdlib.min kill_tick (1 + Spectr_linalg.Prng.int g 20)
      in
      Some { kill_tick; staleness }
    end
    else None
  in
  { index; seed; variant; workload = "x264"; profile = spec.profile;
    injections; kill }

let generate spec = List.init spec.cells (cell_of_spec spec)
