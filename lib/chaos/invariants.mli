(** Runtime invariant monitors for the chaos engine.

    One monitor rides along a {!Spectr.Scenario} runner and is checked
    after every tick.  Each invariant knows when it may legitimately be
    suspended — a power cap cannot be enforced while the DVFS driver
    ignores commands, and QoS cannot re-converge while a fault is still
    active — so a violation is a genuine safety-property failure, not a
    transient at a phase boundary.

    The compliance clocks reset at every {e disturbance instant}: run
    start, phase boundaries, fault onsets and clearances, and the
    kill/restart drill.  Sustained-signal invariants (power cap, QoS)
    must hold for {!limits.sustain_ticks} consecutive ticks before a
    finding is emitted, and an episode is reported once, not once per
    tick. *)

open Spectr_platform

type kind =
  | Power_cap
      (** Ground-truth chip power spent more than [excess_budget_s]
          cumulative seconds above the guardbanded envelope within one
          disturbance epoch (excluding the [settle_s] grace after the
          epoch starts), with no actuator fault active.  Cumulative, not
          consecutive: a controller oscillating around the cap on a
          lying sensor is a violation even though no single excursion
          lasts long.  Sensor faults do {e not} suspend this check —
          surviving a lying sensor is what the guards are for. *)
  | Qos_reconvergence
      (** Ground-truth QoS below [qos_floor × qos_ref] in a quiet region
          (no fault active, benign background, full envelope) later than
          [qos_deadline_s] after the last disturbance. *)
  | Supervisor_legal
      (** Supervisor walked into an illegal automaton state, unknown
          gains mode, or a budget outside loose physical bounds — the
          tripwire a corrupted checkpoint restore would hit. *)
  | Actuation_bounds
      (** Applied frequency not an OPP-table entry, or core count
          outside [1, 4]. *)
  | Non_finite  (** A NaN or infinity reached observations or ground truth. *)

val kind_name : kind -> string
(** Stable names: ["power-cap"], ["qos-reconvergence"],
    ["supervisor-legal"], ["actuation-bounds"], ["non-finite"]. *)

val kind_of_string : string -> kind
(** Raises [Invalid_argument] on an unknown name. *)

type violation = {
  v_kind : kind;
  v_tick : int;  (** 0-based tick at which the finding fired. *)
  v_time : float;  (** Simulated seconds. *)
  v_detail : string;  (** Human-readable, with the offending values. *)
}

type limits = {
  guardband : float;
      (** Tolerated relative excess over the envelope (safety margin;
          intentionally looser than [Spectr.Metrics.power_allowance],
          which is a measurement tolerance for evaluation metrics). *)
  settle_s : float;  (** Power-cap grace after each disturbance. *)
  excess_budget_s : float;
      (** Cumulative over-cap seconds tolerated per disturbance epoch. *)
  qos_floor : float;  (** Fraction of [qos_ref] that must be met. *)
  qos_deadline_s : float;  (** QoS grace after a disturbance. *)
  sustain_ticks : int;
      (** Consecutive violating ticks before a QoS finding fires. *)
  max_violations : int;  (** Findings recorded per cell before muting. *)
}

val default_limits : limits
(** 5 % guardband, 1 s settle grace with a 0.75 s excess budget, 50 %
    QoS floor with a 3 s deadline, 3-tick sustain, 25 findings. *)

type t

val create :
  ?limits:limits -> config:Spectr.Scenario.config -> ?kill_time:float ->
  unit -> t
(** A monitor for one scenario run.  [kill_time] (seconds) registers the
    kill/restart drill as a disturbance instant so the restarted manager
    gets the same compliance deadline any other disturbance gets. *)

val check :
  t ->
  runner:Spectr.Scenario.runner ->
  sup:Spectr.Supervisor.t option ->
  obs:Soc.observation ->
  violation list
(** Evaluate every invariant against the tick that just executed
    (ground truth read from the live SoC).  Returns the findings that
    fired on {e this} tick; accumulated findings are kept in order.
    [sup] enables the supervisor-legality monitor (pass the handle of
    the currently-running manager — it changes across a restart). *)

val violations : t -> violation list
(** All findings so far, oldest first (capped at [max_violations]). *)
