open Spectr_platform

type kind =
  | Power_cap
  | Qos_reconvergence
  | Supervisor_legal
  | Actuation_bounds
  | Non_finite

let num_kinds = 5

let kind_index = function
  | Power_cap -> 0
  | Qos_reconvergence -> 1
  | Supervisor_legal -> 2
  | Actuation_bounds -> 3
  | Non_finite -> 4

let kind_name = function
  | Power_cap -> "power-cap"
  | Qos_reconvergence -> "qos-reconvergence"
  | Supervisor_legal -> "supervisor-legal"
  | Actuation_bounds -> "actuation-bounds"
  | Non_finite -> "non-finite"

let kind_of_string s =
  match String.lowercase_ascii s with
  | "power-cap" -> Power_cap
  | "qos-reconvergence" -> Qos_reconvergence
  | "supervisor-legal" -> Supervisor_legal
  | "actuation-bounds" -> Actuation_bounds
  | "non-finite" -> Non_finite
  | _ -> invalid_arg (Printf.sprintf "Invariants.kind_of_string: %S" s)

type violation = {
  v_kind : kind;
  v_tick : int;
  v_time : float;
  v_detail : string;
}

type limits = {
  guardband : float;
  settle_s : float;
  excess_budget_s : float;
  qos_floor : float;
  qos_deadline_s : float;
  sustain_ticks : int;
  max_violations : int;
}

let default_limits =
  {
    (* Safety guardband over the envelope: a soak run only fails when
       ground-truth power exceeds envelope × 1.05 past the excess
       budget.  Intentionally looser than the 2 % measurement allowance
       of [Spectr.Metrics.power_allowance] — that one scores regulation
       quality in evaluations; this one models the thermal design's
       safety margin under injected faults.  Tightening this to 2 %
       would turn ordinary cap flutter during fault recovery into
       violations. *)
    guardband = 0.05;
    settle_s = 1.0;
    excess_budget_s = 0.75;
    qos_floor = 0.5;
    qos_deadline_s = 3.0;
    sustain_ticks = 3;
    max_violations = 25;
  }

type t = {
  limits : limits;
  qos_ref : float;
  dt : float;
  tdp : float; (* largest envelope across phases *)
  disturbances : float array; (* sorted ascending, starts with 0 *)
  actuator_windows : (float * float) list;
  fault_windows : (float * float) list;
  timeline : (float * float * int) array; (* phase end, envelope, background *)
  mutable violations_rev : violation list;
  mutable count : int;
  streaks : int array; (* consecutive violating ticks, per kind *)
  reported : bool array; (* an open episode already produced a finding *)
  (* Power-cap bookkeeping: cumulative over-cap time within the current
     disturbance epoch. *)
  mutable power_epoch : float;
  mutable power_excess : float;
  mutable power_reported : bool;
}

let eps = 1e-9

let is_actuator = function
  | Faults.Dvfs_stuck | Faults.Gating_refused | Faults.Dvfs_stuck_permanent
    ->
      true
  | _ -> false

let create ?(limits = default_limits) ~config ?kill_time () =
  let schedule = Spectr.Scenario.fault_schedule config in
  let timeline =
    let _, rev =
      List.fold_left
        (fun (start, acc) ph ->
          let stop = start +. ph.Spectr.Scenario.duration_s in
          (stop, (stop, ph.Spectr.Scenario.envelope, ph.background_tasks) :: acc))
        (0., []) config.Spectr.Scenario.phases
    in
    Array.of_list (List.rev rev)
  in
  let tdp =
    Array.fold_left (fun acc (_, e, _) -> Float.max acc e) 0. timeline
  in
  (* Every instant the plant is disturbed resets the compliance clocks:
     run start, each phase boundary (envelope or load change), each
     fault onset and clearance, and the kill/restart drill. *)
  let disturbances =
    let phase_starts =
      let _, rev =
        List.fold_left
          (fun (start, acc) ph ->
            (start +. ph.Spectr.Scenario.duration_s, start :: acc))
          (0., []) config.Spectr.Scenario.phases
      in
      List.rev rev
    in
    let fault_edges =
      List.concat_map
        (fun i -> [ i.Faults.start_s; i.Faults.stop_s ])
        schedule
    in
    let all =
      (0. :: phase_starts)
      @ fault_edges
      @ (match kill_time with None -> [] | Some t -> [ t ])
    in
    let arr = Array.of_list all in
    Array.sort compare arr;
    arr
  in
  {
    limits;
    qos_ref = config.Spectr.Scenario.qos_ref;
    dt = config.Spectr.Scenario.controller_period;
    tdp;
    disturbances;
    actuator_windows =
      List.filter_map
        (fun i ->
          if is_actuator i.Faults.fault then
            Some (i.Faults.start_s, i.Faults.stop_s)
          else None)
        schedule;
    fault_windows =
      List.map (fun i -> (i.Faults.start_s, i.Faults.stop_s)) schedule;
    timeline;
    violations_rev = [];
    count = 0;
    streaks = Array.make num_kinds 0;
    reported = Array.make num_kinds false;
    power_epoch = 0.;
    power_excess = 0.;
    power_reported = false;
  }

(* Envelope/background in force at sample time [t].  Sample k lands at
   t = k·dt which is exactly a phase's end time for its last sample, so
   phases cover half-open-on-the-left intervals (start, end]. *)
let phase_at m t =
  let n = Array.length m.timeline in
  let rec go i =
    if i >= n - 1 then m.timeline.(n - 1)
    else
      let stop, _, _ = m.timeline.(i) in
      if t <= stop +. eps then m.timeline.(i) else go (i + 1)
  in
  go 0

let envelope_at m t =
  let _, e, _ = phase_at m t in
  e

let background_at m t =
  let _, _, b = phase_at m t in
  b

let last_disturbance m t =
  let best = ref 0. in
  Array.iter
    (fun d -> if d <= t +. eps && d > !best then best := d)
    m.disturbances;
  !best

let in_window windows t = List.exists (fun (s, e) -> s <= t && t < e) windows

let violations m = List.rev m.violations_rev

(* Episode discipline: a violation must hold for [required] consecutive
   ticks before it is reported, and a still-open episode is reported
   only once — a 2-second excursion is one finding, not forty. *)
let judge m ~tick ~time kind bad detail fresh =
  let k = kind_index kind in
  if bad then begin
    m.streaks.(k) <- m.streaks.(k) + 1;
    let required =
      match kind with
      | Power_cap | Qos_reconvergence -> m.limits.sustain_ticks
      | Supervisor_legal | Actuation_bounds | Non_finite -> 1
    in
    if m.streaks.(k) >= required && not m.reported.(k) then begin
      m.reported.(k) <- true;
      if m.count < m.limits.max_violations then begin
        let v =
          { v_kind = kind; v_tick = tick; v_time = time; v_detail = detail () }
        in
        m.violations_rev <- v :: m.violations_rev;
        m.count <- m.count + 1;
        fresh := v :: !fresh
      end
    end
  end
  else begin
    m.streaks.(k) <- 0;
    m.reported.(k) <- false
  end

let opp_member table f = Array.exists (( = ) f) table.Opp.freqs_mhz

let check m ~runner ~sup ~obs =
  let t = obs.Soc.time in
  let tick = Spectr.Scenario.ticks_done runner - 1 in
  let soc = Spectr.Scenario.runner_soc runner in
  let fresh = ref [] in
  let lim = m.limits in
  let epoch = last_disturbance m t in
  let since_disturbance = t -. epoch in
  (* Power cap: judged on ground truth (sensor faults corrupt the
     observation).  The controller may oscillate around the cap, so the
     invariant is cumulative, as in the robustness bench: within one
     disturbance epoch — the interval between two disturbance instants —
     the total time spent above the guardbanded envelope (after a short
     settle grace) must stay below the excess budget.  Actuator faults
     physically prevent compliance, so those windows do not count;
     sensor faults DO count — surviving a lying sensor is exactly what
     the guards are for. *)
  if epoch <> m.power_epoch then begin
    m.power_epoch <- epoch;
    m.power_excess <- 0.;
    m.power_reported <- false
  end;
  let true_power = Soc.true_chip_power soc in
  let envelope = envelope_at m t in
  let cap = envelope *. (1. +. lim.guardband) in
  if
    (not (in_window m.actuator_windows t))
    && since_disturbance > lim.settle_s
    && true_power > cap
  then begin
    m.power_excess <- m.power_excess +. m.dt;
    if m.power_excess > lim.excess_budget_s && not m.power_reported then begin
      m.power_reported <- true;
      if m.count < lim.max_violations then begin
        let v =
          {
            v_kind = Power_cap;
            v_tick = tick;
            v_time = t;
            v_detail =
              Printf.sprintf
                "%.2f s cumulative above %.3f W (envelope %.2f W + %.0f%% \
                 guardband) since the disturbance at t=%.2f s; now %.3f W"
                m.power_excess cap envelope
                (100. *. lim.guardband)
                epoch true_power;
          }
        in
        m.violations_rev <- v :: m.violations_rev;
        m.count <- m.count + 1;
        fresh := v :: !fresh
      end
    end
  end;
  (* QoS re-convergence: only judged in quiet regions — no fault window
     active, benign load, full envelope — and only after the deadline
     from the last disturbance has passed. *)
  let true_qos = Soc.true_qos_rate soc in
  let qos_floor = lim.qos_floor *. m.qos_ref in
  let qos_bad =
    (not (in_window m.fault_windows t))
    && background_at m t = 0
    && envelope >= m.tdp -. eps
    && since_disturbance > lim.qos_deadline_s
    && true_qos < qos_floor
  in
  judge m ~tick ~time:t Qos_reconvergence qos_bad
    (fun () ->
      Printf.sprintf
        "true QoS rate %.2f < %.2f (%.0f%% of reference %.2f) in a quiet \
         region, %.2f s after the last disturbance"
        true_qos qos_floor (100. *. lim.qos_floor) m.qos_ref since_disturbance)
    fresh;
  (* Supervisor legality: restore-corruption tripwires.  Bounds are
     deliberately loose — they catch a scrambled checkpoint, not a
     tuning difference. *)
  (match sup with
  | None -> ()
  | Some sup ->
      let state_problem =
        match Spectr.Supervisor.state sup with
        | (_ : string) -> None
        | exception Invalid_argument msg -> Some msg
      in
      let mode = Spectr.Supervisor.gains_mode sup in
      let host = Spectr.Supervisor.host_cluster sup in
      let budget_problem () =
        (* Host budget may roam up to the TDP; each secondary cluster's
           static share stays small.  Bounds scale with the platform's
           cluster count through the supervisor itself. *)
        let k = Spectr.Supervisor.num_clusters sup in
        let rec check i =
          if i >= k then None
          else
            let r = Spectr.Supervisor.power_ref sup i in
            let label = if i = host then "host" else "secondary" in
            let hi = if i = host then m.tdp +. 0.5 else 1.5 in
            if not (Float.is_finite r) then
              Some
                (Printf.sprintf "non-finite budget (%s cluster %d: %g)" label
                   i r)
            else if r < 0.05 || r > hi then
              Some
                (Printf.sprintf
                   "%s cluster %d budget %.3f W outside [0.05, %.2f]" label i
                   r hi)
            else check (i + 1)
        in
        check 0
      in
      let problem =
        match state_problem with
        | Some msg -> Some ("illegal automaton state: " ^ msg)
        | None ->
            if not (mode = "qos" || mode = "power") then
              Some (Printf.sprintf "unknown gains mode %S" mode)
            else budget_problem ()
      in
      judge m ~tick ~time:t Supervisor_legal
        (Option.is_some problem)
        (fun () -> Option.value problem ~default:"")
        fresh);
  (* Actuation bounds: whatever was applied must be a real OPP and a
     legal core count — a manager must never be able to command the
     platform outside its tables. *)
  let act_problem =
    let k = Soc.num_clusters soc in
    let rec check i =
      if i >= k then None
      else
        let f = Soc.frequency soc i in
        let c = Soc.active_cores soc i in
        let max_c = Soc.cluster_cores soc i in
        if not (opp_member (Soc.opp_table soc i) f) then
          Some
            (Printf.sprintf "cluster %d at %d MHz, not an OPP of its table" i
               f)
        else if c < 1 || c > max_c then
          Some
            (Printf.sprintf "cluster %d at %d active cores outside [1, %d]" i
               c max_c)
        else check (i + 1)
    in
    check 0
  in
  judge m ~tick ~time:t Actuation_bounds
    (Option.is_some act_problem)
    (fun () ->
      "applied state outside platform tables: "
      ^ Option.value act_problem ~default:"")
    fresh;
  (* Non-finite tripwire over everything a manager or evaluator reads. *)
  let powers = Soc.sensor_powers soc in
  let finite_bad =
    not
      (Float.is_finite obs.Soc.qos_rate
      && Array.for_all Float.is_finite powers
      && Float.is_finite obs.Soc.chip_power
      && Float.is_finite true_power && Float.is_finite true_qos)
  in
  judge m ~tick ~time:t Non_finite finite_bad
    (fun () ->
      let per_cluster =
        String.concat ", "
          (Array.to_list
             (Array.mapi (fun i p -> Printf.sprintf "cluster %d %g" i p)
                powers))
      in
      Printf.sprintf
        "non-finite value reached the pipeline: qos %g, %s, chip %g, true \
         power %g, true qos %g"
        obs.Soc.qos_rate per_cluster obs.Soc.chip_power true_power true_qos)
    fresh;
  List.rev !fresh
