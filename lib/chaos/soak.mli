(** Campaign execution: fan a campaign's cells over the process-wide
    worker pool, aggregate per-variant and per-invariant statistics, and
    attach a decision-log tail to each finding.

    Deterministic end to end: cells are pure functions of the campaign
    seed, each cell run is deterministic, and {!Spectr_exec.Parmap}
    preserves submission order — so the report (and its printed
    {!summary}) is byte-identical run to run for a given spec,
    independent of the worker count. *)

type finding = {
  f_outcome : Engine.outcome;
  f_log_tail : string list;
      (** Tail of the {!Spectr_obs.Decision_log} JSONL from a
          deterministic instrumented re-run of the failing cell — what
          the supervisory layer decided leading up to the violation. *)
}

type variant_stat = {
  vs_variant : Campaign.variant;
  vs_cells : int;
  vs_violating : int;  (** Cells with at least one violation. *)
  vs_violations : int;  (** Total findings across those cells. *)
}

type report = {
  r_spec : Campaign.spec;
  r_outcomes : Engine.outcome list;  (** All cells, campaign order. *)
  r_variant_stats : variant_stat list;  (** In [spec.variants] order. *)
  r_kind_counts : (Invariants.kind * int) list;
      (** Violating-cell count per invariant kind (non-zero only). *)
  r_findings : finding list;  (** First [max_findings] failing cells. *)
}

val run :
  ?arena:bool ->
  ?limits:Invariants.limits ->
  ?max_findings:int ->
  ?log_tail:int ->
  Campaign.spec ->
  report
(** Execute the campaign.  The parallel sweep runs with observability
    off (the decision log is process-global); up to [max_findings]
    (default 10) failing cells are then re-run sequentially with
    instrumentation on to harvest [log_tail] (default 40) decision-log
    lines each.

    [arena] (default [true]) runs the sweep through a warm
    {!Arena}: one manager per (domain, variant), reset between cells —
    outcomes are identical either way, the arena only removes per-cell
    construction cost. *)

val violating_cells : report -> variant:Campaign.variant -> int

val summary : report -> string
(** Multi-line human-readable report: per-variant table, per-invariant
    tallies, and each finding with its fault schedule and log tail. *)
