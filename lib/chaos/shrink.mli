(** Delta-debugging shrinker for failing campaign cells.

    Given a cell whose run violates an invariant, find a smaller cell
    that still does: first drop the kill drill if the violation survives
    without it, then remove fault injections one at a time to a
    fixpoint (ddmin), then bisect each surviving window — stop toward
    start, start toward stop — while the violation persists.

    Every candidate is judged by re-running it through the caller's
    [violates] predicate (typically {!Engine.run_cell} filtered to the
    original finding's invariant), so the result is exactly as
    deterministic as the engine: a minimized cell is a replayable
    reproducer, not a heuristic guess. *)

type result = {
  cell : Campaign.cell;  (** The minimized (still-violating) cell. *)
  evaluations : int;  (** Scenario runs spent. *)
  shrunk : bool;  (** At least one reduction was accepted. *)
}

val minimize :
  ?eval_budget:int ->
  violates:(Campaign.cell -> bool) ->
  Campaign.cell ->
  result
(** [minimize ~violates cell] assumes [violates cell = true] (the
    original finding).  At most [eval_budget] (default 48) candidate
    runs are spent; when the budget runs out the current best — which
    always still violates — is returned. *)
