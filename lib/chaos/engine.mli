(** Execute one campaign cell: drive the scenario tick by tick, check
    every invariant after every tick, and run the cell's kill/restart
    drill if it has one.

    The drill snapshots the manager [staleness] ticks before the kill
    (using its {!Spectr.Manager.persist} capability), then at the kill
    tick discards the running manager entirely, constructs a fresh one
    and restores the checkpoint into it — the platform keeps running
    throughout.  With [staleness = 0] the restored manager continues
    byte-identically (pinned by the chaos tests); with [staleness > 0]
    it resynchronizes from fresh sensor samples, and the kill counts as
    a disturbance instant for the invariant deadlines. *)

type outcome = {
  cell : Campaign.cell;
  violations : Invariants.violation list;  (** Oldest first, capped. *)
  ticks : int;
  digest : string;
      (** MD5 hex of the trace CSV — equal digests mean byte-identical
          traces, the replay-determinism currency of the artifacts. *)
  watchdog_recoveries : int;
      (** Completed guard degradations (0 for unguarded variants). *)
  checkpointed : bool;
      (** The kill drill actually took a snapshot.  Always false for
          [Spectr_r] (no persist hook), whose kill drills therefore
          degenerate to no-ops. *)
  reconfigurations : int;
      (** Completed supervisor hot-swaps (0 for every variant but
          [Spectr_r]). *)
  reconfig_status : string option;
      (** Final FDIR-ladder rung of a [Spectr_r] cell
          ({!Spectr.Spectr_manager.Reconfig.status_label}); [None] for
          other variants. *)
}

val run_cell :
  ?arena:Arena.t -> ?limits:Invariants.limits -> Campaign.cell -> outcome
(** Deterministic: equal cells (and limits) give equal outcomes,
    including the digest — with or without an [arena].  When [arena] is
    given, managers come from warm {!Arena.checkout}s (built once per
    domain per variant, reset between cells) instead of being rebuilt
    per cell. *)

val violates : ?kind:Invariants.kind -> outcome -> bool
(** Did the run violate (that invariant / any invariant)? *)
