open Spectr_platform

type t = {
  cell : Campaign.cell;
  invariant : Invariants.kind option;
  digest : string option;
}

let header = "spectr-chaos-reproducer v1"
let flt v = Printf.sprintf "%.17g" v

let to_string a =
  let b = Buffer.create 256 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  let c = a.cell in
  line "%s" header;
  line "seed %Ld" c.Campaign.seed;
  line "index %d" c.Campaign.index;
  line "variant %s" (Campaign.variant_name c.Campaign.variant);
  line "workload %s" c.Campaign.workload;
  let p = c.Campaign.profile in
  line "profile %s %s %s %s %s %d" (flt p.Campaign.tdp)
    (flt p.Campaign.stress_envelope) (flt p.Campaign.safe_s)
    (flt p.Campaign.stress_s) (flt p.Campaign.recovery_s)
    p.Campaign.stress_background;
  List.iter
    (fun i -> line "fault %s" (Faults.injection_to_string i))
    c.Campaign.injections;
  (match c.Campaign.kill with
  | Some k -> line "kill %d %d" k.Campaign.kill_tick k.Campaign.staleness
  | None -> ());
  (match a.invariant with
  | Some k -> line "invariant %s" (Invariants.kind_name k)
  | None -> ());
  (match a.digest with Some d -> line "digest %s" d | None -> ());
  Buffer.contents b

let fail fmt = Printf.ksprintf invalid_arg ("Artifact.of_string: " ^^ fmt)

let of_string s =
  let lines =
    String.split_on_char '\n' s
    |> List.map String.trim
    |> List.filter (fun l -> l <> "")
  in
  (match lines with
  | h :: _ when h = header -> ()
  | h :: _ -> fail "bad header %S" h
  | [] -> fail "empty artifact");
  let seed = ref None
  and index = ref None
  and variant = ref None
  and workload = ref None
  and profile = ref None
  and faults = ref []
  and kill = ref None
  and invariant = ref None
  and digest = ref None in
  let split_kv l =
    match String.index_opt l ' ' with
    | None -> (l, "")
    | Some i ->
        ( String.sub l 0 i,
          String.sub l (i + 1) (String.length l - i - 1) )
  in
  List.iter
    (fun l ->
      if l <> header then
        let key, v = split_kv l in
        match key with
        | "seed" -> (
            match Int64.of_string_opt v with
            | Some x -> seed := Some x
            | None -> fail "bad seed %S" v)
        | "index" -> (
            match int_of_string_opt v with
            | Some x -> index := Some x
            | None -> fail "bad index %S" v)
        | "variant" -> variant := Some (Campaign.variant_of_string v)
        | "workload" -> workload := Some v
        | "profile" -> (
            match String.split_on_char ' ' v with
            | [ tdp; stress; safe_s; stress_s; recovery_s; bg ] -> (
                match
                  ( float_of_string_opt tdp,
                    float_of_string_opt stress,
                    float_of_string_opt safe_s,
                    float_of_string_opt stress_s,
                    float_of_string_opt recovery_s,
                    int_of_string_opt bg )
                with
                | Some tdp, Some stress_envelope, Some safe_s, Some stress_s,
                  Some recovery_s, Some stress_background ->
                    profile :=
                      Some
                        {
                          Campaign.tdp;
                          stress_envelope;
                          safe_s;
                          stress_s;
                          recovery_s;
                          stress_background;
                        }
                | _ -> fail "bad profile %S" v)
            | _ -> fail "profile needs 6 fields, got %S" v)
        | "fault" -> faults := Faults.injection_of_string v :: !faults
        | "kill" -> (
            match String.split_on_char ' ' v with
            | [ t; s ] -> (
                match (int_of_string_opt t, int_of_string_opt s) with
                | Some kill_tick, Some staleness
                  when kill_tick >= 0 && staleness >= 0
                       && staleness <= kill_tick ->
                    kill := Some { Campaign.kill_tick; staleness }
                | _ -> fail "bad kill %S" v)
            | _ -> fail "kill needs 2 fields, got %S" v)
        | "invariant" -> invariant := Some (Invariants.kind_of_string v)
        | "digest" -> digest := Some v
        | _ -> fail "unknown key %S" key)
    lines;
  let require name = function
    | Some x -> x
    | None -> fail "missing %s line" name
  in
  {
    cell =
      {
        Campaign.index = require "index" !index;
        seed = require "seed" !seed;
        variant = require "variant" !variant;
        workload = require "workload" !workload;
        profile = require "profile" !profile;
        injections = List.rev !faults;
        kill = !kill;
      };
    invariant = !invariant;
    digest = !digest;
  }

let save ~path a =
  (* Same crash-safety discipline as Manager.save_checkpoint: temp file
     in the destination directory, then atomic rename. *)
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir "chaos-artifact" ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string a));
  Sys.rename tmp path

let load ~path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic n)
  in
  of_string s

type replay = {
  outcome : Engine.outcome;
  reproduced : bool;
  digest_matched : bool option;
}

let replay ?limits a =
  let outcome = Engine.run_cell ?limits a.cell in
  {
    outcome;
    reproduced = Engine.violates ?kind:a.invariant outcome;
    digest_matched = Option.map (String.equal outcome.Engine.digest) a.digest;
  }
