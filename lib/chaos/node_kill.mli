(** Whole-node death/restart campaigns.

    The {!Engine} kill drill replaces a {e manager} mid-scenario while
    the platform keeps running.  A node-kill drill is the same fault one
    level up: the entire node — SoC, heartbeat monitor, manager — goes
    dark, serves nothing and draws nothing for a downtime window, then
    reboots with a fresh platform and a fresh manager daemon restored
    from the node's last {!Spectr.Manager.persist} checkpoint
    ({!Spectr_fleet.Node.restart}).  The drill's invariant is the
    fleet-layer admission contract: a rebooted node must come back
    power-compliant under the cap it was assigned before it died, within
    a bounded number of controller periods.

    Campaigns are pure functions of an integer seed — each drill derives
    independently (SplitMix-style mixing, as in {!Campaign}), the sweep
    fans over {!Spectr_exec.Parmap} in submission order, and every
    outcome carries a trace digest, so a whole report is byte-identical
    run to run for any worker count. *)

(** {1 Drills} *)

type drill = {
  d_index : int;  (** Position in the campaign. *)
  d_seed : int64;  (** Node seed (SoC noise stream of its first life). *)
  d_workload : string;  (** {!Spectr_platform.Benchmarks.by_name} key. *)
  d_cap : float;  (** Cap assigned before the kill and still in force
                      after the reboot (W). *)
  d_pre_ticks : int;  (** Counted ticks of healthy running before the
                          kill; the last checkpoint lands inside them. *)
  d_checkpoint_every : int;
      (** Checkpoint cadence in ticks — the kill's staleness is whatever
          remainder the cadence leaves, as in a real cluster. *)
  d_down_ticks : int;  (** Ticks the node stays dark (accruing debt). *)
  d_post_ticks : int;  (** Observation window after the reboot. *)
  d_deadline : int;
      (** Recovery deadline: the node must reach (and keep) power
          compliance within this many post-reboot ticks. *)
}

type outcome = {
  o_drill : drill;
  o_checkpointed : bool;  (** At least one checkpoint was taken. *)
  o_recovery_ticks : int option;
      (** First post-reboot tick from which the 1 s moving average of
          true power stays within
          [cap × ]{!Spectr.Metrics.power_allowance} for the rest of the
          window; [None] = never settled.  The average, not the raw
          tick, is the contract: a cap falling between the chip's
          quantized OPP power levels makes the supervisor dither around
          it, and the mean is what the fleet coordinator budgets on. *)
  o_recovered : bool;  (** [o_recovery_ticks] exists and meets the
                           deadline. *)
  o_peak_after : float;  (** Peak true power in the post window (W). *)
  o_debt : float;  (** Lifetime QoS debt at the end of the drill (s). *)
  o_digest : string;
      (** MD5 hex over canonical per-tick power lines (every counted
          tick, hex floats) plus the node's end-of-life report — equal
          digests mean a byte-identical drill. *)
}

val run_drill : drill -> outcome
(** Deterministic: equal drills give equal outcomes, digest included. *)

(** {1 Campaigns} *)

type spec = {
  campaign_seed : int;
  drills : int;
  cap_lo : float;  (** Assigned caps draw uniformly from this range — *)
  cap_hi : float;  (** starved and comfortable nodes both get drilled. *)
}

val default_spec : ?seed:int -> ?drills:int -> unit -> spec
(** 32 drills, caps in [1.6, 3.2] W under the default 5 W node TDP.
    Raises [Invalid_argument] on [drills <= 0] or a bad cap range. *)

val drill_of_spec : spec -> int -> drill
(** The [index]-th drill — a pure function of [(spec, index)].  Raises
    [Invalid_argument] outside [0, drills). *)

type report = {
  r_spec : spec;
  r_outcomes : outcome list;  (** Campaign order. *)
  r_failed : int;  (** Drills that missed the recovery deadline. *)
  r_digest : string;  (** MD5 over every outcome digest — the campaign's
                          replay-determinism currency. *)
}

val run : ?pool:Spectr_exec.Pool.t -> spec -> report
(** Fan the campaign over the worker pool; byte-identical for any job
    count. *)

val summary : report -> string
(** Human-readable table: one line per drill plus the failure tally. *)
