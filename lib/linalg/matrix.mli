(** Dense matrices of floats.

    This is the numerical workhorse underneath the state-space controllers
    ({!Spectr_control.Statespace}, {!Spectr_control.Lqr}) and the system
    identification routines ({!Spectr_sysid.Arx}).  Matrices are immutable
    from the caller's point of view: every operation returns a fresh matrix.

    Dimensions are checked and mismatches raise [Invalid_argument] with a
    message naming the offending operation. *)

type t
(** A dense row-major matrix. *)

(** {1 Construction} *)

val create : rows:int -> cols:int -> float -> t
(** [create ~rows ~cols x] is the [rows]×[cols] matrix filled with [x].
    Raises [Invalid_argument] if a dimension is not positive. *)

val zeros : rows:int -> cols:int -> t
(** All-zero matrix. *)

val identity : int -> t
(** [identity n] is the n×n identity. *)

val init : rows:int -> cols:int -> (int -> int -> float) -> t
(** [init ~rows ~cols f] has entry [f i j] at row [i], column [j]
    (0-indexed). *)

val of_arrays : float array array -> t
(** [of_arrays a] copies [a] (an array of rows).  Raises [Invalid_argument]
    on an empty or ragged array. *)

val of_list : float list list -> t
(** List-of-rows variant of {!of_arrays}. *)

val row_vector : float array -> t
(** 1×n matrix. *)

val col_vector : float array -> t
(** n×1 matrix. *)

val diagonal : float array -> t
(** Square matrix with the given diagonal and zeros elsewhere. *)

(** {1 Access} *)

val rows : t -> int
val cols : t -> int

val get : t -> int -> int -> float
(** [get m i j] is entry (i,j); raises [Invalid_argument] out of range. *)

val to_arrays : t -> float array array
(** Fresh array-of-rows copy. *)

val row : t -> int -> float array
(** Copy of row [i]. *)

val col : t -> int -> float array
(** Copy of column [j]. *)

val to_scalar : t -> float
(** The single entry of a 1×1 matrix; raises [Invalid_argument] otherwise. *)

(** {1 Algebra} *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
(** Matrix product; raises [Invalid_argument] on inner-dimension
    mismatch. *)

val scale : float -> t -> t
val neg : t -> t
val transpose : t -> t

val map : (float -> float) -> t -> t
val map2 : (float -> float -> float) -> t -> t -> t

(** {2 In-place variants}

    Preallocated-destination versions of the core algebra for
    allocation-free hot loops.  [dst] must already have the result's
    shape; dimension mismatches raise [Invalid_argument] exactly as in
    the allocating versions.  Results are bit-identical to their
    allocating counterparts (same accumulation order). *)

val add_into : dst:t -> t -> t -> unit
val sub_into : dst:t -> t -> t -> unit
val scale_into : dst:t -> float -> t -> unit
val neg_into : dst:t -> t -> unit

val copy_into : dst:t -> t -> unit
(** Overwrite [dst] with a copy of the argument. *)

val data : t -> float array
(** The backing store, row-major ([a_ij] at index [i*cols + j]; a column
    vector is just indices [0..rows-1]).  The escape hatch for
    zero-allocation kernels that read or write elements in a loop —
    [get]/[init] are cross-module calls whose boxed float returns the
    tick path cannot afford.  Writes alias the matrix; mutate with
    care. *)

val mul_into : dst:t -> t -> t -> unit
(** Matrix product into [dst].  Raises [Invalid_argument] if [dst]
    aliases either operand (the accumulation would read
    partially-written entries); the element-wise [_into] ops above
    tolerate aliasing. *)

val hcat : t -> t -> t
(** Horizontal concatenation [\[a b\]]. *)

val vcat : t -> t -> t
(** Vertical concatenation. *)

val block : t array array -> t
(** Assemble a block matrix from a rectangular grid of compatible blocks. *)

val submatrix : t -> row:int -> col:int -> rows:int -> cols:int -> t
(** Extract a [rows]×[cols] block whose top-left corner is ([row],[col]). *)

(** {1 Solving} *)

val solve : t -> t -> t
(** [solve a b] solves [a x = b] by Gaussian elimination with partial
    pivoting; [b] may have several columns.
    Raises [Failure "Matrix.solve: singular"] if [a] is (numerically)
    singular, and [Invalid_argument] if [a] is not square or dimensions
    mismatch. *)

val inverse : t -> t
(** [inverse a = solve a (identity n)].  Same exceptions as {!solve}. *)

val determinant : t -> float
(** Determinant via the LU factorization used by {!solve}. *)

(** {1 Norms and predicates} *)

val frobenius_norm : t -> float
val max_abs : t -> float
(** Largest absolute entry. *)

val equal : ?tol:float -> t -> t -> bool
(** Entry-wise comparison within [tol] (default [1e-9]); [false] when
    shapes differ. *)

val is_square : t -> bool

val is_symmetric : ?tol:float -> t -> bool

val trace : t -> float
(** Sum of diagonal entries of a square matrix. *)

(** {1 Printing} *)

val pp : Format.formatter -> t -> unit
(** Multi-line fixed-point rendering, for debugging and test output. *)

val to_string : t -> string
