(** Deterministic splittable pseudo-random generator (SplitMix64).

    The simulator, sensor-noise models and identification excitations all
    draw from explicit generator values so that every experiment and test
    is reproducible bit-for-bit without global state (see DESIGN.md §6). *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** Generator seeded with the given value; equal seeds give equal
    streams. *)

val copy : t -> t
(** Independent clone continuing from the same state. *)

val blit : src:t -> dst:t -> unit
(** Overwrite [dst]'s state with [src]'s without allocating.  Afterwards
    both generators produce the same stream (and then diverge as they
    are advanced independently). *)

val split : t -> t
(** A new generator statistically independent from the parent (the parent
    advances). *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** Uniform in [0, 1). *)

val uniform : t -> lo:float -> hi:float -> float
(** Uniform in [lo, hi).  Raises [Invalid_argument] when [hi < lo]. *)

val gaussian : t -> mu:float -> sigma:float -> float
(** Normal sample via Box–Muller. *)

val skip_gaussian : t -> unit
(** Advance the state exactly as one [gaussian] call would — same number
    of underlying draws, bit-identical subsequent stream — without
    computing the transcendental-heavy sample itself.  Used by hot paths
    to defer draws whose values may never be consumed: save the state
    with [copy]/[blit] first, skip, and replay with [gaussian] on the
    saved state only if the value is actually needed. *)

val noisy_into : t -> sigma:float -> dst:float array -> pos:int -> len:int -> unit
(** Multiply each of [dst.(pos)..dst.(pos+len-1)] in place by
    [1. +. gaussian ~mu:0. ~sigma], drawing in ascending index order;
    when [sigma <= 0.] the state does not advance and [dst] is left
    untouched.  Bit-identical to the equivalent per-element [gaussian]
    calls, but returns [unit] so hot paths pay no float-return boxing. *)

val bool : t -> bool

val int : t -> int -> int
(** [int g n] is uniform in [0, n).  Raises when [n <= 0]. *)
