type t = {
  rows : int;
  cols : int;
  data : float array; (* row-major, length rows*cols *)
}

let check_dims name rows cols =
  if rows <= 0 || cols <= 0 then
    invalid_arg (Printf.sprintf "Matrix.%s: dimensions %dx%d" name rows cols)

let create ~rows ~cols x =
  check_dims "create" rows cols;
  { rows; cols; data = Array.make (rows * cols) x }

let zeros ~rows ~cols = create ~rows ~cols 0.

let init ~rows ~cols f =
  check_dims "init" rows cols;
  let data = Array.make (rows * cols) 0. in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      data.(i * cols + j) <- f i j
    done
  done;
  { rows; cols; data }

let identity n = init ~rows:n ~cols:n (fun i j -> if i = j then 1. else 0.)

let of_arrays a =
  let rows = Array.length a in
  if rows = 0 then invalid_arg "Matrix.of_arrays: empty";
  let cols = Array.length a.(0) in
  if cols = 0 then invalid_arg "Matrix.of_arrays: empty row";
  Array.iter
    (fun r ->
      if Array.length r <> cols then invalid_arg "Matrix.of_arrays: ragged")
    a;
  init ~rows ~cols (fun i j -> a.(i).(j))

let of_list l = of_arrays (Array.of_list (List.map Array.of_list l))
let row_vector v = of_arrays [| Array.copy v |]

let col_vector v =
  let n = Array.length v in
  if n = 0 then invalid_arg "Matrix.col_vector: empty";
  init ~rows:n ~cols:1 (fun i _ -> v.(i))

let diagonal v =
  let n = Array.length v in
  if n = 0 then invalid_arg "Matrix.diagonal: empty";
  init ~rows:n ~cols:n (fun i j -> if i = j then v.(i) else 0.)

let rows m = m.rows
let cols m = m.cols

let get m i j =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
    invalid_arg
      (Printf.sprintf "Matrix.get: (%d,%d) out of %dx%d" i j m.rows m.cols);
  m.data.((i * m.cols) + j)

let unsafe_get m i j = m.data.((i * m.cols) + j)
let data m = m.data

let to_arrays m =
  Array.init m.rows (fun i -> Array.init m.cols (fun j -> unsafe_get m i j))

let row m i =
  if i < 0 || i >= m.rows then invalid_arg "Matrix.row: out of range";
  Array.init m.cols (fun j -> unsafe_get m i j)

let col m j =
  if j < 0 || j >= m.cols then invalid_arg "Matrix.col: out of range";
  Array.init m.rows (fun i -> unsafe_get m i j)

let to_scalar m =
  if m.rows <> 1 || m.cols <> 1 then
    invalid_arg "Matrix.to_scalar: not a 1x1 matrix";
  m.data.(0)

let same_shape name a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg
      (Printf.sprintf "Matrix.%s: shape %dx%d vs %dx%d" name a.rows a.cols
         b.rows b.cols)

let map f m = { m with data = Array.map f m.data }

let map2 f a b =
  same_shape "map2" a b;
  { a with data = Array.init (Array.length a.data) (fun k -> f a.data.(k) b.data.(k)) }

let add a b = map2 ( +. ) a b
let sub a b = map2 ( -. ) a b
let scale s m = map (fun x -> s *. x) m
let neg m = map (fun x -> -.x) m

let mul a b =
  if a.cols <> b.rows then
    invalid_arg
      (Printf.sprintf "Matrix.mul: %dx%d * %dx%d" a.rows a.cols b.rows b.cols);
  let data = Array.make (a.rows * b.cols) 0. in
  for i = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let aik = a.data.((i * a.cols) + k) in
      if aik <> 0. then
        for j = 0 to b.cols - 1 do
          data.((i * b.cols) + j) <-
            data.((i * b.cols) + j) +. (aik *. b.data.((k * b.cols) + j))
        done
    done
  done;
  { rows = a.rows; cols = b.cols; data }

(* In-place variants for preallocated-buffer hot loops (the MIMO tick
   kernel).  Each checks shapes like its allocating counterpart and
   performs float-array stores only — no heap allocation.  [mul_into]
   additionally rejects aliasing of [dst] with an operand, since the
   accumulation would read partially-overwritten entries; the
   element-wise ops tolerate aliasing (they are pure pointwise). *)

let add_into ~dst a b =
  same_shape "add_into" a b;
  same_shape "add_into" dst a;
  for k = 0 to Array.length dst.data - 1 do
    dst.data.(k) <- a.data.(k) +. b.data.(k)
  done

let sub_into ~dst a b =
  same_shape "sub_into" a b;
  same_shape "sub_into" dst a;
  for k = 0 to Array.length dst.data - 1 do
    dst.data.(k) <- a.data.(k) -. b.data.(k)
  done

let scale_into ~dst s m =
  same_shape "scale_into" dst m;
  for k = 0 to Array.length dst.data - 1 do
    dst.data.(k) <- s *. m.data.(k)
  done

let neg_into ~dst m =
  same_shape "neg_into" dst m;
  for k = 0 to Array.length dst.data - 1 do
    dst.data.(k) <- -.m.data.(k)
  done

let copy_into ~dst m =
  same_shape "copy_into" dst m;
  Array.blit m.data 0 dst.data 0 (Array.length m.data)

let mul_into ~dst a b =
  if a.cols <> b.rows then
    invalid_arg
      (Printf.sprintf "Matrix.mul_into: %dx%d * %dx%d" a.rows a.cols b.rows
         b.cols);
  if dst.rows <> a.rows || dst.cols <> b.cols then
    invalid_arg
      (Printf.sprintf "Matrix.mul_into: dst %dx%d for %dx%d product" dst.rows
         dst.cols a.rows b.cols);
  if dst.data == a.data || dst.data == b.data then
    invalid_arg "Matrix.mul_into: dst aliases an operand";
  (* Same loop nest and accumulation order as [mul], so results are
     bit-identical to the allocating path. *)
  Array.fill dst.data 0 (Array.length dst.data) 0.;
  for i = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let aik = a.data.((i * a.cols) + k) in
      if aik <> 0. then
        for j = 0 to b.cols - 1 do
          dst.data.((i * b.cols) + j) <-
            dst.data.((i * b.cols) + j) +. (aik *. b.data.((k * b.cols) + j))
        done
    done
  done

let transpose m = init ~rows:m.cols ~cols:m.rows (fun i j -> unsafe_get m j i)

let hcat a b =
  if a.rows <> b.rows then invalid_arg "Matrix.hcat: row mismatch";
  init ~rows:a.rows ~cols:(a.cols + b.cols) (fun i j ->
      if j < a.cols then unsafe_get a i j else unsafe_get b i (j - a.cols))

let vcat a b =
  if a.cols <> b.cols then invalid_arg "Matrix.vcat: column mismatch";
  init ~rows:(a.rows + b.rows) ~cols:a.cols (fun i j ->
      if i < a.rows then unsafe_get a i j else unsafe_get b (i - a.rows) j)

let block grid =
  if Array.length grid = 0 then invalid_arg "Matrix.block: empty";
  let glue_row blocks =
    if Array.length blocks = 0 then invalid_arg "Matrix.block: empty row";
    Array.fold_left
      (fun acc b -> match acc with None -> Some b | Some a -> Some (hcat a b))
      None blocks
    |> Option.get
  in
  Array.fold_left
    (fun acc blocks ->
      let r = glue_row blocks in
      match acc with None -> Some r | Some a -> Some (vcat a r))
    None grid
  |> Option.get

let submatrix m ~row ~col ~rows ~cols =
  if
    row < 0 || col < 0 || rows <= 0 || cols <= 0
    || row + rows > m.rows
    || col + cols > m.cols
  then invalid_arg "Matrix.submatrix: out of range";
  init ~rows ~cols (fun i j -> unsafe_get m (row + i) (col + j))

(* Gaussian elimination with partial pivoting on the augmented system.
   Returns the solution matrix and the determinant of [a]. *)
let gauss_solve a b =
  if a.rows <> a.cols then invalid_arg "Matrix.solve: not square";
  if a.rows <> b.rows then invalid_arg "Matrix.solve: rhs rows mismatch";
  let n = a.rows in
  let nb = b.cols in
  let m = to_arrays a in
  let rhs = to_arrays b in
  let det = ref 1. in
  for k = 0 to n - 1 do
    (* partial pivot *)
    let pivot = ref k in
    for i = k + 1 to n - 1 do
      if abs_float m.(i).(k) > abs_float m.(!pivot).(k) then pivot := i
    done;
    if !pivot <> k then begin
      let tmp = m.(k) in
      m.(k) <- m.(!pivot);
      m.(!pivot) <- tmp;
      let tmp = rhs.(k) in
      rhs.(k) <- rhs.(!pivot);
      rhs.(!pivot) <- tmp;
      det := -. !det
    end;
    let p = m.(k).(k) in
    if abs_float p < 1e-300 then failwith "Matrix.solve: singular";
    det := !det *. p;
    for i = k + 1 to n - 1 do
      let f = m.(i).(k) /. p in
      if f <> 0. then begin
        for j = k to n - 1 do
          m.(i).(j) <- m.(i).(j) -. (f *. m.(k).(j))
        done;
        for j = 0 to nb - 1 do
          rhs.(i).(j) <- rhs.(i).(j) -. (f *. rhs.(k).(j))
        done
      end
    done
  done;
  (* back substitution *)
  let x = Array.make_matrix n nb 0. in
  for j = 0 to nb - 1 do
    for i = n - 1 downto 0 do
      let s = ref rhs.(i).(j) in
      for k = i + 1 to n - 1 do
        s := !s -. (m.(i).(k) *. x.(k).(j))
      done;
      x.(i).(j) <- !s /. m.(i).(i)
    done
  done;
  (of_arrays x, !det)

let solve a b = fst (gauss_solve a b)
let inverse a = solve a (identity a.rows)

let determinant a =
  if a.rows <> a.cols then invalid_arg "Matrix.determinant: not square";
  match gauss_solve a (identity a.rows) with
  | _, det -> det
  | exception Failure _ -> 0.

let frobenius_norm m =
  sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0. m.data)

let max_abs m = Array.fold_left (fun acc x -> max acc (abs_float x)) 0. m.data

let equal ?(tol = 1e-9) a b =
  a.rows = b.rows && a.cols = b.cols
  && Array.for_all2
       (fun x y -> abs_float (x -. y) <= tol)
       a.data b.data

let is_square m = m.rows = m.cols

let is_symmetric ?(tol = 1e-9) m =
  is_square m
  &&
  let ok = ref true in
  for i = 0 to m.rows - 1 do
    for j = i + 1 to m.cols - 1 do
      if abs_float (unsafe_get m i j -. unsafe_get m j i) > tol then ok := false
    done
  done;
  !ok

let trace m =
  if not (is_square m) then invalid_arg "Matrix.trace: not square";
  let s = ref 0. in
  for i = 0 to m.rows - 1 do
    s := !s +. unsafe_get m i i
  done;
  !s

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  for i = 0 to m.rows - 1 do
    Format.fprintf ppf "@[<h>[";
    for j = 0 to m.cols - 1 do
      if j > 0 then Format.fprintf ppf " ";
      Format.fprintf ppf "%10.4f" (unsafe_get m i j)
    done;
    Format.fprintf ppf "]@]";
    if i < m.rows - 1 then Format.fprintf ppf "@,"
  done;
  Format.fprintf ppf "@]"

let to_string m = Format.asprintf "%a" pp m
