(* SplitMix64 with the 64-bit state stored as the raw IEEE-754 bit
   pattern of a float field.  A [mutable state : int64] field boxes a
   fresh Int64 on every store (two boxes per gaussian draw), which is
   what kept the tick kernel from reaching zero allocations; an
   all-float record is flat, so the state update compiles to an unboxed
   load/op/store.  [Int64.bits_of_float]/[float_of_bits] are lossless
   bit casts (moves, no FP arithmetic), so the generated stream is
   bit-identical to the boxed representation. *)
type t = { mutable bits : float }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { bits = Int64.float_of_bits seed }
let copy g = { bits = g.bits }
let blit ~src ~dst = dst.bits <- src.bits

let[@inline] mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let[@inline] int64 g =
  let s = Int64.add (Int64.bits_of_float g.bits) golden_gamma in
  g.bits <- Int64.float_of_bits s;
  mix s

let split g =
  let s = int64 g in
  { bits = Int64.float_of_bits (mix s) }

let[@inline] float g =
  (* 53 high bits -> [0,1) *)
  let bits = Int64.shift_right_logical (int64 g) 11 in
  Int64.to_float bits /. 9007199254740992.0

let uniform g ~lo ~hi =
  if hi < lo then invalid_arg "Prng.uniform: hi < lo";
  lo +. ((hi -. lo) *. float g)

let[@inline] gaussian g ~mu ~sigma =
  (* Box–Muller.  The retry loop replaces the predecessor's local
     recursive [nonzero] closure (a heap block per draw); the draw
     sequence and arithmetic are unchanged. *)
  let u1 = ref (float g) in
  while not (!u1 > 0.) do
    u1 := float g
  done;
  let u2 = float g in
  let z = sqrt (-2. *. log !u1) *. cos (2. *. Float.pi *. u2) in
  mu +. (sigma *. z)

let[@inline] skip_gaussian g =
  (* Advance the state exactly as [gaussian] would — the u1 retry loop
     plus the u2 draw — without evaluating any transcendental.  Lets a
     caller skip draws whose values it can prove it does not need (or
     will materialize later from a saved state) while keeping every
     subsequent draw bit-identical. *)
  let u1 = ref (float g) in
  while not (!u1 > 0.) do
    u1 := float g
  done;
  (* u2: state advance only; its mixed output feeds no state. *)
  g.bits <- Int64.float_of_bits (Int64.add (Int64.bits_of_float g.bits) golden_gamma)

let noisy_into g ~sigma ~dst ~pos ~len =
  (* Multiplicative-noise kernel: dst.(i) <- dst.(i) * (1 + N(0, sigma)).
     Without the native-code optimiser, a cross-module call returning a
     float boxes its result (~16 B) at every call site; writing into a
     caller-owned float array keeps the per-tick sensor path
     allocation-free.  The draw sequence and arithmetic replicate
     [v *. (1. +. gaussian ~mu:0. ~sigma)] bit-for-bit, including the
     "no draw when sigma <= 0" convention of the platform's noisy-sensor
     helper. *)
  if sigma > 0. then
    for i = pos to pos + len - 1 do
      let u1 = ref (float g) in
      while not (!u1 > 0.) do
        u1 := float g
      done;
      let u2 = float g in
      let z = sqrt (-2. *. log !u1) *. cos (2. *. Float.pi *. u2) in
      dst.(i) <- dst.(i) *. (1. +. (0. +. (sigma *. z)))
    done

let bool g = Int64.logand (int64 g) 1L = 1L

let int g n =
  if n <= 0 then invalid_arg "Prng.int: n <= 0";
  (* Shift by 2 so the value fits OCaml's 63-bit native int without
     wrapping negative. *)
  let x = Int64.to_int (Int64.shift_right_logical (int64 g) 2) in
  x mod n
