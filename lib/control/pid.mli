(** Discrete PID controller — the SISO alternative for leaf controllers
    (Fig. 9 allows "various types of Classic Controllers, such as PID or
    state-space").

    Positional form with clamped integrator (anti-windup):

    {v e  = r − y
   I ← clamp(I + e·dt)
   u  = clamp(Kp·e + Ki·I + Kd·(e − e_prev)/dt) v} *)

type config = {
  kp : float;
  ki : float;
  kd : float;
  dt : float;  (** Control period in seconds (> 0). *)
  u_min : float;
  u_max : float;
}

val config :
  ?u_min:float -> ?u_max:float -> kp:float -> ki:float -> kd:float -> dt:float -> unit -> config
(** Raises [Invalid_argument] when [dt <= 0] or [u_min > u_max]. *)

type t

val create : config -> reference:float -> t
val step : t -> measured:float -> float
(** One control period; returns the saturated command. *)

val set_reference : t -> float -> unit
val reference : t -> float
val set_config : t -> config -> unit
(** Gain scheduling for SISO loops: replace the gains in place (the
    integrator state is preserved). *)

val reset : t -> unit

(** {1 Checkpoint/restore}

    The full mutable state of a PID loop apart from its gains (which the
    owner reconstructs): reference, integrator and previous error.  Plain
    data, safe to [Marshal]. *)

type snapshot = {
  snap_reference : float;
  snap_integral : float;
  snap_prev_error : float option;
}

val snapshot : t -> snapshot

val restore : t -> snapshot -> unit
(** Overwrite the controller's mutable state; stepping after [restore]
    continues exactly as the snapshotted instance would have
    ([set_config] changes are not captured — restore into a controller
    built with the same config). *)
