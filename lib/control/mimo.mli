(** Runtime MIMO tracking controller with gain scheduling.

    This is the low-level "leaf controller" of the SPECTR hierarchy
    (Fig. 9): an LQG regulator executing every control period, exposing
    exactly the two hooks the supervisory controller drives —
    {!switch_gains} (gain scheduling) and {!set_reference} (reference
    regulation).

    The controller operates internally on {e normalized} signals: each
    physical input/output channel carries an [offset]/[scale] pair (from
    the identification experiment's operating point) plus saturation
    limits for actuators.  Actuator saturation is handled with
    conditional-integration anti-windup: integrators freeze on the
    saturated channels. *)

type channel = {
  name : string;
  offset : float;  (** Operating-point value subtracted before control. *)
  scale : float;  (** Normalization divisor (≠ 0). *)
  min : float;  (** Physical lower saturation bound. *)
  max : float;  (** Physical upper saturation bound. *)
}

val channel :
  ?offset:float -> ?scale:float -> ?min:float -> ?max:float -> string -> channel
(** Channel with defaults: offset 0, scale 1, unbounded limits.  Raises
    [Invalid_argument] when [scale = 0] or [min > max]. *)

type t
(** Mutable controller instance. *)

val create :
  ?z_clamp:float ->
  gains:Lqg.gains list ->
  initial:string ->
  inputs:channel array ->
  outputs:channel array ->
  refs:float array ->
  unit ->
  t
(** [create ~gains ~initial ~inputs ~outputs ~refs ()] builds a
    controller.  [gains] are the predesigned gain sets (§3.2: "computing
    control parameters for different policies offline"); [initial]
    selects the starting mode by label.  [inputs] describe the m actuator
    channels, [outputs] the p sensor channels, [refs] the initial
    physical reference values (length p).  [z_clamp] bounds each
    integrator state to ±z_clamp normalized units (default 20) — the
    anti-windup mechanism: during an infeasible phase integrators wind
    to the clamp, sustaining a maximal command, and unwind in a bounded
    number of periods afterwards.

    Raises [Invalid_argument] when labels are duplicated, [initial] is
    unknown, any gain set disagrees on (m, p, n), array lengths are
    inconsistent, or [z_clamp <= 0]. *)

val step : t -> measured:float array -> float array
(** One control period: consume the physical measurements (length p) and
    produce the physical actuator commands (length m), saturated to the
    channel limits.  Mirrors the 50 ms daemon invocation of §5. *)

val step_into : t -> measured:float array -> dst:float array -> unit
(** {!step} into a caller-owned command buffer (length m) — bit-identical
    commands and controller-state evolution, but every intermediate of
    the control law lands in scratch preallocated at {!create}, so a
    steady-state invocation allocates nothing.  [dst] must not alias
    [measured]. *)

val switch_gains : t -> string -> unit
(** Gain scheduling: point the controller at a different stored gain set.
    Controller state (estimate and integrators) is preserved, so the
    switch is bumpless and costs O(1) — "changing the coefficient arrays
    at runtime takes effect immediately" (§5.3).  Raises
    [Invalid_argument] on an unknown label. *)

val current_gains : t -> string
(** Label of the active gain set. *)

val available_gains : t -> string list

val set_reference : t -> index:int -> float -> unit
(** Reference regulation: update one physical reference value (e.g. the
    supervisor lowering a cluster's power budget). *)

val reference : t -> index:int -> float

val reset : t -> unit
(** Zero the estimator state and integrators. *)

val num_inputs : t -> int
val num_outputs : t -> int

val last_command : t -> float array option
(** Most recent actuator command, if any step has executed. *)

val last_innovation_norm : t -> float
(** ‖y − C·x̂‖₂ of the last step's Kalman measurement update, in
    normalized output units — how badly the last measurement surprised
    the identified model.  A persistently large residual means the plant
    no longer matches the model (dead sensor, dead cluster, latched
    actuator); the FDIR layer ([Spectr.Fdir]) watches this.  0 before
    the first step and after {!reset}. *)

(** {1 Checkpoint/restore}

    The controller's full mutable state — active gain label, physical
    references, state estimate, integrators, previous normalized command
    and last physical command — as plain data (safe to [Marshal]).  Gains
    and channel descriptions are {e not} captured: restore into a
    controller built by the same design flow.  A restored controller's
    subsequent [step]s are bit-identical to the snapshotted instance's. *)

type snapshot = {
  snap_active : string;
  snap_refs : float array;
  snap_xhat : float array array;
  snap_z : float array array;
  snap_u_prev : float array array;
  snap_last : float array option;
}

val snapshot : t -> snapshot

val restore : t -> snapshot -> unit
(** Raises [Invalid_argument] when the snapshot's gain label is unknown
    to this controller or a dimension disagrees (a checkpoint from a
    different subsystem). *)
