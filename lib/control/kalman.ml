open Spectr_linalg

type design = { l : Matrix.t; sigma : Matrix.t }
type error = Riccati_failed of Riccati.error | Bad_covariances of string

let pp_error ppf = function
  | Riccati_failed e -> Format.fprintf ppf "Riccati: %a" Riccati.pp_error e
  | Bad_covariances s -> Format.fprintf ppf "bad covariances: %s" s

let design ~a ~c ~qw ~rv =
  let n = Matrix.rows a and p = Matrix.rows c in
  if Matrix.rows qw <> n || Matrix.cols qw <> n then
    Error (Bad_covariances "Qw must be n x n")
  else if Matrix.rows rv <> p || Matrix.cols rv <> p then
    Error (Bad_covariances "Rv must be p x p")
  else
    (* The estimation DARE is the control DARE on the dual system
       (A -> A', B -> C', Q -> Qw, R -> Rv). *)
    match
      Riccati.solve ~a:(Matrix.transpose a) ~b:(Matrix.transpose c) ~q:qw ~r:rv
        ()
    with
    | Error e -> Error (Riccati_failed e)
    | Ok sigma ->
        let ct = Matrix.transpose c in
        let s = Matrix.add (Matrix.mul (Matrix.mul c sigma) ct) rv in
        (* L = Σ C' S^-1  computed as  solve(S', (Σ C')')' *)
        let sig_ct = Matrix.mul sigma ct in
        let l =
          Matrix.transpose
            (Matrix.solve (Matrix.transpose s) (Matrix.transpose sig_ct))
        in
        Ok { l; sigma }

let correct ~l ~c ~xhat ~y =
  let innovation = Matrix.sub y (Matrix.mul c xhat) in
  Matrix.add xhat (Matrix.mul l innovation)

(* Allocation-free [correct] for the tick path: same operations in the
   same order, into caller-owned buffers.  [tmp_p] (p×1) holds C·x̂ then
   the innovation; [tmp_n] (n×1) holds L·innovation.  [dst] must not
   alias [xhat] or the scratch. *)
let correct_into ~l ~c ~xhat ~y ~tmp_p ~tmp_n ~dst =
  Matrix.mul_into ~dst:tmp_p c xhat;
  Matrix.sub_into ~dst:tmp_p y tmp_p;
  Matrix.mul_into ~dst:tmp_n l tmp_p;
  Matrix.add_into ~dst xhat tmp_n
