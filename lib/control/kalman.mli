(** Steady-state Kalman filter design.

    The LQG controllers of the paper pair an LQR state feedback with a
    state estimator; the steady-state (stationary) filter gain is
    computed from the dual DARE:

    {v Σ = A Σ Aᵀ − A Σ Cᵀ (Rv + C Σ Cᵀ)⁻¹ C Σ Aᵀ + Qw
   L = Σ Cᵀ (C Σ Cᵀ + Rv)⁻¹ v}

    where Qw is the process-noise covariance and Rv the measurement-noise
    covariance. *)

open Spectr_linalg

type design = {
  l : Matrix.t;  (** n×p filter gain (for the measurement update). *)
  sigma : Matrix.t;  (** Steady-state a-priori error covariance. *)
}

type error = Riccati_failed of Riccati.error | Bad_covariances of string

val pp_error : Format.formatter -> error -> unit

val design :
  a:Matrix.t ->
  c:Matrix.t ->
  qw:Matrix.t ->
  rv:Matrix.t ->
  (design, error) result

val correct : l:Matrix.t -> c:Matrix.t -> xhat:Matrix.t -> y:Matrix.t -> Matrix.t
(** Measurement update  x̂ ← x̂ + L (y − C x̂). *)

val correct_into :
  l:Matrix.t ->
  c:Matrix.t ->
  xhat:Matrix.t ->
  y:Matrix.t ->
  tmp_p:Matrix.t ->
  tmp_n:Matrix.t ->
  dst:Matrix.t ->
  unit
(** {!correct} into caller-owned buffers — bit-identical results, zero
    allocation.  [tmp_p] is p×1 scratch, [tmp_n] is n×1 scratch; [dst]
    (n×1) receives the corrected state and must not alias [xhat] or the
    scratch. *)
