type config = {
  kp : float;
  ki : float;
  kd : float;
  dt : float;
  u_min : float;
  u_max : float;
}

let config ?(u_min = neg_infinity) ?(u_max = infinity) ~kp ~ki ~kd ~dt () =
  if dt <= 0. then invalid_arg "Pid.config: dt <= 0";
  if u_min > u_max then invalid_arg "Pid.config: u_min > u_max";
  { kp; ki; kd; dt; u_min; u_max }

type t = {
  mutable cfg : config;
  mutable reference : float;
  mutable integral : float;
  mutable prev_error : float option;
}

let create cfg ~reference = { cfg; reference; integral = 0.; prev_error = None }

let clamp lo hi v = Float.min hi (Float.max lo v)

let step t ~measured =
  let { kp; ki; kd; dt; u_min; u_max } = t.cfg in
  let e = t.reference -. measured in
  let deriv =
    match t.prev_error with None -> 0. | Some pe -> (e -. pe) /. dt
  in
  let integral_candidate = t.integral +. (e *. dt) in
  let u_unsat = (kp *. e) +. (ki *. integral_candidate) +. (kd *. deriv) in
  let u = clamp u_min u_max u_unsat in
  (* anti-windup: only commit the integral when not saturated *)
  if u = u_unsat then t.integral <- integral_candidate;
  t.prev_error <- Some e;
  u

let set_reference t r = t.reference <- r
let reference t = t.reference
let set_config t cfg = t.cfg <- cfg

let reset t =
  t.integral <- 0.;
  t.prev_error <- None

type snapshot = {
  snap_reference : float;
  snap_integral : float;
  snap_prev_error : float option;
}

let snapshot t =
  {
    snap_reference = t.reference;
    snap_integral = t.integral;
    snap_prev_error = t.prev_error;
  }

let restore t s =
  t.reference <- s.snap_reference;
  t.integral <- s.snap_integral;
  t.prev_error <- s.snap_prev_error
