open Spectr_linalg

type channel = {
  name : string;
  offset : float;
  scale : float;
  min : float;
  max : float;
}

let channel ?(offset = 0.) ?(scale = 1.) ?(min = neg_infinity)
    ?(max = infinity) name =
  if scale = 0. then invalid_arg "Mimo.channel: zero scale";
  if min > max then invalid_arg "Mimo.channel: min > max";
  { name; offset; scale; min; max }

type t = {
  gains : (string * Lqg.gains) list;
  mutable active : Lqg.gains;
  inputs : channel array;
  outputs : channel array;
  refs : float array; (* physical reference values, mutable entries *)
  z_clamp : float;
  mutable xhat : Matrix.t; (* n x 1 predicted state *)
  mutable z : Matrix.t; (* p x 1 integrator *)
  mutable u_prev : Matrix.t; (* m x 1 normalized previous command *)
  mutable last : float array option;
}

let dims g =
  ( Statespace.order g.Lqg.model,
    Statespace.num_inputs g.Lqg.model,
    Statespace.num_outputs g.Lqg.model )

let create ?(z_clamp = 20.) ~gains ~initial ~inputs ~outputs ~refs () =
  if z_clamp <= 0. then invalid_arg "Mimo.create: z_clamp <= 0";
  (match gains with [] -> invalid_arg "Mimo.create: no gain sets" | _ -> ());
  let labels = List.map (fun g -> g.Lqg.label) gains in
  let rec dup = function
    | [] -> None
    | x :: rest -> if List.mem x rest then Some x else dup rest
  in
  (match dup labels with
  | Some l -> invalid_arg (Printf.sprintf "Mimo.create: duplicate label %S" l)
  | None -> ());
  let d0 = dims (List.hd gains) in
  List.iter
    (fun g ->
      if dims g <> d0 then
        invalid_arg "Mimo.create: gain sets disagree on dimensions")
    gains;
  let n, m, p = d0 in
  if Array.length inputs <> m then invalid_arg "Mimo.create: inputs length";
  if Array.length outputs <> p then invalid_arg "Mimo.create: outputs length";
  if Array.length refs <> p then invalid_arg "Mimo.create: refs length";
  let active =
    match List.find_opt (fun g -> g.Lqg.label = initial) gains with
    | Some g -> g
    | None -> invalid_arg (Printf.sprintf "Mimo.create: unknown label %S" initial)
  in
  {
    gains = List.map (fun g -> (g.Lqg.label, g)) gains;
    active;
    inputs;
    outputs;
    refs = Array.copy refs;
    z_clamp;
    xhat = Matrix.zeros ~rows:n ~cols:1;
    z = Matrix.zeros ~rows:p ~cols:1;
    u_prev = Matrix.zeros ~rows:m ~cols:1;
    last = None;
  }

let normalize ch v = (v -. ch.offset) /. ch.scale
let denormalize ch v = (v *. ch.scale) +. ch.offset
let clamp ch v = Float.min ch.max (Float.max ch.min v)

let step ctrl ~measured =
  let g = ctrl.active in
  let model = g.Lqg.model in
  let p = Statespace.num_outputs model in
  let m = Statespace.num_inputs model in
  if Array.length measured <> p then invalid_arg "Mimo.step: measured length";
  (* 1. normalize measurements and references *)
  let y =
    Matrix.init ~rows:p ~cols:1 (fun i _ -> normalize ctrl.outputs.(i) measured.(i))
  in
  let r =
    Matrix.init ~rows:p ~cols:1 (fun i _ ->
        normalize ctrl.outputs.(i) ctrl.refs.(i))
  in
  (* 2. Kalman measurement update on the predicted state *)
  let xfilt = Kalman.correct ~l:g.Lqg.l ~c:model.Statespace.c ~xhat:ctrl.xhat ~y in
  (* 3. integrator update with the current tracking error (conditional
        anti-windup applied after saturation below) *)
  let err = Matrix.sub r y in
  let z_candidate = Matrix.add (Matrix.scale g.Lqg.leak ctrl.z) err in
  (* 4. feedback law on normalized deviations *)
  let u_unsat =
    Matrix.neg
      (Matrix.add (Matrix.mul g.Lqg.kx xfilt) (Matrix.mul g.Lqg.kz z_candidate))
  in
  (* 5. saturate in physical units *)
  let phys = Array.make m 0. in
  for i = 0 to m - 1 do
    let ch = ctrl.inputs.(i) in
    phys.(i) <- clamp ch (denormalize ch (Matrix.get u_unsat i 0))
  done;
  let u_norm =
    Matrix.init ~rows:m ~cols:1 (fun i _ -> normalize ctrl.inputs.(i) phys.(i))
  in
  (* 6. anti-windup by integrator clamping: each integrator state is
        bounded to ±z_clamp (normalized units).  During an infeasible
        phase the integrators wind to the clamp — sustaining a maximal
        command, which is the desired behaviour for a prioritized
        objective — and unwinding after recovery takes a bounded number
        of periods instead of growing with the infeasible duration. *)
  ctrl.z <-
    Matrix.map
      (fun z -> Float.max (-.ctrl.z_clamp) (Float.min ctrl.z_clamp z))
      z_candidate;
  (* 7. time update with the saturated command *)
  let x_next, _ = Statespace.step model ~x:xfilt ~u:u_norm in
  ctrl.xhat <- x_next;
  ctrl.u_prev <- u_norm;
  ctrl.last <- Some (Array.copy phys);
  phys

let switch_gains ctrl label =
  match List.assoc_opt label ctrl.gains with
  | None ->
      invalid_arg (Printf.sprintf "Mimo.switch_gains: unknown label %S" label)
  | Some g when g == ctrl.active -> ()
  | Some g ->
      (* Bumpless transfer: the integrator contribution to the command
         must be continuous across the switch, so solve
         Kz_new · z_new = Kz_old · z_old in the least-squares sense.
         Without this, a wound integrator reinterpreted under different
         gains slams the actuators and can limit-cycle the supervisor. *)
      let contribution = Matrix.mul ctrl.active.Lqg.kz ctrl.z in
      let kz = g.Lqg.kz in
      let kzt = Matrix.transpose kz in
      let p = Matrix.rows ctrl.z in
      let gram =
        Matrix.add (Matrix.mul kzt kz) (Matrix.scale 1e-9 (Matrix.identity p))
      in
      (match Matrix.solve gram (Matrix.mul kzt contribution) with
      | z_new -> ctrl.z <- z_new
      | exception Failure _ -> ());
      ctrl.active <- g

let current_gains ctrl = ctrl.active.Lqg.label
let available_gains ctrl = List.map fst ctrl.gains

let set_reference ctrl ~index value =
  if index < 0 || index >= Array.length ctrl.refs then
    invalid_arg "Mimo.set_reference: index";
  ctrl.refs.(index) <- value

let reference ctrl ~index =
  if index < 0 || index >= Array.length ctrl.refs then
    invalid_arg "Mimo.reference: index";
  ctrl.refs.(index)

let reset ctrl =
  let n, m, p = dims ctrl.active in
  ctrl.xhat <- Matrix.zeros ~rows:n ~cols:1;
  ctrl.z <- Matrix.zeros ~rows:p ~cols:1;
  ctrl.u_prev <- Matrix.zeros ~rows:m ~cols:1;
  ctrl.last <- None

let num_inputs ctrl = Array.length ctrl.inputs
let num_outputs ctrl = Array.length ctrl.outputs
let last_command ctrl = Option.map Array.copy ctrl.last

type snapshot = {
  snap_active : string;
  snap_refs : float array;
  snap_xhat : float array array;
  snap_z : float array array;
  snap_u_prev : float array array;
  snap_last : float array option;
}

let snapshot ctrl =
  {
    snap_active = ctrl.active.Lqg.label;
    snap_refs = Array.copy ctrl.refs;
    snap_xhat = Matrix.to_arrays ctrl.xhat;
    snap_z = Matrix.to_arrays ctrl.z;
    snap_u_prev = Matrix.to_arrays ctrl.u_prev;
    snap_last = Option.map Array.copy ctrl.last;
  }

let restore ctrl s =
  (match List.assoc_opt s.snap_active ctrl.gains with
  | Some g -> ctrl.active <- g
  | None ->
      invalid_arg
        (Printf.sprintf "Mimo.restore: unknown gain label %S" s.snap_active));
  if Array.length s.snap_refs <> Array.length ctrl.refs then
    invalid_arg "Mimo.restore: refs length";
  Array.blit s.snap_refs 0 ctrl.refs 0 (Array.length ctrl.refs);
  let n, m, p = dims ctrl.active in
  let shape what rows a =
    let mat = Matrix.of_arrays a in
    if Matrix.rows mat <> rows || Matrix.cols mat <> 1 then
      invalid_arg ("Mimo.restore: " ^ what ^ " shape");
    mat
  in
  ctrl.xhat <- shape "xhat" n s.snap_xhat;
  ctrl.z <- shape "z" p s.snap_z;
  ctrl.u_prev <- shape "u_prev" m s.snap_u_prev;
  ctrl.last <- Option.map Array.copy s.snap_last
