open Spectr_linalg

type channel = {
  name : string;
  offset : float;
  scale : float;
  min : float;
  max : float;
}

let channel ?(offset = 0.) ?(scale = 1.) ?(min = neg_infinity)
    ?(max = infinity) name =
  if scale = 0. then invalid_arg "Mimo.channel: zero scale";
  if min > max then invalid_arg "Mimo.channel: min > max";
  { name; offset; scale; min; max }

type t = {
  gains : (string * Lqg.gains) list;
  mutable active : Lqg.gains;
  inputs : channel array;
  outputs : channel array;
  refs : float array; (* physical reference values, mutable entries *)
  z_clamp : float;
  mutable xhat : Matrix.t; (* n x 1 predicted state *)
  mutable z : Matrix.t; (* p x 1 integrator *)
  mutable u_prev : Matrix.t; (* m x 1 normalized previous command *)
  (* Scratch for the allocation-free tick path (step_into): every
     intermediate of the control law lives in one of these preallocated
     column vectors.  Dimensions are fixed at create (all gain sets
     agree on n, m, p). *)
  scr_y : Matrix.t; (* p x 1 normalized measurements *)
  scr_r : Matrix.t; (* p x 1 normalized references *)
  scr_err : Matrix.t; (* p x 1 tracking error *)
  scr_zc : Matrix.t; (* p x 1 integrator candidate *)
  scr_p : Matrix.t; (* p x 1 Kalman innovation scratch *)
  scr_xf : Matrix.t; (* n x 1 filtered state *)
  scr_n1 : Matrix.t; (* n x 1 scratch *)
  scr_n2 : Matrix.t; (* n x 1 scratch *)
  scr_m1 : Matrix.t; (* m x 1 unsaturated command *)
  scr_m2 : Matrix.t; (* m x 1 scratch *)
  last : float array; (* m, last physical command *)
  innov : float array;
      (* 1 entry: ‖Kalman innovation‖₂ of the last step, in normalized
         output units — the FDIR residual monitor's signal.  A float
         array (not a mutable float field) so the store stays unboxed in
         this mixed record. *)
  mutable last_valid : bool;
}

let dims g =
  ( Statespace.order g.Lqg.model,
    Statespace.num_inputs g.Lqg.model,
    Statespace.num_outputs g.Lqg.model )

let create ?(z_clamp = 20.) ~gains ~initial ~inputs ~outputs ~refs () =
  if z_clamp <= 0. then invalid_arg "Mimo.create: z_clamp <= 0";
  (match gains with [] -> invalid_arg "Mimo.create: no gain sets" | _ -> ());
  let labels = List.map (fun g -> g.Lqg.label) gains in
  let rec dup = function
    | [] -> None
    | x :: rest -> if List.mem x rest then Some x else dup rest
  in
  (match dup labels with
  | Some l -> invalid_arg (Printf.sprintf "Mimo.create: duplicate label %S" l)
  | None -> ());
  let d0 = dims (List.hd gains) in
  List.iter
    (fun g ->
      if dims g <> d0 then
        invalid_arg "Mimo.create: gain sets disagree on dimensions")
    gains;
  let n, m, p = d0 in
  if Array.length inputs <> m then invalid_arg "Mimo.create: inputs length";
  if Array.length outputs <> p then invalid_arg "Mimo.create: outputs length";
  if Array.length refs <> p then invalid_arg "Mimo.create: refs length";
  let active =
    match List.find_opt (fun g -> g.Lqg.label = initial) gains with
    | Some g -> g
    | None -> invalid_arg (Printf.sprintf "Mimo.create: unknown label %S" initial)
  in
  {
    gains = List.map (fun g -> (g.Lqg.label, g)) gains;
    active;
    inputs;
    outputs;
    refs = Array.copy refs;
    z_clamp;
    xhat = Matrix.zeros ~rows:n ~cols:1;
    z = Matrix.zeros ~rows:p ~cols:1;
    u_prev = Matrix.zeros ~rows:m ~cols:1;
    scr_y = Matrix.zeros ~rows:p ~cols:1;
    scr_r = Matrix.zeros ~rows:p ~cols:1;
    scr_err = Matrix.zeros ~rows:p ~cols:1;
    scr_zc = Matrix.zeros ~rows:p ~cols:1;
    scr_p = Matrix.zeros ~rows:p ~cols:1;
    scr_xf = Matrix.zeros ~rows:n ~cols:1;
    scr_n1 = Matrix.zeros ~rows:n ~cols:1;
    scr_n2 = Matrix.zeros ~rows:n ~cols:1;
    scr_m1 = Matrix.zeros ~rows:m ~cols:1;
    scr_m2 = Matrix.zeros ~rows:m ~cols:1;
    last = Array.make m 0.;
    innov = Array.make 1 0.;
    last_valid = false;
  }

let[@inline] normalize ch v = (v -. ch.offset) /. ch.scale
let[@inline] denormalize ch v = (v *. ch.scale) +. ch.offset
let[@inline] clamp ch v = Float.min ch.max (Float.max ch.min v)

(* The allocation-free control period: identical operations in identical
   order to the historical allocating [step] (bit-identical commands —
   the scenario CSV pins depend on it), but every intermediate lands in
   a preallocated scratch vector and the command in the caller's [dst].
   The one intentional difference: the C·x/D·u output equation of
   {!Statespace.step}, whose result was always discarded, is skipped. *)
let step_into ctrl ~measured ~dst =
  let g = ctrl.active in
  let model = g.Lqg.model in
  let p = Statespace.num_outputs model in
  let m = Statespace.num_inputs model in
  if Array.length measured <> p then invalid_arg "Mimo.step: measured length";
  if Array.length dst <> m then invalid_arg "Mimo.step_into: dst length";
  (* 1. normalize measurements and references *)
  let yd = Matrix.data ctrl.scr_y and rd = Matrix.data ctrl.scr_r in
  for i = 0 to p - 1 do
    yd.(i) <- normalize ctrl.outputs.(i) measured.(i);
    rd.(i) <- normalize ctrl.outputs.(i) ctrl.refs.(i)
  done;
  (* 2. Kalman measurement update on the predicted state *)
  Kalman.correct_into ~l:g.Lqg.l ~c:model.Statespace.c ~xhat:ctrl.xhat
    ~y:ctrl.scr_y ~tmp_p:ctrl.scr_p ~tmp_n:ctrl.scr_n1 ~dst:ctrl.scr_xf;
  (* [correct_into] leaves the innovation y − C·x̂ in [scr_p]; its norm
     is the model-consistency residual the FDIR layer watches.  Pure
     extra reads — no draw, no store the control law observes. *)
  let pd = Matrix.data ctrl.scr_p in
  let s2 = ref 0. in
  for i = 0 to p - 1 do
    s2 := !s2 +. (pd.(i) *. pd.(i))
  done;
  ctrl.innov.(0) <- Float.sqrt !s2;
  (* 3. integrator update with the current tracking error (conditional
        anti-windup applied after saturation below) *)
  Matrix.sub_into ~dst:ctrl.scr_err ctrl.scr_r ctrl.scr_y;
  Matrix.scale_into ~dst:ctrl.scr_zc g.Lqg.leak ctrl.z;
  Matrix.add_into ~dst:ctrl.scr_zc ctrl.scr_zc ctrl.scr_err;
  (* 4. feedback law on normalized deviations *)
  Matrix.mul_into ~dst:ctrl.scr_m1 g.Lqg.kx ctrl.scr_xf;
  Matrix.mul_into ~dst:ctrl.scr_m2 g.Lqg.kz ctrl.scr_zc;
  Matrix.add_into ~dst:ctrl.scr_m1 ctrl.scr_m1 ctrl.scr_m2;
  Matrix.neg_into ~dst:ctrl.scr_m1 ctrl.scr_m1;
  (* 5. saturate in physical units; keep the normalized saturated
        command for the time update *)
  let ud = Matrix.data ctrl.scr_m1 in
  let und = Matrix.data ctrl.u_prev in
  for i = 0 to m - 1 do
    let ch = ctrl.inputs.(i) in
    dst.(i) <- clamp ch (denormalize ch ud.(i));
    und.(i) <- normalize ch dst.(i)
  done;
  (* 6. anti-windup by integrator clamping: each integrator state is
        bounded to ±z_clamp (normalized units).  During an infeasible
        phase the integrators wind to the clamp — sustaining a maximal
        command, which is the desired behaviour for a prioritized
        objective — and unwinding after recovery takes a bounded number
        of periods instead of growing with the infeasible duration. *)
  let zcd = Matrix.data ctrl.scr_zc and zd = Matrix.data ctrl.z in
  for i = 0 to p - 1 do
    zd.(i) <- Float.max (-.ctrl.z_clamp) (Float.min ctrl.z_clamp zcd.(i))
  done;
  (* 7. time update with the saturated command: x' = A·x̂ + B·u *)
  Matrix.mul_into ~dst:ctrl.scr_n1 model.Statespace.a ctrl.scr_xf;
  Matrix.mul_into ~dst:ctrl.scr_n2 model.Statespace.b ctrl.u_prev;
  Matrix.add_into ~dst:ctrl.xhat ctrl.scr_n1 ctrl.scr_n2;
  Array.blit dst 0 ctrl.last 0 m;
  ctrl.last_valid <- true

let step ctrl ~measured =
  let dst = Array.make (Statespace.num_inputs ctrl.active.Lqg.model) 0. in
  step_into ctrl ~measured ~dst;
  dst

let switch_gains ctrl label =
  match List.assoc_opt label ctrl.gains with
  | None ->
      invalid_arg (Printf.sprintf "Mimo.switch_gains: unknown label %S" label)
  | Some g when g == ctrl.active -> ()
  | Some g ->
      (* Bumpless transfer: the integrator contribution to the command
         must be continuous across the switch, so solve
         Kz_new · z_new = Kz_old · z_old in the least-squares sense.
         Without this, a wound integrator reinterpreted under different
         gains slams the actuators and can limit-cycle the supervisor. *)
      let contribution = Matrix.mul ctrl.active.Lqg.kz ctrl.z in
      let kz = g.Lqg.kz in
      let kzt = Matrix.transpose kz in
      let p = Matrix.rows ctrl.z in
      let gram =
        Matrix.add (Matrix.mul kzt kz) (Matrix.scale 1e-9 (Matrix.identity p))
      in
      (match Matrix.solve gram (Matrix.mul kzt contribution) with
      | z_new -> ctrl.z <- z_new
      | exception Failure _ -> ());
      ctrl.active <- g

let current_gains ctrl = ctrl.active.Lqg.label
let available_gains ctrl = List.map fst ctrl.gains

let set_reference ctrl ~index value =
  if index < 0 || index >= Array.length ctrl.refs then
    invalid_arg "Mimo.set_reference: index";
  ctrl.refs.(index) <- value

let reference ctrl ~index =
  if index < 0 || index >= Array.length ctrl.refs then
    invalid_arg "Mimo.reference: index";
  ctrl.refs.(index)

let reset ctrl =
  let n, m, p = dims ctrl.active in
  ctrl.xhat <- Matrix.zeros ~rows:n ~cols:1;
  ctrl.z <- Matrix.zeros ~rows:p ~cols:1;
  ctrl.u_prev <- Matrix.zeros ~rows:m ~cols:1;
  ctrl.innov.(0) <- 0.;
  ctrl.last_valid <- false

let num_inputs ctrl = Array.length ctrl.inputs
let num_outputs ctrl = Array.length ctrl.outputs
let last_innovation_norm ctrl = ctrl.innov.(0)

let last_command ctrl =
  if ctrl.last_valid then Some (Array.copy ctrl.last) else None

type snapshot = {
  snap_active : string;
  snap_refs : float array;
  snap_xhat : float array array;
  snap_z : float array array;
  snap_u_prev : float array array;
  snap_last : float array option;
}

let snapshot ctrl =
  {
    snap_active = ctrl.active.Lqg.label;
    snap_refs = Array.copy ctrl.refs;
    snap_xhat = Matrix.to_arrays ctrl.xhat;
    snap_z = Matrix.to_arrays ctrl.z;
    snap_u_prev = Matrix.to_arrays ctrl.u_prev;
    snap_last = (if ctrl.last_valid then Some (Array.copy ctrl.last) else None);
  }

let restore ctrl s =
  (match List.assoc_opt s.snap_active ctrl.gains with
  | Some g -> ctrl.active <- g
  | None ->
      invalid_arg
        (Printf.sprintf "Mimo.restore: unknown gain label %S" s.snap_active));
  if Array.length s.snap_refs <> Array.length ctrl.refs then
    invalid_arg "Mimo.restore: refs length";
  Array.blit s.snap_refs 0 ctrl.refs 0 (Array.length ctrl.refs);
  let n, m, p = dims ctrl.active in
  let shape what rows a =
    let mat = Matrix.of_arrays a in
    if Matrix.rows mat <> rows || Matrix.cols mat <> 1 then
      invalid_arg ("Mimo.restore: " ^ what ^ " shape");
    mat
  in
  ctrl.xhat <- shape "xhat" n s.snap_xhat;
  ctrl.z <- shape "z" p s.snap_z;
  ctrl.u_prev <- shape "u_prev" m s.snap_u_prev;
  match s.snap_last with
  | None -> ctrl.last_valid <- false
  | Some a ->
      if Array.length a <> m then invalid_arg "Mimo.restore: last shape";
      Array.blit a 0 ctrl.last 0 m;
      ctrl.last_valid <- true
