(** Observability layer: counters, latency histograms and a structured
    decision log for the supervisory control runtime.

    {e Off by default.}  While disabled, every recording entry point is
    an allocation-free no-op (one atomic load), so instrumented hot
    paths produce byte-identical traces, CSVs and bench output.  Enable
    with {!enable} — optionally installing a real monotonic clock; the
    default {!Clock} source is a deterministic tick counter advanced by
    the simulator, which makes counter values and decision logs
    reproducible run-to-run (pinned by the obs determinism tests). *)

module Clock = Clock
module Counters = Counters
module Histogram = Histogram
module Decision_log = Decision_log

val enabled : unit -> bool

val enable : ?now_ns:(unit -> int64) -> unit -> unit
(** Turn instrumentation on.  [now_ns], when given, installs a monotonic
    nanosecond clock as the {!Clock} source (otherwise the current
    source — ticks by default — is kept). *)

val disable : unit -> unit

val reset : unit -> unit
(** Zero all counters, gauges and histograms, clear the decision log and
    the tick clock.  Registrations survive. *)

val time : Histogram.t -> (unit -> 'a) -> 'a
(** [time h f] runs [f] and records its elapsed nanoseconds into [h]
    (when enabled; otherwise just runs [f]). *)

val summary : unit -> string
(** Human-readable multi-line summary: counters, gauges, non-empty
    histograms with p50/p95/p99/max/mean, and decision-kind tallies. *)
