(** Fixed-bucket log-scale latency histograms (nanosecond samples).

    Power-of-two buckets, lock-free recording on atomics, percentiles
    answered as the upper bound of the covering bucket clamped by the
    exactly-tracked maximum.  [observe] is an allocation-free no-op while
    instrumentation is disabled. *)

type t

val histogram : string -> t
(** Get or create the histogram registered under this name. *)

val observe : t -> int -> unit
(** Record one nanosecond sample.  Negative samples (a clock bug in the
    caller) are rejected consistently — they touch neither [count], [sum]
    nor any bucket, only the {!dropped} tally — so [mean_ns] is always
    the mean of the samples actually recorded.  Zero is a valid sample
    (bucket 0). *)

val name : t -> string
val count : t -> int
val max_ns : t -> int
val mean_ns : t -> float

val dropped : t -> int
(** Negative samples rejected by {!observe} since the last reset. *)

val percentile : t -> float -> int
(** [percentile t 95.] is an upper bound of the 95th-percentile sample
    (exact up to the 2x bucket width; exactly the max for p = 100).
    0 when empty.  Raises [Invalid_argument] outside [0, 100]. *)

val snapshot : unit -> (string * t) list
(** Every registered histogram, sorted by name. *)

val reset : unit -> unit
(** Zero every histogram (registration survives). *)
