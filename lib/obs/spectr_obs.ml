(* Spectr_obs — the observability layer.

   Off by default: every recording entry point checks one atomic flag
   and is an allocation-free no-op while disabled, so the instrumented
   hot paths (Supervisor.step, Soc.step, Pool, Synth_cache, …) leave
   pinned traces and bench stdout byte-identical.  Enabling costs a few
   atomic ops per sample and a mutexed ring append per decision. *)

module Clock = Clock
module Counters = Counters
module Histogram = Histogram
module Decision_log = Decision_log

let enabled () = Atomic.get State.enabled

let enable ?now_ns () =
  (match now_ns with Some f -> Clock.use_monotonic f | None -> ());
  Atomic.set State.enabled true

let disable () = Atomic.set State.enabled false

let reset () =
  Counters.reset ();
  Histogram.reset ();
  Decision_log.reset ();
  Clock.reset ()

(* Elapsed nanoseconds of [f ()], recorded into [h] when enabled. *)
let time h f =
  if not (enabled ()) then f ()
  else begin
    let t0 = Clock.now_ns () in
    let finish () =
      Histogram.observe h (Int64.to_int (Int64.sub (Clock.now_ns ()) t0))
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        finish ();
        raise e
  end

let summary () =
  let b = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "== observability summary ==\n";
  (match Counters.snapshot () with
  | [] -> ()
  | cs ->
      pf "counters:\n";
      List.iter (fun (n, v) -> pf "  %-40s %d\n" n v) cs);
  (match Counters.gauge_snapshot () with
  | [] -> ()
  | gs ->
      pf "gauges:\n";
      List.iter (fun (n, v) -> pf "  %-40s %.6g\n" n v) gs);
  let live =
    List.filter (fun (_, h) -> Histogram.count h > 0) (Histogram.snapshot ())
  in
  (match live with
  | [] -> ()
  | hs ->
      pf "histograms (ns):\n";
      List.iter
        (fun (n, h) ->
          pf "  %-28s count=%-8d p50=%-8d p95=%-8d p99=%-8d max=%-8d mean=%.1f\n"
            n (Histogram.count h)
            (Histogram.percentile h 50.)
            (Histogram.percentile h 95.)
            (Histogram.percentile h 99.)
            (Histogram.max_ns h) (Histogram.mean_ns h))
        hs);
  pf "decisions: logged=%d retained=%d dropped=%d\n" (Decision_log.total ())
    (Decision_log.length ()) (Decision_log.dropped ());
  List.iter (fun (k, n) -> pf "  %-40s %d\n" k n) (Decision_log.kind_counts ());
  Buffer.contents b
