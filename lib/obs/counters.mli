(** Named monotonic counters and gauges, domain-safe.

    Counters shard per domain (merged on read); gauges are last-write-
    wins cells.  Handles are cheap to look up and are normally bound once
    at module initialization of the instrumented subsystem.  While
    instrumentation is disabled (the default), [incr]/[add]/[set] are
    allocation-free no-ops. *)

type t
(** A named monotonic counter. *)

type gauge
(** A named level (last write wins). *)

val counter : string -> t
(** Get or create the counter registered under this name. *)

val gauge : string -> gauge

val incr : t -> unit
val add : t -> int -> unit
val value : t -> int
(** Merged value across all domain shards. *)

val name : t -> string

val set : gauge -> float -> unit
val gauge_value : gauge -> float
val gauge_name : gauge -> string

val by_name : string -> int option
(** Merged value of a registered counter, [None] if never registered. *)

val snapshot : unit -> (string * int) list
(** Every registered counter with its merged value, sorted by name. *)

val gauge_snapshot : unit -> (string * float) list

val reset : unit -> unit
(** Zero every counter and gauge (registration survives). *)
