(* Fixed-bucket log-scale latency histograms.

   Bucket [b] holds samples whose nanosecond value needs exactly [b]
   significant bits, i.e. the half-open range [2^(b-1), 2^b) (bucket 0
   holds zero samples).  63 buckets cover every OCaml int.  Negative
   samples — a clock bug upstream — are rejected whole (counted only in
   [dropped]): the old behaviour clamped them out of [sum] but still
   incremented [count] and bucket 0, silently dragging [mean_ns] below
   every real sample.  Buckets are plain atomics — recording is a couple
   of fetch-and-adds, domain-safe without locks — and percentiles are
   answered from the cumulative bucket walk, clamped by the
   exactly-tracked maximum. *)

let bucket_count = 63

type t = {
  name : string;
  buckets : int Atomic.t array;
  count : int Atomic.t;
  sum : int Atomic.t;
  max : int Atomic.t;
  dropped : int Atomic.t; (* negative samples rejected by [observe] *)
}

let registry : (string, t) Hashtbl.t = Hashtbl.create 8
let mu = Mutex.create ()

let histogram name =
  Mutex.lock mu;
  let h =
    match Hashtbl.find_opt registry name with
    | Some h -> h
    | None ->
        let h =
          {
            name;
            buckets = Array.init bucket_count (fun _ -> Atomic.make 0);
            count = Atomic.make 0;
            sum = Atomic.make 0;
            max = Atomic.make 0;
            dropped = Atomic.make 0;
          }
        in
        Hashtbl.add registry name h;
        h
  in
  Mutex.unlock mu;
  h

let bucket_of ns =
  if ns <= 0 then 0
  else begin
    let b = ref 0 and v = ref ns in
    while !v > 0 do
      incr b;
      v := !v lsr 1
    done;
    min !b (bucket_count - 1)
  end

let rec update_max cell v =
  let cur = Atomic.get cell in
  if v > cur && not (Atomic.compare_and_set cell cur v) then update_max cell v

let observe t ns =
  if Atomic.get State.enabled then
    if ns < 0 then ignore (Atomic.fetch_and_add t.dropped 1)
    else begin
      ignore (Atomic.fetch_and_add t.buckets.(bucket_of ns) 1);
      ignore (Atomic.fetch_and_add t.count 1);
      ignore (Atomic.fetch_and_add t.sum ns);
      update_max t.max ns
    end

let name t = t.name
let count t = Atomic.get t.count
let max_ns t = Atomic.get t.max
let dropped t = Atomic.get t.dropped

let mean_ns t =
  let n = Atomic.get t.count in
  if n = 0 then 0. else float_of_int (Atomic.get t.sum) /. float_of_int n

(* Upper bound of the bucket holding the rank-p sample, clamped by the
   exact maximum (so percentile 100 is the true max). *)
let percentile t p =
  if p < 0. || p > 100. then invalid_arg "Histogram.percentile";
  let total = Atomic.get t.count in
  if total = 0 then 0
  else begin
    let rank =
      Stdlib.max 1
        (Stdlib.min total
           (int_of_float (Float.ceil (p /. 100. *. float_of_int total))))
    in
    let acc = ref 0 and result = ref 0 and found = ref false in
    for b = 0 to bucket_count - 1 do
      if not !found then begin
        acc := !acc + Atomic.get t.buckets.(b);
        if !acc >= rank then begin
          found := true;
          result := (if b = 0 then 0 else (1 lsl b) - 1)
        end
      end
    done;
    Stdlib.min !result (Atomic.get t.max)
  end

let snapshot () =
  Mutex.lock mu;
  let xs = Hashtbl.fold (fun name h acc -> (name, h) :: acc) registry [] in
  Mutex.unlock mu;
  List.sort (fun (a, _) (b, _) -> compare a b) xs

let reset () =
  Mutex.lock mu;
  Hashtbl.iter
    (fun _ h ->
      Array.iter (fun b -> Atomic.set b 0) h.buckets;
      Atomic.set h.count 0;
      Atomic.set h.sum 0;
      Atomic.set h.max 0;
      Atomic.set h.dropped 0)
    registry;
  Mutex.unlock mu
