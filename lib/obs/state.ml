(* The single global enable flag of the observability layer.

   Instrumentation is off by default; every recording entry point
   ([Counters.incr], [Histogram.observe], [Decision_log.record], …)
   checks this flag first and returns without allocating when it is
   clear, so instrumented hot paths cost one atomic load per sample in
   the disabled (production-default) configuration. *)

let enabled = Atomic.make false
