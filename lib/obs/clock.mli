(** Time source behind {!Histogram} spans and {!Decision_log} stamps.

    Defaults to a deterministic tick counter (advanced by the simulator,
    one tick per controller period); benches and the CLI install a real
    monotonic nanosecond clock instead. *)

val use_ticks : unit -> unit
(** Back {!now_ns} by the tick counter (the default; deterministic). *)

val use_monotonic : (unit -> int64) -> unit
(** Back {!now_ns} by a caller-supplied monotonic ns clock. *)

val is_ticks : unit -> bool

val tick : unit -> unit
(** Advance the tick counter by one (no-op relevance in monotonic mode;
    callers only tick when instrumentation is enabled). *)

val now_ns : unit -> int64
(** Current time stamp in nanoseconds (ticks are stamped as 1 ms each). *)

val reset : unit -> unit
(** Zero the tick counter (does not change the source). *)
