(** Bounded ring buffer of structured supervisory decisions.

    Records what the supervisory layer {e decided} — events fired,
    gain-set switches, budget re-allocations, guard fallbacks, fault
    onsets — with sequence numbers and {!Clock} stamps.  Oldest entries
    are overwritten once the ring is full ({!dropped} counts them).
    Exportable as JSONL (one decision per line) or tallied per kind for
    the console summary.

    Call sites must guard [record] behind the enable flag so the variant
    is never allocated on the disabled path; [record] itself also
    re-checks and is a no-op when disabled. *)

type decision =
  | Event_fired of { event : string; controllable : bool }
      (** A supervisory event was executed (controllable) or accepted
          from the plant (uncontrollable). *)
  | Gain_switch of { mode : string }  (** Gain-set switch (qos/power). *)
  | Rebudget of { target : string; value : float }
      (** A power-budget reference changed to [value]. *)
  | Guard_fallback of { entered : bool }
      (** The guarded layer entered (or left) open-loop degraded mode. *)
  | Fault of { active : int; onset : bool }
      (** The fault schedule became active ([onset]) or cleared; [active]
          is the number of concurrently active injections. *)
  | Fdir of { channel : string; verdict : string }
      (** The fault detector classified [channel] (e.g. ["power1"],
          ["dvfs0"], ["cluster1"]) as ["transient"], ["permanent"] or
          ["cleared"]. *)
  | Reconfig of { platform : string; status : string }
      (** The reconfiguration engine changed rung on the FDIR ladder:
          [status] is ["swapping"], ["reconfigured"] or ["fallback"],
          [platform] the (possibly degraded) description name. *)

type entry = { seq : int; t_ns : int64; decision : decision }

val set_capacity : int -> unit
(** Resize the ring (drops current contents).  Default 4096 entries.
    Raises [Invalid_argument] when < 1. *)

val record : decision -> unit

val entries : unit -> entry list
(** Retained entries, oldest first. *)

val total : unit -> int
(** Decisions recorded since the last reset (including overwritten). *)

val length : unit -> int
(** Entries currently retained. *)

val dropped : unit -> int
(** Entries lost to ring overwrite. *)

val to_jsonl : unit -> string
(** One JSON object per line, oldest first, trailing newline. *)

val kind_counts : unit -> (string * int) list
(** Tally of retained entries per decision kind, sorted by kind. *)

val reset : unit -> unit
