(* Time source for histograms and the decision log.

   Two backings:
   - [Ticks] (the default): a process-global counter advanced explicitly
     by the simulation ([Soc.step] ticks once per controller period when
     instrumentation is on).  Deterministic — two runs of the same
     scenario stamp identical timestamps — which is what the obs
     determinism tests pin.
   - [Monotonic f]: a caller-supplied monotonic nanosecond clock (the
     bench harness and the CLI install bechamel's CLOCK_MONOTONIC stub),
     for real latency percentiles. *)

type source = Ticks | Monotonic of (unit -> int64)

let source = Atomic.make Ticks
let ticks = Atomic.make 0

(* One simulated tick is stamped as 1 ms of "time" in tick mode; the
   absolute scale is arbitrary, only determinism matters. *)
let ns_per_tick = 1_000_000L

let use_ticks () = Atomic.set source Ticks
let use_monotonic f = Atomic.set source (Monotonic f)
let is_ticks () = match Atomic.get source with Ticks -> true | Monotonic _ -> false
let tick () = ignore (Atomic.fetch_and_add ticks 1)

let now_ns () =
  match Atomic.get source with
  | Ticks -> Int64.mul (Int64.of_int (Atomic.get ticks)) ns_per_tick
  | Monotonic f -> f ()

let reset () = Atomic.set ticks 0
