(* Named monotonic counters and gauges in a domain-safe registry.

   A counter is sharded: each domain increments the shard its id hashes
   onto with a plain fetch-and-add, so parallel scenario workers never
   contend on one cache line; [value] merges the shards.  Gauges are
   single-cell last-write-wins (low rate: budget levels, pool size).

   All mutation entry points check the global enable flag first and do
   nothing — allocating nothing — while instrumentation is disabled, so
   call sites can stay unconditional. *)

let shard_count = 8 (* power of two *)

type t = { name : string; shards : int Atomic.t array }
type gauge = { gauge_name : string; cell : float Atomic.t }

let counters : (string, t) Hashtbl.t = Hashtbl.create 32
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 8
let mu = Mutex.create ()

let counter name =
  Mutex.lock mu;
  let c =
    match Hashtbl.find_opt counters name with
    | Some c -> c
    | None ->
        let c =
          { name; shards = Array.init shard_count (fun _ -> Atomic.make 0) }
        in
        Hashtbl.add counters name c;
        c
  in
  Mutex.unlock mu;
  c

let gauge name =
  Mutex.lock mu;
  let g =
    match Hashtbl.find_opt gauges name with
    | Some g -> g
    | None ->
        let g = { gauge_name = name; cell = Atomic.make 0. } in
        Hashtbl.add gauges name g;
        g
  in
  Mutex.unlock mu;
  g

let shard () = (Domain.self () :> int) land (shard_count - 1)

let add c n =
  if Atomic.get State.enabled then
    ignore (Atomic.fetch_and_add c.shards.(shard ()) n)

let incr c = add c 1
let value c = Array.fold_left (fun acc s -> acc + Atomic.get s) 0 c.shards
let name c = c.name
let set g v = if Atomic.get State.enabled then Atomic.set g.cell v
let gauge_value g = Atomic.get g.cell
let gauge_name g = g.gauge_name

let by_name n =
  Mutex.lock mu;
  let c = Hashtbl.find_opt counters n in
  Mutex.unlock mu;
  Option.map value c

let snapshot () =
  Mutex.lock mu;
  let xs = Hashtbl.fold (fun name c acc -> (name, value c) :: acc) counters [] in
  Mutex.unlock mu;
  List.sort (fun (a, _) (b, _) -> compare a b) xs

let gauge_snapshot () =
  Mutex.lock mu;
  let xs =
    Hashtbl.fold (fun name g acc -> (name, gauge_value g) :: acc) gauges []
  in
  Mutex.unlock mu;
  List.sort (fun (a, _) (b, _) -> compare a b) xs

let reset () =
  Mutex.lock mu;
  Hashtbl.iter
    (fun _ c -> Array.iter (fun s -> Atomic.set s 0) c.shards)
    counters;
  Hashtbl.iter (fun _ g -> Atomic.set g.cell 0.) gauges;
  Mutex.unlock mu
