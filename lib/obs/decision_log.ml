(* Bounded ring buffer of structured supervisory decisions.

   Call sites construct a [decision] only after checking the enable flag
   (the record itself re-checks, but the variant allocation is the
   caller's), so the disabled path stays allocation-free.  The ring is
   mutex-guarded — decisions are low-rate (a handful per supervisory
   period) next to the per-sample counter traffic. *)

type decision =
  | Event_fired of { event : string; controllable : bool }
  | Gain_switch of { mode : string }
  | Rebudget of { target : string; value : float }
  | Guard_fallback of { entered : bool }
  | Fault of { active : int; onset : bool }
  | Fdir of { channel : string; verdict : string }
  | Reconfig of { platform : string; status : string }

type entry = { seq : int; t_ns : int64; decision : decision }

let default_capacity = 4096
let mu = Mutex.create ()
let buf = ref (Array.make default_capacity None)
let next_seq = ref 0

let set_capacity n =
  if n < 1 then invalid_arg "Decision_log.set_capacity: n < 1";
  Mutex.lock mu;
  buf := Array.make n None;
  next_seq := 0;
  Mutex.unlock mu

let record decision =
  if Atomic.get State.enabled then begin
    let t_ns = Clock.now_ns () in
    Mutex.lock mu;
    let cap = Array.length !buf in
    !buf.(!next_seq mod cap) <- Some { seq = !next_seq; t_ns; decision };
    incr next_seq;
    Mutex.unlock mu
  end

let reset () =
  Mutex.lock mu;
  Array.fill !buf 0 (Array.length !buf) None;
  next_seq := 0;
  Mutex.unlock mu

let total () = !next_seq
let length () = min !next_seq (Array.length !buf)

let dropped () =
  let cap = Array.length !buf in
  if !next_seq > cap then !next_seq - cap else 0

(* Oldest retained entry first. *)
let entries () =
  Mutex.lock mu;
  let cap = Array.length !buf in
  let n = min !next_seq cap in
  let first = !next_seq - n in
  let out =
    List.init n (fun i ->
        match !buf.((first + i) mod cap) with
        | Some e -> e
        | None -> assert false)
  in
  Mutex.unlock mu;
  out

(* --- JSONL export ----------------------------------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let kind_of = function
  | Event_fired _ -> "event_fired"
  | Gain_switch _ -> "gain_switch"
  | Rebudget _ -> "rebudget"
  | Guard_fallback _ -> "guard_fallback"
  | Fault _ -> "fault"
  | Fdir _ -> "fdir"
  | Reconfig _ -> "reconfig"

let decision_fields = function
  | Event_fired { event; controllable } ->
      Printf.sprintf "\"event\":\"%s\",\"controllable\":%b"
        (json_escape event) controllable
  | Gain_switch { mode } ->
      Printf.sprintf "\"mode\":\"%s\"" (json_escape mode)
  | Rebudget { target; value } ->
      Printf.sprintf "\"target\":\"%s\",\"value\":%.6g" (json_escape target)
        value
  | Guard_fallback { entered } -> Printf.sprintf "\"entered\":%b" entered
  | Fault { active; onset } ->
      Printf.sprintf "\"active\":%d,\"onset\":%b" active onset
  | Fdir { channel; verdict } ->
      Printf.sprintf "\"channel\":\"%s\",\"verdict\":\"%s\""
        (json_escape channel) (json_escape verdict)
  | Reconfig { platform; status } ->
      Printf.sprintf "\"platform\":\"%s\",\"status\":\"%s\""
        (json_escape platform) (json_escape status)

let entry_to_json e =
  Printf.sprintf "{\"seq\":%d,\"t_ns\":%Ld,\"kind\":\"%s\",%s}" e.seq e.t_ns
    (kind_of e.decision)
    (decision_fields e.decision)

let to_jsonl () =
  let b = Buffer.create 1024 in
  List.iter
    (fun e ->
      Buffer.add_string b (entry_to_json e);
      Buffer.add_char b '\n')
    (entries ());
  Buffer.contents b

let kind_counts () =
  let tally = Hashtbl.create 8 in
  List.iter
    (fun e ->
      let k = kind_of e.decision in
      Hashtbl.replace tally k
        (1 + Option.value ~default:0 (Hashtbl.find_opt tally k)))
    (entries ());
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tally [])
