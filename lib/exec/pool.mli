(** Fixed-size domain worker pool with an ordered-result [map].

    The benchmark harness executes (manager × workload × phase-schedule)
    scenarios that are embarrassingly parallel: each owns a private
    {!Spectr_platform.Soc} and PRNG seed and never touches shared mutable
    state.  This pool fans such tasks out across OCaml 5 domains while
    keeping the reduction deterministic — results come back in submission
    order, so a parallel run is byte-identical to a sequential one.

    Sizing: [create ()] uses the [SPECTR_JOBS] environment variable when
    it holds a positive integer, else [Domain.recommended_domain_count].
    With one job no domain is ever spawned and [map] degenerates to
    [List.map].

    The submitting domain participates in the work, so a pool of [n]
    jobs spawns [n - 1] worker domains.  [map] must not be called from
    inside one of its own tasks (the pool is not re-entrant); such a
    call is detected via a domain-local marker and raises
    [Invalid_argument] immediately instead of deadlocking.  Mapping over
    a {e different} pool from inside a task is allowed. *)

type t

val parse_jobs : string -> int option
(** [parse_jobs s] is [Some n] when [s] is a positive integer, else
    [None] (exposed for tests; this is the [SPECTR_JOBS] parser). *)

val default_jobs : unit -> int
(** [SPECTR_JOBS] when set to a positive integer, else
    [Domain.recommended_domain_count ()].  Always at least 1. *)

val create : ?jobs:int -> unit -> t
(** Spawn a pool of [jobs] (default {!default_jobs}) workers.  Raises
    [Invalid_argument] when [jobs < 1]. *)

val jobs : t -> int

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map t f xs] applies [f] to every element of [xs], possibly in
    parallel, and returns the results in the order of [xs].  If any
    application raises, the exception of the smallest-index failing
    element is re-raised after all tasks have finished, carrying the
    backtrace captured at its original raise point
    ({!Printexc.raise_with_backtrace}).  Raises [Invalid_argument] when
    called from inside one of this pool's own tasks (re-entrancy would
    deadlock). *)

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array
(** {!map} over arrays, without the list round-trip — the fleet engine
    fans thousands of shard descriptors out through this.  Same ordering,
    exception and re-entrancy contract as {!map}. *)

val shutdown : t -> unit
(** Join the worker domains.  Subsequent [map] calls fall back to
    sequential execution.  Idempotent. *)
