(** Domain-safe memoization of {!Spectr_automata.Synthesis.supcon}.

    Every scenario in a bench grid constructs its managers from scratch
    (required for order-independence under parallel execution), and each
    SPECTR manager construction synthesizes the same case-study
    supervisor.  This cache keys synthesis results on the structural
    digest of (plant, spec) — see {!Spectr_automata.Automaton.structural_digest}
    — so repeated manager construction stops re-synthesizing identical
    supervisors.

    A cache hit returns the very automaton value the miss produced
    (automata are immutable once built, so sharing across domains is
    safe); it is structurally equal to what a fresh synthesis would
    return.  The table is guarded by a mutex, held across the synthesis
    itself so a grid of workers racing on the same key synthesizes
    exactly once.

    The digest key is deterministic {e within a process} only: event
    intern order feeds the transition encoding, and intern order depends
    on construction order.  That is exactly the lifetime of this cache —
    never persist the digests. *)

open Spectr_automata

val supcon :
  plant:Automaton.t ->
  spec:Automaton.t ->
  (Automaton.t * Synthesis.stats, Synthesis.error) result
(** Memoized {!Synthesis.supcon}. *)

val stats : unit -> int * int
(** [(hits, misses)] since start-up (or the last {!clear}). *)

val clear : unit -> unit
(** Drop every entry and reset the counters (tests). *)
