(** Domain-safe memoization of {!Spectr_automata.Synthesis.supcon}.

    Every scenario in a bench grid constructs its managers from scratch
    (required for order-independence under parallel execution), and each
    SPECTR manager construction synthesizes the same case-study
    supervisor.  This cache keys synthesis results on the structural
    digest of (plant, spec) — see {!Spectr_automata.Automaton.structural_digest}
    — so repeated manager construction stops re-synthesizing identical
    supervisors.

    A cache hit returns the very automaton value the miss produced
    (automata are immutable once built, so sharing across domains is
    safe); it is structurally equal to what a fresh synthesis would
    return.  The table is a per-key {!Single_flight} memo: racers on the
    same key synthesize exactly once (the losers wait and share the
    winner's result, counted as hits), while {e distinct} keys
    synthesize fully in parallel — no lock is held across a synthesis.

    When observability is enabled ({!Spectr_obs}), hits and misses feed
    the [synth_cache.hits]/[synth_cache.misses] counters and each actual
    synthesis is timed into the [synth_cache.synthesis_ns] histogram.

    The digest key is deterministic {e within a process} only: event
    intern order feeds the transition encoding, and intern order depends
    on construction order.  That is exactly the lifetime of this cache —
    never persist the digests. *)

open Spectr_automata

val supcon :
  plant:Automaton.t ->
  spec:Automaton.t ->
  (Automaton.t * Synthesis.stats, Synthesis.error) result
(** Memoized {!Synthesis.supcon}.  Large products — plant states × spec
    states at or above an internal threshold — are synthesized through
    the sharded {!Synthesis.supcon_par} engine with {!Pool.default_jobs}
    workers (so [SPECTR_JOBS] governs synthesis parallelism too); the
    result is pinned byte-identical to the sequential path for any job
    count, so callers — and the digest keys — cannot tell. *)

val stats : unit -> int * int
(** [(hits, misses)] since start-up (or the last {!clear}). *)

val clear : unit -> unit
(** Drop every entry and reset the counters (tests). *)
