(* Per-key single-flight memo table.

   The predecessor of this module (inside Synth_cache) held one global
   mutex across the entire computation, so concurrent Pool workers
   serialized even on distinct keys.  Here the mutex only guards the
   table: a miss installs an [In_flight] marker and computes with the
   lock released, so distinct keys run fully in parallel, while racers
   on the same key block on the condition until the first computer
   publishes — every key is computed exactly once.

   A computation that raises uninstalls its marker (waiters retry and
   compute themselves) and re-raises with the original backtrace. *)

type ('k, 'v) slot = In_flight | Done of 'v

type ('k, 'v) t = {
  table : ('k, ('k, 'v) slot) Hashtbl.t;
  mutex : Mutex.t;
  settled : Condition.t; (* some key left In_flight *)
  mutable hits : int;
  mutable misses : int;
}

let create ?(size = 8) () =
  {
    table = Hashtbl.create size;
    mutex = Mutex.create ();
    settled = Condition.create ();
    hits = 0;
    misses = 0;
  }

let find_or_compute t ~key ~compute =
  Mutex.lock t.mutex;
  let rec await () =
    match Hashtbl.find_opt t.table key with
    | Some (Done v) ->
        t.hits <- t.hits + 1;
        Mutex.unlock t.mutex;
        v
    | Some In_flight ->
        Condition.wait t.settled t.mutex;
        await ()
    | None ->
        t.misses <- t.misses + 1;
        Hashtbl.replace t.table key In_flight;
        Mutex.unlock t.mutex;
        let v =
          try compute ()
          with e ->
            let bt = Printexc.get_raw_backtrace () in
            Mutex.lock t.mutex;
            Hashtbl.remove t.table key;
            Condition.broadcast t.settled;
            Mutex.unlock t.mutex;
            Printexc.raise_with_backtrace e bt
        in
        Mutex.lock t.mutex;
        Hashtbl.replace t.table key (Done v);
        Condition.broadcast t.settled;
        Mutex.unlock t.mutex;
        v
  in
  await ()

let stats t =
  Mutex.lock t.mutex;
  let s = (t.hits, t.misses) in
  Mutex.unlock t.mutex;
  s

let clear t =
  Mutex.lock t.mutex;
  (* In-flight markers are dropped too: their computers will still
     publish a [Done] afterwards (replace is unconditional), and any
     waiters re-check, find nothing, and compute for themselves —
     duplicated work, never a wrong result.  Callers clear quiescent
     tables in practice (tests). *)
  Hashtbl.reset t.table;
  t.hits <- 0;
  t.misses <- 0;
  Condition.broadcast t.settled;
  Mutex.unlock t.mutex
