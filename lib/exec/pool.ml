type t = {
  jobs : int;
  mutex : Mutex.t;
  pending : (unit -> unit) Queue.t;
  wake : Condition.t; (* workers: task available or shutting down *)
  mutable stopping : bool;
  mutable workers : unit Domain.t list;
}

(* The pool whose task the current domain is executing, if any.  [map]
   called from inside one of its own tasks can deadlock (the nested
   tasks join the very queue the enclosing map is blocking on), so it is
   detected here and rejected immediately instead of hanging.  Only the
   innermost pool is tracked: mapping over a *different* pool from
   inside a task is legal and the slot is saved/restored around each
   task. *)
let running_in : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let c_maps = Spectr_obs.Counters.counter "pool.parallel_maps"
let c_tasks = Spectr_obs.Counters.counter "pool.tasks"

let parse_jobs s =
  match int_of_string_opt (String.trim s) with
  | Some n when n >= 1 -> Some n
  | _ -> None

let default_jobs () =
  match Option.bind (Sys.getenv_opt "SPECTR_JOBS") parse_jobs with
  | Some n -> n
  | None -> Domain.recommended_domain_count ()

(* Workers block on [wake] until a task is queued or the pool stops.
   Tasks never raise: [map] wraps every application in its own handler. *)
let worker_loop t =
  let rec next () =
    if not (Queue.is_empty t.pending) then Some (Queue.pop t.pending)
    else if t.stopping then None
    else begin
      Condition.wait t.wake t.mutex;
      next ()
    end
  in
  let rec run () =
    Mutex.lock t.mutex;
    match next () with
    | None -> Mutex.unlock t.mutex
    | Some task ->
        Mutex.unlock t.mutex;
        task ();
        run ()
  in
  run ()

let create ?jobs () =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if jobs < 1 then invalid_arg "Pool.create: jobs < 1";
  let t =
    {
      jobs;
      mutex = Mutex.create ();
      pending = Queue.create ();
      wake = Condition.create ();
      stopping = false;
      workers = [];
    }
  in
  (* The submitter works too, so n jobs need n-1 spawned domains.  Fresh
     domains reset the backtrace-recording flag to the OCAMLRUNPARAM
     default, so propagate the creator's setting — task exceptions carry
     their original backtrace (see [map]) only if the domain that ran
     them recorded one. *)
  let record_bt = Printexc.backtrace_status () in
  t.workers <-
    List.init (jobs - 1) (fun _ ->
        Domain.spawn (fun () ->
            Printexc.record_backtrace record_bt;
            worker_loop t));
  t

let jobs t = t.jobs

let shutdown t =
  Mutex.lock t.mutex;
  t.stopping <- true;
  Condition.broadcast t.wake;
  Mutex.unlock t.mutex;
  let workers = t.workers in
  t.workers <- [];
  List.iter Domain.join workers

let map_seq f xs =
  (* Match the parallel path's evaluation order (head first). *)
  List.map f xs

let check_reentrant t =
  match Domain.DLS.get running_in with
  | Some p when p == t ->
      invalid_arg "Pool.map: re-entrant call from inside a task of this pool"
  | _ -> ()

(* Shared parallel body over arrays: [map] wraps it in list conversions,
   [map_array] (the fleet engine's shard fan-out) uses it directly so a
   10k-element shard table never round-trips through a list. *)
let map_array t f input =
  check_reentrant t;
  if t.jobs = 1 || t.workers = [] || Array.length input = 0 then
    Array.map f input
  else begin
    Spectr_obs.Counters.incr c_maps;
    let n = Array.length input in
    Spectr_obs.Counters.add c_tasks n;
    let results = Array.make n None in
    let errors = Array.make n None in
    let remaining = ref n in (* guarded by t.mutex *)
    let finished = Condition.create () in
    let task i () =
      let saved = Domain.DLS.get running_in in
      Domain.DLS.set running_in (Some t);
      (try results.(i) <- Some (f input.(i))
       with e -> errors.(i) <- Some (e, Printexc.get_raw_backtrace ()));
      Domain.DLS.set running_in saved;
      Mutex.lock t.mutex;
      decr remaining;
      if !remaining = 0 then Condition.broadcast finished;
      Mutex.unlock t.mutex
    in
    Mutex.lock t.mutex;
    for i = 0 to n - 1 do
      Queue.push (task i) t.pending
    done;
    Condition.broadcast t.wake;
    (* Drain the queue from the submitting domain, then wait for the
       stragglers the workers picked up. *)
    let rec drain () =
      if not (Queue.is_empty t.pending) then begin
        let task = Queue.pop t.pending in
        Mutex.unlock t.mutex;
        task ();
        Mutex.lock t.mutex;
        drain ()
      end
    in
    drain ();
    while !remaining > 0 do
      Condition.wait finished t.mutex
    done;
    Mutex.unlock t.mutex;
    Array.iter
      (function
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ())
      errors;
    Array.map Option.get results
  end

let map t f xs =
  check_reentrant t;
  if t.jobs = 1 || t.workers = [] || xs = [] then map_seq f xs
  else Array.to_list (map_array t f (Array.of_list xs))
