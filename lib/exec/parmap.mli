(** Ordered parallel map/iter over scenario lists.

    Thin front over {!Pool}: a process-wide default pool is created
    lazily (sized by {!Pool.default_jobs}, i.e. [SPECTR_JOBS] or the
    recommended domain count) and shut down at exit.  All combinators
    preserve submission order, so callers that compute first and print
    second produce output byte-identical to a sequential run.

    Pass [?pool] to use an explicit pool instead — tests use this to
    compare a forced 4-job pool against a 1-job one without touching the
    environment. *)

val jobs : unit -> int
(** Job count of the default pool (forces its creation). *)

val map : ?pool:Pool.t -> ('a -> 'b) -> 'a list -> 'b list
(** Like [List.map], but tasks may run on other domains.  Results are in
    input order; the smallest-index exception is re-raised. *)

val mapi : ?pool:Pool.t -> (int -> 'a -> 'b) -> 'a list -> 'b list

val map_array : ?pool:Pool.t -> ('a -> 'b) -> 'a array -> 'b array
(** Ordered parallel map over arrays ({!Pool.map_array} on the default
    pool): results land at the index of their input. *)

val iter : ?pool:Pool.t -> ('a -> unit) -> 'a list -> unit
(** Parallel [List.iter]; barrier semantics (returns after every task). *)
