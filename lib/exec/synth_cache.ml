open Spectr_automata

type entry = (Automaton.t * Synthesis.stats, Synthesis.error) result

let cache : (string, entry) Single_flight.t = Single_flight.create ()

let c_hits = Spectr_obs.Counters.counter "synth_cache.hits"
let c_misses = Spectr_obs.Counters.counter "synth_cache.misses"
let h_synthesis = Spectr_obs.Histogram.histogram "synth_cache.synthesis_ns"

(* Below this many product-grid cells (plant states × spec states) the
   sequential path wins outright: sharding, domain spawns and barrier
   rounds cost more than the whole synthesis.  Above it, route through
   the sharded engine when the environment grants more than one job.
   [Synthesis.supcon_par] is pinned byte-identical to [Synthesis.supcon]
   for any job count, so the routing is invisible to callers — including
   this cache's digest keys. *)
let par_threshold = 32768

let jobs_for ~plant ~spec =
  if Automaton.num_states plant * Automaton.num_states spec < par_threshold
  then 1
  else Pool.default_jobs ()

let supcon ~plant ~spec =
  let key =
    Automaton.structural_digest plant ^ ":" ^ Automaton.structural_digest spec
  in
  let computed = ref false in
  let result =
    Single_flight.find_or_compute cache ~key ~compute:(fun () ->
        computed := true;
        Spectr_obs.time h_synthesis (fun () ->
            match jobs_for ~plant ~spec with
            | 1 -> Synthesis.supcon ~plant ~spec
            | jobs -> Synthesis.supcon_par ~jobs ~plant ~spec ()))
  in
  if !computed then Spectr_obs.Counters.incr c_misses
  else Spectr_obs.Counters.incr c_hits;
  result

let stats () = Single_flight.stats cache
let clear () = Single_flight.clear cache
