open Spectr_automata

type entry = (Automaton.t * Synthesis.stats, Synthesis.error) result

let cache : (string, entry) Single_flight.t = Single_flight.create ()

let c_hits = Spectr_obs.Counters.counter "synth_cache.hits"
let c_misses = Spectr_obs.Counters.counter "synth_cache.misses"
let h_synthesis = Spectr_obs.Histogram.histogram "synth_cache.synthesis_ns"

let supcon ~plant ~spec =
  let key =
    Automaton.structural_digest plant ^ ":" ^ Automaton.structural_digest spec
  in
  let computed = ref false in
  let result =
    Single_flight.find_or_compute cache ~key ~compute:(fun () ->
        computed := true;
        Spectr_obs.time h_synthesis (fun () -> Synthesis.supcon ~plant ~spec))
  in
  if !computed then Spectr_obs.Counters.incr c_misses
  else Spectr_obs.Counters.incr c_hits;
  result

let stats () = Single_flight.stats cache
let clear () = Single_flight.clear cache
