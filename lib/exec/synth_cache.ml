open Spectr_automata

type entry = (Automaton.t * Synthesis.stats, Synthesis.error) result

let table : (string, entry) Hashtbl.t = Hashtbl.create 8
let mutex = Mutex.create ()
let hits = ref 0
let misses = ref 0

let supcon ~plant ~spec =
  let key =
    Automaton.structural_digest plant ^ ":" ^ Automaton.structural_digest spec
  in
  Mutex.lock mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock mutex)
    (fun () ->
      match Hashtbl.find_opt table key with
      | Some result ->
          incr hits;
          result
      | None ->
          let result = Synthesis.supcon ~plant ~spec in
          incr misses;
          Hashtbl.replace table key result;
          result)

let stats () =
  Mutex.lock mutex;
  let s = (!hits, !misses) in
  Mutex.unlock mutex;
  s

let clear () =
  Mutex.lock mutex;
  Hashtbl.reset table;
  hits := 0;
  misses := 0;
  Mutex.unlock mutex
