let default =
  lazy
    (let pool = Pool.create () in
     at_exit (fun () -> Pool.shutdown pool);
     pool)

let resolve = function Some pool -> pool | None -> Lazy.force default

let jobs () = Pool.jobs (resolve None)
let map ?pool f xs = Pool.map (resolve pool) f xs

let mapi ?pool f xs =
  map ?pool (fun (i, x) -> f i x) (List.mapi (fun i x -> (i, x)) xs)

let map_array ?pool f xs = Pool.map_array (resolve pool) f xs
let iter ?pool f xs = ignore (map ?pool f xs : unit list)
