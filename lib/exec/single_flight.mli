(** Per-key single-flight memo table (domain-safe).

    [find_or_compute] returns the cached value for a key, or runs the
    computation {e with no lock held} on a miss.  Racers on the same key
    wait for the first computer and share its result (counted as hits);
    computations for {e distinct} keys run in parallel — the table mutex
    is never held across a computation.  A computation that raises
    uninstalls its in-flight marker (so waiters retry, computing for
    themselves) and re-raises with the original backtrace. *)

type ('k, 'v) t

val create : ?size:int -> unit -> ('k, 'v) t

val find_or_compute : ('k, 'v) t -> key:'k -> compute:(unit -> 'v) -> 'v

val stats : ('k, 'v) t -> int * int
(** [(hits, misses)] since creation (or the last {!clear}).  A racer
    that waited for an in-flight computation counts as a hit. *)

val clear : ('k, 'v) t -> unit
(** Drop every entry and zero the stats. *)
