open Spectr_platform

type sample = {
  s_cluster : string;
  s_freq_mhz : int;
  s_volt : float;
  s_active : int;
  s_total : int;
  s_util : float;
  s_power_w : float;
  s_core_ips : float;
}

let sample_columns =
  [
    "cluster";
    "freq_mhz";
    "volt";
    "active_cores";
    "total_cores";
    "utilization";
    "power_w";
    "core_ips";
  ]

(* --- CSV ------------------------------------------------------------- *)

let sweep_to_csv samples =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (String.concat "," sample_columns);
  Buffer.add_char buf '\n';
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "%s,%d,%.4f,%d,%d,%.4f,%.6f,%.1f\n" s.s_cluster
           s.s_freq_mhz s.s_volt s.s_active s.s_total s.s_util s.s_power_w
           s.s_core_ips))
    samples;
  Buffer.contents buf

let sweep_of_csv text =
  let err line msg = Error (Printf.sprintf "line %d: %s" line msg) in
  let header = String.concat "," sample_columns in
  let lines = String.split_on_char '\n' text in
  let rec go lineno seen_header acc = function
    | [] ->
        if not seen_header then Error "empty sweep: missing header row"
        else Ok (List.rev acc)
    | raw :: rest -> (
        let line = String.trim raw in
        if line = "" || line.[0] = '#' then
          go (lineno + 1) seen_header acc rest
        else if not seen_header then
          if line = header then go (lineno + 1) true acc rest
          else err lineno (Printf.sprintf "expected header %S" header)
        else
          match String.split_on_char ',' line with
          | [ cl; f; v; n; tot; u; p; ips ] -> (
              let fld name conv s =
                match conv (String.trim s) with
                | Some x -> Ok x
                | None ->
                    Error
                      (Printf.sprintf "line %d: bad %s %S" lineno name s)
              in
              let ( let* ) = Result.bind in
              let parsed =
                let* f = fld "freq_mhz" int_of_string_opt f in
                let* v = fld "volt" float_of_string_opt v in
                let* n = fld "active_cores" int_of_string_opt n in
                let* tot = fld "total_cores" int_of_string_opt tot in
                let* u = fld "utilization" float_of_string_opt u in
                let* p = fld "power_w" float_of_string_opt p in
                let* ips = fld "core_ips" float_of_string_opt ips in
                let cl = String.trim cl in
                if cl = "" then
                  Error (Printf.sprintf "line %d: empty cluster name" lineno)
                else if f <= 0 || v <= 0. then
                  Error
                    (Printf.sprintf "line %d: non-positive freq/volt" lineno)
                else if tot < 1 || n < 1 || n > tot then
                  Error
                    (Printf.sprintf
                       "line %d: active_cores %d outside [1, total %d]"
                       lineno n tot)
                else if u < 0. || u > 1. then
                  Error
                    (Printf.sprintf "line %d: utilization %g outside [0, 1]"
                       lineno u)
                else if
                  (not (Float.is_finite p))
                  || (not (Float.is_finite ips))
                  || p < 0. || ips <= 0.
                then
                  Error
                    (Printf.sprintf "line %d: non-physical power/ips" lineno)
                else
                  Ok
                    {
                      s_cluster = cl;
                      s_freq_mhz = f;
                      s_volt = v;
                      s_active = n;
                      s_total = tot;
                      s_util = u;
                      s_power_w = p;
                      s_core_ips = ips;
                    }
              in
              match parsed with
              | Ok s -> go (lineno + 1) true (s :: acc) rest
              | Error e -> Error e)
          | cols ->
              err lineno
                (Printf.sprintf "expected %d comma-separated fields, got %d"
                   (List.length sample_columns)
                   (List.length cols)))
  in
  go 1 false [] lines

let sweep_of_csv_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> sweep_of_csv text
  | exception Sys_error msg -> Error msg

(* --- least squares --------------------------------------------------- *)

module Matrix = Spectr_linalg.Matrix
module Stats = Spectr_linalg.Stats

(* Solve min ‖Xθ − y‖ by normal equations (the feature counts here are 2
   and 4; conditioning is a non-issue at these sizes).  Columns that are
   identically zero carry no information — a single-core cluster never
   gates a core, so its gated column is all zeros — and would make the
   normal equations singular; they are dropped and their coefficients
   pinned at 0. *)
let rec least_squares rows y =
  let p_full = Array.length rows.(0) in
  let live =
    Array.to_list (Array.init p_full Fun.id)
    |> List.filter (fun j -> Array.exists (fun r -> r.(j) <> 0.) rows)
    |> Array.of_list
  in
  let rows = Array.map (fun r -> Array.map (fun j -> r.(j)) live) rows in
  match least_squares_dense rows y with
  | Error _ as e -> e
  | Ok theta ->
      let out = Array.make p_full 0. in
      Array.iteri (fun i j -> out.(j) <- theta.(i)) live;
      Ok out

(* Non-negative least squares by active-set elimination: solve, drop the
   most-negative coefficient's feature, re-solve — the unconstrained
   optimum over the surviving features redistributes the dropped
   feature's contribution to its correlated peers, where a post-hoc
   clamp would just bias every prediction.  Terminates in ≤ p rounds. *)
and least_squares_nonneg rows y =
  match least_squares rows y with
  | Error _ as e -> e
  | Ok theta ->
      let worst = ref (-1) in
      Array.iteri
        (fun j v ->
          if v < 0. && (!worst < 0 || v < theta.(!worst)) then worst := j)
        theta;
      if !worst < 0 then Ok theta
      else
        let masked = Array.map (fun r -> Array.copy r) rows in
        Array.iter (fun r -> r.(!worst) <- 0.) masked;
        least_squares_nonneg masked y

and least_squares_dense rows y =
  let n = Array.length rows in
  let p = Array.length rows.(0) in
  let xtx =
    Matrix.init ~rows:p ~cols:p (fun i j ->
        let acc = ref 0. in
        for r = 0 to n - 1 do
          acc := !acc +. (rows.(r).(i) *. rows.(r).(j))
        done;
        !acc)
  in
  let xty =
    Matrix.init ~rows:p ~cols:1 (fun i _ ->
        let acc = ref 0. in
        for r = 0 to n - 1 do
          acc := !acc +. (rows.(r).(i) *. y.(r))
        done;
        !acc)
  in
  match Matrix.solve xtx xty with
  | theta -> Ok (Array.init p (fun i -> Matrix.get theta i 0))
  | exception Failure _ -> Error "singular regression (degenerate sweep)"

type cluster_fit = {
  fit_cluster : string;
  fit_samples : int;
  fit_power : Power_model.params;
  fit_power_r2 : float;
  fit_cpi_a : float;
  fit_cpi_b : float;
  fit_ips_r2 : float;
  fit_opp : Opp.t;
  fit_cores : int;
}

(* Group samples by cluster, preserving first-appearance order. *)
let group_by_cluster samples =
  let order = ref [] in
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun s ->
      if not (Hashtbl.mem tbl s.s_cluster) then begin
        order := s.s_cluster :: !order;
        Hashtbl.replace tbl s.s_cluster []
      end;
      Hashtbl.replace tbl s.s_cluster (s :: Hashtbl.find tbl s.s_cluster))
    samples;
  List.rev_map (fun name -> (name, List.rev (Hashtbl.find tbl name))) !order

let opp_of_samples name samples =
  (* Distinct (freq, volt) pairs, ascending; a frequency reported with
     two different voltages is a corrupt sweep. *)
  let tbl = Hashtbl.create 16 in
  let bad = ref None in
  List.iter
    (fun s ->
      match Hashtbl.find_opt tbl s.s_freq_mhz with
      | None -> Hashtbl.replace tbl s.s_freq_mhz s.s_volt
      | Some v ->
          if Float.abs (v -. s.s_volt) > 1e-9 && !bad = None then
            bad := Some s.s_freq_mhz)
    samples;
  match !bad with
  | Some f ->
      Error
        (Printf.sprintf "cluster %s: conflicting voltages for %d MHz" name f)
  | None ->
      let points =
        Hashtbl.fold (fun f v acc -> (f, v) :: acc) tbl []
        |> List.sort (fun (a, _) (b, _) -> compare a b)
      in
      (match Opp.create ~name ~points with
      | t -> Ok t
      | exception Invalid_argument msg ->
          Error (Printf.sprintf "cluster %s: %s" name msg))

let fit_cluster name samples =
  let ( let* ) = Result.bind in
  let arr = Array.of_list samples in
  let n = Array.length arr in
  let total = arr.(0).s_total in
  let* () =
    if Array.for_all (fun s -> s.s_total = total) arr then Ok ()
    else
      Error
        (Printf.sprintf "cluster %s: inconsistent total_cores across rows"
           name)
  in
  let* opp = opp_of_samples name samples in
  let* () =
    (* 4 power parameters, 2 CPI parameters; anything smaller cannot be
       identified.  (Distinct points, not rows: duplicates don't add
       rank, but they don't hurt either — the gate is on rows for a
       simple, honest message.) *)
    if n >= 4 then Ok ()
    else
      Error
        (Printf.sprintf "cluster %s: %d samples < 4 model parameters" name n)
  in
  (* Power: P = cdyn·(n·V²·f·u) + leak·(n·(V/V₀)²) + gated·(total−n)
     + uncore·1. *)
  let v0 = Power_model.v0 in
  let power_rows =
    Array.map
      (fun s ->
        let f_ghz = float_of_int s.s_freq_mhz /. 1000. in
        let nf = float_of_int s.s_active in
        [|
          nf *. s.s_volt *. s.s_volt *. f_ghz *. s.s_util;
          nf *. (s.s_volt /. v0) *. (s.s_volt /. v0);
          float_of_int (total - s.s_active);
          1.;
        |])
      arr
  in
  let power_y = Array.map (fun s -> s.s_power_w) arr in
  (* The analytic model's parameters are non-negative by construction
     ([Power_model.params] rightly rejects negatives); noise can still
     drive a tiny true value (typically [gated]) below zero in the
     unconstrained optimum, so fit under the constraint. *)
  let* theta =
    Result.map_error
      (fun e -> Printf.sprintf "cluster %s power fit: %s" name e)
      (least_squares_nonneg power_rows power_y)
  in
  let params =
    Power_model.params ~cdyn_w_per_v2ghz:theta.(0) ~leak_w_per_core:theta.(1)
      ~gated_w_per_core:theta.(2) ~uncore_w:theta.(3)
  in
  let power_pred =
    Array.map
      (fun s ->
        Power_model.cluster_power params ~table:opp ~freq_mhz:s.s_freq_mhz
          ~active_cores:s.s_active ~total_cores:total ~utilization:s.s_util)
      arr
  in
  let power_r2 = Stats.r_squared ~actual:power_y ~predicted:power_pred in
  (* CPI: 1/IPS = a·(1/(f·1e9)) + b·(κ/1e9), κ the contention factor of
     the point's busy-core count. *)
  let cpi_rows =
    Array.map
      (fun s ->
        let f_hz = float_of_int s.s_freq_mhz /. 1000. *. 1e9 in
        let kappa =
          Perf_model.contention_factor
            ~busy_cores:(float_of_int s.s_active)
        in
        [| 1. /. f_hz; kappa /. 1e9 |])
      arr
  in
  let cpi_y = Array.map (fun s -> 1. /. s.s_core_ips) arr in
  let* cpi =
    Result.map_error
      (fun e -> Printf.sprintf "cluster %s CPI fit: %s" name e)
      (least_squares cpi_rows cpi_y)
  in
  let cpi_a = cpi.(0) and cpi_b = cpi.(1) in
  (* Report R² on the measured scale (IPS), not the linearized one — the
     inversion weighs slow points more, and the gate must reflect what
     the simulator will actually reproduce. *)
  let ips_pred =
    Array.map
      (fun s ->
        let f_ghz = float_of_int s.s_freq_mhz /. 1000. in
        let kappa =
          Perf_model.contention_factor
            ~busy_cores:(float_of_int s.s_active)
        in
        f_ghz *. 1e9 /. (cpi_a +. (cpi_b *. kappa *. f_ghz)))
      arr
  in
  let ips_y = Array.map (fun s -> s.s_core_ips) arr in
  let ips_r2 = Stats.r_squared ~actual:ips_y ~predicted:ips_pred in
  Ok
    {
      fit_cluster = name;
      fit_samples = n;
      fit_power = params;
      fit_power_r2 = power_r2;
      fit_cpi_a = cpi_a;
      fit_cpi_b = cpi_b;
      fit_ips_r2 = ips_r2;
      fit_opp = opp;
      fit_cores = total;
    }

let fit samples =
  match samples with
  | [] -> Error "empty sweep"
  | _ ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | (name, rows) :: rest -> (
            match fit_cluster name rows with
            | Ok f -> go (f :: acc) rest
            | Error e -> Error e)
      in
      go [] (group_by_cluster samples)

let pp_fit ppf f =
  Format.fprintf ppf
    "%-8s %3d pts  power R2 %.4f (cdyn %.3f leak %.3f gated %.3f uncore \
     %.3f)  ips R2 %.4f (a %.3f b %.3f)"
    f.fit_cluster f.fit_samples f.fit_power_r2
    f.fit_power.Power_model.cdyn_w_per_v2ghz
    f.fit_power.Power_model.leak_w_per_core
    f.fit_power.Power_model.gated_w_per_core
    f.fit_power.Power_model.uncore_w f.fit_ips_r2 f.fit_cpi_a f.fit_cpi_b

let to_platform ?(r2_gate = 0.95) ~name ~host ~thermal fits =
  match fits with
  | [] -> Error "no fitted clusters"
  | _ -> (
      let bad =
        List.find_opt
          (fun f -> f.fit_power_r2 < r2_gate || f.fit_ips_r2 < r2_gate)
          fits
      in
      match bad with
      | Some f ->
          Error
            (Printf.sprintf
               "cluster %s below the R2 gate %.2f (power %.4f, ips %.4f): \
                calibration rejected"
               f.fit_cluster r2_gate f.fit_power_r2 f.fit_ips_r2)
      | None -> (
          match
            List.find_index (fun f -> f.fit_cluster = host) fits
          with
          | None ->
              Error (Printf.sprintf "host %S names no fitted cluster" host)
          | Some host_idx -> (
              let clusters =
                List.map
                  (fun f ->
                    {
                      Platform_desc.cl_name = f.fit_cluster;
                      cores = f.fit_cores;
                      opp = f.fit_opp;
                      power = f.fit_power;
                      cpi =
                        (if f.fit_cluster = host then Platform_desc.Host_law
                         else
                           Platform_desc.Absolute
                             { cpi_a = f.fit_cpi_a; cpi_b = f.fit_cpi_b });
                    })
                  fits
                |> Array.of_list
              in
              match
                Platform_desc.create ~name ~clusters ~host:host_idx ~thermal
              with
              | p -> Ok p
              | exception Invalid_argument msg -> Error msg)))

let generate_sweep ?(seed = 99L) ?(noise = 0.01)
    ?(workload = Benchmarks.microbench) desc =
  let g = Spectr_linalg.Prng.create seed in
  let jitter () =
    if noise = 0. then 1.
    else Float.max 0.5 (Spectr_linalg.Prng.gaussian g ~mu:1. ~sigma:noise)
  in
  let out = ref [] in
  for i = 0 to Platform_desc.num_clusters desc - 1 do
    let c = Platform_desc.cluster desc i in
    let opp = c.Platform_desc.opp in
    let cpi_a, cpi_b = Perf_model.coefficients_for workload desc i in
    Array.iteri
      (fun j freq ->
        let volt = opp.Opp.volts.(j) in
        for active = 1 to c.Platform_desc.cores do
          let power =
            Power_model.cluster_power c.Platform_desc.power ~table:opp
              ~freq_mhz:freq ~active_cores:active
              ~total_cores:c.Platform_desc.cores ~utilization:1.
          in
          let f_ghz = float_of_int freq /. 1000. in
          let kappa =
            Perf_model.contention_factor ~busy_cores:(float_of_int active)
          in
          let ips = f_ghz *. 1e9 /. (cpi_a +. (cpi_b *. kappa *. f_ghz)) in
          out :=
            {
              s_cluster = c.Platform_desc.cl_name;
              s_freq_mhz = freq;
              s_volt = volt;
              s_active = active;
              s_total = c.Platform_desc.cores;
              s_util = 1.;
              s_power_w = power *. jitter ();
              s_core_ips = ips *. jitter ();
            }
            :: !out
        done)
      opp.Opp.freqs_mhz
  done;
  List.rev !out
