(** Platform calibration from measured sweeps.

    The bridge between real-silicon measurement campaigns and
    {!Spectr_platform.Platform_desc}: a {e sweep} is a table of steady
    operating points — per cluster, per OPP, per active-core count — with
    the measured cluster power and per-core throughput at each point
    (the stress-ng-style campaign of the ARM measurement pipelines this
    format mirrors).  {!fit} recovers the analytic models the simulator
    runs on:

    - power: least squares on the four {!Spectr_platform.Power_model}
      parameters (the model is linear in [cdyn], [leak], [gated],
      [uncore] once voltage/frequency/core features are formed);
    - throughput: the CPI law [IPS(f) = f·1e9 / (a + b·κ·f)] is linear
      in [(a, b)] after inverting ([1/IPS] regressed on [1/(f·1e9)] and
      [κ/1e9], with κ the busy-core contention factor of each point).

    Both fits report R² on the {e measured} scale per cluster; the
    design-flow identifiability discipline (reject, don't average away,
    a bad fit) applies — {!to_platform} refuses clusters whose power fit
    falls below the gate.  {!generate_sweep} produces the same table
    from an existing description, so the round trip
    [generate_sweep |> fit |> to_platform] is the self-test pinning the
    fitter's correctness (R² ≥ 0.95 per cluster in [test_sysid]). *)

open Spectr_platform

type sample = {
  s_cluster : string;  (** Cluster name (groups rows; first-seen order). *)
  s_freq_mhz : int;
  s_volt : float;  (** Supply voltage at this OPP (V). *)
  s_active : int;  (** Active (un-gated) cores at this point. *)
  s_total : int;  (** Physical cores of the cluster. *)
  s_util : float;  (** Dynamic-term utilization in [0, 1]. *)
  s_power_w : float;  (** Measured cluster power (W). *)
  s_core_ips : float;  (** Measured per-core instructions/s. *)
}

val sample_columns : string list
(** CSV header: [cluster,freq_mhz,volt,active_cores,total_cores,
    utilization,power_w,core_ips]. *)

val sweep_to_csv : sample list -> string

val sweep_of_csv : string -> (sample list, string) result
(** Parse a sweep CSV (header required; [#] comments and blank lines
    skipped).  Errors name the offending line. *)

val sweep_of_csv_file : string -> (sample list, string) result

type cluster_fit = {
  fit_cluster : string;
  fit_samples : int;
  fit_power : Power_model.params;
  fit_power_r2 : float;  (** R² of predicted vs. measured power (W). *)
  fit_cpi_a : float;  (** Compute CPI of the fitted law. *)
  fit_cpi_b : float;  (** Memory-stall CPI slope (per GHz, κ = 1). *)
  fit_ips_r2 : float;  (** R² of predicted vs. measured per-core IPS. *)
  fit_opp : Opp.t;  (** DVFS table assembled from the sweep's OPP rows. *)
  fit_cores : int;
}

val fit : sample list -> (cluster_fit list, string) result
(** Per-cluster least squares, clusters in first-appearance order.
    Fails (naming the cluster) on an empty sweep, inconsistent
    core-count/voltage rows, fewer distinct points than model
    parameters, or a degenerate (singular) regression. *)

val pp_fit : Format.formatter -> cluster_fit -> unit
(** One-line summary: name, sample count, both R², parameter values. *)

val to_platform :
  ?r2_gate:float ->
  name:string ->
  host:string ->
  thermal:Platform_desc.thermal ->
  cluster_fit list ->
  (Platform_desc.t, string) result
(** Assemble a platform description from fitted clusters: every cluster
    gets its fitted power parameters and DVFS table; non-host clusters
    carry their fitted CPI law as [Absolute].  The host cluster is
    [Host_law] — its QoS throughput is workload-relative by
    construction, so the description derives it per workload (the fitted
    host law is still reported by {!fit} for inspection).  Fails when
    [host] names no fitted cluster or when any cluster's power or IPS R²
    is below [r2_gate] (default 0.95) — a calibration that cannot
    reproduce its own sweep must be rejected, not shipped. *)

val generate_sweep :
  ?seed:int64 ->
  ?noise:float ->
  ?workload:Workload.t ->
  Platform_desc.t ->
  sample list
(** The measurement campaign a real platform would run, executed against
    the analytic models: for every cluster, OPP and active-core count,
    the model power at full utilization and the per-core IPS under the
    point's contention factor, each perturbed by multiplicative Gaussian
    noise of relative σ [noise] (default 0.01; 0 = exact).  [workload]
    (default {!Benchmarks.microbench}) fixes the CPI laws being measured
    via {!Perf_model.coefficients_for}. *)
