(* Bulk-synchronous SPMD execution over scoped domains, for the parallel
   synthesis engine.  [run ~jobs f] executes [f w barrier] on [jobs]
   workers — worker 0 on the calling domain, the rest on freshly spawned
   domains that are joined before [run] returns.  Workers coordinate
   through barrier waits; between two waits each worker owns its shard
   of the data exclusively (or reads shared data that is quiescent), so
   the barrier's mutex is the only synchronization the phases need: it
   publishes every write of phase r to every reader in phase r+1.

   Scoped domains, not the Spectr_exec pool, on purpose: the automata
   library sits below the exec layer in the dependency order, and
   synthesis is routinely invoked from *inside* pool tasks (bench grids
   synthesize per scenario cell) — blocking pool workers on a barrier
   that other pool tasks must reach would deadlock.  Spawning is ~30 µs
   per domain, noise against any product large enough to parallelize.

   Abort protocol: a worker that raises unwinds to [run], which flips
   the barrier's abort flag and wakes every waiter; their [wait] raises
   [Aborted], unwinding them out of the phase loop.  The first failing
   worker's exception (lowest worker index, deterministically) is
   re-raised on the caller after all domains are joined. *)

type barrier = {
  m : Mutex.t;
  c : Condition.t;
  parties : int;
  mutable arrived : int;
  mutable phase : int;
  mutable aborted : bool;
}

exception Aborted

let make_barrier parties =
  {
    m = Mutex.create ();
    c = Condition.create ();
    parties;
    arrived = 0;
    phase = 0;
    aborted = false;
  }

let wait b =
  if b.parties > 1 then begin
    Mutex.lock b.m;
    if b.aborted then begin
      Mutex.unlock b.m;
      raise Aborted
    end;
    b.arrived <- b.arrived + 1;
    if b.arrived = b.parties then begin
      b.arrived <- 0;
      b.phase <- b.phase + 1;
      Condition.broadcast b.c;
      Mutex.unlock b.m
    end
    else begin
      let ph = b.phase in
      while b.phase = ph && not b.aborted do
        Condition.wait b.c b.m
      done;
      let ab = b.aborted in
      Mutex.unlock b.m;
      if ab then raise Aborted
    end
  end

let abort b =
  Mutex.lock b.m;
  b.aborted <- true;
  Condition.broadcast b.c;
  Mutex.unlock b.m

let run ~jobs f =
  let jobs = max 1 jobs in
  if jobs = 1 then f 0 (make_barrier 1)
  else begin
    let b = make_barrier jobs in
    let failed = Array.make jobs None in
    let body w =
      try f w b
      with
      | Aborted -> ()
      | e ->
          failed.(w) <- Some (e, Printexc.get_raw_backtrace ());
          abort b
    in
    let backtraces = Printexc.backtrace_status () in
    let doms =
      List.init (jobs - 1) (fun i ->
          Domain.spawn (fun () ->
              Printexc.record_backtrace backtraces;
              body (i + 1)))
    in
    body 0;
    List.iter Domain.join doms;
    Array.iter
      (function
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt | None -> ())
      failed
  end
