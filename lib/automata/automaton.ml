type transition = { src : string; event : Event.t; dst : string }

(* Index-native core: δ is CSR — [row] holds per-state offsets into the
   parallel [ev]/[dst] arrays, each row sorted by event id so a lookup is
   a binary search with zero hashing.  Names are a boundary concern:
   [names] (and the name→index table derived from it) is lazy, so
   algorithm outputs built with [of_indexed] never materialize names
   unless a name-based accessor is actually used. *)
type t = {
  name : string;
  n : int;
  names : string array Lazy.t;
  index : (string, int) Hashtbl.t Lazy.t;
  alphabet : Event.Set.t;
  decode : (int, Event.t) Hashtbl.t; (* alphabet events keyed by id *)
  row : int array; (* length n+1 *)
  ev : int array; (* event ids, sorted within each row *)
  dst : int array;
  initial : int;
  marked : bool array;
  forbidden : bool array;
  mutable digest : string option; (* memoized structural_digest *)
}

let name a = a.name
let alphabet a = a.alphabet
let num_states a = a.n
let num_transitions a = Array.length a.ev
let states a = Array.to_list (Lazy.force a.names)
let initial a = (Lazy.force a.names).(a.initial)
let initial_index a = a.initial

let index_of_state a s =
  match Hashtbl.find_opt (Lazy.force a.index) s with
  | Some i -> i
  | None ->
      invalid_arg (Printf.sprintf "Automaton %s: unknown state %S" a.name s)

let state_of_index a i =
  if i < 0 || i >= a.n then
    invalid_arg (Printf.sprintf "Automaton %s: index %d out of range" a.name i);
  (Lazy.force a.names).(i)

let mem_state a s = Hashtbl.mem (Lazy.force a.index) s
let is_marked_index a i = a.marked.(i)
let is_forbidden_index a i = a.forbidden.(i)
let is_marked a s = a.marked.(index_of_state a s)
let is_forbidden a s = a.forbidden.(index_of_state a s)
let marked a = List.filteri (fun i _ -> a.marked.(i)) (states a)
let forbidden a = List.filteri (fun i _ -> a.forbidden.(i)) (states a)

let event_of_id a eid =
  match Hashtbl.find_opt a.decode eid with
  | Some e -> e
  | None ->
      invalid_arg
        (Printf.sprintf "Automaton %s: event id %d not in the alphabet" a.name
           eid)

(* A while-loop, not a local [let rec]: a recursive helper would close
   over [a] and [eid] and allocate a closure per call, which the
   supervisor tick path cannot afford. *)
let step_index_raw a i eid =
  let lo = ref a.row.(i) in
  let hi = ref a.row.(i + 1) in
  let res = ref (-1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let e = a.ev.(mid) in
    if e = eid then begin
      res := a.dst.(mid);
      lo := !hi
    end
    else if e < eid then lo := mid + 1
    else hi := mid
  done;
  !res

let step_index a i eid =
  match step_index_raw a i eid with -1 -> None | d -> Some d

let iter_row a i f =
  for k = a.row.(i) to a.row.(i + 1) - 1 do
    f a.ev.(k) a.dst.(k)
  done

let out_degree a i = a.row.(i + 1) - a.row.(i)

let step a s e =
  Option.map (state_of_index a) (step_index a (index_of_state a s) (Event.id e))

let enabled_index a i =
  let acc = ref [] in
  iter_row a i (fun eid _ -> acc := event_of_id a eid :: !acc);
  List.sort Event.compare !acc

let enabled a s = enabled_index a (index_of_state a s)

let fold_transitions f a acc =
  let acc = ref acc in
  for s = 0 to a.n - 1 do
    iter_row a s (fun eid d -> acc := f s (event_of_id a eid) d !acc)
  done;
  !acc

let transitions a =
  let names = Lazy.force a.names in
  List.rev
    (fold_transitions
       (fun s e d acc ->
         { src = names.(s); event = e; dst = names.(d) } :: acc)
       a [])

(* --- construction ---------------------------------------------------- *)

let make_decode alphabet =
  let h = Hashtbl.create (2 * Event.Set.cardinal alphabet + 1) in
  Event.Set.iter (fun e -> Hashtbl.replace h (Event.id e) e) alphabet;
  h

let make_index name n names_lazy =
  lazy
    (let names = Lazy.force names_lazy in
     let h = Hashtbl.create (2 * n) in
     Array.iteri
       (fun i s ->
         if Hashtbl.mem h s then
           invalid_arg
             (Printf.sprintf "Automaton %s: duplicate state name %S" name s);
         Hashtbl.add h s i)
       names;
     h)

(* Counting-sort the transition triples into CSR rows, then sort each row
   by event id.  [describe] names the offending state in the
   nondeterminism error (lazily — only on the error path).  The parallel
   arrays variant is the workhorse: the tuple variant boxes a triple per
   transition, which the parallel synthesis engine cannot afford at
   tens of millions of transitions. *)
let make_csr_arrays ~who ~describe n ~src ~event ~target =
  let total = Array.length src in
  if Array.length event <> total || Array.length target <> total then
    invalid_arg (Printf.sprintf "%s: transition array length mismatch" who);
  let deg = Array.make n 0 in
  Array.iter (fun s -> deg.(s) <- deg.(s) + 1) src;
  let row = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    row.(i + 1) <- row.(i) + deg.(i)
  done;
  let ev = Array.make total 0 and dst = Array.make total 0 in
  let cursor = Array.copy row in
  for k = 0 to total - 1 do
    let s = src.(k) in
    let p = cursor.(s) in
    ev.(p) <- event.(k);
    dst.(p) <- target.(k);
    cursor.(s) <- p + 1
  done;
  (* Sort each row by event id (rows are short; extract-sort-writeback). *)
  for s = 0 to n - 1 do
    let lo = row.(s) and hi = row.(s + 1) in
    if hi - lo > 1 then begin
      let pairs = Array.init (hi - lo) (fun k -> (ev.(lo + k), dst.(lo + k))) in
      Array.sort compare pairs;
      Array.iteri
        (fun k (e, d) ->
          ev.(lo + k) <- e;
          dst.(lo + k) <- d)
        pairs;
      for k = lo to hi - 2 do
        if ev.(k) = ev.(k + 1) then
          invalid_arg
            (Printf.sprintf "%s: nondeterministic on event id %d from state %s"
               who ev.(k) (describe s))
      done
    end
  done;
  (row, ev, dst)

let make_csr ~who ~describe n trans =
  let total = Array.length trans in
  let src = Array.make total 0 in
  let event = Array.make total 0 in
  let target = Array.make total 0 in
  Array.iteri
    (fun k (s, e, d) ->
      src.(k) <- s;
      event.(k) <- e;
      target.(k) <- d)
    trans;
  make_csr_arrays ~who ~describe n ~src ~event ~target

let of_indexed_arrays ~name ~names ~alphabet ~initial ~marked ~forbidden ~src
    ~event ~target =
  let n = Array.length marked in
  if Array.length forbidden <> n then
    invalid_arg
      (Printf.sprintf
         "Automaton.of_indexed %s: marked/forbidden length mismatch (%d vs %d)"
         name n (Array.length forbidden));
  if initial < 0 || initial >= n then
    invalid_arg
      (Printf.sprintf "Automaton.of_indexed %s: initial %d out of range" name
         initial);
  let names_lazy =
    lazy
      (let a = names () in
       if Array.length a <> n then
         invalid_arg
           (Printf.sprintf
              "Automaton.of_indexed %s: names () returned %d names for %d \
               states"
              name (Array.length a) n);
       a)
  in
  let row, ev, dst =
    make_csr_arrays
      ~who:(Printf.sprintf "Automaton.of_indexed %s" name)
      ~describe:string_of_int n ~src ~event ~target
  in
  {
    name;
    n;
    names = names_lazy;
    index = make_index name n names_lazy;
    alphabet;
    decode = make_decode alphabet;
    row;
    ev;
    dst;
    initial;
    marked = Array.copy marked;
    forbidden = Array.copy forbidden;
    digest = None;
  }

let of_indexed ~name ~names ~alphabet ~initial ~marked ~forbidden trans =
  let n = Array.length marked in
  if Array.length forbidden <> n then
    invalid_arg
      (Printf.sprintf
         "Automaton.of_indexed %s: marked/forbidden length mismatch (%d vs %d)"
         name n (Array.length forbidden));
  if initial < 0 || initial >= n then
    invalid_arg
      (Printf.sprintf "Automaton.of_indexed %s: initial %d out of range" name
         initial);
  let names_lazy =
    lazy
      (let a = names () in
       if Array.length a <> n then
         invalid_arg
           (Printf.sprintf
              "Automaton.of_indexed %s: names () returned %d names for %d \
               states"
              name (Array.length a) n);
       a)
  in
  let row, ev, dst =
    make_csr
      ~who:(Printf.sprintf "Automaton.of_indexed %s" name)
      ~describe:string_of_int n trans
  in
  {
    name;
    n;
    names = names_lazy;
    index = make_index name n names_lazy;
    alphabet;
    decode = make_decode alphabet;
    row;
    ev;
    dst;
    initial;
    marked = Array.copy marked;
    forbidden = Array.copy forbidden;
    digest = None;
  }

let create ?marked ?(forbidden = []) ?(alphabet = []) ~name ~initial
    ~transitions () =
  (* Event-name consistency first: the comparator's order is total over
     (name, controllability), so this is where a name used with both
     polarities must be caught — loudly, not from inside a Set rebalance. *)
  let ctrl_of_name = Hashtbl.create 16 in
  let check_event e =
    match Hashtbl.find_opt ctrl_of_name (Event.name e) with
    | Some c when c <> Event.is_controllable e ->
        invalid_arg
          (Printf.sprintf
             "Automaton %s: event %S is used both controllably and \
              uncontrollably"
             name (Event.name e))
    | Some _ -> ()
    | None -> Hashtbl.add ctrl_of_name (Event.name e) (Event.is_controllable e)
  in
  List.iter check_event alphabet;
  List.iter (fun (_, e, _) -> check_event e) transitions;
  (* Collect states in first-seen order, initial state first. *)
  let index = Hashtbl.create 16 in
  let order = ref [] in
  let intern s =
    match Hashtbl.find_opt index s with
    | Some i -> i
    | None ->
        let i = Hashtbl.length index in
        Hashtbl.add index s i;
        order := s :: !order;
        i
  in
  let initial_i = intern initial in
  List.iter
    (fun (src, _, dst) ->
      ignore (intern src);
      ignore (intern dst))
    transitions;
  let check_known kind s =
    if not (Hashtbl.mem index s) then
      invalid_arg
        (Printf.sprintf "Automaton %s: %s state %S unknown" name kind s)
  in
  Option.iter (List.iter (check_known "marked")) marked;
  List.iter (check_known "forbidden") forbidden;
  let n = Hashtbl.length index in
  let state_names = Array.make n "" in
  List.iter (fun s -> state_names.(Hashtbl.find index s) <- s) !order;
  let delta = Hashtbl.create 16 in
  let events = ref (Event.set_of_list alphabet) in
  List.iter
    (fun (src, e, dst) ->
      events := Event.Set.add e !events;
      let si = Hashtbl.find index src and di = Hashtbl.find index dst in
      match Hashtbl.find_opt delta (si, Event.id e) with
      | Some d when d <> di ->
          invalid_arg
            (Printf.sprintf
               "Automaton %s: nondeterministic on %S from state %S" name
               (Event.name e) src)
      | Some _ -> ()
      | None -> Hashtbl.add delta (si, Event.id e) di)
    transitions;
  let trans = Array.make (Hashtbl.length delta) (0, 0, 0) in
  let k = ref 0 in
  Hashtbl.iter
    (fun (si, eid) di ->
      trans.(!k) <- (si, eid, di);
      incr k)
    delta;
  let row, ev, dst =
    make_csr
      ~who:(Printf.sprintf "Automaton %s" name)
      ~describe:(fun s -> Printf.sprintf "%S" state_names.(s))
      n trans
  in
  let marked_arr =
    match marked with
    | None -> Array.make n true
    | Some l ->
        let m = Array.make n false in
        List.iter (fun s -> m.(Hashtbl.find index s) <- true) l;
        m
  in
  let forbidden_arr = Array.make n false in
  List.iter (fun s -> forbidden_arr.(Hashtbl.find index s) <- true) forbidden;
  {
    name;
    n;
    names = Lazy.from_val state_names;
    index = Lazy.from_val index;
    alphabet = !events;
    decode = make_decode !events;
    row;
    ev;
    dst;
    initial = initial_i;
    marked = marked_arr;
    forbidden = forbidden_arr;
    digest = None;
  }

let of_transitions ?marked ?forbidden ~name ~initial trans =
  create ?marked ?forbidden ~name ~initial
    ~transitions:(List.map (fun { src; event; dst } -> (src, event, dst)) trans)
    ()

let accepts a w =
  let rec go i = function
    | [] -> a.marked.(i)
    | e :: rest -> (
        match step_index a i (Event.id e) with
        | None -> false
        | Some j -> go j rest)
  in
  go a.initial w

let trace a w =
  let rec go i = function
    | [] -> Some (state_of_index a i)
    | e :: rest -> (
        match step_index a i (Event.id e) with
        | None -> None
        | Some j -> go j rest)
  in
  go a.initial w

(* --- surgery --------------------------------------------------------- *)

let restrict_indices a keep =
  if Array.length keep <> a.n then
    invalid_arg
      (Printf.sprintf
         "Automaton %s: restrict_indices: %d flags for %d states" a.name
         (Array.length keep) a.n);
  if not keep.(a.initial) then None
  else begin
    (* A kept state survives when it is the initial state or an endpoint
       of a kept transition (both ends kept). *)
    let survive = Array.make a.n false in
    survive.(a.initial) <- true;
    let n_trans = ref 0 in
    for s = 0 to a.n - 1 do
      if keep.(s) then
        iter_row a s (fun _ d ->
            if keep.(d) then begin
              survive.(s) <- true;
              survive.(d) <- true;
              incr n_trans
            end)
    done;
    let new_of_old = Array.make a.n (-1) in
    let m = ref 0 in
    for i = 0 to a.n - 1 do
      if survive.(i) then begin
        new_of_old.(i) <- !m;
        incr m
      end
    done;
    let m = !m in
    let old_of_new = Array.make m 0 in
    for i = 0 to a.n - 1 do
      if survive.(i) then old_of_new.(new_of_old.(i)) <- i
    done;
    let trans = Array.make !n_trans (0, 0, 0) in
    let k = ref 0 in
    for s = 0 to a.n - 1 do
      if keep.(s) then
        iter_row a s (fun eid d ->
            if keep.(d) then begin
              trans.(!k) <- (new_of_old.(s), eid, new_of_old.(d));
              incr k
            end)
    done;
    let names () =
      let parent = Lazy.force a.names in
      Array.map (fun old -> parent.(old)) old_of_new
    in
    Some
      (of_indexed ~name:a.name ~names ~alphabet:a.alphabet
         ~initial:new_of_old.(a.initial)
         ~marked:(Array.init m (fun i -> a.marked.(old_of_new.(i))))
         ~forbidden:(Array.init m (fun i -> a.forbidden.(old_of_new.(i))))
         trans)
  end

let restrict_states a ~keep =
  restrict_indices a (Array.map keep (Lazy.force a.names))

let rename a name = { a with name; digest = None }

let relabel_states a f =
  let names = Lazy.force a.names in
  let seen = Hashtbl.create 16 in
  Array.iter
    (fun s ->
      let s' = f s in
      match Hashtbl.find_opt seen s' with
      | Some other when other <> s ->
          invalid_arg
            (Printf.sprintf "Automaton.relabel_states: %S and %S collide"
               other s)
      | _ -> Hashtbl.replace seen s' s)
    names;
  let transitions =
    List.rev
      (fold_transitions
         (fun s e d acc -> (f names.(s), e, f names.(d)) :: acc)
         a [])
  in
  create
    ~marked:(List.map f (marked a))
    ~forbidden:(List.map f (forbidden a))
    ~alphabet:(Event.Set.elements a.alphabet) ~name:a.name
    ~initial:(f (initial a)) ~transitions ()

(* Escape '.' and '\' so that joining two component names with '.' is
   unambiguous: the separator is the only unescaped dot, so distinct
   pairs like ("a.b","c") and ("a","b.c") can never collide.  Names
   without dots or backslashes — the common case — pass through
   untouched. *)
let escape_component s =
  if String.exists (fun c -> c = '.' || c = '\\') s then begin
    let b = Buffer.create (String.length s + 4) in
    String.iter
      (fun c ->
        if c = '.' || c = '\\' then Buffer.add_char b '\\';
        Buffer.add_char b c)
      s;
    Buffer.contents b
  end
  else s

let product_state_name qa qb = escape_component qa ^ "." ^ escape_component qb

let product_state_name_n parts =
  String.concat "." (List.map escape_component parts)

let unescape_state_name s =
  if String.contains s '\\' then begin
    let b = Buffer.create (String.length s) in
    let n = String.length s in
    let i = ref 0 in
    while !i < n do
      if s.[!i] = '\\' && !i + 1 < n then incr i;
      Buffer.add_char b s.[!i];
      incr i
    done;
    Buffer.contents b
  end
  else s

let structural_digest a =
  match a.digest with
  | Some d -> d
  | None ->
      let b = Buffer.create 1024 in
      (* Length-prefixed fields so adjacent strings cannot run together. *)
      let add s =
        Buffer.add_string b (string_of_int (String.length s));
        Buffer.add_char b ':';
        Buffer.add_string b s
      in
      add a.name;
      let names = Lazy.force a.names in
      Buffer.add_string b (string_of_int a.n);
      Array.iter add names;
      Buffer.add_string b (string_of_int a.initial);
      Event.Set.iter
        (fun e ->
          add (Event.name e);
          Buffer.add_char b (if Event.is_controllable e then 'c' else 'u'))
        a.alphabet;
      (* CSR order: by source index, then event id — deterministic within
         a process (intern order), which is all the in-process cache
         needs. *)
      for s = 0 to a.n - 1 do
        iter_row a s (fun eid d ->
            Buffer.add_string b (string_of_int s);
            Buffer.add_char b ',';
            add (Event.name (event_of_id a eid));
            Buffer.add_string b (string_of_int d))
      done;
      Array.iter (fun m -> Buffer.add_char b (if m then '1' else '0')) a.marked;
      Array.iter
        (fun m -> Buffer.add_char b (if m then '1' else '0'))
        a.forbidden;
      let d = Digest.to_hex (Digest.string (Buffer.contents b)) in
      a.digest <- Some d;
      d

let isomorphic a b =
  Event.Set.equal a.alphabet b.alphabet
  &&
  let map_ab = Hashtbl.create 16 in
  let map_ba = Hashtbl.create 16 in
  let queue = Queue.create () in
  let bind i j =
    match (Hashtbl.find_opt map_ab i, Hashtbl.find_opt map_ba j) with
    | Some j', _ when j' <> j -> false
    | _, Some i' when i' <> i -> false
    | Some _, Some _ -> true
    | _ ->
        Hashtbl.replace map_ab i j;
        Hashtbl.replace map_ba j i;
        Queue.push (i, j) queue;
        true
  in
  let ok = ref (bind a.initial b.initial) in
  while !ok && not (Queue.is_empty queue) do
    let i, j = Queue.pop queue in
    if a.marked.(i) <> b.marked.(j) || a.forbidden.(i) <> b.forbidden.(j) then
      ok := false
    else
      Event.Set.iter
        (fun e ->
          let eid = Event.id e in
          match (step_index a i eid, step_index b j eid) with
          | None, None -> ()
          | Some i', Some j' -> if not (bind i' j') then ok := false
          | _ -> ok := false)
        a.alphabet
  done;
  !ok

let pp ppf a =
  Format.fprintf ppf "%s: %d states, %d transitions, %d events, initial %S"
    a.name (num_states a) (num_transitions a)
    (Event.Set.cardinal a.alphabet)
    (initial a)
