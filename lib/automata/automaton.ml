type transition = { src : string; event : Event.t; dst : string }

type t = {
  name : string;
  state_names : string array;
  index : (string, int) Hashtbl.t;
  alphabet : Event.Set.t;
  delta : (int * string, int) Hashtbl.t; (* (src index, event name) -> dst *)
  trans : (int * Event.t * int) array; (* sorted by (src, event) *)
  initial : int;
  marked : bool array;
  forbidden : bool array;
}

let name a = a.name
let alphabet a = a.alphabet
let num_states a = Array.length a.state_names
let num_transitions a = Array.length a.trans
let states a = Array.to_list a.state_names
let initial a = a.state_names.(a.initial)
let initial_index a = a.initial

let index_of_state a s =
  match Hashtbl.find_opt a.index s with
  | Some i -> i
  | None ->
      invalid_arg
        (Printf.sprintf "Automaton %s: unknown state %S" a.name s)

let state_of_index a i =
  if i < 0 || i >= num_states a then
    invalid_arg (Printf.sprintf "Automaton %s: index %d out of range" a.name i);
  a.state_names.(i)

let mem_state a s = Hashtbl.mem a.index s
let is_marked_index a i = a.marked.(i)
let is_forbidden_index a i = a.forbidden.(i)
let is_marked a s = a.marked.(index_of_state a s)
let is_forbidden a s = a.forbidden.(index_of_state a s)

let marked a = List.filteri (fun i _ -> a.marked.(i)) (states a)

let forbidden a = List.filteri (fun i _ -> a.forbidden.(i)) (states a)

let step_index a i e = Hashtbl.find_opt a.delta (i, Event.name e)

let step a s e =
  Option.map (state_of_index a) (step_index a (index_of_state a s) e)

let enabled_index a i =
  Event.Set.elements
    (Event.Set.filter (fun e -> step_index a i e <> None) a.alphabet)

let enabled a s = enabled_index a (index_of_state a s)

let transitions a =
  Array.to_list a.trans
  |> List.map (fun (s, e, d) ->
         { src = a.state_names.(s); event = e; dst = a.state_names.(d) })

let fold_transitions f a acc =
  Array.fold_left (fun acc (s, e, d) -> f s e d acc) acc a.trans

let create ?marked ?(forbidden = []) ?(alphabet = []) ~name ~initial
    ~transitions () =
  (* Collect states in first-seen order, initial state first. *)
  let index = Hashtbl.create 16 in
  let order = ref [] in
  let intern s =
    match Hashtbl.find_opt index s with
    | Some i -> i
    | None ->
        let i = Hashtbl.length index in
        Hashtbl.add index s i;
        order := s :: !order;
        i
  in
  let initial_i = intern initial in
  List.iter
    (fun (src, _, dst) ->
      ignore (intern src);
      ignore (intern dst))
    transitions;
  let check_known kind s =
    if not (Hashtbl.mem index s) then
      invalid_arg
        (Printf.sprintf "Automaton %s: %s state %S unknown" name kind s)
  in
  Option.iter (List.iter (check_known "marked")) marked;
  List.iter (check_known "forbidden") forbidden;
  let n = Hashtbl.length index in
  let state_names = Array.make n "" in
  List.iter (fun s -> state_names.(Hashtbl.find index s) <- s) !order;
  let delta = Hashtbl.create 16 in
  let events = ref (Event.set_of_list alphabet) in
  let by_name = Hashtbl.create 16 in
  Event.Set.iter (fun e -> Hashtbl.replace by_name (Event.name e) e) !events;
  List.iter
    (fun (src, e, dst) ->
      events := Event.Set.add e !events;
      Hashtbl.replace by_name (Event.name e) e;
      let si = Hashtbl.find index src and di = Hashtbl.find index dst in
      match Hashtbl.find_opt delta (si, Event.name e) with
      | Some d when d <> di ->
          invalid_arg
            (Printf.sprintf
               "Automaton %s: nondeterministic on %S from state %S" name
               (Event.name e) src)
      | Some _ -> ()
      | None -> Hashtbl.add delta (si, Event.name e) di)
    transitions;
  let trans =
    Hashtbl.fold
      (fun (si, ename) di acc -> (si, Hashtbl.find by_name ename, di) :: acc)
      delta []
    |> List.sort (fun (s1, e1, _) (s2, e2, _) ->
           match compare s1 s2 with 0 -> Event.compare e1 e2 | c -> c)
    |> Array.of_list
  in
  let marked_arr =
    match marked with
    | None -> Array.make n true
    | Some l ->
        let m = Array.make n false in
        List.iter (fun s -> m.(Hashtbl.find index s) <- true) l;
        m
  in
  let forbidden_arr = Array.make n false in
  List.iter (fun s -> forbidden_arr.(Hashtbl.find index s) <- true) forbidden;
  {
    name;
    state_names;
    index;
    alphabet = !events;
    delta;
    trans;
    initial = initial_i;
    marked = marked_arr;
    forbidden = forbidden_arr;
  }

let of_transitions ?marked ?forbidden ~name ~initial trans =
  create ?marked ?forbidden ~name ~initial
    ~transitions:(List.map (fun { src; event; dst } -> (src, event, dst)) trans)
    ()

let accepts a w =
  let rec go i = function
    | [] -> a.marked.(i)
    | e :: rest -> (
        match step_index a i e with None -> false | Some j -> go j rest)
  in
  go a.initial w

let trace a w =
  let rec go i = function
    | [] -> Some (state_of_index a i)
    | e :: rest -> (
        match step_index a i e with None -> None | Some j -> go j rest)
  in
  go a.initial w

let restrict_states a ~keep =
  if not (keep (initial a)) then None
  else begin
    let kept = Array.map keep a.state_names in
    let transitions =
      fold_transitions
        (fun s e d acc ->
          if kept.(s) && kept.(d) then
            (a.state_names.(s), e, a.state_names.(d)) :: acc
          else acc)
        a []
    in
    (* A kept state with no remaining transition survives only if it is the
       initial state; marked/forbidden lists must mention known states. *)
    let survives i =
      kept.(i)
      && (i = a.initial
         || List.exists
              (fun (s, _, d) -> s = a.state_names.(i) || d = a.state_names.(i))
              transitions)
    in
    let marked_list =
      List.filteri (fun i _ -> survives i && a.marked.(i)) (states a)
    in
    let forbidden_list =
      List.filteri (fun i _ -> survives i && a.forbidden.(i)) (states a)
    in
    Some
      (create ~marked:marked_list ~forbidden:forbidden_list
         ~alphabet:(Event.Set.elements a.alphabet) ~name:a.name
         ~initial:(initial a) ~transitions ())
  end

let rename a name = { a with name }

let relabel_states a f =
  let seen = Hashtbl.create 16 in
  Array.iter
    (fun s ->
      let s' = f s in
      match Hashtbl.find_opt seen s' with
      | Some other when other <> s ->
          invalid_arg
            (Printf.sprintf "Automaton.relabel_states: %S and %S collide"
               other s)
      | _ -> Hashtbl.replace seen s' s)
    a.state_names;
  let transitions =
    fold_transitions
      (fun s e d acc -> (f a.state_names.(s), e, f a.state_names.(d)) :: acc)
      a []
  in
  create
    ~marked:(List.map f (marked a))
    ~forbidden:(List.map f (forbidden a))
    ~alphabet:(Event.Set.elements a.alphabet) ~name:a.name
    ~initial:(f (initial a)) ~transitions ()

(* Escape '.' and '\' so that joining two component names with '.' is
   unambiguous: the separator is the only unescaped dot, so distinct
   pairs like ("a.b","c") and ("a","b.c") can never collide.  Names
   without dots or backslashes — the common case — pass through
   untouched. *)
let escape_component s =
  if String.exists (fun c -> c = '.' || c = '\\') s then begin
    let b = Buffer.create (String.length s + 4) in
    String.iter
      (fun c ->
        if c = '.' || c = '\\' then Buffer.add_char b '\\';
        Buffer.add_char b c)
      s;
    Buffer.contents b
  end
  else s

let product_state_name qa qb = escape_component qa ^ "." ^ escape_component qb

let structural_digest a =
  let b = Buffer.create 1024 in
  (* Length-prefixed fields so adjacent strings cannot run together. *)
  let add s =
    Buffer.add_string b (string_of_int (String.length s));
    Buffer.add_char b ':';
    Buffer.add_string b s
  in
  add a.name;
  Buffer.add_string b (string_of_int (Array.length a.state_names));
  Array.iter add a.state_names;
  Buffer.add_string b (string_of_int a.initial);
  Event.Set.iter
    (fun e ->
      add (Event.name e);
      Buffer.add_char b (if Event.is_controllable e then 'c' else 'u'))
    a.alphabet;
  (* [trans] is canonically sorted by (src, event) at construction. *)
  Array.iter
    (fun (s, e, d) ->
      Buffer.add_string b (string_of_int s);
      Buffer.add_char b ',';
      add (Event.name e);
      Buffer.add_string b (string_of_int d))
    a.trans;
  Array.iter (fun m -> Buffer.add_char b (if m then '1' else '0')) a.marked;
  Array.iter (fun m -> Buffer.add_char b (if m then '1' else '0')) a.forbidden;
  Digest.to_hex (Digest.string (Buffer.contents b))

let isomorphic a b =
  Event.Set.equal a.alphabet b.alphabet
  &&
  let map_ab = Hashtbl.create 16 in
  let map_ba = Hashtbl.create 16 in
  let queue = Queue.create () in
  let bind i j =
    match (Hashtbl.find_opt map_ab i, Hashtbl.find_opt map_ba j) with
    | Some j', _ when j' <> j -> false
    | _, Some i' when i' <> i -> false
    | Some _, Some _ -> true
    | _ ->
        Hashtbl.replace map_ab i j;
        Hashtbl.replace map_ba j i;
        Queue.push (i, j) queue;
        true
  in
  let ok = ref (bind a.initial b.initial) in
  while !ok && not (Queue.is_empty queue) do
    let i, j = Queue.pop queue in
    if a.marked.(i) <> b.marked.(j) || a.forbidden.(i) <> b.forbidden.(j) then
      ok := false
    else
      Event.Set.iter
        (fun e ->
          match (step_index a i e, step_index b j e) with
          | None, None -> ()
          | Some i', Some j' -> if not (bind i' j') then ok := false
          | _ -> ok := false)
        a.alphabet
  done;
  !ok

let pp ppf a =
  Format.fprintf ppf "%s: %d states, %d transitions, %d events, initial %S"
    a.name (num_states a) (num_transitions a)
    (Event.Set.cardinal a.alphabet)
    (initial a)
