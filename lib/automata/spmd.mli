(** Bulk-synchronous SPMD execution over scoped domains — the
    coordination substrate of {!Synthesis.supcon_par}.

    [run ~jobs f] calls [f w barrier] on workers [w = 0 .. jobs-1]:
    worker 0 runs on the calling domain, the others on domains spawned
    for the call and joined before it returns.  Workers structure their
    work as phases separated by {!wait}; the barrier both synchronizes
    and publishes (its mutex makes every phase-r write visible to every
    phase-r+1 reader).  With [jobs = 1] no domain is spawned and [f] is
    called inline with a no-op barrier — the sequential and parallel
    code paths are the same code.

    If any worker raises, the barrier is aborted: blocked and future
    {!wait}s raise {!Aborted} (caught inside [run]), every domain is
    joined, and the lowest-indexed worker's original exception is
    re-raised on the caller. *)

type barrier

exception Aborted

val wait : barrier -> unit
(** Block until all [jobs] workers arrive, then release them together.
    Raises {!Aborted} (after waking) when some worker failed. *)

val run : jobs:int -> (int -> barrier -> unit) -> unit
(** [run ~jobs f] — see module doc.  [jobs] is clamped to [>= 1]. *)
