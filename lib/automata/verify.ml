type blocking_witness = { state : string }

let nonblocking a =
  let acc = Reach.accessible_indices a in
  let coacc = Reach.coaccessible_indices a in
  let witness = ref None in
  Array.iteri
    (fun i reachable ->
      if reachable && (not coacc.(i)) && !witness = None then
        witness := Some { state = Automaton.state_of_index a i })
    acc;
  match !witness with None -> Ok () | Some w -> Error w

let is_nonblocking a = Result.is_ok (nonblocking a)

type controllability_witness = {
  supervisor_state : string;
  plant_state : string;
  event : Event.t;
}

(* Walk the reachable product of supervisor and plant on indices; at each
   pair check that every uncontrollable plant-enabled event (that the
   supervisor's alphabet contains) is supervisor-enabled.  Like Compose,
   the walk iterates CSR rows instead of the union alphabet, so only
   enabled events are ever examined; names are decoded only for the
   witness on the error path. *)
let controllable ~plant ~supervisor =
  let sigma_s = Automaton.alphabet supervisor in
  let sigma_g = Automaton.alphabet plant in
  let alphabet =
    Event.merge_alphabets
      ~context:
        (Printf.sprintf "Verify.controllable(%s,%s)" (Automaton.name plant)
           (Automaton.name supervisor))
      sigma_s sigma_g
  in
  let max_id = Event.Set.fold (fun e m -> max m (Event.id e)) alphabet (-1) in
  let in_s = Array.make (max_id + 1) false in
  let in_g = Array.make (max_id + 1) false in
  let ctrl = Array.make (max_id + 1) true in
  Event.Set.iter (fun e -> in_s.(Event.id e) <- true) sigma_s;
  Event.Set.iter (fun e -> in_g.(Event.id e) <- true) sigma_g;
  Event.Set.iter
    (fun e -> ctrl.(Event.id e) <- Event.is_controllable e)
    alphabet;
  let ng = Automaton.num_states plant in
  let seen = Hashtbl.create 1024 in
  let queue = Queue.create () in
  let visit is_ ig =
    let key = (is_ * ng) + ig in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      Queue.push (is_, ig) queue
    end
  in
  visit (Automaton.initial_index supervisor) (Automaton.initial_index plant);
  let witness = ref None in
  (try
     while not (Queue.is_empty queue) do
       let is_, ig = Queue.pop queue in
       Automaton.iter_row plant ig (fun eid jg ->
           if in_s.(eid) then (
             match Automaton.step_index supervisor is_ eid with
             | Some js -> visit js jg
             | None ->
                 (* Plant enables it, supervisor's alphabet contains it,
                    supervisor disables it: a violation iff
                    uncontrollable. *)
                 if not ctrl.(eid) then begin
                   witness :=
                     Some
                       {
                         supervisor_state =
                           Automaton.state_of_index supervisor is_;
                         plant_state = Automaton.state_of_index plant ig;
                         event = Automaton.event_of_id plant eid;
                       };
                   raise Exit
                 end)
           else visit is_ jg);
       Automaton.iter_row supervisor is_ (fun eid js ->
           if not in_g.(eid) then visit js ig)
     done
   with Exit -> ());
  match !witness with None -> Ok () | Some w -> Error w

let is_controllable ~plant ~supervisor =
  Result.is_ok (controllable ~plant ~supervisor)

let closed_loop ~plant ~supervisor = Compose.pair supervisor plant
