(* Forward BFS straight over the CSR rows — the transition arrays are the
   adjacency structure, no per-state lists to build. *)
let accessible_indices a =
  let n = Automaton.num_states a in
  let seen = Array.make n false in
  let queue = Queue.create () in
  seen.(Automaton.initial_index a) <- true;
  Queue.push (Automaton.initial_index a) queue;
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    Automaton.iter_row a i (fun _ j ->
        if not seen.(j) then begin
          seen.(j) <- true;
          Queue.push j queue
        end)
  done;
  seen

(* Backward traversal needs the reverse adjacency; counting-sort the
   transitions by destination into CSR form once. *)
let pred_csr a =
  let n = Automaton.num_states a in
  let deg = Array.make n 0 in
  for s = 0 to n - 1 do
    Automaton.iter_row a s (fun _ d -> deg.(d) <- deg.(d) + 1)
  done;
  let row = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    row.(i + 1) <- row.(i) + deg.(i)
  done;
  let src = Array.make row.(n) 0 in
  let cursor = Array.copy row in
  for s = 0 to n - 1 do
    Automaton.iter_row a s (fun _ d ->
        src.(cursor.(d)) <- s;
        cursor.(d) <- cursor.(d) + 1)
  done;
  (row, src)

let coaccessible_indices a =
  let n = Automaton.num_states a in
  let seen = Array.make n false in
  let queue = Queue.create () in
  let row, src = pred_csr a in
  for i = 0 to n - 1 do
    if Automaton.is_marked_index a i then begin
      seen.(i) <- true;
      Queue.push i queue
    end
  done;
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    for k = row.(i) to row.(i + 1) - 1 do
      let j = src.(k) in
      if not seen.(j) then begin
        seen.(j) <- true;
        Queue.push j queue
      end
    done
  done;
  seen

let restrict_indices = Automaton.restrict_indices

let accessible a =
  match restrict_indices a (accessible_indices a) with
  | Some a' -> a'
  | None -> assert false (* the initial state is always accessible *)

let coaccessible a = restrict_indices a (coaccessible_indices a)

(* Removing blocking states can strand states that were only reachable or
   coaccessible through them, so iterate to a fixpoint.  The fixpoint
   runs entirely on boolean masks over the original automaton — forward
   and backward BFS restricted to the current keep-set, with the
   predecessor CSR built exactly once — and the automaton is restricted
   exactly once at the end.  (The old version rebuilt the automaton via
   [restrict_indices] and recomputed [pred_csr] every iteration:
   O(iterations × |δ|) allocation churn at product scale.)  The result
   is the greatest set closed under "accessible within the set" and
   "coaccessible within the set", which is exactly what the restrict-
   per-round loop converged to, so the output is identical. *)
let trim a =
  let n = Automaton.num_states a in
  let prow, psrc = pred_csr a in
  let initial = Automaton.initial_index a in
  let keep = Array.make n true in
  let acc = Array.make n false in
  let coacc = Array.make n false in
  let stack = Array.make n 0 in
  let changed = ref true in
  while !changed && keep.(initial) do
    changed := false;
    (* Forward BFS from the initial state through kept states. *)
    Array.fill acc 0 n false;
    let top = ref 0 in
    acc.(initial) <- true;
    stack.(!top) <- initial;
    incr top;
    while !top > 0 do
      decr top;
      let i = stack.(!top) in
      Automaton.iter_row a i (fun _ j ->
          if keep.(j) && not acc.(j) then begin
            acc.(j) <- true;
            stack.(!top) <- j;
            incr top
          end)
    done;
    (* Backward BFS from kept marked states through kept states. *)
    Array.fill coacc 0 n false;
    for i = 0 to n - 1 do
      if keep.(i) && Automaton.is_marked_index a i then begin
        coacc.(i) <- true;
        stack.(!top) <- i;
        incr top
      end
    done;
    while !top > 0 do
      decr top;
      let j = stack.(!top) in
      for k = prow.(j) to prow.(j + 1) - 1 do
        let i = psrc.(k) in
        if keep.(i) && not coacc.(i) then begin
          coacc.(i) <- true;
          stack.(!top) <- i;
          incr top
        end
      done
    done;
    for i = 0 to n - 1 do
      if keep.(i) && not (acc.(i) && coacc.(i)) then begin
        keep.(i) <- false;
        changed := true
      end
    done
  done;
  if not keep.(initial) then None else restrict_indices a keep

let is_trim a =
  let acc = accessible_indices a in
  let coacc = coaccessible_indices a in
  let ok = ref true in
  Array.iteri (fun i x -> if not (x && coacc.(i)) then ok := false) acc;
  !ok
