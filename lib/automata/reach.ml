(* Forward BFS straight over the CSR rows — the transition arrays are the
   adjacency structure, no per-state lists to build. *)
let accessible_indices a =
  let n = Automaton.num_states a in
  let seen = Array.make n false in
  let queue = Queue.create () in
  seen.(Automaton.initial_index a) <- true;
  Queue.push (Automaton.initial_index a) queue;
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    Automaton.iter_row a i (fun _ j ->
        if not seen.(j) then begin
          seen.(j) <- true;
          Queue.push j queue
        end)
  done;
  seen

(* Backward traversal needs the reverse adjacency; counting-sort the
   transitions by destination into CSR form once. *)
let pred_csr a =
  let n = Automaton.num_states a in
  let deg = Array.make n 0 in
  for s = 0 to n - 1 do
    Automaton.iter_row a s (fun _ d -> deg.(d) <- deg.(d) + 1)
  done;
  let row = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    row.(i + 1) <- row.(i) + deg.(i)
  done;
  let src = Array.make row.(n) 0 in
  let cursor = Array.copy row in
  for s = 0 to n - 1 do
    Automaton.iter_row a s (fun _ d ->
        src.(cursor.(d)) <- s;
        cursor.(d) <- cursor.(d) + 1)
  done;
  (row, src)

let coaccessible_indices a =
  let n = Automaton.num_states a in
  let seen = Array.make n false in
  let queue = Queue.create () in
  let row, src = pred_csr a in
  for i = 0 to n - 1 do
    if Automaton.is_marked_index a i then begin
      seen.(i) <- true;
      Queue.push i queue
    end
  done;
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    for k = row.(i) to row.(i + 1) - 1 do
      let j = src.(k) in
      if not seen.(j) then begin
        seen.(j) <- true;
        Queue.push j queue
      end
    done
  done;
  seen

let restrict_indices = Automaton.restrict_indices

let accessible a =
  match restrict_indices a (accessible_indices a) with
  | Some a' -> a'
  | None -> assert false (* the initial state is always accessible *)

let coaccessible a = restrict_indices a (coaccessible_indices a)

(* Removing blocking states can strand states that were only reachable or
   coaccessible through them, so iterate to a fixpoint. *)
let rec trim a =
  let acc = accessible_indices a in
  let coacc = coaccessible_indices a in
  let both = Array.map2 ( && ) acc coacc in
  match restrict_indices a both with
  | None -> None
  | Some a' ->
      if Automaton.num_states a' = Automaton.num_states a then Some a'
      else trim a'

let is_trim a =
  let acc = accessible_indices a in
  let coacc = coaccessible_indices a in
  let ok = ref true in
  Array.iteri (fun i x -> if not (x && coacc.(i)) then ok := false) acc;
  !ok
