let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_dot a =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "digraph \"%s\" {\n  rankdir=LR;\n"
       (escape (Automaton.name a)));
  Buffer.add_string buf "  __init [shape=point, style=invis];\n";
  List.iter
    (fun s ->
      let shape, extra =
        if Automaton.is_forbidden a s then ("box", ", color=red, fontcolor=red")
        else if Automaton.is_marked a s then ("doublecircle", "")
        else ("circle", "")
      in
      (* Node id is the exact (escaped) state name — unique by
         construction; the label drops the product-name escaping so
         "Eval\.Safe.Uncapped" renders as "Eval.Safe.Uncapped". *)
      Buffer.add_string buf
        (Printf.sprintf "  \"%s\" [label=\"%s\", shape=%s%s];\n" (escape s)
           (escape (Automaton.unescape_state_name s))
           shape extra))
    (Automaton.states a);
  Buffer.add_string buf
    (Printf.sprintf "  __init -> \"%s\";\n" (escape (Automaton.initial a)));
  List.iter
    (fun { Automaton.src; event; dst } ->
      let label = Format.asprintf "%a" Event.pp event in
      Buffer.add_string buf
        (Printf.sprintf "  \"%s\" -> \"%s\" [label=\"%s\"];\n" (escape src)
           (escape dst) (escape label)))
    (Automaton.transitions a);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_file a ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_dot a))
