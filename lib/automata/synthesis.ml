type stats = {
  product_states : int;
  removed_uncontrollable : int;
  removed_blocking : int;
  removed_forbidden : int;
  iterations : int;
}

let pp_stats ppf s =
  Format.fprintf ppf
    "product %d states; removed %d forbidden, %d uncontrollable, %d blocking; \
     %d fixpoint iterations"
    s.product_states s.removed_forbidden s.removed_uncontrollable
    s.removed_blocking s.iterations

type error = Empty_supervisor

(* The synthesis works on the reachable product of plant and spec, kept as
   explicit (plant index, spec index) pairs so controllability can consult
   the plant component directly. *)

type product = {
  states : (int * int) array; (* product index -> (plant, spec) *)
  trans : (int * Event.t * int) list; (* product transitions *)
  succ : (Event.t * int) list array; (* outgoing, by product index *)
  pred : int list array; (* incoming (source indices) *)
  marked : bool array;
  forbidden : bool array;
  initial : int;
}

let build_product plant spec =
  let sigma_g = Automaton.alphabet plant in
  let sigma_e = Automaton.alphabet spec in
  let alphabet = Event.Set.union sigma_g sigma_e in
  let index = Hashtbl.create 64 in
  let pair_of = Hashtbl.create 64 in
  let n = ref 0 in
  let intern p =
    match Hashtbl.find_opt index p with
    | Some i -> i
    | None ->
        let i = !n in
        incr n;
        Hashtbl.add index p i;
        Hashtbl.add pair_of i p;
        i
  in
  let queue = Queue.create () in
  let start =
    intern (Automaton.initial_index plant, Automaton.initial_index spec)
  in
  Queue.push start queue;
  let trans = ref [] in
  let explored = Hashtbl.create 64 in
  Hashtbl.add explored start ();
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    let ig, ie = Hashtbl.find pair_of i in
    Event.Set.iter
      (fun e ->
        let in_g = Event.Set.mem e sigma_g in
        let in_e = Event.Set.mem e sigma_e in
        let next =
          match (in_g, in_e) with
          | true, true -> (
              match
                (Automaton.step_index plant ig e, Automaton.step_index spec ie e)
              with
              | Some jg, Some je -> Some (jg, je)
              | _ -> None)
          | true, false ->
              Option.map (fun jg -> (jg, ie)) (Automaton.step_index plant ig e)
          | false, true ->
              Option.map (fun je -> (ig, je)) (Automaton.step_index spec ie e)
          | false, false -> None
        in
        match next with
        | None -> ()
        | Some p ->
            let j = intern p in
            trans := (i, e, j) :: !trans;
            if not (Hashtbl.mem explored j) then begin
              Hashtbl.add explored j ();
              Queue.push j queue
            end)
      alphabet
  done;
  let states = Array.init !n (fun i -> Hashtbl.find pair_of i) in
  let total = Array.length states in
  let succ = Array.make total [] in
  let pred = Array.make total [] in
  List.iter
    (fun (i, e, j) ->
      succ.(i) <- (e, j) :: succ.(i);
      pred.(j) <- i :: pred.(j))
    !trans;
  let marked =
    Array.map
      (fun (ig, ie) ->
        Automaton.is_marked_index plant ig && Automaton.is_marked_index spec ie)
      states
  in
  let forbidden =
    Array.map
      (fun (ig, ie) ->
        Automaton.is_forbidden_index plant ig
        || Automaton.is_forbidden_index spec ie)
      states
  in
  { states; trans = !trans; succ; pred; marked; forbidden; initial = start }

(* Static controllability index over the product.  The fixpoint only ever
   asks two questions of a state: does the plant enable an uncontrollable
   event the spec disables (an escape — bad no matter what), and which
   states does it reach / is it reached from via uncontrollable events?
   Neither answer depends on the evolving good-set, so we resolve the
   event lookups once instead of rescanning every state's association
   list on every pass. *)
type unc_index = {
  unc_escape : bool array;
  unc_succ : int list array; (* successors via uncontrollable events *)
  unc_pred : int list array; (* reverse of [unc_succ] *)
}

let build_unc_index plant spec product =
  let n = Array.length product.states in
  let sigma_e = Automaton.alphabet spec in
  let unc_escape = Array.make n false in
  let unc_succ = Array.make n [] in
  let unc_pred = Array.make n [] in
  Array.iteri
    (fun i (ig, _ie) ->
      let by_event = Hashtbl.create 8 in
      List.iter
        (fun (e, j) ->
          if not (Hashtbl.mem by_event e) then Hashtbl.add by_event e j)
        product.succ.(i);
      List.iter
        (fun e ->
          if not (Event.is_controllable e) then
            match Hashtbl.find_opt by_event e with
            | Some j ->
                unc_succ.(i) <- j :: unc_succ.(i);
                unc_pred.(j) <- i :: unc_pred.(j)
            | None ->
                (* A plant-private event always has a product transition,
                   so a missing one means the spec's alphabet contains [e]
                   and the spec disabled it: an uncontrollable escape. *)
                assert (Event.Set.mem e sigma_e);
                unc_escape.(i) <- true)
        (Automaton.enabled_index plant ig))
    product.states;
  { unc_escape; unc_succ; unc_pred }

(* One uncontrollability pass: mark good states bad when the plant enables
   an uncontrollable event that either leaves the product (spec disables
   it) or lands on a bad state.  Worklist-driven — seed with the states
   that are violated right now, then only revisit predecessors of newly
   bad states.  Returns the number newly removed. *)
let uncontrollable_pass idx product good =
  let removed = ref 0 in
  let queue = Queue.create () in
  let kill i =
    if good.(i) then begin
      good.(i) <- false;
      incr removed;
      Queue.push i queue
    end
  in
  let n = Array.length product.states in
  for i = 0 to n - 1 do
    if
      good.(i)
      && (idx.unc_escape.(i)
         || List.exists (fun j -> not good.(j)) idx.unc_succ.(i))
    then kill i
  done;
  while not (Queue.is_empty queue) do
    let j = Queue.pop queue in
    List.iter kill idx.unc_pred.(j)
  done;
  !removed

(* Trimming pass restricted to the good region: bad-out states that cannot
   reach a good marked state, or cannot be reached from the initial state
   through good states. *)
let blocking_pass product good =
  let n = Array.length product.states in
  (* coaccessible within good *)
  let coacc = Array.make n false in
  let queue = Queue.create () in
  for i = 0 to n - 1 do
    if good.(i) && product.marked.(i) then begin
      coacc.(i) <- true;
      Queue.push i queue
    end
  done;
  while not (Queue.is_empty queue) do
    let j = Queue.pop queue in
    List.iter
      (fun i ->
        if good.(i) && not coacc.(i) then begin
          coacc.(i) <- true;
          Queue.push i queue
        end)
      product.pred.(j)
  done;
  let removed = ref 0 in
  for i = 0 to n - 1 do
    if good.(i) && not coacc.(i) then begin
      good.(i) <- false;
      incr removed
    end
  done;
  !removed

let supcon ~plant ~spec =
  let product = build_product plant spec in
  let idx = build_unc_index plant spec product in
  let n = Array.length product.states in
  let good = Array.make n true in
  let removed_forbidden = ref 0 in
  Array.iteri
    (fun i f ->
      if f then begin
        good.(i) <- false;
        incr removed_forbidden
      end)
    product.forbidden;
  let removed_unc = ref 0 in
  let removed_blk = ref 0 in
  let iterations = ref 0 in
  let continue = ref true in
  while !continue do
    incr iterations;
    let u = uncontrollable_pass idx product good in
    let b = blocking_pass product good in
    removed_unc := !removed_unc + u;
    removed_blk := !removed_blk + b;
    if u = 0 && b = 0 then continue := false
  done;
  let stats =
    {
      product_states = n;
      removed_uncontrollable = !removed_unc;
      removed_blocking = !removed_blk;
      removed_forbidden = !removed_forbidden;
      iterations = !iterations;
    }
  in
  if not good.(product.initial) then Error Empty_supervisor
  else begin
    let name_of i =
      let ig, ie = product.states.(i) in
      (* Escaping join (see Automaton.product_state_name): the plant is
         typically itself a composition with dotted state names. *)
      Automaton.product_state_name
        (Automaton.state_of_index plant ig)
        (Automaton.state_of_index spec ie)
    in
    let transitions =
      List.filter_map
        (fun (i, e, j) ->
          if good.(i) && good.(j) then Some (name_of i, e, name_of j)
          else None)
        product.trans
    in
    let marked = ref [] in
    Array.iteri
      (fun i g -> if g && product.marked.(i) then marked := name_of i :: !marked)
      good;
    let alphabet =
      Event.Set.union (Automaton.alphabet plant) (Automaton.alphabet spec)
    in
    let sup =
      Automaton.create ~marked:!marked
        ~alphabet:(Event.Set.elements alphabet)
        ~name:("sup(" ^ Automaton.name plant ^ "," ^ Automaton.name spec ^ ")")
        ~initial:(name_of product.initial) ~transitions ()
    in
    (* Only the accessible part is meaningful (pruning can disconnect). *)
    Ok (Reach.accessible sup, stats)
  end

let supcon_exn ~plant ~spec =
  match supcon ~plant ~spec with
  | Ok (sup, _) -> sup
  | Error Empty_supervisor -> failwith "Synthesis.supcon: empty supervisor"
