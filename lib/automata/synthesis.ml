type stats = {
  product_states : int;
  removed_uncontrollable : int;
  removed_blocking : int;
  removed_forbidden : int;
  iterations : int;
}

let pp_stats ppf s =
  Format.fprintf ppf
    "product %d states; removed %d forbidden, %d uncontrollable, %d blocking; \
     %d fixpoint iterations"
    s.product_states s.removed_forbidden s.removed_uncontrollable
    s.removed_blocking s.iterations

type error = Empty_supervisor

(* The synthesis works on the reachable product of plant and spec, kept
   index-native: product states are dense ints mapping back to (plant
   index, spec index) through [pg]/[pe], transitions live in parallel
   (src, event id, dst) arrays, and the two fixpoint relations the passes
   actually consult — predecessors, and the uncontrollable-event
   sub-graph — are CSR adjacency built once.

   The uncontrollable index exists because the fixpoint only ever asks
   two questions of a state: does the plant enable an uncontrollable
   event the spec disables (an escape — bad no matter what), and which
   states does it reach / is it reached from via uncontrollable events?
   Neither answer depends on the evolving good-set, so both are resolved
   during product construction — each plant-row entry is examined exactly
   once, against one binary search in the spec's row. *)

type product = {
  pg : int array; (* product index -> plant index *)
  pe : int array; (* product index -> spec index *)
  tsrc : int array; (* product transitions, parallel arrays *)
  tev : int array;
  tdst : int array;
  pred_row : int array; (* CSR: incoming source indices per state *)
  pred : int array;
  marked : bool array;
  forbidden : bool array;
  initial : int;
  alphabet : Event.Set.t;
  unc_escape : bool array;
  unc_succ_row : int array; (* CSR: successors via uncontrollable events *)
  unc_succ : int array;
  unc_pred_row : int array; (* reverse of [unc_succ] *)
  unc_pred : int array;
}

(* Counting-sort (key, value) pairs into CSR form over [n] buckets. *)
let csr_of_pairs n keys values =
  let count = Array.length keys in
  let deg = Array.make n 0 in
  Array.iter (fun k -> deg.(k) <- deg.(k) + 1) keys;
  let row = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    row.(i + 1) <- row.(i) + deg.(i)
  done;
  let out = Array.make count 0 in
  let cursor = Array.copy row in
  for k = 0 to count - 1 do
    let key = keys.(k) in
    out.(cursor.(key)) <- values.(k);
    cursor.(key) <- cursor.(key) + 1
  done;
  (row, out)

let build_product plant spec =
  let sigma_g = Automaton.alphabet plant in
  let sigma_e = Automaton.alphabet spec in
  let alphabet =
    Event.merge_alphabets
      ~context:
        (Printf.sprintf "Synthesis.supcon(%s,%s)" (Automaton.name plant)
           (Automaton.name spec))
      sigma_g sigma_e
  in
  let max_id = Event.Set.fold (fun e m -> max m (Event.id e)) alphabet (-1) in
  let in_g = Array.make (max_id + 1) false in
  let in_e = Array.make (max_id + 1) false in
  let ctrl = Array.make (max_id + 1) true in
  Event.Set.iter (fun e -> in_g.(Event.id e) <- true) sigma_g;
  Event.Set.iter (fun e -> in_e.(Event.id e) <- true) sigma_e;
  Event.Set.iter
    (fun e -> ctrl.(Event.id e) <- Event.is_controllable e)
    alphabet;
  let ne = Automaton.num_states spec in
  let seen : (int, int) Hashtbl.t = Hashtbl.create 1024 in
  let pg = Intvec.create () and pe = Intvec.create () in
  let tsrc = Intvec.create () and tev = Intvec.create () in
  let tdst = Intvec.create () in
  let esc = Intvec.create () in
  let usrc = Intvec.create () and udst = Intvec.create () in
  let queue = Queue.create () in
  let visit ig ie =
    let key = (ig * ne) + ie in
    match Hashtbl.find_opt seen key with
    | Some i -> i
    | None ->
        let i = Intvec.length pg in
        Hashtbl.add seen key i;
        Intvec.push pg ig;
        Intvec.push pe ie;
        Queue.push (i, ig, ie) queue;
        i
  in
  ignore (visit (Automaton.initial_index plant) (Automaton.initial_index spec));
  while not (Queue.is_empty queue) do
    let i, ig, ie = Queue.pop queue in
    let emit eid j =
      Intvec.push tsrc i;
      Intvec.push tev eid;
      Intvec.push tdst j
    in
    (* Only plant-enabled uncontrollable events feed the controllability
       index: controllability is about what the *plant* can generate. *)
    let emit_plant eid j =
      emit eid j;
      if not ctrl.(eid) then begin
        Intvec.push usrc i;
        Intvec.push udst j
      end
    in
    Automaton.iter_row plant ig (fun eid jg ->
        if in_e.(eid) then (
          match Automaton.step_index spec ie eid with
          | Some je -> emit_plant eid (visit jg je)
          | None ->
              (* The spec's alphabet contains this event but disables it
                 here.  For an uncontrollable event that is an escape:
                 the plant can fire it regardless of the supervisor. *)
              if not ctrl.(eid) then Intvec.push esc i)
        else emit_plant eid (visit jg ie));
    Automaton.iter_row spec ie (fun eid je ->
        if not in_g.(eid) then emit eid (visit ig je))
  done;
  let n = Intvec.length pg in
  let pg = Intvec.to_array pg and pe = Intvec.to_array pe in
  let tsrc = Intvec.to_array tsrc in
  let tev = Intvec.to_array tev in
  let tdst = Intvec.to_array tdst in
  let pred_row, pred = csr_of_pairs n tdst tsrc in
  let usrc = Intvec.to_array usrc and udst = Intvec.to_array udst in
  let unc_succ_row, unc_succ = csr_of_pairs n usrc udst in
  let unc_pred_row, unc_pred = csr_of_pairs n udst usrc in
  let unc_escape = Array.make n false in
  let esc = Intvec.to_array esc in
  Array.iter (fun i -> unc_escape.(i) <- true) esc;
  let marked =
    Array.init n (fun i ->
        Automaton.is_marked_index plant pg.(i)
        && Automaton.is_marked_index spec pe.(i))
  in
  let forbidden =
    Array.init n (fun i ->
        Automaton.is_forbidden_index plant pg.(i)
        || Automaton.is_forbidden_index spec pe.(i))
  in
  {
    pg;
    pe;
    tsrc;
    tev;
    tdst;
    pred_row;
    pred;
    marked;
    forbidden;
    initial = 0;
    alphabet;
    unc_escape;
    unc_succ_row;
    unc_succ;
    unc_pred_row;
    unc_pred;
  }

(* One uncontrollability pass: mark good states bad when the plant enables
   an uncontrollable event that either leaves the product (spec disables
   it) or lands on a bad state.  Worklist-driven — seed with the states
   that are violated right now, then only revisit predecessors of newly
   bad states.  Returns the number newly removed. *)
let uncontrollable_pass p good =
  let removed = ref 0 in
  let queue = Queue.create () in
  let kill i =
    if good.(i) then begin
      good.(i) <- false;
      incr removed;
      Queue.push i queue
    end
  in
  let n = Array.length good in
  for i = 0 to n - 1 do
    if good.(i) then
      if p.unc_escape.(i) then kill i
      else
        let lo = p.unc_succ_row.(i) and hi = p.unc_succ_row.(i + 1) in
        let rec bad_succ k =
          k < hi && ((not good.(p.unc_succ.(k))) || bad_succ (k + 1))
        in
        if bad_succ lo then kill i
  done;
  while not (Queue.is_empty queue) do
    let j = Queue.pop queue in
    for k = p.unc_pred_row.(j) to p.unc_pred_row.(j + 1) - 1 do
      kill p.unc_pred.(k)
    done
  done;
  !removed

(* Trimming pass restricted to the good region: bad-out states that cannot
   reach a good marked state through good states. *)
let blocking_pass p good =
  let n = Array.length good in
  let coacc = Array.make n false in
  let queue = Queue.create () in
  for i = 0 to n - 1 do
    if good.(i) && p.marked.(i) then begin
      coacc.(i) <- true;
      Queue.push i queue
    end
  done;
  while not (Queue.is_empty queue) do
    let j = Queue.pop queue in
    for k = p.pred_row.(j) to p.pred_row.(j + 1) - 1 do
      let i = p.pred.(k) in
      if good.(i) && not coacc.(i) then begin
        coacc.(i) <- true;
        Queue.push i queue
      end
    done
  done;
  let removed = ref 0 in
  for i = 0 to n - 1 do
    if good.(i) && not coacc.(i) then begin
      good.(i) <- false;
      incr removed
    end
  done;
  !removed

let supcon ~plant ~spec =
  let p = build_product plant spec in
  let n = Array.length p.pg in
  let good = Array.make n true in
  let removed_forbidden = ref 0 in
  Array.iteri
    (fun i f ->
      if f then begin
        good.(i) <- false;
        incr removed_forbidden
      end)
    p.forbidden;
  let removed_unc = ref 0 in
  let removed_blk = ref 0 in
  let iterations = ref 0 in
  let continue = ref true in
  while !continue do
    incr iterations;
    let u = uncontrollable_pass p good in
    let b = blocking_pass p good in
    removed_unc := !removed_unc + u;
    removed_blk := !removed_blk + b;
    if u = 0 && b = 0 then continue := false
  done;
  let stats =
    {
      product_states = n;
      removed_uncontrollable = !removed_unc;
      removed_blocking = !removed_blk;
      removed_forbidden = !removed_forbidden;
      iterations = !iterations;
    }
  in
  if not good.(p.initial) then Error Empty_supervisor
  else begin
    (* Renumber the good states densely and rebuild in index space; names
       stay lazy — [product_state_name] runs only if someone asks. *)
    let new_of_old = Array.make n (-1) in
    let m = ref 0 in
    for i = 0 to n - 1 do
      if good.(i) then begin
        new_of_old.(i) <- !m;
        incr m
      end
    done;
    let m = !m in
    let old_of_new = Array.make m 0 in
    for i = 0 to n - 1 do
      if good.(i) then old_of_new.(new_of_old.(i)) <- i
    done;
    let kept = Intvec.create () in
    Array.iteri
      (fun k src ->
        if good.(src) && good.(p.tdst.(k)) then Intvec.push kept k)
      p.tsrc;
    let trans =
      Array.init (Intvec.length kept) (fun j ->
          let k = Intvec.get kept j in
          (new_of_old.(p.tsrc.(k)), p.tev.(k), new_of_old.(p.tdst.(k))))
    in
    let names () =
      Array.init m (fun i ->
          let old = old_of_new.(i) in
          (* Escaping join (see Automaton.product_state_name): the plant
             is typically itself a composition with dotted state names. *)
          Automaton.product_state_name
            (Automaton.state_of_index plant p.pg.(old))
            (Automaton.state_of_index spec p.pe.(old)))
    in
    let sup =
      Automaton.of_indexed
        ~name:("sup(" ^ Automaton.name plant ^ "," ^ Automaton.name spec ^ ")")
        ~names ~alphabet:p.alphabet
        ~initial:new_of_old.(p.initial)
        ~marked:(Array.init m (fun i -> p.marked.(old_of_new.(i))))
        ~forbidden:(Array.make m false)
        trans
    in
    (* Only the accessible part is meaningful (pruning can disconnect). *)
    Ok (Reach.accessible sup, stats)
  end

let supcon_exn ~plant ~spec =
  match supcon ~plant ~spec with
  | Ok (sup, _) -> sup
  | Error Empty_supervisor -> failwith "Synthesis.supcon: empty supervisor"

(* ===================================================================== *)
(* Sharded parallel synthesis.                                           *)
(*                                                                       *)
(* The engine below generalizes [build_product] + the fixpoint passes    *)
(* in two directions at once: the product is taken over an array of      *)
(* components (k plant components and the spec, composed on the fly, so  *)
(* a 3^k unconstrained plant is never materialized when the spec admits  *)
(* only a sliver of it), and both the product construction and the       *)
(* fixpoint run on [jobs] SPMD workers.                                  *)
(*                                                                       *)
(* Determinism is the load-bearing design decision.  The sequential     *)
(* [build_product] numbers product states in BFS discovery order, with   *)
(* per-state emissions in a fixed intrinsic order (each component's CSR  *)
(* row walked in event-id order, an event handled by its lowest-indexed  *)
(* owner).  The parallel exploration is level-synchronous and shards     *)
(* states by a hash of their joint key, so its interim numbering is      *)
(* jobs-dependent — but each worker buffers its emissions in exactly     *)
(* the intrinsic per-state order, which means a cheap sequential BFS     *)
(* renumbering over the assembled transition structure reproduces the    *)
(* sequential numbering *exactly*, for any [jobs].  Everything after     *)
(* that point (CSR sort in [of_indexed_arrays], digests, names) is a     *)
(* pure function of that numbering.  The fixpoint passes each compute a  *)
(* complete, unique fixpoint of a monotone operator, so their per-pass   *)
(* removal counts and the iteration count are traversal-order-free.     *)
(*                                                                       *)
(* Memory-ordering note: inside a pass, workers may read [good]/[coacc]  *)
(* cells owned by other workers without synchronization.  Both arrays    *)
(* are monotone (false→true for coacc, true→false for good) and every    *)
(* cross-shard decision taken on a stale read is conservative: a stale   *)
(* read can only cause a spurious spill (re-checked by the owner) or a   *)
(* missed local kill that the owner's own propagation re-delivers via    *)
(* the spill queues.  Bool arrays are word-per-element in OCaml, so      *)
(* distinct cells never tear.                                            *)
(* ===================================================================== *)

(* Flattened CSR copy of one component: closure-free row walks and       *)
(* binary searches in the per-transition hot loop. *)
type comp = {
  cn : int;
  crow : int array;
  cev : int array;
  cdst : int array;
  cinit : int;
  cmarked : bool array;
  cforbidden : bool array;
}

let comp_of_automaton a =
  let cn = Automaton.num_states a in
  let crow = Array.make (cn + 1) 0 in
  for i = 0 to cn - 1 do
    crow.(i + 1) <- crow.(i) + Automaton.out_degree a i
  done;
  let total = crow.(cn) in
  let cev = Array.make (max total 1) 0 in
  let cdst = Array.make (max total 1) 0 in
  let k = ref 0 in
  for i = 0 to cn - 1 do
    Automaton.iter_row a i (fun eid d ->
        cev.(!k) <- eid;
        cdst.(!k) <- d;
        incr k)
  done;
  {
    cn;
    crow;
    cev;
    cdst;
    cinit = Automaton.initial_index a;
    cmarked = Array.init cn (Automaton.is_marked_index a);
    cforbidden = Array.init cn (Automaton.is_forbidden_index a);
  }

let cstep cc i eid =
  let lo = ref cc.crow.(i) and hi = ref cc.crow.(i + 1) in
  let res = ref (-1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let e = cc.cev.(mid) in
    if e = eid then begin
      res := cc.cdst.(mid);
      lo := !hi
    end
    else if e < eid then lo := mid + 1
    else hi := mid
  done;
  !res

(* Open-addressing int-keyed table (linear probing, power-of-two         *)
(* capacity): the per-shard state map.  No boxing, no polymorphic hash,  *)
(* no bucket cells — the [Hashtbl] it replaces allocates a cons per add  *)
(* and generic-hashes every probe. *)
type table = {
  mutable tkeys : int array; (* -1 = empty; keys are >= 0 *)
  mutable tvals : int array;
  mutable tmask : int;
  mutable tcount : int;
}

let t_create () =
  { tkeys = Array.make 4096 (-1); tvals = Array.make 4096 0; tmask = 4095; tcount = 0 }

let t_hash key =
  let h = key lxor (key lsr 31) in
  let h = h * 0x2545F4914F6CDD1D in
  (h lxor (h lsr 29)) land max_int

let t_grow t =
  let old_keys = t.tkeys and old_vals = t.tvals in
  let cap = 2 * Array.length old_keys in
  let keys = Array.make cap (-1) and vals = Array.make cap 0 in
  let mask = cap - 1 in
  Array.iteri
    (fun i k ->
      if k >= 0 then begin
        let j = ref (t_hash k land mask) in
        while keys.(!j) >= 0 do
          j := (!j + 1) land mask
        done;
        keys.(!j) <- k;
        vals.(!j) <- old_vals.(i)
      end)
    old_keys;
  t.tkeys <- keys;
  t.tvals <- vals;
  t.tmask <- mask

(* Insert [key -> v] if absent.  Returns [-1] on a fresh insert, the
   existing value otherwise (stored values are always >= 0). *)
let t_put t key v =
  if 2 * (t.tcount + 1) > Array.length t.tkeys then t_grow t;
  let mask = t.tmask in
  let keys = t.tkeys in
  let j = ref (t_hash key land mask) in
  let res = ref min_int in
  while !res = min_int do
    let k = keys.(!j) in
    if k = key then res := t.tvals.(!j)
    else if k < 0 then begin
      keys.(!j) <- key;
      t.tvals.(!j) <- v;
      t.tcount <- t.tcount + 1;
      res := -1
    end
    else j := (!j + 1) land mask
  done;
  !res

let t_find t key =
  let mask = t.tmask in
  let keys = t.tkeys in
  let j = ref (t_hash key land mask) in
  let res = ref (-2) in
  while !res = -2 do
    let k = keys.(!j) in
    if k = key then res := t.tvals.(!j)
    else if k < 0 then res := -1
    else j := (!j + 1) land mask
  done;
  !res

let supcon_sharded ~jobs ~comps ~sup_name ~context =
  let nc = Array.length comps in
  let spec_c = nc - 1 in
  let alphabet =
    let acc = ref (Automaton.alphabet comps.(0)) in
    for c = 1 to nc - 1 do
      acc := Event.merge_alphabets ~context !acc (Automaton.alphabet comps.(c))
    done;
    !acc
  in
  let max_id = Event.Set.fold (fun e m -> max m (Event.id e)) alphabet (-1) in
  let ctrl = Array.make (max_id + 1) true in
  Event.Set.iter
    (fun e -> ctrl.(Event.id e) <- Event.is_controllable e)
    alphabet;
  (* Event ownership: an event is handled by its lowest-indexed owner's
     row walk; [others] lists the remaining owners ascending, so plant
     owners are always consulted before the spec (index nc-1) — escapes
     are only recorded once the whole plant side has enabled the event. *)
  let first_owner = Array.make (max_id + 1) (-1) in
  let owner_count = Array.make (max_id + 1) 0 in
  for c = 0 to nc - 1 do
    Event.Set.iter
      (fun e ->
        let eid = Event.id e in
        if first_owner.(eid) < 0 then first_owner.(eid) <- c;
        owner_count.(eid) <- owner_count.(eid) + 1)
      (Automaton.alphabet comps.(c))
  done;
  let others = Array.make (max_id + 1) [||] in
  for eid = 0 to max_id do
    if owner_count.(eid) > 1 then
      others.(eid) <- Array.make (owner_count.(eid) - 1) 0
  done;
  let fill = Array.make (max_id + 1) 0 in
  for c = 1 to nc - 1 do
    Event.Set.iter
      (fun e ->
        let eid = Event.id e in
        if c <> first_owner.(eid) then begin
          others.(eid).(fill.(eid)) <- c;
          fill.(eid) <- fill.(eid) + 1
        end)
      (Automaton.alphabet comps.(c))
  done;
  let plant_owned =
    Array.init (max_id + 1) (fun eid ->
        first_owner.(eid) >= 0 && first_owner.(eid) < spec_c)
  in
  let cs = Array.map comp_of_automaton comps in
  (* Mixed-radix key encoding of joint states; must fit an OCaml int. *)
  let weights = Array.make nc 1 in
  let () =
    let w = ref 1 in
    for c = nc - 1 downto 0 do
      weights.(c) <- !w;
      let n_c = cs.(c).cn in
      if !w > max_int / n_c then
        invalid_arg (context ^ ": joint state space exceeds the int key range");
      w := !w * n_c
    done
  in
  let key0 =
    let k = ref 0 in
    for c = 0 to nc - 1 do
      k := !k + (cs.(c).cinit * weights.(c))
    done;
    !k
  in
  let shard_of key = if jobs = 1 then 0 else t_hash key mod jobs in
  (* --- per-shard / per-worker state ---------------------------------- *)
  let tables = Array.init jobs (fun _ -> t_create ()) in
  let skeys = Array.init jobs (fun _ -> Intvec.create ()) in
  let flo = Array.make jobs 0 and fhi = Array.make jobs 0 in
  let outk =
    Array.init jobs (fun _ -> Array.init jobs (fun _ -> Intvec.create ()))
  in
  let btsrc = Array.init jobs (fun _ -> Intvec.create ()) in
  let btev = Array.init jobs (fun _ -> Intvec.create ()) in
  let btdst = Array.init jobs (fun _ -> Intvec.create ()) in
  let besc = Array.init jobs (fun _ -> Intvec.create ()) in
  let tbase = Array.make jobs 0 in
  let idxs = Array.init jobs (fun _ -> Array.make nc 0) in
  let stacks = Array.init jobs (fun _ -> Intvec.create ()) in
  let spill =
    Array.init jobs (fun _ ->
        Array.init jobs (fun _ -> [| Intvec.create (); Intvec.create () |]))
  in
  (* Shared slots, published worker-0 -> everyone through barrier waits. *)
  let shard_off = Array.make (jobs + 1) 0 in
  let n_total = ref 0 in
  let keyof = ref [||] in
  let deg = ref [||] in
  let trow = ref [||] and ttev = ref [||] and ttdst = ref [||] in
  let perm = ref [||] and ord = ref [||] in
  let frow = ref [||] and fev = ref [||] and fdst = ref [||] in
  let pmarked = ref [||] and pforbid = ref [||] and pesc = ref [||] in
  let prow = ref [||] and pred = ref [||] in
  let usrow = ref [||] and usucc = ref [||] in
  let uprow = ref [||] and upred = ref [||] in
  let good = ref [||] and coacc = ref [||] in
  let wcnt = Array.make jobs 0 in
  let wspill = Array.make jobs 0 in
  let removed_forb = ref 0 in
  let removed_unc = ref 0 and removed_blk = ref 0 in
  let iterations = ref 0 in
  let pass_total = ref 0 in
  let go_on = ref true in
  let empty = ref false in
  let sup_of = ref [||] and old_of_sup = ref [||] in
  let msup = ref 0 in
  let woff = Array.make (jobs + 1) 0 in
  let ksrc = ref [||] and kev = ref [||] and kdst = ref [||] in
  (* Seed the initial state into its shard before workers start. *)
  let s0 = shard_of key0 in
  ignore (t_put tables.(s0) key0 0);
  Intvec.push skeys.(s0) key0;
  fhi.(s0) <- 1;
  let worker w b =
    (* ---------- phase 1: level-synchronous sharded product BFS ------- *)
    let idx = idxs.(w) in
    let expand src key =
      for c = 0 to nc - 1 do
        idx.(c) <- key / weights.(c) mod cs.(c).cn
      done;
      for c = 0 to nc - 1 do
        let cc = cs.(c) in
        let i_c = idx.(c) in
        for t = cc.crow.(i_c) to cc.crow.(i_c + 1) - 1 do
          let eid = cc.cev.(t) in
          if first_owner.(eid) = c then begin
            let dkey = ref (key + ((cc.cdst.(t) - i_c) * weights.(c))) in
            let oth = others.(eid) in
            let no = Array.length oth in
            let ok = ref true in
            let oi = ref 0 in
            while !ok && !oi < no do
              let o = oth.(!oi) in
              let d = cstep cs.(o) idx.(o) eid in
              if d < 0 then begin
                ok := false;
                (* Every owner below [o] stepped.  [o] can only be the
                   spec when the whole plant side enabled the event: an
                   uncontrollable escape. *)
                if o = spec_c && not ctrl.(eid) then Intvec.push besc.(w) src
              end
              else begin
                dkey := !dkey + ((d - idx.(o)) * weights.(o));
                incr oi
              end
            done;
            if !ok then begin
              Intvec.push btsrc.(w) src;
              Intvec.push btev.(w) eid;
              Intvec.push btdst.(w) !dkey;
              Intvec.push outk.(w).(shard_of !dkey) !dkey
            end
          end
        done
      done
    in
    let levels = ref true in
    while !levels do
      (* E: expand this shard's frontier; emissions buffered in intrinsic
         order, destination *keys* pushed to the owning shard's inbox. *)
      for l = flo.(w) to fhi.(w) - 1 do
        expand ((l * jobs) + w) (Intvec.get skeys.(w) l)
      done;
      Spmd.wait b;
      (* A: drain inboxes (any order — numbering is canonicalized later),
         inserting fresh keys; they form the next frontier. *)
      flo.(w) <- Intvec.length skeys.(w);
      for v = 0 to jobs - 1 do
        let q = outk.(v).(w) in
        for x = 0 to Intvec.length q - 1 do
          let key = Intvec.get q x in
          if t_put tables.(w) key (Intvec.length skeys.(w)) = -1 then
            Intvec.push skeys.(w) key
        done;
        Intvec.clear q
      done;
      fhi.(w) <- Intvec.length skeys.(w);
      Spmd.wait b;
      (* L: resolve this level's buffered destination keys against the
         now-quiescent shard tables. *)
      let m = Intvec.length btdst.(w) in
      for k = tbase.(w) to m - 1 do
        let key = Intvec.get btdst.(w) k in
        let s = shard_of key in
        let l = t_find tables.(s) key in
        Intvec.set btdst.(w) k ((l * jobs) + s)
      done;
      tbase.(w) <- m;
      Spmd.wait b;
      let any = ref false in
      for s = 0 to jobs - 1 do
        if fhi.(s) > flo.(s) then any := true
      done;
      levels := !any
    done;
    (* ---------- phase 2: assembly into one flat CSR ------------------ *)
    if w = 0 then begin
      let off = ref 0 in
      for s = 0 to jobs - 1 do
        shard_off.(s) <- !off;
        off := !off + Intvec.length skeys.(s)
      done;
      shard_off.(jobs) <- !off;
      n_total := !off;
      deg := Array.make !off 0;
      keyof := Array.make !off 0
    end;
    Spmd.wait b;
    let n = !n_total in
    let flat enc = shard_off.(enc mod jobs) + (enc / jobs) in
    let d = !deg and ko = !keyof in
    for l = 0 to Intvec.length skeys.(w) - 1 do
      ko.(shard_off.(w) + l) <- Intvec.get skeys.(w) l
    done;
    for k = 0 to Intvec.length btsrc.(w) - 1 do
      let f = flat (Intvec.get btsrc.(w) k) in
      d.(f) <- d.(f) + 1
    done;
    Spmd.wait b;
    if w = 0 then begin
      let row = Array.make (n + 1) 0 in
      for i = 0 to n - 1 do
        row.(i + 1) <- row.(i) + d.(i)
      done;
      trow := row;
      ttev := Array.make row.(n) 0;
      ttdst := Array.make row.(n) 0;
      (* Reuse [deg] as the per-state write cursor. *)
      for i = 0 to n - 1 do
        d.(i) <- row.(i)
      done
    end;
    Spmd.wait b;
    let row = !trow and tev_t = !ttev and tdst_t = !ttdst in
    (* Each source state was expanded by exactly one worker and its
       emissions are contiguous in that worker's buffer, so the cursor
       cells below have a single writer and per-row order is exactly the
       intrinsic emission order. *)
    for k = 0 to Intvec.length btsrc.(w) - 1 do
      let f = flat (Intvec.get btsrc.(w) k) in
      let p = d.(f) in
      tev_t.(p) <- Intvec.get btev.(w) k;
      tdst_t.(p) <- flat (Intvec.get btdst.(w) k);
      d.(f) <- p + 1
    done;
    Spmd.wait b;
    (* ---------- phase 3: canonical BFS renumbering ------------------- *)
    if w = 0 then begin
      let p = Array.make n (-1) in
      let o = Array.make n 0 in
      let f0 = flat s0 in
      p.(f0) <- 0;
      o.(0) <- f0;
      let cnt = ref 1 in
      let head = ref 0 in
      while !head < !cnt do
        let f = o.(!head) in
        incr head;
        for k = row.(f) to row.(f + 1) - 1 do
          let dfl = tdst_t.(k) in
          if p.(dfl) < 0 then begin
            p.(dfl) <- !cnt;
            o.(!cnt) <- dfl;
            incr cnt
          end
        done
      done;
      (* Every inserted key is the destination of some emission (or the
         initial state), so the BFS covers everything. *)
      assert (!cnt = n);
      perm := p;
      ord := o;
      let nrow = Array.make (n + 1) 0 in
      for i = 0 to n - 1 do
        let f = o.(i) in
        nrow.(i + 1) <- nrow.(i) + (row.(f + 1) - row.(f))
      done;
      frow := nrow;
      fev := Array.make nrow.(n) 0;
      fdst := Array.make nrow.(n) 0;
      pmarked := Array.make n false;
      pforbid := Array.make n false;
      pesc := Array.make n false
    end;
    Spmd.wait b;
    let p = !perm and o = !ord in
    let nrow = !frow and fe = !fev and fd = !fdst in
    let pm = !pmarked and pf = !pforbid and pe = !pesc in
    let chunk = (n + jobs - 1) / jobs in
    let lo_r = min n (w * chunk) in
    let hi_r = min n ((w + 1) * chunk) in
    let owner i = i / chunk in
    for i = lo_r to hi_r - 1 do
      let f = o.(i) in
      let q = ref nrow.(i) in
      for k = row.(f) to row.(f + 1) - 1 do
        fe.(!q) <- tev_t.(k);
        fd.(!q) <- p.(tdst_t.(k));
        incr q
      done;
      let key = ko.(f) in
      let mk = ref true and fb = ref false in
      for c = 0 to nc - 1 do
        let i_c = key / weights.(c) mod cs.(c).cn in
        if not cs.(c).cmarked.(i_c) then mk := false;
        if cs.(c).cforbidden.(i_c) then fb := true
      done;
      pm.(i) <- !mk;
      pf.(i) <- !fb
    done;
    for x = 0 to Intvec.length besc.(w) - 1 do
      pe.(p.(flat (Intvec.get besc.(w) x))) <- true
    done;
    Spmd.wait b;
    (* ---------- phase 4: derived CSRs (pred, uncontrollable) --------- *)
    if w = 0 then begin
      let m_t = nrow.(n) in
      let ts = Array.make m_t 0 in
      for i = 0 to n - 1 do
        for k = nrow.(i) to nrow.(i + 1) - 1 do
          ts.(k) <- i
        done
      done;
      let pr, pd = csr_of_pairs n fd ts in
      prow := pr;
      pred := pd;
      let us = Intvec.create () and ud = Intvec.create () in
      for k = 0 to m_t - 1 do
        let eid = fe.(k) in
        if (not ctrl.(eid)) && plant_owned.(eid) then begin
          Intvec.push us ts.(k);
          Intvec.push ud fd.(k)
        end
      done;
      let usa = Intvec.to_array us and uda = Intvec.to_array ud in
      let r1, o1 = csr_of_pairs n usa uda in
      usrow := r1;
      usucc := o1;
      let r2, o2 = csr_of_pairs n uda usa in
      uprow := r2;
      upred := o2;
      good := Array.make n true;
      coacc := Array.make n false
    end;
    Spmd.wait b;
    let g = !good and ca = !coacc in
    let pr = !prow and pd = !pred in
    let usr = !usrow and usx = !usucc in
    let upr = !uprow and upx = !upred in
    (* ---------- phase 5: parallel fixpoint --------------------------- *)
    let cnt_removed = ref 0 in
    let stack = stacks.(w) in
    let bank = ref 0 in
    (* Spill-queue propagation shared by both passes: [process i] applies
       the pass's local rule to an owned state; [drain] propagates from
       the local worklist, spilling foreign states to their owners. *)
    let propagate ~drain ~process =
      drain ();
      let produced () =
        let s = ref 0 in
        for v = 0 to jobs - 1 do
          s := !s + Intvec.length spill.(w).(v).(!bank)
        done;
        !s
      in
      wspill.(w) <- produced ();
      Spmd.wait b;
      let rounds = ref true in
      while !rounds do
        let total = ref 0 in
        for v = 0 to jobs - 1 do
          total := !total + wspill.(v)
        done;
        if !total = 0 then rounds := false
        else begin
          (* Everyone must read this round's [wspill] decision before any
             worker overwrites its slot for the next round. *)
          Spmd.wait b;
          let consume = !bank in
          bank := 1 - !bank;
          for v = 0 to jobs - 1 do
            let q = spill.(v).(w).(consume) in
            for x = 0 to Intvec.length q - 1 do
              process (Intvec.get q x)
            done;
            Intvec.clear q
          done;
          drain ();
          wspill.(w) <- produced ();
          Spmd.wait b
        end
      done
    in
    let fix = ref true in
    while !fix do
      (* Uncontrollable pass: kill good states with an uncontrollable
         escape or a bad uncontrollable successor; propagate backwards
         over the uncontrollable sub-graph. *)
      cnt_removed := 0;
      Intvec.clear stack;
      let kill i =
        g.(i) <- false;
        incr cnt_removed;
        Intvec.push stack i
      in
      let drain_u () =
        while Intvec.length stack > 0 do
          let j = Intvec.pop stack in
          for k = upr.(j) to upr.(j + 1) - 1 do
            let i = upx.(k) in
            if g.(i) then
              if owner i = w then kill i
              else Intvec.push spill.(w).(owner i).(!bank) i
          done
        done
      in
      (* First iteration also removes forbidden states, exactly as the
         sequential path removes them before its loop. *)
      if !iterations = 0 then begin
        for i = lo_r to hi_r - 1 do
          if pf.(i) then begin
            g.(i) <- false;
            incr cnt_removed
          end
        done;
        wcnt.(w) <- !cnt_removed;
        cnt_removed := 0;
        Spmd.wait b;
        if w = 0 then begin
          let s = ref 0 in
          for v = 0 to jobs - 1 do
            s := !s + wcnt.(v)
          done;
          removed_forb := !s
        end;
        Spmd.wait b
      end;
      for i = lo_r to hi_r - 1 do
        if g.(i) then
          if pe.(i) then kill i
          else begin
            let bad = ref false in
            let k = ref usr.(i) in
            let hi = usr.(i + 1) in
            while (not !bad) && !k < hi do
              if not g.(usx.(!k)) then bad := true;
              incr k
            done;
            if !bad then kill i
          end
      done;
      propagate ~drain:drain_u ~process:(fun i -> if g.(i) then kill i);
      wcnt.(w) <- !cnt_removed;
      Spmd.wait b;
      if w = 0 then begin
        let s = ref 0 in
        for v = 0 to jobs - 1 do
          s := !s + wcnt.(v)
        done;
        pass_total := !s
      end;
      Spmd.wait b;
      let u = !pass_total in
      (* Blocking pass: backward reachability from good marked states
         within the good region; whatever is not co-reached is removed. *)
      for i = lo_r to hi_r - 1 do
        ca.(i) <- false
      done;
      Spmd.wait b;
      cnt_removed := 0;
      Intvec.clear stack;
      let mark i =
        ca.(i) <- true;
        Intvec.push stack i
      in
      let drain_b () =
        while Intvec.length stack > 0 do
          let j = Intvec.pop stack in
          for k = pr.(j) to pr.(j + 1) - 1 do
            let i = pd.(k) in
            if g.(i) && not ca.(i) then
              if owner i = w then mark i
              else Intvec.push spill.(w).(owner i).(!bank) i
          done
        done
      in
      for i = lo_r to hi_r - 1 do
        if g.(i) && pm.(i) then mark i
      done;
      propagate ~drain:drain_b ~process:(fun i ->
          if g.(i) && not ca.(i) then mark i);
      for i = lo_r to hi_r - 1 do
        if g.(i) && not ca.(i) then begin
          g.(i) <- false;
          incr cnt_removed
        end
      done;
      wcnt.(w) <- !cnt_removed;
      Spmd.wait b;
      if w = 0 then begin
        let s = ref 0 in
        for v = 0 to jobs - 1 do
          s := !s + wcnt.(v)
        done;
        let bl = !s in
        incr iterations;
        removed_unc := !removed_unc + u;
        removed_blk := !removed_blk + bl;
        go_on := u > 0 || bl > 0
      end;
      Spmd.wait b;
      fix := !go_on
    done;
    (* ---------- phase 6: supervisor extraction ----------------------- *)
    if w = 0 then
      if not g.(0) then empty := true
      else begin
        let so = Array.make n (-1) in
        let cnt = ref 0 in
        for i = 0 to n - 1 do
          if g.(i) then begin
            so.(i) <- !cnt;
            incr cnt
          end
        done;
        msup := !cnt;
        let os = Array.make !cnt 0 in
        for i = 0 to n - 1 do
          if g.(i) then os.(so.(i)) <- i
        done;
        sup_of := so;
        old_of_sup := os
      end;
    Spmd.wait b;
    if not !empty then begin
      let so = !sup_of in
      let cnt = ref 0 in
      for i = lo_r to hi_r - 1 do
        if g.(i) then
          for k = nrow.(i) to nrow.(i + 1) - 1 do
            if g.(fd.(k)) then incr cnt
          done
      done;
      wcnt.(w) <- !cnt;
      Spmd.wait b;
      if w = 0 then begin
        let off = ref 0 in
        for v = 0 to jobs - 1 do
          woff.(v) <- !off;
          off := !off + wcnt.(v)
        done;
        woff.(jobs) <- !off;
        ksrc := Array.make !off 0;
        kev := Array.make !off 0;
        kdst := Array.make !off 0
      end;
      Spmd.wait b;
      let ks = !ksrc and ke = !kev and kd = !kdst in
      let q = ref woff.(w) in
      for i = lo_r to hi_r - 1 do
        if g.(i) then
          for k = nrow.(i) to nrow.(i + 1) - 1 do
            if g.(fd.(k)) then begin
              ks.(!q) <- so.(i);
              ke.(!q) <- fe.(k);
              kd.(!q) <- so.(fd.(k));
              incr q
            end
          done
      done;
      Spmd.wait b
    end
  in
  Spmd.run ~jobs worker;
  let stats =
    {
      product_states = !n_total;
      removed_uncontrollable = !removed_unc;
      removed_blocking = !removed_blk;
      removed_forbidden = !removed_forb;
      iterations = !iterations;
    }
  in
  if !empty then Error Empty_supervisor
  else begin
    let m = !msup in
    let os = !old_of_sup and o = !ord and ko = !keyof in
    let pm = !pmarked in
    let names () =
      Array.init m (fun i ->
          let key = ko.(o.(os.(i))) in
          Automaton.product_state_name_n
            (List.init nc (fun c ->
                 Automaton.state_of_index comps.(c)
                   (key / weights.(c) mod cs.(c).cn))))
    in
    let sup =
      Automaton.of_indexed_arrays ~name:sup_name ~names ~alphabet ~initial:0
        ~marked:(Array.init m (fun i -> pm.(os.(i))))
        ~forbidden:(Array.make m false) ~src:!ksrc ~event:!kev ~target:!kdst
    in
    Ok (Reach.accessible sup, stats)
  end

let supcon_par ?(jobs = 1) ~plant ~spec () =
  let jobs = max 1 jobs in
  supcon_sharded ~jobs
    ~comps:[| plant; spec |]
    ~sup_name:
      ("sup(" ^ Automaton.name plant ^ "," ^ Automaton.name spec ^ ")")
    ~context:
      (Printf.sprintf "Synthesis.supcon(%s,%s)" (Automaton.name plant)
         (Automaton.name spec))

let supcon_modular ?(jobs = 1) ~plants ~spec () =
  if plants = [] then invalid_arg "Synthesis.supcon_modular: no plant components";
  let jobs = max 1 jobs in
  let plant_name = String.concat "||" (List.map Automaton.name plants) in
  supcon_sharded ~jobs
    ~comps:(Array.of_list (plants @ [ spec ]))
    ~sup_name:("sup(" ^ plant_name ^ "," ^ Automaton.name spec ^ ")")
    ~context:
      (Printf.sprintf "Synthesis.supcon_modular(%s,%s)" plant_name
         (Automaton.name spec))
