type stats = {
  product_states : int;
  removed_uncontrollable : int;
  removed_blocking : int;
  removed_forbidden : int;
  iterations : int;
}

let pp_stats ppf s =
  Format.fprintf ppf
    "product %d states; removed %d forbidden, %d uncontrollable, %d blocking; \
     %d fixpoint iterations"
    s.product_states s.removed_forbidden s.removed_uncontrollable
    s.removed_blocking s.iterations

type error = Empty_supervisor

(* The synthesis works on the reachable product of plant and spec, kept
   index-native: product states are dense ints mapping back to (plant
   index, spec index) through [pg]/[pe], transitions live in parallel
   (src, event id, dst) arrays, and the two fixpoint relations the passes
   actually consult — predecessors, and the uncontrollable-event
   sub-graph — are CSR adjacency built once.

   The uncontrollable index exists because the fixpoint only ever asks
   two questions of a state: does the plant enable an uncontrollable
   event the spec disables (an escape — bad no matter what), and which
   states does it reach / is it reached from via uncontrollable events?
   Neither answer depends on the evolving good-set, so both are resolved
   during product construction — each plant-row entry is examined exactly
   once, against one binary search in the spec's row. *)

type product = {
  pg : int array; (* product index -> plant index *)
  pe : int array; (* product index -> spec index *)
  tsrc : int array; (* product transitions, parallel arrays *)
  tev : int array;
  tdst : int array;
  pred_row : int array; (* CSR: incoming source indices per state *)
  pred : int array;
  marked : bool array;
  forbidden : bool array;
  initial : int;
  alphabet : Event.Set.t;
  unc_escape : bool array;
  unc_succ_row : int array; (* CSR: successors via uncontrollable events *)
  unc_succ : int array;
  unc_pred_row : int array; (* reverse of [unc_succ] *)
  unc_pred : int array;
}

(* Counting-sort (key, value) pairs into CSR form over [n] buckets. *)
let csr_of_pairs n keys values =
  let count = Array.length keys in
  let deg = Array.make n 0 in
  Array.iter (fun k -> deg.(k) <- deg.(k) + 1) keys;
  let row = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    row.(i + 1) <- row.(i) + deg.(i)
  done;
  let out = Array.make count 0 in
  let cursor = Array.copy row in
  for k = 0 to count - 1 do
    let key = keys.(k) in
    out.(cursor.(key)) <- values.(k);
    cursor.(key) <- cursor.(key) + 1
  done;
  (row, out)

let build_product plant spec =
  let sigma_g = Automaton.alphabet plant in
  let sigma_e = Automaton.alphabet spec in
  let alphabet =
    Event.merge_alphabets
      ~context:
        (Printf.sprintf "Synthesis.supcon(%s,%s)" (Automaton.name plant)
           (Automaton.name spec))
      sigma_g sigma_e
  in
  let max_id = Event.Set.fold (fun e m -> max m (Event.id e)) alphabet (-1) in
  let in_g = Array.make (max_id + 1) false in
  let in_e = Array.make (max_id + 1) false in
  let ctrl = Array.make (max_id + 1) true in
  Event.Set.iter (fun e -> in_g.(Event.id e) <- true) sigma_g;
  Event.Set.iter (fun e -> in_e.(Event.id e) <- true) sigma_e;
  Event.Set.iter
    (fun e -> ctrl.(Event.id e) <- Event.is_controllable e)
    alphabet;
  let ne = Automaton.num_states spec in
  let seen : (int, int) Hashtbl.t = Hashtbl.create 1024 in
  let pg = Intvec.create () and pe = Intvec.create () in
  let tsrc = Intvec.create () and tev = Intvec.create () in
  let tdst = Intvec.create () in
  let esc = Intvec.create () in
  let usrc = Intvec.create () and udst = Intvec.create () in
  let queue = Queue.create () in
  let visit ig ie =
    let key = (ig * ne) + ie in
    match Hashtbl.find_opt seen key with
    | Some i -> i
    | None ->
        let i = Intvec.length pg in
        Hashtbl.add seen key i;
        Intvec.push pg ig;
        Intvec.push pe ie;
        Queue.push (i, ig, ie) queue;
        i
  in
  ignore (visit (Automaton.initial_index plant) (Automaton.initial_index spec));
  while not (Queue.is_empty queue) do
    let i, ig, ie = Queue.pop queue in
    let emit eid j =
      Intvec.push tsrc i;
      Intvec.push tev eid;
      Intvec.push tdst j
    in
    (* Only plant-enabled uncontrollable events feed the controllability
       index: controllability is about what the *plant* can generate. *)
    let emit_plant eid j =
      emit eid j;
      if not ctrl.(eid) then begin
        Intvec.push usrc i;
        Intvec.push udst j
      end
    in
    Automaton.iter_row plant ig (fun eid jg ->
        if in_e.(eid) then (
          match Automaton.step_index spec ie eid with
          | Some je -> emit_plant eid (visit jg je)
          | None ->
              (* The spec's alphabet contains this event but disables it
                 here.  For an uncontrollable event that is an escape:
                 the plant can fire it regardless of the supervisor. *)
              if not ctrl.(eid) then Intvec.push esc i)
        else emit_plant eid (visit jg ie));
    Automaton.iter_row spec ie (fun eid je ->
        if not in_g.(eid) then emit eid (visit ig je))
  done;
  let n = Intvec.length pg in
  let pg = Intvec.to_array pg and pe = Intvec.to_array pe in
  let tsrc = Intvec.to_array tsrc in
  let tev = Intvec.to_array tev in
  let tdst = Intvec.to_array tdst in
  let pred_row, pred = csr_of_pairs n tdst tsrc in
  let usrc = Intvec.to_array usrc and udst = Intvec.to_array udst in
  let unc_succ_row, unc_succ = csr_of_pairs n usrc udst in
  let unc_pred_row, unc_pred = csr_of_pairs n udst usrc in
  let unc_escape = Array.make n false in
  let esc = Intvec.to_array esc in
  Array.iter (fun i -> unc_escape.(i) <- true) esc;
  let marked =
    Array.init n (fun i ->
        Automaton.is_marked_index plant pg.(i)
        && Automaton.is_marked_index spec pe.(i))
  in
  let forbidden =
    Array.init n (fun i ->
        Automaton.is_forbidden_index plant pg.(i)
        || Automaton.is_forbidden_index spec pe.(i))
  in
  {
    pg;
    pe;
    tsrc;
    tev;
    tdst;
    pred_row;
    pred;
    marked;
    forbidden;
    initial = 0;
    alphabet;
    unc_escape;
    unc_succ_row;
    unc_succ;
    unc_pred_row;
    unc_pred;
  }

(* One uncontrollability pass: mark good states bad when the plant enables
   an uncontrollable event that either leaves the product (spec disables
   it) or lands on a bad state.  Worklist-driven — seed with the states
   that are violated right now, then only revisit predecessors of newly
   bad states.  Returns the number newly removed. *)
let uncontrollable_pass p good =
  let removed = ref 0 in
  let queue = Queue.create () in
  let kill i =
    if good.(i) then begin
      good.(i) <- false;
      incr removed;
      Queue.push i queue
    end
  in
  let n = Array.length good in
  for i = 0 to n - 1 do
    if good.(i) then
      if p.unc_escape.(i) then kill i
      else
        let lo = p.unc_succ_row.(i) and hi = p.unc_succ_row.(i + 1) in
        let rec bad_succ k =
          k < hi && ((not good.(p.unc_succ.(k))) || bad_succ (k + 1))
        in
        if bad_succ lo then kill i
  done;
  while not (Queue.is_empty queue) do
    let j = Queue.pop queue in
    for k = p.unc_pred_row.(j) to p.unc_pred_row.(j + 1) - 1 do
      kill p.unc_pred.(k)
    done
  done;
  !removed

(* Trimming pass restricted to the good region: bad-out states that cannot
   reach a good marked state through good states. *)
let blocking_pass p good =
  let n = Array.length good in
  let coacc = Array.make n false in
  let queue = Queue.create () in
  for i = 0 to n - 1 do
    if good.(i) && p.marked.(i) then begin
      coacc.(i) <- true;
      Queue.push i queue
    end
  done;
  while not (Queue.is_empty queue) do
    let j = Queue.pop queue in
    for k = p.pred_row.(j) to p.pred_row.(j + 1) - 1 do
      let i = p.pred.(k) in
      if good.(i) && not coacc.(i) then begin
        coacc.(i) <- true;
        Queue.push i queue
      end
    done
  done;
  let removed = ref 0 in
  for i = 0 to n - 1 do
    if good.(i) && not coacc.(i) then begin
      good.(i) <- false;
      incr removed
    end
  done;
  !removed

let supcon ~plant ~spec =
  let p = build_product plant spec in
  let n = Array.length p.pg in
  let good = Array.make n true in
  let removed_forbidden = ref 0 in
  Array.iteri
    (fun i f ->
      if f then begin
        good.(i) <- false;
        incr removed_forbidden
      end)
    p.forbidden;
  let removed_unc = ref 0 in
  let removed_blk = ref 0 in
  let iterations = ref 0 in
  let continue = ref true in
  while !continue do
    incr iterations;
    let u = uncontrollable_pass p good in
    let b = blocking_pass p good in
    removed_unc := !removed_unc + u;
    removed_blk := !removed_blk + b;
    if u = 0 && b = 0 then continue := false
  done;
  let stats =
    {
      product_states = n;
      removed_uncontrollable = !removed_unc;
      removed_blocking = !removed_blk;
      removed_forbidden = !removed_forbidden;
      iterations = !iterations;
    }
  in
  if not good.(p.initial) then Error Empty_supervisor
  else begin
    (* Renumber the good states densely and rebuild in index space; names
       stay lazy — [product_state_name] runs only if someone asks. *)
    let new_of_old = Array.make n (-1) in
    let m = ref 0 in
    for i = 0 to n - 1 do
      if good.(i) then begin
        new_of_old.(i) <- !m;
        incr m
      end
    done;
    let m = !m in
    let old_of_new = Array.make m 0 in
    for i = 0 to n - 1 do
      if good.(i) then old_of_new.(new_of_old.(i)) <- i
    done;
    let kept = Intvec.create () in
    Array.iteri
      (fun k src ->
        if good.(src) && good.(p.tdst.(k)) then Intvec.push kept k)
      p.tsrc;
    let trans =
      Array.init (Intvec.length kept) (fun j ->
          let k = Intvec.get kept j in
          (new_of_old.(p.tsrc.(k)), p.tev.(k), new_of_old.(p.tdst.(k))))
    in
    let names () =
      Array.init m (fun i ->
          let old = old_of_new.(i) in
          (* Escaping join (see Automaton.product_state_name): the plant
             is typically itself a composition with dotted state names. *)
          Automaton.product_state_name
            (Automaton.state_of_index plant p.pg.(old))
            (Automaton.state_of_index spec p.pe.(old)))
    in
    let sup =
      Automaton.of_indexed
        ~name:("sup(" ^ Automaton.name plant ^ "," ^ Automaton.name spec ^ ")")
        ~names ~alphabet:p.alphabet
        ~initial:new_of_old.(p.initial)
        ~marked:(Array.init m (fun i -> p.marked.(old_of_new.(i))))
        ~forbidden:(Array.make m false)
        trans
    in
    (* Only the accessible part is meaningful (pruning can disconnect). *)
    Ok (Reach.accessible sup, stats)
  end

let supcon_exn ~plant ~spec =
  match supcon ~plant ~spec with
  | Ok (sup, _) -> sup
  | Error Empty_supervisor -> failwith "Synthesis.supcon: empty supervisor"
