(* Growable int array — the scratch structure of the index-native
   algorithms (compose, synthesis), which accumulate transitions and
   state maps of unknown size without consing a list per element.  The
   parallel synthesis engine additionally reuses vectors across rounds
   ([clear]) and patches buffered destinations in place ([set]). *)

type t = { mutable a : int array; mutable len : int }

let create ?(capacity = 1024) () = { a = Array.make (max capacity 1) 0; len = 0 }

let length v = v.len

let push v x =
  if v.len = Array.length v.a then begin
    let bigger = Array.make (2 * v.len) 0 in
    Array.blit v.a 0 bigger 0 v.len;
    v.a <- bigger
  end;
  v.a.(v.len) <- x;
  v.len <- v.len + 1

let get v i =
  if i < 0 || i >= v.len then invalid_arg "Intvec.get: index out of bounds";
  v.a.(i)

let set v i x =
  if i < 0 || i >= v.len then invalid_arg "Intvec.set: index out of bounds";
  v.a.(i) <- x

let pop v =
  if v.len = 0 then invalid_arg "Intvec.pop: empty";
  v.len <- v.len - 1;
  v.a.(v.len)

let clear v = v.len <- 0
let to_array v = Array.sub v.a 0 v.len
