(** Events of a discrete-event system.

    Following Ramadge–Wonham supervisory control theory, every event is
    either {e controllable} (the supervisor may disable it — e.g. a
    gain-switch command) or {e uncontrollable} (generated spontaneously by
    the plant — e.g. a power-budget violation).  Events are identified by
    name; two events with equal names are the same event and must agree on
    controllability {e within any one automaton or composition} — that
    consistency is checked with a clear error at {!Automaton.create} and
    at the composition/synthesis entry points (see {!merge_alphabets}),
    not from inside the comparator.

    Events are {e interned}: {!controllable}/{!uncontrollable} return the
    unique value for a given (name, controllability) pair, carrying a
    dense process-wide integer {!id}.  The automata algorithms (compose,
    synthesize, reach, verify) run entirely on these ids — no string
    hashing or comparison on any hot path.  Ids are assigned in intern
    order and are therefore stable within a process but {e not} across
    processes. *)

type t = private { id : int; name : string; controllable : bool }

val controllable : string -> t
(** The (interned) controllable event of that name. *)

val uncontrollable : string -> t
(** The (interned) uncontrollable event of that name. *)

val name : t -> string
val is_controllable : t -> bool

val id : t -> int
(** Dense intern id, unique per (name, controllability) pair.  [O(1)] —
    the id is stored in the value. *)

val of_id : int -> t
(** Inverse of {!id}.  Raises [Invalid_argument] on an id never returned
    by {!id}.  Lock-free: reads an immutable snapshot published behind an
    [Atomic.t], so decoding from parallel workers never serializes on the
    intern mutex.  An id obtained through any properly synchronized
    channel (a spawned domain, a pool task result, a barrier) is always
    resolvable — the snapshot containing it is published before the
    interning call returns. *)

val count : unit -> int
(** Number of interned events so far; ids range over [0 .. count()-1].
    Useful for sizing id-indexed scratch arrays.  Lock-free, same
    snapshot read as {!of_id}. *)

val compare : t -> t -> int
(** Total order by (name, controllability); uncontrollable sorts before
    controllable for equal names.  Never raises — conflicting
    controllability for one name is reported by the alphabet-consistency
    checks ({!Automaton.create}, {!merge_alphabets}), not mid-comparison
    where it used to detonate inside [Set.union] rebalancing. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Prints [name] followed by [!] for uncontrollable events, matching the
    convention of SCT textbooks. *)

module Set : Set.S with type elt = t
module Map : Map.S with type key = t

val set_of_list : t list -> Set.t

val merge_alphabets : context:string -> Set.t -> Set.t -> Set.t
(** Union of two alphabets, with the consistency check the comparator no
    longer performs: raises [Invalid_argument] — prefixed with [context]
    and naming the offending event — when the same event name appears
    controllable on one side and uncontrollable on the other.  Called at
    the {!Compose.pair}, {!Synthesis.supcon} and {!Verify.controllable}
    entry points so a modelling bug fails loudly with a readable message
    instead of an exception thrown from inside a [Set] rebalance. *)
