(** Deterministic finite automata — the plant, specification and supervisor
    models of supervisory control theory.

    An automaton is the 5-tuple ⟨Q, Σ, δ, i, M⟩ of the paper's §4.3.1:
    states Q, alphabet Σ, partial transition function δ : Q×Σ → Q, initial
    state i and marked (accepted) states M.  We additionally carry a set of
    {e forbidden} states, the ✗-marked states of specifications
    (Fig. 12c): synthesis must prune them and everything that uncontrollably
    reaches them.

    States are referred to externally by name (a [string]) and internally
    by a dense index; the public API deals in names, the traversal API
    ({!fold_transitions}, {!step_index}) in indices for efficiency. *)

type t

type transition = { src : string; event : Event.t; dst : string }

(** {1 Construction} *)

val create :
  ?marked:string list ->
  ?forbidden:string list ->
  ?alphabet:Event.t list ->
  name:string ->
  initial:string ->
  transitions:(string * Event.t * string) list ->
  unit ->
  t
(** [create ~name ~initial ~transitions ()] builds an automaton.  States
    are collected from [initial], the transition endpoints, [marked] and
    [forbidden]; the alphabet is the union of [alphabet] (optional extra
    events, e.g. events the component never participates in but should
    synchronize on — rarely needed) and the transition events.

    Raises [Invalid_argument] when:
    - two transitions from the same state on the same event disagree
      (nondeterminism);
    - [marked]/[forbidden] mention unknown states — they must appear in a
      transition or be the initial state.

    If [marked] is omitted, every state is marked (the common convention
    for plants whose marking is irrelevant); an explicit [~marked:[]]
    marks no state. *)

val of_transitions :
  ?marked:string list ->
  ?forbidden:string list ->
  name:string ->
  initial:string ->
  transition list ->
  t
(** Record-based variant of {!create}. *)

(** {1 Inspection} *)

val name : t -> string
val alphabet : t -> Event.Set.t
val states : t -> string list
(** All state names, in index order. *)

val num_states : t -> int
val num_transitions : t -> int
val initial : t -> string
val marked : t -> string list
val forbidden : t -> string list
val is_marked : t -> string -> bool
val is_forbidden : t -> string -> bool
val mem_state : t -> string -> bool

val step : t -> string -> Event.t -> string option
(** [step a q e] is δ(q,e), or [None] when undefined.  Raises
    [Invalid_argument] on an unknown state name. *)

val enabled : t -> string -> Event.t list
(** Events with a transition defined from the given state, sorted. *)

val transitions : t -> transition list

val accepts : t -> Event.t list -> bool
(** [accepts a w] — does the word [w] lead from the initial state to a
    marked state (never visiting an undefined transition)? *)

val trace : t -> Event.t list -> string option
(** The state reached by a word from the initial state, or [None] when
    the word leaves the defined transition structure. *)

(** {1 Index-based traversal}

    For algorithms (composition, reachability, synthesis).  Indices are
    stable for a given value of [t] and range over [0 .. num_states-1]. *)

val index_of_state : t -> string -> int
val state_of_index : t -> int -> string
val initial_index : t -> int
val step_index : t -> int -> Event.t -> int option
val enabled_index : t -> int -> Event.t list
val is_marked_index : t -> int -> bool
val is_forbidden_index : t -> int -> bool

val fold_transitions : (int -> Event.t -> int -> 'a -> 'a) -> t -> 'a -> 'a

(** {1 Surgery} *)

val restrict_states : t -> keep:(string -> bool) -> t option
(** Sub-automaton induced by the states satisfying [keep] (transitions
    with both endpoints kept).  [None] when the initial state is not
    kept.  The alphabet is preserved. *)

val rename : t -> string -> t
(** Same automaton under a new name. *)

val relabel_states : t -> (string -> string) -> t
(** Apply a renaming function to every state name.  Raises
    [Invalid_argument] when the renaming is not injective on states. *)

(** {1 Product support} *)

val product_state_name : string -> string -> string
(** Unambiguous name for a product state: the two component names joined
    with ['.'], escaping any ['.'] or ['\'] inside a component with a
    backslash.  Unlike a naive join, distinct pairs can never collide
    (e.g. [("a.b", "c")] and [("a", "b.c")] yield ["a\.b.c"] and
    ["a.b\.c"]).  Dot-free component names — the common case — appear
    verbatim.  Used by {!Compose.pair} and {!Synthesis.supcon}, so
    re-composing an automaton whose states are themselves product states
    is safe. *)

val structural_digest : t -> string
(** Hex digest of the automaton's full structure (name, state names in
    index order, alphabet with controllability, transitions, initial,
    marked and forbidden sets).  Two automata with equal digests are
    structurally identical; the synthesis cache uses this as its key. *)

(** {1 Comparison} *)

val isomorphic : t -> t -> bool
(** True when the two automata are identical up to state renaming
    (checked by parallel traversal from the initial states — sound and
    complete for deterministic automata with all states reachable;
    unreachable states are ignored). *)

val pp : Format.formatter -> t -> unit
(** Short human-readable summary (name, counts, initial state). *)
