(** Deterministic finite automata — the plant, specification and supervisor
    models of supervisory control theory.

    An automaton is the 5-tuple ⟨Q, Σ, δ, i, M⟩ of the paper's §4.3.1:
    states Q, alphabet Σ, partial transition function δ : Q×Σ → Q, initial
    state i and marked (accepted) states M.  We additionally carry a set of
    {e forbidden} states, the ✗-marked states of specifications
    (Fig. 12c): synthesis must prune them and everything that uncontrollably
    reaches them.

    {b Representation.}  The core is index-native: states are dense ints,
    the transition function is stored in CSR form — per-state arrays of
    (event id, destination) pairs sorted by {!Event.id} — and every
    algorithm (composition, reachability, synthesis, verification) runs on
    ints only.  State {e names} are a boundary concern: automata built by
    algorithms ({!of_indexed}) carry their names lazily and only
    materialize them when a name-based accessor is first used, so a
    100k-state product that is immediately pruned never pays for 100k
    escaped name strings. *)

type t

type transition = { src : string; event : Event.t; dst : string }

(** {1 Construction} *)

val create :
  ?marked:string list ->
  ?forbidden:string list ->
  ?alphabet:Event.t list ->
  name:string ->
  initial:string ->
  transitions:(string * Event.t * string) list ->
  unit ->
  t
(** [create ~name ~initial ~transitions ()] builds an automaton.  States
    are collected from [initial], the transition endpoints, [marked] and
    [forbidden]; the alphabet is the union of [alphabet] (optional extra
    events, e.g. events the component never participates in but should
    synchronize on — rarely needed) and the transition events.

    Raises [Invalid_argument] when:
    - two transitions from the same state on the same event disagree
      (nondeterminism);
    - the same event name is used both controllably and uncontrollably
      (in the transitions or the extra [alphabet]);
    - [marked]/[forbidden] mention unknown states — they must appear in a
      transition or be the initial state.

    If [marked] is omitted, every state is marked (the common convention
    for plants whose marking is irrelevant); an explicit [~marked:[]]
    marks no state. *)

val of_transitions :
  ?marked:string list ->
  ?forbidden:string list ->
  name:string ->
  initial:string ->
  transition list ->
  t
(** Record-based variant of {!create}. *)

val of_indexed :
  name:string ->
  names:(unit -> string array) ->
  alphabet:Event.Set.t ->
  initial:int ->
  marked:bool array ->
  forbidden:bool array ->
  (int * int * int) array ->
  t
(** {b Trusted constructor} for algorithm outputs.  [of_indexed ~name
    ~names ~alphabet ~initial ~marked ~forbidden trans] builds an
    automaton over states [0 .. Array.length marked - 1] directly from
    index-space data: [trans] is (src index, {!Event.id}, dst index)
    triples, [names] is only run — once, memoized — when a name-based
    accessor is first used.

    Unlike {!create} it performs no string interning and no state
    collection, only a cheap nondeterminism scan after the CSR sort.  The
    caller contract (who may call it: {!Compose}, {!Synthesis},
    {!restrict_indices} — outputs that are deterministic and consistently
    indexed {e by construction}):
    - every event id in [trans] belongs to [alphabet];
    - [marked] and [forbidden] have equal length (the state count) and
      every index in [trans] and [initial] is within it;
    - [names ()] returns exactly that many {e distinct} names (the
      escaping {!product_state_name} join guarantees distinctness for
      products).  Duplicate names are reported — [Invalid_argument] —
      when the name table is first materialized, not at construction. *)

val of_indexed_arrays :
  name:string ->
  names:(unit -> string array) ->
  alphabet:Event.Set.t ->
  initial:int ->
  marked:bool array ->
  forbidden:bool array ->
  src:int array ->
  event:int array ->
  target:int array ->
  t
(** {!of_indexed} with the transitions as three parallel int arrays
    instead of a tuple array: identical semantics and identical result
    for the same logical triples, but no boxed triple per transition —
    the constructor the parallel synthesis engine uses at
    tens-of-millions-of-transitions scale.  Same caller contract as
    {!of_indexed}. *)

(** {1 Inspection} *)

val name : t -> string
val alphabet : t -> Event.Set.t

val states : t -> string list
(** All state names, in index order.  Forces the name table. *)

val num_states : t -> int
val num_transitions : t -> int
val initial : t -> string
val marked : t -> string list
val forbidden : t -> string list
val is_marked : t -> string -> bool
val is_forbidden : t -> string -> bool
val mem_state : t -> string -> bool

val step : t -> string -> Event.t -> string option
(** [step a q e] is δ(q,e), or [None] when undefined.  Raises
    [Invalid_argument] on an unknown state name. *)

val enabled : t -> string -> Event.t list
(** Events with a transition defined from the given state, sorted. *)

val transitions : t -> transition list
(** All transitions, row-major (by source index, then event id).  Forces
    the name table. *)

val accepts : t -> Event.t list -> bool
(** [accepts a w] — does the word [w] lead from the initial state to a
    marked state (never visiting an undefined transition)? *)

val trace : t -> Event.t list -> string option
(** The state reached by a word from the initial state, or [None] when
    the word leaves the defined transition structure. *)

(** {1 Index-based traversal}

    The algorithm-facing API: no strings, no hashing.  State indices are
    stable for a given value of [t] and range over [0 .. num_states-1];
    events travel as {!Event.id} ints. *)

val index_of_state : t -> string -> int
val state_of_index : t -> int -> string
val initial_index : t -> int

val step_index : t -> int -> int -> int option
(** [step_index a i eid] is δ at state index [i] on the event with intern
    id [eid] — a binary search of the state's sorted CSR row; zero
    hashing, zero allocation beyond the option. *)

val step_index_raw : t -> int -> int -> int
(** {!step_index} without the option: the destination index, or [-1]
    when δ is undefined.  The tick-path variant — state indices are
    non-negative, so the sentinel is unambiguous and nothing is
    allocated. *)

val iter_row : t -> int -> (int -> int -> unit) -> unit
(** [iter_row a i f] calls [f eid dst] for each outgoing transition of
    state [i], in increasing event-id order.  The preferred traversal for
    algorithms — no [Event.t] decode, no closure over sets. *)

val out_degree : t -> int -> int
(** Number of outgoing transitions of a state. *)

val enabled_index : t -> int -> Event.t list
val is_marked_index : t -> int -> bool
val is_forbidden_index : t -> int -> bool

val event_of_id : t -> int -> Event.t
(** Decode an event id through this automaton's alphabet table ([O(1)],
    no global lock).  Raises [Invalid_argument] for ids outside the
    alphabet. *)

val fold_transitions : (int -> Event.t -> int -> 'a -> 'a) -> t -> 'a -> 'a
(** Row-major fold decoding events to {!Event.t}; kept for boundary code.
    Index-native algorithms should prefer {!iter_row}. *)

(** {1 Surgery} *)

val restrict_indices : t -> bool array -> t option
(** [restrict_indices a keep] is the sub-automaton induced by the states
    flagged in [keep] (transitions with both endpoints kept; a kept state
    survives when it is the initial state or an endpoint of a kept
    transition).  [None] when the initial state is not kept.  The
    alphabet is preserved; surviving states keep their names — lazily, so
    restricting an {!of_indexed} product does not materialize names.
    Raises [Invalid_argument] when [keep] has the wrong length. *)

val restrict_states : t -> keep:(string -> bool) -> t option
(** Name-predicate variant of {!restrict_indices} (forces the name
    table). *)

val rename : t -> string -> t
(** Same automaton under a new name. *)

val relabel_states : t -> (string -> string) -> t
(** Apply a renaming function to every state name.  Raises
    [Invalid_argument] when the renaming is not injective on states. *)

(** {1 Product support} *)

val product_state_name : string -> string -> string
(** Unambiguous name for a product state: the two component names joined
    with ['.'], escaping any ['.'] or ['\'] inside a component with a
    backslash.  Unlike a naive join, distinct pairs can never collide
    (e.g. [("a.b", "c")] and [("a", "b.c")] yield ["a\.b.c"] and
    ["a.b\.c"]).  Dot-free component names — the common case — appear
    verbatim.  Used by {!Compose.pair} and {!Synthesis.supcon}, so
    re-composing an automaton whose states are themselves product states
    is safe. *)

val product_state_name_n : string list -> string
(** Flat n-ary {!product_state_name}: each component escaped once and
    all joined with ['.'] at a single level.  For two components this is
    exactly [product_state_name]; {!Synthesis.supcon_modular} uses it to
    name joint states of many plant components and the spec without the
    nested re-escaping a pairwise fold would introduce. *)

val unescape_state_name : string -> string
(** Strip the {!product_state_name} escaping for human-readable display
    (["Eval\.Safe.Uncapped"] becomes ["Eval.Safe.Uncapped"]).  Lossy —
    distinct escaped names may collapse — so it is for labels only, never
    for identity; {!Dot} uses it for node labels. *)

val structural_digest : t -> string
(** Hex digest of the automaton's full structure (name, state names in
    index order, alphabet with controllability, transitions, initial,
    marked and forbidden sets).  Two automata with equal digests are
    structurally identical; the synthesis cache uses this as its key.
    Transitions are digested in CSR order (by source index, then event
    {e id}), so the digest is deterministic within a process — which is
    what the in-process cache needs — but not across processes, where
    intern order may differ.  Cached after the first call; forces the
    name table. *)

(** {1 Comparison} *)

val isomorphic : t -> t -> bool
(** True when the two automata are identical up to state renaming
    (checked by parallel traversal from the initial states — sound and
    complete for deterministic automata with all states reachable;
    unreachable states are ignored). *)

val pp : Format.formatter -> t -> unit
(** Short human-readable summary (name, counts, initial state). *)
