(** Growable int array, used as scratch by the index-native algorithms
    ({!Compose}, {!Synthesis}) to accumulate transition triples and
    state maps without consing a list cell per element. *)

type t

val create : ?capacity:int -> unit -> t
val length : t -> int
val push : t -> int -> unit
val get : t -> int -> int

val set : t -> int -> int -> unit
(** In-place update of an already-pushed element; the parallel product
    construction buffers destination {e keys} during expansion and
    patches them to state indices once the level's insertions are
    published. *)

val pop : t -> int
(** Remove and return the last element (LIFO use as a worklist stack).
    Raises [Invalid_argument] when empty. *)

val clear : t -> unit
(** Reset the length to zero, keeping the backing storage — per-round
    reuse of frontier and spill buffers. *)

val to_array : t -> int array
