(** Growable int array, used as scratch by the index-native algorithms
    ({!Compose}, {!Synthesis}) to accumulate transition triples and
    state maps without consing a list cell per element. *)

type t

val create : ?capacity:int -> unit -> t
val length : t -> int
val push : t -> int -> unit
val get : t -> int -> int
val to_array : t -> int array
