(** Reachability analysis: accessible, coaccessible and trim parts.

    These are the building blocks of the paper's §4.3.4 non-blocking
    check: an automaton is non-blocking exactly when every accessible
    state is coaccessible (can still reach a marked state). *)

val accessible_indices : Automaton.t -> bool array
(** [accessible_indices a] flags states reachable from the initial
    state. *)

val coaccessible_indices : Automaton.t -> bool array
(** Flags states from which some marked state is reachable (computed by
    backward traversal from the marked states). *)

val restrict_indices : Automaton.t -> bool array -> Automaton.t option
(** Sub-automaton induced by the flagged states (re-exported
    {!Automaton.restrict_indices}): the index-native restriction the
    algorithms compose with the [*_indices] analyses above without ever
    touching state names.  [None] when the initial state is not kept. *)

val accessible : Automaton.t -> Automaton.t
(** Sub-automaton of reachable states (never empty: the initial state is
    always reachable). *)

val coaccessible : Automaton.t -> Automaton.t option
(** Sub-automaton of coaccessible states; [None] when the initial state
    itself cannot reach a marked state (empty supervisor). *)

val trim : Automaton.t -> Automaton.t option
(** Accessible ∧ coaccessible part — the "trimming algorithm" of §4.3.4.
    [None] when the result would not contain the initial state. *)

val is_trim : Automaton.t -> bool
