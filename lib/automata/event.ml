type t = { id : int; name : string; controllable : bool }

(* Process-wide intern table: one value per (name, controllability) pair,
   ids dense in intern order.  Interning takes a mutex — automata are
   built from multiple domains by the bench pool — but the id→event
   mapping is additionally published as an immutable snapshot array
   behind an [Atomic.t], so [of_id] and [count] never lock: witness
   decoding and scratch-array sizing from parallel shard workers must
   not serialize on the intern mutex.  Each intern rebuilds the snapshot
   (append-copy, O(n) — interning is a startup activity, n stays small)
   and publishes it with [Atomic.set] before releasing the lock; readers
   see a frozen array that is never mutated after publication. *)

let mutex = Mutex.create ()
let table : (string * bool, t) Hashtbl.t = Hashtbl.create 64
let snapshot : t array Atomic.t = Atomic.make [||]

let locked f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

let intern name controllable =
  locked (fun () ->
      let key = (name, controllable) in
      match Hashtbl.find_opt table key with
      | Some e -> e
      | None ->
          let s = Atomic.get snapshot in
          let id = Array.length s in
          let e = { id; name; controllable } in
          Hashtbl.add table key e;
          let bigger = Array.make (id + 1) e in
          Array.blit s 0 bigger 0 id;
          Atomic.set snapshot bigger;
          e)

let controllable name = intern name true
let uncontrollable name = intern name false
let name e = e.name
let is_controllable e = e.controllable
let id e = e.id

let of_id i =
  let s = Atomic.get snapshot in
  if i >= 0 && i < Array.length s then s.(i)
  else invalid_arg (Printf.sprintf "Event.of_id: unknown id %d" i)

let count () = Array.length (Atomic.get snapshot)

let compare a b =
  if a.id = b.id then 0
  else
    let c = String.compare a.name b.name in
    if c <> 0 then c else Bool.compare a.controllable b.controllable

let equal a b = a.id = b.id

let pp ppf e =
  if e.controllable then Format.pp_print_string ppf e.name
  else Format.fprintf ppf "%s!" e.name

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)

let set_of_list l = Set.of_list l

let merge_alphabets ~context s1 s2 =
  let u = Set.union s1 s2 in
  (* The order is (name, controllability), so a name carried with both
     polarities yields two adjacent elements. *)
  let prev = ref None in
  Set.iter
    (fun e ->
      (match !prev with
      | Some p when String.equal p.name e.name ->
          invalid_arg
            (Printf.sprintf
               "%s: event %S is uncontrollable in one alphabet but \
                controllable in the other"
               context e.name)
      | _ -> ());
      prev := Some e)
    u;
  u
