type t = { id : int; name : string; controllable : bool }

(* Process-wide intern table: one value per (name, controllability) pair,
   ids dense in intern order.  Guarded by a mutex — automata are built
   from multiple domains by the bench pool.  Reads of an event's fields
   never touch the table (the fields live in the value itself), so only
   interning and [of_id] pay for the lock. *)

let mutex = Mutex.create ()
let table : (string * bool, t) Hashtbl.t = Hashtbl.create 64
let store = ref (Array.make 64 None)
let next_id = ref 0

let locked f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

let intern name controllable =
  locked (fun () ->
      let key = (name, controllable) in
      match Hashtbl.find_opt table key with
      | Some e -> e
      | None ->
          let id = !next_id in
          let e = { id; name; controllable } in
          Hashtbl.add table key e;
          if id >= Array.length !store then begin
            let bigger = Array.make (2 * Array.length !store) None in
            Array.blit !store 0 bigger 0 (Array.length !store);
            store := bigger
          end;
          !store.(id) <- Some e;
          incr next_id;
          e)

let controllable name = intern name true
let uncontrollable name = intern name false
let name e = e.name
let is_controllable e = e.controllable
let id e = e.id

let of_id i =
  locked (fun () ->
      if i < 0 || i >= !next_id then
        invalid_arg (Printf.sprintf "Event.of_id: unknown id %d" i);
      match !store.(i) with Some e -> e | None -> assert false)

let count () = locked (fun () -> !next_id)

let compare a b =
  if a.id = b.id then 0
  else
    let c = String.compare a.name b.name in
    if c <> 0 then c else Bool.compare a.controllable b.controllable

let equal a b = a.id = b.id

let pp ppf e =
  if e.controllable then Format.pp_print_string ppf e.name
  else Format.fprintf ppf "%s!" e.name

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)

let set_of_list l = Set.of_list l

let merge_alphabets ~context s1 s2 =
  let u = Set.union s1 s2 in
  (* The order is (name, controllability), so a name carried with both
     polarities yields two adjacent elements. *)
  let prev = ref None in
  Set.iter
    (fun e ->
      (match !prev with
      | Some p when String.equal p.name e.name ->
          invalid_arg
            (Printf.sprintf
               "%s: event %S is uncontrollable in one alphabet but \
                controllable in the other"
               context e.name)
      | _ -> ());
      prev := Some e)
    u;
  u
