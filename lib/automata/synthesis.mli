(** Ramadge–Wonham supervisor synthesis (the "Synthesis" box of Fig. 11).

    Given a plant model [G] and an intended-behaviour specification [E],
    {!supcon} computes the {e supremal controllable and non-blocking}
    sub-behaviour of [G ‖ E]: the least restrictive supervisor that
    - never disables an uncontrollable event the plant can generate
      (controllability, §4.3.4),
    - never paints the system into a corner from which no marked state is
      reachable (non-blocking),
    - never enters a forbidden (✗) state of the specification.

    The algorithm is the classical fixpoint of the paper's §4.3.4: the
    trimming pass and the uncontrollable-state extension pass "must be run
    successively and iteratively, until they return the same result". *)

type stats = {
  product_states : int;  (** Reachable states of G ‖ E before pruning. *)
  removed_uncontrollable : int;
      (** States removed because an uncontrollable plant event escaped the
          good region. *)
  removed_blocking : int;  (** States removed by trimming passes. *)
  removed_forbidden : int;  (** Forbidden states removed up front. *)
  iterations : int;  (** Fixpoint rounds until stable. *)
}

val pp_stats : Format.formatter -> stats -> unit

type error =
  | Empty_supervisor
      (** The initial state itself is uncontrollably bad: no supervisor
          satisfying the specification exists. *)

val supcon :
  plant:Automaton.t ->
  spec:Automaton.t ->
  (Automaton.t * stats, error) result
(** [supcon ~plant ~spec] synthesizes the supervisor.  Product states are
    named ["qG.qE"] as in Fig. 12d.  The returned automaton is both the
    supervisor realization and the closed-loop behaviour (standard for
    state-feedback RW supervisors); it is guaranteed controllable w.r.t.
    [plant], non-blocking and trim — properties re-checked by
    {!Verify.controllable} and {!Verify.nonblocking} in the test-suite. *)

val supcon_exn : plant:Automaton.t -> spec:Automaton.t -> Automaton.t
(** Like {!supcon} but raising [Failure] on an empty result and dropping
    the statistics; convenient in examples. *)

val supcon_par :
  ?jobs:int ->
  plant:Automaton.t ->
  spec:Automaton.t ->
  unit ->
  (Automaton.t * stats, error) result
(** Sharded parallel {!supcon}.  [jobs] workers (default 1) explore the
    reachable product with per-shard open-addressing state tables and
    per-worker frontiers, then run the uncontrollable/blocking fixpoint
    over contiguous state ranges with cross-shard spill queues.

    {b Determinism contract}: for any [jobs], the result — supervisor
    states, names, transitions, {!Automaton.structural_digest} and
    {!stats} — is byte-identical to [supcon ~plant ~spec].  The parallel
    exploration's interim numbering is canonicalized by a sequential BFS
    renumbering that reproduces the sequential discovery order exactly,
    and each fixpoint pass computes a unique complete fixpoint, so its
    removal counts are traversal-order-free. *)

val supcon_modular :
  ?jobs:int ->
  plants:Automaton.t list ->
  spec:Automaton.t ->
  unit ->
  (Automaton.t * stats, error) result
(** Modular synthesis: the product of all plant components and the spec
    is built {e jointly}, on the fly — only spec-feasible joint states
    are ever materialized, so a [3^k]-state unconstrained composition
    that the spec confines to a sliver never exists in memory.  The
    result equals [supcon ~plant:(Compose.all plants) ~spec] up to state
    naming (joint states are named by the flat
    {!Automaton.product_state_name_n} join rather than the nested
    pairwise join): same state count, same transition structure
    ({!Automaton.isomorphic}), same {!stats}.  Deterministic in [jobs]
    like {!supcon_par}.  Raises [Invalid_argument] when [plants] is
    empty or the joint index space overflows the int key range. *)
