(** Synchronous composition of automata (the ‖ operator of §4.3.1).

    Common events synchronize; private events interleave.  Only the
    reachable part of the product is constructed, so composing many small
    sub-plants stays tractable — this is the modular-decomposition lever
    the paper relies on for scalability. *)

val pair : Automaton.t -> Automaton.t -> Automaton.t
(** [pair a b] is A ‖ B.  Product states are named ["qa.qb"], matching the
    paper's Figure 12b.  A product state is marked iff both components are
    marked, and forbidden iff either component is forbidden.  The alphabet
    is Σ_A ∪ Σ_B. *)

val all : Automaton.t list -> Automaton.t
(** n-ary ‖ as a size-ordered balanced tree of {!pair}: components are
    stable-sorted by state count and adjacent ones paired, round by
    round, so no intermediate product dwarfs the final one the way the
    old left fold's skewed chain did.  The result is isomorphic to (and
    accepts the same language as) the fold of {!pair} in list order —
    only composite state names and hence the structural digest depend on
    the tree shape.  Raises [Invalid_argument] on the empty list. *)
