(* Reachable synchronous product.  δ((qa,qb), e) is defined per the
   standard definition: both step on shared events, one steps on a private
   event, undefined otherwise. *)

let pair a b =
  let sigma_a = Automaton.alphabet a and sigma_b = Automaton.alphabet b in
  let alphabet = Event.Set.union sigma_a sigma_b in
  let name_of ia ib =
    (* Escaping join: composing an automaton whose state names already
       contain dots (e.g. a synthesized supervisor fed back as a plant)
       must not collide distinct pairs. *)
    Automaton.product_state_name
      (Automaton.state_of_index a ia)
      (Automaton.state_of_index b ib)
  in
  let seen = Hashtbl.create 64 in
  let queue = Queue.create () in
  let transitions = ref [] in
  let marked = ref [] in
  let forbidden = ref [] in
  let visit (ia, ib) =
    if not (Hashtbl.mem seen (ia, ib)) then begin
      Hashtbl.add seen (ia, ib) ();
      Queue.push (ia, ib) queue;
      if Automaton.is_marked_index a ia && Automaton.is_marked_index b ib then
        marked := name_of ia ib :: !marked;
      if
        Automaton.is_forbidden_index a ia || Automaton.is_forbidden_index b ib
      then forbidden := name_of ia ib :: !forbidden
    end
  in
  let start = (Automaton.initial_index a, Automaton.initial_index b) in
  visit start;
  while not (Queue.is_empty queue) do
    let ia, ib = Queue.pop queue in
    Event.Set.iter
      (fun e ->
        let in_a = Event.Set.mem e sigma_a in
        let in_b = Event.Set.mem e sigma_b in
        let next =
          match (in_a, in_b) with
          | true, true -> (
              match (Automaton.step_index a ia e, Automaton.step_index b ib e)
              with
              | Some ja, Some jb -> Some (ja, jb)
              | _ -> None)
          | true, false ->
              Option.map (fun ja -> (ja, ib)) (Automaton.step_index a ia e)
          | false, true ->
              Option.map (fun jb -> (ia, jb)) (Automaton.step_index b ib e)
          | false, false -> None
        in
        match next with
        | None -> ()
        | Some (ja, jb) ->
            visit (ja, jb);
            transitions := (name_of ia ib, e, name_of ja jb) :: !transitions)
      alphabet
  done;
  Automaton.create ~marked:!marked ~forbidden:!forbidden
    ~alphabet:(Event.Set.elements alphabet)
    ~name:(Automaton.name a ^ "||" ^ Automaton.name b)
    ~initial:(name_of (fst start) (snd start))
    ~transitions:!transitions ()

let all = function
  | [] -> invalid_arg "Compose.all: empty list"
  | [ a ] -> a
  | a :: rest -> List.fold_left pair a rest
