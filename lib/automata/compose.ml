(* Reachable synchronous product, computed entirely in index space.
   δ((qa,qb), e) is the standard definition — both step on shared events,
   one steps on a private event, undefined otherwise — but instead of
   iterating the union alphabet per state (|Σ| lookups, most missing), we
   walk each component's CSR row: only events that are actually enabled
   somewhere are ever touched, and shared-event synchronization is one
   binary search in the other component's row.  Product state names are
   never materialized here; [Automaton.of_indexed] builds them lazily from
   the (ia, ib) pair map if anyone asks. *)

let pair a b =
  let sigma_a = Automaton.alphabet a and sigma_b = Automaton.alphabet b in
  let alphabet =
    Event.merge_alphabets
      ~context:
        (Printf.sprintf "Compose.pair(%s,%s)" (Automaton.name a)
           (Automaton.name b))
      sigma_a sigma_b
  in
  let max_id = Event.Set.fold (fun e m -> max m (Event.id e)) alphabet (-1) in
  let in_a = Array.make (max_id + 1) false in
  let in_b = Array.make (max_id + 1) false in
  Event.Set.iter (fun e -> in_a.(Event.id e) <- true) sigma_a;
  Event.Set.iter (fun e -> in_b.(Event.id e) <- true) sigma_b;
  let nb = Automaton.num_states b in
  let seen : (int, int) Hashtbl.t = Hashtbl.create 1024 in
  let pa = Intvec.create () and pb = Intvec.create () in
  let tsrc = Intvec.create () and tev = Intvec.create () in
  let tdst = Intvec.create () in
  let queue = Queue.create () in
  let visit ia ib =
    let key = (ia * nb) + ib in
    match Hashtbl.find_opt seen key with
    | Some i -> i
    | None ->
        let i = Intvec.length pa in
        Hashtbl.add seen key i;
        Intvec.push pa ia;
        Intvec.push pb ib;
        Queue.push (i, ia, ib) queue;
        i
  in
  ignore (visit (Automaton.initial_index a) (Automaton.initial_index b));
  while not (Queue.is_empty queue) do
    let i, ia, ib = Queue.pop queue in
    let emit eid j =
      Intvec.push tsrc i;
      Intvec.push tev eid;
      Intvec.push tdst j
    in
    Automaton.iter_row a ia (fun eid ja ->
        if in_b.(eid) then (
          match Automaton.step_index b ib eid with
          | Some jb -> emit eid (visit ja jb)
          | None -> ())
        else emit eid (visit ja ib));
    Automaton.iter_row b ib (fun eid jb ->
        if not in_a.(eid) then emit eid (visit ia jb))
  done;
  let n = Intvec.length pa in
  let pa = Intvec.to_array pa and pb = Intvec.to_array pb in
  let marked =
    Array.init n (fun i ->
        Automaton.is_marked_index a pa.(i) && Automaton.is_marked_index b pb.(i))
  in
  let forbidden =
    Array.init n (fun i ->
        Automaton.is_forbidden_index a pa.(i)
        || Automaton.is_forbidden_index b pb.(i))
  in
  let names () =
    Array.init n (fun i ->
        (* Escaping join: composing an automaton whose state names already
           contain dots (e.g. a synthesized supervisor fed back as a
           plant) must not collide distinct pairs. *)
        Automaton.product_state_name
          (Automaton.state_of_index a pa.(i))
          (Automaton.state_of_index b pb.(i)))
  in
  let trans =
    Array.init (Intvec.length tsrc) (fun k ->
        (Intvec.get tsrc k, Intvec.get tev k, Intvec.get tdst k))
  in
  Automaton.of_indexed
    ~name:(Automaton.name a ^ "||" ^ Automaton.name b)
    ~names ~alphabet ~initial:0 ~marked ~forbidden trans

(* n-ary composition as a size-ordered balanced tree, not a left fold.
   A fold produces the maximally skewed chain ((a‖b)‖c)‖…, whose
   intermediate products can dwarf the final one — with k equal-sized
   private-event components the chain materializes Θ(n^(k-1)) states on
   the way to an n^k product, every one of them twice (once as a product,
   once as the left operand re-walked by the next pair).  Pairing
   adjacent components in rounds keeps every intermediate near the
   geometric mean, and re-sorting by state count each round keeps the
   big partial products from meeting until the end.  The result is the
   same language and an isomorphic automaton (‖ is associative and
   commutative up to state renaming); only the composite state-name
   nesting and the digest differ from the fold's. *)
let all = function
  | [] -> invalid_arg "Compose.all: empty list"
  | [ a ] -> a
  | comps ->
      let by_size =
        List.stable_sort
          (fun x y ->
            Int.compare (Automaton.num_states x) (Automaton.num_states y))
      in
      let rec pairwise = function
        | a :: b :: rest -> pair a b :: pairwise rest
        | tail -> tail
      in
      let rec rounds = function
        | [ a ] -> a
        | l -> rounds (pairwise (by_size l))
      in
      rounds comps
