(* spectr — command-line interface to the SPECTR library.

   Subcommands:
     synthesize   synthesize + verify the case-study supervisor, export DOT
     identify     run an identification experiment and print the report
     scenario     run a manager through the 3-phase scenario, export CSV
     chaos        run a seeded randomized fault campaign (soak)
     replay       re-execute a chaos reproducer artifact deterministically
     fleet        simulate a coordinated fleet of SPECTR-managed SoCs
     platforms    list built-in platform descriptions or validate one
     list         list benchmarks, managers and subsystems

   Exit codes (beyond cmdliner's 124 for unknown subcommands/flags):
     0  success / campaign within expectations
     1  bad argument value (unknown manager, benchmark, platform, …)
     2  malformed reproducer artifact or platform CSV
     3  an invariant violation in a --fail-on variant, a fleet tick over
        the global cap under --require-compliant, or a node-kill drill
        missing its recovery deadline
     4  --require-violation variant stayed clean
     5  replay failed to reproduce (or trace digest mismatch)
*)

open Cmdliner
open Spectr_platform

(* Lift a unit command term into the int (exit code) world of
   [Cmd.eval']: plain commands exit 0 on success. *)
let exit_ok term = Term.(const (fun () -> 0) $ term)

(* ------------------------------------------------------------------ *)
(* platform specs                                                       *)
(* ------------------------------------------------------------------ *)

(* A platform spec is a built-in name ([exynos5422], [pixel8pro]), a
   synthetic [k<N>] generator, or a path to a platform CSV.  Unknown
   names exit 1 (bad argument); a file that exists but fails to parse
   exits 2 (malformed input, same class as a corrupt reproducer). *)
let platform_of_spec s =
  let k_arg =
    if String.length s >= 2 && s.[0] = 'k' then
      int_of_string_opt (String.sub s 1 (String.length s - 1))
    else None
  in
  match (s, k_arg) with
  | "exynos5422", _ -> Platform_desc.exynos5422
  | "pixel8pro", _ -> Platform_desc.pixel8pro
  | _, Some n -> (
      try Platform_desc.k_cluster n
      with Invalid_argument msg ->
        Printf.eprintf "%s\n" msg;
        exit 1)
  | _ ->
      if Sys.file_exists s then
        match Platform_desc.of_csv_file s with
        | Ok p -> p
        | Error e ->
            Format.eprintf "%s: %a@." s Platform_desc.pp_parse_error e;
            exit 2
      else begin
        Printf.eprintf
          "unknown platform %S (exynos5422, pixel8pro, k<N>, or a platform \
           CSV file)\n"
          s;
        exit 1
      end

let platform_arg =
  Arg.(
    value & opt string "exynos5422"
    & info [ "platform" ] ~docv:"PLATFORM"
        ~doc:
          "Platform description: $(b,exynos5422), $(b,pixel8pro), \
           $(b,k<N>) (synthetic N-cluster), or a platform CSV file.")

(* ------------------------------------------------------------------ *)
(* synthesize                                                           *)
(* ------------------------------------------------------------------ *)

let synthesize dot_path show_closed_loop =
  let plant = Spectr.Plant_model.composed () in
  let sup, stats = Spectr.Supervisor.synthesize () in
  Format.printf "plant:      %a@." Spectr_automata.Automaton.pp plant;
  Format.printf "spec:       %a@." Spectr_automata.Automaton.pp
    Spectr.Spec.three_band;
  Format.printf "supervisor: %a@." Spectr_automata.Automaton.pp sup;
  Format.printf "synthesis:  %a@." Spectr_automata.Synthesis.pp_stats stats;
  Format.printf "non-blocking: %b, controllable: %b@."
    (Spectr_automata.Verify.is_nonblocking sup)
    (Spectr_automata.Verify.is_controllable ~plant ~supervisor:sup);
  (match dot_path with
  | Some path ->
      Spectr_automata.Dot.write_file sup ~path;
      Printf.printf "wrote %s\n" path
  | None -> ());
  if show_closed_loop then begin
    let cl = Spectr_automata.Verify.closed_loop ~plant ~supervisor:sup in
    Format.printf "closed loop: %a@." Spectr_automata.Automaton.pp cl
  end

let synthesize_cmd =
  let dot =
    Arg.(
      value
      & opt (some string) None
      & info [ "dot" ] ~docv:"FILE" ~doc:"Export the supervisor as Graphviz DOT.")
  in
  let closed =
    Arg.(value & flag & info [ "closed-loop" ] ~doc:"Also build and summarize S || G.")
  in
  Cmd.v
    (Cmd.info "synthesize" ~doc:"Synthesize and verify the case-study supervisor")
    (exit_ok Term.(const synthesize $ dot $ closed))

(* ------------------------------------------------------------------ *)
(* identify                                                             *)
(* ------------------------------------------------------------------ *)

let subsystem_of_string = function
  | "big-2x2" -> Some Spectr.Design_flow.Big_2x2
  | "little-2x2" -> Some Spectr.Design_flow.Little_2x2
  | "fs-4x2" -> Some Spectr.Design_flow.Fs_4x2
  | "large-10x10" -> Some Spectr.Design_flow.Large_10x10
  | _ -> None

let identify name length order =
  match subsystem_of_string name with
  | None ->
      Printf.eprintf
        "unknown subsystem %S (big-2x2, little-2x2, fs-4x2, large-10x10)\n" name;
      exit 1
  | Some subsystem ->
      let ident = Spectr.Design_flow.identify ~length ~order subsystem in
      Format.printf "%a@." Spectr_sysid.Validation.pp_report
        ident.Spectr.Design_flow.report;
      let ss = ident.Spectr.Design_flow.statespace in
      Format.printf "realization: %a@." Spectr_control.Statespace.pp ss;
      Format.printf "DC gain (standardized):@.%a@." Spectr_linalg.Matrix.pp
        (Spectr_control.Statespace.dc_gain ss)

let identify_cmd =
  let subsystem =
    Arg.(
      value
      & pos 0 string "big-2x2"
      & info [] ~docv:"SUBSYSTEM"
          ~doc:"big-2x2, little-2x2, fs-4x2 or large-10x10.")
  in
  let length =
    Arg.(value & opt int 1200 & info [ "n"; "length" ] ~doc:"Experiment length (50 ms periods).")
  in
  let order =
    Arg.(value & opt int 2 & info [ "order" ] ~doc:"ARX order (na = nb).")
  in
  Cmd.v
    (Cmd.info "identify" ~doc:"Run a system-identification experiment")
    (exit_ok Term.(const identify $ subsystem $ length $ order))

(* ------------------------------------------------------------------ *)
(* scenario                                                             *)
(* ------------------------------------------------------------------ *)

let manager_of_string ~platform = function
  | "spectr" -> Some (fst (Spectr.Spectr_manager.make ~platform ()))
  | "mm-pow" -> Some (Spectr.Mm.make_pow ~platform ())
  | "mm-perf" -> Some (Spectr.Mm.make_perf ~platform ())
  | "fs" -> Some (Spectr.Fs.make ())
  | "siso" -> Some (Spectr.Siso.make ())
  | _ -> None

let scenario manager_name bench_name csv_path seed obs obs_jsonl platform_spec =
  let obs_on = obs || obs_jsonl <> None in
  (* Enable before manager construction so synthesis shows up in the
     synth-cache counters and histogram. *)
  if obs_on then Spectr_obs.enable ~now_ns:Monotonic_clock.now ();
  let platform = platform_of_spec platform_spec in
  let workload =
    match Benchmarks.by_name bench_name with
    | Some w -> w
    | None ->
        Printf.eprintf "unknown benchmark %S\n" bench_name;
        exit 1
  in
  (* The hand-tuned exynos baselines have no N-cluster generalization:
     refuse rather than silently mis-drive an unrelated platform. *)
  (match manager_name with
  | ("fs" | "siso")
    when not (Spectr.Design_flow.is_reference_platform platform) ->
      Printf.eprintf
        "manager %S is hand-tuned for exynos5422 and cannot run on %s\n"
        manager_name
        (Platform_desc.name platform);
      exit 1
  | _ -> ());
  let manager =
    match manager_of_string ~platform manager_name with
    | Some m -> m
    | None ->
        Printf.eprintf
          "unknown manager %S (spectr, mm-pow, mm-perf, fs, siso)\n"
          manager_name;
        exit 1
  in
  let config =
    {
      (Spectr.Scenario.default_config ~platform workload) with
      seed = Int64.of_int seed;
    }
  in
  let trace = Spectr.Scenario.run ~manager config in
  List.iter
    (fun m -> Format.printf "%a@." Spectr.Metrics.pp_phase_metrics m)
    (Spectr.Metrics.per_phase ~trace ~config);
  (match csv_path with
  | Some path ->
      let oc = open_out path in
      output_string oc (Trace.to_csv trace);
      close_out oc;
      Printf.printf "wrote %d rows to %s\n" (Trace.length trace) path
  | None -> ());
  if obs_on then begin
    print_string (Spectr_obs.summary ());
    match obs_jsonl with
    | Some path ->
        let oc = open_out path in
        output_string oc (Spectr_obs.Decision_log.to_jsonl ());
        close_out oc;
        Printf.printf "wrote %d decision(s) to %s\n"
          (Spectr_obs.Decision_log.length ())
          path
    | None -> ()
  end

let scenario_cmd =
  let manager =
    Arg.(
      value & opt string "spectr"
      & info [ "m"; "manager" ] ~doc:"spectr, mm-pow, mm-perf, fs or siso.")
  in
  let bench =
    Arg.(value & opt string "x264" & info [ "b"; "benchmark" ] ~doc:"QoS benchmark.")
  in
  let csv =
    Arg.(
      value & opt (some string) None
      & info [ "csv" ] ~docv:"FILE" ~doc:"Export the full trace as CSV.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Simulation seed.")
  in
  let obs =
    Arg.(
      value & flag
      & info [ "obs" ]
          ~doc:
            "Enable the observability layer and print its summary \
             (counters, latency histograms, decision tallies).")
  in
  let obs_jsonl =
    Arg.(
      value
      & opt (some string) None
      & info [ "obs-jsonl" ] ~docv:"FILE"
          ~doc:
            "Enable the observability layer and export the supervisory \
             decision log as JSONL (one decision per line).  Implies $(b,--obs).")
  in
  Cmd.v
    (Cmd.info "scenario" ~doc:"Run a resource manager through the 3-phase scenario")
    (exit_ok
       Term.(
         const scenario $ manager $ bench $ csv $ seed $ obs $ obs_jsonl
         $ platform_arg))

(* ------------------------------------------------------------------ *)
(* chaos                                                                *)
(* ------------------------------------------------------------------ *)

let parse_list ~what ~parse s =
  if String.trim s = "" then []
  else
    String.split_on_char ',' s
    |> List.map (fun tok ->
           let tok = String.trim tok in
           try parse tok
           with Invalid_argument _ ->
             Printf.eprintf "unknown %s %S\n" what tok;
             exit 1)

let chaos seed cells variants kinds max_faults kill_prob reconfig_prob
    artifact_dir shrink_budget max_findings fail_on require_violation =
  let variants =
    match parse_list ~what:"variant" ~parse:Spectr_chaos.Campaign.variant_of_string variants with
    | [] -> Spectr_chaos.Campaign.all_variants
    | vs -> vs
  in
  let kinds =
    match parse_list ~what:"fault kind" ~parse:Faults.kind_of_string kinds with
    | [] -> Spectr_chaos.Campaign.all_kinds
    | ks -> ks
  in
  let fail_on =
    parse_list ~what:"variant" ~parse:Spectr_chaos.Campaign.variant_of_string fail_on
  in
  let require_violation =
    Option.map
      (fun s ->
        match parse_list ~what:"variant" ~parse:Spectr_chaos.Campaign.variant_of_string s with
        | [ v ] -> v
        | _ ->
            Printf.eprintf "--require-violation takes exactly one variant\n";
            exit 1)
      require_violation
  in
  let spec =
    try
      Spectr_chaos.Campaign.default_spec ~seed ~cells ~variants ~kinds
        ~max_faults ~kill_prob ~reconfig_prob ()
    with Invalid_argument msg ->
      Printf.eprintf "%s\n" msg;
      exit 1
  in
  let report = Spectr_chaos.Soak.run ~max_findings spec in
  print_string (Spectr_chaos.Soak.summary report);
  (* Shrink each finding to a minimal replayable reproducer. *)
  (match artifact_dir with
  | None -> ()
  | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      List.iter
        (fun f ->
          let outcome = f.Spectr_chaos.Soak.f_outcome in
          let cell = outcome.Spectr_chaos.Engine.cell in
          let kind =
            (List.hd outcome.Spectr_chaos.Engine.violations)
              .Spectr_chaos.Invariants.v_kind
          in
          let violates c =
            Spectr_chaos.Engine.violates ~kind (Spectr_chaos.Engine.run_cell c)
          in
          let res =
            Spectr_chaos.Shrink.minimize ~eval_budget:shrink_budget ~violates
              cell
          in
          let minimized = Spectr_chaos.Engine.run_cell res.Spectr_chaos.Shrink.cell in
          let path =
            Filename.concat dir
              (Printf.sprintf "cell-%04d.repro" cell.Spectr_chaos.Campaign.index)
          in
          Spectr_chaos.Artifact.save ~path
            {
              Spectr_chaos.Artifact.cell = res.Spectr_chaos.Shrink.cell;
              invariant = Some kind;
              digest = Some minimized.Spectr_chaos.Engine.digest;
            };
          Printf.printf
            "wrote %s (%d fault%s, %d shrink run%s)\n" path
            (List.length res.Spectr_chaos.Shrink.cell.Spectr_chaos.Campaign.injections)
            (if List.length res.Spectr_chaos.Shrink.cell.Spectr_chaos.Campaign.injections = 1
             then "" else "s")
            res.Spectr_chaos.Shrink.evaluations
            (if res.Spectr_chaos.Shrink.evaluations = 1 then "" else "s"))
        report.Spectr_chaos.Soak.r_findings);
  let violating v = Spectr_chaos.Soak.violating_cells report ~variant:v > 0 in
  if List.exists violating fail_on then begin
    Printf.printf "FAIL: invariant violation in a --fail-on variant\n";
    3
  end
  else
    match require_violation with
    | Some v when not (violating v) ->
        Printf.printf "FAIL: %s was expected to violate but stayed clean\n"
          (Spectr_chaos.Campaign.variant_name v);
        4
    | _ ->
        Printf.printf "OK\n";
        0

let chaos_cmd =
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Campaign seed.") in
  let cells =
    Arg.(value & opt int 64 & info [ "cells" ] ~doc:"Number of campaign cells.")
  in
  let variants =
    Arg.(
      value & opt string ""
      & info [ "variants" ]
          ~doc:
            "Comma-separated manager variants (spectr+g, spectr, mm-pow, \
             mm-perf, siso, fs).  Default: all.")
  in
  let kinds =
    Arg.(
      value & opt string ""
      & info [ "kinds" ]
          ~doc:
            "Comma-separated fault kinds to draw from (e.g. dropout:power, \
             spike:qos:8, dvfs-stuck).  Default: all.")
  in
  let max_faults =
    Arg.(value & opt int 3 & info [ "max-faults" ] ~doc:"Max faults per cell.")
  in
  let kill_prob =
    Arg.(
      value & opt float 0.25
      & info [ "kill-prob" ]
          ~doc:"Probability a cell kills and hot-restarts its manager.")
  in
  let reconfig_prob =
    Arg.(
      value & opt float 0.
      & info [ "reconfig-prob" ]
          ~doc:
            "Probability a cell latches one PERMANENT fault (dead cluster, \
             dead power sensor, latched DVFS rail) — the reconfiguration \
             drill for the spectr+r variant.  0 (default) leaves existing \
             campaigns byte-identical.")
  in
  let artifact_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "artifact-dir" ] ~docv:"DIR"
          ~doc:"Shrink each finding and write replayable reproducers here.")
  in
  let shrink_budget =
    Arg.(
      value & opt int 48
      & info [ "shrink-budget" ] ~doc:"Max scenario runs per shrink.")
  in
  let max_findings =
    Arg.(
      value & opt int 10
      & info [ "max-findings" ] ~doc:"Failing cells to detail (and shrink).")
  in
  let fail_on =
    Arg.(
      value & opt string "spectr+g"
      & info [ "fail-on" ]
          ~doc:
            "Comma-separated variants whose violations make the exit code \
             nonzero (3).  Empty to disable.")
  in
  let require_violation =
    Arg.(
      value
      & opt (some string) None
      & info [ "require-violation" ] ~docv:"VARIANT"
          ~doc:
            "Exit nonzero (4) unless this variant violates at least once — \
             guards the campaign against vacuous passes.")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:"Run a seeded randomized fault campaign with invariant monitors")
    Term.(
      const chaos $ seed $ cells $ variants $ kinds $ max_faults $ kill_prob
      $ reconfig_prob $ artifact_dir $ shrink_budget $ max_findings $ fail_on
      $ require_violation)

(* ------------------------------------------------------------------ *)
(* replay                                                               *)
(* ------------------------------------------------------------------ *)

let replay path =
  let artifact =
    try Spectr_chaos.Artifact.load ~path
    with
    | Invalid_argument msg ->
        Printf.eprintf "%s\n" msg;
        exit 2
    | Sys_error msg ->
        Printf.eprintf "%s\n" msg;
        exit 2
  in
  let r = Spectr_chaos.Artifact.replay artifact in
  let o = r.Spectr_chaos.Artifact.outcome in
  let cell = o.Spectr_chaos.Engine.cell in
  Printf.printf "replayed cell %d (%s, seed %Ld): %d tick(s), digest %s\n"
    cell.Spectr_chaos.Campaign.index
    (Spectr_chaos.Campaign.variant_name cell.Spectr_chaos.Campaign.variant)
    cell.Spectr_chaos.Campaign.seed o.Spectr_chaos.Engine.ticks
    o.Spectr_chaos.Engine.digest;
  List.iter
    (fun v ->
      Printf.printf "  %s t=%.2fs: %s\n"
        (Spectr_chaos.Invariants.kind_name v.Spectr_chaos.Invariants.v_kind)
        v.Spectr_chaos.Invariants.v_time v.Spectr_chaos.Invariants.v_detail)
    o.Spectr_chaos.Engine.violations;
  match (r.Spectr_chaos.Artifact.reproduced, r.Spectr_chaos.Artifact.digest_matched) with
  | true, (Some true | None) ->
      Printf.printf "reproduced%s\n"
        (match r.Spectr_chaos.Artifact.digest_matched with
        | Some true -> " (trace digest matches)"
        | _ -> "");
      0
  | false, _ ->
      Printf.printf "FAIL: violation did not reproduce\n";
      5
  | true, Some false ->
      Printf.printf "FAIL: reproduced, but the trace digest changed\n";
      5

let replay_cmd =
  let path =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"Reproducer artifact written by $(b,chaos).")
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:"Re-execute a chaos reproducer artifact deterministically")
    Term.(const replay $ path)

(* ------------------------------------------------------------------ *)
(* fleet                                                                *)
(* ------------------------------------------------------------------ *)

let fleet nodes epochs ticks seed cap_per_node policy arrival_rate kill_rate
    node_kill require_compliant platform_specs =
  match node_kill with
  | Some drills -> (
      (* Node-kill campaign: whole-node death/restart drills over the
         fleet's Node abstraction, not a fleet simulation. *)
      match
        try Ok (Spectr_chaos.Node_kill.default_spec ~seed ~drills ())
        with Invalid_argument msg -> Error msg
      with
      | Error msg ->
          Printf.eprintf "%s\n" msg;
          exit 1
      | Ok spec ->
          let r = Spectr_chaos.Node_kill.run spec in
          print_string (Spectr_chaos.Node_kill.summary r);
          if r.Spectr_chaos.Node_kill.r_failed > 0 then begin
            Printf.printf "FAIL: %d drill(s) missed the recovery deadline\n"
              r.Spectr_chaos.Node_kill.r_failed;
            3
          end
          else begin
            Printf.printf "OK\n";
            0
          end)
  | None ->
      let policy =
        match Spectr_fleet.Coordinator.policy_of_string policy with
        | Some p -> p
        | None ->
            Printf.eprintf
              "unknown policy %S (uncoordinated, static, waterfill)\n" policy;
            exit 1
      in
      let platforms =
        String.split_on_char ',' platform_specs
        |> List.map String.trim
        |> List.filter (fun s -> s <> "")
        |> List.map platform_of_spec
        |> Array.of_list
      in
      let spec =
        {
          Spectr_fleet.Fleet.default_spec with
          nodes;
          epochs;
          ticks_per_epoch = ticks;
          seed;
          global_cap = cap_per_node *. float_of_int nodes;
          policy;
          arrival_rate;
          kill_rate;
          platforms;
        }
      in
      let r =
        try Spectr_fleet.Fleet.run spec
        with Invalid_argument msg ->
          Printf.eprintf "%s\n" msg;
          exit 1
      in
      Format.printf "%a@." Spectr_fleet.Fleet.pp_result r;
      if require_compliant && r.Spectr_fleet.Fleet.violation_ticks > 0 then begin
        Printf.printf "FAIL: %d tick(s) above the global cap\n"
          r.Spectr_fleet.Fleet.violation_ticks;
        3
      end
      else 0

let fleet_cmd =
  let nodes =
    Arg.(value & opt int 64 & info [ "nodes" ] ~doc:"Fleet size (SoCs).")
  in
  let epochs =
    Arg.(value & opt int 20 & info [ "epochs" ] ~doc:"Coordinator epochs.")
  in
  let ticks =
    Arg.(
      value & opt int 50
      & info [ "ticks" ] ~doc:"Controller periods per epoch (50 ms each).")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Fleet seed.") in
  let cap =
    Arg.(
      value & opt float 2.5
      & info [ "cap-per-node" ] ~docv:"W"
          ~doc:
            "Global datacenter cap expressed per node (total = W × nodes); \
             the chip TDP is 5 W.")
  in
  let policy =
    Arg.(
      value & opt string "waterfill"
      & info [ "policy" ]
          ~doc:"Coordinator policy: uncoordinated, static or waterfill.")
  in
  let arrival_rate =
    Arg.(
      value & opt float 2.
      & info [ "arrival-rate" ] ~doc:"Mean workload arrivals per epoch.")
  in
  let kill_rate =
    Arg.(
      value & opt float 0.5
      & info [ "kill-rate" ] ~doc:"Mean node kills per epoch.")
  in
  let node_kill =
    Arg.(
      value
      & opt (some int) None
      & info [ "node-kill" ] ~docv:"DRILLS"
          ~doc:
            "Instead of a fleet run, execute this many whole-node \
             death/restart drills (checkpoint, kill, reboot, verify the \
             rebooted node settles under its cap) and exit 3 on any missed \
             deadline.")
  in
  let require_compliant =
    Arg.(
      value & flag
      & info [ "require-compliant" ]
          ~doc:
            "Exit nonzero (3) when any tick exceeds the global cap — the \
             fleet-bench gate.")
  in
  let platforms =
    Arg.(
      value & opt string "exynos5422"
      & info [ "platform" ] ~docv:"PLATFORMS"
          ~doc:
            "Comma-separated platform specs (built-in name, $(b,k<N>) or \
             CSV file); node $(i,i) runs spec $(i,i) mod count — more than \
             one gives an interleaved heterogeneous fleet.")
  in
  Cmd.v
    (Cmd.info "fleet"
       ~doc:"Simulate a coordinated fleet of SPECTR-managed SoCs")
    Term.(
      const fleet $ nodes $ epochs $ ticks $ seed $ cap $ policy
      $ arrival_rate $ kill_rate $ node_kill $ require_compliant $ platforms)

(* ------------------------------------------------------------------ *)
(* platforms                                                            *)
(* ------------------------------------------------------------------ *)

let platforms validate =
  match validate with
  | Some spec ->
      (* Validate without running anything: [platform_of_spec] exits 1/2
         with the precise error on failure. *)
      let p = platform_of_spec spec in
      Printf.printf "%s\nOK: digest %s\n" (Platform_desc.describe p)
        (Platform_desc.digest p)
  | None ->
      List.iter
        (fun p -> print_endline (Platform_desc.describe p))
        (Platform_desc.builtins ())

let platforms_cmd =
  let validate =
    Arg.(
      value
      & opt (some string) None
      & info [ "platform" ] ~docv:"PLATFORM"
          ~doc:
            "Validate this platform spec (built-in name, $(b,k<N>) or CSV \
             file) and print its summary and digest instead of listing the \
             built-ins.  A malformed CSV exits 2 with the offending line.")
  in
  Cmd.v
    (Cmd.info "platforms"
       ~doc:"List built-in platform descriptions or validate one")
    (exit_ok Term.(const platforms $ validate))

(* ------------------------------------------------------------------ *)
(* list                                                                 *)
(* ------------------------------------------------------------------ *)

let list_all () =
  print_endline "benchmarks:";
  List.iter
    (fun w ->
      Printf.printf "  %-14s max %.1f HB/s, min %.1f HB/s\n" w.Workload.name
        (Perf_model.max_qos_rate w) (Perf_model.min_qos_rate w))
    (Benchmarks.microbench :: Benchmarks.all_qos);
  print_endline "managers: spectr, mm-pow, mm-perf, fs, siso";
  print_endline "subsystems: big-2x2, little-2x2, fs-4x2, large-10x10"

let list_cmd =
  Cmd.v (Cmd.info "list" ~doc:"List benchmarks, managers and subsystems")
    (exit_ok Term.(const list_all $ const ()))

(* ------------------------------------------------------------------ *)

let () =
  let info =
    Cmd.info "spectr" ~version:"1.0.0"
      ~doc:"Supervisory control for many-core resource management"
  in
  (* [eval'] so that chaos/replay report campaign failures through the
     exit code (see the table at the top of this file); unit commands
     keep exiting 0 on success. *)
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            synthesize_cmd;
            identify_cmd;
            scenario_cmd;
            chaos_cmd;
            replay_cmd;
            fleet_cmd;
            platforms_cmd;
            list_cmd;
          ]))
