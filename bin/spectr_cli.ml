(* spectr — command-line interface to the SPECTR library.

   Subcommands:
     synthesize   synthesize + verify the case-study supervisor, export DOT
     identify     run an identification experiment and print the report
     scenario     run a manager through the 3-phase scenario, export CSV
     list         list benchmarks, managers and subsystems
*)

open Cmdliner
open Spectr_platform

(* ------------------------------------------------------------------ *)
(* synthesize                                                           *)
(* ------------------------------------------------------------------ *)

let synthesize dot_path show_closed_loop =
  let plant = Spectr.Plant_model.composed () in
  let sup, stats = Spectr.Supervisor.synthesize () in
  Format.printf "plant:      %a@." Spectr_automata.Automaton.pp plant;
  Format.printf "spec:       %a@." Spectr_automata.Automaton.pp
    Spectr.Spec.three_band;
  Format.printf "supervisor: %a@." Spectr_automata.Automaton.pp sup;
  Format.printf "synthesis:  %a@." Spectr_automata.Synthesis.pp_stats stats;
  Format.printf "non-blocking: %b, controllable: %b@."
    (Spectr_automata.Verify.is_nonblocking sup)
    (Spectr_automata.Verify.is_controllable ~plant ~supervisor:sup);
  (match dot_path with
  | Some path ->
      Spectr_automata.Dot.write_file sup ~path;
      Printf.printf "wrote %s\n" path
  | None -> ());
  if show_closed_loop then begin
    let cl = Spectr_automata.Verify.closed_loop ~plant ~supervisor:sup in
    Format.printf "closed loop: %a@." Spectr_automata.Automaton.pp cl
  end

let synthesize_cmd =
  let dot =
    Arg.(
      value
      & opt (some string) None
      & info [ "dot" ] ~docv:"FILE" ~doc:"Export the supervisor as Graphviz DOT.")
  in
  let closed =
    Arg.(value & flag & info [ "closed-loop" ] ~doc:"Also build and summarize S || G.")
  in
  Cmd.v
    (Cmd.info "synthesize" ~doc:"Synthesize and verify the case-study supervisor")
    Term.(const synthesize $ dot $ closed)

(* ------------------------------------------------------------------ *)
(* identify                                                             *)
(* ------------------------------------------------------------------ *)

let subsystem_of_string = function
  | "big-2x2" -> Some Spectr.Design_flow.Big_2x2
  | "little-2x2" -> Some Spectr.Design_flow.Little_2x2
  | "fs-4x2" -> Some Spectr.Design_flow.Fs_4x2
  | "large-10x10" -> Some Spectr.Design_flow.Large_10x10
  | _ -> None

let identify name length order =
  match subsystem_of_string name with
  | None ->
      Printf.eprintf
        "unknown subsystem %S (big-2x2, little-2x2, fs-4x2, large-10x10)\n" name;
      exit 1
  | Some subsystem ->
      let ident = Spectr.Design_flow.identify ~length ~order subsystem in
      Format.printf "%a@." Spectr_sysid.Validation.pp_report
        ident.Spectr.Design_flow.report;
      let ss = ident.Spectr.Design_flow.statespace in
      Format.printf "realization: %a@." Spectr_control.Statespace.pp ss;
      Format.printf "DC gain (standardized):@.%a@." Spectr_linalg.Matrix.pp
        (Spectr_control.Statespace.dc_gain ss)

let identify_cmd =
  let subsystem =
    Arg.(
      value
      & pos 0 string "big-2x2"
      & info [] ~docv:"SUBSYSTEM"
          ~doc:"big-2x2, little-2x2, fs-4x2 or large-10x10.")
  in
  let length =
    Arg.(value & opt int 1200 & info [ "n"; "length" ] ~doc:"Experiment length (50 ms periods).")
  in
  let order =
    Arg.(value & opt int 2 & info [ "order" ] ~doc:"ARX order (na = nb).")
  in
  Cmd.v
    (Cmd.info "identify" ~doc:"Run a system-identification experiment")
    Term.(const identify $ subsystem $ length $ order)

(* ------------------------------------------------------------------ *)
(* scenario                                                             *)
(* ------------------------------------------------------------------ *)

let manager_of_string = function
  | "spectr" -> Some (fst (Spectr.Spectr_manager.make ()))
  | "mm-pow" -> Some (Spectr.Mm.make_pow ())
  | "mm-perf" -> Some (Spectr.Mm.make_perf ())
  | "fs" -> Some (Spectr.Fs.make ())
  | "siso" -> Some (Spectr.Siso.make ())
  | _ -> None

let scenario manager_name bench_name csv_path seed obs obs_jsonl =
  let obs_on = obs || obs_jsonl <> None in
  (* Enable before manager construction so synthesis shows up in the
     synth-cache counters and histogram. *)
  if obs_on then Spectr_obs.enable ~now_ns:Monotonic_clock.now ();
  let workload =
    match Benchmarks.by_name bench_name with
    | Some w -> w
    | None ->
        Printf.eprintf "unknown benchmark %S\n" bench_name;
        exit 1
  in
  let manager =
    match manager_of_string manager_name with
    | Some m -> m
    | None ->
        Printf.eprintf
          "unknown manager %S (spectr, mm-pow, mm-perf, fs, siso)\n"
          manager_name;
        exit 1
  in
  let config =
    { (Spectr.Scenario.default_config workload) with seed = Int64.of_int seed }
  in
  let trace = Spectr.Scenario.run ~manager config in
  List.iter
    (fun m -> Format.printf "%a@." Spectr.Metrics.pp_phase_metrics m)
    (Spectr.Metrics.per_phase ~trace ~config);
  (match csv_path with
  | Some path ->
      let oc = open_out path in
      output_string oc (Trace.to_csv trace);
      close_out oc;
      Printf.printf "wrote %d rows to %s\n" (Trace.length trace) path
  | None -> ());
  if obs_on then begin
    print_string (Spectr_obs.summary ());
    match obs_jsonl with
    | Some path ->
        let oc = open_out path in
        output_string oc (Spectr_obs.Decision_log.to_jsonl ());
        close_out oc;
        Printf.printf "wrote %d decision(s) to %s\n"
          (Spectr_obs.Decision_log.length ())
          path
    | None -> ()
  end

let scenario_cmd =
  let manager =
    Arg.(
      value & opt string "spectr"
      & info [ "m"; "manager" ] ~doc:"spectr, mm-pow, mm-perf, fs or siso.")
  in
  let bench =
    Arg.(value & opt string "x264" & info [ "b"; "benchmark" ] ~doc:"QoS benchmark.")
  in
  let csv =
    Arg.(
      value & opt (some string) None
      & info [ "csv" ] ~docv:"FILE" ~doc:"Export the full trace as CSV.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Simulation seed.")
  in
  let obs =
    Arg.(
      value & flag
      & info [ "obs" ]
          ~doc:
            "Enable the observability layer and print its summary \
             (counters, latency histograms, decision tallies).")
  in
  let obs_jsonl =
    Arg.(
      value
      & opt (some string) None
      & info [ "obs-jsonl" ] ~docv:"FILE"
          ~doc:
            "Enable the observability layer and export the supervisory \
             decision log as JSONL (one decision per line).  Implies $(b,--obs).")
  in
  Cmd.v
    (Cmd.info "scenario" ~doc:"Run a resource manager through the 3-phase scenario")
    Term.(const scenario $ manager $ bench $ csv $ seed $ obs $ obs_jsonl)

(* ------------------------------------------------------------------ *)
(* list                                                                 *)
(* ------------------------------------------------------------------ *)

let list_all () =
  print_endline "benchmarks:";
  List.iter
    (fun w ->
      Printf.printf "  %-14s max %.1f HB/s, min %.1f HB/s\n" w.Workload.name
        (Perf_model.max_qos_rate w) (Perf_model.min_qos_rate w))
    (Benchmarks.microbench :: Benchmarks.all_qos);
  print_endline "managers: spectr, mm-pow, mm-perf, fs, siso";
  print_endline "subsystems: big-2x2, little-2x2, fs-4x2, large-10x10"

let list_cmd =
  Cmd.v (Cmd.info "list" ~doc:"List benchmarks, managers and subsystems")
    Term.(const list_all $ const ())

(* ------------------------------------------------------------------ *)

let () =
  let info =
    Cmd.info "spectr" ~version:"1.0.0"
      ~doc:"Supervisory control for many-core resource management"
  in
  exit (Cmd.eval (Cmd.group info [ synthesize_cmd; identify_cmd; scenario_cmd; list_cmd ]))
