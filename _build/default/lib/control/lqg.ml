open Spectr_linalg

type gains = {
  label : string;
  model : Statespace.t;
  kx : Matrix.t;
  kz : Matrix.t;
  l : Matrix.t;
  leak : float;
}

type error =
  | Lqr_failed of Lqr.error
  | Kalman_failed of Kalman.error
  | Feedthrough_unsupported
  | Bad_weights of string

let pp_error ppf = function
  | Lqr_failed e -> Format.fprintf ppf "LQR: %a" Lqr.pp_error e
  | Kalman_failed e -> Format.fprintf ppf "Kalman: %a" Kalman.pp_error e
  | Feedthrough_unsupported -> Format.fprintf ppf "model must have D = 0"
  | Bad_weights s -> Format.fprintf ppf "bad weights: %s" s

let design ?q_integrator ?(process_noise = 0.01) ?(measurement_noise = 0.1)
    ~label ~model ~q_y ~r_u () =
  let n = Statespace.order model in
  let m = Statespace.num_inputs model in
  let p = Statespace.num_outputs model in
  if Array.length q_y <> p then Error (Bad_weights "q_y length must be p")
  else if Array.length r_u <> m then Error (Bad_weights "r_u length must be m")
  else if Array.exists (fun x -> x <= 0.) r_u then
    Error (Bad_weights "r_u entries must be positive")
  else if Array.exists (fun x -> x < 0.) q_y then
    Error (Bad_weights "q_y entries must be nonnegative")
  else if Matrix.max_abs model.Statespace.d > 0. then
    Error Feedthrough_unsupported
  else begin
    let q_i =
      match q_integrator with
      | Some qi -> qi
      | None -> Array.map (fun w -> 0.1 *. w) q_y
    in
    if Array.length q_i <> p then Error (Bad_weights "q_integrator length")
    else begin
      let a = model.Statespace.a
      and b = model.Statespace.b
      and c = model.Statespace.c in
      (* Augmented system: x_aug = [x; z], with z⁺ = λz + (r − y).
         λ = 1 gives exact integral action; when the DARE value iteration
         diverges (an integrator direction that is numerically
         unstabilizable — e.g. a near-rank-deficient DC gain), we retry
         with a slightly leaky integrator, trading a sub-percent
         steady-state bias for a bounded cost-to-go. *)
      let design_with_leak leak =
        let a_aug =
          Matrix.block
            [|
              [| a; Matrix.zeros ~rows:n ~cols:p |];
              [| Matrix.neg c; Matrix.scale leak (Matrix.identity p) |];
            |]
        in
        let b_aug = Matrix.vcat b (Matrix.zeros ~rows:p ~cols:m) in
        (* State cost: output deviations plus integrator cost.
           Q_aug = blkdiag(C' Qy C, Qi) with a tiny state regularization
           so Q stays detectable. *)
        let qy = Matrix.diagonal q_y in
        let q_state =
          Matrix.add
            (Matrix.mul (Matrix.transpose c) (Matrix.mul qy c))
            (Matrix.scale 1e-6 (Matrix.identity n))
        in
        let q_aug =
          Matrix.block
            [|
              [| q_state; Matrix.zeros ~rows:n ~cols:p |];
              [| Matrix.zeros ~rows:p ~cols:n; Matrix.diagonal q_i |];
            |]
        in
        let r = Matrix.diagonal r_u in
        Lqr.design ~a:a_aug ~b:b_aug ~q:q_aug ~r
      in
      let rec try_leaks = function
        | [] -> Error (Lqr_failed (Lqr.Riccati_failed
                         (Riccati.Not_converged { iterations = 0; residual = nan })))
        | leak :: rest -> (
            match design_with_leak leak with
            | Error (Lqr.Riccati_failed _) when rest <> [] -> try_leaks rest
            | Error e -> Error (Lqr_failed e)
            | Ok d -> Ok (leak, d))
      in
      match try_leaks [ 1.0; 0.995; 0.98; 0.95 ] with
      | Error _ as e -> e
      | Ok (leak, { Lqr.k; _ }) -> (
          let kx = Matrix.submatrix k ~row:0 ~col:0 ~rows:m ~cols:n in
          let kz = Matrix.submatrix k ~row:0 ~col:n ~rows:m ~cols:p in
          let qw = Matrix.scale process_noise (Matrix.identity n) in
          let rv = Matrix.scale measurement_noise (Matrix.identity p) in
          match Kalman.design ~a ~c ~qw ~rv with
          | Error e -> Error (Kalman_failed e)
          | Ok { l; _ } -> Ok { label; model; kx; kz; l; leak })
    end
  end

let closed_loop_stable g =
  let model = g.model in
  let n = Statespace.order model in
  let p = Statespace.num_outputs model in
  let a = model.Statespace.a and b = model.Statespace.b and c = model.Statespace.c in
  (* Closed loop of the augmented deterministic system under u = -Kx x - Kz z
     (full state information; estimator convergence is checked separately by
     construction of the Kalman gain). *)
  let a_aug =
    Matrix.block
      [|
        [| a; Matrix.zeros ~rows:n ~cols:p |];
        [| Matrix.neg c; Matrix.scale g.leak (Matrix.identity p) |];
      |]
  in
  let b_aug = Matrix.vcat b (Matrix.zeros ~rows:p ~cols:(Matrix.cols b)) in
  let k = Matrix.hcat g.kx g.kz in
  let acl = Lqr.closed_loop_matrix ~a:a_aug ~b:b_aug ~k in
  let sys =
    Statespace.create ~a:acl
      ~b:(Matrix.zeros ~rows:(n + p) ~cols:1)
      ~c:(Matrix.zeros ~rows:1 ~cols:(n + p))
      ()
  in
  Statespace.is_stable sys
