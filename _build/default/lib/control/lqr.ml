open Spectr_linalg

type design = { k : Matrix.t; p : Matrix.t }

type error = Riccati_failed of Riccati.error | Bad_weights of string

let pp_error ppf = function
  | Riccati_failed e -> Format.fprintf ppf "Riccati: %a" Riccati.pp_error e
  | Bad_weights s -> Format.fprintf ppf "bad weights: %s" s

(* Positive-definiteness test by attempting an (unpivoted) Cholesky
   factorization; fails iff some leading minor is non-positive. *)
let is_positive_definite m =
  Matrix.is_symmetric ~tol:1e-9 m
  &&
  let n = Matrix.rows m in
  let l = Array.make_matrix n n 0. in
  let ok = ref true in
  (try
     for i = 0 to n - 1 do
       for j = 0 to i do
         let s = ref (Matrix.get m i j) in
         for k = 0 to j - 1 do
           s := !s -. (l.(i).(k) *. l.(j).(k))
         done;
         if i = j then begin
           if !s <= 0. then raise Exit;
           l.(i).(i) <- sqrt !s
         end
         else l.(i).(j) <- !s /. l.(j).(j)
       done
     done
   with Exit -> ok := false);
  !ok

let design ~a ~b ~q ~r =
  let n = Matrix.rows a and m = Matrix.cols b in
  if Matrix.rows q <> n || Matrix.cols q <> n then
    Error (Bad_weights "Q must be n x n")
  else if Matrix.rows r <> m || Matrix.cols r <> m then
    Error (Bad_weights "R must be m x m")
  else if not (is_positive_definite r) then
    Error (Bad_weights "R must be symmetric positive definite")
  else
    match Riccati.solve ~a ~b ~q ~r () with
    | Error e -> Error (Riccati_failed e)
    | Ok p ->
        let bt = Matrix.transpose b in
        let btpb = Matrix.mul (Matrix.mul bt p) b in
        let btpa = Matrix.mul (Matrix.mul bt p) a in
        let k = Matrix.solve (Matrix.add r btpb) btpa in
        Ok { k; p }

let closed_loop_matrix ~a ~b ~k = Matrix.sub a (Matrix.mul b k)
