lib/control/pid.ml: Float
