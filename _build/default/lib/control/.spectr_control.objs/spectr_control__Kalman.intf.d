lib/control/kalman.mli: Format Matrix Riccati Spectr_linalg
