lib/control/lqr.ml: Array Format Matrix Riccati Spectr_linalg
