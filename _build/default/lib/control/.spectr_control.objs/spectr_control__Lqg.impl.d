lib/control/lqg.ml: Array Format Kalman Lqr Matrix Riccati Spectr_linalg Statespace
