lib/control/kalman.ml: Format Matrix Riccati Spectr_linalg
