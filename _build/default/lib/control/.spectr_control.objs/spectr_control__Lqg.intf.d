lib/control/lqg.mli: Format Kalman Lqr Matrix Spectr_linalg Statespace
