lib/control/mimo.mli: Lqg
