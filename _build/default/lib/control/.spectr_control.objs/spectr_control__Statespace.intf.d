lib/control/statespace.mli: Format Matrix Spectr_linalg
