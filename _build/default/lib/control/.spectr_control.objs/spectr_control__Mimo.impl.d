lib/control/mimo.ml: Array Float Kalman List Lqg Matrix Option Printf Spectr_linalg Statespace
