lib/control/lqr.mli: Format Matrix Riccati Spectr_linalg
