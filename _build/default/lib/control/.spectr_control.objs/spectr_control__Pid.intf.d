lib/control/pid.mli:
