lib/control/statespace.ml: Array Format Matrix Spectr_linalg
