(** LQG tracking-controller design (the paper's low-level MIMO
    controllers).

    The design augments the identified plant with one integrator per
    measured output so that constant references are tracked with zero
    steady-state error:

    {v x⁺ = A x + B u                     (plant, D = 0 required)
   z⁺ = z + (r − y)                   (tracking-error integrators)
   u  = −Kx x̂ − Kz z                  (augmented LQR feedback)
   x̂  ← Kalman estimate from (u, y) v}

    The output-priority weights [q_y] are the paper's Tracking Error Cost
    matrix Q — e.g. 30:1 FPS-over-power for the MM-Perf configuration of
    §2.1 — and [r_u] its Control Effort Cost matrix R — e.g. 2:1
    frequency-over-cores of §5.  A complete set of gains for one
    operating mode is a {!gains} value; the supervisor's gain scheduling
    switches between such values at runtime ({!Mimo.switch_gains}). *)

open Spectr_linalg

type gains = {
  label : string;  (** Mode name, e.g. ["qos"] or ["power"]. *)
  model : Statespace.t;  (** The design model (for the estimator). *)
  kx : Matrix.t;  (** m×n state-feedback gain. *)
  kz : Matrix.t;  (** m×p integrator gain. *)
  l : Matrix.t;  (** n×p Kalman filter gain. *)
  leak : float;
      (** Integrator leak λ ∈ (0, 1]: z⁺ = λz + (r − y).  1 means exact
          integral action; {!design} retries with slightly leaky
          integrators when the exact augmentation makes the Riccati
          value-iteration diverge (numerically unstabilizable integrator
          directions). *)
}

type error =
  | Lqr_failed of Lqr.error
  | Kalman_failed of Kalman.error
  | Feedthrough_unsupported
      (** The design requires D = 0 (standard for identified
          computing-system models: actuation takes effect next period). *)
  | Bad_weights of string

val pp_error : Format.formatter -> error -> unit

val design :
  ?q_integrator:float array ->
  ?process_noise:float ->
  ?measurement_noise:float ->
  label:string ->
  model:Statespace.t ->
  q_y:float array ->
  r_u:float array ->
  unit ->
  (gains, error) result
(** [design ~label ~model ~q_y ~r_u ()] computes one gain set.

    - [q_y]: per-output tracking weights (length p).  The state cost is
      CᵀQyC so that output deviations, not raw states, are penalized.
    - [r_u]: per-input effort weights (length m); all must be > 0.
    - [q_integrator]: per-output integrator weights (default: [q_y]
      scaled by 0.1) — larger values track faster but overshoot more.
    - [process_noise] / [measurement_noise]: scalar covariance levels for
      the Kalman design (defaults 0.01 / 0.1, matching the identified
      models' residual levels). *)

val closed_loop_stable : gains -> bool
(** Check that the augmented closed-loop matrix is (empirically) stable —
    the §6 Step-8 robustness gate. *)
