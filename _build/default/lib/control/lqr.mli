(** Discrete-time Linear–Quadratic Regulator design.

    Minimizes  Σ xᵀQx + uᵀRu  subject to  x⁺ = Ax + Bu, yielding the
    state-feedback law u = −Kx with

    {v K = (R + BᵀPB)⁻¹ BᵀPA v}

    where P solves the DARE ({!Spectr_linalg.Riccati}).  Q is the paper's
    Tracking Error Cost and R its Control Effort Cost (§2.1). *)

open Spectr_linalg

type design = {
  k : Matrix.t;  (** m×n feedback gain. *)
  p : Matrix.t;  (** DARE solution (cost-to-go). *)
}

type error =
  | Riccati_failed of Riccati.error
  | Bad_weights of string
      (** Q/R dimensions wrong, or R not symmetric positive definite
          (checked via a Cholesky-style pivot test). *)

val pp_error : Format.formatter -> error -> unit

val design :
  a:Matrix.t -> b:Matrix.t -> q:Matrix.t -> r:Matrix.t -> (design, error) result

val closed_loop_matrix : a:Matrix.t -> b:Matrix.t -> k:Matrix.t -> Matrix.t
(** A − BK, the closed-loop state matrix (for stability checks). *)
