(** Discrete-time linear state-space models

    {v x(t+1) = A x(t) + B u(t)
   y(t)   = C x(t) + D u(t) v}

    — Equations (1)–(2) of the paper.  These models come from black-box
    system identification ({!Spectr_sysid.Arx}) and are the design input
    to {!Lqr}, {!Kalman} and {!Lqg}. *)

open Spectr_linalg

type t = private {
  a : Matrix.t;  (** n×n state matrix. *)
  b : Matrix.t;  (** n×m input matrix. *)
  c : Matrix.t;  (** p×n output matrix. *)
  d : Matrix.t;  (** p×m feedthrough matrix. *)
}

val create : a:Matrix.t -> b:Matrix.t -> c:Matrix.t -> ?d:Matrix.t -> unit -> t
(** Validates dimensional consistency ([d] defaults to the zero matrix).
    Raises [Invalid_argument] on mismatch. *)

val order : t -> int
(** Number of states n. *)

val num_inputs : t -> int
(** Number of control inputs m. *)

val num_outputs : t -> int
(** Number of measured outputs p. *)

val step : t -> x:Matrix.t -> u:Matrix.t -> Matrix.t * Matrix.t
(** [step sys ~x ~u] is [(x', y)]: the next state and current output.
    [x] is n×1, [u] is m×1. *)

val simulate : t -> ?x0:Matrix.t -> u:Matrix.t array -> unit -> Matrix.t array
(** Output sequence for an input sequence (each u m×1); [x0] defaults to
    the origin. *)

val dc_gain : t -> Matrix.t
(** Steady-state gain [C (I − A)⁻¹ B + D].  Raises [Failure] when
    (I − A) is singular (integrating plant). *)

val spectral_radius_bound : t -> float
(** An easily-computed upper estimate of |λ|max of A via 50 steps of the
    power iteration on a random vector — used in stability sanity checks
    (a value < 1 certifies nothing, but > 1 after many iterations flags a
    clearly unstable model). *)

val is_stable : ?steps:int -> t -> bool
(** Empirical BIBO check: iterate x ← Ax from a set of basis vectors and
    verify the norm does not blow up after [steps] (default 200)
    iterations.  Sound for diagnosable growth; used by design-flow
    robustness checks. *)

val operation_count : t -> int
(** Multiply–add operations for one controller invocation (the matrix
    products of Equations (1) and (2)) — the cost model behind the
    paper's Figure 6. *)

val pp : Format.formatter -> t -> unit
