open Spectr_linalg

type t = { a : Matrix.t; b : Matrix.t; c : Matrix.t; d : Matrix.t }

let create ~a ~b ~c ?d () =
  let n = Matrix.rows a in
  if Matrix.cols a <> n then invalid_arg "Statespace.create: A not square";
  if Matrix.rows b <> n then invalid_arg "Statespace.create: B rows <> n";
  if Matrix.cols c <> n then invalid_arg "Statespace.create: C cols <> n";
  let m = Matrix.cols b and p = Matrix.rows c in
  let d = match d with Some d -> d | None -> Matrix.zeros ~rows:p ~cols:m in
  if Matrix.rows d <> p || Matrix.cols d <> m then
    invalid_arg "Statespace.create: D not p x m";
  { a; b; c; d }

let order sys = Matrix.rows sys.a
let num_inputs sys = Matrix.cols sys.b
let num_outputs sys = Matrix.rows sys.c

let step sys ~x ~u =
  let x' = Matrix.add (Matrix.mul sys.a x) (Matrix.mul sys.b u) in
  let y = Matrix.add (Matrix.mul sys.c x) (Matrix.mul sys.d u) in
  (x', y)

let simulate sys ?x0 ~u () =
  let x0 =
    match x0 with Some x -> x | None -> Matrix.zeros ~rows:(order sys) ~cols:1
  in
  let x = ref x0 in
  Array.map
    (fun ut ->
      let x', y = step sys ~x:!x ~u:ut in
      x := x';
      y)
    u

let dc_gain sys =
  let n = order sys in
  let i_minus_a = Matrix.sub (Matrix.identity n) sys.a in
  Matrix.add (Matrix.mul sys.c (Matrix.solve i_minus_a sys.b)) sys.d

let spectral_radius_bound sys =
  let n = order sys in
  (* deterministic "random" start vector *)
  let v = ref (Matrix.init ~rows:n ~cols:1 (fun i _ -> 1. +. (0.1 *. float_of_int i))) in
  let radius = ref 0. in
  for _ = 1 to 50 do
    let w = Matrix.mul sys.a !v in
    let nw = Matrix.frobenius_norm w in
    let nv = Matrix.frobenius_norm !v in
    if nv > 0. && nw > 0. then begin
      radius := nw /. nv;
      v := Matrix.scale (1. /. nw) w
    end
  done;
  !radius

let is_stable ?(steps = 200) sys =
  let n = order sys in
  let ok = ref true in
  for k = 0 to n - 1 do
    let x = ref (Matrix.init ~rows:n ~cols:1 (fun i _ -> if i = k then 1. else 0.)) in
    for _ = 1 to steps do
      x := Matrix.mul sys.a !x
    done;
    if Matrix.frobenius_norm !x > 1e3 then ok := false
  done;
  !ok

let operation_count sys =
  let n = order sys and m = num_inputs sys and p = num_outputs sys in
  (* x' = Ax + Bu : n*n + n*m multiply-adds;  y = Cx + Du : p*n + p*m. *)
  (n * n) + (n * m) + (p * n) + (p * m)

let pp ppf sys =
  Format.fprintf ppf "state-space: n=%d, m=%d, p=%d" (order sys)
    (num_inputs sys) (num_outputs sys)
