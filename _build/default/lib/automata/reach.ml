let accessible_indices a =
  let n = Automaton.num_states a in
  let seen = Array.make n false in
  let queue = Queue.create () in
  seen.(Automaton.initial_index a) <- true;
  Queue.push (Automaton.initial_index a) queue;
  (* forward adjacency *)
  let succ = Array.make n [] in
  Automaton.fold_transitions
    (fun s _ d () -> succ.(s) <- d :: succ.(s))
    a ();
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    List.iter
      (fun j ->
        if not seen.(j) then begin
          seen.(j) <- true;
          Queue.push j queue
        end)
      succ.(i)
  done;
  seen

let coaccessible_indices a =
  let n = Automaton.num_states a in
  let seen = Array.make n false in
  let queue = Queue.create () in
  let pred = Array.make n [] in
  Automaton.fold_transitions
    (fun s _ d () -> pred.(d) <- s :: pred.(d))
    a ();
  for i = 0 to n - 1 do
    if Automaton.is_marked_index a i then begin
      seen.(i) <- true;
      Queue.push i queue
    end
  done;
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    List.iter
      (fun j ->
        if not seen.(j) then begin
          seen.(j) <- true;
          Queue.push j queue
        end)
      pred.(i)
  done;
  seen

let restrict a flags =
  Automaton.restrict_states a ~keep:(fun s ->
      flags.(Automaton.index_of_state a s))

let accessible a =
  match restrict a (accessible_indices a) with
  | Some a' -> a'
  | None -> assert false (* the initial state is always accessible *)

let coaccessible a = restrict a (coaccessible_indices a)

(* Removing blocking states can strand states that were only reachable or
   coaccessible through them, so iterate to a fixpoint. *)
let rec trim a =
  let acc = accessible_indices a in
  let coacc = coaccessible_indices a in
  let both = Array.map2 ( && ) acc coacc in
  match restrict a both with
  | None -> None
  | Some a' ->
      if Automaton.num_states a' = Automaton.num_states a then Some a'
      else trim a'

let is_trim a =
  let acc = accessible_indices a in
  let coacc = coaccessible_indices a in
  let ok = ref true in
  Array.iteri (fun i x -> if not (x && coacc.(i)) then ok := false) acc;
  !ok
