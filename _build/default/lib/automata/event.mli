(** Events of a discrete-event system.

    Following Ramadge–Wonham supervisory control theory, every event is
    either {e controllable} (the supervisor may disable it — e.g. a
    gain-switch command) or {e uncontrollable} (generated spontaneously by
    the plant — e.g. a power-budget violation).  Events are identified by
    name; two events with equal names are the same event and must agree on
    controllability. *)

type t = private { name : string; controllable : bool }

val controllable : string -> t
(** A controllable event. *)

val uncontrollable : string -> t
(** An uncontrollable event. *)

val name : t -> string
val is_controllable : t -> bool

val compare : t -> t -> int
(** Total order by name.  Raises [Invalid_argument] when two events share
    a name but disagree on controllability — that is always a modelling
    bug worth failing loudly on. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
(** Prints [name] followed by [!] for uncontrollable events, matching the
    convention of SCT textbooks. *)

module Set : Set.S with type elt = t
module Map : Map.S with type key = t

val set_of_list : t list -> Set.t
