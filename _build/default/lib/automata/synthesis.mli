(** Ramadge–Wonham supervisor synthesis (the "Synthesis" box of Fig. 11).

    Given a plant model [G] and an intended-behaviour specification [E],
    {!supcon} computes the {e supremal controllable and non-blocking}
    sub-behaviour of [G ‖ E]: the least restrictive supervisor that
    - never disables an uncontrollable event the plant can generate
      (controllability, §4.3.4),
    - never paints the system into a corner from which no marked state is
      reachable (non-blocking),
    - never enters a forbidden (✗) state of the specification.

    The algorithm is the classical fixpoint of the paper's §4.3.4: the
    trimming pass and the uncontrollable-state extension pass "must be run
    successively and iteratively, until they return the same result". *)

type stats = {
  product_states : int;  (** Reachable states of G ‖ E before pruning. *)
  removed_uncontrollable : int;
      (** States removed because an uncontrollable plant event escaped the
          good region. *)
  removed_blocking : int;  (** States removed by trimming passes. *)
  removed_forbidden : int;  (** Forbidden states removed up front. *)
  iterations : int;  (** Fixpoint rounds until stable. *)
}

val pp_stats : Format.formatter -> stats -> unit

type error =
  | Empty_supervisor
      (** The initial state itself is uncontrollably bad: no supervisor
          satisfying the specification exists. *)

val supcon :
  plant:Automaton.t ->
  spec:Automaton.t ->
  (Automaton.t * stats, error) result
(** [supcon ~plant ~spec] synthesizes the supervisor.  Product states are
    named ["qG.qE"] as in Fig. 12d.  The returned automaton is both the
    supervisor realization and the closed-loop behaviour (standard for
    state-feedback RW supervisors); it is guaranteed controllable w.r.t.
    [plant], non-blocking and trim — properties re-checked by
    {!Verify.controllable} and {!Verify.nonblocking} in the test-suite. *)

val supcon_exn : plant:Automaton.t -> spec:Automaton.t -> Automaton.t
(** Like {!supcon} but raising [Failure] on an empty result and dropping
    the statistics; convenient in examples. *)
