(** Property checks of §4.3.4: non-blocking and controllability.

    These are the two checks the Supremica tool runs on a synthesized
    supervisor before it is allowed onto the platform; {!Synthesis.supcon}
    produces supervisors for which both hold by construction, and the
    test-suite re-verifies that. *)

type blocking_witness = {
  state : string;  (** An accessible state that cannot reach a marked state. *)
}

val nonblocking : Automaton.t -> (unit, blocking_witness) result
(** Non-blocking: every accessible state is coaccessible, i.e. some
    accepted ("ideal") state remains reachable whatever happened so far. *)

val is_nonblocking : Automaton.t -> bool

type controllability_witness = {
  supervisor_state : string;
  plant_state : string;
  event : Event.t;  (** Uncontrollable event the supervisor tries to disable. *)
}

val controllable :
  plant:Automaton.t ->
  supervisor:Automaton.t ->
  (unit, controllability_witness) result
(** Controllability of [supervisor] (as a language over the plant's
    alphabet) w.r.t. [plant]: at every jointly-reachable state pair, every
    uncontrollable event the plant enables must also be enabled by the
    supervisor.  Uncontrollable events outside the supervisor's alphabet
    are implicitly always enabled (standard lifting). *)

val is_controllable : plant:Automaton.t -> supervisor:Automaton.t -> bool

val closed_loop : plant:Automaton.t -> supervisor:Automaton.t -> Automaton.t
(** The controlled system S ‖ G — what actually executes at runtime. *)
