lib/automata/compose.mli: Automaton
