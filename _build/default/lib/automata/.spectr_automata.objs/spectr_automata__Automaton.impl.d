lib/automata/automaton.ml: Array Event Format Hashtbl List Option Printf Queue
