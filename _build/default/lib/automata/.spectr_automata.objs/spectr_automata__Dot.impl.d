lib/automata/dot.ml: Automaton Buffer Event Fun List Printf String
