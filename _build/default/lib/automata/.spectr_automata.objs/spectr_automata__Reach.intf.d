lib/automata/reach.mli: Automaton
