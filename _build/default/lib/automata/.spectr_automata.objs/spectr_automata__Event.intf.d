lib/automata/event.mli: Format Map Set
