lib/automata/verify.ml: Array Automaton Compose Event Hashtbl Option Queue Reach Result
