lib/automata/verify.mli: Automaton Event
