lib/automata/compose.ml: Automaton Event Hashtbl List Option Queue
