lib/automata/synthesis.ml: Array Automaton Event Format Hashtbl List Option Queue Reach
