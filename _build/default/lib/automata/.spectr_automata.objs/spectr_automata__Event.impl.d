lib/automata/event.ml: Format Map Printf Set String
