lib/automata/synthesis.mli: Automaton Format
