lib/automata/automaton.mli: Event Format
