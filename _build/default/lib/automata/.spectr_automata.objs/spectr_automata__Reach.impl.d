lib/automata/reach.ml: Array Automaton List Queue
