type t = { name : string; controllable : bool }

let controllable name = { name; controllable = true }
let uncontrollable name = { name; controllable = false }
let name e = e.name
let is_controllable e = e.controllable

let compare a b =
  let c = String.compare a.name b.name in
  if c = 0 && a.controllable <> b.controllable then
    invalid_arg
      (Printf.sprintf "Event.compare: %S has inconsistent controllability"
         a.name)
  else c

let equal a b = compare a b = 0

let pp ppf e =
  if e.controllable then Format.pp_print_string ppf e.name
  else Format.fprintf ppf "%s!" e.name

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)

let set_of_list l = Set.of_list l
