type blocking_witness = { state : string }

let nonblocking a =
  let acc = Reach.accessible_indices a in
  let coacc = Reach.coaccessible_indices a in
  let witness = ref None in
  Array.iteri
    (fun i reachable ->
      if reachable && (not coacc.(i)) && !witness = None then
        witness := Some { state = Automaton.state_of_index a i })
    acc;
  match !witness with None -> Ok () | Some w -> Error w

let is_nonblocking a = Result.is_ok (nonblocking a)

type controllability_witness = {
  supervisor_state : string;
  plant_state : string;
  event : Event.t;
}

(* Walk the reachable product of supervisor and plant; at each pair check
   that every uncontrollable plant-enabled event (that the supervisor's
   alphabet contains) is supervisor-enabled. *)
let controllable ~plant ~supervisor =
  let sigma_s = Automaton.alphabet supervisor in
  let sigma_g = Automaton.alphabet plant in
  let alphabet = Event.Set.union sigma_s sigma_g in
  let seen = Hashtbl.create 64 in
  let queue = Queue.create () in
  let start = (Automaton.initial_index supervisor, Automaton.initial_index plant) in
  Hashtbl.add seen start ();
  Queue.push start queue;
  let witness = ref None in
  while !witness = None && not (Queue.is_empty queue) do
    let is_, ig = Queue.pop queue in
    Event.Set.iter
      (fun e ->
        if !witness = None then begin
          let in_s = Event.Set.mem e sigma_s in
          let in_g = Event.Set.mem e sigma_g in
          let s_step = if in_s then Automaton.step_index supervisor is_ e else None in
          let g_step = if in_g then Automaton.step_index plant ig e else None in
          (* controllability violation: plant enables an uncontrollable
             event the supervisor's alphabet contains but disables here *)
          if
            in_g && in_s && g_step <> None && s_step = None
            && not (Event.is_controllable e)
          then
            witness :=
              Some
                {
                  supervisor_state = Automaton.state_of_index supervisor is_;
                  plant_state = Automaton.state_of_index plant ig;
                  event = e;
                }
          else begin
            let next =
              match (in_s, in_g) with
              | true, true -> (
                  match (s_step, g_step) with
                  | Some js, Some jg -> Some (js, jg)
                  | _ -> None)
              | true, false -> Option.map (fun js -> (js, ig)) s_step
              | false, true -> Option.map (fun jg -> (is_, jg)) g_step
              | false, false -> None
            in
            match next with
            | Some p when not (Hashtbl.mem seen p) ->
                Hashtbl.add seen p ();
                Queue.push p queue
            | _ -> ()
          end
        end)
      alphabet
  done;
  match !witness with None -> Ok () | Some w -> Error w

let is_controllable ~plant ~supervisor =
  Result.is_ok (controllable ~plant ~supervisor)

let closed_loop ~plant ~supervisor = Compose.pair supervisor plant
