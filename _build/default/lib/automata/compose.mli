(** Synchronous composition of automata (the ‖ operator of §4.3.1).

    Common events synchronize; private events interleave.  Only the
    reachable part of the product is constructed, so composing many small
    sub-plants stays tractable — this is the modular-decomposition lever
    the paper relies on for scalability. *)

val pair : Automaton.t -> Automaton.t -> Automaton.t
(** [pair a b] is A ‖ B.  Product states are named ["qa.qb"], matching the
    paper's Figure 12b.  A product state is marked iff both components are
    marked, and forbidden iff either component is forbidden.  The alphabet
    is Σ_A ∪ Σ_B. *)

val all : Automaton.t list -> Automaton.t
(** Left fold of {!pair}.  Raises [Invalid_argument] on the empty list. *)
