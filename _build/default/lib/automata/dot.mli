(** Graphviz export, for visualizing plants, specifications and
    synthesized supervisors (the figures of the paper's Fig. 12 were
    rendered from equivalent exports of the Supremica tool). *)

val to_dot : Automaton.t -> string
(** A [digraph] in DOT syntax.  Marked (accepted) states are drawn as
    double circles, forbidden states as red boxes, the initial state gets
    an incoming arrow from a point node; uncontrollable events are
    suffixed with [!]. *)

val write_file : Automaton.t -> path:string -> unit
(** Write {!to_dot} output to [path]. *)
