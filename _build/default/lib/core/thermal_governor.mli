(** Temperature-driven power-envelope governor.

    The paper's Emergency phase "emulat[es] a thermal emergency" by
    scripting a power-envelope drop.  This module closes that loop: it
    watches the die-temperature sensor and derives the envelope the
    resource managers receive — TDP normally, the emergency envelope
    after the trip point, with hysteresis on release (a two-point
    thermostat, the simplest sound policy and the one Linux's thermal
    zones implement).

    The governor is deliberately outside the supervisor: in the SPECTR
    architecture the envelope is a {e system goal input} ("Variable Goals
    and Policies", Fig. 9), produced by firmware or the OS thermal
    subsystem, and every manager — supervised or not — receives the same
    goal. *)

type t

val create :
  ?trip_c:float ->
  ?release_c:float ->
  tdp:float ->
  emergency_envelope:float ->
  unit ->
  t
(** Defaults: trip 70 °C, release 62 °C.  Raises [Invalid_argument] when
    [release_c >= trip_c] or the emergency envelope is not below the
    TDP. *)

val envelope : t -> temperature_c:float -> float
(** Current power envelope given the latest temperature reading.
    Stateful: once tripped, stays at the emergency envelope until the
    temperature falls below the release point. *)

val tripped : t -> bool
