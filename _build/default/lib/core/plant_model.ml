open Spectr_automata

let qos_management =
  Automaton.create ~marked:[ "Eval" ] ~name:"QoSManagement" ~initial:"Eval"
    ~transitions:
      [
        (* QoS observations *)
        ("Eval", Events.qos_not_met, "Raise");
        ("Eval", Events.power_safe_qos_not_met, "Raise");
        ("Eval", Events.qos_met, "Lower");
        ("Eval", Events.power_safe_qos_met, "Lower");
        (* budget reactions; holdBudget is the do-nothing fallback the
           supervisor uses when budget moves are disabled (capped mode)
           or inappropriate.  It must stay private to this sub-plant. *)
        ("Raise", Events.increase_big_power, "Eval");
        ("Raise", Events.increase_little_power, "Eval");
        ("Raise", Events.hold_budget, "Eval");
        ("Lower", Events.decrease_big_power, "Eval");
        ("Lower", Events.decrease_little_power, "Eval");
        ("Lower", Events.hold_budget, "Eval");
      ]
    ()

let power_capping =
  Automaton.create ~marked:[ "Safe" ] ~name:"PowerCapping" ~initial:"Safe"
    ~transitions:
      [
        ("Safe", Events.below_target, "Safe");
        ("Safe", Events.safe_power, "Safe");
        ("Safe", Events.above_target, "Watch");
        ("Safe", Events.critical, "Emergency");
        (* Inside the capping band: tighten budgets, stay vigilant. *)
        ("Watch", Events.control_power, "Safe");
        ("Watch", Events.critical, "Emergency");
        (* Budget violated: the gain switch takes effect within one
           control period. *)
        ("Emergency", Events.switch_power, "Capped");
        (* While capped: a renewed violation demands a deeper cut, after
           which the system is assumed sub-critical (Cooling). *)
        ("Capped", Events.above_target, "Capped");
        ("Capped", Events.critical, "StillHot");
        ("Capped", Events.safe_power, "Restore");
        ("StillHot", Events.decrease_critical_power, "Cooling");
        ("Cooling", Events.above_target, "Cooling");
        ("Cooling", Events.safe_power, "Restore");
        ("Restore", Events.switch_qos, "Safe");
      ]
    ()

let composed () = Compose.pair qos_management power_capping
