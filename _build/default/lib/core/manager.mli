(** Common interface for runtime resource managers.

    A manager owns its leaf controllers (and, for SPECTR, the
    supervisor); the {!Scenario} driver invokes {!step} once per
    controller period with the fresh sensor observation, the current QoS
    reference and the current power envelope (both of which may change
    between phases), and the manager applies its actuation decisions to
    the SoC. *)

open Spectr_platform

type t = {
  name : string;
      (** Display name: ["SPECTR"], ["MM-Pow"], ["MM-Perf"], ["FS"]. *)
  step :
    now:float ->
    qos_ref:float ->
    envelope:float ->
    obs:Soc.observation ->
    Soc.t ->
    unit;
}

val apply_cluster :
  Soc.t -> Soc.cluster -> freq_ghz:float -> cores:float -> unit
(** Helper shared by all managers: quantize and apply a (frequency GHz,
    core count) command pair to one cluster. *)
