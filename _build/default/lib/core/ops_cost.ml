let inputs_outputs ~cores = (2 * cores, 2 * cores)

let check ~cores ~order =
  if cores <= 0 then invalid_arg "Ops_cost: cores <= 0";
  if order <= 0 then invalid_arg "Ops_cost: order <= 0"

let invocation_ops ~cores ~order =
  check ~cores ~order;
  let m, p = inputs_outputs ~cores in
  let rows = m + order and cols = p + order in
  (* x' = A x + B u ; y = C x + D u *)
  (rows * cols) + (rows * m) + (p * cols) + (p * m)

let paper_curve ~cores ~order =
  check ~cores ~order;
  let n = float_of_int ((2 * cores) + order) in
  n ** 4.
