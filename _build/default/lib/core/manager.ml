open Spectr_platform

type t = {
  name : string;
  step :
    now:float ->
    qos_ref:float ->
    envelope:float ->
    obs:Soc.observation ->
    Soc.t ->
    unit;
}

let apply_cluster soc cluster ~freq_ghz ~cores =
  ignore (Soc.set_frequency soc cluster (freq_ghz *. 1000.));
  Soc.set_active_cores soc cluster (int_of_float (Float.round cores))
