type t = {
  trip_c : float;
  release_c : float;
  tdp : float;
  emergency_envelope : float;
  mutable is_tripped : bool;
}

let create ?(trip_c = 70.) ?(release_c = 62.) ~tdp ~emergency_envelope () =
  if release_c >= trip_c then
    invalid_arg "Thermal_governor.create: release_c >= trip_c";
  if emergency_envelope >= tdp then
    invalid_arg "Thermal_governor.create: emergency envelope >= TDP";
  { trip_c; release_c; tdp; emergency_envelope; is_tripped = false }

let envelope t ~temperature_c =
  if t.is_tripped then begin
    if temperature_c < t.release_c then t.is_tripped <- false
  end
  else if temperature_c > t.trip_c then t.is_tripped <- true;
  if t.is_tripped then t.emergency_envelope else t.tdp

let tripped t = t.is_tripped
