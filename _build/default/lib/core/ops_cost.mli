(** Analytic controller-cost model behind Figure 6.

    Scaling a single MIMO to [c] cores duplicates its control inputs and
    measured outputs per core (§2.3: "our 2×2 MIMO would turn into a 4×4
    MIMO"), so m = p = 2c.  The paper sizes the A matrix as
    (#inputs + order) × (#outputs + order) — 4×4 for a second-order 2×2
    MIMO, 6×6 for the fourth-order model, 7×6 with a third actuator.

    Two counts are provided:

    - {!invocation_ops} — multiply–adds of one controller invocation
      (the matrix–vector products of Equations (1)–(2)); grows
      quadratically with core count;
    - {!paper_curve} — the count Figure 6 plots, which matches the
      square of the A-matrix entry count ((2c+o)⁴): the cost of the
      matrix–matrix products in the controller's internal covariance /
      Riccati updates.  This reproduces the figure's magnitudes
      (10² → ≈10⁹ over 2–70 cores) and both of its qualitative claims —
      growth is superlinear in core count, and the model order becomes
      insignificant once #cores ≫ order. *)

val inputs_outputs : cores:int -> int * int
(** (m, p) = (2c, 2c). *)

val invocation_ops : cores:int -> order:int -> int
(** Multiply–adds per invocation of Equations (1)–(2).  Raises
    [Invalid_argument] on non-positive arguments. *)

val paper_curve : cores:int -> order:int -> float
(** The Figure-6 series: ((2c + order)²)². *)
