open Spectr_automata

let three_band =
  Automaton.create ~marked:[ "Uncapped" ] ~forbidden:[ "Threshold" ]
    ~name:"ThreeBandCapping" ~initial:"Uncapped"
    ~transitions:
      [
        (* Normal operation: budget moves allowed. *)
        ("Uncapped", Events.increase_big_power, "Uncapped");
        ("Uncapped", Events.increase_little_power, "Uncapped");
        ("Uncapped", Events.decrease_big_power, "Uncapped");
        ("Uncapped", Events.decrease_little_power, "Uncapped");
        ("Uncapped", Events.control_power, "Uncapped");
        ("Uncapped", Events.safe_power, "Uncapped");
        ("Uncapped", Events.critical, "C1");
        (* Consecutive-violation counter: mitigation must complete before
           the third critical interval. *)
        ("C1", Events.switch_power, "Capped");
        ("C1", Events.critical, "C2");
        ("C2", Events.switch_power, "Capped");
        ("C2", Events.critical, "Threshold");
        (* Capped mode: budget increases are explicitly forbidden (they
           lead to the forbidden state, so synthesis must disable them);
           cuts and bookkeeping only. *)
        ("Capped", Events.increase_big_power, "Threshold");
        ("Capped", Events.increase_little_power, "Threshold");
        ("Capped", Events.decrease_big_power, "Capped");
        ("Capped", Events.decrease_little_power, "Capped");
        ("Capped", Events.decrease_critical_power, "Capped");
        ("Capped", Events.control_power, "Capped");
        ("Capped", Events.critical, "CapHot");
        ("Capped", Events.safe_power, "CapSafe");
        ("CapHot", Events.decrease_critical_power, "Capped");
        ("CapHot", Events.control_power, "CapHot");
        ("CapHot", Events.critical, "Threshold");
        ("CapSafe", Events.switch_qos, "Uncapped");
      ]
    ()
