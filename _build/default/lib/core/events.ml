open Spectr_automata

let critical = Event.uncontrollable "critical"
let above_target = Event.uncontrollable "aboveTarget"
let below_target = Event.uncontrollable "belowTarget"
let safe_power = Event.uncontrollable "safePower"
let qos_met = Event.uncontrollable "QoSmet"
let qos_not_met = Event.uncontrollable "QoSnotMet"
let power_safe_qos_met = Event.uncontrollable "powerSafeQoSMet"
let power_safe_qos_not_met = Event.uncontrollable "powerSafeQoSNotMet"
let switch_power = Event.controllable "switchPower"
let switch_qos = Event.controllable "switchQoS"
let increase_big_power = Event.controllable "increaseBigPower"
let decrease_big_power = Event.controllable "decreaseBigPower"
let increase_little_power = Event.controllable "increaseLittlePower"
let decrease_little_power = Event.controllable "decreaseLittlePower"
let decrease_critical_power = Event.controllable "decreaseCriticalPower"
let control_power = Event.controllable "controlPower"
let hold_budget = Event.controllable "holdBudget"

let all =
  [
    critical;
    above_target;
    below_target;
    safe_power;
    qos_met;
    qos_not_met;
    power_safe_qos_met;
    power_safe_qos_not_met;
    switch_power;
    switch_qos;
    increase_big_power;
    decrease_big_power;
    increase_little_power;
    decrease_little_power;
    decrease_critical_power;
    control_power;
    hold_budget;
  ]

let by_name name = List.find_opt (fun e -> Event.name e = name) all
