open Spectr_control
open Spectr_platform

let design_or_fail ident goals =
  match Design_flow.design_gains ident goals with
  | Ok gains -> gains
  | Error msg -> failwith ("Spectr_manager: " ^ msg)

let make ?(seed = 17L) ?(supervisor_divisor = 2) ?(gain_scheduling = true) () =
  if supervisor_divisor < 1 then
    invalid_arg "Spectr_manager.make: supervisor_divisor < 1";
  let ident_big = Design_flow.identify ~seed Design_flow.Big_2x2 in
  let ident_little = Design_flow.identify ~seed Design_flow.Little_2x2 in
  let goals =
    [
      { Design_flow.label = "qos"; q_y = Mm.qos_weights };
      { Design_flow.label = "power"; q_y = Mm.power_weights };
    ]
  in
  let big =
    Design_flow.build_mimo ident_big
      ~gains:(design_or_fail ident_big goals)
      ~initial:"qos" ~refs:[| 60.; 4. |]
  in
  (* In QoS mode the Little cluster is kept moderately fast so it can
     absorb background interference; in power mode the gain switch makes
     its power budget the pinned objective. *)
  let little =
    Design_flow.build_mimo ident_little
      ~gains:(design_or_fail ident_little goals)
      ~initial:"qos"
      ~refs:[| 2.0; 0.3 |]
  in
  let commands =
    {
      Supervisor.switch_gains =
        (fun label ->
          if gain_scheduling then begin
            Mimo.switch_gains big label;
            Mimo.switch_gains little label
          end);
      set_big_power_ref = (fun v -> Mimo.set_reference big ~index:1 v);
      set_little_power_ref = (fun v -> Mimo.set_reference little ~index:1 v);
    }
  in
  let sup = Supervisor.create ~commands ~envelope:5.0 () in
  let tick = ref 0 in
  let step ~now:_ ~qos_ref ~envelope ~obs soc =
    Mimo.set_reference big ~index:0 qos_ref;
    (* Supervisor period: every [supervisor_divisor] controller periods. *)
    if !tick mod supervisor_divisor = 0 then
      Supervisor.step sup ~qos:obs.Soc.qos_rate ~qos_ref
        ~power:obs.Soc.chip_power ~envelope;
    incr tick;
    let u_big =
      Mimo.step big ~measured:[| obs.Soc.qos_rate; obs.Soc.big_power |]
    in
    Manager.apply_cluster soc Soc.Big ~freq_ghz:u_big.(0) ~cores:u_big.(1);
    let u_little =
      Mimo.step little
        ~measured:[| obs.Soc.little_ips /. 1e9; obs.Soc.little_power |]
    in
    Manager.apply_cluster soc Soc.Little ~freq_ghz:u_little.(0)
      ~cores:u_little.(1)
  in
  ({ Manager.name = "SPECTR"; step }, sup)
