(** SISO baseline (Row C of Table 1): uncoordinated single-input
    single-output PID loops.

    Three independent loops, each pre-verified in isolation but with no
    knowledge of each other (§2.1's "controllers may behave non-optimally
    … without knowledge of the presence or behavior of seemingly
    orthogonal controllers"):

    - QoS → Big frequency (fast loop),
    - Big power → Big active cores (slow loop, tracking the budget),
    - Little power → Little frequency.

    The QoS and power loops share the plant: when QoS is met below
    budget the power loop keeps adding cores (wasting energy) while the
    QoS loop compensates by dropping frequency — the conflicting
    actuation SPECTR's supervisor exists to prevent. *)

val make : ?seed:int64 -> unit -> Manager.t
(** The seed is accepted for interface uniformity; the PID gains are
    fixed (hand-tuned as in the SISO literature, no identification
    needed — one of the approach's genuine advantages). *)
