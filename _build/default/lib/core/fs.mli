(** The single full-system controller baseline of §5: one 4×2 MIMO with
    individual control inputs for each cluster, power-oriented gains, and
    (chip power, QoS) as measured outputs — "a representative for [Zhang
    & Hoffmann ASPLOS'16], maximizing performance under a power cap".

    Its larger state space is what produces the sluggish Emergency-phase
    settling the paper reports (2.07 s vs SPECTR's 1.28 s, §5.1.1). *)

val make : ?seed:int64 -> unit -> Manager.t
