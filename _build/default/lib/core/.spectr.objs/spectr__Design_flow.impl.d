lib/core/design_flow.ml: Array Arx Benchmarks Dataset Excitation Float Format Guardband Int64 List Lqg Mimo Printf Soc Spectr_control Spectr_linalg Spectr_platform Spectr_sysid Statespace Validation
