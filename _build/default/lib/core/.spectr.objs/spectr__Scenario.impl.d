lib/core/scenario.ml: Float Heartbeats List Manager Perf_model Soc Spectr_platform Trace Workload
