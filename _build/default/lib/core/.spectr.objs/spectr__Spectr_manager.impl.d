lib/core/spectr_manager.ml: Array Design_flow Manager Mimo Mm Soc Spectr_control Spectr_platform Supervisor
