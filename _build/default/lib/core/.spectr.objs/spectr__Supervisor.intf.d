lib/core/supervisor.mli: Automaton Spectr_automata Synthesis
