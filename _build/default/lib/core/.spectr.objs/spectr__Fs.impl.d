lib/core/fs.ml: Array Design_flow Manager Mimo Soc Spectr_control Spectr_platform
