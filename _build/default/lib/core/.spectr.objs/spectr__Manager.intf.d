lib/core/manager.mli: Soc Spectr_platform
