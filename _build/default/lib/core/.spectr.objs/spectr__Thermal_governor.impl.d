lib/core/thermal_governor.ml:
