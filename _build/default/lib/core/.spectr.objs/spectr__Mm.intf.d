lib/core/mm.mli: Manager
