lib/core/plant_model.ml: Automaton Compose Events Spectr_automata
