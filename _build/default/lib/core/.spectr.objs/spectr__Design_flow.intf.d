lib/core/design_flow.mli: Arx Dataset Lqg Mimo Spectr_control Spectr_sysid Statespace Validation
