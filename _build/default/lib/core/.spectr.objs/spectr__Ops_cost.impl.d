lib/core/ops_cost.ml:
