lib/core/supervisor.ml: Automaton Event Events Float List Option Plant_model Spec Spectr_automata Synthesis Verify
