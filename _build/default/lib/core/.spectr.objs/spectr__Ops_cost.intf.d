lib/core/ops_cost.mli:
