lib/core/events.ml: Event List Spectr_automata
