lib/core/spec.mli: Automaton Spectr_automata
