lib/core/events.mli: Event Spectr_automata
