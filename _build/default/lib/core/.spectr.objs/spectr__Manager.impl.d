lib/core/manager.ml: Float Soc Spectr_platform
