lib/core/fs.mli: Manager
