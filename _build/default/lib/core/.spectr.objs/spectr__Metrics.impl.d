lib/core/metrics.ml: Array Format List Printf Scenario Spectr_linalg Spectr_platform Stats Trace
