lib/core/metrics.mli: Format Scenario Spectr_platform Trace
