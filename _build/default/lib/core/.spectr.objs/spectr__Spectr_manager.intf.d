lib/core/spectr_manager.mli: Manager Supervisor
