lib/core/siso.ml: Float Manager Mm Pid Soc Spectr_control Spectr_platform
