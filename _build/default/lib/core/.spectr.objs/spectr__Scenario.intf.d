lib/core/scenario.mli: Manager Spectr_platform Trace Workload
