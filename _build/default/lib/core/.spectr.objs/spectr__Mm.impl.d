lib/core/mm.ml: Array Design_flow Float Manager Mimo Soc Spectr_control Spectr_platform
