lib/core/plant_model.mli: Automaton Spectr_automata
