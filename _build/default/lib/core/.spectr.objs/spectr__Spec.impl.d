lib/core/spec.ml: Automaton Events Spectr_automata
