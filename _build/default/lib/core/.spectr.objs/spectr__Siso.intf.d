lib/core/siso.mli: Manager
