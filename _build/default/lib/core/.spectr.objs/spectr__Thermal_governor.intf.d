lib/core/thermal_governor.mli:
