lib/platform/trace.mli:
