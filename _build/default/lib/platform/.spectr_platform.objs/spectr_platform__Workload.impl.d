lib/platform/workload.ml: List
