lib/platform/power_model.mli: Opp
