lib/platform/trace.ml: Array Buffer List Printf String
