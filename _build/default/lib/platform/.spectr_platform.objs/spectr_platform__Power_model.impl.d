lib/platform/power_model.ml: Opp
