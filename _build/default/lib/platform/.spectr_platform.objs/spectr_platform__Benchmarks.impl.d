lib/platform/benchmarks.ml: List Workload
