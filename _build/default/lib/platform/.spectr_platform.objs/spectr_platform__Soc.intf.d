lib/platform/soc.mli: Workload
