lib/platform/opp.mli:
