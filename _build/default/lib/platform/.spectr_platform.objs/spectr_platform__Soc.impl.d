lib/platform/soc.ml: Array Float Opp Perf_model Power_model Prng Spectr_linalg Workload
