lib/platform/perf_model.ml: Float Opp Workload
