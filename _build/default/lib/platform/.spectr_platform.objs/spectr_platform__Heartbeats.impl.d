lib/platform/heartbeats.ml: List
