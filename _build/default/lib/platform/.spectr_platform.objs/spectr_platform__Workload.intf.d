lib/platform/workload.mli:
