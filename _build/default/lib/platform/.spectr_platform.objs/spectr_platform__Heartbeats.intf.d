lib/platform/heartbeats.mli:
