lib/platform/perf_model.mli: Workload
