lib/platform/opp.ml: Array List Printf
