lib/platform/benchmarks.mli: Workload
