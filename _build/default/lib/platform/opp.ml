type t = { name : string; freqs_mhz : int array; volts : float array }

let create ~name ~points =
  if points = [] then invalid_arg "Opp.create: empty table";
  let freqs = Array.of_list (List.map fst points) in
  let volts = Array.of_list (List.map snd points) in
  Array.iteri
    (fun i f ->
      if i > 0 && f <= freqs.(i - 1) then
        invalid_arg "Opp.create: frequencies must ascend")
    freqs;
  Array.iter
    (fun v -> if v <= 0. then invalid_arg "Opp.create: voltage must be positive")
    volts;
  { name; freqs_mhz = freqs; volts }

(* Linear voltage ramps approximating the Exynos 5422 tables. *)
let ramp ~name ~lo_mhz ~hi_mhz ~lo_v ~hi_v =
  let n = ((hi_mhz - lo_mhz) / 100) + 1 in
  let points =
    List.init n (fun i ->
        let f = lo_mhz + (i * 100) in
        let frac = float_of_int (f - lo_mhz) /. float_of_int (hi_mhz - lo_mhz) in
        (f, lo_v +. ((hi_v -. lo_v) *. frac)))
  in
  create ~name ~points

let big = ramp ~name:"big-a15" ~lo_mhz:200 ~hi_mhz:2000 ~lo_v:0.90 ~hi_v:1.3625
let little = ramp ~name:"little-a7" ~lo_mhz:200 ~hi_mhz:1400 ~lo_v:0.90 ~hi_v:1.25

let min_freq t = t.freqs_mhz.(0)
let max_freq t = t.freqs_mhz.(Array.length t.freqs_mhz - 1)
let num_points t = Array.length t.freqs_mhz

let nearest t f_mhz =
  let best = ref t.freqs_mhz.(0) in
  let best_d = ref (abs_float (float_of_int !best -. f_mhz)) in
  Array.iter
    (fun f ->
      let d = abs_float (float_of_int f -. f_mhz) in
      if d < !best_d then begin
        best := f;
        best_d := d
      end)
    t.freqs_mhz;
  !best

let index t f =
  let rec find i =
    if i >= Array.length t.freqs_mhz then
      invalid_arg (Printf.sprintf "Opp.index: %d MHz not an OPP of %s" f t.name)
    else if t.freqs_mhz.(i) = f then i
    else find (i + 1)
  in
  find 0

let voltage t f = t.volts.(index t f)
