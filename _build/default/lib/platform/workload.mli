(** Workload models: how an application's throughput responds to the
    resources it is given.

    An application is characterized by a small set of parameters with
    direct microarchitectural meaning:

    - [parallel_fraction] — the Amdahl fraction that scales with core
      count;
    - [freq_scaling] — the per-core speedup obtained by sweeping a
      cluster's full DVFS range (captures memory-boundedness: a
      memory-bound code gains little from frequency because stall cycles
      scale with clock);
    - [base_ipc_big] — instructions per cycle on a Big core at the 1 GHz
      reference, compute-bound component;
    - [instructions_per_heartbeat] — work per QoS unit (frame for x264,
      heartbeat otherwise), so QoS rate = IPS / this;
    - [phases] — piecewise-constant behaviour changes over execution
      (canneal's serialized input-processing phase, for instance).

    The model derives a CPI law CPI(f) = a + b·f whose coefficients
    reproduce [freq_scaling] exactly over the cluster's frequency range
    (see {!Perf_model}). *)

type phase = {
  duration_s : float;  (** Phase length; the last phase repeats forever. *)
  parallel_fraction : float;
  demand_scale : float;
      (** Multiplier on instructions per heartbeat during the phase
          (frame-complexity variation). *)
}

type t = private {
  name : string;
  parallel_fraction : float;  (** In [0,1]. *)
  freq_scaling : float;  (** Per-core speedup over the DVFS range, > 1. *)
  base_ipc_big : float;  (** > 0. *)
  little_ipc_ratio : float;
      (** IPC of a Little core relative to a Big core (in-order vs
          out-of-order), in (0,1]. *)
  instructions_per_heartbeat : float;
  complexity_wobble : float;
      (** Relative amplitude of slow sinusoidal variation in per-heartbeat
          work (e.g. scene complexity), ≥ 0. *)
  phases : phase list;
}

val create :
  ?little_ipc_ratio:float ->
  ?complexity_wobble:float ->
  ?phases:phase list ->
  name:string ->
  parallel_fraction:float ->
  freq_scaling:float ->
  base_ipc_big:float ->
  instructions_per_heartbeat:float ->
  unit ->
  t
(** Raises [Invalid_argument] on out-of-range parameters. *)

val phase_at : t -> float -> phase
(** Active phase at elapsed time [t] seconds (the final phase repeats). *)

val amdahl_speedup : parallel_fraction:float -> cores:float -> float
(** 1 / ((1−p) + p/n).  [cores] may be fractional (a core partially
    stolen by background work).  Raises when [cores <= 0]. *)
