type params = {
  cdyn_w_per_v2ghz : float;
  leak_w_per_core : float;
  gated_w_per_core : float;
  uncore_w : float;
}

let params ~cdyn_w_per_v2ghz ~leak_w_per_core ~gated_w_per_core ~uncore_w =
  if
    cdyn_w_per_v2ghz < 0. || leak_w_per_core < 0. || gated_w_per_core < 0.
    || uncore_w < 0.
  then invalid_arg "Power_model.params: negative parameter";
  { cdyn_w_per_v2ghz; leak_w_per_core; gated_w_per_core; uncore_w }

let big_params =
  params ~cdyn_w_per_v2ghz:0.324 ~leak_w_per_core:0.05 ~gated_w_per_core:0.01
    ~uncore_w:0.15

let little_params =
  params ~cdyn_w_per_v2ghz:0.0686 ~leak_w_per_core:0.015
    ~gated_w_per_core:0.005 ~uncore_w:0.05

let v0 = 0.9

let cluster_power p ~table ~freq_mhz ~active_cores ~total_cores ~utilization =
  if active_cores < 0 || active_cores > total_cores then
    invalid_arg "Power_model.cluster_power: active_cores out of range";
  if utilization < 0. || utilization > 1. then
    invalid_arg "Power_model.cluster_power: utilization out of range";
  let v = Opp.voltage table freq_mhz in
  let f_ghz = float_of_int freq_mhz /. 1000. in
  let dynamic = p.cdyn_w_per_v2ghz *. v *. v *. f_ghz *. utilization in
  let leak = p.leak_w_per_core *. (v /. v0) *. (v /. v0) in
  (float_of_int active_cores *. (dynamic +. leak))
  +. (float_of_int (total_cores - active_cores) *. p.gated_w_per_core)
  +. p.uncore_w
