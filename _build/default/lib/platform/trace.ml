type t = {
  names : string array;
  mutable rows : float array list; (* newest first *)
  mutable n : int;
}

let create ~columns =
  if columns = [] then invalid_arg "Trace.create: no columns";
  let names = Array.of_list columns in
  let sorted = List.sort_uniq compare columns in
  if List.length sorted <> Array.length names then
    invalid_arg "Trace.create: duplicate column";
  { names; rows = []; n = 0 }

let add t row =
  if Array.length row <> Array.length t.names then
    invalid_arg "Trace.add: row width mismatch";
  t.rows <- Array.copy row :: t.rows;
  t.n <- t.n + 1

let length t = t.n
let columns t = Array.to_list t.names

let index t name =
  let rec find i =
    if i >= Array.length t.names then
      invalid_arg (Printf.sprintf "Trace: unknown column %S" name)
    else if t.names.(i) = name then i
    else find (i + 1)
  in
  find 0

let column t name =
  let i = index t name in
  let result = Array.make t.n 0. in
  List.iteri (fun k row -> result.(t.n - 1 - k) <- row.(i)) t.rows;
  result

let column_slice t name ~from ~upto =
  if from < 0 || upto > t.n || from >= upto then
    invalid_arg "Trace.column_slice: bad range";
  let all = column t name in
  Array.sub all from (upto - from)

let last t name =
  match t.rows with
  | [] -> invalid_arg "Trace.last: empty trace"
  | row :: _ -> row.(index t name)

let to_csv t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (String.concat "," (Array.to_list t.names));
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf
        (String.concat ","
           (Array.to_list (Array.map (Printf.sprintf "%.6g") row)));
      Buffer.add_char buf '\n')
    (List.rev t.rows);
  Buffer.contents buf
