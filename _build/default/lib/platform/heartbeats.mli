(** The Heartbeats QoS monitor (Hoffmann et al.), as used in §5: "By
    periodically issuing heartbeats, the application informs the system
    about its current performance.  The user provides a performance
    reference value using the Heartbeats API."

    The application side calls {!beat} with the (possibly fractional)
    number of heartbeats completed during a period; the monitor side
    reads the windowed {!rate}. *)

type t

val create : ?window:float -> reference:float -> unit -> t
(** [window] is the averaging horizon in seconds (default 0.5 — ten 50 ms
    controller periods).  Raises [Invalid_argument] when [window <= 0] or
    [reference <= 0]. *)

val beat : t -> now:float -> count:float -> unit
(** Record [count] heartbeats issued at time [now].  Times must be
    non-decreasing. *)

val rate : t -> now:float -> float
(** Heartbeats per second over the trailing window ending at [now];
    0 before any beat arrives. *)

val reference : t -> float
val set_reference : t -> float -> unit
(** The user-updated performance goal (a dynamic reference the
    supervisor may also adjust). *)

val total : t -> float
(** Total heartbeats issued so far. *)
