(* Instructions-per-heartbeat values are calibrated against Perf_model's
   CPI law so that each benchmark reaches roughly 1.3x its experiment
   reference rate at full Big-cluster allocation; see test_platform.ml's
   achievability tests. *)

let x264 =
  Workload.create ~name:"x264" ~parallel_fraction:0.81 ~freq_scaling:2.0
    ~base_ipc_big:1.2 ~instructions_per_heartbeat:4.25e7 ~complexity_wobble:0.12
    ()

let bodytrack =
  Workload.create ~name:"bodytrack" ~parallel_fraction:0.80 ~freq_scaling:2.3
    ~base_ipc_big:1.1 ~instructions_per_heartbeat:5.0e7 ~complexity_wobble:0.08
    ()

let canneal =
  Workload.create ~name:"canneal" ~parallel_fraction:0.60 ~freq_scaling:1.6
    ~base_ipc_big:0.8 ~instructions_per_heartbeat:2.6e7 ~complexity_wobble:0.05
    ~phases:
      [
        (* Serialized input processing: extra cores barely help, and the
           per-unit work is heavier while parsing. *)
        { duration_s = 20.; parallel_fraction = 0.15; demand_scale = 1.25 };
        { duration_s = infinity; parallel_fraction = 0.60; demand_scale = 1. };
      ]
    ()

let streamcluster =
  Workload.create ~name:"streamcluster" ~parallel_fraction:0.81
    ~freq_scaling:1.5 ~base_ipc_big:0.9 ~instructions_per_heartbeat:3.7e7
    ~complexity_wobble:0.06 ()

let kmeans =
  Workload.create ~name:"kmeans" ~parallel_fraction:0.78 ~freq_scaling:2.1
    ~base_ipc_big:1.0 ~instructions_per_heartbeat:4.2e7 ~complexity_wobble:0.07
    ()

let knn =
  Workload.create ~name:"knn" ~parallel_fraction:0.72 ~freq_scaling:1.8
    ~base_ipc_big:0.9 ~instructions_per_heartbeat:3.4e7 ~complexity_wobble:0.06
    ()

let least_squares =
  Workload.create ~name:"lesq" ~parallel_fraction:0.82 ~freq_scaling:2.4
    ~base_ipc_big:1.1 ~instructions_per_heartbeat:5.6e7 ~complexity_wobble:0.05
    ()

let linear_regression =
  Workload.create ~name:"lr" ~parallel_fraction:0.80 ~freq_scaling:2.3
    ~base_ipc_big:1.05 ~instructions_per_heartbeat:5.1e7 ~complexity_wobble:0.05
    ()

let microbench =
  Workload.create ~name:"microbench" ~parallel_fraction:0.95 ~freq_scaling:2.8
    ~base_ipc_big:1.3 ~instructions_per_heartbeat:4.0e7 ~complexity_wobble:0.
    ()

let all_qos =
  [
    bodytrack;
    canneal;
    kmeans;
    knn;
    least_squares;
    linear_regression;
    streamcluster;
    x264;
  ]

let by_name name =
  List.find_opt
    (fun w -> w.Workload.name = name)
    (microbench :: all_qos)
