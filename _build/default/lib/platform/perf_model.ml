type cluster = Big | Little

(* Shared-DRAM bandwidth contention: every additional busy core inflates
   the memory-stall CPI term by this fraction.  This is the unmodelled
   cross-core interaction that makes per-core (10×10) identification hard
   on real hardware (§2.2): per-core throughput carries products of the
   per-core idle knobs, which no linear model can attribute. *)
let contention = 0.12

let contention_factor ~busy_cores =
  1. +. (contention *. Float.max 0. (busy_cores -. 1.))

(* Derive (a, b) such that, with four busy cores (the calibration point
   of the paper's speedup measurements),
     IPS(f) = f / (a + b·κ₄·f)          κ₄ = contention_factor 4
   satisfies IPS(1 GHz) = base_ipc_big * 1e9  and
   IPS(f_max)/IPS(f_min) = freq_scaling over the Big DVFS range. *)
let big_coefficients w =
  let r = w.Workload.freq_scaling in
  let f_min = float_of_int (Opp.min_freq Opp.big) /. 1000. in
  let f_max = float_of_int (Opp.max_freq Opp.big) /. 1000. in
  let rho = f_max /. f_min in
  (* r < rho is guaranteed: freq_scaling is validated > 1 and the CPI law
     needs s >= 0, which holds when r <= rho. *)
  let s = (rho -. r) /. ((r *. f_max) -. (rho *. f_min)) in
  let a = 1. /. (w.Workload.base_ipc_big *. (1. +. s)) in
  let kappa4 = contention_factor ~busy_cores:4. in
  (a, s *. a /. kappa4)

let cpi_coefficients w = function
  | Big -> big_coefficients w
  | Little ->
      let a, b = big_coefficients w in
      (* In-order cores burn more compute cycles per instruction; the
         memory-stall term is shared (same DRAM behind both clusters). *)
      (a /. w.Workload.little_ipc_ratio, b)

let core_ips ?(busy_cores = 4.) w cluster ~freq_mhz =
  let a, b = cpi_coefficients w cluster in
  let f_ghz = float_of_int freq_mhz /. 1000. in
  f_ghz *. 1e9 /. (a +. (b *. contention_factor ~busy_cores *. f_ghz))

let cluster_ips w cluster ~freq_mhz ~effective_cores ~parallel_fraction =
  core_ips ~busy_cores:effective_cores w cluster ~freq_mhz
  *. Workload.amdahl_speedup ~parallel_fraction ~cores:effective_cores

let qos_rate w cluster ~freq_mhz ~effective_cores ~parallel_fraction
    ~demand_scale =
  cluster_ips w cluster ~freq_mhz ~effective_cores ~parallel_fraction
  /. (w.Workload.instructions_per_heartbeat *. demand_scale)

let max_qos_rate w =
  qos_rate w Big ~freq_mhz:(Opp.max_freq Opp.big) ~effective_cores:4.
    ~parallel_fraction:w.Workload.parallel_fraction ~demand_scale:1.

let min_qos_rate w =
  qos_rate w Big ~freq_mhz:(Opp.min_freq Opp.big) ~effective_cores:1.
    ~parallel_fraction:w.Workload.parallel_fraction ~demand_scale:1.
