type phase = {
  duration_s : float;
  parallel_fraction : float;
  demand_scale : float;
}

type t = {
  name : string;
  parallel_fraction : float;
  freq_scaling : float;
  base_ipc_big : float;
  little_ipc_ratio : float;
  instructions_per_heartbeat : float;
  complexity_wobble : float;
  phases : phase list;
}

let create ?(little_ipc_ratio = 0.45) ?(complexity_wobble = 0.) ?(phases = [])
    ~name ~parallel_fraction ~freq_scaling ~base_ipc_big
    ~instructions_per_heartbeat () =
  if parallel_fraction < 0. || parallel_fraction > 1. then
    invalid_arg "Workload.create: parallel_fraction not in [0,1]";
  if freq_scaling <= 1. then
    invalid_arg "Workload.create: freq_scaling must exceed 1";
  if base_ipc_big <= 0. then invalid_arg "Workload.create: base_ipc_big <= 0";
  if little_ipc_ratio <= 0. || little_ipc_ratio > 1. then
    invalid_arg "Workload.create: little_ipc_ratio not in (0,1]";
  if instructions_per_heartbeat <= 0. then
    invalid_arg "Workload.create: instructions_per_heartbeat <= 0";
  if complexity_wobble < 0. then
    invalid_arg "Workload.create: complexity_wobble < 0";
  List.iter
    (fun ph ->
      if ph.duration_s <= 0. then invalid_arg "Workload.create: phase duration";
      if ph.parallel_fraction < 0. || ph.parallel_fraction > 1. then
        invalid_arg "Workload.create: phase parallel_fraction";
      if ph.demand_scale <= 0. then
        invalid_arg "Workload.create: phase demand_scale")
    phases;
  {
    name;
    parallel_fraction;
    freq_scaling;
    base_ipc_big;
    little_ipc_ratio;
    instructions_per_heartbeat;
    complexity_wobble;
    phases;
  }

let default_phase w =
  {
    duration_s = infinity;
    parallel_fraction = w.parallel_fraction;
    demand_scale = 1.;
  }

let phase_at w t =
  let rec walk elapsed = function
    | [] -> default_phase w
    | [ last ] -> last (* final phase repeats *)
    | ph :: rest ->
        if t < elapsed +. ph.duration_s then ph
        else walk (elapsed +. ph.duration_s) rest
  in
  match w.phases with [] -> default_phase w | phases -> walk 0. phases

let amdahl_speedup ~parallel_fraction ~cores =
  if cores <= 0. then invalid_arg "Workload.amdahl_speedup: cores <= 0";
  1. /. (1. -. parallel_fraction +. (parallel_fraction /. cores))
