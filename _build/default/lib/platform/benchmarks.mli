(** The evaluation workloads of §5: four PARSEC benchmarks (x264,
    bodytrack, canneal, streamcluster — "the most CPU-bound along with the
    most cache-bound"), four machine-learning kernels (k-means, KNN, least
    squares, linear regression), and the system-identification
    microbenchmark.

    Parameters are calibrated so that maximum-vs-minimum resource
    allocation speedups land in the paper's reported 3.2×–4.5× range and
    x264 reaches ≈80 FPS at full Big-cluster allocation (the ceiling
    visible in Figure 13).  canneal carries an initial serialized
    input-processing phase — the behaviour §5.1.2 calls out to explain
    its Phase-1 QoS misses. *)

val x264 : Workload.t
(** Video encoding; QoS in frames/s.  Highly parallel, moderately
    memory-bound. *)

val bodytrack : Workload.t
val canneal : Workload.t
(** Cache-bound; starts with a serialized input-processing phase. *)

val streamcluster : Workload.t
(** The most memory-bound of the set (3.2× max speedup). *)

val kmeans : Workload.t
val knn : Workload.t
val least_squares : Workload.t
val linear_regression : Workload.t

val microbench : Workload.t
(** The in-house identification microbenchmark: multiply–accumulate over
    sequential and random memory, high ILP/MLP coverage. *)

val all_qos : Workload.t list
(** The eight QoS applications, in the paper's Figure-14 order:
    bodytrack, canneal, k-means, KNN, least squares, linear regression,
    streamcluster, x264. *)

val by_name : string -> Workload.t option
(** Look up any of the nine workloads by its [name]. *)
