type t = {
  window : float;
  mutable reference : float;
  mutable total : float;
  mutable samples : (float * float) list; (* (time, count), newest first *)
  mutable last_time : float;
}

let create ?(window = 0.5) ~reference () =
  if window <= 0. then invalid_arg "Heartbeats.create: window <= 0";
  if reference <= 0. then invalid_arg "Heartbeats.create: reference <= 0";
  { window; reference; total = 0.; samples = []; last_time = neg_infinity }

let beat t ~now ~count =
  if now < t.last_time then invalid_arg "Heartbeats.beat: time went backwards";
  t.last_time <- now;
  t.total <- t.total +. count;
  t.samples <- (now, count) :: t.samples

let rate t ~now =
  let cutoff = now -. t.window in
  (* Drop samples older than the window (list is newest-first). *)
  let rec keep acc = function
    | [] -> List.rev acc
    | (time, _) :: _ when time <= cutoff -> List.rev acc
    | s :: rest -> keep (s :: acc) rest
  in
  t.samples <- keep [] t.samples;
  let sum = List.fold_left (fun acc (_, c) -> acc +. c) 0. t.samples in
  sum /. t.window

let reference t = t.reference

let set_reference t r =
  if r <= 0. then invalid_arg "Heartbeats.set_reference: reference <= 0";
  t.reference <- r

let total t = t.total
