type error =
  | Dimension_mismatch of string
  | Not_converged of { iterations : int; residual : float }
  | Singular

let pp_error ppf = function
  | Dimension_mismatch s -> Format.fprintf ppf "dimension mismatch: %s" s
  | Not_converged { iterations; residual } ->
      Format.fprintf ppf "no convergence after %d iterations (residual %g)"
        iterations residual
  | Singular -> Format.fprintf ppf "R + B'PB singular"

let check_dims ~a ~b ~q ~r =
  let n = Matrix.rows a in
  let m = Matrix.cols b in
  if Matrix.cols a <> n then Error (Dimension_mismatch "A not square")
  else if Matrix.rows b <> n then Error (Dimension_mismatch "B rows <> n")
  else if Matrix.rows q <> n || Matrix.cols q <> n then
    Error (Dimension_mismatch "Q not n x n")
  else if Matrix.rows r <> m || Matrix.cols r <> m then
    Error (Dimension_mismatch "R not m x m")
  else Ok (n, m)

(* One step of the Riccati difference equation:
   P' = A'PA - A'PB (R + B'PB)^-1 B'PA + Q *)
let step ~a ~b ~q ~r p =
  let at = Matrix.transpose a in
  let bt = Matrix.transpose b in
  let atp = Matrix.mul at p in
  let atpa = Matrix.mul atp a in
  let atpb = Matrix.mul atp b in
  let btpb = Matrix.mul (Matrix.mul bt p) b in
  let inner = Matrix.add r btpb in
  match Matrix.solve inner (Matrix.transpose atpb) with
  | exception Failure _ -> Error Singular
  | x ->
      (* x = (R + B'PB)^-1 B'PA,  so the correction term is  A'PB * x *)
      Ok (Matrix.add q (Matrix.sub atpa (Matrix.mul atpb x)))

let solve ?(max_iter = 10_000) ?(tol = 1e-10) ~a ~b ~q ~r () =
  match check_dims ~a ~b ~q ~r with
  | Error _ as e -> e
  | Ok _ ->
      let rec loop i p =
        match step ~a ~b ~q ~r p with
        | Error _ as e -> e
        | Ok p' ->
            let diff = Matrix.max_abs (Matrix.sub p' p) in
            if diff <= tol then Ok p'
            else if i >= max_iter then
              Error (Not_converged { iterations = i; residual = diff })
            else loop (i + 1) p'
      in
      loop 0 q

let residual ~a ~b ~q ~r p =
  match step ~a ~b ~q ~r p with
  | Error _ -> infinity
  | Ok p' -> Matrix.max_abs (Matrix.sub p' p)
