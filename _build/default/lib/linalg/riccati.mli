(** Discrete algebraic Riccati equation (DARE) solver.

    The DARE

    {v P = Aᵀ P A − Aᵀ P B (R + Bᵀ P B)⁻¹ Bᵀ P A + Q v}

    underlies both LQR gain design and steady-state Kalman filtering
    ({!Spectr_control.Lqr}, {!Spectr_control.Kalman}).  We solve it by
    fixed-point iteration of the Riccati difference equation, which
    converges for stabilizable (A,B) with detectable (A,Q^½) — the regime
    of all controllers in this library (matrices are small: ≤ ~20×20). *)

type error =
  | Dimension_mismatch of string
      (** Shapes of A, B, Q, R are inconsistent. *)
  | Not_converged of { iterations : int; residual : float }
      (** Fixed-point iteration failed to reach tolerance. *)
  | Singular
      (** (R + BᵀPB) became singular during iteration. *)

val pp_error : Format.formatter -> error -> unit

val solve :
  ?max_iter:int ->
  ?tol:float ->
  a:Matrix.t ->
  b:Matrix.t ->
  q:Matrix.t ->
  r:Matrix.t ->
  unit ->
  (Matrix.t, error) result
(** [solve ~a ~b ~q ~r ()] returns the stabilizing solution [P] of the
    DARE.  [q] must be n×n positive semidefinite, [r] m×m positive
    definite, where [a] is n×n and [b] is n×m.  Default [max_iter] is
    10_000 and [tol] (max-abs difference between successive iterates)
    is [1e-10]. *)

val residual : a:Matrix.t -> b:Matrix.t -> q:Matrix.t -> r:Matrix.t -> Matrix.t -> float
(** Max-abs entry of [AᵀPA − P − AᵀPB(R+BᵀPB)⁻¹BᵀPA + Q]; a direct check
    that [P] solves the equation. *)
