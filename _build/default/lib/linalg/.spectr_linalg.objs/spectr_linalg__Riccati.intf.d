lib/linalg/riccati.mli: Format Matrix
