lib/linalg/matrix.ml: Array Format List Option Printf
