lib/linalg/riccati.ml: Format Matrix
