lib/linalg/prng.mli:
