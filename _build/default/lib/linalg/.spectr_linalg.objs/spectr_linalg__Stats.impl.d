lib/linalg/stats.ml: Array Fun Printf
