lib/linalg/stats.mli:
