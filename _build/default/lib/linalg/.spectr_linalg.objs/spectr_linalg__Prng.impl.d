lib/linalg/prng.ml: Float Int64
