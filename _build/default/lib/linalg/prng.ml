type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }
let copy g = { state = g.state }

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let int64 g =
  g.state <- Int64.add g.state golden_gamma;
  mix g.state

let split g =
  let s = int64 g in
  { state = mix s }

let float g =
  (* 53 high bits -> [0,1) *)
  let bits = Int64.shift_right_logical (int64 g) 11 in
  Int64.to_float bits /. 9007199254740992.0

let uniform g ~lo ~hi =
  if hi < lo then invalid_arg "Prng.uniform: hi < lo";
  lo +. ((hi -. lo) *. float g)

let gaussian g ~mu ~sigma =
  let rec nonzero () =
    let u = float g in
    if u > 0. then u else nonzero ()
  in
  let u1 = nonzero () in
  let u2 = float g in
  let z = sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2) in
  mu +. (sigma *. z)

let bool g = Int64.logand (int64 g) 1L = 1L

let int g n =
  if n <= 0 then invalid_arg "Prng.int: n <= 0";
  (* Shift by 2 so the value fits OCaml's 63-bit native int without
     wrapping negative. *)
  let x = Int64.to_int (Int64.shift_right_logical (int64 g) 2) in
  x mod n
