(** Deterministic splittable pseudo-random generator (SplitMix64).

    The simulator, sensor-noise models and identification excitations all
    draw from explicit generator values so that every experiment and test
    is reproducible bit-for-bit without global state (see DESIGN.md §6). *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** Generator seeded with the given value; equal seeds give equal
    streams. *)

val copy : t -> t
(** Independent clone continuing from the same state. *)

val split : t -> t
(** A new generator statistically independent from the parent (the parent
    advances). *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** Uniform in [0, 1). *)

val uniform : t -> lo:float -> hi:float -> float
(** Uniform in [lo, hi).  Raises [Invalid_argument] when [hi < lo]. *)

val gaussian : t -> mu:float -> sigma:float -> float
(** Normal sample via Box–Muller. *)

val bool : t -> bool

val int : t -> int -> int
(** [int g n] is uniform in [0, n).  Raises when [n <= 0]. *)
