(** Statistics used by system-identification validation and the
    experimental-evaluation metrics.

    All functions operate on plain [float array] time series.  Empty-input
    behaviour is documented per function; functions that need at least one
    sample raise [Invalid_argument] on an empty array. *)

val mean : float array -> float
(** Arithmetic mean.  Raises [Invalid_argument] on an empty array. *)

val variance : float array -> float
(** Population variance (divides by [n]).  Raises on empty input. *)

val std : float array -> float
(** Population standard deviation. *)

val demean : float array -> float array
(** Series minus its mean. *)

val autocorrelation : float array -> int -> float
(** [autocorrelation x k] is the lag-[k] sample autocorrelation of [x],
    normalized so that lag 0 gives 1.  [k] may be negative (symmetric).
    Returns 0 when the series has zero variance.
    Raises [Invalid_argument] when [|k| >= length x] or [x] is empty. *)

val autocorrelations : float array -> max_lag:int -> (int * float) array
(** Lags [-max_lag .. max_lag] paired with their autocorrelations — the
    series plotted in the paper's Figure 15. *)

val cross_correlation : float array -> float array -> int -> float
(** Lag-[k] sample cross-correlation of two equal-length series,
    normalized by the geometric mean of their variances. *)

val confidence_interval_99 : int -> float
(** [confidence_interval_99 n] is the half-width of the 99 % confidence
    band for the autocorrelation of an [n]-sample white-noise residual,
    i.e. [2.576 / sqrt n] (paper §5.2 uses 99 % ≈ ±3σ bands). *)

val r_squared : actual:float array -> predicted:float array -> float
(** Coefficient of determination R² = 1 − SS_res/SS_tot.  The paper's
    design flow (§6, Step 2) requires R² ≥ 0.8 for a subsystem to be
    considered identifiable.  Raises on length mismatch or empty input;
    returns [neg_infinity] when [actual] is constant but mispredicted. *)

val fit_percent : actual:float array -> predicted:float array -> float
(** MATLAB-style normalized root mean square fit:
    [100 * (1 - ||actual - predicted|| / ||actual - mean actual||)]. *)

val rmse : actual:float array -> predicted:float array -> float
(** Root mean squared error. *)

val percentile : float array -> float -> float
(** [percentile x p] with [p] in [0,100], linear interpolation between
    order statistics.  Raises on empty input or [p] outside range. *)

val steady_state_error :
  reference:float -> measured:float array -> tail:int -> float
(** Average of [reference − measured] over the last [tail] samples,
    expressed as a {e percentage of the reference} — the paper's
    steady-state-error metric of Figure 14 (positive = under the
    reference, negative = exceeding it).  Raises when [tail <= 0]; uses
    the whole series when [tail] exceeds its length.  A zero reference
    yields the raw (unnormalized) error. *)

val settling_time :
  reference:float -> band:float -> dt:float -> float array -> float option
(** [settling_time ~reference ~band ~dt y] is the earliest time [t = i·dt]
    such that every sample from [i] on stays within [band] (a fraction,
    e.g. [0.05]) of [reference] — the responsiveness metric of §5.1.
    [None] when the series never settles. *)
