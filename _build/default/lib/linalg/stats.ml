let require_nonempty name x =
  if Array.length x = 0 then invalid_arg (Printf.sprintf "Stats.%s: empty" name)

let mean x =
  require_nonempty "mean" x;
  Array.fold_left ( +. ) 0. x /. float_of_int (Array.length x)

let variance x =
  require_nonempty "variance" x;
  let m = mean x in
  Array.fold_left (fun acc v -> acc +. ((v -. m) ** 2.)) 0. x
  /. float_of_int (Array.length x)

let std x = sqrt (variance x)

let demean x =
  let m = mean x in
  Array.map (fun v -> v -. m) x

let autocorrelation x k =
  require_nonempty "autocorrelation" x;
  let n = Array.length x in
  let k = abs k in
  if k >= n then invalid_arg "Stats.autocorrelation: lag too large";
  let xd = demean x in
  let denom = Array.fold_left (fun acc v -> acc +. (v *. v)) 0. xd in
  if denom = 0. then 0.
  else begin
    let num = ref 0. in
    for t = 0 to n - 1 - k do
      num := !num +. (xd.(t) *. xd.(t + k))
    done;
    !num /. denom
  end

let autocorrelations x ~max_lag =
  Array.init
    ((2 * max_lag) + 1)
    (fun i ->
      let k = i - max_lag in
      (k, autocorrelation x k))

let cross_correlation x y k =
  require_nonempty "cross_correlation" x;
  if Array.length x <> Array.length y then
    invalid_arg "Stats.cross_correlation: length mismatch";
  let n = Array.length x in
  if abs k >= n then invalid_arg "Stats.cross_correlation: lag too large";
  let xd = demean x and yd = demean y in
  let sx = Array.fold_left (fun a v -> a +. (v *. v)) 0. xd in
  let sy = Array.fold_left (fun a v -> a +. (v *. v)) 0. yd in
  let denom = sqrt (sx *. sy) in
  if denom = 0. then 0.
  else begin
    let num = ref 0. in
    (* positive k: y lags x *)
    if k >= 0 then
      for t = 0 to n - 1 - k do
        num := !num +. (xd.(t) *. yd.(t + k))
      done
    else
      for t = 0 to n - 1 + k do
        num := !num +. (xd.(t - k) *. yd.(t))
      done;
    !num /. denom
  end

let confidence_interval_99 n =
  if n <= 0 then invalid_arg "Stats.confidence_interval_99: n <= 0";
  2.576 /. sqrt (float_of_int n)

let check_pair name actual predicted =
  require_nonempty name actual;
  if Array.length actual <> Array.length predicted then
    invalid_arg (Printf.sprintf "Stats.%s: length mismatch" name)

let r_squared ~actual ~predicted =
  check_pair "r_squared" actual predicted;
  let m = mean actual in
  let ss_tot =
    Array.fold_left (fun acc v -> acc +. ((v -. m) ** 2.)) 0. actual
  in
  let ss_res = ref 0. in
  Array.iteri
    (fun i v -> ss_res := !ss_res +. ((v -. predicted.(i)) ** 2.))
    actual;
  if ss_tot = 0. then if !ss_res = 0. then 1. else neg_infinity
  else 1. -. (!ss_res /. ss_tot)

let fit_percent ~actual ~predicted =
  check_pair "fit_percent" actual predicted;
  let m = mean actual in
  let norm f = sqrt (Array.fold_left (fun a i -> a +. (f i ** 2.)) 0.
                       (Array.init (Array.length actual) Fun.id)) in
  let err = norm (fun i -> actual.(i) -. predicted.(i)) in
  let dev = norm (fun i -> actual.(i) -. m) in
  if dev = 0. then if err = 0. then 100. else neg_infinity
  else 100. *. (1. -. (err /. dev))

let rmse ~actual ~predicted =
  check_pair "rmse" actual predicted;
  let n = Array.length actual in
  let s = ref 0. in
  for i = 0 to n - 1 do
    s := !s +. ((actual.(i) -. predicted.(i)) ** 2.)
  done;
  sqrt (!s /. float_of_int n)

let percentile x p =
  require_nonempty "percentile" x;
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy x in
  Array.sort compare sorted;
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else begin
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1. -. frac)) +. (sorted.(hi) *. frac)
  end

let steady_state_error ~reference ~measured ~tail =
  require_nonempty "steady_state_error" measured;
  if tail <= 0 then invalid_arg "Stats.steady_state_error: tail <= 0";
  let n = Array.length measured in
  let k = min tail n in
  let s = ref 0. in
  for i = n - k to n - 1 do
    s := !s +. (reference -. measured.(i))
  done;
  let avg = !s /. float_of_int k in
  if reference = 0. then avg else 100. *. avg /. reference

let settling_time ~reference ~band ~dt y =
  let n = Array.length y in
  if n = 0 then None
  else begin
    let tol = abs_float (band *. reference) in
    let within i = abs_float (y.(i) -. reference) <= tol in
    (* earliest index from which all later samples stay in the band *)
    let rec last_violation i acc =
      if i >= n then acc
      else last_violation (i + 1) (if within i then acc else i)
    in
    let lv = last_violation 0 (-1) in
    if lv = n - 1 then None else Some (float_of_int (lv + 1) *. dt)
  end
