(** Model validation: fit metrics and residual-whiteness analysis.

    Implements the cross-validation methodology of §5.2: after estimating
    a model, simulate it on held-out data, compute the fit, and check that
    the one-step residual is white — "if there is no correlation between
    the residual and itself or any inputs, the model is accurate enough".
    The residual autocorrelation traces against 99 % confidence bands are
    exactly what Figure 15 plots. *)

type channel_report = {
  name : string;
  fit_percent : float;  (** Free-simulation NRMSE fit (Figure 5). *)
  r_squared : float;  (** One-step R² — the §6 Step-2 gate (≥ 0.8). *)
  rmse : float;
  residual_autocorr : (int * float) array;
      (** Lag ↦ residual autocorrelation, lags −max_lag..max_lag. *)
  confidence99 : float;  (** Half-width of the 99 % whiteness band. *)
  violations : int;
      (** Number of nonzero lags whose autocorrelation leaves the band. *)
  max_excursion : float;
      (** Largest |autocorrelation| − confidence over nonzero lags
          (≤ 0 means the trace stays inside the band). *)
}

type report = {
  channels : channel_report array;
  simulated : float array array;  (** Free-simulation trace (per step). *)
  identifiable : bool;  (** All channels reach R² ≥ 0.8. *)
}

val validate :
  ?max_lag:int ->
  ?output_names:string array ->
  model:Arx.model ->
  Dataset.t ->
  report
(** [validate ~model data] runs free simulation + residual analysis on
    [data] (normally the held-out validation split).  [max_lag] defaults
    to 20 (the paper's Figure 15 plots lags −20..20). *)

val pp_report : Format.formatter -> report -> unit
