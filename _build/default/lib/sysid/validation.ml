open Spectr_linalg

type channel_report = {
  name : string;
  fit_percent : float;
  r_squared : float;
  rmse : float;
  residual_autocorr : (int * float) array;
  confidence99 : float;
  violations : int;
  max_excursion : float;
}

type report = {
  channels : channel_report array;
  simulated : float array array;
  identifiable : bool;
}

let validate ?(max_lag = 20) ?output_names ~model data =
  let p = Dataset.num_outputs data in
  let t0 = Arx.offset_suffix model in
  let names =
    match output_names with
    | Some n ->
        if Array.length n <> p then
          invalid_arg "Validation.validate: output_names length";
        n
    | None -> Array.init p (Printf.sprintf "y%d")
  in
  let simulated =
    Arx.simulate model ~u:data.Dataset.u ~y0:data.Dataset.y
  in
  let one_step = Arx.predict_one_step model data in
  let resid = Arx.residuals model data in
  let n_resid = Array.length resid in
  let channels =
    Array.init p (fun i ->
        let actual_suffix =
          Array.init n_resid (fun k -> data.Dataset.y.(t0 + k).(i))
        in
        let sim_suffix =
          Array.init n_resid (fun k -> simulated.(t0 + k).(i))
        in
        let pred_suffix = Array.map (fun row -> row.(i)) one_step in
        let res_channel = Array.map (fun row -> row.(i)) resid in
        let max_lag = min max_lag (n_resid - 1) in
        let acs = Stats.autocorrelations res_channel ~max_lag in
        let conf = Stats.confidence_interval_99 n_resid in
        let nonzero = Array.to_list acs |> List.filter (fun (k, _) -> k <> 0) in
        let violations =
          List.length (List.filter (fun (_, v) -> abs_float v > conf) nonzero)
        in
        let max_excursion =
          List.fold_left
            (fun acc (_, v) -> Float.max acc (abs_float v -. conf))
            neg_infinity nonzero
        in
        {
          name = names.(i);
          fit_percent =
            Stats.fit_percent ~actual:actual_suffix ~predicted:sim_suffix;
          r_squared =
            Stats.r_squared ~actual:actual_suffix ~predicted:pred_suffix;
          rmse = Stats.rmse ~actual:actual_suffix ~predicted:sim_suffix;
          residual_autocorr = acs;
          confidence99 = conf;
          violations;
          max_excursion;
        })
  in
  let identifiable =
    Array.for_all (fun c -> c.r_squared >= 0.8) channels
  in
  { channels; simulated; identifiable }

let pp_report ppf r =
  Format.fprintf ppf "@[<v>";
  Array.iter
    (fun c ->
      Format.fprintf ppf
        "%s: fit %.1f%%, R² %.3f, rmse %.4f, residual violations %d/%d \
         (conf ±%.3f)@,"
        c.name c.fit_percent c.r_squared c.rmse c.violations
        (Array.length c.residual_autocorr - 1)
        c.confidence99)
    r.channels;
  Format.fprintf ppf "identifiable (all R² >= 0.8): %b@]" r.identifiable
