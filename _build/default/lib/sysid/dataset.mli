(** Identification datasets: paired input/output records.

    A dataset is what one identification experiment on the platform
    produces: at each control period the applied input vector and the
    measured output vector. *)

type t = private {
  u : float array array;  (** [u.(t)] is the m-vector applied at step t. *)
  y : float array array;  (** [y.(t)] is the p-vector measured at step t. *)
}

val create : u:float array array -> y:float array array -> t
(** Raises [Invalid_argument] when lengths differ, the series is empty,
    or rows are ragged. *)

val length : t -> int
val num_inputs : t -> int
val num_outputs : t -> int

val split : t -> at:float -> t * t
(** [split d ~at:0.7] returns (estimation, validation) partitions — the
    cross-validation split of §5.2.  [at] must be in (0, 1) and both
    halves must be non-empty. *)

val output_channel : t -> int -> float array
(** Time series of one output channel. *)

val input_channel : t -> int -> float array

val normalize : t -> t * (float array * float array)
(** Demean each channel (inputs and outputs) around the dataset mean —
    identification is performed on deviations around the operating point.
    Returns the normalized dataset and the (input-means, output-means)
    used, which become the controller channel offsets. *)
