type t = float array array

let staircase ~lo ~hi ~num_levels ~hold ~length =
  if num_levels < 2 then invalid_arg "Excitation.staircase: num_levels < 2";
  if hold < 1 then invalid_arg "Excitation.staircase: hold < 1";
  if length < 1 then invalid_arg "Excitation.staircase: length < 1";
  if hi < lo then invalid_arg "Excitation.staircase: hi < lo";
  let period = float_of_int (num_levels * hold * 2) in
  Array.init length (fun k ->
      let phase = 2. *. Float.pi *. float_of_int k /. period in
      let s = (sin phase +. 1.) /. 2. in
      (* quantize to num_levels levels *)
      let level =
        Float.min
          (float_of_int (num_levels - 1))
          (Float.of_int (int_of_float (s *. float_of_int num_levels)))
      in
      lo +. ((hi -. lo) *. level /. float_of_int (num_levels - 1)))

let step ~lo ~hi ~at ~length =
  if length < 1 then invalid_arg "Excitation.step: length < 1";
  Array.init length (fun k -> if k < at then lo else hi)

let prbs g ~lo ~hi ~hold ~length =
  if hold < 1 then invalid_arg "Excitation.prbs: hold < 1";
  if length < 1 then invalid_arg "Excitation.prbs: length < 1";
  let current = ref (if Spectr_linalg.Prng.bool g then hi else lo) in
  Array.init length (fun k ->
      if k mod hold = 0 then
        current := (if Spectr_linalg.Prng.bool g then hi else lo);
      !current)

let random_staircase g ~lo ~hi ?(num_levels = 6) ~hold ~length () =
  if num_levels < 2 then invalid_arg "Excitation.random_staircase: num_levels";
  if hold < 1 then invalid_arg "Excitation.random_staircase: hold < 1";
  if length < 1 then invalid_arg "Excitation.random_staircase: length < 1";
  if hi < lo then invalid_arg "Excitation.random_staircase: hi < lo";
  let current = ref lo in
  let draw () =
    let level = Spectr_linalg.Prng.int g num_levels in
    lo +. ((hi -. lo) *. float_of_int level /. float_of_int (num_levels - 1))
  in
  Array.init length (fun k ->
      if k mod hold = 0 then current := draw ();
      !current)

let all_input_variation ~channels ~hold ~length =
  let m = Array.length channels in
  if m = 0 then invalid_arg "Excitation.all_input_variation: no channels";
  (* Phase-shift each channel by shifting its start index. *)
  let per_channel =
    Array.mapi
      (fun i (lo, hi) ->
        let shift = i * hold * 3 in
        let sig_ = staircase ~lo ~hi ~num_levels:6 ~hold ~length:(length + shift) in
        Array.sub sig_ shift length)
      channels
  in
  Array.init length (fun k -> Array.init m (fun i -> per_channel.(i).(k)))

let single_input_variation ~channels ~active ~hold ~length =
  let m = Array.length channels in
  if active < 0 || active >= m then
    invalid_arg "Excitation.single_input_variation: active out of range";
  let lo, hi = channels.(active) in
  let sweep = staircase ~lo ~hi ~num_levels:6 ~hold ~length in
  Array.init length (fun k ->
      Array.init m (fun i ->
          if i = active then sweep.(k)
          else
            let lo, hi = channels.(i) in
            (lo +. hi) /. 2.))

let concat segments =
  match segments with
  | [] -> invalid_arg "Excitation.concat: empty"
  | first :: _ ->
      let m =
        if Array.length first = 0 then 0 else Array.length first.(0)
      in
      List.iter
        (fun seg ->
          Array.iter
            (fun row ->
              if Array.length row <> m then
                invalid_arg "Excitation.concat: channel mismatch")
            seg)
        segments;
      Array.concat segments
