(** Excitation (test-input) signals for black-box system identification.

    The paper (§5) generates training data "by executing an in-house
    microbenchmark and varying control inputs in the format of a staircase
    test (i.e., a sine wave), both with single-input variation and
    all-input variation".  This module produces those input schedules. *)

type t = float array array
(** A multi-channel excitation: [t.(k)] is the input vector at step [k]. *)

val staircase :
  lo:float -> hi:float -> num_levels:int -> hold:int -> length:int -> float array
(** Sine-shaped staircase: a sinusoid between [lo] and [hi] quantized to
    [num_levels] levels, each sample held for [hold] steps.  Raises
    [Invalid_argument] when [num_levels < 2], [hold < 1], [length < 1] or
    [hi < lo]. *)

val step : lo:float -> hi:float -> at:int -> length:int -> float array
(** Constant [lo] switching to [hi] at index [at]. *)

val prbs :
  Spectr_linalg.Prng.t ->
  lo:float ->
  hi:float ->
  hold:int ->
  length:int ->
  float array
(** Pseudo-random binary sequence alternating between [lo] and [hi] with
    dwell time [hold]. *)

val random_staircase :
  Spectr_linalg.Prng.t ->
  lo:float ->
  hi:float ->
  ?num_levels:int ->
  hold:int ->
  length:int ->
  unit ->
  float array
(** Staircase whose level is redrawn uniformly from [num_levels]
    (default 6) quantized steps every [hold] samples.  Independent draws
    per channel keep multi-input excitations uncorrelated — the property
    a fixed phase-shifted staircase lacks, and without which the
    regression cannot attribute effects to the right actuator. *)

val all_input_variation :
  channels:(float * float) array -> hold:int -> length:int -> t
(** Every channel runs a staircase simultaneously, phase-shifted from one
    another so the regressor stays well conditioned.  [channels] gives
    each channel's (lo, hi) range. *)

val single_input_variation :
  channels:(float * float) array -> active:int -> hold:int -> length:int -> t
(** Channel [active] runs a staircase; all others are held at their range
    midpoint.  Raises on an out-of-range [active]. *)

val concat : t list -> t
(** Concatenate excitation segments in time (e.g. the per-input sweeps
    followed by an all-input sweep).  Raises when channel counts
    disagree. *)
