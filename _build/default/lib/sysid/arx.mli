(** Least-squares ARX identification and state-space realization.

    Fits the multi-output ARX model

    {v y(t) = Σᵢ Aᵢ y(t−i) + Σⱼ Bⱼ u(t−j) + e(t),  i ∈ 1..na, j ∈ 1..nb v}

    by (ridge-regularized) linear least squares, and realizes it as the
    non-minimal state-space model with state
    [x(t) = (y(t−1)…y(t−na), u(t−1)…u(t−nb))], which has no feedthrough
    (D = 0) and so plugs directly into {!Spectr_control.Lqg.design}.

    This is the OCaml stand-in for the MATLAB System Identification
    toolbox step of the paper's design flow (§6 Step 5).  The growth of
    the state dimension with the channel counts — n = na·p + nb·m — is
    exactly the scalability obstacle quantified in §2.3 and Figure 6. *)

type model = private {
  na : int;  (** Output-lag order (the paper's "order"). *)
  nb : int;  (** Input-lag order. *)
  theta : Spectr_linalg.Matrix.t;
      (** p × (na·p + nb·m) coefficient matrix [A₁ … A_na B₁ … B_nb]. *)
  num_inputs : int;
  num_outputs : int;
}

type error =
  | Not_enough_data of { need : int; have : int }
  | Bad_order of string
  | Singular_regression
      (** The excitation did not persistently excite the system (e.g. a
          constant input). *)

val pp_error : Format.formatter -> error -> unit

val fit :
  ?ridge:float -> na:int -> nb:int -> Dataset.t -> (model, error) result
(** [fit ~na ~nb data] estimates the coefficients.  [ridge] (default
    [1e-8]) is the Tikhonov regularization added to the normal
    equations. *)

val predict_one_step : model -> Dataset.t -> float array array
(** One-step-ahead predictions ŷ(t|t−1) for t ∈ [max na nb, length).
    The result is aligned with the dataset suffix starting at
    [max na nb]. *)

val residuals : model -> Dataset.t -> float array array
(** y(t) − ŷ(t|t−1) over the same suffix — the series whose
    autocorrelation Figure 15 plots. *)

val simulate : model -> u:float array array -> y0:float array array -> float array array
(** Free simulation: predictions feed back as past outputs, so errors
    compound — the honest accuracy test of Figure 5.  [y0] provides the
    first [max na nb] true outputs for initialization; the result has the
    same length as [u] (the prefix is copied from [y0]). *)

val to_statespace : model -> Spectr_control.Statespace.t
(** The companion-form realization described above (D = 0). *)

val offset_suffix : model -> int
(** [max na nb] — the number of leading samples consumed by
    initialization, i.e. the alignment offset of {!predict_one_step} and
    {!residuals}. *)
