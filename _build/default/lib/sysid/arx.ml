open Spectr_linalg

type model = {
  na : int;
  nb : int;
  theta : Matrix.t;
  num_inputs : int;
  num_outputs : int;
}

type error =
  | Not_enough_data of { need : int; have : int }
  | Bad_order of string
  | Singular_regression

let pp_error ppf = function
  | Not_enough_data { need; have } ->
      Format.fprintf ppf "not enough data: need %d samples, have %d" need have
  | Bad_order s -> Format.fprintf ppf "bad order: %s" s
  | Singular_regression ->
      Format.fprintf ppf "singular regression (input not persistently exciting)"

let offset_suffix m = max m.na m.nb

(* Regressor vector φ(t) = [y(t−1)…y(t−na), u(t−1)…u(t−nb)]. *)
let regressor ~na ~nb ~m ~p (u : float array array) (y : float array array) t =
  let q = (na * p) + (nb * m) in
  let phi = Array.make q 0. in
  for i = 1 to na do
    for j = 0 to p - 1 do
      phi.(((i - 1) * p) + j) <- y.(t - i).(j)
    done
  done;
  for i = 1 to nb do
    for j = 0 to m - 1 do
      phi.((na * p) + ((i - 1) * m) + j) <- u.(t - i).(j)
    done
  done;
  phi

let fit ?(ridge = 1e-8) ~na ~nb data =
  if na < 1 then Error (Bad_order "na must be >= 1")
  else if nb < 1 then Error (Bad_order "nb must be >= 1")
  else begin
    let n = Dataset.length data in
    let m = Dataset.num_inputs data and p = Dataset.num_outputs data in
    let t0 = max na nb in
    let q = (na * p) + (nb * m) in
    let rows = n - t0 in
    if rows < q then Error (Not_enough_data { need = t0 + q; have = n })
    else begin
      let u = data.Dataset.u and y = data.Dataset.y in
      let phi =
        Matrix.init ~rows ~cols:q (fun r c ->
            (regressor ~na ~nb ~m ~p u y (t0 + r)).(c))
      in
      let targets =
        Matrix.init ~rows ~cols:p (fun r c -> y.(t0 + r).(c))
      in
      let phit = Matrix.transpose phi in
      let gram =
        Matrix.add (Matrix.mul phit phi)
          (Matrix.scale ridge (Matrix.identity q))
      in
      match Matrix.solve gram (Matrix.mul phit targets) with
      | exception Failure _ -> Error Singular_regression
      | theta_t ->
          Ok
            {
              na;
              nb;
              theta = Matrix.transpose theta_t;
              num_inputs = m;
              num_outputs = p;
            }
    end
  end

let predict_row model (u : float array array) (y : float array array) t =
  let { na; nb; num_inputs = m; num_outputs = p; theta } = model in
  let phi = regressor ~na ~nb ~m ~p u y t in
  Array.init p (fun i ->
      let s = ref 0. in
      for c = 0 to Array.length phi - 1 do
        s := !s +. (Matrix.get theta i c *. phi.(c))
      done;
      !s)

let predict_one_step model data =
  let t0 = offset_suffix model in
  let n = Dataset.length data in
  Array.init (n - t0) (fun k ->
      predict_row model data.Dataset.u data.Dataset.y (t0 + k))

let residuals model data =
  let t0 = offset_suffix model in
  let preds = predict_one_step model data in
  Array.mapi
    (fun k pred ->
      Array.mapi (fun i v -> data.Dataset.y.(t0 + k).(i) -. v) pred)
    preds

let simulate model ~u ~y0 =
  let t0 = offset_suffix model in
  let n = Array.length u in
  if Array.length y0 < t0 then
    invalid_arg "Arx.simulate: y0 shorter than max na nb";
  let result = Array.make n [||] in
  for t = 0 to min (t0 - 1) (n - 1) do
    result.(t) <- Array.copy y0.(t)
  done;
  for t = t0 to n - 1 do
    result.(t) <- predict_row model u result t
  done;
  result

let to_statespace model =
  let { na; nb; num_inputs = m; num_outputs = p; theta } = model in
  let n = (na * p) + (nb * m) in
  let a =
    Matrix.init ~rows:n ~cols:n (fun i j ->
        if i < p then Matrix.get theta i j
        else if i < na * p then
          (* shift y block: row i takes x[i - p] *)
          if j = i - p then 1. else 0.
        else if i < (na * p) + m then 0. (* u(t) rows come from B *)
        else if
          (* shift u block *)
          j = i - m
        then 1.
        else 0.)
  in
  let b =
    Matrix.init ~rows:n ~cols:m (fun i j ->
        if i >= na * p && i < (na * p) + m && j = i - (na * p) then 1. else 0.)
  in
  let c = Matrix.init ~rows:p ~cols:n (fun i j -> Matrix.get theta i j) in
  Spectr_control.Statespace.create ~a ~b ~c ()
