lib/sysid/guardband.mli: Spectr_control
