lib/sysid/guardband.ml: Array List Lqg Matrix Spectr_control Spectr_linalg Statespace
