lib/sysid/dataset.ml: Array Spectr_linalg Stats
