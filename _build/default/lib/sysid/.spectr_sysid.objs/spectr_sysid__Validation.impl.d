lib/sysid/validation.ml: Array Arx Dataset Float Format List Printf Spectr_linalg Stats
