lib/sysid/excitation.mli: Spectr_linalg
