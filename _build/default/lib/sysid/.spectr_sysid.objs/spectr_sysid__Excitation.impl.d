lib/sysid/excitation.ml: Array Float List Spectr_linalg
