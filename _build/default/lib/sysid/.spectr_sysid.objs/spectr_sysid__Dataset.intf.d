lib/sysid/dataset.mli:
