lib/sysid/arx.ml: Array Dataset Format Matrix Spectr_control Spectr_linalg
