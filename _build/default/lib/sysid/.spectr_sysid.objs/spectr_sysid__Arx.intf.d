lib/sysid/arx.mli: Dataset Format Spectr_control Spectr_linalg
