lib/sysid/validation.mli: Arx Dataset Format
