open Spectr_linalg
open Spectr_control

type t = { qos : float; power : float }

let paper_defaults = { qos = 0.5; power = 0.3 }

let create ~qos ~power =
  if qos < 0. || qos >= 1. || power < 0. || power >= 1. then
    invalid_arg "Guardband.create: guardbands must be in [0,1)";
  { qos; power }

let perturbed_models gb model =
  let p = Statespace.num_outputs model in
  let band i = if i = 0 then gb.qos else gb.power in
  (* enumerate sign vectors over p outputs *)
  let rec signs k =
    if k = 0 then [ [] ] else List.concat_map (fun s -> [ 1. :: s; -1. :: s ]) (signs (k - 1))
  in
  List.map
    (fun sign_list ->
      let signs = Array.of_list sign_list in
      let c =
        Matrix.init ~rows:p
          ~cols:(Statespace.order model)
          (fun i j ->
            Matrix.get model.Statespace.c i j *. (1. +. (signs.(i) *. band i)))
      in
      Statespace.create ~a:model.Statespace.a ~b:model.Statespace.b ~c ())
    (signs p)

(* Closed loop of (perturbed plant) + (nominal estimator & feedback):
   state [x_p; x̂; z].  Derivation in the .mli's module comment. *)
let closed_loop_matrix ~(gains : Lqg.gains) ~(plant : Statespace.t) =
  let nominal = gains.Lqg.model in
  let n = Statespace.order nominal in
  let p = Statespace.num_outputs nominal in
  let a = nominal.Statespace.a
  and b = nominal.Statespace.b
  and c = nominal.Statespace.c in
  let ap = plant.Statespace.a
  and bp = plant.Statespace.b
  and cp = plant.Statespace.c in
  let kx = gains.Lqg.kx and kz = gains.Lqg.kz and l = gains.Lqg.l in
  let i_n = Matrix.identity n and i_p = Matrix.identity p in
  let ilc = Matrix.sub i_n (Matrix.mul l c) in
  (* u = -Kx(I-LC) x̂ - (Kx L - Kz) Cp x_p - Kz z *)
  let u_xp = Matrix.neg (Matrix.mul (Matrix.sub (Matrix.mul kx l) kz) cp) in
  let u_xh = Matrix.neg (Matrix.mul kx ilc) in
  let u_z = Matrix.neg kz in
  let row1 =
    [|
      Matrix.add ap (Matrix.mul bp u_xp);
      Matrix.mul bp u_xh;
      Matrix.mul bp u_z;
    |]
  in
  let a_ilc = Matrix.mul a ilc in
  let a_l_cp = Matrix.mul (Matrix.mul a l) cp in
  let row2 =
    [|
      Matrix.add a_l_cp (Matrix.mul b u_xp);
      Matrix.add a_ilc (Matrix.mul b u_xh);
      Matrix.mul b u_z;
    |]
  in
  let row3 =
    [| Matrix.neg cp; Matrix.zeros ~rows:p ~cols:n; Matrix.scale gains.Lqg.leak i_p |]
  in
  Matrix.block [| row1; row2; row3 |]

let robustly_stable gb ~gains =
  let nominal = gains.Lqg.model in
  List.for_all
    (fun plant ->
      let acl = closed_loop_matrix ~gains ~plant in
      let dim = Matrix.rows acl in
      let sys =
        Statespace.create ~a:acl
          ~b:(Matrix.zeros ~rows:dim ~cols:1)
          ~c:(Matrix.zeros ~rows:1 ~cols:dim)
          ()
      in
      Statespace.is_stable sys)
    (perturbed_models gb nominal)
