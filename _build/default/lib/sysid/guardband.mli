(** Uncertainty guardbands and robust-stability analysis.

    The paper designs its controllers "with a stability focus … We use
    Uncertainty Guardbands of 50 % for QoS and 30 % for power, as in
    [Pothukuchi et al.]" (§5, footnote 7).  A guardband of g on a channel
    means the controller must remain stable when that channel's true gain
    deviates from the identified model by up to ±g. *)

type t = {
  qos : float;  (** Relative QoS-channel uncertainty (paper: 0.5). *)
  power : float;  (** Relative power-channel uncertainty (paper: 0.3). *)
}

val paper_defaults : t
(** 50 % QoS, 30 % power. *)

val create : qos:float -> power:float -> t
(** Raises [Invalid_argument] on negative values or values ≥ 1. *)

val perturbed_models :
  t -> Spectr_control.Statespace.t -> Spectr_control.Statespace.t list
(** The corner cases of the uncertainty box: each output row of C scaled
    by (1 ± guardband), all sign combinations (2^p models, p = number of
    outputs; output 0 is treated as the QoS channel and the remaining
    outputs as power channels). *)

val robustly_stable :
  t -> gains:Spectr_control.Lqg.gains -> bool
(** Robust Stability Analysis (§2.2, §6 Step 8): the closed loop under
    [gains] remains stable for every corner of the uncertainty box around
    the design model. *)
