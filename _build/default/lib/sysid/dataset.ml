open Spectr_linalg

type t = { u : float array array; y : float array array }

let create ~u ~y =
  let n = Array.length u in
  if n = 0 then invalid_arg "Dataset.create: empty";
  if Array.length y <> n then invalid_arg "Dataset.create: length mismatch";
  let m = Array.length u.(0) and p = Array.length y.(0) in
  if m = 0 || p = 0 then invalid_arg "Dataset.create: zero channels";
  Array.iter
    (fun row -> if Array.length row <> m then invalid_arg "Dataset.create: ragged u")
    u;
  Array.iter
    (fun row -> if Array.length row <> p then invalid_arg "Dataset.create: ragged y")
    y;
  { u; y }

let length d = Array.length d.u
let num_inputs d = Array.length d.u.(0)
let num_outputs d = Array.length d.y.(0)

let split d ~at =
  if at <= 0. || at >= 1. then invalid_arg "Dataset.split: at not in (0,1)";
  let n = length d in
  let k = int_of_float (float_of_int n *. at) in
  if k = 0 || k = n then invalid_arg "Dataset.split: empty partition";
  ( { u = Array.sub d.u 0 k; y = Array.sub d.y 0 k },
    { u = Array.sub d.u k (n - k); y = Array.sub d.y k (n - k) } )

let output_channel d i = Array.map (fun row -> row.(i)) d.y
let input_channel d i = Array.map (fun row -> row.(i)) d.u

let normalize d =
  let m = num_inputs d and p = num_outputs d in
  let u_means = Array.init m (fun i -> Stats.mean (input_channel d i)) in
  let y_means = Array.init p (fun i -> Stats.mean (output_channel d i)) in
  let u = Array.map (fun row -> Array.mapi (fun i v -> v -. u_means.(i)) row) d.u in
  let y = Array.map (fun row -> Array.mapi (fun i v -> v -. y_means.(i)) row) d.y in
  ({ u; y }, (u_means, y_means))
