test/test_sysid.mli:
