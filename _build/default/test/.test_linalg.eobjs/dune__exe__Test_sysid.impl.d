test/test_sysid.ml: Alcotest Array Arx Dataset Excitation Float Guardband List Lqg Matrix Printf Prng Spectr_control Spectr_linalg Spectr_sysid Statespace Stats Validation
