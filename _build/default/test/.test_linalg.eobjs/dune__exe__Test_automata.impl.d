test/test_automata.ml: Alcotest Array Automaton Compose Dot Event Format Hashtbl List Option Printf QCheck2 QCheck_alcotest Reach Spectr_automata String Synthesis Verify
