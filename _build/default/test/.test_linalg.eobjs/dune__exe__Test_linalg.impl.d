test/test_linalg.ml: Alcotest Array Matrix Prng QCheck2 QCheck_alcotest Riccati Spectr_linalg Stats
