test/test_control.ml: Alcotest Array Float Kalman List Lqg Lqr Matrix Mimo Pid Prng QCheck2 QCheck_alcotest Spectr_control Spectr_linalg Statespace Stats
