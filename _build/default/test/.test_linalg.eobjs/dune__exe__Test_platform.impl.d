test/test_platform.ml: Alcotest Array Benchmarks Float Heartbeats List Opp Perf_model Power_model Soc Spectr_platform Spectr_sysid Trace Workload
