test/test_spectr.mli:
