(* Tests for the numerical substrate: Matrix, Riccati, Stats, Prng. *)

open Spectr_linalg

let check_float = Alcotest.(check (float 1e-9))
let check_float_loose = Alcotest.(check (float 1e-6))
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let matrix_testable =
  Alcotest.testable Matrix.pp (fun a b -> Matrix.equal ~tol:1e-9 a b)

(* ------------------------------------------------------------------ *)
(* Matrix: construction                                                *)
(* ------------------------------------------------------------------ *)

let test_create_fill () =
  let m = Matrix.create ~rows:2 ~cols:3 1.5 in
  check_int "rows" 2 (Matrix.rows m);
  check_int "cols" 3 (Matrix.cols m);
  check_float "entry" 1.5 (Matrix.get m 1 2)

let test_create_invalid () =
  Alcotest.check_raises "zero rows" (Invalid_argument "Matrix.create: dimensions 0x3")
    (fun () -> ignore (Matrix.create ~rows:0 ~cols:3 0.))

let test_identity () =
  let i3 = Matrix.identity 3 in
  check_float "diag" 1. (Matrix.get i3 1 1);
  check_float "off" 0. (Matrix.get i3 0 2)

let test_of_arrays_ragged () =
  Alcotest.check_raises "ragged" (Invalid_argument "Matrix.of_arrays: ragged")
    (fun () -> ignore (Matrix.of_arrays [| [| 1. |]; [| 1.; 2. |] |]))

let test_of_list_roundtrip () =
  let m = Matrix.of_list [ [ 1.; 2. ]; [ 3.; 4. ] ] in
  let a = Matrix.to_arrays m in
  check_float "0,0" 1. a.(0).(0);
  check_float "1,1" 4. a.(1).(1)

let test_vectors () =
  let r = Matrix.row_vector [| 1.; 2.; 3. |] in
  let c = Matrix.col_vector [| 1.; 2.; 3. |] in
  check_int "row shape" 1 (Matrix.rows r);
  check_int "col shape" 3 (Matrix.rows c);
  Alcotest.check matrix_testable "transpose" c (Matrix.transpose r)

let test_diagonal () =
  let d = Matrix.diagonal [| 2.; 3. |] in
  check_float "d00" 2. (Matrix.get d 0 0);
  check_float "d01" 0. (Matrix.get d 0 1);
  check_float "d11" 3. (Matrix.get d 1 1)

let test_to_scalar () =
  check_float "1x1" 7. (Matrix.to_scalar (Matrix.of_list [ [ 7. ] ]));
  Alcotest.check_raises "2x1" (Invalid_argument "Matrix.to_scalar: not a 1x1 matrix")
    (fun () -> ignore (Matrix.to_scalar (Matrix.col_vector [| 1.; 2. |])))

(* ------------------------------------------------------------------ *)
(* Matrix: algebra                                                     *)
(* ------------------------------------------------------------------ *)

let m22 a b c d = Matrix.of_list [ [ a; b ]; [ c; d ] ]

let test_add_sub () =
  let a = m22 1. 2. 3. 4. and b = m22 5. 6. 7. 8. in
  Alcotest.check matrix_testable "a+b" (m22 6. 8. 10. 12.) (Matrix.add a b);
  Alcotest.check matrix_testable "a+b-b" a (Matrix.sub (Matrix.add a b) b)

let test_mul_known () =
  let a = m22 1. 2. 3. 4. and b = m22 5. 6. 7. 8. in
  Alcotest.check matrix_testable "product" (m22 19. 22. 43. 50.) (Matrix.mul a b)

let test_mul_identity () =
  let a = m22 1. 2. 3. 4. in
  Alcotest.check matrix_testable "a*I" a (Matrix.mul a (Matrix.identity 2));
  Alcotest.check matrix_testable "I*a" a (Matrix.mul (Matrix.identity 2) a)

let test_mul_mismatch () =
  Alcotest.check_raises "2x2 * 3x1" (Invalid_argument "Matrix.mul: 2x2 * 3x1")
    (fun () ->
      ignore (Matrix.mul (Matrix.identity 2) (Matrix.col_vector [| 1.; 2.; 3. |])))

let test_mul_rectangular () =
  let a = Matrix.of_list [ [ 1.; 2.; 3. ] ] in
  let b = Matrix.col_vector [| 4.; 5.; 6. |] in
  check_float "dot" 32. (Matrix.to_scalar (Matrix.mul a b))

let test_scale_neg () =
  let a = m22 1. (-2.) 3. 4. in
  Alcotest.check matrix_testable "scale" (m22 2. (-4.) 6. 8.) (Matrix.scale 2. a);
  Alcotest.check matrix_testable "neg" (Matrix.scale (-1.) a) (Matrix.neg a)

let test_transpose_involution () =
  let a = Matrix.of_list [ [ 1.; 2.; 3. ]; [ 4.; 5.; 6. ] ] in
  Alcotest.check matrix_testable "ttB" a (Matrix.transpose (Matrix.transpose a))

let test_hcat_vcat () =
  let a = m22 1. 2. 3. 4. in
  let h = Matrix.hcat a a in
  let v = Matrix.vcat a a in
  check_int "hcat cols" 4 (Matrix.cols h);
  check_int "vcat rows" 4 (Matrix.rows v);
  check_float "hcat entry" 2. (Matrix.get h 0 3);
  check_float "vcat entry" 3. (Matrix.get v 3 0)

let test_block () =
  let a = m22 1. 2. 3. 4. in
  let z = Matrix.zeros ~rows:2 ~cols:2 in
  let blk = Matrix.block [| [| a; z |]; [| z; a |] |] in
  check_int "size" 4 (Matrix.rows blk);
  check_float "top-left" 1. (Matrix.get blk 0 0);
  check_float "bottom-right" 4. (Matrix.get blk 3 3);
  check_float "off-block" 0. (Matrix.get blk 0 2)

let test_submatrix () =
  let a = Matrix.init ~rows:4 ~cols:4 (fun i j -> float_of_int ((i * 4) + j)) in
  let s = Matrix.submatrix a ~row:1 ~col:2 ~rows:2 ~cols:2 in
  check_float "s00" 6. (Matrix.get s 0 0);
  check_float "s11" 11. (Matrix.get s 1 1)

(* ------------------------------------------------------------------ *)
(* Matrix: solving                                                     *)
(* ------------------------------------------------------------------ *)

let test_solve_known () =
  (* x + y = 3; 2x - y = 0  =>  x = 1, y = 2 *)
  let a = m22 1. 1. 2. (-1.) in
  let b = Matrix.col_vector [| 3.; 0. |] in
  let x = Matrix.solve a b in
  check_float "x" 1. (Matrix.get x 0 0);
  check_float "y" 2. (Matrix.get x 1 0)

let test_solve_singular () =
  let a = m22 1. 2. 2. 4. in
  Alcotest.check_raises "singular" (Failure "Matrix.solve: singular") (fun () ->
      ignore (Matrix.solve a (Matrix.identity 2)))

let test_inverse_known () =
  let a = m22 4. 7. 2. 6. in
  let expected = m22 0.6 (-0.7) (-0.2) 0.4 in
  Alcotest.check matrix_testable "inverse" expected (Matrix.inverse a)

let test_inverse_needs_pivot () =
  (* Leading zero forces a row swap. *)
  let a = m22 0. 1. 1. 0. in
  Alcotest.check matrix_testable "swap inverse" a (Matrix.inverse a)

let test_determinant () =
  check_float "det 2x2" (-2.) (Matrix.determinant (m22 1. 2. 3. 4.));
  check_float "det I" 1. (Matrix.determinant (Matrix.identity 5));
  check_float "det singular" 0. (Matrix.determinant (m22 1. 2. 2. 4.))

let test_norms () =
  let a = m22 3. 4. 0. 0. in
  check_float "frobenius" 5. (Matrix.frobenius_norm a);
  check_float "max_abs" 4. (Matrix.max_abs a)

let test_predicates () =
  check_bool "symmetric" true (Matrix.is_symmetric (m22 1. 2. 2. 5.));
  check_bool "asymmetric" false (Matrix.is_symmetric (m22 1. 2. 3. 5.));
  check_float "trace" 6. (Matrix.trace (m22 1. 2. 3. 5.))

(* ------------------------------------------------------------------ *)
(* Matrix: properties (qcheck)                                         *)
(* ------------------------------------------------------------------ *)

let gen_matrix n =
  QCheck2.Gen.(
    array_size (return (n * n)) (float_range (-10.) 10.)
    |> map (fun data -> Matrix.init ~rows:n ~cols:n (fun i j -> data.((i * n) + j))))

let prop_transpose_distributes_mul =
  QCheck2.Test.make ~name:"(AB)' = B'A'" ~count:100
    QCheck2.Gen.(pair (gen_matrix 3) (gen_matrix 3))
    (fun (a, b) ->
      Matrix.equal ~tol:1e-6
        (Matrix.transpose (Matrix.mul a b))
        (Matrix.mul (Matrix.transpose b) (Matrix.transpose a)))

let prop_add_commutes =
  QCheck2.Test.make ~name:"A+B = B+A" ~count:100
    QCheck2.Gen.(pair (gen_matrix 4) (gen_matrix 4))
    (fun (a, b) -> Matrix.equal (Matrix.add a b) (Matrix.add b a))

let prop_mul_associative =
  QCheck2.Test.make ~name:"(AB)C = A(BC)" ~count:100
    QCheck2.Gen.(triple (gen_matrix 3) (gen_matrix 3) (gen_matrix 3))
    (fun (a, b, c) ->
      Matrix.equal ~tol:1e-4
        (Matrix.mul (Matrix.mul a b) c)
        (Matrix.mul a (Matrix.mul b c)))

let prop_solve_solves =
  QCheck2.Test.make ~name:"A * solve(A,b) = b (well-conditioned A)" ~count:100
    QCheck2.Gen.(pair (gen_matrix 3) (array_size (return 3) (float_range (-10.) 10.)))
    (fun (a, bv) ->
      (* Shift the diagonal to make A diagonally dominant (avoids
         near-singular random draws). *)
      let a = Matrix.add a (Matrix.scale 50. (Matrix.identity 3)) in
      let b = Matrix.col_vector bv in
      let x = Matrix.solve a b in
      Matrix.equal ~tol:1e-6 (Matrix.mul a x) b)

let prop_inverse_roundtrip =
  QCheck2.Test.make ~name:"A * A^-1 = I (well-conditioned A)" ~count:100
    (gen_matrix 4)
    (fun a ->
      let a = Matrix.add a (Matrix.scale 50. (Matrix.identity 4)) in
      Matrix.equal ~tol:1e-6 (Matrix.mul a (Matrix.inverse a)) (Matrix.identity 4))

(* ------------------------------------------------------------------ *)
(* Riccati                                                             *)
(* ------------------------------------------------------------------ *)

let test_dare_scalar () =
  (* Scalar DARE with a=0.5, b=1, q=1, r=1:
     p = a²p − a²p²/(r+p) + q.  Solve quadratically: p ≈ 1.1861407. *)
  let a = Matrix.of_list [ [ 0.5 ] ]
  and b = Matrix.of_list [ [ 1. ] ]
  and q = Matrix.identity 1
  and r = Matrix.identity 1 in
  match Riccati.solve ~a ~b ~q ~r () with
  | Error e -> Alcotest.failf "DARE failed: %a" Riccati.pp_error e
  | Ok p ->
      let pv = Matrix.to_scalar p in
      (* verify the fixed point directly *)
      let rhs = (0.25 *. pv) -. (0.25 *. pv *. pv /. (1. +. pv)) +. 1. in
      check_float_loose "fixed point" pv rhs

let test_dare_residual () =
  let a = Matrix.of_list [ [ 0.9; 0.1 ]; [ 0.; 0.8 ] ] in
  let b = Matrix.of_list [ [ 1.; 0. ]; [ 0.; 1. ] ] in
  let q = Matrix.identity 2 in
  let r = Matrix.scale 0.5 (Matrix.identity 2) in
  match Riccati.solve ~a ~b ~q ~r () with
  | Error e -> Alcotest.failf "DARE failed: %a" Riccati.pp_error e
  | Ok p ->
      check_bool "residual small" true (Riccati.residual ~a ~b ~q ~r p < 1e-8);
      check_bool "symmetric" true (Matrix.is_symmetric ~tol:1e-8 p)

let test_dare_dimension_mismatch () =
  let a = Matrix.identity 2
  and b = Matrix.col_vector [| 1.; 1. |]
  and q = Matrix.identity 3
  and r = Matrix.identity 1 in
  match Riccati.solve ~a ~b ~q ~r () with
  | Error (Riccati.Dimension_mismatch _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected Dimension_mismatch"

let test_dare_stabilizing () =
  (* Unstable plant a=1.2 must be stabilized: |a - b*k| < 1 where
     k = (r + b'pb)^-1 b'pa. *)
  let a = Matrix.of_list [ [ 1.2 ] ]
  and b = Matrix.of_list [ [ 1. ] ]
  and q = Matrix.identity 1
  and r = Matrix.identity 1 in
  match Riccati.solve ~a ~b ~q ~r () with
  | Error e -> Alcotest.failf "DARE failed: %a" Riccati.pp_error e
  | Ok p ->
      let pv = Matrix.to_scalar p in
      let k = pv *. 1.2 /. (1. +. pv) in
      check_bool "closed loop stable" true (abs_float (1.2 -. k) < 1.)

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let test_mean_std () =
  let x = [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |] in
  check_float "mean" 5. (Stats.mean x);
  check_float "std" 2. (Stats.std x)

let test_autocorrelation_lag0 () =
  let x = [| 1.; 3.; 2.; 5.; 4. |] in
  check_float "lag 0 is 1" 1. (Stats.autocorrelation x 0)

let test_autocorrelation_symmetric () =
  let x = [| 1.; 3.; 2.; 5.; 4.; 6.; 2. |] in
  check_float "lag +-2 equal" (Stats.autocorrelation x 2)
    (Stats.autocorrelation x (-2))

let test_autocorrelation_alternating () =
  (* A perfectly alternating series has lag-1 autocorrelation -1. *)
  let x = Array.init 100 (fun i -> if i mod 2 = 0 then 1. else -1.) in
  check_float_loose "lag1" (-0.99) (Stats.autocorrelation x 1)

let test_autocorrelation_constant () =
  check_float "zero variance" 0. (Stats.autocorrelation (Array.make 10 3.) 1)

let test_autocorrelations_shape () =
  let x = Array.init 50 float_of_int in
  let acs = Stats.autocorrelations x ~max_lag:5 in
  check_int "count" 11 (Array.length acs);
  let lag, v = acs.(5) in
  check_int "center lag" 0 lag;
  check_float "center value" 1. v

let test_confidence_interval () =
  check_float_loose "n=100" 0.2576 (Stats.confidence_interval_99 100)

let test_r_squared_perfect () =
  let x = [| 1.; 2.; 3. |] in
  check_float "perfect" 1. (Stats.r_squared ~actual:x ~predicted:x)

let test_r_squared_mean_predictor () =
  let actual = [| 1.; 2.; 3.; 4. |] in
  let predicted = Array.make 4 2.5 in
  check_float "mean predictor gives 0" 0. (Stats.r_squared ~actual ~predicted)

let test_fit_percent () =
  let x = [| 1.; 2.; 3. |] in
  check_float "identical" 100. (Stats.fit_percent ~actual:x ~predicted:x)

let test_rmse () =
  check_float "rmse" 1.
    (Stats.rmse ~actual:[| 0.; 0. |] ~predicted:[| 1.; -1. |])

let test_percentile () =
  let x = [| 1.; 2.; 3.; 4.; 5. |] in
  check_float "median" 3. (Stats.percentile x 50.);
  check_float "p0" 1. (Stats.percentile x 0.);
  check_float "p100" 5. (Stats.percentile x 100.);
  check_float "p25" 2. (Stats.percentile x 25.)

let test_steady_state_error () =
  let measured = [| 0.; 0.; 55.; 55.; 55. |] in
  (* last 3 samples average 55 against reference 60 -> +8.333 % *)
  check_float_loose "sse" (100. *. 5. /. 60.)
    (Stats.steady_state_error ~reference:60. ~measured ~tail:3)

let test_steady_state_error_negative () =
  let measured = [| 6.; 6.; 6. |] in
  check_float_loose "exceeding" (-20.)
    (Stats.steady_state_error ~reference:5. ~measured ~tail:3)

let test_settling_time () =
  (* 5 % band around 60 is [57,63]: the last violation is 50 at index 2,
     so the series settles at index 3, i.e. t = 1.5 s with dt = 0.5. *)
  let y = [| 0.; 30.; 50.; 58.; 59.; 60.; 60.; 60. |] in
  (match Stats.settling_time ~reference:60. ~band:0.05 ~dt:0.5 y with
  | Some t -> check_float "settles at 1.5s" 1.5 t
  | None -> Alcotest.fail "should settle");
  match Stats.settling_time ~reference:60. ~band:0.01 ~dt:0.5 [| 0.; 1. |] with
  | None -> ()
  | Some _ -> Alcotest.fail "should not settle"

let prop_autocorrelation_bounded =
  QCheck2.Test.make ~name:"|autocorrelation| <= 1" ~count:200
    QCheck2.Gen.(
      pair
        (array_size (int_range 3 64) (float_range (-100.) 100.))
        (int_range 0 2))
    (fun (x, k) ->
      QCheck2.assume (k < Array.length x);
      abs_float (Stats.autocorrelation x k) <= 1. +. 1e-9)

let prop_rmse_nonnegative =
  QCheck2.Test.make ~name:"rmse >= 0" ~count:200
    QCheck2.Gen.(
      pair
        (array_size (return 16) (float_range (-5.) 5.))
        (array_size (return 16) (float_range (-5.) 5.)))
    (fun (a, p) -> Stats.rmse ~actual:a ~predicted:p >= 0.)

(* ------------------------------------------------------------------ *)
(* Prng                                                                *)
(* ------------------------------------------------------------------ *)

let test_prng_deterministic () =
  let a = Prng.create 42L and b = Prng.create 42L in
  for _ = 1 to 100 do
    check_float "same stream" (Prng.float a) (Prng.float b)
  done

let test_prng_distinct_seeds () =
  let a = Prng.create 1L and b = Prng.create 2L in
  check_bool "different first draw" true (Prng.float a <> Prng.float b)

let test_prng_float_range () =
  let g = Prng.create 7L in
  for _ = 1 to 1000 do
    let x = Prng.float g in
    check_bool "in [0,1)" true (x >= 0. && x < 1.)
  done

let test_prng_uniform () =
  let g = Prng.create 7L in
  for _ = 1 to 100 do
    let x = Prng.uniform g ~lo:2. ~hi:3. in
    check_bool "in [2,3)" true (x >= 2. && x < 3.)
  done

let test_prng_gaussian_moments () =
  let g = Prng.create 11L in
  let xs = Array.init 20_000 (fun _ -> Prng.gaussian g ~mu:5. ~sigma:2.) in
  check_bool "mean near 5" true (abs_float (Stats.mean xs -. 5.) < 0.1);
  check_bool "std near 2" true (abs_float (Stats.std xs -. 2.) < 0.1)

let test_prng_split_independent () =
  let g = Prng.create 3L in
  let h = Prng.split g in
  let a = Prng.float g and b = Prng.float h in
  check_bool "split streams differ" true (a <> b)

let test_prng_int () =
  let g = Prng.create 5L in
  for _ = 1 to 1000 do
    let x = Prng.int g 10 in
    check_bool "in [0,10)" true (x >= 0 && x < 10)
  done

(* ------------------------------------------------------------------ *)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "spectr_linalg"
    [
      ( "matrix-construction",
        [
          Alcotest.test_case "create fill" `Quick test_create_fill;
          Alcotest.test_case "invalid dims" `Quick test_create_invalid;
          Alcotest.test_case "identity" `Quick test_identity;
          Alcotest.test_case "ragged rejected" `Quick test_of_arrays_ragged;
          Alcotest.test_case "of_list roundtrip" `Quick test_of_list_roundtrip;
          Alcotest.test_case "row/col vectors" `Quick test_vectors;
          Alcotest.test_case "diagonal" `Quick test_diagonal;
          Alcotest.test_case "to_scalar" `Quick test_to_scalar;
        ] );
      ( "matrix-algebra",
        [
          Alcotest.test_case "add/sub" `Quick test_add_sub;
          Alcotest.test_case "mul known" `Quick test_mul_known;
          Alcotest.test_case "mul identity" `Quick test_mul_identity;
          Alcotest.test_case "mul mismatch" `Quick test_mul_mismatch;
          Alcotest.test_case "mul rectangular" `Quick test_mul_rectangular;
          Alcotest.test_case "scale/neg" `Quick test_scale_neg;
          Alcotest.test_case "transpose involution" `Quick
            test_transpose_involution;
          Alcotest.test_case "hcat/vcat" `Quick test_hcat_vcat;
          Alcotest.test_case "block" `Quick test_block;
          Alcotest.test_case "submatrix" `Quick test_submatrix;
        ] );
      ( "matrix-solve",
        [
          Alcotest.test_case "solve known" `Quick test_solve_known;
          Alcotest.test_case "solve singular" `Quick test_solve_singular;
          Alcotest.test_case "inverse known" `Quick test_inverse_known;
          Alcotest.test_case "inverse pivot" `Quick test_inverse_needs_pivot;
          Alcotest.test_case "determinant" `Quick test_determinant;
          Alcotest.test_case "norms" `Quick test_norms;
          Alcotest.test_case "predicates" `Quick test_predicates;
        ] );
      ( "matrix-properties",
        [
          qc prop_transpose_distributes_mul;
          qc prop_add_commutes;
          qc prop_mul_associative;
          qc prop_solve_solves;
          qc prop_inverse_roundtrip;
        ] );
      ( "riccati",
        [
          Alcotest.test_case "scalar DARE" `Quick test_dare_scalar;
          Alcotest.test_case "2x2 residual" `Quick test_dare_residual;
          Alcotest.test_case "dimension mismatch" `Quick
            test_dare_dimension_mismatch;
          Alcotest.test_case "stabilizing" `Quick test_dare_stabilizing;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean/std" `Quick test_mean_std;
          Alcotest.test_case "autocorr lag0" `Quick test_autocorrelation_lag0;
          Alcotest.test_case "autocorr symmetric" `Quick
            test_autocorrelation_symmetric;
          Alcotest.test_case "autocorr alternating" `Quick
            test_autocorrelation_alternating;
          Alcotest.test_case "autocorr constant" `Quick
            test_autocorrelation_constant;
          Alcotest.test_case "autocorrelations shape" `Quick
            test_autocorrelations_shape;
          Alcotest.test_case "99% confidence" `Quick test_confidence_interval;
          Alcotest.test_case "R2 perfect" `Quick test_r_squared_perfect;
          Alcotest.test_case "R2 mean predictor" `Quick
            test_r_squared_mean_predictor;
          Alcotest.test_case "fit percent" `Quick test_fit_percent;
          Alcotest.test_case "rmse" `Quick test_rmse;
          Alcotest.test_case "percentile" `Quick test_percentile;
          Alcotest.test_case "steady-state error" `Quick
            test_steady_state_error;
          Alcotest.test_case "steady-state negative" `Quick
            test_steady_state_error_negative;
          Alcotest.test_case "settling time" `Quick test_settling_time;
          qc prop_autocorrelation_bounded;
          qc prop_rmse_nonnegative;
        ] );
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "distinct seeds" `Quick test_prng_distinct_seeds;
          Alcotest.test_case "float range" `Quick test_prng_float_range;
          Alcotest.test_case "uniform range" `Quick test_prng_uniform;
          Alcotest.test_case "gaussian moments" `Quick
            test_prng_gaussian_moments;
          Alcotest.test_case "split independent" `Quick
            test_prng_split_independent;
          Alcotest.test_case "int range" `Quick test_prng_int;
        ] );
    ]
