(* Tests for the classical-control substrate: Statespace, Lqr, Kalman,
   Lqg, Mimo, Pid.  Integration tests close the loop around small linear
   plants and check reference tracking — the behaviour the SPECTR leaf
   controllers rely on. *)

open Spectr_linalg
open Spectr_control

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))
let check_float_loose = Alcotest.(check (float 1e-3))

let m22 a b c d = Matrix.of_list [ [ a; b ]; [ c; d ] ]

(* A well-behaved 2-state, 2-input, 2-output test model. *)
let model_2x2 =
  Statespace.create
    ~a:(m22 0.7 0.1 0.0 0.6)
    ~b:(m22 0.5 0.1 0.05 0.4)
    ~c:(m22 1.0 0.0 0.0 1.0)
    ()

(* A scalar model. *)
let model_1x1 =
  Statespace.create
    ~a:(Matrix.of_list [ [ 0.8 ] ])
    ~b:(Matrix.of_list [ [ 0.5 ] ])
    ~c:(Matrix.of_list [ [ 1.0 ] ])
    ()

(* ------------------------------------------------------------------ *)
(* Statespace                                                          *)
(* ------------------------------------------------------------------ *)

let test_ss_dims () =
  check_int "order" 2 (Statespace.order model_2x2);
  check_int "inputs" 2 (Statespace.num_inputs model_2x2);
  check_int "outputs" 2 (Statespace.num_outputs model_2x2)

let test_ss_create_invalid () =
  Alcotest.check_raises "B rows"
    (Invalid_argument "Statespace.create: B rows <> n") (fun () ->
      ignore
        (Statespace.create ~a:(Matrix.identity 2)
           ~b:(Matrix.of_list [ [ 1. ] ])
           ~c:(Matrix.identity 2) ()))

let test_ss_step () =
  let x = Matrix.col_vector [| 1.; 0. |] in
  let u = Matrix.col_vector [| 0.; 0. |] in
  let x', y = Statespace.step model_2x2 ~x ~u in
  check_float "x'0" 0.7 (Matrix.get x' 0 0);
  check_float "y0" 1. (Matrix.get y 0 0)

let test_ss_simulate_impulse () =
  (* scalar: x+ = 0.8x + 0.5u, y = x.  Impulse response: 0, 0.5, 0.4, ... *)
  let u =
    Array.init 4 (fun i ->
        Matrix.col_vector [| (if i = 0 then 1. else 0.) |])
  in
  let ys = Statespace.simulate model_1x1 ~u () in
  check_float "y0" 0. (Matrix.to_scalar ys.(0));
  check_float "y1" 0.5 (Matrix.to_scalar ys.(1));
  check_float "y2" 0.4 (Matrix.to_scalar ys.(2));
  check_float "y3" 0.32 (Matrix.to_scalar ys.(3))

let test_ss_dc_gain () =
  (* scalar dc gain = c*b/(1-a) = 0.5/0.2 = 2.5 *)
  check_float "dc" 2.5 (Matrix.to_scalar (Statespace.dc_gain model_1x1))

let test_ss_stability () =
  check_bool "stable model" true (Statespace.is_stable model_2x2);
  let unstable =
    Statespace.create
      ~a:(Matrix.of_list [ [ 1.1 ] ])
      ~b:(Matrix.of_list [ [ 1. ] ])
      ~c:(Matrix.of_list [ [ 1. ] ])
      ()
  in
  check_bool "unstable model" false (Statespace.is_stable unstable);
  check_bool "radius > 1" true (Statespace.spectral_radius_bound unstable > 1.)

let test_ss_operation_count () =
  (* n=2, m=2, p=2: 4 + 4 + 4 + 4 = 16 *)
  check_int "ops 2x2" 16 (Statespace.operation_count model_2x2);
  check_int "ops 1x1" 4 (Statespace.operation_count model_1x1)

(* ------------------------------------------------------------------ *)
(* LQR                                                                 *)
(* ------------------------------------------------------------------ *)

let test_lqr_scalar () =
  (* a=0.5,b=1,q=1,r=1: p solves DARE, k = pa*b/(r+pb²). *)
  let a = Matrix.of_list [ [ 0.5 ] ]
  and b = Matrix.of_list [ [ 1. ] ]
  and q = Matrix.identity 1
  and r = Matrix.identity 1 in
  match Lqr.design ~a ~b ~q ~r with
  | Error e -> Alcotest.failf "LQR: %a" Lqr.pp_error e
  | Ok { k; p } ->
      let pv = Matrix.to_scalar p and kv = Matrix.to_scalar k in
      check_float_loose "gain formula" (0.5 *. pv /. (1. +. pv)) kv;
      (* closed loop |a - bk| < 1 *)
      check_bool "stabilizing" true (abs_float (0.5 -. kv) < 1.)

let test_lqr_stabilizes_unstable () =
  let a = Matrix.of_list [ [ 1.5 ] ]
  and b = Matrix.of_list [ [ 1. ] ]
  and q = Matrix.identity 1
  and r = Matrix.identity 1 in
  match Lqr.design ~a ~b ~q ~r with
  | Error e -> Alcotest.failf "LQR: %a" Lqr.pp_error e
  | Ok { k; _ } ->
      let acl = Lqr.closed_loop_matrix ~a ~b ~k in
      check_bool "closed loop stable" true (Matrix.max_abs acl < 1.)

let test_lqr_bad_weights () =
  let a = Matrix.identity 2 and b = Matrix.identity 2 in
  (match Lqr.design ~a ~b ~q:(Matrix.identity 3) ~r:(Matrix.identity 2) with
  | Error (Lqr.Bad_weights _) -> ()
  | _ -> Alcotest.fail "expected Bad_weights (Q)");
  (* R not positive definite *)
  match
    Lqr.design ~a ~b ~q:(Matrix.identity 2) ~r:(Matrix.scale 0. (Matrix.identity 2))
  with
  | Error (Lqr.Bad_weights _) -> ()
  | _ -> Alcotest.fail "expected Bad_weights (R)"

let test_lqr_higher_r_smaller_gain () =
  let a = Matrix.of_list [ [ 0.9 ] ]
  and b = Matrix.of_list [ [ 1. ] ]
  and q = Matrix.identity 1 in
  let gain r =
    match Lqr.design ~a ~b ~q ~r:(Matrix.of_list [ [ r ] ]) with
    | Ok { k; _ } -> Matrix.to_scalar k
    | Error e -> Alcotest.failf "LQR: %a" Lqr.pp_error e
  in
  check_bool "more effort cost -> gentler control" true (gain 10. < gain 0.1)

(* ------------------------------------------------------------------ *)
(* Kalman                                                              *)
(* ------------------------------------------------------------------ *)

let test_kalman_design_scalar () =
  let a = Matrix.of_list [ [ 0.9 ] ] and c = Matrix.of_list [ [ 1. ] ] in
  let qw = Matrix.of_list [ [ 0.1 ] ] and rv = Matrix.of_list [ [ 1. ] ] in
  match Kalman.design ~a ~c ~qw ~rv with
  | Error e -> Alcotest.failf "Kalman: %a" Kalman.pp_error e
  | Ok { l; sigma } ->
      let lv = Matrix.to_scalar l and sv = Matrix.to_scalar sigma in
      (* L = sigma*c/(c*sigma*c + rv) in scalar form *)
      check_float_loose "gain formula" (sv /. (sv +. 1.)) lv;
      check_bool "gain in (0,1)" true (lv > 0. && lv < 1.)

let test_kalman_correct_moves_toward_measurement () =
  let l = Matrix.of_list [ [ 0.5 ] ] and c = Matrix.of_list [ [ 1. ] ] in
  let xhat = Matrix.of_list [ [ 0. ] ] and y = Matrix.of_list [ [ 2. ] ] in
  let x' = Kalman.correct ~l ~c ~xhat ~y in
  check_float "halfway" 1. (Matrix.to_scalar x')

let test_kalman_noisy_estimation () =
  (* Estimate the state of a scalar system from noisy measurements and
     check the error variance beats the raw measurement noise. *)
  let a = Matrix.of_list [ [ 0.95 ] ] and c = Matrix.of_list [ [ 1. ] ] in
  let qw = Matrix.of_list [ [ 0.01 ] ] and rv = Matrix.of_list [ [ 0.25 ] ] in
  match Kalman.design ~a ~c ~qw ~rv with
  | Error e -> Alcotest.failf "Kalman: %a" Kalman.pp_error e
  | Ok { l; _ } ->
      let g = Prng.create 123L in
      let x = ref 1. and xhat = ref (Matrix.of_list [ [ 0. ] ]) in
      let errs = ref [] and raw_errs = ref [] in
      for _ = 1 to 500 do
        let y = !x +. Prng.gaussian g ~mu:0. ~sigma:0.5 in
        let xf =
          Kalman.correct ~l ~c ~xhat:!xhat ~y:(Matrix.of_list [ [ y ] ])
        in
        errs := (Matrix.to_scalar xf -. !x) :: !errs;
        raw_errs := (y -. !x) :: !raw_errs;
        (* time update *)
        xhat := Matrix.scale 0.95 xf;
        x := (0.95 *. !x) +. Prng.gaussian g ~mu:0. ~sigma:0.1
      done;
      let var l = Stats.variance (Array.of_list l) in
      check_bool "filter beats raw measurement" true
        (var !errs < var !raw_errs)

(* ------------------------------------------------------------------ *)
(* LQG design                                                          *)
(* ------------------------------------------------------------------ *)

let design_or_fail ?q_integrator ~label ~model ~q_y ~r_u () =
  match Lqg.design ?q_integrator ~label ~model ~q_y ~r_u () with
  | Ok g -> g
  | Error e -> Alcotest.failf "Lqg.design: %a" Lqg.pp_error e

let test_lqg_design_dims () =
  let g =
    design_or_fail ~label:"qos" ~model:model_2x2 ~q_y:[| 30.; 1. |]
      ~r_u:[| 1.; 2. |] ()
  in
  check_int "kx shape" 2 (Matrix.rows g.Lqg.kx);
  check_int "kx cols" 2 (Matrix.cols g.Lqg.kx);
  check_int "kz cols" 2 (Matrix.cols g.Lqg.kz);
  check_int "l rows" 2 (Matrix.rows g.Lqg.l)

let test_lqg_rejects_feedthrough () =
  let model =
    Statespace.create
      ~a:(Matrix.of_list [ [ 0.5 ] ])
      ~b:(Matrix.of_list [ [ 1. ] ])
      ~c:(Matrix.of_list [ [ 1. ] ])
      ~d:(Matrix.of_list [ [ 0.3 ] ])
      ()
  in
  match Lqg.design ~label:"x" ~model ~q_y:[| 1. |] ~r_u:[| 1. |] () with
  | Error Lqg.Feedthrough_unsupported -> ()
  | _ -> Alcotest.fail "expected Feedthrough_unsupported"

let test_lqg_bad_weights () =
  (match Lqg.design ~label:"x" ~model:model_2x2 ~q_y:[| 1. |] ~r_u:[| 1.; 1. |] () with
  | Error (Lqg.Bad_weights _) -> ()
  | _ -> Alcotest.fail "q_y length");
  match
    Lqg.design ~label:"x" ~model:model_2x2 ~q_y:[| 1.; 1. |] ~r_u:[| 1.; 0. |] ()
  with
  | Error (Lqg.Bad_weights _) -> ()
  | _ -> Alcotest.fail "r_u positivity"

let test_lqg_closed_loop_stable () =
  let g =
    design_or_fail ~label:"qos" ~model:model_2x2 ~q_y:[| 30.; 1. |]
      ~r_u:[| 1.; 2. |] ()
  in
  check_bool "stable" true (Lqg.closed_loop_stable g)

(* ------------------------------------------------------------------ *)
(* Mimo runtime: closed-loop tracking                                  *)
(* ------------------------------------------------------------------ *)

(* Physical plant matching model_2x2 but with channel offsets/scales, so
   the controller must normalize correctly. *)
let simulate_closed_loop ~ctrl ~steps ~disturbance =
  let x = ref (Matrix.zeros ~rows:2 ~cols:1) in
  let y_hist = Array.make steps [| 0.; 0. |] in
  let in_ch i = [| 1.0; 2.0 |].(i) in
  ignore in_ch;
  for t = 0 to steps - 1 do
    (* physical output = normalized output * scale + offset *)
    let y_norm = Matrix.mul (Matrix.of_list [ [ 1.; 0. ]; [ 0.; 1. ] ]) !x in
    let y_phys =
      [|
        (Matrix.get y_norm 0 0 *. 10.) +. 50. +. disturbance t 0;
        (Matrix.get y_norm 1 0 *. 2.) +. 4. +. disturbance t 1;
      |]
    in
    y_hist.(t) <- y_phys;
    let u_phys = Mimo.step ctrl ~measured:y_phys in
    let u_norm =
      Matrix.col_vector
        [| (u_phys.(0) -. 1.0) /. 0.5; (u_phys.(1) -. 2.0) /. 1.0 |]
    in
    let x', _ = Statespace.step model_2x2 ~x:!x ~u:u_norm in
    x := x'
  done;
  y_hist

let make_ctrl ?(refs = [| 55.; 4.5 |]) () =
  let qos =
    design_or_fail ~label:"qos" ~model:model_2x2 ~q_y:[| 30.; 1. |]
      ~r_u:[| 1.; 2. |] ()
  in
  let power =
    design_or_fail ~label:"power" ~model:model_2x2 ~q_y:[| 1.; 30. |]
      ~r_u:[| 1.; 2. |] ()
  in
  Mimo.create ~gains:[ qos; power ] ~initial:"qos"
    ~inputs:
      [|
        Mimo.channel ~offset:1.0 ~scale:0.5 ~min:0.2 ~max:2.0 "freq";
        Mimo.channel ~offset:2.0 ~scale:1.0 ~min:0.0 ~max:4.0 "cores";
      |]
    ~outputs:
      [|
        Mimo.channel ~offset:50. ~scale:10. "fps";
        Mimo.channel ~offset:4. ~scale:2. "power";
      |]
    ~refs ()

let test_mimo_tracks_references () =
  let ctrl = make_ctrl () in
  let y = simulate_closed_loop ~ctrl ~steps:300 ~disturbance:(fun _ _ -> 0.) in
  let tail_fps = Array.map (fun v -> v.(0)) (Array.sub y 250 50) in
  let tail_pow = Array.map (fun v -> v.(1)) (Array.sub y 250 50) in
  check_bool "fps tracks 55" true (abs_float (Stats.mean tail_fps -. 55.) < 1.);
  check_bool "power tracks 4.5" true
    (abs_float (Stats.mean tail_pow -. 4.5) < 0.2)

let test_mimo_rejects_step_disturbance () =
  let ctrl = make_ctrl () in
  let disturbance t i = if t >= 150 && i = 0 then -5. else 0. in
  let y = simulate_closed_loop ~ctrl ~steps:400 ~disturbance in
  let tail_fps = Array.map (fun v -> v.(0)) (Array.sub y 350 50) in
  check_bool "integral action rejects disturbance" true
    (abs_float (Stats.mean tail_fps -. 55.) < 1.)

let test_mimo_saturation_respected () =
  (* Unreachable reference: commands must stay clamped. *)
  let ctrl = make_ctrl ~refs:[| 1000.; 4.5 |] () in
  let _ = simulate_closed_loop ~ctrl ~steps:100 ~disturbance:(fun _ _ -> 0.) in
  match Mimo.last_command ctrl with
  | None -> Alcotest.fail "commands issued"
  | Some u ->
      check_bool "freq at max" true (u.(0) <= 2.0 +. 1e-9);
      check_bool "cores in range" true (u.(1) >= 0.0 && u.(1) <= 4.0)

let test_mimo_gain_switching () =
  let ctrl = make_ctrl () in
  check_bool "initial" true (Mimo.current_gains ctrl = "qos");
  Mimo.switch_gains ctrl "power";
  check_bool "switched" true (Mimo.current_gains ctrl = "power");
  Alcotest.check_raises "unknown"
    (Invalid_argument "Mimo.switch_gains: unknown label \"nope\"") (fun () ->
      Mimo.switch_gains ctrl "nope");
  check_int "labels" 2 (List.length (Mimo.available_gains ctrl))

let test_mimo_reference_update () =
  let ctrl = make_ctrl () in
  Mimo.set_reference ctrl ~index:1 3.0;
  check_float "updated" 3.0 (Mimo.reference ctrl ~index:1);
  let y = simulate_closed_loop ~ctrl ~steps:300 ~disturbance:(fun _ _ -> 0.) in
  let tail_pow = Array.map (fun v -> v.(1)) (Array.sub y 250 50) in
  check_bool "tracks new power ref" true
    (abs_float (Stats.mean tail_pow -. 3.0) < 0.2)

let test_mimo_reset () =
  let ctrl = make_ctrl () in
  let _ = simulate_closed_loop ~ctrl ~steps:50 ~disturbance:(fun _ _ -> 0.) in
  Mimo.reset ctrl;
  check_bool "no last command" true (Mimo.last_command ctrl = None)

let test_mimo_create_validation () =
  let qos =
    design_or_fail ~label:"qos" ~model:model_2x2 ~q_y:[| 1.; 1. |]
      ~r_u:[| 1.; 1. |] ()
  in
  Alcotest.check_raises "unknown initial"
    (Invalid_argument "Mimo.create: unknown label \"zzz\"") (fun () ->
      ignore
        (Mimo.create ~gains:[ qos ] ~initial:"zzz"
           ~inputs:[| Mimo.channel "a"; Mimo.channel "b" |]
           ~outputs:[| Mimo.channel "y1"; Mimo.channel "y2" |]
           ~refs:[| 0.; 0. |] ()));
  Alcotest.check_raises "duplicate labels"
    (Invalid_argument "Mimo.create: duplicate label \"qos\"") (fun () ->
      ignore
        (Mimo.create ~gains:[ qos; qos ] ~initial:"qos"
           ~inputs:[| Mimo.channel "a"; Mimo.channel "b" |]
           ~outputs:[| Mimo.channel "y1"; Mimo.channel "y2" |]
           ~refs:[| 0.; 0. |] ()))

let test_mimo_channel_validation () =
  Alcotest.check_raises "zero scale" (Invalid_argument "Mimo.channel: zero scale")
    (fun () -> ignore (Mimo.channel ~scale:0. "x"));
  Alcotest.check_raises "min > max" (Invalid_argument "Mimo.channel: min > max")
    (fun () -> ignore (Mimo.channel ~min:2. ~max:1. "x"))

(* qcheck: for random stable scalar plants, the closed loop tracks. *)
let prop_lqg_tracks_scalar_plants =
  QCheck2.Test.make ~name:"LQG tracks random stable scalar plants" ~count:50
    QCheck2.Gen.(
      triple (float_range 0.1 0.9) (float_range 0.2 2.0) (float_range (-3.) 3.))
    (fun (a, b, r) ->
      let model =
        Statespace.create
          ~a:(Matrix.of_list [ [ a ] ])
          ~b:(Matrix.of_list [ [ b ] ])
          ~c:(Matrix.of_list [ [ 1. ] ])
          ()
      in
      match Lqg.design ~label:"g" ~model ~q_y:[| 10. |] ~r_u:[| 1. |] () with
      | Error _ -> false
      | Ok g ->
          let ctrl =
            Mimo.create ~gains:[ g ] ~initial:"g"
              ~inputs:[| Mimo.channel "u" |]
              ~outputs:[| Mimo.channel "y" |]
              ~refs:[| r |] ()
          in
          let x = ref (Matrix.zeros ~rows:1 ~cols:1) in
          let last = ref 0. in
          for _ = 1 to 400 do
            let y = Matrix.to_scalar !x in
            last := y;
            let u = Mimo.step ctrl ~measured:[| y |] in
            let x', _ =
              Statespace.step model ~x:!x ~u:(Matrix.col_vector [| u.(0) |])
            in
            x := x'
          done;
          abs_float (!last -. r) < 0.05 *. (1. +. abs_float r))

let prop_mimo_never_nan =
  (* Whatever garbage the sensors report (within floating-point range),
     the controller's commands stay finite and saturated. *)
  QCheck2.Test.make ~name:"Mimo commands always finite and saturated" ~count:100
    QCheck2.Gen.(
      list_size (return 50)
        (pair (float_range (-1e6) 1e6) (float_range (-1e6) 1e6)))
    (fun readings ->
      let ctrl = make_ctrl () in
      List.for_all
        (fun (a, b) ->
          let u = Mimo.step ctrl ~measured:[| a; b |] in
          Float.is_finite u.(0) && Float.is_finite u.(1)
          && u.(0) >= 0.2 && u.(0) <= 2.0
          && u.(1) >= 0.0 && u.(1) <= 4.0)
        readings)

let test_mimo_switch_gains_bumpless () =
  (* After a long run, a gain switch must not discontinuously slam the
     command: the first post-switch command stays within the actuator
     range travelled so far plus a small margin. *)
  let ctrl = make_ctrl () in
  let y = simulate_closed_loop ~ctrl ~steps:200 ~disturbance:(fun _ _ -> 0.) in
  ignore y;
  let before =
    match Mimo.last_command ctrl with Some u -> u | None -> assert false
  in
  Mimo.switch_gains ctrl "power";
  let after = Mimo.step ctrl ~measured:[| 55.; 4.5 |] in
  check_bool "no slam on freq" true (abs_float (after.(0) -. before.(0)) < 0.6);
  check_bool "no slam on cores" true (abs_float (after.(1) -. before.(1)) < 1.5)

let test_mimo_z_clamp_validation () =
  let qos =
    design_or_fail ~label:"qos" ~model:model_2x2 ~q_y:[| 1.; 1. |]
      ~r_u:[| 1.; 1. |] ()
  in
  Alcotest.check_raises "z_clamp" (Invalid_argument "Mimo.create: z_clamp <= 0")
    (fun () ->
      ignore
        (Mimo.create ~z_clamp:0. ~gains:[ qos ] ~initial:"qos"
           ~inputs:[| Mimo.channel "a"; Mimo.channel "b" |]
           ~outputs:[| Mimo.channel "y1"; Mimo.channel "y2" |]
           ~refs:[| 0.; 0. |] ()))

(* ------------------------------------------------------------------ *)
(* PID                                                                 *)
(* ------------------------------------------------------------------ *)

let test_pid_converges_first_order () =
  (* Plant: y+ = 0.9 y + 0.1 u.  PI controller should drive y -> 10. *)
  let cfg = Pid.config ~kp:2.0 ~ki:2.0 ~kd:0.0 ~dt:0.1 () in
  let pid = Pid.create cfg ~reference:10. in
  let y = ref 0. in
  for _ = 1 to 500 do
    let u = Pid.step pid ~measured:!y in
    y := (0.9 *. !y) +. (0.1 *. u)
  done;
  check_bool "converged" true (abs_float (!y -. 10.) < 0.1)

let test_pid_saturation_and_antiwindup () =
  let cfg = Pid.config ~u_min:(-1.) ~u_max:1. ~kp:10. ~ki:10. ~kd:0. ~dt:0.1 () in
  let pid = Pid.create cfg ~reference:100. in
  let u = Pid.step pid ~measured:0. in
  check_float "clamped" 1. u;
  (* After many saturated steps, dropping the reference must react fast
     (the integrator did not wind up). *)
  for _ = 1 to 100 do
    ignore (Pid.step pid ~measured:0.)
  done;
  Pid.set_reference pid (-100.);
  let u = Pid.step pid ~measured:0. in
  check_float "reacts immediately" (-1.) u

let test_pid_config_validation () =
  Alcotest.check_raises "dt" (Invalid_argument "Pid.config: dt <= 0") (fun () ->
      ignore (Pid.config ~kp:1. ~ki:0. ~kd:0. ~dt:0. ()));
  Alcotest.check_raises "bounds" (Invalid_argument "Pid.config: u_min > u_max")
    (fun () ->
      ignore (Pid.config ~u_min:1. ~u_max:0. ~kp:1. ~ki:0. ~kd:0. ~dt:1. ()))

let test_pid_gain_schedule () =
  let cfg1 = Pid.config ~kp:1. ~ki:0. ~kd:0. ~dt:1. () in
  let cfg2 = Pid.config ~kp:5. ~ki:0. ~kd:0. ~dt:1. () in
  let pid = Pid.create cfg1 ~reference:1. in
  let u1 = Pid.step pid ~measured:0. in
  Pid.set_config pid cfg2;
  let u2 = Pid.step pid ~measured:0. in
  check_float "kp=1" 1. u1;
  check_float "kp=5" 5. u2

let test_pid_reset () =
  let cfg = Pid.config ~kp:0. ~ki:1. ~kd:0. ~dt:1. () in
  let pid = Pid.create cfg ~reference:1. in
  ignore (Pid.step pid ~measured:0.);
  ignore (Pid.step pid ~measured:0.);
  Pid.reset pid;
  let u = Pid.step pid ~measured:0. in
  check_float "integral cleared" 1. u

(* ------------------------------------------------------------------ *)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "spectr_control"
    [
      ( "statespace",
        [
          Alcotest.test_case "dims" `Quick test_ss_dims;
          Alcotest.test_case "create invalid" `Quick test_ss_create_invalid;
          Alcotest.test_case "step" `Quick test_ss_step;
          Alcotest.test_case "impulse response" `Quick test_ss_simulate_impulse;
          Alcotest.test_case "dc gain" `Quick test_ss_dc_gain;
          Alcotest.test_case "stability" `Quick test_ss_stability;
          Alcotest.test_case "operation count" `Quick test_ss_operation_count;
        ] );
      ( "lqr",
        [
          Alcotest.test_case "scalar" `Quick test_lqr_scalar;
          Alcotest.test_case "stabilizes unstable" `Quick
            test_lqr_stabilizes_unstable;
          Alcotest.test_case "bad weights" `Quick test_lqr_bad_weights;
          Alcotest.test_case "effort cost trades gain" `Quick
            test_lqr_higher_r_smaller_gain;
        ] );
      ( "kalman",
        [
          Alcotest.test_case "scalar design" `Quick test_kalman_design_scalar;
          Alcotest.test_case "correct step" `Quick
            test_kalman_correct_moves_toward_measurement;
          Alcotest.test_case "noisy estimation" `Quick
            test_kalman_noisy_estimation;
        ] );
      ( "lqg",
        [
          Alcotest.test_case "design dims" `Quick test_lqg_design_dims;
          Alcotest.test_case "rejects feedthrough" `Quick
            test_lqg_rejects_feedthrough;
          Alcotest.test_case "bad weights" `Quick test_lqg_bad_weights;
          Alcotest.test_case "closed loop stable" `Quick
            test_lqg_closed_loop_stable;
        ] );
      ( "mimo",
        [
          Alcotest.test_case "tracks references" `Quick
            test_mimo_tracks_references;
          Alcotest.test_case "rejects disturbance" `Quick
            test_mimo_rejects_step_disturbance;
          Alcotest.test_case "saturation" `Quick test_mimo_saturation_respected;
          Alcotest.test_case "gain switching" `Quick test_mimo_gain_switching;
          Alcotest.test_case "reference update" `Quick
            test_mimo_reference_update;
          Alcotest.test_case "reset" `Quick test_mimo_reset;
          Alcotest.test_case "create validation" `Quick
            test_mimo_create_validation;
          Alcotest.test_case "channel validation" `Quick
            test_mimo_channel_validation;
          qc prop_lqg_tracks_scalar_plants;
          qc prop_mimo_never_nan;
          Alcotest.test_case "bumpless gain switch" `Quick
            test_mimo_switch_gains_bumpless;
          Alcotest.test_case "z_clamp validation" `Quick
            test_mimo_z_clamp_validation;
        ] );
      ( "pid",
        [
          Alcotest.test_case "converges" `Quick test_pid_converges_first_order;
          Alcotest.test_case "saturation + anti-windup" `Quick
            test_pid_saturation_and_antiwindup;
          Alcotest.test_case "config validation" `Quick
            test_pid_config_validation;
          Alcotest.test_case "gain schedule" `Quick test_pid_gain_schedule;
          Alcotest.test_case "reset" `Quick test_pid_reset;
        ] );
    ]
