(* Figure 6: multiply-add operations required per MIMO controller
   invocation as core count grows, for model orders 2, 4 and 8. *)

let run () =
  Util.heading "Figure 6: MIMO operation count vs core count";
  Printf.printf "%8s %14s %14s %14s\n" "#cores" "order 2" "order 4" "order 8";
  List.iter
    (fun cores ->
      Printf.printf "%8d %14.3e %14.3e %14.3e\n" cores
        (Spectr.Ops_cost.paper_curve ~cores ~order:2)
        (Spectr.Ops_cost.paper_curve ~cores ~order:4)
        (Spectr.Ops_cost.paper_curve ~cores ~order:8))
    [ 2; 4; 8; 12; 16; 24; 32; 40; 48; 56; 64; 70 ];
  Printf.printf
    "\nPer-invocation (Eq. 1-2 matrix-vector) counts for reference:\n";
  Printf.printf "%8s %14s %14s %14s\n" "#cores" "order 2" "order 4" "order 8";
  List.iter
    (fun cores ->
      Printf.printf "%8d %14d %14d %14d\n" cores
        (Spectr.Ops_cost.invocation_ops ~cores ~order:2)
        (Spectr.Ops_cost.invocation_ops ~cores ~order:4)
        (Spectr.Ops_cost.invocation_ops ~cores ~order:8))
    [ 2; 8; 32; 70 ];
  print_endline
    "\nShape check (paper): superlinear growth with core count; the model\n\
     order becomes insignificant once #cores >> order."
