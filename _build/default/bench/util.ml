(* Shared helpers for the benchmark harness. *)

let heading title =
  Printf.printf "\n=============================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "=============================================================\n"

let subheading title = Printf.printf "\n--- %s\n" title

(* Print a time series subsampled to at most [points] rows. *)
let print_series ~columns ~time rows =
  let n = Array.length time in
  let points = 30 in
  let stride = max 1 (n / points) in
  Printf.printf "%8s" "time";
  List.iter (fun c -> Printf.printf " %10s" c) columns;
  print_newline ();
  let i = ref 0 in
  while !i < n do
    Printf.printf "%8.2f" time.(!i);
    List.iter (fun v -> Printf.printf " %10.3f" v.(!i)) rows;
    print_newline ();
    i := !i + stride
  done

let fresh_managers () =
  [
    ("SPECTR", fst (Spectr.Spectr_manager.make ()));
    ("MM-Pow", Spectr.Mm.make_pow ());
    ("MM-Perf", Spectr.Mm.make_perf ());
    ("FS", Spectr.Fs.make ());
  ]
