bench/ablations.ml: Benchmarks List Printf Spectr Spectr_linalg Spectr_platform Util
