bench/fig13.ml: Benchmarks Format List Printf Spectr Spectr_platform Trace Util
