bench/fig5.ml: Array Dataset Printf Spectr Spectr_sysid Util Validation
