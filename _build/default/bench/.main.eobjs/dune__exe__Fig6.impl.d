bench/fig6.ml: List Printf Spectr Util
