bench/util.ml: Array List Printf Spectr
