bench/fig12.ml: Automaton Event Format List Printf Spectr Spectr_automata String Synthesis Util Verify
