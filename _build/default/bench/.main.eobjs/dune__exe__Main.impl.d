bench/main.ml: Ablations Array Fig12 Fig13 Fig14 Fig15 Fig3 Fig5 Fig6 List Overhead Printf String Sys Table1
