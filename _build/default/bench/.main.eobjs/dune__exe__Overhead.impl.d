bench/overhead.ml: Analyze Bechamel Benchmark Benchmarks Hashtbl Instance List Measure Printf Soc Spectr Spectr_control Spectr_platform Staged Test Time Toolkit Util
