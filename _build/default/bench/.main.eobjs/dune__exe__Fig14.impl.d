bench/fig14.ml: Benchmarks List Printf Spectr Spectr_platform Util Workload
