bench/fig3.ml: Array Benchmarks Mimo Printf Soc Spectr Spectr_control Spectr_linalg Spectr_platform Util
