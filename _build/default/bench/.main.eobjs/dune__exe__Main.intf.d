bench/main.mli:
