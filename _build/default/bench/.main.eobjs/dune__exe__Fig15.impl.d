bench/fig15.ml: Array Hashtbl List Printf Spectr Spectr_sysid String Util Validation
