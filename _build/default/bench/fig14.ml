(* Figure 14: steady-state error (QoS and power) for every benchmark,
   manager and phase.  Positive = under the reference (power saved / QoS
   missed); negative = exceeding the reference. *)

open Spectr_platform

let run () =
  Util.heading
    "Figure 14: steady-state error (%) per benchmark x manager x phase";
  let managers = Util.fresh_managers () in
  let results =
    (* benchmark -> manager -> metrics *)
    List.map
      (fun w ->
        let cfg = Spectr.Scenario.default_config w in
        let per_manager =
          List.map
            (fun (name, manager) ->
              let trace = Spectr.Scenario.run ~manager cfg in
              (name, Spectr.Metrics.per_phase ~trace ~config:cfg))
            managers
        in
        (w.Workload.name, per_manager))
      Benchmarks.all_qos
  in
  let manager_names = List.map fst managers in
  let table ?(fmt = format_of_string " %+9.1f") phase extract label =
    Util.subheading label;
    Printf.printf "%-14s" "benchmark";
    List.iter (fun m -> Printf.printf " %9s" m) manager_names;
    print_newline ();
    List.iter
      (fun (bench, per_manager) ->
        Printf.printf "%-14s" bench;
        List.iter
          (fun (_, metrics) -> Printf.printf fmt (extract metrics phase))
          per_manager;
        print_newline ())
      results
  in
  let qos m phase = Spectr.Metrics.qos_of m phase in
  let power m phase = Spectr.Metrics.power_of m phase in
  table "safe" qos "(a) QoS steady-state error, Phase 1 (safe)";
  table "safe" power "(b) power steady-state error, Phase 1 (safe)";
  table "emergency" qos "(c) QoS steady-state error, Phase 2 (emergency)";
  table "emergency" power "(d) power steady-state error, Phase 2 (emergency)";
  table "disturbance" qos "(e) QoS steady-state error, Phase 3 (disturbance)";
  table "disturbance" power
    "(f) power steady-state error, Phase 3 (disturbance)";
  let energy metrics phase =
    (List.find (fun m -> m.Spectr.Metrics.phase_name = phase) metrics)
      .Spectr.Metrics.energy_per_heartbeat_j
  in
  table ~fmt:(format_of_string " %9.4f") "safe" energy
    "(g, extension) energy per unit of QoS work, Phase 1 (J/heartbeat)";
  print_endline
    "\nShape check (paper): in (a)/(b) SPECTR and MM-Perf save power while\n\
     meeting QoS and MM-Pow/FS consume the budget while exceeding QoS; in\n\
     (e)/(f) MM-Perf has the best QoS but violates the TDP (negative\n\
     power error) while the others sit at or under the limit."
