(* Closed thermal loop: the emergency is derived, not scripted.

   The die temperature follows a first-order RC response to chip power;
   a thermostat-style governor (as the OS thermal subsystem would) trips
   the power envelope from TDP to an emergency value at 70 degC and
   releases at 62 degC.  A demanding QoS reference forces the platform
   hot; we compare how SPECTR and the uncoordinated MM-Perf ride the
   resulting emergencies.

     dune exec examples/thermal_emergency.exe
*)

open Spectr_platform
open Spectr

let run name manager =
  Printf.printf "\n=== %s under the thermal governor\n" name;
  let workload = Benchmarks.x264 in
  let qos_ref = 0.95 *. Perf_model.max_qos_rate workload in
  let governor =
    Thermal_governor.create ~trip_c:63. ~release_c:56. ~tdp:5.0
      ~emergency_envelope:3.2 ()
  in
  let soc = Soc.create ~qos:workload () in
  let trips = ref 0 in
  let was_tripped = ref false in
  let max_temp = ref 0. in
  let qos_acc = ref 0. and energy = ref 0. in
  let steps = 600 (* 30 s *) in
  for i = 1 to steps do
    let obs = Soc.step soc ~dt:0.05 in
    let envelope =
      Thermal_governor.envelope governor ~temperature_c:obs.Soc.temperature_c
    in
    if Thermal_governor.tripped governor && not !was_tripped then begin
      incr trips;
      Printf.printf
        "  t=%5.2f  TRIP: %.1f degC at %.2f W -> envelope %.1f W\n"
        obs.Soc.time obs.Soc.temperature_c obs.Soc.chip_power envelope
    end;
    was_tripped := Thermal_governor.tripped governor;
    max_temp := Float.max !max_temp (Soc.temperature soc);
    qos_acc := !qos_acc +. obs.Soc.qos_rate;
    energy := !energy +. (0.05 *. obs.Soc.chip_power);
    manager.Manager.step ~now:obs.Soc.time ~qos_ref ~envelope ~obs soc;
    if i mod 100 = 0 then
      Printf.printf "  t=%5.2f  %.1f degC  %.2f W  %.1f FPS  envelope %.1f\n"
        obs.Soc.time obs.Soc.temperature_c obs.Soc.chip_power obs.Soc.qos_rate
        envelope
  done;
  Printf.printf
    "  summary: %d trips, peak %.1f degC, mean QoS %.1f (ref %.1f), energy %.1f J\n"
    !trips !max_temp
    (!qos_acc /. float_of_int steps)
    qos_ref !energy

let () =
  print_endline
    "Thermal-emergency case study (trip 63 degC / release 56 degC, RC\n\
     thermal model: 8 degC/W toward ambient 30 degC, tau 3 s).";
  let spectr, _ = Spectr_manager.make () in
  run "SPECTR" spectr;
  run "MM-Perf" (Mm.make_perf ());
  print_endline
    "\nSPECTR's supervisor reacts to each envelope drop by re-budgeting and\n\
     gain-switching, riding the thermostat with fewer and shorter trips;\n\
     the performance-pinned MM-Perf repeatedly drives the die back into\n\
     the trip point."
