examples/mobile_qos.ml: Arg Array Benchmarks Cmd Cmdliner Format Fs List Metrics Mm Printf Scenario Spectr Spectr_manager Spectr_platform String Term Trace Workload
