examples/quickstart.mli:
