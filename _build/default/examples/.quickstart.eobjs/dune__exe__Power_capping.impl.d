examples/power_capping.ml: Benchmarks Format List Manager Perf_model Printf Scenario Soc Spectr Spectr_automata Spectr_manager Spectr_platform Supervisor
