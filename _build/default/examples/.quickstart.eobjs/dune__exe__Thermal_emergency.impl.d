examples/thermal_emergency.ml: Benchmarks Float Manager Mm Perf_model Printf Soc Spectr Spectr_manager Spectr_platform Thermal_governor
