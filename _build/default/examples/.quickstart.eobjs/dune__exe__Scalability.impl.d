examples/scalability.ml: Array Design_flow List Ops_cost Printf Spectr Spectr_sysid
