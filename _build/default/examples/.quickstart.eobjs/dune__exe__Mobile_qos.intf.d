examples/mobile_qos.mli:
