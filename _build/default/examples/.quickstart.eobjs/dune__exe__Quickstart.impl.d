examples/quickstart.ml: Automaton Compose Dot Event Format List Spectr_automata String Synthesis Verify
