examples/scalability.mli:
