examples/design_flow_demo.mli:
