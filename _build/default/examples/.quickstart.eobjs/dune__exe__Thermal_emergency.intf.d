examples/thermal_emergency.mli:
