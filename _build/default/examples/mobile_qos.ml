(* Mobile QoS management: the paper's headline case study (Figures 10/13).

   A QoS application (x264 by default) runs on the Big cluster of a
   simulated Exynos-class big.LITTLE SoC while a resource manager tracks
   its frame rate against a reference and keeps chip power inside a
   dynamic envelope, across the three-phase Safe / Emergency /
   Disturbance scenario.

     dune exec examples/mobile_qos.exe                 # SPECTR on x264
     dune exec examples/mobile_qos.exe -- -m mm-perf -b canneal
*)

open Spectr_platform
open Spectr

let make_manager = function
  | "spectr" -> fst (Spectr_manager.make ())
  | "mm-pow" -> Mm.make_pow ()
  | "mm-perf" -> Mm.make_perf ()
  | "fs" -> Fs.make ()
  | other -> failwith ("unknown manager: " ^ other)

let run manager_name bench_name =
  let workload =
    match Benchmarks.by_name bench_name with
    | Some w -> w
    | None -> failwith ("unknown benchmark: " ^ bench_name)
  in
  Printf.printf "Building %s (identification + gain design)...\n%!"
    manager_name;
  let manager = make_manager manager_name in
  let config = Scenario.default_config workload in
  Printf.printf "Running the 3-phase scenario on %s (QoS ref %.1f)...\n%!"
    workload.Workload.name config.Scenario.qos_ref;
  let trace = Scenario.run ~manager config in

  (* A coarse console rendering of Figure 13: one line per half second. *)
  let time = Trace.column trace "time" in
  let qos = Trace.column trace "qos" in
  let power = Trace.column trace "power" in
  let envelope = Trace.column trace "envelope" in
  print_endline "";
  print_endline "  time    QoS [=ref]                power [|envelope]";
  Array.iteri
    (fun i t ->
      if i mod 10 = 9 then begin
        let bar v scale width =
          let n = max 0 (min width (int_of_float (v /. scale))) in
          String.make n '#' ^ String.make (width - n) ' '
        in
        Printf.printf "  %5.2f  %s %5.1f   %s %4.2fW (cap %.1f)\n" t
          (bar qos.(i) 2.5 32)
          qos.(i)
          (bar power.(i) 0.2 32)
          power.(i) envelope.(i)
      end)
    time;
  print_endline "";
  List.iter
    (fun m -> Format.printf "  %a@." Metrics.pp_phase_metrics m)
    (Metrics.per_phase ~trace ~config)

(* cmdliner interface *)
open Cmdliner

let manager_arg =
  let doc = "Resource manager: spectr, mm-pow, mm-perf or fs." in
  Arg.(value & opt string "spectr" & info [ "m"; "manager" ] ~doc)

let bench_arg =
  let doc =
    "QoS benchmark: x264, bodytrack, canneal, streamcluster, kmeans, knn, \
     lesq or lr."
  in
  Arg.(value & opt string "x264" & info [ "b"; "benchmark" ] ~doc)

let cmd =
  let info =
    Cmd.info "mobile_qos"
      ~doc:"Run a resource manager through the SPECTR evaluation scenario"
  in
  Cmd.v info Term.(const run $ manager_arg $ bench_arg)

let () = exit (Cmd.eval cmd)
