(* Quickstart: supervisory control synthesis in five minutes.

   Build a plant from modular sub-plants, write an intended-behaviour
   specification, synthesize the supremal controllable non-blocking
   supervisor, and verify it — the workflow of the paper's Figure 11 on
   the classic "small factory" example.

     dune exec examples/quickstart.exe
*)

open Spectr_automata

let () =
  (* 1. Events: controllable starts, uncontrollable finishes. *)
  let start1 = Event.controllable "start1" in
  let finish1 = Event.uncontrollable "finish1" in
  let start2 = Event.controllable "start2" in
  let finish2 = Event.uncontrollable "finish2" in

  (* 2. Sub-plants: two machines that cycle Idle -> Working -> Idle. *)
  let machine name start finish =
    Automaton.create ~marked:[ "Idle" ] ~name ~initial:"Idle"
      ~transitions:[ ("Idle", start, "Working"); ("Working", finish, "Idle") ]
      ()
  in
  let m1 = machine "M1" start1 finish1 in
  let m2 = machine "M2" start2 finish2 in

  (* 3. Synchronous composition gives the full plant (Figure 12b). *)
  let plant = Compose.pair m1 m2 in
  Format.printf "Plant: %a@." Automaton.pp plant;

  (* 4. Specification: a one-slot buffer between the machines.  M1's
     finish fills it, M2's start drains it; overflow and underflow are
     forbidden by omission. *)
  let spec =
    Automaton.create ~marked:[ "Empty" ] ~name:"Buffer" ~initial:"Empty"
      ~transitions:[ ("Empty", finish1, "Full"); ("Full", start2, "Empty") ]
      ()
  in

  (* 5. Synthesis + verification (Figure 11, steps 3-5). *)
  match Synthesis.supcon ~plant ~spec with
  | Error Synthesis.Empty_supervisor ->
      print_endline "No supervisor satisfies the specification."
  | Ok (supervisor, stats) ->
      Format.printf "Supervisor: %a@." Automaton.pp supervisor;
      Format.printf "Synthesis: %a@." Synthesis.pp_stats stats;
      Format.printf "Non-blocking: %b@." (Verify.is_nonblocking supervisor);
      Format.printf "Controllable: %b@."
        (Verify.is_controllable ~plant ~supervisor);

      (* The supervisor disables start1 whenever the buffer is full: *)
      (match Automaton.trace supervisor [ start1; finish1 ] with
      | Some state ->
          let enabled =
            Automaton.enabled supervisor state
            |> List.map Event.name |> String.concat ", "
          in
          Format.printf "After start1,finish1 (buffer full) -> %s; enabled: %s@."
            state enabled
      | None -> assert false);

      (* Export for rendering with Graphviz: dot -Tpdf supervisor.dot *)
      Dot.write_file supervisor ~path:"supervisor.dot";
      print_endline "Wrote supervisor.dot"
