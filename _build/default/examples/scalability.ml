(* Scalability of classical control: why SPECTR decomposes.

   Reproduces the two §2 arguments interactively:
   - system-identification accuracy degrades as the controller's scope
     grows (2x2 per-cluster vs 4x2 full-system vs 10x10 per-core), and
   - a single MIMO's computational cost explodes with core count
     (Figure 6's multiply-add model).

     dune exec examples/scalability.exe
*)

open Spectr

let () =
  print_endline "Identification accuracy vs controller scope";
  print_endline "(cross-validated on held-out data, microbenchmark workload)";
  List.iter
    (fun subsystem ->
      let ident = Design_flow.identify subsystem in
      let chans = ident.Design_flow.report.Spectr_sysid.Validation.channels in
      let n = float_of_int (Array.length chans) in
      let avg f = Array.fold_left (fun acc c -> acc +. f c) 0. chans /. n in
      Printf.printf
        "  %-12s  avg fit %5.1f%%   avg R² %5.3f   residual-whiteness \
         violations %4.1f per channel\n"
        (Design_flow.subsystem_name subsystem)
        (avg (fun c -> c.Spectr_sysid.Validation.fit_percent))
        (avg (fun c -> c.Spectr_sysid.Validation.r_squared))
        (avg (fun c -> float_of_int c.Spectr_sysid.Validation.violations)))
    [
      Design_flow.Big_2x2;
      Design_flow.Little_2x2;
      Design_flow.Fs_4x2;
      Design_flow.Large_10x10;
    ];

  print_endline "";
  print_endline "Controller cost vs core count (Figure 6 model)";
  Printf.printf "  %6s %14s %14s %14s\n" "cores" "order 2" "order 4" "order 8";
  List.iter
    (fun cores ->
      Printf.printf "  %6d %14.3e %14.3e %14.3e\n" cores
        (Ops_cost.paper_curve ~cores ~order:2)
        (Ops_cost.paper_curve ~cores ~order:4)
        (Ops_cost.paper_curve ~cores ~order:8))
    [ 2; 4; 8; 16; 32; 48; 64; 70 ];
  print_endline "";
  print_endline
    "  -> a monolithic MIMO is infeasible at many-core scale; SPECTR's\n\
    \     per-cluster controllers + supervisory coordination sidestep both\n\
    \     problems (modular decomposition, Section 3.1)."
