(* Fault tolerance: ride out a dead power sensor.

   The power sensor drops to zero mid-run while the QoS application and
   a burst of background work keep the chip busy.  An unguarded manager
   believes the reading — it sees infinite headroom and chases QoS
   straight through the power envelope.  The guarded manager's sanity
   filter rejects the implausible reading, its watchdog notices the
   persistent loss and degrades to the minimum-power open-loop fallback,
   and closed-loop control resumes once the sensor returns.

     dune exec examples/fault_tolerance.exe
*)

open Spectr_platform
open Spectr

let phase name ~duration_s ~envelope ~background_tasks ~faults =
  {
    Scenario.phase_name = name;
    duration_s;
    envelope;
    background_tasks;
    phase_faults = faults;
  }

let config () =
  {
    (Scenario.default_config Benchmarks.x264) with
    Scenario.phases =
      [
        phase "nominal" ~duration_s:3. ~envelope:5.0 ~background_tasks:0
          ~faults:
            [
              (* Absolute window (this phase starts at t = 0): the sensor
                 dies at 3.5 s, half a second into the emergency, and
                 comes back at 6.5 s. *)
              Faults.injection (Faults.Dropout Power) ~start_s:3.5 ~stop_s:6.5;
            ];
        phase "emergency" ~duration_s:4. ~envelope:3.5 ~background_tasks:16
          ~faults:[];
        phase "restored" ~duration_s:5. ~envelope:5.0 ~background_tasks:0
          ~faults:[];
      ];
  }

let describe name trace guards =
  let time = Trace.column trace "time" in
  let true_power = Trace.column trace "true_power" in
  let envelope = Trace.column trace "envelope" in
  let dt = 0.05 in
  let excess = ref 0. in
  let peak_over = ref 0. in
  Array.iteri
    (fun i p ->
      if p > envelope.(i) *. 1.05 then excess := !excess +. dt;
      peak_over := Float.max !peak_over (p -. envelope.(i)))
    true_power;
  Printf.printf
    "%-9s time over envelope: %.2f s  (worst excursion %.2f W above the cap)\n"
    name !excess !peak_over;
  (match guards with
  | None -> ()
  | Some g ->
      List.iter
        (fun (entered, exited) ->
          match exited with
          | Some t ->
              Printf.printf
                "          watchdog: degraded at %.2f s, recovered at %.2f s \
                 (%.2f s in fallback)\n"
                entered t (t -. entered)
          | None ->
              Printf.printf "          watchdog: still degraded at %.2f s\n"
                time.(Array.length time - 1))
        (Guarded.degradation_spans g);
      Printf.printf "          filter substituted %d of %d samples\n"
        (Guarded.substituted_samples g)
        (Guarded.total_samples g))

let () =
  let cfg = config () in
  print_endline
    "Power sensor dropout, 3.5-6.5 s, while the envelope tightens to 3.5 W:";
  let unguarded, _ = Spectr_manager.make () in
  describe "SPECTR" (Scenario.run ~manager:unguarded cfg) None;
  let guards = Guarded.create () in
  let guarded, _ = Spectr_manager.make ~guards () in
  describe "SPECTR+G" (Scenario.run ~manager:guarded cfg) (Some guards);
  print_endline
    "The guards trade QoS for safety while blind, then hand control back."
