(* The §6 systematic design flow, end to end.

   Walks the nine steps an HMP architect follows to build a SPECTR-style
   resource manager for a new platform:

     1. define goals            6. specify <goal, condition> priorities
     2. decompose the plant     7. design one LQG gain set per goal
     3. specify behaviour       8. robustness analysis (guardbands)
     4. synthesize + verify     9. assemble and smoke-test the system
     5. identify each subsystem

     dune exec examples/design_flow_demo.exe
*)

open Spectr_automata
open Spectr_platform
open Spectr

let step n title = Printf.printf "\nStep %d: %s\n" n title

let () =
  step 1 "define the high-level goals";
  print_endline
    "  - meet the QoS application's reference while minimizing energy\n\
    \  - keep chip power below the (dynamic) thermal envelope";

  step 2 "decompose the plant into sub-plants and model them";
  Format.printf "  QoS loop:    %a@." Automaton.pp Plant_model.qos_management;
  Format.printf "  power loop:  %a@." Automaton.pp Plant_model.power_capping;
  let plant = Plant_model.composed () in
  Format.printf "  composed:    %a@." Automaton.pp plant;

  step 3 "write the intended-behaviour specification";
  Format.printf "  three-band:  %a (forbidden: %s)@." Automaton.pp
    Spec.three_band
    (String.concat ", " (Automaton.forbidden Spec.three_band));

  step 4 "synthesize the supervisor and verify its properties";
  let supervisor, stats = Supervisor.synthesize () in
  Format.printf "  %a@." Automaton.pp supervisor;
  Format.printf "  %a@." Synthesis.pp_stats stats;
  Format.printf "  non-blocking: %b, controllable: %b@."
    (Verify.is_nonblocking supervisor)
    (Verify.is_controllable ~plant ~supervisor);

  step 5 "identify each minimal subsystem (R^2 >= 0.8 gate)";
  let big = Design_flow.identify Design_flow.Big_2x2 in
  let little = Design_flow.identify Design_flow.Little_2x2 in
  List.iter
    (fun (name, ident) ->
      Format.printf "  %-8s %a@." name Spectr_sysid.Validation.pp_report
        ident.Design_flow.report)
    [ ("big:", big); ("little:", little) ];

  step 6 "declare the <goal, condition> pairs (Q priorities)";
  let goals =
    [
      { Design_flow.label = "qos"; q_y = Mm.qos_weights };
      { Design_flow.label = "power"; q_y = Mm.power_weights };
    ]
  in
  List.iter
    (fun g ->
      Printf.printf "  %-6s Q = [%s]\n" g.Design_flow.label
        (String.concat "; "
           (Array.to_list (Array.map string_of_float g.Design_flow.q_y))))
    goals;

  step 7 "design one LQG gain set per goal";
  let design ident =
    match Design_flow.design_gains ident goals with
    | Ok gains -> gains
    | Error msg -> failwith msg
  in
  let big_gains = design big in
  let little_gains = design little in
  List.iter
    (fun g ->
      Printf.printf "  big/%s: integrator leak %.3f, stable %b\n"
        g.Spectr_control.Lqg.label g.Spectr_control.Lqg.leak
        (Spectr_control.Lqg.closed_loop_stable g))
    big_gains;

  step 8 "robust-stability analysis under the paper's guardbands";
  List.iter
    (fun g ->
      Printf.printf "  big/%s robust under 50%%/30%% guardbands: %b\n"
        g.Spectr_control.Lqg.label
        (Spectr_sysid.Guardband.robustly_stable
           Spectr_sysid.Guardband.paper_defaults ~gains:g))
    big_gains;

  step 9 "assemble the controllers and smoke-test on the platform";
  let big_ctrl =
    Design_flow.build_mimo big ~gains:big_gains ~initial:"qos"
      ~refs:[| 60.; 4.5 |]
  in
  let little_ctrl =
    Design_flow.build_mimo little ~gains:little_gains ~initial:"qos"
      ~refs:[| 2.0; 0.3 |]
  in
  let soc = Soc.create ~qos:Benchmarks.x264 () in
  for _ = 1 to 100 do
    let obs = Soc.step soc ~dt:0.05 in
    let powers = Soc.sensor_powers soc in
    let u = Spectr_control.Mimo.step big_ctrl
        ~measured:[| obs.Soc.qos_rate; powers.(0) |] in
    let (_ : Manager.applied) =
      Manager.apply_cluster soc 0 ~freq_ghz:u.(0) ~cores:u.(1)
    in
    let ul = Spectr_control.Mimo.step little_ctrl
        ~measured:[| (Soc.ips_totals soc).(1) /. 1e9; powers.(1) |] in
    let (_ : Manager.applied) =
      Manager.apply_cluster soc 1 ~freq_ghz:ul.(0) ~cores:ul.(1)
    in
    ()
  done;
  Printf.printf "  after 5 s: QoS %.1f (ref 60.0), chip power %.2f W\n"
    (Soc.true_qos_rate soc) (Soc.true_chip_power soc);
  print_endline "\nDesign flow complete."
