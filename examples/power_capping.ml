(* Power capping under repeated thermal emergencies.

   Exercises SPECTR's supervisory layer in isolation: the power envelope
   is dropped and restored every few seconds while the QoS application
   keeps running, and we log every supervisor decision — gain-schedule
   switches, budget regulation and emergency cuts — demonstrating the
   autonomy property (§3.2) that fixed-gain controllers lack.

     dune exec examples/power_capping.exe
*)

open Spectr_platform
open Spectr

let () =
  let mgr, sup = Spectr_manager.make () in
  let phase name ~duration_s ~envelope ~background_tasks =
    { Scenario.phase_name = name; duration_s; envelope; background_tasks;
      phase_faults = [] }
  in
  let phases =
    [
      phase "nominal" ~duration_s:3. ~envelope:5.0 ~background_tasks:0;
      phase "emergency-1" ~duration_s:3. ~envelope:3.0 ~background_tasks:0;
      phase "recovery" ~duration_s:3. ~envelope:5.0 ~background_tasks:4;
      phase "emergency-2" ~duration_s:3. ~envelope:2.5 ~background_tasks:4;
      phase "final" ~duration_s:3. ~envelope:5.0 ~background_tasks:0;
    ]
  in
  (* Demand almost everything the platform can deliver, so the reduced
     envelopes genuinely force capping decisions. *)
  let config =
    {
      (Scenario.default_config Benchmarks.bodytrack) with
      Scenario.phases;
      qos_ref = 0.92 *. Perf_model.max_qos_rate Benchmarks.bodytrack;
    }
  in
  Printf.printf "Synthesized supervisor: %s\n"
    (Format.asprintf "%a" Spectr_automata.Synthesis.pp_stats
       (Supervisor.synthesis_stats sup));

  (* Run manually so we can watch the supervisor. *)
  let soc_config = { Soc.default_config with seed = config.Scenario.seed } in
  let soc = Soc.create ~config:soc_config ~qos:config.Scenario.workload () in
  let last_mode = ref (Supervisor.gains_mode sup) in
  let last_state = ref (Supervisor.state sup) in
  List.iter
    (fun ph ->
      Printf.printf "--- %s: envelope %.1f W, %d background tasks\n"
        ph.Scenario.phase_name ph.Scenario.envelope
        ph.Scenario.background_tasks;
      Soc.set_background_tasks soc ph.Scenario.background_tasks;
      let steps =
        int_of_float
          (ph.Scenario.duration_s /. config.Scenario.controller_period)
      in
      for _ = 1 to steps do
        let obs = Soc.step soc ~dt:config.Scenario.controller_period in
        mgr.Manager.step ~now:obs.Soc.time ~qos_ref:config.Scenario.qos_ref
          ~envelope:ph.Scenario.envelope ~obs soc;
        let mode = Supervisor.gains_mode sup in
        if mode <> !last_mode then begin
          Printf.printf
            "  t=%5.2f  GAIN SWITCH %s -> %s (power %.2f W, budget B %.2f / L %.2f)\n"
            obs.Soc.time !last_mode mode obs.Soc.chip_power
            (Supervisor.power_ref sup 0)
            (Supervisor.power_ref sup 1);
          last_mode := mode
        end;
        let state = Supervisor.state sup in
        if state <> !last_state then last_state := state
      done;
      Printf.printf
        "  end of phase: power %.2f W, supervisor %s, budgets B %.2f / L %.2f\n"
        (Soc.true_chip_power soc) (Supervisor.state sup)
        (Supervisor.power_ref sup 0)
        (Supervisor.power_ref sup 1))
    phases;
  print_endline "Done: the supervisor rode out both emergencies and recovered."
