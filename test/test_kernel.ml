(* Zero-allocation tick-kernel regression tests.

   Four properties keep the steady-state tick path honest:

   - allocation budgets: Soc.step_into and Supervisor.step must
     allocate EXACTLY zero bytes per call once warm — a boxed float or
     a closure creeping back into the hot path fails here, attributed
     to the right kernel;
   - byte-identity: the hot-path rewrites (index-native supervisor,
     in-place MIMO step, buffer-reusing scenario loop, memoized gain
     design) must not change any trace — scenario CSV digests are
     pinned to their pre-refactor values;
   - the _into variants must be bit-identical to their allocating
     counterparts (Mimo.step_into / Kalman.correct_into);
   - batch equivalence: a warm Arena checkout must behave exactly like
     a freshly built manager.

   Plus the boundary pins for the two intentionally different power
   thresholds (Metrics.power_allowance 1.02 vs the chaos invariants'
   0.05 safety guardband). *)

open Spectr_platform
open Spectr_control
open Spectr_linalg

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Allocation budgets                                                  *)
(* ------------------------------------------------------------------ *)

(* Bytes per iteration after the caller has warmed [f] to steady state.
   The Gc.allocated_bytes calls themselves box a float each; amortized
   over the iteration count they stay far below the 1-byte threshold,
   so "< 1.0 B/iter" distinguishes exactly-zero from any real per-call
   allocation (the smallest possible box is 16 bytes). *)
let bytes_per_iter iters f =
  let b0 = Gc.allocated_bytes () in
  f iters;
  let b1 = Gc.allocated_bytes () in
  (b1 -. b0) /. float_of_int iters

let test_soc_step_into_zero_alloc () =
  let soc = Soc.create ~qos:Benchmarks.x264 () in
  Soc.set_background_tasks soc 16;
  let obs = Soc.make_observation () in
  for _ = 1 to 500 do
    Soc.step_into soc ~dt:0.05 obs
  done;
  let per_iter =
    bytes_per_iter 100_000 (fun n ->
        for _ = 1 to n do
          Soc.step_into soc ~dt:0.05 obs
        done)
  in
  check_bool
    (Printf.sprintf "Soc.step_into steady state: %.3f B/call" per_iter)
    true (per_iter < 1.0)

let test_supervisor_step_zero_alloc () =
  let commands =
    {
      Spectr.Supervisor.switch_gains = (fun _ -> ());
      set_power_ref = (fun _ _ -> ());
    }
  in
  let sup = Spectr.Supervisor.create ~commands ~envelope:2.0 () in
  for _ = 1 to 500 do
    Spectr.Supervisor.step sup ~qos:30.0 ~qos_ref:30.0 ~power:1.5
      ~envelope:2.0
  done;
  let per_iter =
    bytes_per_iter 100_000 (fun n ->
        for _ = 1 to n do
          Spectr.Supervisor.step sup ~qos:30.0 ~qos_ref:30.0 ~power:1.5
            ~envelope:2.0
        done)
  in
  check_bool
    (Printf.sprintf "Supervisor.step steady state: %.3f B/call" per_iter)
    true (per_iter < 1.0)

(* ------------------------------------------------------------------ *)
(* Scenario CSV byte-identity pins                                     *)
(* ------------------------------------------------------------------ *)

(* MD5 digests of the default x264 scenario (seed 42, 300 rows) under
   three managers, recorded before the zero-allocation refactor landed.
   Any hot-path change that shifts a single float expression — noise
   draw order, accumulation order, a skipped clamp — changes these. *)
let pinned =
  [
    ("spectr", "ab3b5b5ef6ec4920c18d5f0a4117cbc1");
    ("mm-pow", "96be8102f7bac038240ca64962ed878b");
    ("siso", "d599bdd2e64cbd24c48b6fd21efaf08a");
  ]

let scenario_digest make_manager =
  let cfg = Spectr.Scenario.default_config ~seed:42L Benchmarks.x264 in
  let trace = Spectr.Scenario.run ~manager:(make_manager ()) cfg in
  check_int "pinned run length" 300 (Trace.length trace);
  Digest.to_hex (Digest.string (Trace.to_csv trace))

let test_pinned_digests () =
  let make = function
    | "spectr" -> fun () -> fst (Spectr.Spectr_manager.make ())
    | "mm-pow" -> fun () -> Spectr.Mm.make_pow ()
    | "siso" -> fun () -> Spectr.Siso.make ()
    | name -> Alcotest.failf "unknown pinned manager %s" name
  in
  List.iter
    (fun (name, digest) ->
      check_string (name ^ " CSV digest") digest (scenario_digest (make name)))
    pinned

(* ------------------------------------------------------------------ *)
(* Batch arena equivalence                                             *)
(* ------------------------------------------------------------------ *)

let test_arena_checkout_equals_fresh () =
  let arena = Spectr_chaos.Arena.create () in
  List.iter
    (fun variant ->
      let cfg = Spectr.Scenario.default_config ~seed:42L Benchmarks.x264 in
      let fresh, _, _, _ = Spectr_chaos.Campaign.make_manager variant in
      let d_fresh =
        Digest.string (Trace.to_csv (Spectr.Scenario.run ~manager:fresh cfg))
      in
      (* First checkout builds; run it dirty, then check out again so
         the pristine-reset path is what's under test. *)
      let warm, _, _, _ = Spectr_chaos.Arena.checkout arena variant in
      ignore (Spectr.Scenario.run ~manager:warm cfg : Trace.t);
      let warm, _, _, _ = Spectr_chaos.Arena.checkout arena variant in
      let d_warm =
        Digest.string (Trace.to_csv (Spectr.Scenario.run ~manager:warm cfg))
      in
      check_string
        (Spectr_chaos.Campaign.variant_name variant ^ " arena digest")
        (Digest.to_hex d_fresh) (Digest.to_hex d_warm))
    [ Spectr_chaos.Campaign.Spectr; Spectr_chaos.Campaign.Mm_pow ]

let test_arena_cells_equal_cold_cells () =
  let spec = Spectr_chaos.Campaign.default_spec ~seed:11 ~cells:6 () in
  let cells = Spectr_chaos.Campaign.generate spec in
  let arena = Spectr_chaos.Arena.create () in
  List.iter
    (fun cell ->
      let cold = Spectr_chaos.Engine.run_cell cell in
      let warm = Spectr_chaos.Engine.run_cell ~arena cell in
      check_string "cell digest" cold.Spectr_chaos.Engine.digest
        warm.Spectr_chaos.Engine.digest;
      check_int "cell violations"
        (List.length cold.Spectr_chaos.Engine.violations)
        (List.length warm.Spectr_chaos.Engine.violations))
    cells

(* ------------------------------------------------------------------ *)
(* Memoized gain design                                                *)
(* ------------------------------------------------------------------ *)

let test_design_gains_for_cached () =
  let goals = [ { Spectr.Design_flow.label = "power"; q_y = [| 0.1; 30. |] } ] in
  let a = Spectr.Design_flow.design_gains_for Spectr.Design_flow.Fs_4x2 goals in
  let b = Spectr.Design_flow.design_gains_for Spectr.Design_flow.Fs_4x2 goals in
  (match (a, b) with
  | Ok ga, Ok gb ->
      (* Single-flight: the very same list comes back, not a re-run. *)
      check_bool "same gains list shared" true (ga == gb)
  | _ -> Alcotest.fail "design_gains_for failed");
  (* And it matches the uncached pipeline bit for bit. *)
  let ident = Spectr.Design_flow.identify Spectr.Design_flow.Fs_4x2 in
  match (a, Spectr.Design_flow.design_gains ident goals) with
  | Ok ga, Ok gu ->
      List.iter2
        (fun g1 g2 ->
          check_string "gain label" g1.Lqg.label g2.Lqg.label;
          check_bool "gain matrices equal" true
            (Matrix.to_arrays g1.Lqg.kx = Matrix.to_arrays g2.Lqg.kx))
        ga gu
  | _ -> Alcotest.fail "uncached design failed"

(* ------------------------------------------------------------------ *)
(* _into variants are bit-identical                                    *)
(* ------------------------------------------------------------------ *)

let build_test_mimo () =
  let ident = Spectr.Design_flow.identify Spectr.Design_flow.Big_2x2 in
  let goals =
    [
      { Spectr.Design_flow.label = "qos"; q_y = Spectr.Mm.qos_weights };
      { Spectr.Design_flow.label = "power"; q_y = Spectr.Mm.power_weights };
    ]
  in
  let gains =
    match Spectr.Design_flow.design_gains_for Spectr.Design_flow.Big_2x2 goals with
    | Ok g -> g
    | Error m -> Alcotest.failf "design failed: %s" m
  in
  Spectr.Design_flow.build_mimo ident ~gains ~initial:"qos"
    ~refs:[| 60.; 4. |]

let test_mimo_step_into_equals_step () =
  let c1 = build_test_mimo () in
  let c2 = build_test_mimo () in
  let dst = [| 0.; 0. |] in
  for i = 0 to 49 do
    let qos = 40. +. (10. *. sin (0.3 *. float_of_int i)) in
    let power = 3. +. (0.8 *. cos (0.17 *. float_of_int i)) in
    let u1 = Mimo.step c1 ~measured:[| qos; power |] in
    Mimo.step_into c2 ~measured:[| qos; power |] ~dst;
    check_float "command 0" u1.(0) dst.(0);
    check_float "command 1" u1.(1) dst.(1)
  done;
  (* Full state agreement, not just the commands. *)
  check_bool "snapshots equal" true (Mimo.snapshot c1 = Mimo.snapshot c2)

let test_kalman_correct_into_equals_correct () =
  let l = Matrix.init ~rows:2 ~cols:2 (fun i j -> 0.1 +. float_of_int (i + (2 * j))) in
  let c = Matrix.init ~rows:2 ~cols:2 (fun i j -> if i = j then 1.0 else 0.3) in
  let xhat = Matrix.init ~rows:2 ~cols:1 (fun i _ -> 0.5 +. float_of_int i) in
  let y = Matrix.init ~rows:2 ~cols:1 (fun i _ -> 1.1 *. float_of_int (i + 1)) in
  let pure = Kalman.correct ~l ~c ~xhat ~y in
  let dst = Matrix.zeros ~rows:2 ~cols:1 in
  let tmp_p = Matrix.zeros ~rows:2 ~cols:1 in
  let tmp_n = Matrix.zeros ~rows:2 ~cols:1 in
  Kalman.correct_into ~l ~c ~xhat ~y ~tmp_p ~tmp_n ~dst;
  check_bool "bit-identical correction" true
    (Matrix.to_arrays pure = Matrix.to_arrays dst)

(* ------------------------------------------------------------------ *)
(* Power-threshold boundaries: metrics 1.02 vs invariants 1.05         *)
(* ------------------------------------------------------------------ *)

let test_threshold_constants_distinct () =
  check_float "metrics allowance" 1.02 Spectr.Metrics.power_allowance;
  check_float "invariants guardband" 0.05
    Spectr_chaos.Invariants.default_limits.Spectr_chaos.Invariants.guardband;
  (* The difference is intentional (metrology tolerance vs safety
     margin); collapsing one onto the other is a regression. *)
  check_bool "allowance below guardbanded cap" true
    (Spectr.Metrics.power_allowance
    < 1. +. Spectr_chaos.Invariants.default_limits.Spectr_chaos.Invariants.guardband)

let test_metrics_allowance_boundary () =
  let envelope = 2.0 in
  let limit = envelope *. Spectr.Metrics.power_allowance in
  (* Exactly at the allowance: compliant from the start. *)
  check_bool "at limit complies" true
    (Spectr.Metrics.recovery_time ~envelope ~dt:0.05 ~after:0
       [| limit; limit; limit |]
    = Some 0.0);
  (* A hair above: first sample violates, recovery starts one dt later. *)
  check_bool "above limit delays recovery" true
    (Spectr.Metrics.recovery_time ~envelope ~dt:0.05 ~after:0
       [| limit +. 1e-9; limit; limit |]
    = Some 0.05);
  (* Never re-complying yields None, not a large number. *)
  check_bool "never complies" true
    (Spectr.Metrics.recovery_time ~envelope ~dt:0.05 ~after:0
       [| limit; limit; limit +. 1e-9 |]
    = None)

(* The invariants' cap arithmetic: violations begin strictly above
   envelope × (1 + guardband), so power between the metrics allowance
   and the guardband is non-compliant for evaluation purposes yet safe
   for the soak invariant — the gap the two constants exist to express. *)
let test_guardband_boundary () =
  let envelope = 2.0 in
  let lim = Spectr_chaos.Invariants.default_limits in
  let cap = envelope *. (1. +. lim.Spectr_chaos.Invariants.guardband) in
  let allowance = envelope *. Spectr.Metrics.power_allowance in
  check_bool "gap exists" true (allowance < cap);
  (* 2.06 W: fails the metric, passes the invariant. *)
  let between = 2.06 in
  check_bool "between thresholds" true (between > allowance && between <= cap);
  check_bool "metric rejects" true
    (Spectr.Metrics.recovery_time ~envelope ~dt:0.05 ~after:0
       [| between; between |]
    = None)

(* ------------------------------------------------------------------ *)
(* Temperature fault channel and noise config                          *)
(* ------------------------------------------------------------------ *)

let test_temp_noise_config () =
  check_float "default temp noise" 0.01 Soc.default_config.Soc.temp_noise;
  (* With the temperature sensor's noise zeroed, the observation reads
     the true die temperature exactly. *)
  let config = { Soc.default_config with Soc.temp_noise = 0. } in
  let soc = Soc.create ~config ~qos:Benchmarks.x264 () in
  let obs = Soc.make_observation () in
  for _ = 1 to 20 do
    Soc.step_into soc ~dt:0.05 obs
  done;
  check_float "noiseless temp sensor" (Soc.temperature soc)
    obs.Soc.temperature_c

let test_faults_apply_temp () =
  let f =
    Faults.create
      [ Faults.injection (Faults.Stuck_at_last Faults.Temp) ~start_s:1.0 ~stop_s:2.0 ]
  in
  (* Healthy before the window; the reading passes through and is
     recorded as last-healthy. *)
  check_float "healthy passes through" 50.0 (Faults.apply_temp f ~now:0.5 50.0);
  (* Inside the window the sensor repeats the last healthy reading. *)
  check_float "stuck repeats last" 50.0 (Faults.apply_temp f ~now:1.5 70.0);
  (* Healthy again after clearance. *)
  check_float "recovers" 72.0 (Faults.apply_temp f ~now:2.5 72.0)

(* ------------------------------------------------------------------ *)
(* Trace preallocation and index accessors                             *)
(* ------------------------------------------------------------------ *)

let test_trace_cap_and_index () =
  let t = Trace.create ~cap:2 ~columns:[ "a"; "b" ] () in
  (* cap is a hint, not a limit: growth past it still works. *)
  for i = 1 to 5 do
    Trace.add t [| float_of_int i; float_of_int (10 * i) |]
  done;
  check_int "length past cap" 5 (Trace.length t);
  let ib = Trace.column_index t "b" in
  check_int "column index" 1 ib;
  check_float "last_ix agrees" (Trace.last t "b") (Trace.last_ix t ib);
  check_bool "column_ix agrees" true (Trace.column t "b" = Trace.column_ix t ib)

(* ------------------------------------------------------------------ *)
(* Prng hot-path entry points                                          *)
(* ------------------------------------------------------------------ *)

let test_skip_gaussian_stream_equivalence () =
  let g1 = Prng.create 7L in
  let g2 = Prng.create 7L in
  ignore (Prng.gaussian g1 ~mu:0. ~sigma:1. : float);
  Prng.skip_gaussian g2;
  (* Skipping must consume exactly the draws a real gaussian does, so
     the streams stay aligned. *)
  check_bool "streams aligned" true (Prng.int64 g1 = Prng.int64 g2)

let test_noisy_into_equivalence () =
  let g1 = Prng.create 9L in
  let g2 = Prng.create 9L in
  let buf = [| 2.0; 3.0; 4.0 |] in
  Prng.noisy_into g1 ~sigma:0.1 ~dst:buf ~pos:0 ~len:3 ;
  let expect =
    Array.map (fun v -> v *. (1. +. Prng.gaussian g2 ~mu:0. ~sigma:0.1))
      [| 2.0; 3.0; 4.0 |]
  in
  Array.iteri (fun i v -> check_float "noisy value" expect.(i) v) buf

let test_prng_blit () =
  let g = Prng.create 21L in
  ignore (Prng.int64 g : int64);
  let snap = Prng.create 0L in
  Prng.blit ~src:g ~dst:snap;
  let a = Prng.int64 g in
  let b = Prng.int64 snap in
  check_bool "blit restores stream" true (a = b)

let () =
  Alcotest.run "spectr_kernel"
    [
      ( "allocation",
        [
          Alcotest.test_case "Soc.step_into zero-alloc" `Quick
            test_soc_step_into_zero_alloc;
          Alcotest.test_case "Supervisor.step zero-alloc" `Quick
            test_supervisor_step_zero_alloc;
        ] );
      ( "byte-identity",
        [
          Alcotest.test_case "pinned scenario digests" `Slow
            test_pinned_digests;
        ] );
      ( "batch-arena",
        [
          Alcotest.test_case "checkout equals fresh" `Slow
            test_arena_checkout_equals_fresh;
          Alcotest.test_case "chaos cells equal" `Slow
            test_arena_cells_equal_cold_cells;
          Alcotest.test_case "gain design memoized" `Slow
            test_design_gains_for_cached;
        ] );
      ( "into-variants",
        [
          Alcotest.test_case "Mimo.step_into = step" `Slow
            test_mimo_step_into_equals_step;
          Alcotest.test_case "Kalman.correct_into = correct" `Quick
            test_kalman_correct_into_equals_correct;
        ] );
      ( "thresholds",
        [
          Alcotest.test_case "constants distinct" `Quick
            test_threshold_constants_distinct;
          Alcotest.test_case "metrics allowance boundary" `Quick
            test_metrics_allowance_boundary;
          Alcotest.test_case "guardband gap" `Quick test_guardband_boundary;
        ] );
      ( "platform",
        [
          Alcotest.test_case "temp noise config" `Quick test_temp_noise_config;
          Alcotest.test_case "apply_temp channel" `Quick test_faults_apply_temp;
          Alcotest.test_case "trace cap and index" `Quick
            test_trace_cap_and_index;
          Alcotest.test_case "skip_gaussian stream" `Quick
            test_skip_gaussian_stream_equivalence;
          Alcotest.test_case "noisy_into" `Quick test_noisy_into_equivalence;
          Alcotest.test_case "prng blit" `Quick test_prng_blit;
        ] );
    ]
